module vist

go 1.22
