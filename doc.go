// Package vist is a Go reproduction of "ViST: A Dynamic Index Method for
// Querying XML Data by Tree Structures" (Wang, Park, Fan, Yu; SIGMOD 2003).
//
// The implementation lives under internal/:
//
//   - internal/core      — the ViST index (the paper's contribution)
//   - internal/rist      — the statically-labeled RIST variant
//   - internal/naive     — Algorithm 1 on a materialized suffix tree
//   - internal/pathindex — Index-Fabric-like raw-path comparator
//   - internal/nodeindex — XISS-like node-index comparator
//   - internal/btree     — disk-paged B+Tree substrate
//   - internal/...       — sequences, labeling, query parsing, generators
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// bench_test.go at this level regenerates every table and figure as Go
// benchmarks; cmd/vistbench prints them as paper-style tables.
package vist
