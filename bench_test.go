package vist_test

// Benchmarks regenerating the paper's evaluation (Section 4), one family
// per table/figure:
//
//	BenchmarkTable4/*        — Q1–Q8 on each engine (Table 4)
//	BenchmarkFig10a/*        — query time vs query length (Figure 10a)
//	BenchmarkFig10b/*        — query time vs data size (Figure 10b)
//	BenchmarkFig11a          — index sizes via -benchtime=1x (Figure 11a)
//	BenchmarkFig11b/*        — construction time vs element count (Figure 11b)
//	BenchmarkAblation*       — design-choice ablations
//
// Run: go test -bench=. -benchmem
// For paper-style tables, use cmd/vistbench instead.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vist/internal/bench"
	"vist/internal/cluster"
	"vist/internal/core"
	"vist/internal/gen"
	"vist/internal/nodeindex"
	"vist/internal/pathindex"
	"vist/internal/rist"
	"vist/internal/xmltree"
)

// benchDBLP10k returns the canonical 10k-record DBLP corpus (seed 11) that
// BenchmarkQuery, BenchmarkInsert, and the sharded benchmarks share. When
// VIST_DBLP_CORPUS points at a pre-generated corpus file (CI caches one
// between jobs, keyed on the generator sources), it is parsed instead of
// regenerated; the records are identical either way because generation is
// seed-deterministic.
func benchDBLP10k(b *testing.B) []*xmltree.Node {
	b.Helper()
	if path := os.Getenv("VIST_DBLP_CORPUS"); path != "" {
		f, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		docs, err := xmltree.ParseAll(f)
		if err != nil {
			b.Fatalf("%s: %v", path, err)
		}
		if len(docs) == 10000 {
			return docs
		}
		b.Logf("VIST_DBLP_CORPUS holds %d records, want 10000; regenerating", len(docs))
	}
	return gen.DBLP(gen.DBLPConfig{Records: 10000, Seed: 11})
}

// ---- shared fixtures (built once) ------------------------------------------

type engines struct {
	vist *core.Index
	rist *rist.Index
	path *pathindex.Index
	node *nodeindex.Index
}

func buildEngines(b *testing.B, docs []*xmltree.Node, schema []string) *engines {
	b.Helper()
	clone := func() []*xmltree.Node {
		out := make([]*xmltree.Node, len(docs))
		for i, d := range docs {
			out[i] = d.Clone()
		}
		return out
	}
	sc := xmltree.NewSchema(schema...)
	e := &engines{}
	var err error
	if e.vist, err = core.NewMem(core.Options{Schema: schema, SkipDocumentStore: true, Lambda: 4}); err != nil {
		b.Fatal(err)
	}
	for _, d := range clone() {
		if _, err := e.vist.Insert(d); err != nil {
			b.Fatal(err)
		}
	}
	if e.rist, err = rist.Build(clone(), core.Options{Schema: schema, SkipDocumentStore: true}); err != nil {
		b.Fatal(err)
	}
	if e.path, err = pathindex.New(sc, 0); err != nil {
		b.Fatal(err)
	}
	for _, d := range clone() {
		if _, err := e.path.Insert(d); err != nil {
			b.Fatal(err)
		}
	}
	if e.node, err = nodeindex.New(sc, 0); err != nil {
		b.Fatal(err)
	}
	for _, d := range clone() {
		if _, err := e.node.Insert(d); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

var (
	dblpOnce  sync.Once
	dblpEng   *engines
	xmarkOnce sync.Once
	xmarkEng  *engines
)

const (
	benchDBLPRecords = 5000
	benchXMarkPer    = 750
)

func dblpEngines(b *testing.B) *engines {
	dblpOnce.Do(func() {
		dblpEng = buildEngines(b,
			gen.DBLP(gen.DBLPConfig{Records: benchDBLPRecords, Seed: 1}),
			gen.DBLPSchema())
	})
	if dblpEng == nil {
		b.Fatal("dblp fixture failed to build")
	}
	return dblpEng
}

func xmarkEngines(b *testing.B) *engines {
	xmarkOnce.Do(func() {
		n := benchXMarkPer
		xmarkEng = buildEngines(b,
			gen.XMark(gen.XMarkConfig{Items: n, Persons: n, OpenAuctions: n, ClosedAuctions: n, Seed: 2}),
			gen.XMarkSchema())
	})
	if xmarkEng == nil {
		b.Fatal("xmark fixture failed to build")
	}
	return xmarkEng
}

// ---- Table 4 ----------------------------------------------------------------

func BenchmarkTable4(b *testing.B) {
	for _, q := range bench.Table3Queries {
		var e *engines
		if q.Dataset == "dblp" {
			e = dblpEngines(b)
		} else {
			e = xmarkEngines(b)
		}
		b.Run(q.ID+"/vist", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.vist.Query(q.Expr); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.ID+"/rist", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.rist.Query(q.Expr); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.ID+"/rawpath", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.path.Query(q.Expr); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.ID+"/nodeindex", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.node.Query(q.Expr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 10(a): query time vs query length -------------------------------

var (
	synthOnce sync.Once
	synthIx   *core.Index
	synthCfg  = gen.SyntheticConfig{K: 10, J: 8, L: 30, N: 5000, Seed: 3}
)

func synthIndex(b *testing.B) *core.Index {
	synthOnce.Do(func() {
		ix, err := core.NewMem(core.Options{SkipDocumentStore: true, Lambda: 8})
		if err != nil {
			return
		}
		for _, d := range gen.Synthetic(synthCfg) {
			if _, err := ix.Insert(d); err != nil {
				return
			}
		}
		synthIx = ix
	})
	if synthIx == nil {
		b.Fatal("synthetic fixture failed to build")
	}
	return synthIx
}

func BenchmarkFig10a(b *testing.B) {
	ix := synthIndex(b)
	for _, l := range []int{2, 4, 6, 8, 10, 12} {
		queries := gen.SyntheticQueries(synthCfg, 10, l, 100+int64(l))
		b.Run(fmt.Sprintf("len=%d", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ix.Query(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 10(b): query time vs data size ----------------------------------

func BenchmarkFig10b(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000, 8000} {
		cfg := gen.SyntheticConfig{K: 10, J: 8, L: 60, N: n, Seed: 4}
		ix, err := core.NewMem(core.Options{SkipDocumentStore: true, Lambda: 8})
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range gen.Synthetic(cfg) {
			if _, err := ix.Insert(d); err != nil {
				b.Fatal(err)
			}
		}
		queries := gen.SyntheticQueries(cfg, 10, 6, 77)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ix.Query(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 11(a): index size (reported via one-iteration benchmark) --------

func BenchmarkFig11a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig11a(bench.Config{Scale: 0.1, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(float64(row.ViSTBytes), row.Dataset+"_vist_bytes")
			b.ReportMetric(float64(row.RISTBytes), row.Dataset+"_rist_bytes")
		}
	}
}

// ---- Figure 11(b): construction time vs element count ------------------------

func BenchmarkFig11b(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000} {
		cfg := gen.SyntheticConfig{K: 10, J: 8, L: 32, N: n, Seed: 6}
		docs := gen.Synthetic(cfg)
		b.Run(fmt.Sprintf("elements=%d", n*32), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				clones := make([]*xmltree.Node, len(docs))
				for j, d := range docs {
					clones[j] = d.Clone()
				}
				ix, err := core.NewMem(core.Options{SkipDocumentStore: true, Lambda: 8})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, d := range clones {
					if _, err := ix.Insert(d); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// ---- Ablations ---------------------------------------------------------------

// BenchmarkAblationVerify compares raw candidate queries with verified
// (refined) queries.
func BenchmarkAblationVerify(b *testing.B) {
	ix, err := core.NewMem(core.Options{Schema: gen.DBLPSchema()})
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range gen.DBLP(gen.DBLPConfig{Records: 2000, Seed: 8}) {
		if _, err := ix.Insert(d); err != nil {
			b.Fatal(err)
		}
	}
	expr := "//author[text()='" + gen.DBLPDavid + "']"
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.Query(expr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("verified", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ix.QueryVerified(expr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationLabeling compares insertion cost across labeling
// strategies.
func BenchmarkAblationLabeling(b *testing.B) {
	cfg := gen.SyntheticConfig{K: 10, J: 8, L: 30, N: 1000, Seed: 9}
	strategies := []struct {
		name string
		opts func() core.Options
	}{
		{"uniform-lambda2", func() core.Options { return core.Options{SkipDocumentStore: true, Lambda: 2} }},
		{"uniform-lambda8", func() core.Options { return core.Options{SkipDocumentStore: true, Lambda: 8} }},
		{"stats", func() core.Options {
			tr := core.Train(gen.Synthetic(gen.SyntheticConfig{K: 10, J: 8, L: 30, N: 200, Seed: 10}), nil)
			return core.Options{SkipDocumentStore: true, Training: tr}
		}},
	}
	for _, s := range strategies {
		docs := gen.Synthetic(cfg)
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				clones := make([]*xmltree.Node, len(docs))
				for j, d := range docs {
					clones[j] = d.Clone()
				}
				ix, err := core.NewMem(s.opts())
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, d := range clones {
					if _, err := ix.Insert(d); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkQuery measures single-query latency (the CI regression gate's
// read-path probe): a '//'-rooted two-step path over a 10k-record DBLP index.
func BenchmarkQuery(b *testing.B) {
	ix, err := core.NewMem(core.Options{Schema: gen.DBLPSchema(), SkipDocumentStore: true, Lambda: 4})
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range benchDBLP10k(b) {
		if _, err := ix.Insert(d); err != nil {
			b.Fatal(err)
		}
	}
	expr := "//inproceedings/author"
	if _, err := ix.Query(expr); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query(expr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryUnplanned runs the same workload as BenchmarkQuery with the
// query planner disabled, so the baseline file records the planner's win and
// CI catches a regression in the raw recursive matcher independently.
func BenchmarkQueryUnplanned(b *testing.B) {
	ix, err := core.NewMem(core.Options{Schema: gen.DBLPSchema(), SkipDocumentStore: true, Lambda: 4, DisablePlanner: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range benchDBLP10k(b) {
		if _, err := ix.Insert(d); err != nil {
			b.Fatal(err)
		}
	}
	expr := "//inproceedings/author"
	if _, err := ix.Query(expr); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query(expr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorageBytesPerDoc builds a file-backed index over 1000 DBLP
// records and reports its on-disk footprint per document (index structure
// only — the document store holds raw input bytes the storage format cannot
// shrink, so it would only dilute the signal). The figure feeds the CI
// regression gate as a custom bytes/doc metric: a change that bloats the
// storage format fails the gate even if it costs no time.
func BenchmarkStorageBytesPerDoc(b *testing.B) {
	docs := gen.DBLP(gen.DBLPConfig{Records: 1000, Seed: 12})
	for i := 0; i < b.N; i++ {
		ix, err := core.Open(b.TempDir(), core.Options{Schema: gen.DBLPSchema(), SkipDocumentStore: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range docs {
			if _, err := ix.Insert(d.Clone()); err != nil {
				b.Fatal(err)
			}
		}
		if err := ix.Sync(); err != nil {
			b.Fatal(err)
		}
		st := ix.StorageStats()
		if err := ix.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(st.BytesPerDoc, "bytes/doc")
	}
}

// BenchmarkInsert measures single-document insert latency on a warm index.
func BenchmarkInsert(b *testing.B) {
	ix, err := core.NewMem(core.Options{Schema: gen.DBLPSchema(), SkipDocumentStore: true, Lambda: 4})
	if err != nil {
		b.Fatal(err)
	}
	docs := benchDBLP10k(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Insert(docs[i%len(docs)].Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedQuery runs the BenchmarkQuery workload — same corpus, same
// expression, same index options — through cluster.ShardedIndex at N = 1, 2,
// and 4 shards. The shards=1 figure is the scatter-gather overhead gate: CI
// compares it against BenchmarkQuery with benchgate -within, so the cluster
// layer may cost at most 10% on a single shard.
func BenchmarkShardedQuery(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			s, err := cluster.NewMemSharded(n, core.Options{Schema: gen.DBLPSchema(), SkipDocumentStore: true, Lambda: 4})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			for _, d := range benchDBLP10k(b) {
				if _, err := s.Insert(d); err != nil {
					b.Fatal(err)
				}
			}
			ctx := context.Background()
			expr := "//inproceedings/author"
			if _, _, err := s.QueryCtx(ctx, expr, core.Budget{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.QueryCtx(ctx, expr, core.Budget{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRouterHedged measures end-to-end query latency through the HTTP
// router when the backend occasionally stalls: every 10th backend request
// sleeps 25ms (a synthetic GC pause / queue spike), and the router's 2ms
// hedge re-issues the read so the stall is bounded by the hedge delay plus a
// normal query, not the full pause. The p99-ns custom metric is the gated
// figure — it is exactly the tail the hedging exists to cut.
func BenchmarkRouterHedged(b *testing.B) {
	ix, err := core.NewMem(core.Options{Schema: gen.DBLPSchema(), SkipDocumentStore: true, Lambda: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	for _, d := range benchDBLP10k(b) {
		if _, err := ix.Insert(d); err != nil {
			b.Fatal(err)
		}
	}
	inner := cluster.QueryMux(ix, cluster.MuxConfig{})
	var reqs atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if reqs.Add(1)%10 == 0 {
			time.Sleep(25 * time.Millisecond)
		}
		inner.ServeHTTP(w, r)
	}))
	defer backend.Close()
	rt := cluster.NewRouter([]string{backend.URL}, 2*time.Millisecond)
	if err := rt.Init(context.Background()); err != nil {
		b.Fatal(err)
	}
	router := httptest.NewServer(rt.Handler())
	defer router.Close()
	target := router.URL + "/query?q=" + url.QueryEscape("//inproceedings/author")

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		resp, err := http.Get(target)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
}
