// Purchases reproduces the paper's running example end to end: the
// purchase-record DTD of Figure 1, the document of Figure 3, its
// structure-encoded sequence (Figure 4), and the four queries of Figure 2.
package main

import (
	"fmt"
	"log"

	"vist/internal/core"
	"vist/internal/seq"
	"vist/internal/xmltree"
)

// The DTD of Figure 1 defines the element/attribute order.
var schema = []string{
	"purchases", "purchase", "seller", "buyer",
	"@ID", "@location", "@name", "item", "@manufacturer",
	"location", "name", "manufacturer",
}

const figure3 = `
<purchase>
  <seller ID="dell">
    <item ID="x7" name="part#1" manufacturer="ibm">
      <item name="part#2" manufacturer="intel"/>
    </item>
    <item name="panasia"/>
    <location>boston</location>
  </seller>
  <buyer ID="ibm">
    <location>newyork</location>
  </buyer>
</purchase>`

const secondRecord = `
<purchase>
  <seller ID="hp">
    <item name="printer" manufacturer="canon"/>
    <location>chicago</location>
  </seller>
  <buyer ID="dell">
    <location>boston</location>
  </buyer>
</purchase>`

func main() {
	ix, err := core.NewMem(core.Options{Schema: schema})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	doc, err := xmltree.ParseString(figure3)
	if err != nil {
		log.Fatal(err)
	}
	id1, err := ix.Insert(doc)
	if err != nil {
		log.Fatal(err)
	}
	// Show the structure-encoded sequence of Figure 4 (doc is normalized by
	// Insert; re-encoding is cheap and uses the index's dictionary).
	s := seq.Encode(doc, ix.Dict())
	fmt.Println("Figure 4 — structure-encoded sequence of the purchase record:")
	fmt.Println(" ", s.String(ix.Dict()))
	fmt.Println()

	doc2, err := xmltree.ParseString(secondRecord)
	if err != nil {
		log.Fatal(err)
	}
	id2, err := ix.Insert(doc2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed purchases %d (Figure 3) and %d (a Chicago order)\n\n", id1, id2)

	// Figure 2's queries, in path-expression form (Table 2).
	queries := []struct{ label, expr string }{
		{"Q1: manufacturers that supply items", "/purchase/seller/item/@manufacturer"},
		{"Q2: Boston sellers and NY buyers", "/purchase[seller[location='boston']]/buyer[location='newyork']"},
		{"Q3: Boston seller or buyer ('*')", "/purchase/*[location='boston']"},
		{"Q4: Intel products at any depth ('//')", "/purchase//item[@manufacturer='intel']"},
	}
	for _, q := range queries {
		ids, err := ix.Query(q.expr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s %-62s -> %v\n", q.label, q.expr, ids)
	}
}
