// Movies indexes an IMDB-like corpus (the paper names IMDB alongside DBLP
// as a record-structured XML database) and shows the introspection
// surface: query execution counters (QueryWithStats), verified answers,
// and the structural integrity checker.
package main

import (
	"fmt"
	"log"

	"vist/internal/core"
	"vist/internal/gen"
)

func main() {
	ix, err := core.NewMem(core.Options{Schema: gen.IMDBSchema(), Lambda: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	const movies = 3000
	for _, doc := range gen.IMDB(gen.IMDBConfig{Movies: movies, Seed: 42}) {
		if _, err := ix.Insert(doc); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d movies (%d suffix-tree nodes)\n\n", movies, ix.NodeCount())

	queries := []string{
		"/movie/director/name[text()='" + gen.IMDBDirector + "']",
		"/movie[genre='" + gen.IMDBGenre + "']/cast/actor/name[text()='" + gen.IMDBActor + "']",
		"/movie[@year='1975']",
		"//actor[@role='lead']/name[text()='" + gen.IMDBActor + "']",
		"/movie[director/name='" + gen.IMDBDirector + "']/cast/actor[@role='lead']",
	}
	for _, expr := range queries {
		ids, stats, err := ix.QueryWithStats(expr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-78s %4d results\n    %s\n", expr, len(ids), stats)
	}

	// Exact answers for the branchy query.
	verified, err := ix.QueryVerified(queries[4])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nverified answers for the last query: %d\n", len(verified))

	// Structural integrity: scope nesting, sibling disjointness, refcounts.
	rep, err := ix.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integrity check: nodes=%d docs=%d problems=%d\n", rep.Nodes, rep.Docs, len(rep.Problems))
}
