// Bibliography runs the paper's DBLP workload (Table 3, Q1–Q5) on a
// persistent, file-backed index: generate publication records, build the
// index on disk with statistics-guided labeling, query, reopen, and query
// again.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"vist/internal/core"
	"vist/internal/gen"
)

func main() {
	dir, err := os.MkdirTemp("", "vist-bibliography-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	idxDir := filepath.Join(dir, "idx")

	// Train the dynamic labeler on a sample (Section 3.4.1 "Semantic and
	// Statistical Clues"), then index the corpus.
	const records = 5000
	sample := gen.DBLP(gen.DBLPConfig{Records: 500, Seed: 99})
	training := core.Train(sample, gen.DBLPSchema())

	ix, err := core.Open(idxDir, core.Options{Schema: gen.DBLPSchema(), Training: training})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for _, doc := range gen.DBLP(gen.DBLPConfig{Records: records, Seed: 1}) {
		if _, err := ix.Insert(doc); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d publication records in %s (%d suffix-tree nodes, %d KB on disk)\n\n",
		records, time.Since(start).Round(time.Millisecond), ix.NodeCount(), ix.SizeBytes()/1024)

	queries := []struct{ id, expr string }{
		{"Q1", "/inproceedings/title"},
		{"Q2", "/book/author[text()='" + gen.DBLPDavid + "']"},
		{"Q3", "/*/author[text()='" + gen.DBLPDavid + "']"},
		{"Q4", "//author[text()='" + gen.DBLPDavid + "']"},
		{"Q5", "/book[@key='" + gen.DBLPKey + "']/author"},
	}
	runAll := func(ix *core.Index) {
		for _, q := range queries {
			start := time.Now()
			ids, err := ix.Query(q.expr)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s %-48s %6d results in %s\n", q.id, q.expr, len(ids), time.Since(start).Round(time.Microsecond))
		}
	}
	runAll(ix)

	// Persistence: close, reopen, and query again — labels, dictionary, and
	// statistics all come back from disk.
	if err := ix.Close(); err != nil {
		log.Fatal(err)
	}
	ix2, err := core.Open(idxDir, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer ix2.Close()
	fmt.Printf("\nreopened index: %d documents\n", ix2.DocCount())
	runAll(ix2)

	// Exact answers: refine Q4 against the stored documents.
	verified, err := ix2.QueryVerified(queries[3].expr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ4 verified: %d exact matches\n", len(verified))
}
