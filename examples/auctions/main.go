// Auctions runs the paper's XMARK workload (Table 3, Q6–Q8) and
// demonstrates what separates ViST from its statically-labeled predecessor
// RIST: dynamic insertion and deletion after the index is built.
package main

import (
	"fmt"
	"log"

	"vist/internal/core"
	"vist/internal/gen"
	"vist/internal/xmltree"
)

func main() {
	ix, err := core.NewMem(core.Options{Schema: gen.XMarkSchema(), Lambda: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	// The paper splits XMARK's single huge record into sub-structure
	// records (item, person, open_auction, closed_auction) and indexes each
	// instance; the generator produces exactly those records.
	docs := gen.XMark(gen.XMarkConfig{Items: 800, Persons: 800, OpenAuctions: 400, ClosedAuctions: 800, Seed: 7})
	for _, d := range docs {
		if _, err := ix.Insert(d); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("indexed %d auction-site records\n\n", ix.DocCount())

	queries := []struct{ id, expr string }{
		{"Q6", "/site//item[location='" + gen.XMarkUS + "']/mail/date[text()='" + gen.XMarkDate + "']"},
		{"Q7", "/site//person/*/city[text()='" + gen.XMarkCity + "']"},
		{"Q8", "//closed_auction[*[person='" + gen.XMarkPerson + "']]/date[text()='" + gen.XMarkDate + "']"},
	}
	for _, q := range queries {
		ids, err := ix.Query(q.expr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s %-70s %5d results\n", q.id, q.expr, len(ids))
	}

	// Dynamic update — the feature static labeling (RIST) cannot offer.
	newAuction, err := xmltree.ParseString(`
<site><closed_auctions><closed_auction>
  <seller person="person42"/><buyer person="` + gen.XMarkPerson + `"/>
  <price>19.99</price><date>` + gen.XMarkDate + `</date>
</closed_auction></closed_auctions></site>`)
	if err != nil {
		log.Fatal(err)
	}
	id, err := ix.Insert(newAuction)
	if err != nil {
		log.Fatal(err)
	}
	after, err := ix.Query(queries[2].expr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninserted auction %d; Q8 now returns %d results\n", id, len(after))

	if err := ix.Delete(id); err != nil {
		log.Fatal(err)
	}
	final, err := ix.Query(queries[2].expr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted auction %d; Q8 back to %d results\n", id, len(final))
}
