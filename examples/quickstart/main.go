// Quickstart: index a handful of XML documents in memory and query them by
// tree structure.
package main

import (
	"fmt"
	"log"

	"vist/internal/core"
	"vist/internal/xmltree"
)

func main() {
	// An in-memory index; use core.Open(dir, ...) for a persistent one.
	ix, err := core.NewMem(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	for _, doc := range []string{
		`<order id="1"><customer region="EU"><name>Ada</name></customer><total>99</total></order>`,
		`<order id="2"><customer region="US"><name>Bob</name></customer><total>250</total></order>`,
		`<order id="3"><customer region="EU"><name>Cy</name></customer><item><sku>X1</sku></item></order>`,
	} {
		n, err := xmltree.ParseString(doc)
		if err != nil {
			log.Fatal(err)
		}
		id, err := ix.Insert(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("indexed document %d\n", id)
	}

	// Structural queries run as whole trees — no joins. Branches ([...]),
	// wildcards (*), descendants (//), attribute and text predicates all
	// compile to a single subsequence match.
	for _, expr := range []string{
		"/order/customer",                      // simple path
		"/order/customer[@region='EU']",        // attribute value
		"/order[customer[@region='EU']]/total", // branching
		"//sku",                                // anywhere
		"/order/*/name",                        // wildcard step
	} {
		ids, err := ix.Query(expr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s -> %v\n", expr, ids)
	}

	// QueryVerified filters the (paper-faithful) candidate answers through
	// an exact tree matcher, removing structural false positives and hash
	// collisions.
	ids, err := ix.QueryVerified("/order[customer[@region='EU']]/total")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: %v\n", ids)
}
