package pathindex

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"vist/internal/query"
	"vist/internal/treematch"
	"vist/internal/xmltree"
)

func newIdx(t *testing.T) *Index {
	t.Helper()
	ix, err := New(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func insert(t *testing.T, ix *Index, xmls ...string) ([]DocID, []*xmltree.Node) {
	t.Helper()
	var ids []DocID
	var docs []*xmltree.Node
	for _, x := range xmls {
		n, err := xmltree.ParseString(x)
		if err != nil {
			t.Fatal(err)
		}
		id, err := ix.Insert(n)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		docs = append(docs, n)
	}
	return ids, docs
}

func TestSimplePathPrefixScan(t *testing.T) {
	ix := newIdx(t)
	ids, _ := insert(t, ix,
		"<inproceedings><title>A</title><author>X</author></inproceedings>",
		"<inproceedings><author>Y</author></inproceedings>",
		"<article><title>B</title></article>",
	)
	got, err := ix.Query("/inproceedings/title")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("got %v", got)
	}
}

func TestValuePredicate(t *testing.T) {
	ix := newIdx(t)
	ids, _ := insert(t, ix,
		"<book><author>David</author></book>",
		"<book><author>Mary</author></book>",
	)
	got, err := ix.Query("/book/author[text()='David']")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("got %v", got)
	}
}

func TestAttributeAndAnyKind(t *testing.T) {
	ix := newIdx(t)
	ids, _ := insert(t, ix,
		`<book key="k1"><author>A</author></book>`,
		`<book><key>k1</key><author>B</author></book>`,
	)
	got, err := ix.Query("/book[@key='k1']")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("@key: %v", got)
	}
	// Bare name: matches the attribute in doc 1 and the element in doc 2.
	got, err = ix.Query("/book[key='k1']")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids) {
		t.Fatalf("key: %v", got)
	}
}

func TestBranchingJoin(t *testing.T) {
	ix := newIdx(t)
	ids, _ := insert(t, ix,
		"<p><s><l>boston</l></s><b><l>newyork</l></b></p>",
		"<p><s><l>chicago</l></s><b><l>newyork</l></b></p>",
		"<p><s><l>boston</l></s></p>",
	)
	got, err := ix.Query("/p[s[l='boston']]/b[l='newyork']")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("join: %v", got)
	}
}

func TestWildcardScans(t *testing.T) {
	ix := newIdx(t)
	ids, _ := insert(t, ix,
		"<p><s><l>boston</l></s></p>",
		"<p><b><l>boston</l></b></p>",
		"<p><b><l>ny</l></b></p>",
	)
	got, err := ix.Query("/p/*[l='boston']")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[:2]) {
		t.Fatalf("star: %v", got)
	}
	got, err = ix.Query("//l[text()='ny']")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[2:]) {
		t.Fatalf("descendant: %v", got)
	}
}

func TestDescendantMidPath(t *testing.T) {
	ix := newIdx(t)
	ids, _ := insert(t, ix,
		"<site><a><item><m>intel</m></item></a></site>",
		"<site><item><m>amd</m></item></site>",
	)
	got, err := ix.Query("/site//item[m='intel']")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("//item: %v", got)
	}
}

func randomXML(rng *rand.Rand, n int) []string {
	names := []string{"a", "b", "c", "d"}
	values := []string{"x", "y", "z"}
	var build func(depth int) string
	build = func(depth int) string {
		name := names[rng.Intn(len(names))]
		if depth <= 0 || rng.Intn(3) == 0 {
			return fmt.Sprintf("<%s>%s</%s>", name, values[rng.Intn(len(values))], name)
		}
		s := "<" + name
		if rng.Intn(3) == 0 {
			s += fmt.Sprintf(" %s=%q", names[rng.Intn(len(names))], values[rng.Intn(len(values))])
		}
		s += ">"
		for i := 0; i < 1+rng.Intn(3); i++ {
			s += build(depth - 1)
		}
		return s + "</" + name + ">"
	}
	out := make([]string, n)
	for i := range out {
		out[i] = "<r>" + build(3) + "</r>"
	}
	return out
}

// TestSupersetOfOracle: raw-path DocID joins can over-approximate XPath on
// branching queries (different witnesses per branch), but must never miss a
// true match, and must be exact on single-path queries.
func TestSupersetOfOracle(t *testing.T) {
	ix := newIdx(t)
	xmls := randomXML(rand.New(rand.NewSource(17)), 100)
	ids, docs := insert(t, ix, xmls...)
	singlePath := []string{"/r", "/r/a", "/r/a/b", "//d", "/r//c", "//b[text()='x']"}
	branching := []string{"/r[a][b]", "/r/a[b]/c", "/r/*[a]", "//b[c='x']"}
	for _, expr := range append(append([]string(nil), singlePath...), branching...) {
		q := query.MustParse(expr)
		var oracle []DocID
		for i, d := range docs {
			if treematch.Matches(q, d) {
				oracle = append(oracle, ids[i])
			}
		}
		got, err := ix.Query(expr)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		set := map[DocID]bool{}
		for _, id := range got {
			set[id] = true
		}
		for _, id := range oracle {
			if !set[id] {
				t.Errorf("%s: false negative for doc %d", expr, id)
			}
		}
	}
	for _, expr := range singlePath {
		q := query.MustParse(expr)
		var oracle []DocID
		for i, d := range docs {
			if treematch.Matches(q, d) {
				oracle = append(oracle, ids[i])
			}
		}
		got, _ := ix.Query(expr)
		if !reflect.DeepEqual(normalize(got), normalize(oracle)) {
			t.Errorf("%s: got %v, oracle %v", expr, got, oracle)
		}
	}
}

func normalize(ids []DocID) []DocID {
	if len(ids) == 0 {
		return nil
	}
	return ids
}

func TestRefinedPaths(t *testing.T) {
	ix := newIdx(t)
	expr := "/p[s[l='boston']]/b[l='newyork']"
	if err := ix.RegisterRefinedPath(expr); err != nil {
		t.Fatal(err)
	}
	if err := ix.RegisterRefinedPath(expr); err == nil {
		t.Fatal("duplicate registration succeeded")
	}
	if err := ix.RegisterRefinedPath("/bad["); err == nil {
		t.Fatal("bad pattern registered")
	}
	ids, _ := insert(t, ix,
		"<p><s><l>boston</l></s><b><l>newyork</l></b></p>",
		"<p><s><l>chicago</l></s><b><l>newyork</l></b></p>",
	)
	if ix.RefinedPathCount() != 1 {
		t.Fatalf("RefinedPathCount = %d", ix.RefinedPathCount())
	}
	got, err := ix.Query(expr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("refined answer: %v", got)
	}
	// The materialized answer must equal the raw-path answer for covered
	// documents.
	ix2 := newIdx(t)
	insert(t, ix2,
		"<p><s><l>boston</l></s><b><l>newyork</l></b></p>",
		"<p><s><l>chicago</l></s><b><l>newyork</l></b></p>",
	)
	raw, err := ix2.Query(expr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, raw) {
		t.Fatalf("refined %v != raw %v", got, raw)
	}
}
