package pathindex

import (
	"fmt"
	"sort"

	"vist/internal/query"
	"vist/internal/treematch"
	"vist/internal/xmltree"
)

// Refined paths are Index Fabric's answer to branching and wildcard
// queries: "special index entries for frequently occurring multiple-path
// queries" (the paper's Related Work). The paper's Table 4 deliberately
// runs Index Fabric *without* them ("raw paths") and lists their costs:
// query patterns must be monitored, only registered queries benefit, and
// every refined path adds maintenance work to each insertion. This file
// implements them so those trade-offs can be measured (see the
// ablation-refined experiment).

// refined is one registered query pattern with its materialized answer set.
type refined struct {
	q   *query.Query
	ids map[DocID]struct{}
}

// RegisterRefinedPath precomputes and thereafter maintains the answer set
// of the given query pattern. Documents inserted before registration are
// not covered (Index Fabric would backfill with a full scan; callers can
// re-insert or register before loading). Returns an error if the pattern
// does not parse.
func (ix *Index) RegisterRefinedPath(expr string) error {
	q, err := query.Parse(expr)
	if err != nil {
		return err
	}
	if ix.refined == nil {
		ix.refined = make(map[string]*refined)
	}
	if _, dup := ix.refined[expr]; dup {
		return fmt.Errorf("pathindex: refined path %q already registered", expr)
	}
	ix.refined[expr] = &refined{q: q, ids: make(map[DocID]struct{})}
	return nil
}

// RefinedPathCount reports how many patterns are registered.
func (ix *Index) RefinedPathCount() int { return len(ix.refined) }

// maintainRefined evaluates every registered pattern against a newly
// inserted document — the per-insert maintenance cost the paper warns
// about.
func (ix *Index) maintainRefined(id DocID, doc *xmltree.Node) {
	for _, r := range ix.refined {
		if treematch.Matches(r.q, doc) {
			r.ids[id] = struct{}{}
		}
	}
}

// queryRefined answers expr from a materialized set if one is registered.
func (ix *Index) queryRefined(expr string) ([]DocID, bool) {
	r, ok := ix.refined[expr]
	if !ok {
		return nil, false
	}
	ids := make([]DocID, 0, len(r.ids))
	for id := range r.ids {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, true
}
