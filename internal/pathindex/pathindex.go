// Package pathindex implements the raw-path comparator used in the paper's
// evaluation (Section 4): an Index-Fabric-like index over every root-to-leaf
// path of every document, without the "refined paths" extension.
//
// Keys are structure paths (element/attribute names only); leaf text is
// stored as the entry's payload, not in the key — mirroring the paper's
// observation that for Index Fabric "value indexes require special
// handling": a value predicate cannot be seeked, it must filter the scanned
// entries. Simple path queries are key-prefix scans; branching queries
// decompose into one sub-query per root-to-leaf query path whose DocID sets
// are then joined (intersected); wildcard steps degrade to scanning the
// range of the longest wildcard-free key prefix with per-key pattern
// matching — the exact weaknesses Table 4 of the paper demonstrates.
package pathindex

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"vist/internal/btree"
	"vist/internal/keyenc"
	"vist/internal/query"
	"vist/internal/seq"
	"vist/internal/xmltree"
)

// DocID identifies a document within the index.
type DocID uint64

// Index stores raw paths in a single B+Tree. Keys are
// nameComponent*‖docID(8)‖ordinal(4); each component is the name bytes plus
// a 0x00 terminator — order-preserving, so path prefixes are key prefixes.
// The entry payload is the leaf's text value (empty for childless
// elements).
type Index struct {
	paths   *btree.BTree
	schema  *xmltree.Schema
	nextID  DocID
	count   uint64
	refined map[string]*refined
}

// New creates an in-memory raw-path index.
func New(schema *xmltree.Schema, pageSize int) (*Index, error) {
	if pageSize == 0 {
		pageSize = btree.DefaultPageSize
	}
	t, err := btree.New(btree.NewMemPager(pageSize), btree.Options{PageSize: pageSize})
	if err != nil {
		return nil, err
	}
	return &Index{paths: t, schema: schema, nextID: 1}, nil
}

// DocCount reports the number of indexed documents.
func (ix *Index) DocCount() uint64 { return ix.count }

// SizeBytes reports the index footprint.
func (ix *Index) SizeBytes() int64 { return ix.paths.SizeBytes() }

// appendComponent encodes one path component. NUL bytes in names are
// replaced (NUL is not valid in XML names anyway).
func appendComponent(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == 0 {
			c = 1
		}
		dst = append(dst, c)
	}
	return append(dst, 0)
}

// Insert indexes every root-to-leaf path of the document (normalized in
// place) and returns its ID.
func (ix *Index) Insert(doc *xmltree.Node) (DocID, error) {
	xmltree.Normalize(doc, ix.schema)
	id := ix.nextID
	ord := uint32(0)
	emit := func(path []byte, value string) error {
		key := append([]byte(nil), path...)
		key = keyenc.AppendUint64(key, uint64(id))
		key = keyenc.AppendUint32(key, ord)
		ord++
		return ix.paths.Put(key, []byte(value))
	}
	var walk func(n *xmltree.Node, prefix []byte) error
	walk = func(n *xmltree.Node, prefix []byte) error {
		if n.Kind == xmltree.Value {
			// The text leaf instantiates its parent's path.
			return emit(prefix, n.Text)
		}
		path := appendComponent(prefix, xmltree.SortName(n))
		if len(n.Children) == 0 {
			return emit(path, "")
		}
		for _, ch := range n.Children {
			if err := walk(ch, path); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(doc, nil); err != nil {
		return 0, err
	}
	ix.maintainRefined(id, doc)
	ix.nextID++
	ix.count++
	return id, nil
}

// step is one component pattern of a decomposed query path.
type step struct {
	kind  query.Kind // Name, Star, or Value
	names []string   // candidate component spellings for Name steps
	text  string     // Value steps
	desc  bool       // '//' axis before this step
}

// Query evaluates a path expression: it decomposes the query tree into
// root-to-leaf paths, answers each with a prefix scan (or a filtered range
// scan when wildcards are present), and intersects the resulting DocID
// sets.
func (ix *Index) Query(expr string) ([]DocID, error) {
	if ids, ok := ix.queryRefined(expr); ok {
		return ids, nil
	}
	q, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	paths := decompose(q)
	if len(paths) == 0 {
		return nil, fmt.Errorf("pathindex: query has no paths")
	}
	var result map[DocID]struct{}
	for _, p := range paths {
		set, err := ix.evalPath(p)
		if err != nil {
			return nil, err
		}
		if result == nil {
			result = set
			continue
		}
		// Join: intersect DocID sets (the expensive step the paper calls
		// out for path-based indexes on branching queries).
		for id := range result {
			if _, ok := set[id]; !ok {
				delete(result, id)
			}
		}
	}
	ids := make([]DocID, 0, len(result))
	for id := range result {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// decompose flattens the query tree into its root-to-leaf paths.
func decompose(q *query.Query) [][]step {
	var out [][]step
	var walk func(n *query.Node, acc []step)
	walk = func(n *query.Node, acc []step) {
		s := step{desc: n.Axis == query.Descendant}
		switch n.Kind {
		case query.Star:
			s.kind = query.Star
		case query.Value:
			s.kind = query.Value
			s.text = n.Text
		default:
			s.kind = query.Name
			switch {
			case n.IsAttr:
				s.names = []string{seq.AttrName(n.Name)}
			case n.AnyKind:
				s.names = []string{n.Name, seq.AttrName(n.Name)}
			default:
				s.names = []string{n.Name}
			}
		}
		acc = append(acc, s)
		if len(n.Children) == 0 {
			out = append(out, append([]step(nil), acc...))
			return
		}
		for _, ch := range n.Children {
			walk(ch, acc)
		}
	}
	for _, stepNode := range q.Root.Children {
		walk(stepNode, nil)
	}
	return out
}

// evalPath answers one root-to-leaf query path.
func (ix *Index) evalPath(p []step) (map[DocID]struct{}, error) {
	// Expand AnyKind alternatives into concrete component paths.
	variants := [][]step{nil}
	for _, s := range p {
		var next [][]step
		if s.kind == query.Name && len(s.names) > 1 {
			for _, v := range variants {
				for _, name := range s.names {
					alt := s
					alt.names = []string{name}
					next = append(next, append(append([]step(nil), v...), alt))
				}
			}
		} else {
			for _, v := range variants {
				next = append(next, append(append([]step(nil), v...), s))
			}
		}
		variants = next
	}
	out := make(map[DocID]struct{})
	for _, v := range variants {
		if err := ix.evalVariant(v, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (ix *Index) evalVariant(p []step, out map[DocID]struct{}) error {
	// Longest wildcard-free key prefix (value steps end the key pattern;
	// the value itself is a payload filter, never part of the key).
	var prefix []byte
	i := 0
	for ; i < len(p); i++ {
		s := p[i]
		if s.desc || s.kind == query.Star || s.kind == query.Value {
			break
		}
		prefix = appendComponent(prefix, s.names[0])
	}
	rest := p[i:]
	return ix.paths.ScanPrefix(prefix, func(k, v []byte) (bool, error) {
		comps, id, err := parseKey(k)
		if err != nil {
			return false, err
		}
		if matchRest(comps[i:], rest, v) {
			out[id] = struct{}{}
		}
		return true, nil
	})
}

func parseKey(k []byte) ([]string, DocID, error) {
	if len(k) < 12 {
		return nil, 0, fmt.Errorf("pathindex: key too short")
	}
	body, tail := k[:len(k)-12], k[len(k)-12:]
	var comps []string
	for len(body) > 0 {
		end := bytes.IndexByte(body, 0)
		if end < 0 {
			return nil, 0, fmt.Errorf("pathindex: unterminated component")
		}
		comps = append(comps, string(body[:end]))
		body = body[end+1:]
	}
	return comps, DocID(binary.BigEndian.Uint64(tail[:8])), nil
}

// matchRest matches the remaining (wildcard- or value-bearing) steps
// against the remaining key components and the entry's stored value. A
// name-terminated pattern may be extended by deeper components (paths to
// deeper leaves still witness the query path); a value-terminated pattern
// must end exactly at the entry's node with an equal stored value.
func matchRest(comps []string, steps []step, value []byte) bool {
	if len(steps) == 0 {
		return true
	}
	s := steps[0]
	if s.kind == query.Value {
		return len(comps) == 0 && string(value) == s.text
	}
	if s.desc {
		for skip := 0; skip <= len(comps); skip++ {
			anchored := s
			anchored.desc = false
			if matchRest(comps[skip:], append([]step{anchored}, steps[1:]...), value) {
				return true
			}
		}
		return false
	}
	if len(comps) == 0 {
		return false
	}
	switch s.kind {
	case query.Star:
		// any name component matches
	default:
		if comps[0] != s.names[0] {
			return false
		}
	}
	return matchRest(comps[1:], steps[1:], value)
}

// Close releases resources.
func (ix *Index) Close() error { return ix.paths.Close() }
