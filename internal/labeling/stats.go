package labeling

import (
	"encoding/binary"
	"fmt"
	"sort"

	"vist/internal/seq"
)

// FollowEntry is one member of a node's follow set with its probability
// P_x(yᵢ) of immediately following x (Eq. 2 of the paper). Nodes are
// identified by canonical element keys (seq.Elem.Key); the virtual suffix
// tree's root has the empty key.
type FollowEntry struct {
	Key string
	P   float64
}

// FollowProbabilities derives P_x(yᵢ) from the occurrence probabilities
// p(yᵢ|x) of an ordered follow set, per Eq. (2):
//
//	P_x(yᵢ) = p(yᵢ|x) · Π_{k<i} (1 − p(y_k|x))
//
// It is exported for callers that hold schema-level conditional
// probabilities (the paper's "semantic clues"); Stats computes the same
// quantities empirically instead.
//
// Inputs are clamped to [0, 1] (NaN counts as 0): denormalized schema
// clues can carry p > 1, and without the clamp a single such entry drives
// the running remainder Π (1 − p) negative, corrupting the sign of every
// subsequent probability. With the clamp the outputs are a valid
// sub-distribution (each in [0, 1], summing to at most 1).
func FollowProbabilities(follow []FollowEntry) []FollowEntry {
	out := make([]FollowEntry, len(follow))
	rem := 1.0
	for i, f := range follow {
		p := clamp01(f.P)
		out[i] = FollowEntry{Key: f.Key, P: p * rem}
		rem *= 1 - p
	}
	return out
}

// clamp01 forces p into [0, 1]; NaN maps to 0 (the comparisons below are
// false for NaN, so the final return catches it).
func clamp01(p float64) float64 {
	if p > 1 {
		return 1
	}
	if p >= 0 {
		return p
	}
	return 0
}

// Stats accumulates empirical follow statistics from sample sequences: how
// often each element is immediately followed by each other element. This is
// exactly the distribution the dynamic labeler needs, because the children
// of a virtual-suffix-tree node for element x are the possible next
// elements after x in inserted sequences.
//
// Statistics are part of an index's identity: once an index has been built
// with a Stats table, reopening it must use the same table (persist it with
// Encode) or newly allocated scopes could overlap existing ones.
type Stats struct {
	counts map[string]map[string]uint64
	totals map[string]uint64

	// finalized tables
	index map[string]map[string]int
	cum   map[string][]float64 // cum[i] = Σ_{j<i} normalized P of entry j
	order map[string][]FollowEntry
	syms  map[seq.Symbol]uint64 // trained occurrences per element symbol
}

// NewStats returns an empty statistics collector.
func NewStats() *Stats {
	return &Stats{
		counts: make(map[string]map[string]uint64),
		totals: make(map[string]uint64),
	}
}

// AddSequence folds one sample sequence into the statistics, including the
// transition from the virtual root (empty key) to the first element.
func (st *Stats) AddSequence(s seq.Sequence) {
	prev := ""
	for _, e := range s {
		cur := e.Key()
		st.add(prev, cur, 1)
		prev = cur
	}
	st.index = nil // invalidate finalized tables
}

func (st *Stats) add(x, y string, c uint64) {
	m := st.counts[x]
	if m == nil {
		m = make(map[string]uint64)
		st.counts[x] = m
	}
	m[y] += c
	st.totals[x] += c
}

// Finalize computes the normalized, probability-ordered follow tables and
// the per-symbol occurrence totals. Adding more sequences afterwards
// requires calling it again.
func (st *Stats) Finalize() {
	st.index = make(map[string]map[string]int, len(st.counts))
	st.cum = make(map[string][]float64, len(st.counts))
	st.order = make(map[string][]FollowEntry, len(st.counts))
	st.syms = make(map[seq.Symbol]uint64)
	for _, m := range st.counts {
		for y, c := range m {
			// Element keys start with the 4-byte big-endian symbol
			// (seq.Elem.Key); every transition into y is one occurrence.
			if len(y) >= 4 {
				sym := seq.Symbol(uint32(y[0])<<24 | uint32(y[1])<<16 | uint32(y[2])<<8 | uint32(y[3]))
				st.syms[sym] += c
			}
		}
	}
	for x, m := range st.counts {
		entries := make([]FollowEntry, 0, len(m))
		total := float64(st.totals[x])
		for y, c := range m {
			entries = append(entries, FollowEntry{Key: y, P: float64(c) / total})
		}
		// Highest probability first (largest scopes first); ties broken by
		// key for determinism.
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].P != entries[j].P {
				return entries[i].P > entries[j].P
			}
			return entries[i].Key < entries[j].Key
		})
		idx := make(map[string]int, len(entries))
		cum := make([]float64, len(entries)+1)
		for i, e := range entries {
			idx[e.Key] = i
			cum[i+1] = cum[i] + e.P
		}
		if last := cum[len(entries)]; last > 0 {
			for i := range cum {
				cum[i] /= last
			}
		}
		st.index[x] = idx
		st.cum[x] = cum
		st.order[x] = entries
	}
}

// Follow returns the finalized follow set of x, highest probability first.
func (st *Stats) Follow(x string) []FollowEntry {
	if st.index == nil {
		st.Finalize()
	}
	return st.order[x]
}

// SymbolCount reports the trained occurrence count of elements with the
// given symbol. ok is false when the symbol never occurred in the training
// sample. The query planner uses this as a selectivity signal for
// sequences whose cardinality the path synopsis could not bound.
func (st *Stats) SymbolCount(sym seq.Symbol) (uint64, bool) {
	if st.index == nil {
		st.Finalize()
	}
	c, ok := st.syms[sym]
	return c, ok
}

// Encode serializes the raw counts for persistence alongside an index.
func (st *Stats) Encode() []byte {
	xs := make([]string, 0, len(st.counts))
	for x := range st.counts {
		xs = append(xs, x)
	}
	sort.Strings(xs)
	out := binary.AppendUvarint(nil, uint64(len(xs)))
	for _, x := range xs {
		out = appendString(out, x)
		m := st.counts[x]
		ys := make([]string, 0, len(m))
		for y := range m {
			ys = append(ys, y)
		}
		sort.Strings(ys)
		out = binary.AppendUvarint(out, uint64(len(ys)))
		for _, y := range ys {
			out = appendString(out, y)
			out = binary.AppendUvarint(out, m[y])
		}
	}
	return out
}

// DecodeStats restores a table produced by Encode.
func DecodeStats(b []byte) (*Stats, error) {
	st := NewStats()
	nx, b, err := readUvarint(b)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nx; i++ {
		var x string
		x, b, err = readString(b)
		if err != nil {
			return nil, err
		}
		var ny uint64
		ny, b, err = readUvarint(b)
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < ny; j++ {
			var y string
			y, b, err = readString(b)
			if err != nil {
				return nil, err
			}
			var c uint64
			c, b, err = readUvarint(b)
			if err != nil {
				return nil, err
			}
			st.add(x, y, c)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("labeling: %d trailing stats bytes", len(b))
	}
	return st, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("labeling: truncated varint")
	}
	return v, b[n:], nil
}

func readString(b []byte) (string, []byte, error) {
	l, b, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(b)) < l {
		return "", nil, fmt.Errorf("labeling: truncated string")
	}
	return string(b[:l]), b[l:], nil
}

// StatsAllocator allocates subscopes proportional to follow-set
// probabilities (Eq. 3–4). Elements absent from the training data are
// allocated uniformly, in arrival order, inside a disjoint unknown-element
// region; parents with no statistics at all fall back to the uniform
// strategy over the whole usable region (consistently for all of their
// children), so disjointness always holds.
type StatsAllocator struct {
	Config
	stats *Stats
	// UnknownLambda is the fan-out estimate for the unknown-element region;
	// values below 2 select 8.
	UnknownLambda uint64
}

// NewStatsAllocator builds an allocator over st, finalizing it if needed.
func NewStatsAllocator(st *Stats, cfg Config) *StatsAllocator {
	if st.index == nil {
		st.Finalize()
	}
	return &StatsAllocator{Config: cfg, stats: st}
}

func (a *StatsAllocator) unknownLambda() uint64 {
	if a.UnknownLambda < 2 {
		return 8
	}
	return a.UnknownLambda
}

// knownFracNum/knownFracDen: the share of the usable region devoted to
// elements present in the statistics; the rest is the unknown-element
// region.
const (
	knownFracNum = 3
	knownFracDen = 4
)

// SubScope implements Allocator.
func (a *StatsAllocator) SubScope(parent Scope, parentKey string, k int, childKey string) (Scope, bool, bool) {
	cum, ok := a.stats.cum[parentKey]
	if !ok {
		// No clues for this parent: pure uniform over the usable region.
		sub, _, allocOK := Uniform{Config: a.Config}.SubScope(parent, parentKey, k, childKey)
		return sub, true, allocOK
	}
	u := a.usable(parent)
	knownSize := u / knownFracDen * knownFracNum
	base := parent.N + 1
	if i, known := a.stats.index[parentKey][childKey]; known {
		lo := base + scale(knownSize, cum[i])
		hi := base + scale(knownSize, cum[i+1])
		if hi <= lo {
			return Scope{}, false, false
		}
		return Scope{N: lo, Size: hi - lo - 1}, false, true
	}
	// Unknown element: uniform allocation by arrival order inside the
	// unknown region.
	sub, allocOK := uniformAt(base+knownSize, u-knownSize, a.unknownLambda(), k)
	return sub, true, allocOK
}

var _ Allocator = (*StatsAllocator)(nil)

// scale computes floor(size · frac) monotonically in frac, clamped to
// [0, size]. Monotonicity guarantees that consecutive cumulative boundaries
// never cross, which keeps sibling scopes disjoint even under float64
// rounding.
func scale(size uint64, frac float64) uint64 {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return size
	}
	v := uint64(float64(size) * frac)
	if v > size {
		v = size
	}
	return v
}

// StatsFromClues builds a statistics table from schema-level occurrence
// probabilities — the paper's "semantic clues" route to dynamic labeling.
// For each context x (a canonical element key; "" is the virtual root),
// clues[x] lists x's follow set with occurrence probabilities p(yᵢ|x) in
// follow-set order; Eq. (2) converts them to immediate-follow
// probabilities, which are folded into the table as weighted counts. The
// result plugs into NewStatsAllocator exactly like empirically collected
// statistics.
func StatsFromClues(clues map[string][]FollowEntry) *Stats {
	const scale = 1 << 20 // probability resolution when quantized to counts
	st := NewStats()
	for x, follow := range clues {
		for _, f := range FollowProbabilities(follow) {
			c := uint64(f.P * scale)
			if c == 0 && f.P > 0 {
				c = 1
			}
			if c > 0 {
				st.add(x, f.Key, c)
			}
		}
	}
	st.Finalize()
	return st
}
