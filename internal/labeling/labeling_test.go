package labeling

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vist/internal/seq"
	"vist/internal/xmltree"
)

func TestRootScope(t *testing.T) {
	r := Root()
	if r.N != 0 {
		t.Fatalf("root N = %d", r.N)
	}
	if !r.ContainsLabel(1) || !r.ContainsLabel(math.MaxUint64-1) {
		t.Fatal("root scope must contain almost all labels")
	}
	if r.ContainsLabel(0) {
		t.Fatal("a scope must not contain its own label as a descendant")
	}
}

func TestScopeContains(t *testing.T) {
	parent := Scope{N: 100, Size: 100} // descendants in (100, 200]
	child := Scope{N: 150, Size: 20}   // descendants in (150, 170]
	if !parent.Contains(child) {
		t.Fatal("parent must contain child")
	}
	if child.Contains(parent) {
		t.Fatal("child must not contain parent")
	}
	edge := Scope{N: 101, Size: 99} // uses the full region
	if !parent.Contains(edge) {
		t.Fatal("full-region child must be contained")
	}
	over := Scope{N: 150, Size: 51} // reaches 201 > 200
	if parent.Contains(over) {
		t.Fatal("overflowing child must not be contained")
	}
	if !parent.ContainsLabel(200) || parent.ContainsLabel(201) {
		t.Fatal("ContainsLabel boundary wrong")
	}
}

func TestScopeDisjoint(t *testing.T) {
	a := Scope{N: 10, Size: 5}  // [10, 15]
	b := Scope{N: 16, Size: 3}  // [16, 19]
	c := Scope{N: 15, Size: 10} // overlaps a at 15
	if !a.Disjoint(b) || !b.Disjoint(a) {
		t.Fatal("a and b must be disjoint")
	}
	if a.Disjoint(c) {
		t.Fatal("a and c overlap")
	}
}

func TestUniformHalving(t *testing.T) {
	// The paper's Figure 8: with λ = 2, child k gets 1/2^(k+1) of the
	// parent region.
	u := Uniform{Lambda: 2, Config: Config{ReserveDen: math.MaxUint64}} // effectively no reserve
	parent := Scope{N: 0, Size: 20480}
	c0, usedK, ok := u.SubScope(parent, "", 0, "")
	if !ok || !usedK {
		t.Fatalf("child 0 alloc failed")
	}
	if c0.N != 1 || c0.Size != 20480/2-1 {
		t.Fatalf("child 0 = %+v, want N=1 Size=%d", c0, 20480/2-1)
	}
	c1, _, ok := u.SubScope(parent, "", 1, "")
	if !ok {
		t.Fatal("child 1 alloc failed")
	}
	if c1.N != 1+10240 || c1.Size != 10240/2-1 {
		t.Fatalf("child 1 = %+v", c1)
	}
	if !c0.Disjoint(c1) {
		t.Fatal("siblings overlap")
	}
	if !parent.Contains(c0) || !parent.Contains(c1) {
		t.Fatal("children escape parent")
	}
}

func TestUniformUnderflow(t *testing.T) {
	u := Uniform{Lambda: 2}
	parent := Scope{N: 0, Size: 3}
	// usable = 3 - 0 = 3 (3/16 = 0 reserve); child 0 gets 1, child 1 gets 1,
	// child 2 underflows.
	var scopes []Scope
	for k := 0; ; k++ {
		s, _, ok := u.SubScope(parent, "", k, "")
		if !ok {
			if k == 0 {
				t.Fatal("no child allocated at all")
			}
			break
		}
		scopes = append(scopes, s)
		if k > 10 {
			t.Fatal("underflow never signalled")
		}
	}
	for i := range scopes {
		for j := i + 1; j < len(scopes); j++ {
			if !scopes[i].Disjoint(scopes[j]) {
				t.Fatalf("scopes %d and %d overlap: %+v %+v", i, j, scopes[i], scopes[j])
			}
		}
	}
}

func TestReserveRegion(t *testing.T) {
	cfg := Config{ReserveDen: 16}
	parent := Scope{N: 100, Size: 1600}
	lo, hi := cfg.Reserve(parent)
	if hi-lo != 100 {
		t.Fatalf("reserve size = %d, want 100", hi-lo)
	}
	if hi != parent.N+1+parent.Size {
		t.Fatalf("reserve must end at the scope end: hi=%d", hi)
	}
	// The uniform allocator must never intrude into the reserve.
	u := Uniform{Lambda: 2, Config: cfg}
	for k := 0; k < 20; k++ {
		s, _, ok := u.SubScope(parent, "", k, "")
		if !ok {
			break
		}
		if s.N+s.Size >= lo {
			t.Fatalf("child %d (%+v) intrudes into reserve [%d,%d)", k, s, lo, hi)
		}
	}
}

func TestSequentialLayout(t *testing.T) {
	scopes := Sequential(1000, 4)
	if len(scopes) != 4 {
		t.Fatalf("got %d scopes", len(scopes))
	}
	for i := 0; i < len(scopes)-1; i++ {
		if !scopes[i].Contains(scopes[i+1]) {
			t.Fatalf("sequential scope %d does not contain %d: %+v %+v", i, i+1, scopes[i], scopes[i+1])
		}
	}
	if scopes[3].Size != 0 {
		t.Fatalf("last sequential scope must be size 0: %+v", scopes[3])
	}
	if scopes[0].N != 1000 || scopes[0].Size != 3 {
		t.Fatalf("first = %+v", scopes[0])
	}
}

func TestFollowProbabilitiesEq2(t *testing.T) {
	// Paper worked numbers: p(y1|x)=0.8, p(y2|x)=0.8 (independent) gives
	// P_x(y1)=0.8, P_x(y2)=(1-0.8)*0.8=0.16.
	in := []FollowEntry{{Key: "u", P: 0.8}, {Key: "v", P: 0.8}, {Key: "w", P: 0.5}}
	out := FollowProbabilities(in)
	if math.Abs(out[0].P-0.8) > 1e-12 {
		t.Fatalf("P(u) = %v", out[0].P)
	}
	if math.Abs(out[1].P-0.16) > 1e-12 {
		t.Fatalf("P(v) = %v", out[1].P)
	}
	if math.Abs(out[2].P-0.2*0.2*0.5) > 1e-12 {
		t.Fatalf("P(w) = %v", out[2].P)
	}
}

// TestFollowProbabilitiesSubDistribution is the property behind Eq. (2):
// whatever the inputs — including denormalized clues with p > 1, negative
// values, and NaN — the outputs must form a valid sub-distribution (every
// P in [0, 1], total at most 1). Before input clamping, a single p > 1
// drove the running remainder negative and flipped the sign of every
// subsequent probability.
func TestFollowProbabilitiesSubDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(8) + 1
		in := make([]FollowEntry, n)
		for i := range in {
			var p float64
			switch rng.Intn(4) {
			case 0:
				p = rng.Float64() // well-formed
			case 1:
				p = 1 + rng.Float64()*10 // denormalized, > 1
			case 2:
				p = -rng.Float64() // negative
			default:
				p = math.NaN()
			}
			in[i] = FollowEntry{Key: fmt.Sprintf("k%d", i), P: p}
		}
		out := FollowProbabilities(in)
		sum := 0.0
		for i, f := range out {
			if !(f.P >= 0 && f.P <= 1) { // also catches NaN
				t.Fatalf("trial %d: P(%s) = %v out of [0,1] (inputs %+v)", trial, f.Key, f.P, in)
			}
			if in[i].P >= 1 && math.Abs(f.P-sumComplement(out[:i])) > 1e-9 {
				// An input clamped to 1 takes the entire remaining mass.
				t.Fatalf("trial %d: entry %d (p>=1) got %v, want remainder %v", trial, i, f.P, sumComplement(out[:i]))
			}
			sum += f.P
		}
		if sum > 1+1e-9 {
			t.Fatalf("trial %d: probabilities sum to %v > 1 (inputs %+v, outputs %+v)", trial, sum, in, out)
		}
	}
}

// sumComplement is the probability mass left after the given entries.
func sumComplement(entries []FollowEntry) float64 {
	rem := 1.0
	for _, e := range entries {
		rem -= e.P
	}
	return rem
}

func sampleSequences(t *testing.T) []seq.Sequence {
	t.Helper()
	d := seq.NewDict()
	docs := []*xmltree.Node{
		xmltree.NewElement("p",
			xmltree.NewElement("s", xmltree.NewElementText("n", "dell")),
			xmltree.NewElement("b", xmltree.NewElementText("l", "ny")),
		),
		xmltree.NewElement("p",
			xmltree.NewElement("s", xmltree.NewElementText("n", "ibm")),
		),
		xmltree.NewElement("p",
			xmltree.NewElement("b", xmltree.NewElementText("l", "boston")),
		),
	}
	var out []seq.Sequence
	for _, doc := range docs {
		xmltree.Normalize(doc, nil)
		out = append(out, seq.Encode(doc, d))
	}
	return out
}

func TestStatsFollowOrdering(t *testing.T) {
	st := NewStats()
	for _, s := range sampleSequences(t) {
		st.AddSequence(s)
	}
	st.Finalize()
	// All three docs start with "p": the root's follow set has exactly one
	// entry with probability 1.
	root := st.Follow("")
	if len(root) != 1 || math.Abs(root[0].P-1) > 1e-12 {
		t.Fatalf("root follow = %+v", root)
	}
}

func TestStatsEncodeDecode(t *testing.T) {
	st := NewStats()
	for _, s := range sampleSequences(t) {
		st.AddSequence(s)
	}
	b := st.Encode()
	st2, err := DecodeStats(b)
	if err != nil {
		t.Fatalf("DecodeStats: %v", err)
	}
	st.Finalize()
	st2.Finalize()
	for x, entries := range st.order {
		entries2 := st2.order[x]
		if len(entries) != len(entries2) {
			t.Fatalf("follow(%x): %d vs %d entries", x, len(entries), len(entries2))
		}
		for i := range entries {
			if entries[i].Key != entries2[i].Key || math.Abs(entries[i].P-entries2[i].P) > 1e-12 {
				t.Fatalf("follow(%x)[%d]: %+v vs %+v", x, i, entries[i], entries2[i])
			}
		}
	}
	if _, err := DecodeStats(append(b, 7)); err == nil {
		t.Fatal("DecodeStats accepted trailing bytes")
	}
	if _, err := DecodeStats([]byte{255}); err == nil {
		t.Fatal("DecodeStats accepted garbage")
	}
}

func TestStatsAllocatorDisjointKnown(t *testing.T) {
	st := NewStats()
	for _, s := range sampleSequences(t) {
		st.AddSequence(s)
	}
	a := NewStatsAllocator(st, Config{})
	parent := Root()
	// Allocate one scope per known follower of every observed context and
	// assert pairwise disjointness under the same parent.
	for x := range st.counts {
		var scopes []Scope
		for _, f := range st.Follow(x) {
			s, usedK, ok := a.SubScope(parent, x, 0, f.Key)
			if !ok {
				t.Fatalf("known follower %x underflowed under huge scope", f.Key)
			}
			if usedK {
				t.Fatalf("known follower consumed arrival slot")
			}
			scopes = append(scopes, s)
		}
		for i := range scopes {
			if !parent.Contains(scopes[i]) {
				t.Fatalf("scope %+v escapes parent", scopes[i])
			}
			for j := i + 1; j < len(scopes); j++ {
				if !scopes[i].Disjoint(scopes[j]) {
					t.Fatalf("known scopes overlap: %+v %+v", scopes[i], scopes[j])
				}
			}
		}
	}
}

func TestStatsAllocatorUnknownRegionDisjointFromKnown(t *testing.T) {
	st := NewStats()
	for _, s := range sampleSequences(t) {
		st.AddSequence(s)
	}
	a := NewStatsAllocator(st, Config{})
	parent := Root()
	var known, unknown []Scope
	for x := range st.counts {
		for _, f := range st.Follow(x) {
			s, _, ok := a.SubScope(parent, x, 0, f.Key)
			if ok {
				known = append(known, s)
			}
		}
		// Unknown children in arrival order.
		for k := 0; k < 5; k++ {
			s, usedK, ok := a.SubScope(parent, x, k, "\x00\x00\x00\x99unknown")
			if !ok {
				t.Fatalf("unknown alloc %d failed under huge scope", k)
			}
			if !usedK {
				t.Fatal("unknown follower must consume arrival slot")
			}
			unknown = append(unknown, s)
		}
		for _, ks := range known {
			for _, us := range unknown {
				if !ks.Disjoint(us) {
					t.Fatalf("known %+v overlaps unknown %+v", ks, us)
				}
			}
		}
		known, unknown = known[:0], unknown[:0]
	}
}

func TestStatsAllocatorFallbackForUnseenParent(t *testing.T) {
	st := NewStats()
	a := NewStatsAllocator(st, Config{})
	parent := Root()
	s0, usedK, ok := a.SubScope(parent, "never-seen", 0, "x")
	if !ok || !usedK {
		t.Fatal("fallback allocation failed")
	}
	s1, _, ok := a.SubScope(parent, "never-seen", 1, "y")
	if !ok || !s0.Disjoint(s1) {
		t.Fatalf("fallback siblings overlap: %+v %+v", s0, s1)
	}
}

func TestPropertyUniformSiblingsDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lam := uint64(2 + rng.Intn(20))
		u := Uniform{Lambda: lam}
		n := rng.Uint64() >> 1
		size := 1 + rng.Uint64()>>uint(rng.Intn(40))
		// Real scopes never overflow the label space: N+Size+1 <= MaxUint64.
		if size > math.MaxUint64-n-1 {
			size = math.MaxUint64 - n - 1
		}
		parent := Scope{N: n, Size: size}
		var scopes []Scope
		for k := 0; k < 30; k++ {
			s, _, ok := u.SubScope(parent, "", k, "")
			if !ok {
				break
			}
			if !parent.Contains(s) {
				return false
			}
			scopes = append(scopes, s)
		}
		lo, hi := u.Reserve(parent)
		for i := range scopes {
			if scopes[i].N+scopes[i].Size >= lo && lo < hi {
				return false // intrudes into reserve
			}
			for j := i + 1; j < len(scopes); j++ {
				if !scopes[i].Disjoint(scopes[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySequentialNested(t *testing.T) {
	f := func(lo uint64, cnt uint8) bool {
		count := uint64(cnt%32) + 1
		if lo > math.MaxUint64-count {
			lo = math.MaxUint64 - count
		}
		scopes := Sequential(lo, count)
		for i := 0; i+1 < len(scopes); i++ {
			if !scopes[i].Contains(scopes[i+1]) {
				return false
			}
		}
		return scopes[len(scopes)-1].Size == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsFromClues(t *testing.T) {
	// The paper's worked example: p(u|x)=0.8, p(v|x)=0.8 in follow order
	// gives P_x(u)=0.8, P_x(v)=0.16; the resulting table must rank u first
	// with ~5x v's share.
	clues := map[string][]FollowEntry{
		"x": {{Key: "u", P: 0.8}, {Key: "v", P: 0.8}},
	}
	st := StatsFromClues(clues)
	follow := st.Follow("x")
	if len(follow) != 2 || follow[0].Key != "u" {
		t.Fatalf("follow = %+v", follow)
	}
	ratio := follow[0].P / follow[1].P
	if ratio < 4.5 || ratio > 5.5 {
		t.Fatalf("P(u)/P(v) = %v, want ≈5", ratio)
	}
	// The table must drive an allocator: u's scope ≈ 5x v's scope.
	a := NewStatsAllocator(st, Config{})
	parent := Root()
	su, _, ok := a.SubScope(parent, "x", 0, "u")
	if !ok {
		t.Fatal("u alloc failed")
	}
	sv, _, ok := a.SubScope(parent, "x", 0, "v")
	if !ok {
		t.Fatal("v alloc failed")
	}
	if !su.Disjoint(sv) {
		t.Fatalf("clue scopes overlap: %+v %+v", su, sv)
	}
	sizeRatio := float64(su.Size) / float64(sv.Size)
	if sizeRatio < 4 || sizeRatio > 6 {
		t.Fatalf("scope size ratio = %v, want ≈5", sizeRatio)
	}
}

func TestStatsFromCluesZeroAndTiny(t *testing.T) {
	st := StatsFromClues(map[string][]FollowEntry{
		"x": {{Key: "a", P: 1.0}, {Key: "b", P: 0.0000001}, {Key: "c", P: 0}},
	})
	follow := st.Follow("x")
	// a certain; b tiny but retained (quantized up to 1); c dropped after
	// a's certainty zeroes its Eq(2) probability.
	if len(follow) == 0 || follow[0].Key != "a" {
		t.Fatalf("follow = %+v", follow)
	}
	for _, f := range follow {
		if f.Key == "c" {
			t.Fatalf("zero-probability entry retained: %+v", follow)
		}
	}
}
