// Package labeling implements ViST's dynamic virtual-suffix-tree labeling
// (Section 3.4.1 of the paper): nested scopes assigned top-down as sequences
// are inserted, so that the suffix tree itself never needs to be
// materialized and labels never change after assignment.
//
// Two allocation strategies are provided, mirroring the paper:
//
//   - Uniform: "Dynamic Scope Allocation without Clues" — the k-th inserted
//     child of a node receives 1/λ of the remaining scope (Eq. 5–6).
//   - StatsAllocator: "Semantic and Statistical Clues" — children receive
//     scopes proportional to their follow-set probabilities (Eq. 1–4),
//     collected from sample data.
//
// Scope underflow (the allocated size reaching zero) is signalled to the
// caller, which resolves it by borrowing a sequential run of labels from an
// ancestor's reserve region (the paper: "we borrow scopes from the parent
// nodes ... we preserve certain amount of scope in each node for this
// unexpected situation").
package labeling

import (
	"math"
)

// Scope is a virtual-suffix-tree node label ⟨n, size⟩ (Definition 3 without
// the child counter k, which the index stores per node record). The node's
// own label is N; the labels of all its descendants lie in (N, N+Size].
type Scope struct {
	N    uint64
	Size uint64
}

// Root is the scope of the virtual suffix tree's root: it covers the entire
// label space.
func Root() Scope { return Scope{N: 0, Size: math.MaxUint64 - 1} }

// ContainsLabel reports whether label n belongs to a descendant of s.
func (s Scope) ContainsLabel(n uint64) bool {
	return n > s.N && n-s.N <= s.Size
}

// Contains reports whether c is a (strict) descendant scope of s.
func (s Scope) Contains(c Scope) bool {
	if !s.ContainsLabel(c.N) {
		return false
	}
	// c's descendant region must also stay inside s's.
	return c.N-s.N+c.Size <= s.Size
}

// Disjoint reports whether the two scopes (each taken with its descendant
// region) share no labels.
func (s Scope) Disjoint(o Scope) bool {
	return s.N+s.Size < o.N || o.N+o.Size < s.N
}

// Allocator chooses child subscopes under a parent scope. Nodes are
// identified by the canonical element keys of seq.Elem.Key (the virtual
// suffix tree's root has the empty key). Implementations must return
// pairwise-disjoint scopes for distinct (k, childKey) requests under the
// same parent, all contained in the parent's usable region.
type Allocator interface {
	// SubScope computes the scope for a new child of parent: parentKey
	// identifies the parent node's element, k is the number of
	// arrival-ordered children already allocated under it, and childKey
	// identifies the new child's element. usedK reports whether the
	// allocation consumed an arrival-order slot (the caller must then
	// increment the parent's counter); ok is false on scope underflow, in
	// which case the caller must fall back to reserve borrowing.
	SubScope(parent Scope, parentKey string, k int, childKey string) (sub Scope, usedK, ok bool)
	// Reserve returns the parent's sequential-label reserve region
	// [lo, hi), used to resolve underflow.
	Reserve(parent Scope) (lo, hi uint64)
}

// Config carries the knobs shared by the allocators.
type Config struct {
	// ReserveDen sets the reserve fraction: 1/ReserveDen of each node's
	// scope is held back for underflow borrowing. Zero selects 16.
	ReserveDen uint64
}

func (c Config) reserveDen() uint64 {
	if c.ReserveDen == 0 {
		return 16
	}
	return c.ReserveDen
}

// usable reports the size of the parent's child-allocation region after
// setting aside the reserve.
func (c Config) usable(parent Scope) uint64 {
	return parent.Size - parent.Size/c.reserveDen()
}

// Reserve implements the reserve-region part of Allocator.
func (c Config) Reserve(parent Scope) (lo, hi uint64) {
	u := c.usable(parent)
	return parent.N + 1 + u, parent.N + 1 + parent.Size
}

// Uniform is the clue-free allocator: with expected fan-out λ, the k-th
// inserted child receives 1/λ of whatever scope remains, reproducing
// Eq. (5): sₖ = (r−l−1)(λ−1)^(k−1)/λᵏ. Integer arithmetic is used so that
// sibling scopes are exactly disjoint.
type Uniform struct {
	Config
	// Lambda is the expected number of children per node; values below 2
	// select 2 (the paper's running example).
	Lambda uint64
}

func (u Uniform) lambda() uint64 {
	if u.Lambda < 2 {
		return 2
	}
	return u.Lambda
}

// SubScope implements Allocator.
func (u Uniform) SubScope(parent Scope, _ string, k int, _ string) (Scope, bool, bool) {
	sub, ok := uniformAt(parent.N+1, u.usable(parent), u.lambda(), k)
	return sub, true, ok
}

var _ Allocator = Uniform{}

// uniformAt performs the Eq. (5–6) remaining-scope halving inside the
// region [base, base+avail): child k receives 1/λ of what the first k
// children left over.
func uniformAt(base, avail, lam uint64, k int) (Scope, bool) {
	remaining := avail
	start := base
	for i := 0; i < k; i++ {
		si := remaining / lam
		if si == 0 {
			return Scope{}, false
		}
		start += si
		remaining -= si
	}
	sk := remaining / lam
	if sk == 0 {
		return Scope{}, false
	}
	return Scope{N: start, Size: sk - 1}, true
}

// Sequential lays out the run of labels [lo, lo+count) as a chain of nested
// single-child scopes, the layout the paper prescribes for underflow
// borrowing: "the involved nodes are labeled sequentially (each node is
// allocated a scope for only one child)". Element i of the run gets scope
// ⟨lo+i, count−i−1⟩ so each remains an ancestor scope of the ones after it.
func Sequential(lo, count uint64) []Scope {
	out := make([]Scope, count)
	for i := uint64(0); i < count; i++ {
		out[i] = Scope{N: lo + i, Size: count - i - 1}
	}
	return out
}
