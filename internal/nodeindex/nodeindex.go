// Package nodeindex implements the node-index comparator of the paper's
// evaluation: an XISS-like index (Li & Moon, VLDB 2001) that labels every
// node of every document with an extended-preorder ⟨order, size⟩ pair,
// stores per-symbol node lists in a B+Tree, and answers path expressions by
// decomposing them into atom expressions combined with binary structural
// joins (parent–child and ancestor–descendant). Every multi-step query
// pays per-node join costs — the behaviour Table 4 of the paper contrasts
// with ViST's whole-structure matching.
package nodeindex

import (
	"encoding/binary"
	"fmt"
	"sort"

	"vist/internal/btree"
	"vist/internal/keyenc"
	"vist/internal/query"
	"vist/internal/seq"
	"vist/internal/xmltree"
)

// DocID identifies a document within the index.
type DocID uint64

// nodeRef is one labeled document node: ⟨order, size⟩ extended preorder
// within its document plus its depth (root = 1).
type nodeRef struct {
	doc   DocID
	order uint32
	size  uint32
	depth uint16
}

// Index is the XISS-like node index.
type Index struct {
	// nodes holds one entry per document node:
	//   key = symbol(4) ‖ docID(8) ‖ order(4), value = size(4) ‖ depth(2).
	nodes  *btree.BTree
	dict   *seq.Dict
	schema *xmltree.Schema
	nextID DocID
	count  uint64
}

// New creates an in-memory node index.
func New(schema *xmltree.Schema, pageSize int) (*Index, error) {
	if pageSize == 0 {
		pageSize = btree.DefaultPageSize
	}
	t, err := btree.New(btree.NewMemPager(pageSize), btree.Options{PageSize: pageSize})
	if err != nil {
		return nil, err
	}
	return &Index{nodes: t, dict: seq.NewDict(), schema: schema, nextID: 1}, nil
}

// DocCount reports the number of indexed documents.
func (ix *Index) DocCount() uint64 { return ix.count }

// SizeBytes reports the index footprint.
func (ix *Index) SizeBytes() int64 { return ix.nodes.SizeBytes() }

func nodeIndexKey(sym seq.Symbol, doc DocID, order uint32) []byte {
	b := make([]byte, 0, 16)
	b = keyenc.AppendUint32(b, uint32(sym))
	b = keyenc.AppendUint64(b, uint64(doc))
	return keyenc.AppendUint32(b, order)
}

// Insert labels the document (normalized in place) with extended preorder
// numbers and stores one entry per node.
func (ix *Index) Insert(doc *xmltree.Node) (DocID, error) {
	xmltree.Normalize(doc, ix.schema)
	id := ix.nextID
	order := uint32(0)
	var walk func(n *xmltree.Node, depth uint16) (uint32, error) // returns subtree size
	walk = func(n *xmltree.Node, depth uint16) (uint32, error) {
		myOrder := order
		order++
		var size uint32
		for _, ch := range n.Children {
			s, err := walk(ch, depth+1)
			if err != nil {
				return 0, err
			}
			size += 1 + s
		}
		val := make([]byte, 6)
		binary.BigEndian.PutUint32(val[0:4], size)
		binary.BigEndian.PutUint16(val[4:6], depth)
		sym := seq.SymbolOf(n, ix.dict)
		if err := ix.nodes.Put(nodeIndexKey(sym, id, myOrder), val); err != nil {
			return 0, err
		}
		return size, nil
	}
	if _, err := walk(doc, 1); err != nil {
		return 0, err
	}
	ix.nextID++
	ix.count++
	return id, nil
}

// fetch returns all labeled nodes carrying the symbol, sorted by
// (doc, order).
func (ix *Index) fetch(sym seq.Symbol) ([]nodeRef, error) {
	var out []nodeRef
	prefix := keyenc.AppendUint32(nil, uint32(sym))
	err := ix.nodes.ScanPrefix(prefix, func(k, v []byte) (bool, error) {
		ref, err := parseEntry(k, v)
		if err != nil {
			return false, err
		}
		out = append(out, ref)
		return true, nil
	})
	return out, err
}

// fetchAll returns every labeled node that is not a value leaf — the
// candidate list for '*' steps. XISS has no wildcard-specific structure, so
// the whole element index is scanned.
func (ix *Index) fetchAll() ([]nodeRef, error) {
	var out []nodeRef
	err := ix.nodes.Scan(nil, nil, func(k, v []byte) (bool, error) {
		if len(k) < 4 {
			return false, fmt.Errorf("nodeindex: short key")
		}
		sym := seq.Symbol(binary.BigEndian.Uint32(k[:4]))
		if sym.IsValue() {
			return true, nil
		}
		ref, err := parseEntry(k, v)
		if err != nil {
			return false, err
		}
		out = append(out, ref)
		return true, nil
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].doc != out[j].doc {
			return out[i].doc < out[j].doc
		}
		return out[i].order < out[j].order
	})
	return out, err
}

func parseEntry(k, v []byte) (nodeRef, error) {
	if len(k) != 16 || len(v) != 6 {
		return nodeRef{}, fmt.Errorf("nodeindex: malformed entry (%d/%d bytes)", len(k), len(v))
	}
	return nodeRef{
		doc:   DocID(binary.BigEndian.Uint64(k[4:12])),
		order: binary.BigEndian.Uint32(k[12:16]),
		size:  binary.BigEndian.Uint32(v[0:4]),
		depth: binary.BigEndian.Uint16(v[4:6]),
	}, nil
}

// Query evaluates a path expression by structural joins.
func (ix *Index) Query(expr string) ([]DocID, error) {
	q, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	var result map[DocID]struct{}
	for _, stepNode := range q.Root.Children {
		refs, err := ix.evalNode(stepNode)
		if err != nil {
			return nil, err
		}
		set := make(map[DocID]struct{})
		for _, r := range refs {
			if stepNode.Axis == query.Child && r.depth != 1 {
				continue // absolute step: must be the document root
			}
			set[r.doc] = struct{}{}
		}
		if result == nil {
			result = set
			continue
		}
		for id := range result {
			if _, ok := set[id]; !ok {
				delete(result, id)
			}
		}
	}
	ids := make([]DocID, 0, len(result))
	for id := range result {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// evalNode computes the labeled nodes matching the query subtree rooted at
// qn: its own atom expression semi-joined with each branch.
func (ix *Index) evalNode(qn *query.Node) ([]nodeRef, error) {
	base, err := ix.candidates(qn)
	if err != nil {
		return nil, err
	}
	for _, qc := range qn.Children {
		if len(base) == 0 {
			return nil, nil
		}
		var childRefs []nodeRef
		if qc.Kind == query.Value {
			childRefs, err = ix.fetch(seq.ValueSymbol(qc.Text))
		} else {
			childRefs, err = ix.evalNode(qc)
		}
		if err != nil {
			return nil, err
		}
		axis := qc.Axis
		if qc.Kind == query.Value {
			axis = query.Child
		}
		base = semiJoin(base, childRefs, axis)
	}
	return base, nil
}

// candidates returns the atom-expression node list for a query node.
func (ix *Index) candidates(qn *query.Node) ([]nodeRef, error) {
	switch qn.Kind {
	case query.Star:
		return ix.fetchAll()
	case query.Name:
		var names []string
		switch {
		case qn.IsAttr:
			names = []string{seq.AttrName(qn.Name)}
		case qn.AnyKind:
			names = []string{qn.Name, seq.AttrName(qn.Name)}
		default:
			names = []string{qn.Name}
		}
		var out []nodeRef
		for _, name := range names {
			sym, ok := ix.dict.Lookup(name)
			if !ok {
				continue
			}
			refs, err := ix.fetch(sym)
			if err != nil {
				return nil, err
			}
			out = merge(out, refs)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("nodeindex: unexpected query node kind %d", qn.Kind)
	}
}

// merge combines two (doc, order)-sorted lists.
func merge(a, b []nodeRef) []nodeRef {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]nodeRef, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(a[i], b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func less(x, y nodeRef) bool {
	if x.doc != y.doc {
		return x.doc < y.doc
	}
	return x.order < y.order
}

// semiJoin keeps the parents that have at least one child/descendant in
// children, using the ⟨order, size⟩ containment test: c is inside p iff
// same doc and c.order ∈ (p.order, p.order+p.size]; parent–child adds
// c.depth == p.depth+1.
func semiJoin(parents, children []nodeRef, axis query.Axis) []nodeRef {
	if len(parents) == 0 || len(children) == 0 {
		return nil
	}
	// children are sorted by (doc, order); for each parent binary-search
	// the containment window.
	out := parents[:0:0]
	for _, p := range parents {
		lo := sort.Search(len(children), func(i int) bool {
			c := children[i]
			return c.doc > p.doc || (c.doc == p.doc && c.order > p.order)
		})
		for i := lo; i < len(children); i++ {
			c := children[i]
			if c.doc != p.doc || uint64(c.order) > uint64(p.order)+uint64(p.size) {
				break
			}
			if axis == query.Child && c.depth != p.depth+1 {
				continue
			}
			out = append(out, p)
			break
		}
	}
	return out
}

// Close releases resources.
func (ix *Index) Close() error { return ix.nodes.Close() }
