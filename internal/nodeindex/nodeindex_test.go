package nodeindex

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"vist/internal/query"
	"vist/internal/treematch"
	"vist/internal/xmltree"
)

func newIdx(t *testing.T) *Index {
	t.Helper()
	ix, err := New(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func insert(t *testing.T, ix *Index, xmls ...string) ([]DocID, []*xmltree.Node) {
	t.Helper()
	var ids []DocID
	var docs []*xmltree.Node
	for _, x := range xmls {
		n, err := xmltree.ParseString(x)
		if err != nil {
			t.Fatal(err)
		}
		id, err := ix.Insert(n)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		docs = append(docs, n)
	}
	return ids, docs
}

func TestAtomExpression(t *testing.T) {
	ix := newIdx(t)
	ids, _ := insert(t, ix, "<a><b/></a>", "<c/>")
	got, err := ix.Query("//b")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("//b = %v", got)
	}
}

func TestRootAnchoring(t *testing.T) {
	ix := newIdx(t)
	ids, _ := insert(t, ix, "<a><b><a/></b></a>", "<b><a/></b>")
	got, err := ix.Query("/a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("/a must match only root elements: %v", got)
	}
	got, err = ix.Query("//a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids) {
		t.Fatalf("//a = %v", got)
	}
}

func TestParentChildVsAncestorDescendant(t *testing.T) {
	ix := newIdx(t)
	ids, _ := insert(t, ix, "<a><x><b/></x></a>", "<a><b/></a>")
	got, err := ix.Query("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[1:]) {
		t.Fatalf("/a/b = %v", got)
	}
	got, err = ix.Query("/a//b")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids) {
		t.Fatalf("/a//b = %v", got)
	}
}

func TestValueAndAttributeJoins(t *testing.T) {
	ix := newIdx(t)
	ids, _ := insert(t, ix,
		`<p><s id="dell"><l>boston</l></s></p>`,
		`<p><s id="hp"><l>boston</l></s></p>`,
	)
	got, err := ix.Query("/p/s[@id='dell']")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("@id join = %v", got)
	}
	got, err = ix.Query("/p/s[l='boston']")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids) {
		t.Fatalf("l join = %v", got)
	}
}

func TestStarJoin(t *testing.T) {
	ix := newIdx(t)
	ids, _ := insert(t, ix,
		"<p><s><l>boston</l></s></p>",
		"<p><b><l>boston</l></b></p>",
		"<p><b><l>ny</l></b></p>",
	)
	got, err := ix.Query("/p/*[l='boston']")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[:2]) {
		t.Fatalf("star join = %v", got)
	}
}

func TestBranchNeedsSingleWitness(t *testing.T) {
	// Unlike raw-path DocID joins, per-node structural joins require one
	// node satisfying all branches.
	ix := newIdx(t)
	ids, _ := insert(t, ix,
		"<r><a><b/><c/></a></r>",
		"<r><a><b/></a><a><c/></a></r>",
	)
	got, err := ix.Query("/r/a[b][c]")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("structural join = %v (must exclude the split-witness doc)", got)
	}
}

func randomXML(rng *rand.Rand, n int) []string {
	names := []string{"a", "b", "c", "d"}
	values := []string{"x", "y", "z"}
	var build func(depth int) string
	build = func(depth int) string {
		name := names[rng.Intn(len(names))]
		if depth <= 0 || rng.Intn(3) == 0 {
			return fmt.Sprintf("<%s>%s</%s>", name, values[rng.Intn(len(values))], name)
		}
		s := "<" + name
		if rng.Intn(3) == 0 {
			s += fmt.Sprintf(" %s=%q", names[rng.Intn(len(names))], values[rng.Intn(len(values))])
		}
		s += ">"
		for i := 0; i < 1+rng.Intn(3); i++ {
			s += build(depth - 1)
		}
		return s + "</" + name + ">"
	}
	out := make([]string, n)
	for i := range out {
		out[i] = "<r>" + build(3) + "</r>"
	}
	return out
}

// TestMatchesOracleExactly: per-node structural joins implement XPath
// semantics, so the node index must agree with the ground-truth matcher on
// every query shape (modulo value-hash collisions, absent here).
func TestMatchesOracleExactly(t *testing.T) {
	ix := newIdx(t)
	xmls := randomXML(rand.New(rand.NewSource(23)), 100)
	ids, docs := insert(t, ix, xmls...)
	exprs := []string{
		"/r", "/r/a", "/r/a/b", "//d", "/r//c", "//b[text()='x']",
		"/r[a][b]", "/r/a[b]/c", "/r/*[a]", "//b[c='x']", "//a//b",
		"/r[@a='x']", "/r/*/*[text()='z']",
	}
	for _, expr := range exprs {
		q := query.MustParse(expr)
		var oracle []DocID
		for i, d := range docs {
			if treematch.Matches(q, d) {
				oracle = append(oracle, ids[i])
			}
		}
		got, err := ix.Query(expr)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(oracle)) {
			t.Errorf("%s: got %v, oracle %v", expr, got, oracle)
		}
	}
}

func normalize(ids []DocID) []DocID {
	if len(ids) == 0 {
		return nil
	}
	return ids
}
