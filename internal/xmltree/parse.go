package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads one XML document from r and returns its root node. Attributes
// become Attribute children carrying a Value leaf; non-whitespace character
// data becomes Value leaves.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("xmltree: no root element")
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %w", err)
		}
		if start, ok := tok.(xml.StartElement); ok {
			return parseElement(dec, start)
		}
	}
}

// ParseAll reads every top-level element from r. It accepts both a single
// rooted document and a concatenation of record fragments (the shape of
// record-oriented datasets like DBLP exports).
func ParseAll(r io.Reader) ([]*Node, error) {
	dec := xml.NewDecoder(r)
	var out []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %w", err)
		}
		if start, ok := tok.(xml.StartElement); ok {
			n, err := parseElement(dec, start)
			if err != nil {
				return nil, err
			}
			out = append(out, n)
		}
	}
}

// ParseString parses a single document held in a string.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

func parseElement(dec *xml.Decoder, start xml.StartElement) (*Node, error) {
	n := NewElement(start.Name.Local)
	for _, a := range start.Attr {
		if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
			continue
		}
		n.Children = append(n.Children, NewAttr(a.Name.Local, a.Value))
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmltree: in <%s>: %w", start.Name.Local, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			child, err := parseElement(dec, t)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
		case xml.EndElement:
			return n, nil
		case xml.CharData:
			text := strings.TrimSpace(string(t))
			if text != "" {
				n.Children = append(n.Children, NewText(text))
			}
		}
	}
}

// WriteXML serializes the subtree as XML text. Value leaves render as
// character data; attribute children render as XML attributes when they are
// the simple name=value shape, and as elements otherwise.
func WriteXML(w io.Writer, n *Node) error {
	return writeXML(w, n, 0)
}

// MarshalString renders the subtree as an XML string.
func MarshalString(n *Node) string {
	var b strings.Builder
	// strings.Builder never errors.
	_ = WriteXML(&b, n)
	return b.String()
}

func writeXML(w io.Writer, n *Node, depth int) error {
	indent := strings.Repeat("  ", depth)
	switch n.Kind {
	case Value:
		_, err := fmt.Fprintf(w, "%s%s\n", indent, escapeText(n.Text))
		return err
	case Attribute:
		// Reached only when an attribute cannot be inlined (non-simple
		// shape); render as an element to stay lossless.
		el := &Node{Kind: Element, Name: n.Name, Children: n.Children}
		return writeXML(w, el, depth)
	}
	attrs, kids := splitAttrs(n)
	if _, err := fmt.Fprintf(w, "%s<%s", indent, n.Name); err != nil {
		return err
	}
	for _, a := range attrs {
		if _, err := fmt.Fprintf(w, " %s=%q", a.Name, a.Children[0].Text); err != nil {
			return err
		}
	}
	if len(kids) == 0 {
		_, err := fmt.Fprintf(w, "/>\n")
		return err
	}
	if len(kids) == 1 && kids[0].Kind == Value {
		_, err := fmt.Fprintf(w, ">%s</%s>\n", escapeText(kids[0].Text), n.Name)
		return err
	}
	if _, err := fmt.Fprintf(w, ">\n"); err != nil {
		return err
	}
	for _, ch := range kids {
		if err := writeXML(w, ch, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", indent, n.Name)
	return err
}

// splitAttrs partitions children into inlineable attributes and the rest.
func splitAttrs(n *Node) (attrs, kids []*Node) {
	for _, ch := range n.Children {
		if ch.Kind == Attribute && len(ch.Children) == 1 && ch.Children[0].Kind == Value {
			attrs = append(attrs, ch)
		} else {
			kids = append(kids, ch)
		}
	}
	return attrs, kids
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
