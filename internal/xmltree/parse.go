package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Typed limit violations; test with errors.Is. The parser reports them
// instead of exhausting the goroutine stack (nesting) or memory (node and
// token floods), so a hostile document degrades into an error.
var (
	// ErrTooDeep reports element nesting beyond Limits.MaxDepth.
	ErrTooDeep = errors.New("xmltree: document exceeds maximum element depth")
	// ErrTooManyNodes reports a document with more nodes (elements,
	// attributes, and text leaves) than Limits.MaxNodes.
	ErrTooManyNodes = errors.New("xmltree: document exceeds maximum node count")
	// ErrTokenTooLarge reports a single text run or attribute value larger
	// than Limits.MaxTokenBytes.
	ErrTokenTooLarge = errors.New("xmltree: token exceeds maximum size")
)

// Default limits applied by Parse/ParseAll. They are far above anything the
// paper's datasets produce (DBLP and XMark stay under depth 15) while
// keeping hostile input bounded.
const (
	DefaultMaxDepth      = 10_000
	DefaultMaxNodes      = 50_000_000
	DefaultMaxTokenBytes = 64 << 20 // 64 MiB
)

// Limits bounds what the parser accepts from untrusted input. The zero
// value selects the package defaults; a negative field disables that limit.
// Limits cap the tree the parser *builds*; encoding/xml still buffers each
// raw token before the limits see it, so callers reading from genuinely
// untrusted streams should additionally cap total input with io.LimitReader.
type Limits struct {
	// MaxDepth caps element nesting (the root element is depth 1).
	MaxDepth int
	// MaxNodes caps the total node count of a single document tree:
	// elements, attributes, and value leaves all count.
	MaxNodes int
	// MaxTokenBytes caps a single attribute value or text run.
	MaxTokenBytes int
}

func (l Limits) effective() Limits {
	if l.MaxDepth == 0 {
		l.MaxDepth = DefaultMaxDepth
	}
	if l.MaxNodes == 0 {
		l.MaxNodes = DefaultMaxNodes
	}
	if l.MaxTokenBytes == 0 {
		l.MaxTokenBytes = DefaultMaxTokenBytes
	}
	return l
}

// Parse reads one XML document from r and returns its root node. Attributes
// become Attribute children carrying a Value leaf; non-whitespace character
// data becomes Value leaves. The default Limits apply; use ParseWithLimits
// to change them.
func Parse(r io.Reader) (*Node, error) {
	return ParseWithLimits(r, Limits{})
}

// ParseWithLimits is Parse with explicit resource limits.
func ParseWithLimits(r io.Reader, lim Limits) (*Node, error) {
	dec := xml.NewDecoder(r)
	lim = lim.effective()
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("xmltree: no root element")
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %w", err)
		}
		if start, ok := tok.(xml.StartElement); ok {
			return parseElement(dec, start, lim)
		}
	}
}

// ParseAll reads every top-level element from r. It accepts both a single
// rooted document and a concatenation of record fragments (the shape of
// record-oriented datasets like DBLP exports). The default Limits apply per
// fragment; use ParseAllWithLimits to change them.
func ParseAll(r io.Reader) ([]*Node, error) {
	return ParseAllWithLimits(r, Limits{})
}

// ParseAllWithLimits is ParseAll with explicit resource limits, enforced on
// each top-level fragment independently.
func ParseAllWithLimits(r io.Reader, lim Limits) ([]*Node, error) {
	dec := xml.NewDecoder(r)
	lim = lim.effective()
	var out []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %w", err)
		}
		if start, ok := tok.(xml.StartElement); ok {
			n, err := parseElement(dec, start, lim)
			if err != nil {
				return nil, err
			}
			out = append(out, n)
		}
	}
}

// ParseString parses a single document held in a string.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// parseElement consumes tokens until start's matching end tag, building the
// subtree iteratively. The explicit stack (rather than recursion) means
// nesting depth costs heap, not goroutine stack, and is checked against
// lim.MaxDepth — a million-deep hostile document returns ErrTooDeep instead
// of overflowing the stack.
func parseElement(dec *xml.Decoder, start xml.StartElement, lim Limits) (*Node, error) {
	nodes := 0
	open := func(st xml.StartElement) (*Node, error) {
		n := NewElement(st.Name.Local)
		nodes++
		for _, a := range st.Attr {
			if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
				continue
			}
			if lim.MaxTokenBytes > 0 && len(a.Value) > lim.MaxTokenBytes {
				return nil, fmt.Errorf("xmltree: attribute %s of <%s> is %d bytes: %w",
					a.Name.Local, st.Name.Local, len(a.Value), ErrTokenTooLarge)
			}
			n.Children = append(n.Children, NewAttr(a.Name.Local, a.Value))
			nodes += 2 // attribute node + its value leaf
		}
		if lim.MaxNodes > 0 && nodes > lim.MaxNodes {
			return nil, fmt.Errorf("xmltree: more than %d nodes: %w", lim.MaxNodes, ErrTooManyNodes)
		}
		return n, nil
	}

	root, err := open(start)
	if err != nil {
		return nil, err
	}
	stack := []*Node{root}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		tok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("xmltree: in <%s>: %w", top.Name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if lim.MaxDepth > 0 && len(stack) >= lim.MaxDepth {
				return nil, fmt.Errorf("xmltree: <%s> nested deeper than %d: %w",
					t.Name.Local, lim.MaxDepth, ErrTooDeep)
			}
			child, err := open(t)
			if err != nil {
				return nil, err
			}
			top.Children = append(top.Children, child)
			stack = append(stack, child)
		case xml.EndElement:
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if lim.MaxTokenBytes > 0 && len(t) > lim.MaxTokenBytes {
				return nil, fmt.Errorf("xmltree: text run of %d bytes in <%s>: %w",
					len(t), top.Name, ErrTokenTooLarge)
			}
			text := strings.TrimSpace(string(t))
			if text != "" {
				top.Children = append(top.Children, NewText(text))
				nodes++
				if lim.MaxNodes > 0 && nodes > lim.MaxNodes {
					return nil, fmt.Errorf("xmltree: more than %d nodes: %w", lim.MaxNodes, ErrTooManyNodes)
				}
			}
		}
	}
	return root, nil
}

// WriteXML serializes the subtree as XML text. Value leaves render as
// character data; attribute children render as XML attributes when they are
// the simple name=value shape, and as elements otherwise.
func WriteXML(w io.Writer, n *Node) error {
	return writeXML(w, n, 0)
}

// MarshalString renders the subtree as an XML string.
func MarshalString(n *Node) string {
	var b strings.Builder
	// strings.Builder never errors.
	_ = WriteXML(&b, n)
	return b.String()
}

func writeXML(w io.Writer, n *Node, depth int) error {
	indent := strings.Repeat("  ", depth)
	switch n.Kind {
	case Value:
		_, err := fmt.Fprintf(w, "%s%s\n", indent, escapeText(n.Text))
		return err
	case Attribute:
		// Reached only when an attribute cannot be inlined (non-simple
		// shape); render as an element to stay lossless.
		el := &Node{Kind: Element, Name: n.Name, Children: n.Children}
		return writeXML(w, el, depth)
	}
	attrs, kids := splitAttrs(n)
	if _, err := fmt.Fprintf(w, "%s<%s", indent, n.Name); err != nil {
		return err
	}
	for _, a := range attrs {
		if _, err := fmt.Fprintf(w, " %s=%q", a.Name, a.Children[0].Text); err != nil {
			return err
		}
	}
	if len(kids) == 0 {
		_, err := fmt.Fprintf(w, "/>\n")
		return err
	}
	if len(kids) == 1 && kids[0].Kind == Value {
		_, err := fmt.Fprintf(w, ">%s</%s>\n", escapeText(kids[0].Text), n.Name)
		return err
	}
	if _, err := fmt.Fprintf(w, ">\n"); err != nil {
		return err
	}
	for _, ch := range kids {
		if err := writeXML(w, ch, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", indent, n.Name)
	return err
}

// splitAttrs partitions children into inlineable attributes and the rest.
func splitAttrs(n *Node) (attrs, kids []*Node) {
	for _, ch := range n.Children {
		if ch.Kind == Attribute && len(ch.Children) == 1 && ch.Children[0].Kind == Value {
			attrs = append(attrs, ch)
		} else {
			kids = append(kids, ch)
		}
	}
	return attrs, kids
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
