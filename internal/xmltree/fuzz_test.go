package xmltree

import (
	"errors"
	"strings"
	"testing"
)

// FuzzParseXML feeds hostile document structures to the parser: the only
// acceptable outcomes are a tree or an error — never a panic, a stack
// overflow, or an unbounded allocation. Limits are tightened so the fuzzer
// can reach the enforcement paths quickly, and every limit error must be one
// of the typed sentinels.
func FuzzParseXML(f *testing.F) {
	// Hostile-structure corpus: deep nesting, giant attributes, unbalanced
	// and interleaved tags, rogue entities, attribute floods.
	deep := strings.Repeat("<a>", 200) + strings.Repeat("</a>", 200)
	f.Add(deep)
	f.Add(strings.Repeat("<a>", 300)) // never closed
	f.Add(`<r a="` + strings.Repeat("x", 1<<12) + `"/>`)
	f.Add("<r>" + strings.Repeat(`<c k="v"/>`, 200) + "</r>")
	f.Add("<a><b></a></b>")                  // interleaved close tags
	f.Add("<a>&#xFFFF;&bogus;</a>")          // entity abuse
	f.Add("<a xmlns:x=\"u\"><x:b/></a>")     // namespaces
	f.Add("<?xml version=\"1.0\"?><a>t</a>") // declaration + text
	f.Add("<!DOCTYPE a [<!ENTITY e \"v\">]><a>&e;</a>")
	f.Add("<a><![CDATA[" + strings.Repeat("y", 4096) + "]]></a>")

	lim := Limits{MaxDepth: 128, MaxNodes: 1 << 16, MaxTokenBytes: 1 << 14}
	f.Fuzz(func(t *testing.T, data string) {
		n, err := ParseWithLimits(strings.NewReader(data), lim)
		if err != nil {
			return
		}
		// A successful parse must respect the limits it ran under.
		if d := n.Depth(); d > lim.MaxDepth {
			t.Fatalf("accepted document of depth %d under MaxDepth %d", d, lim.MaxDepth)
		}
		if c := n.Count(); c > lim.MaxNodes {
			t.Fatalf("accepted document of %d nodes under MaxNodes %d", c, lim.MaxNodes)
		}
		// ParseAll on the same input must not behave catastrophically
		// differently (it may parse more fragments).
		if _, err := ParseAllWithLimits(strings.NewReader(data), lim); err != nil &&
			!errors.Is(err, ErrTooDeep) && !errors.Is(err, ErrTooManyNodes) && !errors.Is(err, ErrTokenTooLarge) {
			// Fragment concatenation can produce new syntax errors; that is
			// fine. Nothing to assert beyond "no panic".
			_ = err
		}
	})
}
