// Package xmltree provides the XML document model used throughout the
// repository: ordered trees of element, attribute, and value nodes, a parser
// built on encoding/xml, deterministic sibling ordering (Section 2 of the
// ViST paper), and compact binary and XML serializations.
package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes node flavours in a document tree.
type Kind uint8

const (
	// Element is a named XML element.
	Element Kind = iota
	// Attribute is a named XML attribute, modeled as a child node of its
	// owning element (as in Figure 3 of the paper, where ID, Location, and
	// Name hang off Seller/Buyer/Item).
	Attribute
	// Value is a text leaf: either an attribute's value or an element's
	// character data.
	Value
)

func (k Kind) String() string {
	switch k {
	case Element:
		return "element"
	case Attribute:
		return "attribute"
	case Value:
		return "value"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Node is one node of an XML document tree.
type Node struct {
	Kind     Kind
	Name     string // element/attribute name; empty for Value nodes
	Text     string // text content; only set for Value nodes
	Children []*Node
}

// NewElement builds an element node with the given children.
func NewElement(name string, children ...*Node) *Node {
	return &Node{Kind: Element, Name: name, Children: children}
}

// NewAttr builds an attribute node carrying a single value leaf.
func NewAttr(name, value string) *Node {
	return &Node{Kind: Attribute, Name: name, Children: []*Node{NewText(value)}}
}

// NewText builds a value leaf.
func NewText(text string) *Node {
	return &Node{Kind: Value, Text: text}
}

// NewElementText builds an element whose only child is a value leaf — the
// common <name>dell</name> shape.
func NewElementText(name, text string) *Node {
	return &Node{Kind: Element, Name: name, Children: []*Node{NewText(text)}}
}

// Count reports the number of nodes in the subtree rooted at n, including n.
func (n *Node) Count() int {
	c := 1
	for _, ch := range n.Children {
		c += ch.Count()
	}
	return c
}

// Depth reports the height of the subtree (a single node has depth 1).
func (n *Node) Depth() int {
	max := 0
	for _, ch := range n.Children {
		if d := ch.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Clone deep-copies the subtree.
func (n *Node) Clone() *Node {
	out := &Node{Kind: n.Kind, Name: n.Name, Text: n.Text}
	if len(n.Children) > 0 {
		out.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			out.Children[i] = ch.Clone()
		}
	}
	return out
}

// String renders a compact single-line debug form.
func (n *Node) String() string {
	var b strings.Builder
	n.debug(&b)
	return b.String()
}

func (n *Node) debug(b *strings.Builder) {
	switch n.Kind {
	case Value:
		fmt.Fprintf(b, "%q", n.Text)
		return
	case Attribute:
		b.WriteByte('@')
	}
	b.WriteString(n.Name)
	if len(n.Children) > 0 {
		b.WriteByte('(')
		for i, ch := range n.Children {
			if i > 0 {
				b.WriteByte(' ')
			}
			ch.debug(b)
		}
		b.WriteByte(')')
	}
}

// Schema carries the linear element/attribute order a DTD would imply
// (Section 2: "The DTD schema embodies a linear order of all
// elements/attributes defined therein"). A nil *Schema means no DTD is
// available, in which case lexicographic name order applies.
type Schema struct {
	rank map[string]int
}

// NewSchema records the given names in DTD declaration order.
func NewSchema(names ...string) *Schema {
	s := &Schema{rank: make(map[string]int, len(names))}
	for i, n := range names {
		if _, dup := s.rank[n]; !dup {
			s.rank[n] = i
		}
	}
	return s
}

// Rank reports a name's position in the schema order; unknown names sort
// after all known names, lexicographically among themselves.
func (s *Schema) Rank(name string) (int, bool) {
	if s == nil {
		return 0, false
	}
	r, ok := s.rank[name]
	return r, ok
}

// SortName is the canonical spelling used for sibling ordering and schema
// ranks: attributes are distinguished from elements by an "@" prefix (the
// same convention the symbol dictionary uses), so "@key" the attribute and
// "key" the element order consistently everywhere.
func SortName(n *Node) string {
	if n.Kind == Attribute {
		return "@" + n.Name
	}
	return n.Name
}

// Normalize enforces the paper's deterministic sibling order, in place:
// value leaves first (they instantiate their parent), then attributes and
// elements ordered by schema rank when available, else lexicographically by
// canonical name (SortName). Multiple occurrences of the same name keep
// their input order (the paper orders them arbitrarily). Children are
// normalized recursively.
func Normalize(n *Node, s *Schema) {
	sort.SliceStable(n.Children, func(i, j int) bool {
		a, b := n.Children[i], n.Children[j]
		av, bv := a.Kind == Value, b.Kind == Value
		if av != bv {
			return av
		}
		if av && bv {
			return false // values keep input order
		}
		an, bn := SortName(a), SortName(b)
		ar, aok := s.Rank(an)
		br, bok := s.Rank(bn)
		switch {
		case aok && bok:
			if ar != br {
				return ar < br
			}
			return false
		case aok:
			return true
		case bok:
			return false
		default:
			return an < bn
		}
	})
	for _, ch := range n.Children {
		Normalize(ch, s)
	}
}

// Equal reports deep structural equality of two subtrees.
func Equal(a, b *Node) bool {
	if a.Kind != b.Kind || a.Name != b.Name || a.Text != b.Text || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}
