package xmltree

import (
	"encoding/binary"
	"fmt"
)

// Encode renders the subtree in a compact binary form suitable for storage
// in the document store. The format is a preorder walk:
//
//	node := kind(1) name|text(uvarint len + bytes) childCount(uvarint) node*
func Encode(n *Node) []byte {
	return appendNode(nil, n)
}

func appendNode(dst []byte, n *Node) []byte {
	dst = append(dst, byte(n.Kind))
	s := n.Name
	if n.Kind == Value {
		s = n.Text
	}
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	dst = append(dst, s...)
	dst = binary.AppendUvarint(dst, uint64(len(n.Children)))
	for _, ch := range n.Children {
		dst = appendNode(dst, ch)
	}
	return dst
}

// Decode parses a subtree previously produced by Encode.
func Decode(b []byte) (*Node, error) {
	n, rest, err := decodeNode(b, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("xmltree: %d trailing bytes after decode", len(rest))
	}
	return n, nil
}

const maxDecodeDepth = 10000

func decodeNode(b []byte, depth int) (*Node, []byte, error) {
	if depth > maxDecodeDepth {
		return nil, nil, fmt.Errorf("xmltree: decode depth exceeds %d", maxDecodeDepth)
	}
	if len(b) < 1 {
		return nil, nil, fmt.Errorf("xmltree: truncated node header")
	}
	kind := Kind(b[0])
	if kind > Value {
		return nil, nil, fmt.Errorf("xmltree: invalid kind %d", b[0])
	}
	b = b[1:]
	slen, m := binary.Uvarint(b)
	if m <= 0 || uint64(len(b)-m) < slen {
		return nil, nil, fmt.Errorf("xmltree: truncated string")
	}
	b = b[m:]
	s := string(b[:slen])
	b = b[slen:]
	nkids, m := binary.Uvarint(b)
	if m <= 0 {
		return nil, nil, fmt.Errorf("xmltree: truncated child count")
	}
	b = b[m:]
	if nkids > uint64(len(b)) { // every child needs >= 1 byte
		return nil, nil, fmt.Errorf("xmltree: impossible child count %d", nkids)
	}
	n := &Node{Kind: kind}
	if kind == Value {
		n.Text = s
	} else {
		n.Name = s
	}
	if nkids > 0 {
		n.Children = make([]*Node, 0, nkids)
		for i := uint64(0); i < nkids; i++ {
			child, rest, err := decodeNode(b, depth+1)
			if err != nil {
				return nil, nil, err
			}
			n.Children = append(n.Children, child)
			b = rest
		}
	}
	return n, b, nil
}
