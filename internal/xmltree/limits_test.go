package xmltree

import (
	"errors"
	"strings"
	"testing"
)

// nested builds <a><a>…</a></a> with the given nesting depth.
func nested(depth int) string {
	var b strings.Builder
	b.Grow(depth * 7)
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	return b.String()
}

// TestParseDeepNestingRejected is the regression test for the unbounded
// recursion in the old parseElement: a 500k-deep document must come back as
// ErrTooDeep, not a goroutine stack overflow (which would kill the process,
// not fail the test).
func TestParseDeepNestingRejected(t *testing.T) {
	_, err := Parse(strings.NewReader(nested(500_000)))
	if !errors.Is(err, ErrTooDeep) {
		t.Fatalf("Parse(500k-deep) = %v, want ErrTooDeep", err)
	}
	// ParseAll shares the walk; it must reject the same input.
	_, err = ParseAll(strings.NewReader(nested(500_000)))
	if !errors.Is(err, ErrTooDeep) {
		t.Fatalf("ParseAll(500k-deep) = %v, want ErrTooDeep", err)
	}
}

// TestParseDepthBoundary pins the MaxDepth semantics: exactly MaxDepth
// nesting parses, one deeper does not.
func TestParseDepthBoundary(t *testing.T) {
	lim := Limits{MaxDepth: 10}
	n, err := ParseWithLimits(strings.NewReader(nested(10)), lim)
	if err != nil {
		t.Fatalf("ParseWithLimits(depth=10, MaxDepth=10): %v", err)
	}
	if got := n.Depth(); got != 10 {
		t.Fatalf("parsed depth = %d, want 10", got)
	}
	if _, err := ParseWithLimits(strings.NewReader(nested(11)), lim); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("ParseWithLimits(depth=11, MaxDepth=10) = %v, want ErrTooDeep", err)
	}
}

func TestParseDefaultDepthIsTenThousand(t *testing.T) {
	n, err := Parse(strings.NewReader(nested(DefaultMaxDepth)))
	if err != nil {
		t.Fatalf("Parse(depth=%d): %v", DefaultMaxDepth, err)
	}
	if got := n.Depth(); got != DefaultMaxDepth {
		t.Fatalf("parsed depth = %d, want %d", got, DefaultMaxDepth)
	}
	if _, err := Parse(strings.NewReader(nested(DefaultMaxDepth + 1))); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("Parse(depth=%d) = %v, want ErrTooDeep", DefaultMaxDepth+1, err)
	}
}

func TestParseNodeCountLimit(t *testing.T) {
	// <r><c/><c/>…</r>: 1 root + 10 children = 11 nodes.
	doc := "<r>" + strings.Repeat("<c/>", 10) + "</r>"
	if _, err := ParseWithLimits(strings.NewReader(doc), Limits{MaxNodes: 11}); err != nil {
		t.Fatalf("ParseWithLimits(11 nodes, MaxNodes=11): %v", err)
	}
	if _, err := ParseWithLimits(strings.NewReader(doc), Limits{MaxNodes: 10}); !errors.Is(err, ErrTooManyNodes) {
		t.Fatalf("ParseWithLimits(11 nodes, MaxNodes=10) = %v, want ErrTooManyNodes", err)
	}
	// Attributes count (element + attribute + value leaf = 3 nodes).
	if _, err := ParseWithLimits(strings.NewReader(`<r a="v"/>`), Limits{MaxNodes: 2}); !errors.Is(err, ErrTooManyNodes) {
		t.Fatalf("attribute-heavy doc with MaxNodes=2 = %v, want ErrTooManyNodes", err)
	}
}

func TestParseTokenSizeLimit(t *testing.T) {
	big := strings.Repeat("x", 100)
	if _, err := ParseWithLimits(strings.NewReader("<r>"+big+"</r>"), Limits{MaxTokenBytes: 99}); !errors.Is(err, ErrTokenTooLarge) {
		t.Fatalf("100-byte text with MaxTokenBytes=99 = %v, want ErrTokenTooLarge", err)
	}
	if _, err := ParseWithLimits(strings.NewReader(`<r a="`+big+`"/>`), Limits{MaxTokenBytes: 99}); !errors.Is(err, ErrTokenTooLarge) {
		t.Fatalf("100-byte attribute with MaxTokenBytes=99 = %v, want ErrTokenTooLarge", err)
	}
	if _, err := ParseWithLimits(strings.NewReader("<r>"+big+"</r>"), Limits{MaxTokenBytes: 100}); err != nil {
		t.Fatalf("100-byte text with MaxTokenBytes=100: %v", err)
	}
}

// TestParseNegativeLimitDisables verifies that a negative field switches the
// corresponding check off entirely.
func TestParseNegativeLimitDisables(t *testing.T) {
	n, err := ParseWithLimits(strings.NewReader(nested(DefaultMaxDepth+5)), Limits{MaxDepth: -1})
	if err != nil {
		t.Fatalf("ParseWithLimits(MaxDepth: -1): %v", err)
	}
	if got := n.Depth(); got != DefaultMaxDepth+5 {
		t.Fatalf("parsed depth = %d, want %d", got, DefaultMaxDepth+5)
	}
}

// TestParseIterativeMatchesRecursive pins that the explicit-stack rewrite
// produces the same trees as before on ordinary documents.
func TestParseIterativeMatchesRecursive(t *testing.T) {
	doc := `<purchase total="3">
	  <seller id="7"><name>dell</name><location>boston</location></seller>
	  <buyer><name>alice</name></buyer>
	  mixed text
	</purchase>`
	n, err := ParseString(doc)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	want := NewElement("purchase",
		NewAttr("total", "3"),
		NewElement("seller",
			NewAttr("id", "7"),
			NewElementText("name", "dell"),
			NewElementText("location", "boston")),
		NewElement("buyer", NewElementText("name", "alice")),
		NewText("mixed text"),
	)
	if !Equal(n, want) {
		t.Fatalf("parsed tree mismatch:\n got %s\nwant %s", n, want)
	}
}
