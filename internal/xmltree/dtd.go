package xmltree

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseDTD extracts the linear element/attribute order from a DTD document
// (the paper's Figure 1 input): <!ELEMENT name ...> declarations contribute
// the element name, and <!ATTLIST name a1 ... a2 ...> declarations
// contribute "@a1", "@a2", … immediately after their owner element. The
// resulting name list feeds NewSchema / core.Options.Schema.
//
// This is a DTD subset reader: entities, conditional sections, and external
// subsets are not resolved; unknown declarations are skipped.
func ParseDTD(r io.Reader) ([]string, error) {
	decls, err := scanDeclarations(r)
	if err != nil {
		return nil, err
	}
	var order []string
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			order = append(order, name)
		}
	}
	// attrsOf accumulates attribute names per element so they can be
	// spliced in right after the element.
	attrsOf := map[string][]string{}
	var elements []string
	for _, d := range decls {
		fields := strings.Fields(d)
		if len(fields) < 2 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "ELEMENT":
			elements = append(elements, fields[1])
		case "ATTLIST":
			owner := fields[1]
			// Attribute declarations come in triples: name type default.
			for i := 2; i < len(fields); i += 3 {
				attrsOf[owner] = append(attrsOf[owner], "@"+fields[i])
			}
		}
	}
	if len(elements) == 0 {
		return nil, fmt.Errorf("xmltree: no ELEMENT declarations found")
	}
	for _, el := range elements {
		add(el)
		for _, a := range attrsOf[el] {
			add(a)
		}
	}
	// Attributes of undeclared elements still get an order, after
	// everything else.
	for owner, attrs := range attrsOf {
		if !seen[owner] {
			for _, a := range attrs {
				add(a)
			}
		}
	}
	return order, nil
}

// ParseDTDString is ParseDTD over a string.
func ParseDTDString(s string) ([]string, error) {
	return ParseDTD(strings.NewReader(s))
}

// scanDeclarations returns the contents of each <!...> declaration.
func scanDeclarations(r io.Reader) ([]string, error) {
	br := bufio.NewReader(r)
	var decls []string
	var cur strings.Builder
	in := false
	for {
		c, err := br.ReadByte()
		if err == io.EOF {
			if in {
				return nil, fmt.Errorf("xmltree: unterminated declaration %q", cur.String())
			}
			return decls, nil
		}
		if err != nil {
			return nil, err
		}
		switch {
		case !in && c == '<':
			next, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("xmltree: dangling '<' at end of DTD")
			}
			if next == '!' {
				in = true
				cur.Reset()
			}
		case in && c == '>':
			d := cur.String()
			// Skip comments (<!-- ... -->).
			if !strings.HasPrefix(d, "--") {
				decls = append(decls, d)
			}
			in = false
		case in:
			cur.WriteByte(c)
		}
	}
}
