package xmltree

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// purchaseXML is the paper's running example (Figure 3), serialized.
const purchaseXML = `
<purchase>
  <seller ID="dell">
    <item ID="ibm" name="part#1">
      <item name="part#2" manufacturer="intel"/>
    </item>
    <item name="panasia"/>
    <location>boston</location>
  </seller>
  <buyer ID="ibm">
    <location>newyork</location>
  </buyer>
</purchase>`

func TestParsePurchaseRecord(t *testing.T) {
	root, err := ParseString(purchaseXML)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if root.Name != "purchase" || root.Kind != Element {
		t.Fatalf("root = %v %q", root.Kind, root.Name)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(root.Children))
	}
	seller := root.Children[0]
	if seller.Name != "seller" {
		t.Fatalf("first child = %q, want seller", seller.Name)
	}
	// seller: ID attr + 2 items + 1 location = 4 children.
	if len(seller.Children) != 4 {
		t.Fatalf("seller has %d children: %v", len(seller.Children), seller)
	}
	id := seller.Children[0]
	if id.Kind != Attribute || id.Name != "ID" || id.Children[0].Text != "dell" {
		t.Fatalf("seller ID attr = %v", id)
	}
}

func TestParseNoRoot(t *testing.T) {
	if _, err := ParseString("   "); err == nil {
		t.Fatal("Parse of empty input succeeded")
	}
}

func TestParseMalformed(t *testing.T) {
	if _, err := ParseString("<a><b></a>"); err == nil {
		t.Fatal("Parse of mismatched tags succeeded")
	}
}

func TestParseAllFragments(t *testing.T) {
	docs, err := ParseAll(strings.NewReader("<a x='1'/><b>text</b><c><d/></c>"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("ParseAll returned %d docs, want 3", len(docs))
	}
	if docs[0].Name != "a" || docs[1].Name != "b" || docs[2].Name != "c" {
		t.Fatalf("names: %s %s %s", docs[0].Name, docs[1].Name, docs[2].Name)
	}
	if docs[1].Children[0].Text != "text" {
		t.Fatalf("text child = %v", docs[1].Children[0])
	}
}

func TestCharDataWhitespaceSkipped(t *testing.T) {
	n, err := ParseString("<a>\n   <b/>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Children) != 1 || n.Children[0].Name != "b" {
		t.Fatalf("whitespace was not skipped: %v", n)
	}
}

func TestNormalizeLexicographic(t *testing.T) {
	n := NewElement("r",
		NewElement("z"),
		NewElement("a"),
		NewElement("m"),
	)
	Normalize(n, nil)
	got := []string{n.Children[0].Name, n.Children[1].Name, n.Children[2].Name}
	if !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Fatalf("lexicographic order: %v", got)
	}
}

func TestNormalizeSchemaOrder(t *testing.T) {
	// The paper's example: "under lexicographical order, the Buyer node will
	// precede the Seller node under Purchase" — but the DTD order puts
	// seller first.
	s := NewSchema("purchase", "seller", "buyer", "item", "location", "name")
	n := NewElement("purchase", NewElement("buyer"), NewElement("seller"))
	Normalize(n, s)
	if n.Children[0].Name != "seller" || n.Children[1].Name != "buyer" {
		t.Fatalf("schema order: %v then %v", n.Children[0].Name, n.Children[1].Name)
	}
	Normalize(n, nil)
	if n.Children[0].Name != "buyer" {
		t.Fatalf("lexicographic fallback: first = %v", n.Children[0].Name)
	}
}

func TestNormalizeValuesFirstAndStable(t *testing.T) {
	n := NewElement("x",
		NewElement("b"),
		NewText("v"),
		NewElement("a"),
		NewElement("a"), // duplicate keeps relative order
	)
	n.Children[2].Children = append(n.Children[2].Children, NewText("first"))
	Normalize(n, nil)
	if n.Children[0].Kind != Value {
		t.Fatalf("value leaf not first: %v", n)
	}
	if n.Children[1].Name != "a" || len(n.Children[1].Children) != 1 {
		t.Fatalf("duplicate 'a' order unstable: %v", n)
	}
}

func TestNormalizeUnknownAfterKnown(t *testing.T) {
	s := NewSchema("known")
	n := NewElement("r", NewElement("aaa"), NewElement("known"))
	Normalize(n, s)
	if n.Children[0].Name != "known" {
		t.Fatalf("schema-known name must sort before unknown: %v", n)
	}
}

func TestCountDepth(t *testing.T) {
	root, _ := ParseString(purchaseXML)
	// purchase + seller + @ID(+val) + item + @ID(+val) + @name(+val) +
	// item + @name(+val) + @manufacturer(+val) + item + @name(+val) +
	// location(+val) + buyer + @ID(+val) + location(+val) = count below.
	if got := root.Count(); got != 24 {
		t.Fatalf("Count = %d, want 24 (%v)", got, root)
	}
	if got := root.Depth(); got != 6 {
		t.Fatalf("Depth = %d, want 6", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	root, _ := ParseString(purchaseXML)
	c := root.Clone()
	if !Equal(root, c) {
		t.Fatal("clone differs from original")
	}
	c.Children[0].Name = "mutated"
	if Equal(root, c) {
		t.Fatal("mutation of clone affected original")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	root, _ := ParseString(purchaseXML)
	Normalize(root, nil)
	b := Encode(root)
	back, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !Equal(root, back) {
		t.Fatalf("round trip mismatch:\n%v\n%v", root, back)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{9},                                // bad kind
		{0, 1},                             // truncated name
		{0, 0, 200, 200},                   // absurd child count, truncated
		append(Encode(NewElement("a")), 0), // trailing bytes
	}
	for i, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Fatalf("case %d: Decode of garbage succeeded", i)
		}
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	root, _ := ParseString(purchaseXML)
	Normalize(root, nil)
	s := MarshalString(root)
	back, err := ParseString(s)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s)
	}
	Normalize(back, nil)
	if !Equal(root, back) {
		t.Fatalf("XML round trip mismatch:\n%v\n%v", root, back)
	}
}

func TestWriteXMLEscaping(t *testing.T) {
	n := NewElementText("a", "1 < 2 & 3 > 2")
	s := MarshalString(n)
	back, err := ParseString(s)
	if err != nil {
		t.Fatalf("reparse escaped: %v\n%s", err, s)
	}
	if back.Children[0].Text != "1 < 2 & 3 > 2" {
		t.Fatalf("escape round trip = %q", back.Children[0].Text)
	}
}

// randomTree builds a random document for property tests.
func randomTree(rng *rand.Rand, depth int) *Node {
	if depth <= 0 || rng.Intn(4) == 0 {
		return NewText(randName(rng))
	}
	names := []string{"a", "b", "c", "dd", "ee"}
	n := NewElement(names[rng.Intn(len(names))])
	kids := rng.Intn(4)
	for i := 0; i < kids; i++ {
		if rng.Intn(5) == 0 {
			n.Children = append(n.Children, NewAttr(names[rng.Intn(len(names))], randName(rng)))
		} else {
			n.Children = append(n.Children, randomTree(rng, depth-1))
		}
	}
	return n
}

func randName(rng *rand.Rand) string {
	letters := "abcdefg"
	n := 1 + rng.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

func TestPropertyEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		tree := randomTree(rand.New(rand.NewSource(seed)), 5)
		_ = rng
		back, err := Decode(Encode(tree))
		return err == nil && Equal(tree, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNormalizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		tree := randomTree(rand.New(rand.NewSource(seed)), 5)
		Normalize(tree, nil)
		once := tree.Clone()
		Normalize(tree, nil)
		return Equal(once, tree)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNormalizePreservesMultiset(t *testing.T) {
	f := func(seed int64) bool {
		tree := randomTree(rand.New(rand.NewSource(seed)), 5)
		before := tree.Count()
		Normalize(tree, nil)
		return tree.Count() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseCDATAAndEntities(t *testing.T) {
	n, err := ParseString("<a><![CDATA[1 < 2 & raw]]></a>")
	if err != nil {
		t.Fatalf("CDATA parse: %v", err)
	}
	if len(n.Children) != 1 || n.Children[0].Text != "1 < 2 & raw" {
		t.Fatalf("CDATA text = %v", n.Children)
	}
	n, err = ParseString("<a>&lt;tag&gt; &amp; &quot;x&quot;</a>")
	if err != nil {
		t.Fatalf("entity parse: %v", err)
	}
	if n.Children[0].Text != `<tag> & "x"` {
		t.Fatalf("entity text = %q", n.Children[0].Text)
	}
}

func TestParseMixedContent(t *testing.T) {
	n, err := ParseString("<p>before <b>bold</b> after</p>")
	if err != nil {
		t.Fatal(err)
	}
	// Three children: text, element, text.
	if len(n.Children) != 3 {
		t.Fatalf("mixed content children = %v", n.Children)
	}
	if n.Children[0].Text != "before" || n.Children[1].Name != "b" || n.Children[2].Text != "after" {
		t.Fatalf("mixed content = %v", n)
	}
}
