package xmltree

import (
	"reflect"
	"strings"
	"testing"
)

// figure1DTD is the paper's Figure 1 purchase-record DTD.
const figure1DTD = `
<!ELEMENT purchases (purchase*)>
<!ELEMENT purchase  (seller, buyer)>
<!ATTLIST seller    ID ID #REQUIRED location CDATA #IMPLIED name CDATA #IMPLIED>
<!ELEMENT seller    (item*)>
<!ATTLIST buyer     ID ID #REQUIRED location CDATA #IMPLIED name CDATA #IMPLIED>
<!ELEMENT buyer     (item*)>
<!ELEMENT item      (item*)>
<!ATTLIST item      name CDATA #IMPLIED manufacturer CDATA #IMPLIED>
`

func TestParseDTDFigure1(t *testing.T) {
	order, err := ParseDTDString(figure1DTD)
	if err != nil {
		t.Fatalf("ParseDTD: %v", err)
	}
	want := []string{
		"purchases", "purchase",
		"seller", "@ID", "@location", "@name",
		"buyer",                 // @ID/@location/@name already seen under seller
		"item", "@manufacturer", // @name already seen
	}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v\nwant   %v", order, want)
	}
	// The resulting schema must rank seller before buyer (the paper: "the
	// DTD schema embodies a linear order").
	s := NewSchema(order...)
	sr, _ := s.Rank("seller")
	br, _ := s.Rank("buyer")
	if sr >= br {
		t.Fatalf("seller rank %d >= buyer rank %d", sr, br)
	}
}

func TestParseDTDSkipsComments(t *testing.T) {
	order, err := ParseDTDString(`
<!-- a comment with <!ELEMENT fake (x)> inside -->
<!ELEMENT real (y)>
`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []string{"real"}) {
		t.Fatalf("order = %v", order)
	}
}

func TestParseDTDErrors(t *testing.T) {
	if _, err := ParseDTDString(""); err == nil {
		t.Fatal("empty DTD accepted")
	}
	if _, err := ParseDTDString("<!ELEMENT unterminated (x)"); err == nil {
		t.Fatal("unterminated declaration accepted")
	}
	if _, err := ParseDTDString("no declarations here"); err == nil {
		t.Fatal("DTD without elements accepted")
	}
}

func TestParseDTDAttlistWithoutElement(t *testing.T) {
	order, err := ParseDTDString(`
<!ELEMENT a (b)>
<!ATTLIST ghost attr CDATA #IMPLIED>
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "@attr" {
		t.Fatalf("order = %v", order)
	}
}

func TestParseDTDLargeInput(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 500; i++ {
		b.WriteString("<!ELEMENT e")
		b.WriteByte(byte('a' + i%26))
		b.WriteString(" (#PCDATA)>\n")
	}
	order, err := ParseDTD(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 26 { // deduped by name
		t.Fatalf("got %d names", len(order))
	}
}
