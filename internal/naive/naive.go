// Package naive implements the paper's Algorithm 1: non-contiguous
// subsequence matching by direct traversal of a materialized suffix tree.
// For every query element it walks all descendants of the current node
// ("searching for nodes satisfying both S-Ancestorship and D-Ancestorship
// is extremely costly since we need to traverse a large portion of the
// subtree for each match") — the baseline RIST and ViST improve on.
package naive

import (
	"sort"

	"vist/internal/query"
	"vist/internal/seq"
	"vist/internal/suffixtree"
	"vist/internal/xmltree"
)

// Index is a suffix-tree-backed naive matcher.
type Index struct {
	tree   *suffixtree.Tree
	dict   *seq.Dict
	schema *xmltree.Schema
	nextID uint64
}

// New builds an empty naive index with the given DTD-order schema (nil for
// lexicographic ordering).
func New(schema *xmltree.Schema) *Index {
	return &Index{tree: suffixtree.New(), dict: seq.NewDict(), schema: schema, nextID: 1}
}

// Insert indexes a document (normalized in place) and returns its ID.
func (ix *Index) Insert(doc *xmltree.Node) uint64 {
	xmltree.Normalize(doc, ix.schema)
	s := seq.Encode(doc, ix.dict)
	id := ix.nextID
	ix.nextID++
	ix.tree.Insert(s, id)
	return id
}

// Dict exposes the symbol dictionary.
func (ix *Index) Dict() *seq.Dict { return ix.dict }

// Tree exposes the underlying trie.
func (ix *Index) Tree() *suffixtree.Tree { return ix.tree }

// Query evaluates a path expression with Algorithm 1.
func (ix *Index) Query(expr string) ([]uint64, error) {
	q, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	seqs, err := q.Sequences(ix.dict, ix.schema)
	if err != nil {
		return nil, err
	}
	out := make(map[uint64]struct{})
	for _, qs := range seqs {
		ix.matchSeq(qs, out)
	}
	ids := make([]uint64, 0, len(out))
	for id := range out {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// matchSeq is NaiveSearch: at each step it enumerates every descendant of
// the current suffix-tree node and keeps those whose (symbol, prefix)
// matches the next query element.
func (ix *Index) matchSeq(qs query.Seq, out map[uint64]struct{}) {
	if len(qs) == 0 {
		return
	}
	paths := make([][]seq.Symbol, len(qs)) // concrete path per matched element
	var rec func(i int, node *suffixtree.Node)
	rec = func(i int, node *suffixtree.Node) {
		if i == len(qs) {
			collectDocs(node, out)
			return
		}
		qe := qs[i]
		var base []seq.Symbol
		if qe.Anchor >= 0 {
			base = paths[qe.Anchor]
		}
		// Walk the whole subtree under node (the naive part).
		var walk func(c *suffixtree.Node)
		walk = func(c *suffixtree.Node) {
			if elementMatches(c.Elem, qe, base) {
				path := append(append([]seq.Symbol(nil), c.Elem.Prefix...), c.Elem.Symbol)
				paths[i] = path
				rec(i+1, c)
			}
			for _, cc := range c.Children() {
				walk(cc)
			}
		}
		for _, c := range node.Children() {
			walk(c)
		}
	}
	rec(0, ix.tree.Root())
}

// elementMatches checks the D-Ancestorship condition: the element's symbol
// equals the query symbol and its prefix extends base by exactly Stars
// symbols (plus any number when Desc).
func elementMatches(e seq.Elem, qe query.QElem, base []seq.Symbol) bool {
	if e.Symbol != qe.Symbol {
		return false
	}
	min := len(base) + qe.Stars
	if qe.Desc {
		if len(e.Prefix) < min {
			return false
		}
	} else if len(e.Prefix) != min {
		return false
	}
	for i, b := range base {
		if e.Prefix[i] != b {
			return false
		}
	}
	return true
}

// collectDocs gathers the document IDs attached to node and every
// descendant ("output all document IDs attached to the nodes under node
// n").
func collectDocs(node *suffixtree.Node, out map[uint64]struct{}) {
	for _, id := range node.Docs {
		out[id] = struct{}{}
	}
	for _, c := range node.Children() {
		collectDocs(c, out)
	}
}
