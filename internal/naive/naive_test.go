package naive

import (
	"reflect"
	"testing"

	"vist/internal/xmltree"
)

func insert(t *testing.T, ix *Index, xmls ...string) []uint64 {
	t.Helper()
	var ids []uint64
	for _, x := range xmls {
		n, err := xmltree.ParseString(x)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, ix.Insert(n))
	}
	return ids
}

func TestNaiveBasicQueries(t *testing.T) {
	ix := New(nil)
	ids := insert(t, ix,
		`<purchase><seller ID="dell"><location>boston</location></seller><buyer><location>newyork</location></buyer></purchase>`,
		`<purchase><seller ID="hp"><location>chicago</location></seller></purchase>`,
	)
	cases := []struct {
		expr string
		want []uint64
	}{
		{"/purchase", ids},
		{"/purchase/seller", ids},
		{"/purchase/seller[@ID='dell']", ids[:1]},
		{"/purchase/buyer", ids[:1]},
		{"/purchase/*[location='boston']", ids[:1]},
		{"//location[text()='chicago']", ids[1:]},
		{"/purchase[seller[location='boston']]/buyer[location='newyork']", ids[:1]},
		{"/nosuch", nil},
	}
	for _, c := range cases {
		got, err := ix.Query(c.expr)
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(c.want)) {
			t.Errorf("%s: got %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestNaiveDescendantAndStars(t *testing.T) {
	ix := New(nil)
	ids := insert(t, ix,
		"<a><b><c><d>x</d></c></b></a>",
		"<a><c><d>y</d></c></a>",
	)
	got, err := ix.Query("/a//d")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids) {
		t.Fatalf("/a//d = %v", got)
	}
	got, err = ix.Query("/a/*/d")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[1:]) {
		t.Fatalf("/a/*/d = %v", got)
	}
	got, err = ix.Query("//d[text()='x']")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("//d[x] = %v", got)
	}
}

func TestNaiveDocsUnderSubtreeCollected(t *testing.T) {
	// A query matching an interior suffix-tree node must report documents
	// attached below it (Algorithm 1: "output all document IDs attached to
	// the nodes under node n").
	ix := New(nil)
	ids := insert(t, ix,
		"<a><b/></a>",
		"<a><b><c/></b></a>",
	)
	got, err := ix.Query("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids) {
		t.Fatalf("/a/b = %v, want both docs", got)
	}
}

func TestNaiveParseError(t *testing.T) {
	ix := New(nil)
	if _, err := ix.Query("/a["); err == nil {
		t.Fatal("malformed query accepted")
	}
}

func normalize(ids []uint64) []uint64 {
	if len(ids) == 0 {
		return nil
	}
	return ids
}
