package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"vist/internal/query"
	"vist/internal/seq"
	"vist/internal/seqmatch"
	"vist/internal/treematch"
	"vist/internal/xmltree"
)

func mustMem(t testing.TB, opts Options) *Index {
	t.Helper()
	ix, err := NewMem(opts)
	if err != nil {
		t.Fatalf("NewMem: %v", err)
	}
	return ix
}

func insertXML(t testing.TB, ix *Index, docs ...string) []DocID {
	t.Helper()
	var ids []DocID
	for _, d := range docs {
		n, err := xmltree.ParseString(d)
		if err != nil {
			t.Fatalf("parse %q: %v", d, err)
		}
		id, err := ix.Insert(n)
		if err != nil {
			t.Fatalf("insert %q: %v", d, err)
		}
		ids = append(ids, id)
	}
	return ids
}

func queryIDs(t testing.TB, ix *Index, expr string) []DocID {
	t.Helper()
	ids, err := ix.Query(expr)
	if err != nil {
		t.Fatalf("Query(%q): %v", expr, err)
	}
	return ids
}

// The paper's running purchase example (Figure 3), plus a second record so
// queries can discriminate.
const (
	purchaseBoston = `
<purchase>
  <seller ID="dell">
    <item ID="x7" name="part#1" manufacturer="ibm">
      <item name="part#2" manufacturer="intel"/>
    </item>
    <item name="panasia"/>
    <location>boston</location>
  </seller>
  <buyer ID="ibm">
    <location>newyork</location>
  </buyer>
</purchase>`
	purchaseChicago = `
<purchase>
  <seller ID="hp">
    <item name="printer" manufacturer="canon"/>
    <location>chicago</location>
  </seller>
  <buyer ID="dell">
    <location>boston</location>
  </buyer>
</purchase>`
)

func TestInsertAndSimplePathQuery(t *testing.T) {
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix, purchaseBoston, purchaseChicago)
	got := queryIDs(t, ix, "/purchase/seller/item")
	if !reflect.DeepEqual(got, ids) {
		t.Fatalf("both purchases have seller items: got %v want %v", got, ids)
	}
	got = queryIDs(t, ix, "/purchase/seller/item/item")
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("nested item only in doc 1: got %v", got)
	}
}

func TestQueryPaperQ1toQ4(t *testing.T) {
	// Figure 2's four queries, against the Figure 3 record.
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix, purchaseBoston, purchaseChicago)
	boston, chicago := ids[0], ids[1]

	// Q1: find all manufacturers that supply items.
	got := queryIDs(t, ix, "/purchase/seller/item/@manufacturer")
	if len(got) != 2 {
		t.Fatalf("Q1: got %v", got)
	}
	// Q2: orders with Boston sellers and NY buyers.
	got = queryIDs(t, ix, "/purchase[seller[location='boston']]/buyer[location='newyork']")
	if !reflect.DeepEqual(got, []DocID{boston}) {
		t.Fatalf("Q2: got %v, want [%d]", got, boston)
	}
	// Q3: orders with a Boston seller or buyer (the paper's '*' query).
	got = queryIDs(t, ix, "/purchase/*[location='boston']")
	if !reflect.DeepEqual(got, []DocID{boston, chicago}) {
		t.Fatalf("Q3: got %v", got)
	}
	// Q4: orders containing Intel products at any depth.
	got = queryIDs(t, ix, "/purchase//item[@manufacturer='intel']")
	if !reflect.DeepEqual(got, []DocID{boston}) {
		t.Fatalf("Q4: got %v", got)
	}
}

func TestQueryValuePredicates(t *testing.T) {
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix, purchaseBoston, purchaseChicago)
	if got := queryIDs(t, ix, "/purchase/seller[@ID='dell']"); !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("seller dell: %v", got)
	}
	if got := queryIDs(t, ix, "/purchase/seller[@ID='nosuch']"); len(got) != 0 {
		t.Fatalf("nonexistent value matched: %v", got)
	}
	if got := queryIDs(t, ix, "/purchase/seller/location[text()='chicago']"); !reflect.DeepEqual(got, ids[1:]) {
		t.Fatalf("chicago seller: %v", got)
	}
}

func TestQueryUnknownNames(t *testing.T) {
	ix := mustMem(t, Options{})
	insertXML(t, ix, purchaseBoston)
	if got := queryIDs(t, ix, "/warehouse/shelf"); len(got) != 0 {
		t.Fatalf("unknown names matched: %v", got)
	}
}

func TestQueryEmptyIndex(t *testing.T) {
	ix := mustMem(t, Options{})
	if got := queryIDs(t, ix, "//anything"); len(got) != 0 {
		t.Fatalf("empty index matched: %v", got)
	}
}

func TestLeadingDescendant(t *testing.T) {
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix, purchaseBoston, purchaseChicago)
	got := queryIDs(t, ix, "//location[text()='newyork']")
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("//location newyork: %v", got)
	}
	got = queryIDs(t, ix, "//item")
	if len(got) != 2 {
		t.Fatalf("//item: %v", got)
	}
}

func TestStarAfterDescendant(t *testing.T) {
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix,
		"<site><people><person><address><city>Pocatello</city></address></person></people></site>",
		"<site><people><person><address><city>Boise</city></address></person></people></site>",
	)
	got := queryIDs(t, ix, "/site//person/*/city[text()='Pocatello']")
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("Q7-style query: %v", got)
	}
}

func TestIdenticalSiblingBranch(t *testing.T) {
	// The paper's Q5 case: /a[b/c]/b/d — data can order the two b's either
	// way; both permutations must be tried.
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix,
		"<a><b><c/></b><b><d/></b></a>",
		"<a><b><d/></b><b><c/></b></a>",
		"<a><b><c/></b></a>",
	)
	got := queryIDs(t, ix, "/a[b/c]/b/d")
	if !reflect.DeepEqual(got, ids[:2]) {
		t.Fatalf("Q5 permutations: got %v, want %v", got, ids[:2])
	}
}

func TestGetRoundTrip(t *testing.T) {
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix, purchaseBoston)
	doc, err := ix.Get(ids[0])
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if doc.Name != "purchase" || doc.Count() != 26 {
		t.Fatalf("round-tripped doc = %v", doc)
	}
}

func TestDeleteRemovesFromResults(t *testing.T) {
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix, purchaseBoston, purchaseChicago)
	if err := ix.Delete(ids[0]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	got := queryIDs(t, ix, "/purchase/seller/item")
	if !reflect.DeepEqual(got, ids[1:]) {
		t.Fatalf("after delete: %v", got)
	}
	if got := queryIDs(t, ix, "/purchase//item[@manufacturer='intel']"); len(got) != 0 {
		t.Fatalf("deleted doc still matches: %v", got)
	}
	if ix.DocCount() != 1 {
		t.Fatalf("DocCount = %d", ix.DocCount())
	}
	if _, err := ix.Get(ids[0]); err == nil {
		t.Fatal("Get of deleted doc succeeded")
	}
}

func TestDeleteAllReclaimsNodes(t *testing.T) {
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix, purchaseBoston, purchaseChicago, purchaseBoston)
	for _, id := range ids {
		if err := ix.Delete(id); err != nil {
			t.Fatalf("Delete %d: %v", id, err)
		}
	}
	if n := ix.NodeCount(); n != 0 {
		t.Fatalf("NodeCount = %d after deleting everything", n)
	}
	if got := queryIDs(t, ix, "//purchase"); len(got) != 0 {
		t.Fatalf("matches after full delete: %v", got)
	}
}

func TestReinsertAfterDelete(t *testing.T) {
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix, purchaseBoston)
	if err := ix.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	ids2 := insertXML(t, ix, purchaseBoston)
	got := queryIDs(t, ix, "/purchase//item[@manufacturer='intel']")
	if !reflect.DeepEqual(got, ids2) {
		t.Fatalf("reinserted doc not found: %v", got)
	}
}

func TestSharedPrefixRefcounts(t *testing.T) {
	// Two identical docs share every node; deleting one must keep the
	// other fully queryable.
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix, purchaseBoston, purchaseBoston)
	if err := ix.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	got := queryIDs(t, ix, "/purchase[seller[location='boston']]/buyer[location='newyork']")
	if !reflect.DeepEqual(got, ids[1:]) {
		t.Fatalf("after deleting twin: %v", got)
	}
}

func TestDepthLimit(t *testing.T) {
	ix := mustMem(t, Options{})
	// Build a chain deeper than MaxDepth.
	leaf := xmltree.NewElement("x")
	root := leaf
	for i := 0; i < MaxDepth+1; i++ {
		root = xmltree.NewElement("x", root)
	}
	if _, err := ix.Insert(root); err == nil {
		t.Fatal("over-deep document accepted")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := insertXML(t, ix, purchaseBoston, purchaseChicago)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	ix2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer ix2.Close()
	if ix2.DocCount() != 2 {
		t.Fatalf("reopened DocCount = %d", ix2.DocCount())
	}
	got := queryIDs(t, ix2, "/purchase//item[@manufacturer='intel']")
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("reopened query: %v", got)
	}
	// Inserting after reopen must keep working (dictionary, labels, meta).
	ids3 := insertXML(t, ix2, purchaseBoston)
	got = queryIDs(t, ix2, "/purchase//item[@manufacturer='intel']")
	want := []DocID{ids[0], ids3[0]}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after post-reopen insert: got %v want %v", got, want)
	}
}

func TestSchemaOrderPersisted(t *testing.T) {
	dir := t.TempDir()
	schema := []string{"purchase", "seller", "buyer"}
	ix, err := Open(dir, Options{Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	insertXML(t, ix, purchaseBoston)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if ix2.Schema() == nil {
		t.Fatal("schema lost on reopen")
	}
	// Queries with branches must still match (consistent ordering).
	got := queryIDs(t, ix2, "/purchase[seller[location='boston']]/buyer[location='newyork']")
	if len(got) != 1 {
		t.Fatalf("branch query after reopen: %v", got)
	}
}

// randomRecords builds small random documents over a tiny vocabulary so
// structural overlap is common.
func randomRecords(rng *rand.Rand, n int) []string {
	names := []string{"a", "b", "c", "d"}
	values := []string{"x", "y", "z"}
	var build func(depth int) string
	build = func(depth int) string {
		name := names[rng.Intn(len(names))]
		if depth <= 0 || rng.Intn(3) == 0 {
			return fmt.Sprintf("<%s>%s</%s>", name, values[rng.Intn(len(values))], name)
		}
		s := "<" + name
		if rng.Intn(3) == 0 {
			s += fmt.Sprintf(" %s=%q", names[rng.Intn(len(names))], values[rng.Intn(len(values))])
		}
		s += ">"
		for i := 0; i < 1+rng.Intn(3); i++ {
			s += build(depth - 1)
		}
		return s + "</" + name + ">"
	}
	out := make([]string, n)
	for i := range out {
		out[i] = "<r>" + build(3) + "</r>"
	}
	return out
}

// TestOracleComparison cross-checks ViST candidates against the
// ground-truth tree matcher on random data: verified results must equal
// the oracle exactly, and raw candidates must be a superset.
func TestOracleComparison(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	docs := randomRecords(rng, 120)
	ix := mustMem(t, Options{})
	parsed := make([]*xmltree.Node, len(docs))
	var ids []DocID
	for i, d := range docs {
		n, err := xmltree.ParseString(d)
		if err != nil {
			t.Fatal(err)
		}
		id, err := ix.Insert(n)
		if err != nil {
			t.Fatal(err)
		}
		parsed[i] = n // already normalized by Insert
		ids = append(ids, id)
	}
	exprs := []string{
		"/r", "/r/a", "/r/a/b", "/r//c", "//d", "/r/*[a]", "/r[a][b]",
		"/r/a[b]/c", "//b[text()='x']", "/r//c[text()='y']",
		"/r[a[b]]", "//a//b", "/r/*/*[text()='z']", "/r[@a='x']",
		"//b[c='x']",
	}
	for _, expr := range exprs {
		q := query.MustParse(expr)
		var oracle []DocID
		for i, doc := range parsed {
			if treematch.Matches(q, doc) {
				oracle = append(oracle, ids[i])
			}
		}
		candidates, err := ix.QueryParsed(q)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		// Candidates ⊇ oracle (no false negatives).
		cset := map[DocID]bool{}
		for _, id := range candidates {
			cset[id] = true
		}
		for _, id := range oracle {
			if !cset[id] {
				t.Errorf("%s: false negative: doc %d in oracle but not candidates", expr, id)
			}
		}
		// Verified == oracle exactly.
		verified, err := ix.QueryVerified(expr)
		if err != nil {
			t.Fatalf("%s verified: %v", expr, err)
		}
		if !reflect.DeepEqual(normalize(verified), normalize(oracle)) {
			t.Errorf("%s: verified %v != oracle %v", expr, verified, oracle)
		}
	}
}

func normalize(ids []DocID) []DocID {
	if len(ids) == 0 {
		return nil
	}
	return ids
}

func TestManyDocsScale(t *testing.T) {
	ix := mustMem(t, Options{Lambda: 8})
	var want []DocID
	for i := 0; i < 500; i++ {
		city := "city" + fmt.Sprint(i%10)
		id := insertXML(t, ix, fmt.Sprintf(
			"<order><cust region=%q><name>n%d</name></cust><total>%d</total></order>", city, i, i))[0]
		if i%10 == 3 {
			want = append(want, id)
		}
	}
	got := queryIDs(t, ix, "/order/cust[@region='city3']")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %d ids, want %d", len(got), len(want))
	}
}

func TestStatsAllocatorEndToEnd(t *testing.T) {
	// Build the same workload with uniform and stats-guided labeling; both
	// must answer identically.
	docs := randomRecords(rand.New(rand.NewSource(21)), 150)

	uniform := mustMem(t, Options{})
	insertAll := func(ix *Index) {
		for _, d := range docs {
			insertXML(t, ix, d)
		}
	}
	insertAll(uniform)

	tr := trainFromXML(t, docs)
	guided := mustMem(t, Options{Training: tr})
	insertAll(guided)

	for _, expr := range []string{"/r/a", "//b", "/r//c[text()='y']", "/r[a][b]"} {
		u := queryIDs(t, uniform, expr)
		g := queryIDs(t, guided, expr)
		if !reflect.DeepEqual(u, g) {
			t.Fatalf("%s: uniform %v != stats %v", expr, u, g)
		}
	}
}

func TestStatsPersistedOnReopen(t *testing.T) {
	docs := randomRecords(rand.New(rand.NewSource(33)), 60)
	dir := t.TempDir()
	ix, err := Open(dir, Options{Training: trainFromXML(t, docs)})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs[:30] {
		insertXML(t, ix, d)
	}
	before := queryIDs(t, ix, "/r/a")
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen without passing stats: they must be restored from disk.
	ix2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	for _, d := range docs[30:] {
		insertXML(t, ix2, d)
	}
	after := queryIDs(t, ix2, "/r/a")
	if len(after) < len(before) {
		t.Fatalf("results shrank after reopen: %d -> %d", len(before), len(after))
	}
}

func TestScopeUnderflowBorrowing(t *testing.T) {
	// Force underflow with a tiny lambda... lambda can't go below 2, so use
	// deep, branchy documents instead: each level halves the scope, and
	// 2^64 shrinks fast when every node also has many arrival slots.
	ix := mustMem(t, Options{Lambda: 1 << 20, ReserveDen: 4})
	// With λ = 2^20 each child gets scope/2^20: after 4 levels scopes hit
	// ~2^(64-80) → underflow; the reserve machinery must absorb it.
	doc := "<a><b><c><d><e><f><g>deep</g></f></e></d></c></b></a>"
	ids := insertXML(t, ix, doc, doc, "<a><b><c><d><e><f><g>deep2</g></f></e></d></c></b></a>")
	got := queryIDs(t, ix, "/a/b/c/d/e/f/g[text()='deep']")
	if !reflect.DeepEqual(got, ids[:2]) {
		t.Fatalf("underflow docs not found: %v (want %v)", got, ids[:2])
	}
	got = queryIDs(t, ix, "//g[text()='deep2']")
	if !reflect.DeepEqual(got, ids[2:]) {
		t.Fatalf("underflow doc2 not found: %v", got)
	}
	// Deletion must also handle sequential chains.
	if err := ix.Delete(ids[0]); err != nil {
		t.Fatalf("delete borrowed doc: %v", err)
	}
	got = queryIDs(t, ix, "/a/b/c/d/e/f/g[text()='deep']")
	if !reflect.DeepEqual(got, ids[1:2]) {
		t.Fatalf("after deleting one borrowed doc: %v", got)
	}
	// The first insert creates nodes for a few levels before underflowing,
	// and borrowing rolls those creations back: they must be removed, not
	// left behind as refcount-0 records (which would poison D-Ancestor
	// scans and break Check's synopsis count invariant).
	report, err := ix.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(report.Problems) != 0 {
		t.Fatalf("problems after borrowed insert/delete: %v", report.Problems)
	}
}

func TestSkipDocumentStore(t *testing.T) {
	ix := mustMem(t, Options{SkipDocumentStore: true})
	ids := insertXML(t, ix, purchaseBoston)
	if got := queryIDs(t, ix, "/purchase/seller"); !reflect.DeepEqual(got, ids) {
		t.Fatalf("query without store: %v", got)
	}
	if _, err := ix.Get(ids[0]); err == nil {
		t.Fatal("Get succeeded without document store")
	}
	if err := ix.Delete(ids[0]); err == nil {
		t.Fatal("Delete succeeded without document store")
	}
	if _, err := ix.QueryVerified("/purchase"); err == nil {
		t.Fatal("QueryVerified succeeded without document store")
	}
}

func TestValueHashCollisionFilteredByVerify(t *testing.T) {
	// We cannot easily synthesize an FNV collision, but QueryVerified must
	// at minimum return exactly the oracle's answer on a value query.
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix, "<a><b>v1</b></a>", "<a><b>v2</b></a>")
	got, err := ix.QueryVerified("/a/b[text()='v1']")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("verified value query: %v", got)
	}
}

// trainFromXML builds Training data from raw XML strings.
func trainFromXML(t testing.TB, docs []string) *Training {
	t.Helper()
	parsed := make([]*xmltree.Node, len(docs))
	for i, d := range docs {
		n, err := xmltree.ParseString(d)
		if err != nil {
			t.Fatal(err)
		}
		parsed[i] = n
	}
	return Train(parsed, nil)
}

func TestAttributeElementBranchOrdering(t *testing.T) {
	// Regression: document normalization and query conversion must order an
	// attribute branch and an element branch identically ("@key" vs
	// "author"), or queries like Q5 of Table 3 silently return nothing.
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix, `<book key="k1"><author>Al</author><title>T</title></book>`)
	got := queryIDs(t, ix, "/book[@key='k1']/author")
	if !reflect.DeepEqual(got, ids) {
		t.Fatalf("attr+element branch: %v, want %v", got, ids)
	}
	// And with a schema that ranks them.
	ix2 := mustMem(t, Options{Schema: []string{"book", "@key", "author", "title"}})
	ids2 := insertXML(t, ix2, `<book key="k1"><author>Al</author><title>T</title></book>`)
	got2 := queryIDs(t, ix2, "/book[@key='k1']/author")
	if !reflect.DeepEqual(got2, ids2) {
		t.Fatalf("schema-ranked attr+element branch: %v, want %v", got2, ids2)
	}
}

func TestDisassembleFallback(t *testing.T) {
	// Seven identical-name branches would need 7! > 64 permutations; the
	// index must fall back to disassemble-and-join instead of erroring.
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix,
		"<a><b><c/></b><b><d/></b><b><e/></b><b><f/></b><b><g/></b><b><h/></b><b><i/></b></a>",
		"<a><b><c/></b></a>",
	)
	got, err := ix.Query("/a[b/c][b/d][b/e][b/f][b/g][b/h]/b/i")
	if err != nil {
		t.Fatalf("fallback query: %v", err)
	}
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("fallback result = %v, want %v", got, ids[:1])
	}
	// Candidates must still cover the oracle on a satisfiable subset query.
	got, err = ix.Query("/a[b/c][b/d][b/e][b/f][b/g][b/h][b/i]")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("fallback branch-only result = %v", got)
	}
}

func TestConcurrentQueriesAndInserts(t *testing.T) {
	// Queries and inserts from many goroutines must be linearizable enough
	// to never error or return IDs that were never assigned.
	ix := mustMem(t, Options{})
	insertXML(t, ix, purchaseBoston, purchaseChicago)
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 50; i++ {
				doc, err := xmltree.ParseString(purchaseBoston)
				if err != nil {
					done <- err
					return
				}
				if _, err := ix.Insert(doc); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
		go func() {
			for i := 0; i < 100; i++ {
				ids, err := ix.Query("/purchase//item[@manufacturer='intel']")
				if err != nil {
					done <- err
					return
				}
				if len(ids) == 0 {
					done <- fmt.Errorf("concurrent query lost the baseline document")
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Everything settled: 2 + 4*50 documents, index still consistent.
	if ix.DocCount() != 202 {
		t.Fatalf("DocCount = %d", ix.DocCount())
	}
	rep, err := ix.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("post-concurrency check failed: %v", rep.Problems[:min(3, len(rep.Problems))])
	}
}

func TestDocsIterationAndExport(t *testing.T) {
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix, purchaseBoston, purchaseChicago)
	var seen []DocID
	err := ix.Docs(func(id DocID, doc *xmltree.Node) (bool, error) {
		seen = append(seen, id)
		if doc.Name != "purchase" {
			t.Fatalf("doc %d root = %q", id, doc.Name)
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seen, ids) {
		t.Fatalf("Docs order = %v, want %v", seen, ids)
	}
	var buf strings.Builder
	if err := ix.ExportXML(&buf); err != nil {
		t.Fatal(err)
	}
	// The export must round-trip through a fresh index.
	back, err := xmltree.ParseAll(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("reparse export: %v", err)
	}
	if len(back) != 2 {
		t.Fatalf("export produced %d docs", len(back))
	}
	ix2 := mustMem(t, Options{})
	for _, d := range back {
		if _, err := ix2.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	a := queryIDs(t, ix, "/purchase//item[@manufacturer='intel']")
	b := queryIDs(t, ix2, "/purchase//item[@manufacturer='intel']")
	if len(a) != len(b) {
		t.Fatalf("export round trip changed results: %v vs %v", a, b)
	}
}

func TestDocsEarlyStop(t *testing.T) {
	ix := mustMem(t, Options{})
	insertXML(t, ix, purchaseBoston, purchaseChicago, purchaseBoston)
	n := 0
	err := ix.Docs(func(id DocID, doc *xmltree.Node) (bool, error) {
		n++
		return n < 2, nil
	})
	if err != nil || n != 2 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
}

// TestPropertyIndexEqualsBruteForce is the strongest correctness property:
// on random corpora and a battery of query shapes, the index's candidate
// set must EXACTLY equal the paper's brute-force sequence matcher
// (internal/seqmatch), not merely cover the tree-matching oracle.
func TestPropertyIndexEqualsBruteForce(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		docs := randomRecords(rng, 40)
		ix := mustMem(t, Options{})
		var ids []DocID
		var seqs []seq.Sequence
		for _, x := range docs {
			n, err := xmltree.ParseString(x)
			if err != nil {
				t.Fatal(err)
			}
			id, err := ix.Insert(n)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			seqs = append(seqs, seq.Encode(n, ix.Dict()))
		}
		exprs := []string{
			"/r/a", "/r//c", "//d", "/r/*[a]", "/r[a][b]", "/r/a[b]/c",
			"//b[text()='x']", "//a//b", "/r[@a='x']", "/r/*/*[text()='z']",
		}
		for _, expr := range exprs {
			variants, err := query.MustParse(expr).Sequences(ix.Dict(), nil)
			if err != nil {
				t.Fatal(err)
			}
			want := map[DocID]bool{}
			for i, s := range seqs {
				if seqmatch.MatchesAny(variants, s) {
					want[ids[i]] = true
				}
			}
			got, err := ix.Query(expr)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Logf("seed %d %s: index %v != spec size %d", seedRaw, expr, got, len(want))
				return false
			}
			for _, id := range got {
				if !want[id] {
					t.Logf("seed %d %s: index returned %d, spec did not", seedRaw, expr, id)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeDocumentChunking(t *testing.T) {
	// A document whose encoding exceeds one B+Tree page must round-trip
	// through the chunked document store.
	ix := mustMem(t, Options{})
	big := xmltree.NewElement("catalog")
	for i := 0; i < 40; i++ {
		big.Children = append(big.Children, xmltree.NewElement("entry",
			xmltree.NewAttr("id", fmt.Sprintf("id-%04d-%s", i, strings.Repeat("x", 60))),
			xmltree.NewElementText("desc", strings.Repeat("lorem ipsum ", 10)),
		))
	}
	if len(xmltree.Encode(big)) < 3*2048 {
		t.Fatal("test fixture too small to exercise chunking")
	}
	id, err := ix.Insert(big)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ix.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(big, back) {
		t.Fatal("chunked document round trip mismatch")
	}
	// Delete must remove every chunk.
	if err := ix.Delete(id); err != nil {
		t.Fatal(err)
	}
	if n := ix.store.Len(); n != 0 {
		t.Fatalf("store still holds %d chunks after delete", n)
	}
}

func TestDictionaryBlobChunking(t *testing.T) {
	// Hundreds of distinct names force the dictionary blob across multiple
	// aux-tree chunks; it must survive a reopen.
	dir := t.TempDir()
	ix, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.NewElement("root")
	for i := 0; i < 400; i++ {
		doc.Children = append(doc.Children, xmltree.NewElement(fmt.Sprintf("field%04d", i)))
	}
	if _, err := ix.Insert(doc); err != nil {
		t.Fatal(err)
	}
	names := ix.Dict().Len()
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if ix2.Dict().Len() != names {
		t.Fatalf("dictionary shrank across reopen: %d -> %d", names, ix2.Dict().Len())
	}
	if got := queryIDs(t, ix2, "/root/field0399"); len(got) != 1 {
		t.Fatalf("deep field query after reopen: %v", got)
	}
}
