package core

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"vist/internal/btree"
	"vist/internal/xmltree"
)

// crashDoc builds a small distinct purchase record; i is recoverable from
// the seller's location text.
func crashDoc(i int) string {
	return fmt.Sprintf(`<purchase><seller ID="s%d"><item name="part#%d"/><location>city%d</location></seller></purchase>`, i, i%5, i)
}

// crashWorkload drives a deterministic insert/delete/Sync workload against a
// file-backed index under the given FS. Mirroring the btree-level harness,
// it returns every doc-ID set a Sync attempted to commit and the index of
// the last attempt whose Sync returned nil. Open or workload errors after
// the injected kill are expected and end the run.
func crashWorkload(t *testing.T, dir string, fs btree.FS) (attempts [][]DocID, committedIdx int) {
	t.Helper()
	attempts = append(attempts, nil) // the state before any Sync
	ix, err := Open(dir, Options{PageSize: 512, CachePages: 4, FS: fs})
	if err != nil {
		return attempts, 0
	}
	defer func() { _ = ix.Close() }() // Close after a kill fails; that is the point

	live := map[DocID]bool{}
	snapshot := func() []DocID {
		ids := make([]DocID, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		return ids
	}
	var inserted []DocID
	for i := 0; i < 40; i++ {
		n, perr := xmltree.ParseString(crashDoc(i))
		if perr != nil {
			t.Fatalf("parse: %v", perr)
		}
		if id, err := ix.Insert(n); err == nil {
			live[id] = true
			inserted = append(inserted, id)
		}
		if i%9 == 5 && len(inserted) > 3 {
			victim := inserted[i%len(inserted)]
			if live[victim] {
				if err := ix.Delete(victim); err == nil {
					delete(live, victim)
				}
			}
		}
		if i%8 == 7 {
			attempts = append(attempts, snapshot())
			if err := ix.Sync(); err == nil {
				committedIdx = len(attempts) - 1
			}
		}
	}
	return attempts, committedIdx
}

// reopenAndAudit reopens dir with the real filesystem, verifies structural
// invariants, and returns the sorted live doc IDs.
func reopenAndAudit(t *testing.T, dir string) []DocID {
	t.Helper()
	ix, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer ix.Close()
	report, err := ix.Check()
	if err != nil {
		t.Fatalf("Check after crash: %v", err)
	}
	if !report.Ok() {
		t.Fatalf("index inconsistent after crash: %v", report.Problems)
	}
	var ids []DocID
	err = ix.Docs(func(id DocID, doc *xmltree.Node) (bool, error) {
		if doc == nil {
			t.Fatalf("doc %d present but empty", id)
		}
		ids = append(ids, id)
		return true, nil
	})
	if err != nil {
		t.Fatalf("Docs after crash: %v", err)
	}
	if got := ix.DocCount(); got != uint64(len(ids)) {
		t.Fatalf("DocCount = %d but Docs visited %d", got, len(ids))
	}
	// Every surviving doc must be fully retrievable and query-visible.
	for _, id := range ids {
		if _, err := ix.Get(id); err != nil {
			t.Fatalf("Get(%d) after crash: %v", id, err)
		}
	}
	if len(ids) > 0 {
		hits, err := ix.Query("/purchase/seller")
		if err != nil {
			t.Fatalf("Query after crash: %v", err)
		}
		if len(hits) != len(ids) {
			t.Fatalf("Query found %d docs, Docs found %d", len(hits), len(ids))
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func matchIDState(got []DocID, states [][]DocID) int {
	for j := len(states) - 1; j >= 0; j-- {
		if len(states[j]) == len(got) && (len(got) == 0 || reflect.DeepEqual(states[j], got)) {
			return j
		}
	}
	return -1
}

// TestIndexCrashMatrix is the end-to-end reopen-after-unclean-shutdown
// matrix from the issue: the process is killed at byte-granular injection
// points covering every phase of Sync (saveMeta, per-tree flush, WAL append,
// commit fsync, mid-checkpoint) and of ordinary mutation, under both crash
// models. Every reopen must recover a consistent index (Check passes, all
// docs retrievable and query-visible) whose doc set equals an attempted
// commit no older than the last acknowledged Sync.
func TestIndexCrashMatrix(t *testing.T) {
	recPlan := &btree.FaultPlan{}
	_, recIdx := crashWorkload(t, t.TempDir(), btree.FaultFS{Plan: recPlan})
	if recIdx == 0 {
		t.Fatal("recording run committed nothing; workload broken")
	}
	bounds := recPlan.WriteBoundaries()
	if len(bounds) < 30 {
		t.Fatalf("only %d write operations recorded", len(bounds))
	}
	points := crashSamplePoints(bounds, 25)

	for _, kill := range points {
		for _, keep := range []bool{false, true} {
			kill, keep := kill, keep
			t.Run(fmt.Sprintf("kill=%d/keep=%v", kill, keep), func(t *testing.T) {
				dir := t.TempDir()
				plan := &btree.FaultPlan{KillAfter: kill}
				attempts, committedIdx := crashWorkload(t, dir, btree.FaultFS{Plan: plan})
				if err := plan.Crash(keep); err != nil {
					t.Fatalf("Crash: %v", err)
				}
				got := reopenAndAudit(t, dir)
				if j := matchIDState(got, attempts); j < 0 {
					t.Fatalf("recovered doc set %v matches no attempted commit", got)
				} else if j < committedIdx {
					t.Fatalf("recovered doc set is attempt %d, older than acknowledged commit %d: durability lost", j, committedIdx)
				}
			})
		}
	}
}

// TestIndexCrashMatrixConcurrentReads replays the crash matrix while reader
// goroutines continuously query the index. The tiny buffer pool makes
// eviction constant, so kills land mid-eviction while pinned snapshots are
// mid-scan — the regime where an eviction that loses or misdirects a page
// write corrupts the on-disk freelist (a bug this test pins). Every query
// result must equal some published doc-ID state, and the reopened index must
// audit clean.
func TestIndexCrashMatrixConcurrentReads(t *testing.T) {
	recPlan := &btree.FaultPlan{}
	_, recIdx := crashWorkload(t, t.TempDir(), btree.FaultFS{Plan: recPlan})
	if recIdx == 0 {
		t.Fatal("recording run committed nothing; workload broken")
	}
	points := crashSamplePoints(recPlan.WriteBoundaries(), 8)

	for _, kill := range points {
		t.Run(fmt.Sprintf("kill=%d", kill), func(t *testing.T) {
			dir := t.TempDir()
			plan := &btree.FaultPlan{KillAfter: kill}
			attempts, committedIdx, published, observed :=
				crashWorkloadWithReaders(t, dir, btree.FaultFS{Plan: plan})
			// Every result a reader saw must be a state some publish exposed:
			// never a partial mutation, never a mix of two versions.
			for _, obs := range observed {
				if matchIDState(obs, published) < 0 {
					t.Fatalf("concurrent query saw %v, which no publish exposed", obs)
				}
			}
			if err := plan.Crash(false); err != nil {
				t.Fatalf("Crash: %v", err)
			}
			got := reopenAndAudit(t, dir)
			if j := matchIDState(got, attempts); j < 0 {
				t.Fatalf("recovered doc set %v matches no attempted commit", got)
			} else if j < committedIdx {
				t.Fatalf("recovered doc set is attempt %d, older than acknowledged commit %d: durability lost", j, committedIdx)
			}
		})
	}
}

// crashWorkloadWithReaders runs the crashWorkload mutation sequence while two
// goroutines query continuously. It additionally returns every doc-ID state a
// publish exposed and the distinct states the readers observed.
func crashWorkloadWithReaders(t *testing.T, dir string, fs btree.FS) (attempts [][]DocID, committedIdx int, published, observed [][]DocID) {
	t.Helper()
	attempts = append(attempts, nil)
	published = append(published, nil)
	ix, err := Open(dir, Options{PageSize: 512, CachePages: 4, FS: fs})
	if err != nil {
		return attempts, 0, published, nil
	}

	var stateMu sync.Mutex
	live := map[DocID]bool{}
	snapshot := func() []DocID {
		ids := make([]DocID, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		return ids
	}
	record := func() {
		stateMu.Lock()
		published = append(published, snapshot())
		stateMu.Unlock()
	}

	var obsMu sync.Mutex
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				ids, err := ix.Query("/purchase/seller")
				if err != nil {
					continue // ErrClosed near shutdown; reads themselves never fail
				}
				sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
				obsMu.Lock()
				observed = append(observed, ids)
				obsMu.Unlock()
			}
		}()
	}

	var inserted []DocID
	for i := 0; i < 40; i++ {
		n, perr := xmltree.ParseString(crashDoc(i))
		if perr != nil {
			t.Fatalf("parse: %v", perr)
		}
		if id, err := ix.Insert(n); err == nil {
			live[id] = true
			inserted = append(inserted, id)
			record()
		}
		if i%9 == 5 && len(inserted) > 3 {
			victim := inserted[i%len(inserted)]
			if live[victim] {
				if err := ix.Delete(victim); err == nil {
					delete(live, victim)
					record()
				}
			}
		}
		if i%8 == 7 {
			attempts = append(attempts, snapshot())
			if err := ix.Sync(); err == nil {
				committedIdx = len(attempts) - 1
			}
		}
	}
	close(done)
	wg.Wait()
	_ = ix.Close() // Close after a kill fails; that is the point
	return attempts, committedIdx, published, observed
}

func crashSamplePoints(bounds []int64, n int) []int64 {
	var cand []int64
	prev := int64(0)
	for _, b := range bounds {
		if b-prev > 1 {
			cand = append(cand, prev+(b-prev)/2)
		}
		cand = append(cand, b)
		prev = b
	}
	if len(cand) <= n {
		return cand
	}
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, cand[i*len(cand)/n])
	}
	return out
}

// TestIndexCrashAfterCleanSync kills the process right after an acknowledged
// Sync (the strictest durability point): everything committed must survive
// byte-for-byte even when nothing buffered after the fsync is kept.
func TestIndexCrashAfterCleanSync(t *testing.T) {
	dir := t.TempDir()
	plan := &btree.FaultPlan{}
	fs := btree.FaultFS{Plan: plan}
	ix, err := Open(dir, Options{PageSize: 512, CachePages: 4, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	ids := insertXML(t, ix, purchaseBoston, purchaseChicago)
	if err := ix.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Unsynced tail after the commit: must be allowed to vanish.
	insertXML(t, ix, crashDoc(99))
	if err := plan.Crash(false); err != nil {
		t.Fatal(err)
	}

	ix2, err := Open(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer ix2.Close()
	report, err := ix2.Check()
	if err != nil || !report.Ok() {
		t.Fatalf("Check: %v\n%v", err, report)
	}
	for _, id := range ids {
		doc, err := ix2.Get(id)
		if err != nil || doc == nil {
			t.Fatalf("committed doc %d lost: %v", id, err)
		}
	}
	if got := queryIDs(t, ix2, "/purchase/seller/location"); len(got) != 2 {
		t.Fatalf("query after recovery found %d docs, want 2", len(got))
	}
}

// TestIndexRecoveryReported: Open must surface that a replay happened when
// the previous process died between WAL commit and checkpoint.
func TestIndexRecoveryReported(t *testing.T) {
	dir := t.TempDir()
	// Budget chosen empirically inside Sync's checkpoint phase: record a run
	// first, then kill between the commit fsync and the member fsyncs by
	// replaying with a budget just past the last acknowledged Sync.
	plan := &btree.FaultPlan{}
	fs := btree.FaultFS{Plan: plan}
	ix, err := Open(t.TempDir(), Options{PageSize: 512, CachePages: 4, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	insertXML(t, ix, purchaseBoston)
	preSync := plan.BytesWritten()
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}
	postSync := plan.BytesWritten()
	ix.Close()

	// Replay the same workload, killed a few operations into Sync — after
	// the WAL append begins, before the checkpoint completes.
	replayed := false
	for kill := preSync + 2; kill < postSync; kill += (postSync - preSync) / 8 {
		d := t.TempDir()
		p2 := &btree.FaultPlan{KillAfter: kill}
		ix2, err := Open(d, Options{PageSize: 512, CachePages: 4, FS: btree.FaultFS{Plan: p2}})
		if err != nil {
			continue
		}
		insertXML(t, ix2, purchaseBoston)
		_ = ix2.Sync() // may fail: that is the point
		_ = ix2.Close()
		if err := p2.Crash(true); err != nil {
			t.Fatal(err)
		}
		ix3, err := Open(d, Options{PageSize: 512})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if ix3.Recovered() {
			replayed = true
			info := ix3.Recovery()
			if info.PagesReplayed == 0 {
				t.Fatalf("Recovered() true but no pages replayed: %+v", info)
			}
		}
		ix3.Close()
		if replayed {
			break
		}
	}
	if !replayed {
		t.Fatal("no injection point between commit and checkpoint produced a replay")
	}
	_ = dir
}

// TestOpenRefusesDisableWALWithPendingLog: opening with DisableWAL while a
// non-empty log exists would silently drop a committed tail; Open must
// refuse.
func TestOpenRefusesDisableWALWithPendingLog(t *testing.T) {
	dir := t.TempDir()
	// Produce a directory whose WAL holds a committed, un-checkpointed tail.
	plan := &btree.FaultPlan{}
	ix, err := Open(dir, Options{PageSize: 512, CachePages: 4, FS: btree.FaultFS{Plan: plan}})
	if err != nil {
		t.Fatal(err)
	}
	insertXML(t, ix, purchaseBoston)
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}
	insertXML(t, ix, purchaseChicago) // staged frames via eviction, maybe
	if err := plan.Crash(true); err != nil {
		t.Fatal(err)
	}
	// The WAL file exists (header at minimum). DisableWAL must refuse while
	// any log file with content is present.
	if _, err := Open(dir, Options{PageSize: 512, DisableWAL: true}); err == nil {
		t.Fatal("Open(DisableWAL) succeeded with a WAL present")
	}
	// The normal path still opens fine.
	ix2, err := Open(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatalf("normal reopen: %v", err)
	}
	ix2.Close()
}
