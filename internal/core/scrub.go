package core

import (
	"context"
	"fmt"
	"time"

	"vist/internal/btree"
)

// DefaultScrubRate is the page-verification rate (pages per second) the
// scrubber uses when ScrubOptions.PagesPerSecond is zero. At the default
// 2 KB pages this is ~4 MB/s of background read I/O — slow enough to stay
// off the query path's critical locks, fast enough to cover a
// million-page index in under ten minutes.
const DefaultScrubRate = 2000

// ScrubOptions configures one scrub pass.
type ScrubOptions struct {
	// PagesPerSecond bounds the verification rate. Zero selects
	// DefaultScrubRate; negative disables throttling (offline fsck).
	PagesPerSecond int
	// CheckInvariants additionally runs the structural invariant scan
	// (CheckSnapshot) after the page sweep: scope nesting, refcounts,
	// synopsis agreement. It materializes the node table in memory, so it
	// costs CPU proportional to index size.
	CheckInvariants bool
}

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	// PagesChecked counts pages whose durable frame was verified.
	PagesChecked int
	// PagesSkipped counts allocated pages with no durable frame yet
	// (healthy: they live only in the buffer pool).
	PagesSkipped int
	// Corrupt describes every page that failed verification.
	Corrupt []string
	// InvariantProblems carries CheckSnapshot findings (CheckInvariants
	// runs only).
	InvariantProblems []string
	// Duration is the pass's wall time.
	Duration time.Duration
}

// Ok reports whether the pass found nothing wrong.
func (r *ScrubReport) Ok() bool {
	return len(r.Corrupt) == 0 && len(r.InvariantProblems) == 0
}

// Scrub runs one verification pass over the index: every allocated page of
// every tree file has its durable copy verified (CRC32C + pageID trailer,
// or the staged WAL frame when one is newer), rate-limited to
// ScrubOptions.PagesPerSecond. The pass is writer-independent — it never
// takes ix.mu; it pins the published snapshot in short batches so Close
// can still drain promptly and page reclamation is never held up for a
// whole pass.
//
// Corruption is contained, never fatal: each finding is recorded in the
// report, counted in the scrub.* metrics, and degrades the index to
// read-only (ErrReadOnly) so no mutation builds on bad state — queries
// keep serving the pinned snapshot, which per copy-on-write still has
// every committed page of its version. Scrub itself returns an error only
// for lifecycle failures (index closed, context canceled).
func (ix *Index) Scrub(ctx context.Context, o ScrubOptions) (*ScrubReport, error) {
	rate := o.PagesPerSecond
	if rate == 0 {
		rate = DefaultScrubRate
	}
	report := &ScrubReport{}
	start := time.Now()
	ix.qm.scrubRunning.Set(1)
	defer func() {
		ix.qm.scrubRunning.Set(0)
		report.Duration = time.Since(start)
	}()

	// pace sleeps so that `done` pages take done/rate seconds since the
	// pass started; it runs once per batch.
	done := 0
	pace := func() error {
		if rate < 0 {
			return ctx.Err()
		}
		target := start.Add(time.Duration(done) * time.Second / time.Duration(rate))
		d := time.Until(target)
		if d <= 0 {
			return ctx.Err()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
			return nil
		}
	}

	// batchSize bounds how long one snapshot pin is held: long enough to
	// amortize the pin, short enough that Close's reader drain and the
	// writer's page reclamation never wait on a scrub pass.
	const batchSize = 64
	names := []string{"nodes.db", "docs.db", "store.db", "aux.db"}
	for pi, pg := range ix.pagers {
		n := pg.NumPages()
		for pageID := uint32(0); pageID < n; {
			snap, err := ix.pin()
			if err != nil {
				return report, err // closing; stop quietly with partial results
			}
			batchStart := pageID
			for end := pageID + batchSize; pageID < end && pageID < n; pageID++ {
				checked, verr := pg.VerifyPage(btree.PageID(pageID))
				if !checked && verr == nil {
					report.PagesSkipped++
					continue
				}
				if checked {
					report.PagesChecked++
					ix.qm.scrubPages.Inc()
				}
				if verr != nil {
					finding := fmt.Sprintf("%s page %d: %v", names[pi], pageID, verr)
					if len(report.Corrupt) < 100 {
						report.Corrupt = append(report.Corrupt, finding)
					}
					ix.qm.scrubCorrupt.Inc()
					ix.degrade("scrub", fmt.Errorf("core: scrub: %s: %w", names[pi], verr))
				}
			}
			ix.unpin(snap)
			done += int(pageID - batchStart)
			if err := pace(); err != nil {
				return report, err
			}
		}
	}

	if o.CheckInvariants {
		rep, err := ix.CheckSnapshot()
		if err != nil {
			return report, err
		}
		if !rep.Ok() {
			report.InvariantProblems = rep.Problems
			for range rep.Problems {
				ix.qm.scrubInvariant.Inc()
			}
			ix.degrade("scrub", fmt.Errorf("%w: %s", ErrInvariantViolation, rep.Problems[0]))
		}
	}
	ix.qm.scrubPasses.Inc()
	return report, nil
}

// startScrubber launches the background scrub loop (Options.ScrubInterval
// > 0, file-backed indexes only). Each pass verifies every page and the
// structural invariants, then sleeps the interval; Close stops the loop
// and waits for it.
func (ix *Index) startScrubber() {
	ix.scrubStop = make(chan struct{})
	ix.scrubDone = make(chan struct{})
	interval := ix.opts.ScrubInterval
	rate := ix.opts.ScrubPagesPerSecond
	go func() {
		defer close(ix.scrubDone)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			<-ix.scrubStop
			cancel()
		}()
		timer := time.NewTimer(interval)
		defer timer.Stop()
		for {
			select {
			case <-ix.scrubStop:
				return
			case <-timer.C:
			}
			// Findings surface through metrics and the sticky degradation
			// state; the pass result itself needs no channel back.
			_, _ = ix.Scrub(ctx, ScrubOptions{PagesPerSecond: rate, CheckInvariants: true})
			timer.Reset(interval)
		}
	}()
}

// stopScrubber signals the background scrubber (if any) and waits for it
// to exit. Safe to call more than once.
func (ix *Index) stopScrubber() {
	if ix.scrubStop == nil {
		return
	}
	ix.scrubOnce.Do(func() { close(ix.scrubStop) })
	<-ix.scrubDone
}
