package core

import (
	"fmt"
	"os"
	"path/filepath"
)

// CompactReport summarizes an offline Compact run.
type CompactReport struct {
	// Nodes, Docs, and StoreChunks count the entries copied into the
	// rewritten index.
	Nodes, Docs, StoreChunks int
	// BytesBefore and BytesAfter are the summed sizes of the four tree files
	// (WAL excluded) before and after the rewrite.
	BytesBefore, BytesAfter int64
	// BackupDir is where the pre-compaction index directory was moved
	// (kept, never deleted).
	BackupDir string
}

// Compact rewrites the index at dir into the storage format the given
// options select: interned D-Ancestor keys with varint records by default,
// the original fixed-width layout under Options.LegacyFormat — in both cases
// on freshly packed pages (front-coded unless LegacyFormat), which also
// reclaims the space of dead page versions accumulated on the freelist. It
// is the migration path for indexes created before path interning existed,
// and doubles as an offline defragmenter for current-format indexes.
//
// Compact is strict where Repair is forgiving: the source index must open
// and pass its structural invariant check, or Compact refuses and points at
// Repair — rewriting a corrupt index would launder its corruption into a
// "clean" replacement. Unlike Repair it copies the trees entry by entry
// (re-encoding node keys and records), so it works on indexes built with
// SkipDocumentStore, which Repair cannot rebuild.
//
// The directory swap mirrors Repair: the rewrite lands in
// dir+".compact.tmp", the original is renamed to dir+".pre-compact" (kept),
// and the rewrite takes its place. A crash mid-swap leaves both directories
// on disk; nothing is destroyed.
func Compact(dir string, opts Options) (*CompactReport, error) {
	opts.ScrubInterval = 0
	src, err := Open(dir, opts)
	if err != nil {
		return nil, fmt.Errorf("core: compact: %w", err)
	}
	report := &CompactReport{}
	rep, err := src.Check()
	if err != nil {
		src.Close()
		return nil, fmt.Errorf("core: compact: structural check aborted (run Repair): %w", err)
	}
	if !rep.Ok() {
		src.Close()
		return nil, fmt.Errorf("core: compact refused: index has %d invariant violations (first: %s); run Repair first",
			len(rep.Problems), rep.Problems[0])
	}
	for _, name := range indexFileNames {
		if st, err := os.Stat(filepath.Join(dir, name)); err == nil {
			report.BytesBefore += st.Size()
		}
	}

	tmp := dir + ".compact.tmp"
	if err := os.RemoveAll(tmp); err != nil {
		src.Close()
		return nil, err
	}
	dst, err := Open(tmp, opts)
	if err != nil {
		src.Close()
		return nil, fmt.Errorf("core: compact: creating replacement index: %w", err)
	}
	fail := func(err error) (*CompactReport, error) {
		dst.Close()
		src.Close()
		os.RemoveAll(tmp)
		return nil, err
	}
	if err := copyIndex(src, dst, report); err != nil {
		return fail(fmt.Errorf("core: compact: %w", err))
	}
	if err := dst.Close(); err != nil {
		src.Close()
		os.RemoveAll(tmp)
		return nil, fmt.Errorf("core: compact: persisting replacement index: %w", err)
	}
	if err := src.Close(); err != nil {
		os.RemoveAll(tmp)
		return nil, err
	}

	backup := dir + ".pre-compact"
	if err := os.RemoveAll(backup); err != nil {
		return nil, err
	}
	if err := os.Rename(dir, backup); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, dir); err != nil {
		if rerr := os.Rename(backup, dir); rerr != nil {
			return nil, fmt.Errorf("core: compact: swap failed (%v) and restore failed (%v); index is at %s, rewrite at %s", err, rerr, backup, tmp)
		}
		return nil, err
	}
	report.BackupDir = backup
	for _, name := range indexFileNames {
		if st, err := os.Stat(filepath.Join(dir, name)); err == nil {
			report.BytesAfter += st.Size()
		}
	}
	return report, nil
}

// copyIndex copies src's logical content into the freshly created dst,
// re-encoding node keys and records from src's key format to dst's. The
// DocId and store trees are format-independent and copy raw. In-memory
// metadata transplants directly; dst.Close persists it. Both indexes are
// private to the caller, so the trees are driven without taking locks.
func copyIndex(src, dst *Index, report *CompactReport) error {
	err := src.nodes.Scan(nil, nil, func(k, v []byte) (bool, error) {
		da, n, err := src.kc.splitNodeKey(k)
		if err != nil {
			return false, err
		}
		sym, prefix, err := src.kc.parseDAKey(da)
		if err != nil {
			return false, err
		}
		rec, err := src.kc.decodeRecord(n, v)
		if err != nil {
			return false, err
		}
		report.Nodes++
		return true, dst.nodes.Put(nodeKey(dst.kc.daKeyW(sym, prefix), n), dst.kc.encodeRecord(n, rec))
	})
	if err != nil {
		return fmt.Errorf("rewriting node tree: %w", err)
	}
	err = src.docs.Scan(nil, nil, func(k, v []byte) (bool, error) {
		report.Docs++
		return true, dst.docs.Put(k, v)
	})
	if err != nil {
		return fmt.Errorf("copying DocId tree: %w", err)
	}
	err = src.store.Scan(nil, nil, func(k, v []byte) (bool, error) {
		report.StoreChunks++
		return true, dst.store.Put(k, v)
	})
	if err != nil {
		return fmt.Errorf("copying document store: %w", err)
	}
	// Transplant the derived and scalar state; everything marked dirty so
	// dst.Close's saveMeta writes it all (the synopsis and, for an interned
	// dst, the path dictionary daKeyW just populated).
	dst.dict = src.dict
	dst.dictLen = 0
	dst.schema = src.schema
	dst.opts.Schema = src.opts.Schema
	dst.stats = src.stats
	dst.alloc = src.alloc
	dst.syn = src.syn
	dst.synShared = false
	dst.synDirty = true
	dst.nextDoc = src.nextDoc
	dst.docCount = src.docCount
	dst.maxDepth = src.maxDepth
	dst.rootK = src.rootK
	dst.rootResvd = src.rootResvd
	dst.metaDirty = true
	dst.pdLen = 0
	return nil
}
