package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"vist/internal/keyenc"
	"vist/internal/seq"
)

// formatTestExprs exercises every evaluation shape over randomRecords data:
// chains, wildcards, '//', branches, values, attributes.
var formatTestExprs = []string{
	"/r", "/r/a", "/r/a/b", "/r//c", "//d", "/r/*[a]", "/r[a][b]",
	"/r/a[b]/c", "//b[text()='x']", "/r//c[text()='y']",
	"/r[a[b]]", "//a//b", "/r/*/*[text()='z']", "/r[@a='x']",
	"//b[c='x']",
}

// TestFormatQueryEquivalence: the fixed and interned key formats must be
// query-indistinguishable — same documents in, same result sets out, through
// inserts and deletes, with and without the planner.
func TestFormatQueryEquivalence(t *testing.T) {
	for _, planner := range []bool{true, false} {
		rng := rand.New(rand.NewSource(41))
		docs := randomRecords(rng, 80)
		fixed := mustMem(t, Options{LegacyFormat: true, DisablePlanner: !planner})
		interned := mustMem(t, Options{DisablePlanner: !planner})
		fixedIDs := insertXML(t, fixed, docs...)
		internedIDs := insertXML(t, interned, docs...)
		if !reflect.DeepEqual(fixedIDs, internedIDs) {
			t.Fatal("formats assigned different DocIDs")
		}
		compare := func(stage string) {
			t.Helper()
			for _, expr := range formatTestExprs {
				a := queryIDs(t, fixed, expr)
				b := queryIDs(t, interned, expr)
				if !reflect.DeepEqual(a, b) {
					t.Errorf("planner=%v %s: %q: fixed=%v interned=%v", planner, stage, expr, a, b)
				}
			}
		}
		compare("after insert")
		for i := 0; i < len(fixedIDs); i += 3 {
			if err := fixed.Delete(fixedIDs[i]); err != nil {
				t.Fatal(err)
			}
			if err := interned.Delete(internedIDs[i]); err != nil {
				t.Fatal(err)
			}
		}
		compare("after deletes")
		for _, ix := range []*Index{fixed, interned} {
			rep, err := ix.Check()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("planner=%v check: %v", planner, rep.Problems)
			}
		}
	}
}

// TestFormatMigrationRoundTrip: a directory created with the legacy layout
// must reopen under default options (the key format is pinned by the
// metadata version, not the option), accept writes, survive reopen, and pass
// the full structural check.
func TestFormatMigrationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	docs := randomRecords(rand.New(rand.NewSource(5)), 30)

	old, err := Open(dir, Options{PageSize: 512, LegacyFormat: true})
	if err != nil {
		t.Fatal(err)
	}
	insertXML(t, old, docs[:15]...)
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with defaults: the index must stay in its recorded fixed-key
	// format rather than misread its keys as interned.
	ix, err := Open(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if ix.kc.fmtV != keyFmtFixed {
		t.Fatalf("reopened legacy index has key format %d, want %d", ix.kc.fmtV, keyFmtFixed)
	}
	before := queryIDs(t, ix, "//a")
	insertXML(t, ix, docs[15:]...)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	ix, err = Open(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if got := ix.DocCount(); got != 30 {
		t.Fatalf("doc count after round trip = %d, want 30", got)
	}
	if after := queryIDs(t, ix, "//a"); len(after) < len(before) {
		t.Fatalf("query lost results across the round trip: %d -> %d", len(before), len(after))
	}
	rep, err := ix.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("check after migration round trip: %v", rep.Problems)
	}
}

// TestCompactUpgradesFormat: Compact rewrites a legacy directory into the
// interned format (and back under LegacyFormat), preserving every query
// result and passing the structural check; the upgrade direction must shrink
// the node file.
func TestCompactUpgradesFormat(t *testing.T) {
	dir := t.TempDir()
	docs := randomRecords(rand.New(rand.NewSource(17)), 60)
	old, err := Open(dir, Options{PageSize: 512, LegacyFormat: true})
	if err != nil {
		t.Fatal(err)
	}
	insertXML(t, old, docs...)
	want := map[string][]DocID{}
	for _, expr := range formatTestExprs {
		want[expr] = queryIDs(t, old, expr)
	}
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Compact(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesAfter >= rep.BytesBefore {
		t.Errorf("compact to interned format grew the index: %d -> %d bytes", rep.BytesBefore, rep.BytesAfter)
	}
	verify := func(wantFmt byte) {
		t.Helper()
		ix, err := Open(dir, Options{PageSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		if ix.kc.fmtV != wantFmt {
			t.Fatalf("compacted index has key format %d, want %d", ix.kc.fmtV, wantFmt)
		}
		for _, expr := range formatTestExprs {
			if got := queryIDs(t, ix, expr); !reflect.DeepEqual(got, want[expr]) {
				t.Errorf("%q after compact: got %v want %v", expr, got, want[expr])
			}
		}
		crep, err := ix.Check()
		if err != nil {
			t.Fatal(err)
		}
		if !crep.Ok() {
			t.Fatalf("check after compact: %v", crep.Problems)
		}
	}
	verify(keyFmtInterned)

	// And back down to the legacy layout.
	if _, err := Compact(dir, Options{PageSize: 512, LegacyFormat: true}); err != nil {
		t.Fatal(err)
	}
	verify(keyFmtFixed)
}

// TestPathDictCodec: the persisted path dictionary round-trips exactly and
// rejects corrupt encodings.
func TestPathDictCodec(t *testing.T) {
	pd := NewPathDict()
	paths := [][]uint32{{1}, {1, 2}, {1, 2, 3}, {7, 7}, {}}
	ids := make([]uint32, len(paths))
	for i, p := range paths {
		syms := symbolsOf(p)
		ids[i] = pd.Intern(syms)
		if again := pd.Intern(syms); again != ids[i] {
			t.Fatalf("re-interning path %v changed its ID: %d -> %d", p, ids[i], again)
		}
	}
	blob := pd.Encode()
	got, err := DecodePathDict(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != pd.Len() {
		t.Fatalf("decoded dictionary has %d paths, want %d", got.Len(), pd.Len())
	}
	for i, p := range paths {
		id, ok := got.Lookup(symbolsOf(p))
		if !ok || id != ids[i] {
			t.Fatalf("decoded Lookup(%v) = %d,%v; want %d,true", p, id, ok, ids[i])
		}
	}
	// Truncations and garbage must error, never panic.
	for cut := 0; cut < len(blob); cut++ {
		if _, err := DecodePathDict(blob[:cut]); err == nil && cut != len(blob) {
			// Some prefixes can be self-consistent; only the empty and
			// version-damaged ones are guaranteed invalid.
			continue
		}
	}
	if _, err := DecodePathDict(nil); err == nil {
		t.Fatal("empty blob decoded")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF
	if _, err := DecodePathDict(bad); err == nil {
		t.Fatal("wrong version decoded")
	}
}

// TestColdPageCompression: with a tiny buffer pool and cold compression on,
// evictions populate the cold tier and later misses hit it; results match an
// uncompressed in-memory index exactly.
func TestColdPageCompression(t *testing.T) {
	docs := randomRecords(rand.New(rand.NewSource(23)), 120)
	dir := t.TempDir()
	// Tiny caches at both layers (pages AND decoded nodes) so queries
	// actually fault pages instead of being absorbed above the pager.
	ix, err := Open(dir, Options{PageSize: 512, CachePages: 4, NodeCache: 8, CompressColdPages: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ref := mustMem(t, Options{})
	insertXML(t, ix, docs...)
	insertXML(t, ref, docs...)
	for _, expr := range formatTestExprs {
		got := queryIDs(t, ix, expr)
		want := queryIDs(t, ref, expr)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%q: cold-compressed=%v mem=%v", expr, got, want)
		}
	}
	m := ix.Metrics()
	if m.Counters["pager.cold_stores"] == 0 {
		t.Error("4-page pool over 120 docs produced no cold stores")
	}
	if m.Counters["pager.cold_hits"] == 0 {
		t.Error("repeated queries over an evicting pool produced no cold hits")
	}
	st := ix.StorageStats()
	if st.KeyFormat != "interned" {
		t.Errorf("key format = %q, want interned", st.KeyFormat)
	}
	if st.BytesPerDoc <= 0 {
		t.Error("StorageStats reports no bytes per document")
	}
	if st.ColdCompressedBytes >= st.ColdRawBytes && st.ColdEntries > 0 {
		t.Errorf("cold tier does not compress: %d compressed vs %d raw", st.ColdCompressedBytes, st.ColdRawBytes)
	}
}

// TestAllFFRangeBound: the scan paths bound every D-Ancestor group by
// [da, PrefixSuccessor(da)); at the key-space ceiling PrefixSuccessor
// returns nil and the scan must treat that as "to the end" — covering the
// whole group, terminating, and never skipping past it. Constructible keys
// never reach the ceiling (the prefix-length/uvarint byte can't be 0xFF), so
// this drives the bound directly against the node tree.
func TestAllFFRangeBound(t *testing.T) {
	ix := mustMem(t, Options{LegacyFormat: true})
	da := bytes.Repeat([]byte{0xFF}, 6) // sym=0xFFFFFFFF, plen=0xFFFF: the ceiling group
	rec := nodeRecord{size: 10, refcount: 1}
	for _, n := range []uint64{5, 9, 1<<64 - 1} {
		if err := ix.nodes.Put(nodeKey(da, n), rec.encode()); err != nil {
			t.Fatal(err)
		}
	}
	if hi := keyenc.PrefixSuccessor(da); hi != nil {
		t.Fatalf("PrefixSuccessor(all-0xFF) = %x, want nil", hi)
	}
	// The chain-scan idiom: scan [da, nil) — unbounded above.
	count := 0
	err := ix.nodes.Scan(da, keyenc.PrefixSuccessor(da), func(k, v []byte) (bool, error) {
		count++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("ceiling-group scan visited %d keys, want 3", count)
	}
}

// symbolsOf converts raw uint32s to seq.Symbols for dictionary tests.
func symbolsOf(p []uint32) []seq.Symbol {
	out := make([]seq.Symbol, len(p))
	for i, v := range p {
		out[i] = seq.Symbol(v)
	}
	return out
}
