package core

import (
	"errors"
	"fmt"
	"sync"
	"syscall"
	"testing"

	"vist/internal/btree"
	"vist/internal/xmltree"
)

// fillUntilENOSPC inserts documents until the injected disk fills up,
// returning the IDs of acknowledged inserts and the failing error.
func fillUntilENOSPC(t *testing.T, ix *Index) (ok []DocID, failErr error) {
	t.Helper()
	for i := 0; i < 500; i++ {
		n, perr := xmltree.ParseString(crashDoc(i))
		if perr != nil {
			t.Fatal(perr)
		}
		id, err := ix.Insert(n)
		if err == nil {
			ok = append(ok, id)
			if i%7 == 6 {
				if err := ix.Sync(); err != nil {
					return ok, err
				}
			}
			continue
		}
		return ok, err
	}
	t.Fatal("500 inserts never hit the space budget; raise the workload or lower NoSpaceAfter")
	return nil, nil
}

// TestInsertENOSPCDegradesAndHeals: a full disk flips the index into sticky
// read-only degradation — writes fail fast with ErrReadOnly, queries keep
// serving the last published snapshot — and once space is freed, Heal
// restores write service without a reopen.
func TestInsertENOSPCDegradesAndHeals(t *testing.T) {
	dir := t.TempDir()
	plan := &btree.FaultPlan{NoSpaceAfter: 48 * 1024}
	ix, err := Open(dir, Options{PageSize: 512, CachePages: 4, FS: btree.FaultFS{Plan: plan}})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	ok, failErr := fillUntilENOSPC(t, ix)
	if !errors.Is(failErr, syscall.ENOSPC) {
		t.Fatalf("failing write error = %v, want ENOSPC", failErr)
	}
	if len(ok) == 0 {
		t.Fatal("disk filled before any insert succeeded; budget too small for the test")
	}

	d := ix.Degraded()
	if d == nil {
		t.Fatal("index not degraded after ENOSPC write failure")
	}
	if !errors.Is(d, ErrReadOnly) || !errors.Is(d, syscall.ENOSPC) {
		t.Fatalf("DegradedError = %v, want wraps ErrReadOnly and ENOSPC", d)
	}

	// Writes fail fast with the typed error; nothing further is attempted.
	doc, _ := xmltree.ParseString(crashDoc(9999))
	if _, err := ix.Insert(doc); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Insert while degraded = %v, want ErrReadOnly", err)
	}
	if err := ix.Delete(ok[0]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete while degraded = %v, want ErrReadOnly", err)
	}
	if err := ix.Sync(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Sync while degraded = %v, want ErrReadOnly", err)
	}

	// Queries still serve the last published snapshot: every acknowledged
	// insert is visible, the failed one is not.
	ids, err := ix.Query("/purchase/seller")
	if err != nil {
		t.Fatalf("Query while degraded: %v", err)
	}
	if len(ids) != len(ok) {
		t.Fatalf("degraded query sees %d docs, want the %d acknowledged", len(ids), len(ok))
	}
	for _, id := range ok {
		if _, err := ix.Get(id); err != nil {
			t.Fatalf("Get(%d) while degraded: %v", id, err)
		}
	}

	// The disk is still full: Heal's probe commit must fail and leave the
	// index degraded.
	if err := ix.Heal(); err == nil {
		t.Fatal("Heal succeeded on a still-full disk")
	}
	if ix.Degraded() == nil {
		t.Fatal("failed Heal cleared the degradation")
	}

	// Free space; now Heal must verify, re-commit, and restore writes.
	plan.AddSpace(1 << 20)
	if err := ix.Heal(); err != nil {
		t.Fatalf("Heal after AddSpace: %v", err)
	}
	if ix.Degraded() != nil {
		t.Fatal("index still degraded after successful Heal")
	}
	id, err := ix.Insert(doc)
	if err != nil {
		t.Fatalf("Insert after Heal: %v", err)
	}
	if err := ix.Sync(); err != nil {
		t.Fatalf("Sync after Heal: %v", err)
	}
	if _, err := ix.Get(id); err != nil {
		t.Fatalf("Get after Heal: %v", err)
	}
	rep, err := ix.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("index inconsistent after degrade/heal cycle: %v", rep.Problems)
	}
}

// TestIndexENOSPCMatrix is the disk-full crash-matrix row: the space budget
// runs out at (a sample of) every write boundary of a recorded workload.
// Whatever the failure point, the process-lifetime guarantees hold — no
// panic, queries keep working — and after a clean close and reopen the index
// audits clean with every acknowledged commit intact.
func TestIndexENOSPCMatrix(t *testing.T) {
	recPlan := &btree.FaultPlan{}
	_, recIdx := crashWorkload(t, t.TempDir(), btree.FaultFS{Plan: recPlan})
	if recIdx == 0 {
		t.Fatal("recording run committed nothing; workload broken")
	}
	points := crashSamplePoints(recPlan.WriteBoundaries(), 20)

	for _, budget := range points {
		if budget == 0 {
			continue
		}
		budget := budget
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			dir := t.TempDir()
			plan := &btree.FaultPlan{NoSpaceAfter: budget}
			attempts, committedIdx := crashWorkload(t, dir, btree.FaultFS{Plan: plan})
			// crashWorkload's deferred Close flushed the mirrors (an ENOSPC
			// plan stays alive, unlike a killed one): reopen on the real
			// filesystem and audit.
			got := reopenAndAudit(t, dir)
			if j := matchIDState(got, attempts); j < 0 {
				t.Fatalf("recovered doc set %v matches no attempted commit", got)
			} else if j < committedIdx {
				t.Fatalf("recovered doc set is attempt %d, older than acknowledged commit %d: durability lost", j, committedIdx)
			}
		})
	}
}

// TestDegradeUnderConcurrentQueries drives reader goroutines continuously
// while the disk fills and the index flips into degraded mode. Run under
// -race this pins the lock-free degradation handoff: queries never fail,
// never block, and never observe a partially-applied mutation.
func TestDegradeUnderConcurrentQueries(t *testing.T) {
	dir := t.TempDir()
	plan := &btree.FaultPlan{NoSpaceAfter: 48 * 1024}
	ix, err := Open(dir, Options{PageSize: 512, CachePages: 4, FS: btree.FaultFS{Plan: plan}})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := ix.Query("/purchase/seller"); err != nil {
					t.Errorf("concurrent query failed during degradation: %v", err)
					return
				}
			}
		}()
	}

	ok, failErr := fillUntilENOSPC(t, ix)
	if !errors.Is(failErr, syscall.ENOSPC) {
		t.Fatalf("failing write error = %v, want ENOSPC", failErr)
	}
	if ix.Degraded() == nil {
		t.Fatal("index not degraded")
	}
	// Keep querying a little while degraded, then stop the readers.
	ids, err := ix.Query("/purchase/seller")
	if err != nil || len(ids) != len(ok) {
		t.Fatalf("degraded query: ids=%d err=%v, want %d", len(ids), err, len(ok))
	}
	close(done)
	wg.Wait()
}

// TestWALAutoCheckpoint: with WALMaxBytes set, a long unsynced insert burst
// keeps the log bounded via automatic group commits, each counted in
// wal.auto_checkpoints, and commits remain all-or-nothing (audit clean on
// reopen).
func TestWALAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// Small enough that 150 inserts cross it several times even with the
	// compact interned key format (varint records stage far fewer dirty
	// pages per insert than the fixed layout did).
	const maxWAL = 16 * 1024
	ix, err := Open(dir, Options{PageSize: 512, CachePages: 4, WALMaxBytes: maxWAL})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		n, perr := xmltree.ParseString(crashDoc(i))
		if perr != nil {
			t.Fatal(perr)
		}
		if _, err := ix.Insert(n); err != nil {
			t.Fatal(err)
		}
		// The cap is checked at the top of each mutation, so the log may
		// overshoot by at most one mutation's staging.
		if sz := ix.wal.Size(); sz > maxWAL+64*1024 {
			t.Fatalf("WAL grew to %d bytes despite %d cap", sz, maxWAL)
		}
	}
	snap := ix.Metrics()
	auto := snap.Counters["wal.auto_checkpoints"]
	if auto == 0 {
		t.Fatal("150 unsynced inserts triggered no auto-checkpoint")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ids := reopenAndAudit(t, dir)
	if len(ids) != 150 {
		t.Fatalf("reopened index has %d docs, want 150", len(ids))
	}
}
