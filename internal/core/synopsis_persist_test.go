package core

import (
	"reflect"
	"testing"
)

// TestSynopsisPersistRoundTrip verifies the synopsis blob written by saveMeta
// is what loadSynopsis restores: a reopen must not need the node-tree rebuild
// path, and queries and Check must behave identically to the original handle.
func TestSynopsisPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	insertXML(t, ix, purchaseBoston, purchaseChicago)
	paths := ix.SynopsisPaths()
	if paths == 0 {
		t.Fatal("synopsis empty after inserts")
	}
	want := queryIDs(t, ix, "//item")
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	ix, err = Open(dir, Options{PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.synDirty {
		t.Error("reopen rebuilt the synopsis instead of loading the persisted blob")
	}
	if got := ix.SynopsisPaths(); got != paths {
		t.Errorf("synopsis paths after reopen = %d, want %d", got, paths)
	}
	if got := queryIDs(t, ix, "//item"); !reflect.DeepEqual(got, want) {
		t.Errorf("//item after reopen = %v, want %v", got, want)
	}
	report, err := ix.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Problems) != 0 {
		t.Fatalf("consistency problems after reopen: %v", report.Problems)
	}
}

// TestSynopsisMigrationRebuild simulates opening an index written before the
// synopsis existed: with the blob deleted, loadSynopsis must rebuild it from
// the node tree, mark it dirty so the next Sync persists it, and leave query
// results unchanged.
func TestSynopsisMigrationRebuild(t *testing.T) {
	dir := t.TempDir()
	opts := Options{PageSize: 512, CachePages: 16}
	ix, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	insertXML(t, ix, purchaseBoston, purchaseChicago)
	paths := ix.SynopsisPaths()
	want := queryIDs(t, ix, "//item")
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// Strip the synopsis blob the way a pre-synopsis index simply never
	// wrote it, then persist the mutated aux tree.
	ix, err = Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	var keys [][]byte
	err = ix.aux.ScanPrefix(append([]byte(synopsisBlob), '/'), func(k, v []byte) (bool, error) {
		keys = append(keys, append([]byte(nil), k...))
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("no persisted synopsis chunks found")
	}
	for _, k := range keys {
		if _, err := ix.aux.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	ix, err = Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.synDirty {
		t.Error("migration open did not mark the rebuilt synopsis for persistence")
	}
	if got := ix.SynopsisPaths(); got != paths {
		t.Errorf("rebuilt synopsis paths = %d, want %d", got, paths)
	}
	if got := queryIDs(t, ix, "//item"); !reflect.DeepEqual(got, want) {
		t.Errorf("//item after migration = %v, want %v", got, want)
	}
	report, err := ix.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Problems) != 0 {
		t.Fatalf("consistency problems after migration: %v", report.Problems)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	// The rebuilt synopsis must have been persisted on Close: one more
	// reopen loads it straight from the blob.
	ix, err = Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.synDirty {
		t.Error("post-migration reopen rebuilt again instead of loading the blob")
	}
	if got := ix.SynopsisPaths(); got != paths {
		t.Errorf("synopsis paths after final reopen = %d, want %d", got, paths)
	}
}
