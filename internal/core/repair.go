package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"vist/internal/btree"
	"vist/internal/xmltree"
)

// indexFileNames are the four tree files inside an index directory, in WAL
// file-ID order (ID = position + 1).
var indexFileNames = []string{"nodes.db", "docs.db", "store.db", "aux.db"}

// FsckReport is the result of an offline verification pass.
type FsckReport struct {
	// Recovery reports what opening the index found in the write-ahead log.
	Recovery RecoveryInfo
	// Scrub is the full-speed page sweep: every allocated page of every
	// tree file, CRC32C-verified.
	Scrub *ScrubReport
	// Structure is the invariant scan (Check): scope nesting, refcounts,
	// synopsis agreement, version bookkeeping.
	Structure *CheckReport
	// Docs counts stored documents that decoded cleanly; Unreadable lists
	// those that did not (capped at 100 entries).
	Docs       int
	Unreadable []string
}

// Ok reports whether verification found nothing wrong.
func (r *FsckReport) Ok() bool {
	return r.Scrub.Ok() && r.Structure.Ok() && len(r.Unreadable) == 0
}

// Fsck verifies an index directory offline: WAL recovery (as any Open),
// then an unthrottled scrub of every page, the full structural invariant
// scan, and a decode of every stored document. The index files are not
// modified beyond what WAL recovery itself applies. An index too damaged
// to open at all makes Fsck return an error — Repair is the next step.
func Fsck(dir string, opts Options) (*FsckReport, error) {
	opts.ScrubInterval = 0 // one explicit pass, no background loop
	ix, err := Open(dir, opts)
	if err != nil {
		return nil, fmt.Errorf("core: fsck: %w", err)
	}
	defer ix.Close()
	report := &FsckReport{Recovery: ix.Recovery()}
	if report.Scrub, err = ix.Scrub(context.Background(), ScrubOptions{PagesPerSecond: -1}); err != nil {
		return nil, err
	}
	if report.Structure, err = ix.Check(); err != nil {
		// The scan itself died (corrupt interior page): that is a finding,
		// not an fsck failure.
		report.Structure = &CheckReport{}
		report.Structure.problemf("structural scan aborted: %v", err)
	}
	if !opts.SkipDocumentStore {
		snap, err := ix.pin()
		if err != nil {
			return nil, err
		}
		var ids []DocID
		scanErr := snap.store.Scan(nil, nil, func(k, v []byte) (bool, error) {
			if len(k) == 12 && binary.BigEndian.Uint32(k[8:12]) == 0 {
				ids = append(ids, DocID(binary.BigEndian.Uint64(k[:8])))
			}
			return true, nil
		})
		if scanErr != nil {
			report.Unreadable = append(report.Unreadable, fmt.Sprintf("document store scan aborted: %v", scanErr))
		}
		for _, id := range ids {
			if _, _, err := loadDocFrom(snap.store, id); err != nil {
				if len(report.Unreadable) < 100 {
					report.Unreadable = append(report.Unreadable, fmt.Sprintf("doc %d: %v", id, err))
				}
				continue
			}
			report.Docs++
		}
		ix.unpin(snap)
	}
	return report, nil
}

// RepairReport is the result of Repair.
type RepairReport struct {
	// DocsSalvaged counts documents recovered from the store and re-indexed
	// under their original IDs.
	DocsSalvaged int
	// DocsLost lists documents whose stored bytes were found but could not
	// be assembled or decoded. Documents whose chunks sat entirely inside
	// corrupt subtrees are not listed — they are simply absent.
	DocsLost []DocID
	// SkippedSubtrees counts store-tree pages the salvage scan had to skip
	// as corrupt (each prunes the subtree below it).
	SkippedSubtrees int
	// Notes records non-fatal trouble (unreadable WAL, failed replay, …).
	Notes []string
	// BackupDir is where the pre-repair index directory was moved.
	BackupDir string
}

// Repair rebuilds an index from whatever survives of its document store.
// The node, DocId, and aux trees — and the path synopsis — are all derived
// from the stored documents, so a rebuild from the store alone restores a
// fully consistent index; the store tree is the one unrecoverable file (a
// destroyed store.db meta page means total loss, and Repair says so).
//
// The sequence: best-effort WAL recovery into the existing files; a
// fault-tolerant salvage scan of the store tree (corrupt subtrees are
// skipped, partially-readable documents dropped); a fresh index built in
// dir+".repair.tmp" with every salvaged document re-inserted under its
// original DocID; then an atomic-as-the-filesystem-allows swap — the old
// directory is renamed to dir+".pre-repair" (kept, never deleted) and the
// rebuilt one takes its place. A crash mid-swap leaves both directories on
// disk under their temporary names; nothing is destroyed.
func Repair(dir string, opts Options) (*RepairReport, error) {
	if opts.SkipDocumentStore {
		return nil, fmt.Errorf("core: repair needs the document store (SkipDocumentStore is set)")
	}
	ps := opts.PageSize
	if ps == 0 {
		ps = btree.DefaultPageSize
	}
	report := &RepairReport{}
	note := func(format string, args ...interface{}) {
		report.Notes = append(report.Notes, fmt.Sprintf(format, args...))
	}

	// Phase 1 — best-effort WAL recovery: a committed tail may hold the only
	// durable copy of store pages. Failures here cost at most that tail.
	walPath := filepath.Join(dir, walFileName)
	if st, err := os.Stat(walPath); err == nil && st.Size() > 0 && !opts.DisableWAL {
		recoverWAL(dir, walPath, ps, opts, note)
	}

	// Phase 2 — salvage documents from the store tree. The pager opens
	// without the WAL: recovery (if any) already materialized the committed
	// state into the file.
	storePg, err := btree.OpenFilePagerOpts(filepath.Join(dir, "store.db"), ps,
		btree.PagerOptions{CachePages: opts.CachePages, FS: opts.FS})
	if err != nil {
		return nil, fmt.Errorf("core: repair: document store unopenable, nothing to rebuild from: %w", err)
	}
	storeTree, err := btree.New(storePg, btree.Options{PageSize: ps})
	if err != nil {
		storePg.Close()
		return nil, fmt.Errorf("core: repair: document store meta page unreadable, all documents lost: %w", err)
	}
	docs, lost, skipped, err := salvageDocs(storeTree)
	storeTree.Close()
	if err != nil {
		return nil, err
	}
	report.DocsLost = lost
	report.SkippedSubtrees = skipped

	// Phase 3 — rebuild. Every tree and the synopsis re-derive from the
	// documents; original DocIDs are preserved so external references
	// survive the repair.
	tmp := dir + ".repair.tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return nil, err
	}
	bopts := opts
	bopts.ScrubInterval = 0
	nix, err := Open(tmp, bopts)
	if err != nil {
		return nil, fmt.Errorf("core: repair: building replacement index: %w", err)
	}
	for _, d := range docs {
		if err := nix.insertAs(d.id, d.doc); err != nil {
			nix.Close()
			return nil, fmt.Errorf("core: repair: re-inserting doc %d: %w", d.id, err)
		}
		report.DocsSalvaged++
	}
	if err := nix.Close(); err != nil {
		return nil, fmt.Errorf("core: repair: persisting replacement index: %w", err)
	}

	// Phase 4 — swap. Two renames; the backup survives regardless.
	backup := dir + ".pre-repair"
	if err := os.RemoveAll(backup); err != nil {
		return nil, err
	}
	if err := os.Rename(dir, backup); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, dir); err != nil {
		// Put the original back rather than leave no index at dir.
		if rerr := os.Rename(backup, dir); rerr != nil {
			return nil, fmt.Errorf("core: repair: swap failed (%v) and restore failed (%v); index is at %s, rebuild at %s", err, rerr, backup, tmp)
		}
		return nil, err
	}
	report.BackupDir = backup
	return report, nil
}

// recoverWAL replays the committed WAL tail into the four tree files, best
// effort: any failure is noted and recovery is abandoned (the files keep
// their pre-replay state).
func recoverWAL(dir, walPath string, ps int, opts Options, note func(string, ...interface{})) {
	wal, err := btree.OpenWAL(walPath, opts.FS)
	if err != nil {
		note("write-ahead log unreadable, committed tail lost: %v", err)
		return
	}
	defer wal.Close()
	var pagers []*btree.FilePager
	defer func() {
		for _, p := range pagers {
			p.Close()
		}
	}()
	for i, name := range indexFileNames {
		pg, err := btree.OpenFilePagerOpts(filepath.Join(dir, name), ps,
			btree.PagerOptions{WAL: wal, WALFileID: uint8(i + 1), FS: opts.FS})
		if err != nil {
			note("%s unopenable, WAL replay skipped: %v", name, err)
			return
		}
		pagers = append(pagers, pg)
	}
	if _, err := wal.Recover(); err != nil {
		note("WAL replay failed, continuing with file state: %v", err)
	}
}

// salvagedDoc is one document recovered from the store tree.
type salvagedDoc struct {
	id  DocID
	doc *xmltree.Node
}

// salvageDocs walks the store tree fault-tolerantly and reassembles every
// document whose chunks all survived, in DocID order. Documents that are
// partially present (missing or out-of-order chunks, truncated header,
// undecodable bytes) are reported in lost.
func salvageDocs(store *btree.BTree) (docs []salvagedDoc, lost []DocID, skipped int, err error) {
	var (
		curID   DocID
		have    bool
		nchunks uint32
		next    uint32
		bad     bool
		data    []byte
	)
	finalize := func() {
		if !have {
			return
		}
		if bad || nchunks == 0 || next != nchunks {
			lost = append(lost, curID)
			return
		}
		doc, derr := xmltree.Decode(data)
		if derr != nil {
			lost = append(lost, curID)
			return
		}
		docs = append(docs, salvagedDoc{id: curID, doc: doc})
	}
	skipped, err = store.SalvageScan(func(k, v []byte) (bool, error) {
		if len(k) != 12 {
			return true, nil // not a store chunk key; ignore
		}
		id := DocID(binary.BigEndian.Uint64(k[:8]))
		chunk := binary.BigEndian.Uint32(k[8:12])
		if !have || id != curID {
			finalize()
			curID, have = id, true
			nchunks, next, bad, data = 0, 0, false, nil
		}
		switch {
		case bad:
		case chunk == 0:
			if len(v) < 12 {
				bad = true
				break
			}
			nchunks = binary.BigEndian.Uint32(v[8:12])
			data = append(data, v[12:]...)
			next = 1
		case chunk != next || nchunks == 0:
			bad = true // chunk 0 lost to a skipped subtree, or a gap
		default:
			data = append(data, v...)
			next++
		}
		return true, nil
	})
	finalize()
	if err != nil {
		return nil, nil, skipped, err
	}
	return docs, lost, skipped, nil
}

// insertAs inserts a document under a caller-chosen DocID. IDs must arrive
// in ascending order (the salvage scan yields them sorted); nextDoc ends up
// past the highest ID, so post-repair inserts never collide.
func (ix *Index) insertAs(id DocID, doc *xmltree.Node) (err error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if id < ix.nextDoc {
		return fmt.Errorf("core: insertAs %d: IDs must be ascending (next is %d)", id, ix.nextDoc)
	}
	if err := ix.failIfDegraded(); err != nil {
		return err
	}
	defer func() {
		if err != nil {
			ix.rollbackLocked()
			if degradeWorthy(err) {
				ix.degrade("repair-insert", err)
			}
		}
	}()
	ix.nextDoc = id
	ix.metaDirty = true
	_, err = ix.insertDocLocked(doc)
	return err
}
