package core

import (
	"context"
	"fmt"
	"time"

	"vist/internal/obs"
	"vist/internal/xmltree"
)

// Shard is the slice of Index that cluster composition builds on: everything
// a query router, a sharded index, or a read replica needs from one
// partition of the data. *Index implements it directly; cluster.ShardedIndex
// implements it by scatter-gathering over N Shards, and cluster.Replica by
// delegating reads to a WAL-shipped follower (writes fail). Code written
// against Shard — the vist serve HTTP layer, most importantly — therefore
// runs unchanged over one index, a sharded group, or a replica.
type Shard interface {
	// QueryCtx and QueryVerifiedCtx keep the Index contract: on a stop
	// error (*QueryError) the returned IDs are the partial results
	// collected so far, and stats always reflect work actually done.
	QueryCtx(ctx context.Context, expr string, b Budget) ([]DocID, QueryStats, error)
	QueryVerifiedCtx(ctx context.Context, expr string, b Budget) ([]DocID, QueryStats, error)
	Get(id DocID) (*xmltree.Node, error)

	Insert(doc *xmltree.Node) (DocID, error)
	// InsertAs inserts under a caller-chosen DocID; IDs must arrive in
	// ascending order per shard. This is how a coordinator that allocates
	// globally sequential IDs places documents on their owner shard.
	InsertAs(id DocID, doc *xmltree.Node) error
	Delete(id DocID) error

	Sync() error
	Close() error

	DocCount() uint64
	NextDocID() DocID
	Degraded() *DegradedError
	Metrics() obs.Snapshot
}

var _ Shard = (*Index)(nil)

// NextDocID reports the DocID the next Insert will assign. It reads the
// published snapshot, so it is lock-free and reflects the last committed
// mutation; a cluster coordinator uses the max across shards to seed its
// global allocator.
func (ix *Index) NextDocID() DocID {
	return ix.snap.Load().nextDoc
}

// InsertAs inserts a document under a caller-chosen DocID. IDs must arrive
// in ascending order (nextDoc ends up just past id, exactly as if Insert had
// assigned it), which a coordinator handing out globally increasing IDs
// guarantees per shard. Otherwise it behaves like Insert: same normalization,
// same rollback-and-degrade failure protocol, same budget on WAL growth.
func (ix *Index) InsertAs(id DocID, doc *xmltree.Node) (err error) {
	if doc == nil {
		return fmt.Errorf("core: nil document")
	}
	if doc.Depth() > MaxDepth {
		return fmt.Errorf("core: document depth %d exceeds max %d; split the structure into sub-structures", doc.Depth(), MaxDepth)
	}
	if ix.reg != nil {
		start := time.Now()
		defer func() { ix.qm.insertLatency.ObserveDuration(time.Since(start)) }()
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.frozen {
		return errFrozen
	}
	if id < ix.nextDoc {
		return fmt.Errorf("core: InsertAs %d: IDs must be ascending (next is %d)", id, ix.nextDoc)
	}
	if err := ix.failIfDegraded(); err != nil {
		return err
	}
	if err := ix.maybeAutoCheckpointLocked(); err != nil {
		return err
	}
	defer func() {
		if err != nil {
			ix.rollbackLocked()
			if degradeWorthy(err) {
				ix.degrade("insert", err)
			}
		}
	}()
	ix.nextDoc = id
	ix.metaDirty = true
	_, err = ix.insertDocLocked(doc)
	return err
}
