package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"vist/internal/xmltree"
)

// TestMetricsSnapshot exercises the whole observability surface on a
// disk-backed index: query outcome counters, stage histograms, insert/delete
// counters, pager cache counters, and WAL activity.
func TestMetricsSnapshot(t *testing.T) {
	// A 4-page cache forces evictions (and so real page reads and writes)
	// even on this small dataset.
	ix, err := Open(t.TempDir(), Options{PageSize: 512, CachePages: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer ix.Close()

	ids := insertXML(t, ix, purchaseBoston, purchaseChicago)
	if err := ix.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	if _, err := ix.Query("/purchase/seller/item"); err != nil {
		t.Fatalf("Query: %v", err)
	}
	if _, _, err := ix.QueryVerifiedCtx(context.Background(), "/purchase/seller/item", Budget{}); err != nil {
		t.Fatalf("QueryVerified: %v", err)
	}
	// One budget-exceeded outcome.
	if _, _, err := ix.QueryCtx(context.Background(), "//item", Budget{MaxRangeScans: 1}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("budget query: got %v, want ErrBudgetExceeded", err)
	}
	// One parse failure (counts as an error without executing).
	if _, _, err := ix.QueryCtx(context.Background(), "///", Budget{}); err == nil {
		t.Fatalf("parse failure expected")
	}

	if err := ix.Delete(ids[0]); err != nil {
		t.Fatalf("Delete: %v", err)
	}

	snap := ix.Metrics()
	wantCounter := func(name string, min uint64) {
		t.Helper()
		if got := snap.Counter(name); got < min {
			t.Errorf("counter %s = %d, want >= %d", name, got, min)
		}
	}
	wantCounter("query.ok", 2)
	wantCounter("query.budget_exceeded", 1)
	wantCounter("query.errors", 1)
	wantCounter("index.docs_inserted", 2)
	wantCounter("index.docs_deleted", 1)
	wantCounter("pager.page_writes", 1)
	wantCounter("wal.fsyncs", 1)
	wantCounter("wal.commits", 1)

	// Cache hit rate must be well-defined after this much traffic.
	if hits, misses := snap.Counter("pager.cache_hits"), snap.Counter("pager.cache_misses"); hits+misses == 0 {
		t.Errorf("pager cache saw no traffic")
	}
	if r := snap.Ratio("pager.cache_hits", "pager.cache_misses"); r < 0 || r > 1 {
		t.Errorf("cache hit rate %v out of [0,1]", r)
	}

	h, ok := snap.Histograms["query.seconds"]
	if !ok || h.Count < 3 {
		t.Fatalf("query.seconds histogram: %+v (want count >= 3)", h)
	}
	for _, name := range []string{"query.stage.probe_seconds", "query.stage.collect_seconds", "query.stage.verify_seconds", "index.insert_seconds"} {
		if h, ok := snap.Histograms[name]; !ok || h.Count == 0 {
			t.Errorf("histogram %s empty: %+v", name, h)
		}
	}

	// The text rendering mentions the headline metrics.
	text := snap.String()
	for _, want := range []string{"query.ok", "pager.cache_hits", "wal.fsyncs"} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot text missing %q:\n%s", want, text)
		}
	}
}

// TestMetricsPageReads reopens an index so queries must fault pages in from
// disk: page_reads is only visible past the pager and node caches.
func TestMetricsPageReads(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(dir, Options{PageSize: 512, CachePages: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	insertXML(t, ix, purchaseBoston, purchaseChicago)
	if err := ix.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	ix2, err := Open(dir, Options{PageSize: 512, CachePages: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer ix2.Close()
	if _, err := ix2.Query("//item"); err != nil {
		t.Fatalf("Query: %v", err)
	}
	snap := ix2.Metrics()
	if got := snap.Counter("pager.page_reads"); got == 0 {
		t.Errorf("pager.page_reads = 0 after reopen+query, want > 0")
	}
	if got := snap.Counter("pager.cache_misses"); got == 0 {
		t.Errorf("pager.cache_misses = 0 after reopen+query, want > 0")
	}
}

// TestQueryStatsStages checks that an executed query reports a stage
// breakdown and that Explain renders it.
func TestQueryStatsStages(t *testing.T) {
	ix := mustMem(t, Options{})
	insertXML(t, ix, purchaseBoston, purchaseChicago)

	_, stats, err := ix.QueryCtx(context.Background(), "/purchase/seller/item", Budget{})
	if err != nil {
		t.Fatalf("QueryCtx: %v", err)
	}
	if stats.Stages.Total <= 0 {
		t.Fatalf("Stages.Total = %v, want > 0", stats.Stages.Total)
	}
	if stats.Stages.Parse <= 0 || stats.Stages.Probe <= 0 || stats.Stages.Collect <= 0 {
		t.Errorf("expected nonzero parse/probe/collect stages, got %+v", stats.Stages)
	}
	sum := stats.Stages.Parse + stats.Stages.Probe + stats.Stages.Scan + stats.Stages.Collect + stats.Stages.Verify
	if sum > stats.Stages.Total {
		t.Errorf("stage sum %v exceeds total %v", sum, stats.Stages.Total)
	}
	out := stats.Explain()
	for _, want := range []string{"parse", "probe", "total", "counters:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}

	_, vstats, err := ix.QueryVerifiedCtx(context.Background(), "/purchase/seller/item", Budget{})
	if err != nil {
		t.Fatalf("QueryVerifiedCtx: %v", err)
	}
	if vstats.Stages.Verify <= 0 {
		t.Errorf("verified query reported no Verify stage time: %+v", vstats.Stages)
	}
}

// TestMetricsDisabled checks the DisableMetrics escape hatch: empty
// snapshots, nil registry, and no stage timing beyond Total.
func TestMetricsDisabled(t *testing.T) {
	ix := mustMem(t, Options{DisableMetrics: true})
	insertXML(t, ix, purchaseBoston)
	_, stats, err := ix.QueryCtx(context.Background(), "/purchase", Budget{})
	if err != nil {
		t.Fatalf("QueryCtx: %v", err)
	}
	if ix.MetricsRegistry() != nil {
		t.Errorf("MetricsRegistry non-nil with DisableMetrics")
	}
	snap := ix.Metrics()
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Errorf("expected empty snapshot, got %+v", snap)
	}
	if stats.Stages.Parse != 0 || stats.Stages.Probe != 0 || stats.Stages.Scan != 0 || stats.Stages.Collect != 0 {
		t.Errorf("stage timing collected despite DisableMetrics: %+v", stats.Stages)
	}
	if stats.Stages.Total <= 0 {
		t.Errorf("Total should still be stamped, got %v", stats.Stages.Total)
	}
	if !strings.Contains(stats.Explain(), "disabled") {
		t.Errorf("Explain should note disabled stage timing:\n%s", stats.Explain())
	}
}

// TestSlowQueryCallbackFiresOnce configures a threshold every query crosses
// and checks the callback fires exactly once per executed query — including
// for two-phase verified queries, which must not double-report.
func TestSlowQueryCallbackFiresOnce(t *testing.T) {
	var mu sync.Mutex
	var calls []SlowQuery
	ix := mustMem(t, Options{
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryLog: func(sq SlowQuery) {
			mu.Lock()
			calls = append(calls, sq)
			mu.Unlock()
		},
	})
	insertXML(t, ix, purchaseBoston, purchaseChicago)

	if _, err := ix.Query("/purchase/seller/item"); err != nil {
		t.Fatalf("Query: %v", err)
	}
	if got := len(calls); got != 1 {
		t.Fatalf("after one query: %d callback calls, want 1", got)
	}
	if calls[0].Expr != "/purchase/seller/item" || calls[0].Err != nil || calls[0].Duration <= 0 {
		t.Errorf("bad slow-query record: %+v", calls[0])
	}

	if _, _, err := ix.QueryVerifiedCtx(context.Background(), "//item", Budget{}); err != nil {
		t.Fatalf("QueryVerified: %v", err)
	}
	if got := len(calls); got != 2 {
		t.Fatalf("after verified query: %d callback calls, want 2", got)
	}

	// A failing (budget-exceeded) query still reports once, with its error.
	if _, _, err := ix.QueryCtx(context.Background(), "//item", Budget{MaxRangeScans: 1}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("budget query: %v", err)
	}
	if got := len(calls); got != 3 {
		t.Fatalf("after budget query: %d callback calls, want 3", got)
	}
	if !errors.Is(calls[2].Err, ErrBudgetExceeded) {
		t.Errorf("slow-query record error = %v, want ErrBudgetExceeded", calls[2].Err)
	}
	if ix.Metrics().Counter("query.slow") != 3 {
		t.Errorf("query.slow = %d, want 3", ix.Metrics().Counter("query.slow"))
	}

	// Parse failures never execute and never fire the hook.
	if _, _, err := ix.QueryCtx(context.Background(), "///", Budget{}); err == nil {
		t.Fatalf("parse failure expected")
	}
	if got := len(calls); got != 3 {
		t.Fatalf("parse failure fired the slow-query hook: %d calls", got)
	}
}

// TestMetricsConcurrent hammers Index.Metrics() while queries, inserts, and
// deletes run concurrently; run under -race this proves snapshotting needs no
// external synchronization.
func TestMetricsConcurrent(t *testing.T) {
	ix := mustMem(t, Options{SlowQueryThreshold: time.Nanosecond, SlowQueryLog: func(SlowQuery) {}})
	insertXML(t, ix, purchaseBoston, purchaseChicago)

	const (
		readers  = 4
		queriers = 4
		iters    = 200
	)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				snap := ix.Metrics()
				_ = snap.String()
			}
		}()
	}
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, _, err := ix.QueryCtx(context.Background(), "//item", Budget{}); err != nil {
					t.Errorf("QueryCtx: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			doc, err := xmltree.ParseString(purchaseBoston)
			if err != nil {
				t.Errorf("parse: %v", err)
				return
			}
			id, err := ix.Insert(doc)
			if err != nil {
				t.Errorf("Insert: %v", err)
				return
			}
			if err := ix.Delete(id); err != nil {
				t.Errorf("Delete: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	snap := ix.Metrics()
	if got := snap.Counter("query.ok"); got < queriers*iters {
		t.Errorf("query.ok = %d, want >= %d", got, queriers*iters)
	}
	if got := snap.Counter("index.docs_inserted"); got < 2+iters/4 {
		t.Errorf("docs_inserted = %d, want >= %d", got, 2+iters/4)
	}
}
