package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"vist/internal/xmltree"
)

func mustFile(t testing.TB, opts Options) *Index {
	t.Helper()
	ix, err := Open(filepath.Join(t.TempDir(), "ix"), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return ix
}

// TestConcurrentQueryInsertDeleteFileBacked is the end-to-end concurrency
// stress test: parallel Query, QueryWithStats, and QueryVerified against
// Insert and Delete on a file-backed index with a deliberately tiny buffer
// pool, so the B+Tree read path, the pager's LRU, and the index metadata all
// see real contention. Run with -race.
func TestConcurrentQueryInsertDeleteFileBacked(t *testing.T) {
	ix := mustFile(t, Options{CachePages: 16})
	defer ix.Close()

	// Seed documents; the even-indexed ones get deleted concurrently.
	var seeded []DocID
	for i := 0; i < 24; i++ {
		doc := purchaseBoston
		if i%2 == 1 {
			doc = purchaseChicago
		}
		seeded = append(seeded, insertXML(t, ix, doc)...)
	}

	exprs := []string{
		"/purchase/seller/item",
		"/purchase//item[@manufacturer='intel']",
		"/purchase/buyer[location='boston']",
		"//seller/location",
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 120; i++ {
				expr := exprs[rng.Intn(len(exprs))]
				switch i % 3 {
				case 0:
					if _, err := ix.Query(expr); err != nil {
						fail(fmt.Errorf("Query(%q): %w", expr, err))
						return
					}
				case 1:
					if _, _, err := ix.QueryWithStats(expr); err != nil {
						fail(fmt.Errorf("QueryWithStats(%q): %w", expr, err))
						return
					}
				case 2:
					// Races against Delete: a candidate may vanish before
					// verification, which must not error.
					if _, err := ix.QueryVerified(expr); err != nil {
						fail(fmt.Errorf("QueryVerified(%q): %w", expr, err))
						return
					}
				}
			}
		}(int64(w + 1))
	}

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				doc, err := xmltree.ParseString(purchaseBoston)
				if err != nil {
					fail(err)
					return
				}
				if _, err := ix.Insert(doc); err != nil {
					fail(fmt.Errorf("Insert: %w", err))
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < len(seeded); i += 2 {
			if err := ix.Delete(seeded[i]); err != nil {
				fail(fmt.Errorf("Delete(%d): %w", seeded[i], err))
				return
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = ix.DocCount()
			_ = ix.MaxTreeDepth()
			_ = ix.NodeCount()
			_ = ix.BorrowCount()
			_ = ix.SizeBytes()
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// 24 seeded - 12 deleted + 80 inserted.
	if got := ix.DocCount(); got != 92 {
		t.Fatalf("DocCount = %d, want 92", got)
	}
	rep, err := ix.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("post-stress integrity check failed: %v", rep.Problems[:min(3, len(rep.Problems))])
	}
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryAllMatchesSequential(t *testing.T) {
	ix := mustMem(t, Options{})
	insertXML(t, ix, purchaseBoston, purchaseChicago)
	exprs := []string{
		"/purchase/seller/item",
		"/purchase//item[@manufacturer='intel']",
		"/purchase[seller/location='chicago']",
		"//buyer",
		"(((", // malformed: must fail its own slot only
		"/purchase/buyer[location='boston']",
	}
	for _, workers := range []int{0, 1, 3, 16} {
		results := ix.QueryAll(exprs, workers)
		if len(results) != len(exprs) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(results), len(exprs))
		}
		for i, res := range results {
			if res.Expr != exprs[i] {
				t.Fatalf("workers=%d: result %d is for %q, want %q (order not preserved)", workers, i, res.Expr, exprs[i])
			}
			want, wantErr := ix.Query(exprs[i])
			if (res.Err == nil) != (wantErr == nil) {
				t.Fatalf("workers=%d: %q: err = %v, sequential err = %v", workers, exprs[i], res.Err, wantErr)
			}
			if res.Err == nil && !reflect.DeepEqual(normalize(res.IDs), normalize(want)) {
				t.Fatalf("workers=%d: %q: ids = %v, want %v", workers, exprs[i], res.IDs, want)
			}
		}
	}
	if got := ix.QueryAll(nil, 4); len(got) != 0 {
		t.Fatalf("QueryAll(nil) = %v, want empty", got)
	}
}

// TestCloseDrainsInFlightReaders races Close against a storm of concurrent
// queries. Before Close coordinated with the reader pins, it would sync and
// close the pagers while scans were still resolving pages through them — a
// query could crash on a closed file or read recycled pages. Now Close flips
// the closed flag (new pins fail fast with ErrClosed) and drains pinned
// readers before touching the files, so every query either completes
// normally or reports ErrClosed — never an I/O error — and no reader
// goroutine outlives Close. Run with -race.
func TestCloseDrainsInFlightReaders(t *testing.T) {
	for round := 0; round < 4; round++ {
		ix := mustFile(t, Options{CachePages: 8})
		var docs []string
		for i := 0; i < 24; i++ {
			docs = append(docs, fmt.Sprintf(`<purchase><seller ID="s%d"><location>c%d</location></seller></purchase>`, i, i))
		}
		insertXML(t, ix, docs...)

		before := runtime.NumGoroutine()
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for {
					results := ix.QueryAllCtx(context.Background(),
						[]string{"/purchase/seller", "//location", "/purchase//location"}, 2, Budget{})
					sawClosed := false
					for _, r := range results {
						if r.Err == nil {
							continue
						}
						if !errors.Is(r.Err, ErrClosed) {
							panic(fmt.Sprintf("query during Close: %v", r.Err))
						}
						sawClosed = true
					}
					if sawClosed {
						return
					}
				}
			}()
		}
		close(start)
		if err := ix.Close(); err != nil {
			t.Fatalf("Close under reader load: %v", err)
		}
		wg.Wait()

		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
			time.Sleep(2 * time.Millisecond)
		}
		if after := runtime.NumGoroutine(); after > before {
			t.Fatalf("goroutines leaked across Close: before=%d after=%d", before, after)
		}
	}
}

// TestCloseDrainTimeoutGivesUp bounds the drain: a reader pinned past
// CloseDrainTimeout must not wedge Close forever.
func TestCloseDrainTimeoutGivesUp(t *testing.T) {
	ix := mustFile(t, Options{CloseDrainTimeout: 10 * time.Millisecond})
	insertXML(t, ix, purchaseBoston)
	// Pin a snapshot by hand and never release it, simulating a stuck reader.
	s, err := ix.pin()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ix.Close() }()
	select {
	case <-done:
		// Close returned despite the stuck pin: the timeout worked. (Any
		// error is acceptable; the files were closed under a live pin.)
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a reader that never unpins")
	}
	ix.unpin(s)
}

func TestQueryVerifiedSkipStoreFailsFast(t *testing.T) {
	ix := mustMem(t, Options{SkipDocumentStore: true})
	insertXML(t, ix, purchaseBoston)
	// The expression is deliberately malformed: with the storage check
	// ordered first, the storage error must surface before any parse or
	// matching work happens.
	_, err := ix.QueryVerified("(((")
	if err == nil {
		t.Fatal("QueryVerified without a document store must fail")
	}
	if got := err.Error(); got != "core: QueryVerified requires document storage (SkipDocumentStore is set)" {
		t.Fatalf("want the fail-fast storage error, got: %v", got)
	}
}

// TestQueryVerifiedToleratesVanishedCandidate simulates a published index
// version whose DocId entries outlive a document's stored bytes (a crash
// half-way through a recovery repair, or plain corruption): verification
// must skip the vanished candidate, not error. Note a racing Delete can no
// longer expose this state — queries run against a pinned snapshot — so the
// test publishes the damage explicitly.
func TestQueryVerifiedToleratesVanishedCandidate(t *testing.T) {
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix, purchaseBoston, purchaseChicago)

	// Remove doc 2's stored chunks directly, leaving its index entries in
	// place.
	var stale [][]byte
	err := ix.store.Scan(storeKey(ids[1], 0), storeKey(ids[1]+1, 0), func(k, v []byte) (bool, error) {
		stale = append(stale, append([]byte(nil), k...))
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stale) == 0 {
		t.Fatal("no stored chunks found to remove")
	}
	for _, k := range stale {
		if _, err := ix.store.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	// Publish the damaged state so queries (which resolve against the last
	// published snapshot) can see it.
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}

	// Both documents are candidates for //seller; only the intact one may
	// verify, and the vanished one must not turn into an error.
	got, err := ix.QueryVerified("/purchase/seller")
	if err != nil {
		t.Fatalf("QueryVerified with a vanished candidate: %v", err)
	}
	if !reflect.DeepEqual(got, ids[:1]) {
		t.Fatalf("QueryVerified = %v, want %v", got, ids[:1])
	}

	// Get must still report the missing document as an error callers can
	// classify.
	if _, err := ix.Get(ids[1]); !errors.Is(err, ErrDocNotFound) {
		t.Fatalf("Get(vanished) = %v, want ErrDocNotFound", err)
	}
}

// BenchmarkConcurrentQuery measures read throughput on a file-backed index
// under increasing goroutine counts. Run as:
//
//	go test -bench ConcurrentQuery -cpu 1,2,4,8 ./internal/core/
//
// With the shared read lock down through the B+Tree and a thread-safe
// pager, ops/sec grows with -cpu (up to the machine's core count) rather
// than staying flat the way the old whole-index mutex forced. On a
// single-core host no wall-clock scaling is physically possible and extra
// goroutines only add scheduler overhead; there, see
// btree.TestConcurrentGetsOverlapInPager for the schedule-level witness
// that reads are no longer serialized.
func BenchmarkConcurrentQuery(b *testing.B) {
	ix := mustFile(b, Options{CachePages: 256})
	defer ix.Close()
	rng := rand.New(rand.NewSource(42))
	for _, d := range randomRecords(rng, 600) {
		doc, err := xmltree.ParseString(d)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ix.Insert(doc); err != nil {
			b.Fatal(err)
		}
	}
	if err := ix.Sync(); err != nil {
		b.Fatal(err)
	}
	exprs := []string{"/r/a", "/r//b[c='x']", "/r/c/d", "//d[a='y']"}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := ix.Query(exprs[i%len(exprs)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
