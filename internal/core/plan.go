package core

import (
	"fmt"
	"math"
	"sort"

	"vist/internal/keyenc"
	"vist/internal/labeling"
	"vist/internal/plan"
	"vist/internal/query"
	"vist/internal/seq"
)

// This file integrates the query planner (internal/plan) with the index:
// synopsis maintenance on the write path, plan construction and caching on
// the read path, and the two planned execution strategies — exact chain
// probes and synopsis-pruned recursion with merged DocId collection.

// planFor resolves the planning state for a query: sequence expansion plus
// a Plan, through the bounded plan cache. Entries are keyed by expression
// text (Query.Raw) and validated against the structure generation of the
// *query's pinned* synopsis, not the index's current one: a plan is
// reusable exactly when the path set it was built from is the path set
// this query reads — everything the plan takes from the synopsis (chain
// target expansion, feasible-length pruning, the empty-result proof)
// depends only on which paths exist, never on their counts. Validating by
// StructGen instead of epoch keeps the cache hot through an update-heavy
// workload, where every commit bumps the epoch but the path set is stable;
// counts drifting since plan time can at worst mis-order the work, not
// change its answer. Cached entries are (re)built from the pinned
// snapshot's synopsis so a concurrent writer can neither invalidate this
// query's plan under it nor hand it pruning belonging to a version it
// cannot see. Readers at structurally different versions may alternately
// overwrite each other's cache slot; that thrashes at worst, never lies.
//
// With the planner disabled the entry is built fresh each time with a nil
// Plan, which selects the paper's evaluation order downstream.
func (ix *Index) planFor(snap *snapshot, q *query.Query) (*plan.Entry, error) {
	if ix.opts.DisablePlanner {
		seqs, err := q.Sequences(ix.dict, ix.schema)
		if query.IsVariantCapError(err) {
			return &plan.Entry{Query: q, VariantCap: true}, nil
		}
		if err != nil {
			return nil, err
		}
		return &plan.Entry{Query: q, Seqs: seqs}, nil
	}
	if e, ok := ix.plans.Get(q.Raw); ok && e.SynGen == snap.syn.StructGen() {
		ix.qm.planHits.Inc()
		return e, nil
	}
	ix.qm.planMisses.Inc()
	seqs, err := q.Sequences(ix.dict, ix.schema)
	if query.IsVariantCapError(err) {
		e := &plan.Entry{Query: q, VariantCap: true, SynGen: snap.syn.StructGen()}
		ix.plans.Put(q.Raw, e)
		return e, nil
	}
	if err != nil {
		return nil, err // hard errors are not cached
	}
	e := &plan.Entry{Query: q, Seqs: seqs, SynGen: snap.syn.StructGen()}
	if len(seqs) > 0 {
		e.Plan = plan.Build(seqs, snap.syn, ix.estimator())
		e.Desc = e.Plan.Describe(ix.dict)
	}
	ix.plans.Put(q.Raw, e)
	return e, nil
}

// estimator adapts the labeling statistics (when trained) to the planner's
// fallback selectivity interface. The nil check matters: a typed nil
// *labeling.Stats inside the interface would pass plan.Build's nil test.
func (ix *Index) estimator() plan.Estimator {
	if ix.stats == nil {
		return nil
	}
	return ix.stats
}

// execSeqPlan runs one sequence under its planned strategy.
func (ix *Index) execSeqPlan(qc *qctx, qs query.Seq, sp *plan.SeqPlan, out map[DocID]struct{}) error {
	switch sp.Mode {
	case plan.ModeEmpty:
		return nil
	case plan.ModeChain:
		return ix.chainScan(qc, sp, out)
	default:
		return ix.matchSeqPruned(qc, qs, out)
	}
}

// chainScan answers a linear sequence directly: one exact D-Ancestor scan
// per concrete root path the synopsis expanded, collecting the matched
// nodes' scopes and then their documents in one merged pass. No recursion
// and no S-Ancestor filtering are needed — for a chain, a node carrying
// the full-path D-Ancestor key always has trie ancestors matching every
// earlier element (they are the preceding elements of the document
// insertion that created it), so the paper's intermediate checks can never
// reject it.
func (ix *Index) chainScan(qc *qctx, sp *plan.SeqPlan, out map[DocID]struct{}) error {
	var scopes []labeling.Scope
	for i := range sp.Targets {
		t := &sp.Targets[i]
		lo, ok := ix.kc.daKeyQ(t.Sym, t.Prefix)
		if !ok {
			continue // path never interned ⇒ no node carries this target
		}
		if err := qc.noteRangeScan(); err != nil {
			return err
		}
		hi := keyenc.PrefixSuccessor(lo)
		// The whole target scan is one D-Ancestor key-space landing — there
		// are no S-Ancestor follow-up seeks — so it counts as probe time.
		if qc.timed {
			qc.probeSmp.begin()
		}
		err := qc.snap.nodes.ScanWith(lo, hi, qc.hook, func(k, v []byte) (bool, error) {
			qc.stats.NodesVisited++
			if qc.b.MaxNodesVisited > 0 && qc.stats.NodesVisited > qc.b.MaxNodesVisited {
				return false, qc.fail(ErrBudgetExceeded, fmt.Errorf("node-visit budget %d exhausted", qc.b.MaxNodesVisited))
			}
			_, n, err := ix.kc.splitNodeKey(k)
			if err != nil {
				return false, err
			}
			rec, err := ix.kc.decodeRecord(n, v)
			if err != nil {
				return false, err
			}
			scopes = append(scopes, labeling.Scope{N: n, Size: rec.size})
			return true, nil
		})
		if qc.timed {
			qc.probeSmp.end(&qc.stats.Stages.Probe)
		}
		if err != nil {
			return err
		}
	}
	return ix.collectScopes(qc, scopes, out)
}

// matchSeqPruned is the paper's recursion (matchSeq) with two planner
// refinements: each element's candidate prefix lengths come from the
// synopsis instead of the full [min, maxDepth] sweep — lengths the
// synopsis omits are provably empty scans — and final-match scopes are
// gathered and collected in one merged DocId pass instead of one range
// scan per match.
func (ix *Index) matchSeqPruned(qc *qctx, qs query.Seq, out map[DocID]struct{}) error {
	if len(qs) == 0 {
		return nil
	}
	matches := make([]match, len(qs))
	var scopes []labeling.Scope
	var rec func(i int, prev labeling.Scope) error
	rec = func(i int, prev labeling.Scope) error {
		if i == len(qs) {
			scopes = append(scopes, prev)
			return nil
		}
		qe := qs[i]
		var base []seq.Symbol
		if qe.Anchor >= 0 {
			base = matches[qe.Anchor].path
		}
		maxPlen := len(base) + qe.Stars
		if qe.Desc {
			maxPlen = qc.snap.maxDepth - 1
		}
		if maxPlen >= MaxDepth {
			maxPlen = MaxDepth - 1
		}
		// Budget accounting happens inside the scan primitives, at issue
		// time.
		for _, plen := range qc.snap.syn.FeasibleLens(base, qe.Stars, qe.Desc, qe.Symbol, maxPlen) {
			err := ix.scanCandidates(qc, qe.Symbol, plen, base, prev, func(prefix []seq.Symbol, scope labeling.Scope) error {
				qc.stats.NodesVisited++
				if qc.b.MaxNodesVisited > 0 && qc.stats.NodesVisited > qc.b.MaxNodesVisited {
					return qc.fail(ErrBudgetExceeded, fmt.Errorf("node-visit budget %d exhausted", qc.b.MaxNodesVisited))
				}
				path := make([]seq.Symbol, 0, len(prefix)+1)
				path = append(path, prefix...)
				path = append(path, qe.Symbol)
				matches[i] = match{scope: scope, path: path}
				return rec(i+1, scope)
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, rootScope); err != nil {
		return err
	}
	return ix.collectScopes(qc, scopes, out)
}

// collectScopes gathers the documents under a set of matched scopes in one
// pass: the label intervals [N, N+Size] are sorted and merged (nested and
// duplicate scopes from different match combinations collapse), then the
// DocId tree is walked across the merged runs, re-seeking over gaps. This
// replaces one full B+Tree descent per matched node with one descent per
// contiguous label run — the difference between ~25k descents and a
// handful on a '//'-heavy query.
func (ix *Index) collectScopes(qc *qctx, scopes []labeling.Scope, out map[DocID]struct{}) error {
	if len(scopes) == 0 {
		return nil
	}
	type iv struct{ lo, hi uint64 } // inclusive label interval
	ivs := make([]iv, 0, len(scopes))
	for _, sc := range scopes {
		hi := sc.N + sc.Size
		if hi < sc.N {
			hi = math.MaxUint64
		}
		ivs = append(ivs, iv{sc.N, hi})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	merged := ivs[:1]
	for _, r := range ivs[1:] {
		last := &merged[len(merged)-1]
		if r.lo <= last.hi || (last.hi != math.MaxUint64 && r.lo == last.hi+1) {
			if r.hi > last.hi {
				last.hi = r.hi
			}
		} else {
			merged = append(merged, r)
		}
	}
	if qc.timed {
		qc.collectSmp.begin()
	}
	defer func() {
		if qc.timed {
			qc.collectSmp.end(&qc.stats.Stages.Collect)
		}
	}()
	var hi []byte
	if end := merged[len(merged)-1].hi; end < math.MaxUint64 {
		hi = docKey(end+1, 0)
	}
	i := 0
	for i < len(merged) {
		qc.stats.DocScans++
		reseek := false
		err := qc.snap.docs.ScanWith(docKey(merged[i].lo, 0), hi, qc.hook, func(k, v []byte) (bool, error) {
			n, id, err := parseDocKey(k)
			if err != nil {
				return false, err
			}
			for n > merged[i].hi {
				if i++; i == len(merged) {
					return false, nil
				}
			}
			if n < merged[i].lo {
				// Gap between runs: stop this scan and re-seek past it.
				reseek = true
				return false, nil
			}
			out[id] = struct{}{}
			qc.stats.Candidates = len(out)
			if qc.b.MaxResults > 0 && len(out) > qc.b.MaxResults {
				return false, qc.fail(ErrBudgetExceeded, fmt.Errorf("result cap %d exhausted", qc.b.MaxResults))
			}
			return true, nil
		})
		if err != nil {
			return err
		}
		if !reseek {
			break
		}
	}
	return nil
}

// --- synopsis maintenance and persistence ------------------------------------

// noteWrite marks the synopsis dirty for the next Sync. Callers hold the
// exclusive lock. The epoch no longer advances here: versions (and with
// them plan-cache validity) move only when a successful mutation publishes,
// so a failed mutation's partial pending state invalidates nothing — the
// published version queries read is unchanged.
func (ix *Index) noteWrite() {
	ix.synDirty = true
}

// synopsisBlob is the aux-tree blob name the synopsis persists under.
const synopsisBlob = "synopsis"

// synDelta is the synopsis weight of one stored index node: its refcount,
// floored at 1. RIST bulk loads record how many documents *end* at a node
// as its refcount — zero for interior trie nodes — but a stored node always
// represents at least one element occurrence, and the floor is what keeps
// the maintained synopsis and rebuildSynopsis in agreement for both build
// styles.
func synDelta(refcount uint32) int64 {
	if refcount == 0 {
		return 1
	}
	return int64(refcount)
}

// loadSynopsis restores the persisted synopsis, or rebuilds it from the
// node tree for indexes created before the synopsis existed. The rebuild
// relies on the count invariant: the synopsis count of a path equals the
// refcount sum of the index nodes carrying that path's D-Ancestor key.
func (ix *Index) loadSynopsis(existing bool) error {
	blob, ok, err := ix.getBlob(synopsisBlob)
	if err != nil {
		return err
	}
	if ok {
		sy, err := plan.DecodeSynopsis(blob)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		ix.syn = sy
		return nil
	}
	if !existing {
		ix.syn = plan.NewSynopsis()
		return nil
	}
	// Pre-synopsis index: one scan of the node tree reconstructs it.
	sy, err := ix.rebuildSynopsis()
	if err != nil {
		return err
	}
	ix.syn = sy
	ix.synDirty = true
	return nil
}

// rebuildSynopsis recomputes the synopsis from the node tree (the same
// scan loadSynopsis uses for migration). Check compares it with the
// maintained one.
func (ix *Index) rebuildSynopsis() (*plan.Synopsis, error) {
	return rebuildSynopsisFrom(ix.nodes, ix.kc)
}

// rebuildSynopsisFrom recomputes the synopsis from any scannable node
// table: the writer-side tree (Check, under ix.mu) or a pinned snapshot's
// (CheckSnapshot, lock-free).
func rebuildSynopsisFrom(nodes scanner, kc keyCodec) (*plan.Synopsis, error) {
	sy := plan.NewSynopsis()
	path := make([]seq.Symbol, 0, MaxDepth)
	err := nodes.Scan(nil, nil, func(k, v []byte) (bool, error) {
		da, n, err := kc.splitNodeKey(k)
		if err != nil {
			return false, err
		}
		sym, prefix, err := kc.parseDAKey(da)
		if err != nil {
			return false, err
		}
		rec, err := kc.decodeRecord(n, v)
		if err != nil {
			return false, err
		}
		if sym.IsValue() {
			return true, nil
		}
		path = append(path[:0], prefix...)
		path = append(path, sym)
		sy.Add(path, synDelta(rec.refcount))
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return sy, nil
}

// PlanCacheLen reports the number of cached query plans (diagnostics).
func (ix *Index) PlanCacheLen() int {
	return ix.plans.Len()
}

// SynopsisPaths reports the number of distinct root paths the synopsis of
// the last published version tracks (lock-free).
func (ix *Index) SynopsisPaths() int {
	return ix.snap.Load().syn.Paths()
}
