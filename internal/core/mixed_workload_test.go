package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vist/internal/xmltree"
)

// TestMixedWorkloadLockFreeReads is the MVCC contract test: while a bulk
// ingest runs, concurrent queries must (a) never wait on the writer — the
// query.lock_wait_seconds histogram, which times snapshot pinning, must stay
// at effectively zero — and (b) always observe a committed prefix of the
// ingest, never a torn or partially-published state. The index only ever
// grows, so every published snapshot holds exactly the documents
// {first..first+k}; a gap, an ID past the last committed insert, or a result
// smaller than what was committed before the query began all fail the run.
// Run with -race.
func TestMixedWorkloadLockFreeReads(t *testing.T) {
	ix := mustFile(t, Options{CachePages: 64})
	defer ix.Close()

	const seed, ingest, readers = 8, 300, 4
	mkDoc := func(i int) string { return fmt.Sprintf("<w><item>v%d</item></w>", i) }
	var seedDocs []string
	for i := 0; i < seed; i++ {
		seedDocs = append(seedDocs, mkDoc(i))
	}
	ids := insertXML(t, ix, seedDocs...)
	first := uint64(ids[0])

	// Highest DocID whose Insert has returned (and was therefore published).
	var committed atomic.Uint64
	committed.Store(uint64(ids[len(ids)-1]))

	stop := make(chan struct{})
	errCh := make(chan error, readers)
	fail := func(format string, args ...any) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
	}
	var wg, ready sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		ready.Add(1)
		go func() {
			defer wg.Done()
			warm := false
			defer func() {
				if !warm {
					ready.Done() // release the barrier even on an early failure
				}
			}()
			for {
				// Every reader completes one query before the ingest starts
				// (the ready barrier below), so the workload genuinely
				// overlaps even when the scheduler would otherwise let the
				// writer finish first.
				if warm {
					select {
					case <-stop:
						return
					default:
					}
				}
				before := committed.Load()
				got, err := ix.Query("//item")
				if err != nil {
					fail("concurrent Query: %w", err)
					return
				}
				after := committed.Load()
				obs := make([]uint64, len(got))
				for i, id := range got {
					obs[i] = uint64(id)
				}
				sort.Slice(obs, func(i, j int) bool { return obs[i] < obs[j] })
				// A committed prefix and nothing else: contiguous from the
				// first document, at least everything committed before the
				// query began, at most everything committed by the time it
				// returned.
				for i, id := range obs {
					if id != first+uint64(i) {
						fail("torn read: ids %v are not contiguous from %d", obs, first)
						return
					}
				}
				last := first - 1
				if len(obs) > 0 {
					last = obs[len(obs)-1]
				}
				if last < before {
					fail("lost committed docs: snapshot ends at %d, but %d was committed before the query began", last, before)
					return
				}
				// The snapshot is published inside Insert, before insertXML
				// returns and bumps the counter — so with one writer the
				// query may see at most one document past `after`.
				if last > after+1 {
					fail("uncommitted read: snapshot ends at %d, but only %d was committed when the query returned", last, after)
					return
				}
				if !warm {
					warm = true
					ready.Done()
				}
			}
		}()
	}

	ready.Wait()
	for i := 0; i < ingest; i++ {
		id := insertXML(t, ix, mkDoc(seed+i))[0]
		committed.Store(uint64(id))
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Pinning a snapshot is a map increment under a mutex held for
	// nanoseconds — never a wait for the bulk ingest. A handful of the tens
	// of thousands of queries will catch a scheduler preemption between the
	// clock read and the pin (more under -race on loaded CI machines), so the
	// assertion is on the mean: were readers actually queueing behind the
	// writer's WAL commits, the average wait would be the average insert
	// latency — hundreds of microseconds here — not effectively zero.
	const maxMeanWait = 100e-6 // seconds
	h, ok := ix.Metrics().Histograms["query.lock_wait_seconds"]
	if !ok || h.Count == 0 {
		t.Fatal("query.lock_wait_seconds recorded no observations")
	}
	if mean := h.Mean(); mean > maxMeanWait {
		t.Errorf("mean snapshot-pin wait %.1fµs over %d queries (want ≈0, <%.0fµs); reads must not block on writers",
			mean*1e6, h.Count, maxMeanWait*1e6)
	}
}

// BenchmarkMixedReadWrite measures query latency while a writer churns the
// index — the workload MVCC exists for. Under the old shared lock each query
// queued behind whichever mutation held the index (WAL commit fsync and
// checkpoint included); with snapshot pinning, read latency should track the
// idle case rather than insert latency. Two details keep the measurement
// about lock interaction rather than something else:
//
//   - The writer deletes as it inserts, so the corpus stays at ~600
//     documents. A growing index makes late queries slower for data-size
//     reasons and buries the lock signal.
//   - The ingest is paced (~1k mutations/sec), not a saturating hot loop. On
//     a box with few cores a loop that never yields measures Go's scheduler
//     time-slice — readers wait out the writer's CPU quantum however the
//     index locks. A paced writer still catches every locking regression:
//     with reads behind the write lock, each query arriving during a commit
//     would eat the full fsync+checkpoint, and p99 jumps an order of
//     magnitude.
//
// Alongside ns/op it reports the observed p99 so tail latency — where lock
// convoys show up first — is visible in CI:
//
//	go test -run '^$' -bench MixedReadWrite -count 6 ./internal/core
func BenchmarkMixedReadWrite(b *testing.B) {
	ix := mustFile(b, Options{CachePages: 256})
	defer ix.Close()
	rng := rand.New(rand.NewSource(42))
	var live []DocID
	for _, d := range randomRecords(rng, 600) {
		doc, err := xmltree.ParseString(d)
		if err != nil {
			b.Fatal(err)
		}
		id, err := ix.Insert(doc)
		if err != nil {
			b.Fatal(err)
		}
		live = append(live, id)
	}
	if err := ix.Sync(); err != nil {
		b.Fatal(err)
	}

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		wrng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			doc, err := xmltree.ParseString(randomRecords(wrng, 1)[0])
			if err != nil {
				b.Error(err)
				return
			}
			id, err := ix.Insert(doc)
			if err != nil {
				b.Error(err)
				return
			}
			// Replace a random document so the index stays the same size
			// the idle measurement sees.
			victim := wrng.Intn(len(live))
			if err := ix.Delete(live[victim]); err != nil {
				b.Error(err)
				return
			}
			live[victim] = id
			time.Sleep(time.Millisecond) // paced ingest; see the doc comment
		}
	}()

	exprs := []string{"/r/a", "/r//b[c='x']", "/r/c/d", "//d[a='y']"}
	var mu sync.Mutex
	var lat []time.Duration
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var local []time.Duration
		i := 0
		for pb.Next() {
			t0 := time.Now()
			if _, err := ix.Query(exprs[i%len(exprs)]); err != nil {
				b.Error(err)
				return
			}
			local = append(local, time.Since(t0))
			i++
		}
		mu.Lock()
		lat = append(lat, local...)
		mu.Unlock()
	})
	b.StopTimer()
	close(stop)
	writer.Wait()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
	}
}
