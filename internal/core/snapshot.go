package core

import (
	"errors"
	"time"

	"vist/internal/btree"
	"vist/internal/plan"
)

// ErrClosed reports a query attempted against an index whose Close has
// begun. Queries racing Close fail fast with this error instead of reading
// through pagers that are about to be unmapped.
var ErrClosed = errors.New("core: index is closed")

// snapshot is one published index version: the epoch that committed it, a
// frozen root per tree, the synopsis fork the planner may consult, and the
// scalar metadata queries read. Everything in it is immutable — writers
// shadow tree pages and fork the synopsis instead of rewriting them — so any
// number of queries can execute against it without locks, while any number
// of writers (serialized by Index.mu) build the next version.
//
// Lifecycle (DESIGN.md §11): a query pins the current snapshot (a refcount
// on its epoch, under pinMu), runs entirely against it, and unpins; a
// mutation publishes a new snapshot by bumping the epoch, publishing every
// tree, and storing the new version pointer; pages freed by superseded
// versions are reclaimed only once no reader is pinned at or below the
// epoch that freed them.
type snapshot struct {
	epoch    uint64
	nodes    btree.Snapshot
	docs     btree.Snapshot
	store    btree.Snapshot
	syn      *plan.Synopsis
	maxDepth int
	docCount uint64
	// Writer-side scalars captured at publish so a failed mutation can
	// restore them (rollbackLocked); queries never read these.
	nextDoc   DocID
	rootK     uint32
	rootResvd uint32
}

// pin registers the calling query on the current snapshot and returns it.
// The snapshot pointer and the refcount move together under pinMu, so a
// concurrent publish either sees this reader in its minimum-pin computation
// or hands it the new snapshot — never a pinned-but-uncounted reader whose
// pages a Reclaim could recycle mid-query.
func (ix *Index) pin() (*snapshot, error) {
	ix.pinMu.Lock()
	defer ix.pinMu.Unlock()
	if ix.closed {
		return nil, ErrClosed
	}
	s := ix.snap.Load()
	ix.pins[s.epoch]++
	ix.qm.pinnedReaders.Add(1)
	return s, nil
}

// unpin releases a query's claim on its snapshot. Release never reclaims
// anything itself — garbage collection is driven entirely by the writer side
// at publish time — so the read path stays free of free-list work.
func (ix *Index) unpin(s *snapshot) {
	ix.pinMu.Lock()
	defer ix.pinMu.Unlock()
	if ix.pins[s.epoch]--; ix.pins[s.epoch] <= 0 {
		delete(ix.pins, s.epoch)
	}
	ix.qm.pinnedReaders.Add(-1)
}

// publishLocked commits the pending state of every tree as a new version and
// exposes it to queries. Callers hold ix.mu exclusively and call this only
// after a mutation fully succeeded; a failed mutation calls rollbackLocked
// instead, so partial writes are never published.
//
// After the version pointer swap, pages freed by epochs no pinned reader
// can still see are reclaimed for reuse.
func (ix *Index) publishLocked() {
	ix.epoch++
	for _, t := range ix.trees() {
		t.Publish(ix.epoch)
	}
	s := &snapshot{
		epoch:     ix.epoch,
		nodes:     ix.nodes.Snapshot(),
		docs:      ix.docs.Snapshot(),
		store:     ix.store.Snapshot(),
		syn:       ix.syn,
		maxDepth:  ix.maxDepth,
		docCount:  ix.docCount,
		nextDoc:   ix.nextDoc,
		rootK:     ix.rootK,
		rootResvd: ix.rootResvd,
	}
	// The published synopsis is now shared with readers: the next mutation
	// must fork it before touching it.
	ix.synShared = true
	ix.pinMu.Lock()
	ix.snap.Store(s)
	min := ix.epoch
	for e := range ix.pins {
		if e < min {
			min = e
		}
	}
	ix.pinMu.Unlock()
	ix.qm.epochGauge.Set(int64(ix.epoch))
	for _, t := range ix.trees() {
		t.Reclaim(min)
	}
}

// rollbackLocked abandons a failed mutation's pending state: every tree
// reverts to its last published version (pages the mutation allocated are
// recycled; pages it meant to free stay live), and the writer-side scalar
// state reverts to the values captured at the last publish. Without this, a
// half-shadowed subtree would leave replaced pages on the window free list
// while the pending root still references the replacements' ancestors — and a
// later successful publish would recycle still-reachable pages, corrupting
// the tree. Callers hold ix.mu exclusively.
func (ix *Index) rollbackLocked() {
	for _, t := range ix.trees() {
		t.Rollback()
	}
	s := ix.snap.Load()
	// The synopsis fork (if any) is simply dropped; the published head is
	// authoritative and once again shared.
	ix.syn = s.syn
	ix.synShared = true
	ix.maxDepth = s.maxDepth
	ix.docCount = s.docCount
	ix.nextDoc = s.nextDoc
	ix.rootK = s.rootK
	ix.rootResvd = s.rootResvd
	ix.metaDirty = true
	// saveMeta may have persisted the synopsis blob (clearing synDirty)
	// before a later step failed and rolled the blob back; force a re-persist
	// on the next successful Sync. The path dictionary blob is in the same
	// boat, so its persisted-length marker is reset too (the dictionary
	// itself is grow-only and never rolls back — only the blob write does).
	ix.synDirty = true
	ix.pdLen = 0
}

// mutableSyn returns a synopsis the current mutation may write: the live one
// when it is already private to the writer, otherwise a copy-on-write fork
// (the published snapshot keeps the old head). Callers hold ix.mu.
func (ix *Index) mutableSyn() *plan.Synopsis {
	if ix.synShared {
		ix.syn = ix.syn.Fork()
		ix.synShared = false
	}
	return ix.syn
}

// drainReaders waits for every pinned query to finish, bounded by
// Options.CloseDrainTimeout. It reports whether the index fully drained.
func (ix *Index) drainReaders() bool {
	timeout := ix.opts.CloseDrainTimeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		ix.pinMu.Lock()
		n := len(ix.pins)
		ix.pinMu.Unlock()
		if n == 0 {
			return true
		}
		if timeout > 0 && time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}
