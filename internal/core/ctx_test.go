package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"vist/internal/xmltree"
)

// adversarialTree builds a random tree of hot-symbol <a> elements with <b>
// leaves: the shape that makes '//'-heavy queries degenerate into chains of
// wildcard range scans (one per candidate prefix length per partial match;
// the paper's Section 3.3 wildcard handling).
func adversarialTree(rng *rand.Rand, depth int) *xmltree.Node {
	n := xmltree.NewElement("a")
	if depth <= 0 {
		n.Children = append(n.Children, xmltree.NewElement("b"))
		return n
	}
	kids := 1
	if rng.Intn(3) == 0 {
		kids = 2
	}
	for k := 0; k < kids; k++ {
		n.Children = append(n.Children, adversarialTree(rng, depth-1-rng.Intn(3)))
	}
	return n
}

// adversarialQuery is '//'-heavy over the hot symbol: every step expands to
// a range scan per candidate prefix length, multiplying per partial match.
const adversarialQuery = "//a//a//a//a//b"

func buildAdversarialIndex(t testing.TB) *Index {
	t.Helper()
	ix := mustMem(t, Options{})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 60; i++ {
		doc := adversarialTree(rng, 12+rng.Intn(18))
		if _, err := ix.Insert(doc); err != nil {
			t.Fatalf("insert adversarial doc %d: %v", i, err)
		}
	}
	// A couple of well-behaved documents good queries can find.
	insertXML(t, ix, purchaseBoston, purchaseChicago)
	return ix
}

// TestPathologicalQueryCutByPageBudget is the acceptance check for budget
// enforcement: the adversarial query must trip MaxPages with a typed error
// and populated partial stats, while concurrent well-behaved queries on the
// same index complete successfully.
func TestPathologicalQueryCutByPageBudget(t *testing.T) {
	ix := buildAdversarialIndex(t)
	defer ix.Close()

	// Well-behaved queries run throughout, in parallel with the repeated
	// budget-limited pathological runs.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			ids, err := ix.Query("/purchase/buyer[location='newyork']")
			if err != nil || len(ids) != 1 {
				t.Errorf("well-behaved query: ids=%v err=%v", ids, err)
				return
			}
		}
	}()

	const budget = 500
	for i := 0; i < 4; i++ {
		_, stats, err := ix.QueryCtx(context.Background(), adversarialQuery, Budget{MaxPages: budget})
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("QueryCtx(adversarial, MaxPages=%d) err = %v, want ErrBudgetExceeded", budget, err)
		}
		var qe *QueryError
		if !errors.As(err, &qe) {
			t.Fatalf("error %T is not a *QueryError", err)
		}
		if qe.Expr != adversarialQuery {
			t.Fatalf("QueryError.Expr = %q, want %q", qe.Expr, adversarialQuery)
		}
		if qe.Stats.PagesRead <= budget || qe.Stats.RangeScans == 0 {
			t.Fatalf("QueryError.Stats not populated: %s", qe.Stats)
		}
		if stats.PagesRead != qe.Stats.PagesRead {
			t.Fatalf("returned stats (%s) disagree with error stats (%s)", stats, qe.Stats)
		}
	}
	close(done)
	wg.Wait()

	// The same query also trips the other budget dimensions.
	for _, b := range []Budget{{MaxRangeScans: 50}, {MaxNodesVisited: 50}} {
		_, stats, err := ix.QueryCtx(context.Background(), adversarialQuery, b)
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("QueryCtx(adversarial, %+v) err = %v, want ErrBudgetExceeded", b, err)
		}
		if stats.RangeScans == 0 {
			t.Fatalf("stats not populated for %+v: %s", b, stats)
		}
	}
}

// TestTinyBudgetPartialStats: a query cut off by a minimal budget — in any
// dimension, with or without the planner — must still report the pages it
// read before the stop in its partial QueryStats. Regression test: a cut-off
// that reported zero pages would make budget post-mortems (and the slow-query
// log) claim the query did no work at all.
func TestTinyBudgetPartialStats(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"planner", Options{}},
		{"unplanned", Options{DisablePlanner: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix := mustMem(t, tc.opts)
			// Enough documents that the trees span several pages.
			for i := 0; i < 30; i++ {
				insertXML(t, ix, purchaseBoston, purchaseChicago)
			}
			// '//item' matches at two depths, so every evaluation strategy
			// issues at least two range scans.
			for _, b := range []Budget{{MaxPages: 1}, {MaxRangeScans: 1}, {MaxNodesVisited: 1}} {
				_, stats, err := ix.QueryCtx(context.Background(), "//item", b)
				if !errors.Is(err, ErrBudgetExceeded) {
					t.Fatalf("QueryCtx(//item, %+v) err = %v, want ErrBudgetExceeded", b, err)
				}
				if stats.PagesRead == 0 {
					t.Errorf("budget %+v: cut-off stats report zero pages read: %s", b, stats)
				}
				var qe *QueryError
				if !errors.As(err, &qe) {
					t.Fatalf("error %T is not a *QueryError", err)
				}
				if qe.Stats.PagesRead != stats.PagesRead {
					t.Errorf("budget %+v: error stats (%d pages) disagree with returned stats (%d pages)",
						b, qe.Stats.PagesRead, stats.PagesRead)
				}
			}
		})
	}
}

// TestPathologicalQueryCutByDeadline: an expired deadline stops the query at
// its first checkpoint with ErrCanceled, and the context's DeadlineExceeded
// remains visible through the wrap chain.
func TestPathologicalQueryCutByDeadline(t *testing.T) {
	ix := buildAdversarialIndex(t)
	defer ix.Close()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	_, _, err := ix.QueryCtx(ctx, adversarialQuery, Budget{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("QueryCtx(expired deadline) err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v does not unwrap to context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("expired-deadline query took %v, want prompt return", elapsed)
	}

	// A live deadline that expires mid-scan also cuts the query, and the
	// partial stats show real work happened before the cut.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	_, stats, err := ix.QueryCtx(ctx2, adversarialQuery, Budget{})
	if err == nil {
		t.Skip("index too small for the adversarial query to outlive 10ms on this machine")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("QueryCtx(10ms deadline) err = %v, want ErrCanceled", err)
	}
	if stats.PagesRead == 0 && stats.RangeScans == 0 {
		t.Fatalf("mid-scan deadline left empty stats: %s", stats)
	}

	// The index stays fully usable after both cuts.
	ids := queryIDs(t, ix, "/purchase/buyer[location='newyork']")
	if len(ids) != 1 {
		t.Fatalf("post-cut query returned %v", ids)
	}
}

// TestCancelMidScan cancels from another goroutine while the pathological
// query is running: the query must return ErrCanceled promptly (bounded
// checkpoint interval) and leave the index usable.
func TestCancelMidScan(t *testing.T) {
	ix := buildAdversarialIndex(t)
	defer ix.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := ix.QueryCtx(ctx, adversarialQuery, Budget{})
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("adversarial query finished before the 5ms cancel on this machine")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("QueryCtx(cancel mid-scan) err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v does not unwrap to context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled query took %v to return; checkpoints are not bounded", elapsed)
	}

	// Index still answers; an exclusive-lock operation also proceeds, which
	// would deadlock had the cancelled query leaked its read lock.
	insertXML(t, ix, purchaseBoston)
	if ids := queryIDs(t, ix, "/purchase/buyer[location='newyork']"); len(ids) != 2 {
		t.Fatalf("post-cancel query returned %v", ids)
	}
}

// TestDefaultBudgetAndTimeoutProtectLegacyAPIs: plain Query (no context) is
// still bounded by Options-level defaults.
func TestDefaultBudgetAndTimeoutProtectLegacyAPIs(t *testing.T) {
	ix := mustMem(t, Options{DefaultBudget: Budget{MaxPages: 100}})
	defer ix.Close()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		if _, err := ix.Insert(adversarialTree(rng, 12+rng.Intn(12))); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if _, err := ix.Query(adversarialQuery); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Query under DefaultBudget err = %v, want ErrBudgetExceeded", err)
	}

	ix2 := mustMem(t, Options{DefaultQueryTimeout: time.Nanosecond})
	defer ix2.Close()
	insertXML(t, ix2, purchaseBoston)
	if _, err := ix2.Query("/purchase/seller/item"); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Query under 1ns DefaultQueryTimeout err = %v, want ErrCanceled", err)
	}

	// A caller budget cannot raise the index ceiling: the merged limit is
	// the stricter of the two.
	if _, _, err := ix.QueryCtx(context.Background(), adversarialQuery, Budget{MaxPages: 1 << 30}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("loose caller budget overrode DefaultBudget: %v", err)
	}
}

func TestBudgetMerge(t *testing.T) {
	got := Budget{MaxPages: 100, MaxResults: 5}.merge(Budget{MaxPages: 50, MaxRangeScans: 9})
	want := Budget{MaxPages: 50, MaxRangeScans: 9, MaxResults: 5}
	if got != want {
		t.Fatalf("merge = %+v, want %+v", got, want)
	}
	if got := (Budget{}).merge(Budget{}); got != (Budget{}) {
		t.Fatalf("zero merge = %+v, want zero", got)
	}
}

// TestMaxResultsCap: the result-cap dimension stops collection as soon as
// the cap is crossed, with partial candidates in the stats.
func TestMaxResultsCap(t *testing.T) {
	ix := mustMem(t, Options{})
	defer ix.Close()
	for i := 0; i < 20; i++ {
		insertXML(t, ix, purchaseBoston)
	}
	_, stats, err := ix.QueryCtx(context.Background(), "/purchase", Budget{MaxResults: 5})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("QueryCtx(MaxResults=5) err = %v, want ErrBudgetExceeded", err)
	}
	if stats.Candidates < 5 {
		t.Fatalf("stats.Candidates = %d, want >= 5 (partial progress)", stats.Candidates)
	}
	// Under the cap the same query succeeds.
	ids, _, err := ix.QueryCtx(context.Background(), "/purchase", Budget{MaxResults: 50})
	if err != nil || len(ids) != 20 {
		t.Fatalf("QueryCtx(MaxResults=50): ids=%d err=%v", len(ids), err)
	}
}

// TestPanicContainment: a panic inside query execution surfaces as a typed
// ErrQueryPanic carrying the query text and a stack, releases the read
// lock, and leaves the index fully usable.
func TestPanicContainment(t *testing.T) {
	ix := mustMem(t, Options{})
	defer ix.Close()
	insertXML(t, ix, purchaseBoston)

	// Force a real panic on the query path: a nil dictionary blows up
	// symbol resolution inside the locked, contained region.
	saved := ix.dict
	ix.dict = nil
	_, _, err := ix.QueryCtx(context.Background(), "/purchase/seller", Budget{})
	ix.dict = saved
	if !errors.Is(err, ErrQueryPanic) {
		t.Fatalf("QueryCtx with nil dict err = %v, want ErrQueryPanic", err)
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("error %T is not a *QueryError", err)
	}
	if qe.Expr != "/purchase/seller" {
		t.Fatalf("QueryError.Expr = %q", qe.Expr)
	}
	if len(qe.Stack) == 0 {
		t.Fatalf("QueryError.Stack is empty")
	}

	// Both lock classes still work: a reader, then an exclusive writer
	// (which would deadlock had the panic leaked the read lock).
	if ids := queryIDs(t, ix, "/purchase/seller/location"); len(ids) != 1 {
		t.Fatalf("post-panic query returned %v", ids)
	}
	insertXML(t, ix, purchaseChicago)
}

// TestQueryAllWorkersClamped: workers <= 0 clamps to GOMAXPROCS and workers
// beyond len(exprs) clamps down; both produce full, correct results.
func TestQueryAllWorkersClamped(t *testing.T) {
	ix := mustMem(t, Options{})
	defer ix.Close()
	insertXML(t, ix, purchaseBoston, purchaseChicago)
	exprs := []string{
		"/purchase/buyer[location='newyork']",
		"/purchase/seller[location='chicago']",
		"/purchase/seller",
	}
	want := []int{1, 1, 2}
	for _, workers := range []int{0, -3, 1, len(exprs) + 97} {
		results := ix.QueryAll(exprs, workers)
		if len(results) != len(exprs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), len(exprs))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d: expr %q failed: %v", workers, exprs[i], r.Err)
			}
			if r.Expr != exprs[i] {
				t.Fatalf("workers=%d: result %d is for %q, want %q", workers, i, r.Expr, exprs[i])
			}
			if len(r.IDs) != want[i] {
				t.Fatalf("workers=%d: expr %q returned %v, want %d docs", workers, exprs[i], r.IDs, want[i])
			}
		}
	}
}

// TestQueryAllCtxCancelNoGoroutineLeak: cancelling a batch mid-flight marks
// undispatched slots ErrCanceled, always returns results for every slot, and
// leaks no goroutines (asserted by count; run under -race in CI).
func TestQueryAllCtxCancelNoGoroutineLeak(t *testing.T) {
	ix := buildAdversarialIndex(t)
	defer ix.Close()

	before := runtime.NumGoroutine()

	exprs := make([]string, 64)
	for i := range exprs {
		exprs[i] = adversarialQuery
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	results := ix.QueryAllCtx(ctx, exprs, 4, Budget{})
	if len(results) != len(exprs) {
		t.Fatalf("%d results, want %d", len(results), len(exprs))
	}
	canceled := 0
	for i, r := range results {
		if r.Expr != exprs[i] {
			t.Fatalf("slot %d has expr %q", i, r.Expr)
		}
		if r.Err != nil && !errors.Is(r.Err, ErrCanceled) {
			t.Fatalf("slot %d: err = %v, want nil or ErrCanceled", i, r.Err)
		}
		if errors.Is(r.Err, ErrCanceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Skip("batch finished before the cancel on this machine")
	}

	// All workers must have exited; allow the runtime a moment to reap.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}

	// And the index remains usable for a fresh batch.
	fresh := ix.QueryAllCtx(context.Background(), []string{"/purchase/seller"}, 0, Budget{})
	if fresh[0].Err != nil || len(fresh[0].IDs) != 2 {
		t.Fatalf("post-cancel batch: %+v", fresh[0])
	}
}

// TestQueryAllCtxPreCanceled: a dead context fails every slot with
// ErrCanceled without hanging.
func TestQueryAllCtxPreCanceled(t *testing.T) {
	ix := mustMem(t, Options{})
	defer ix.Close()
	insertXML(t, ix, purchaseBoston)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := ix.QueryAllCtx(ctx, []string{"/purchase", "/purchase/seller"}, 2, Budget{})
	for i, r := range results {
		if !errors.Is(r.Err, ErrCanceled) {
			t.Fatalf("slot %d: err = %v, want ErrCanceled", i, r.Err)
		}
	}
}

// TestQueryVerifiedCtxCancel: the verification phase also honors the
// context.
func TestQueryVerifiedCtxCancel(t *testing.T) {
	ix := mustMem(t, Options{})
	defer ix.Close()
	insertXML(t, ix, purchaseBoston, purchaseChicago)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := ix.QueryVerifiedCtx(ctx, "/purchase/seller", Budget{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("QueryVerifiedCtx(dead ctx) err = %v, want ErrCanceled", err)
	}
	// Alive context: verified results unchanged by the new plumbing.
	ids, stats, err := ix.QueryVerifiedCtx(context.Background(), "/purchase/buyer[location='newyork']", Budget{})
	if err != nil || len(ids) != 1 {
		t.Fatalf("QueryVerifiedCtx: ids=%v err=%v", ids, err)
	}
	if stats.PagesRead == 0 {
		t.Fatalf("QueryVerifiedCtx stats not populated: %s", stats)
	}
}
