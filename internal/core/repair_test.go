package core

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"vist/internal/naive"
	"vist/internal/xmltree"
)

// repairStride is the on-disk footprint of one page at PageSize 512 (page
// body plus the CRC trailer), used to aim corruption at page boundaries.
const repairStride = 512 + 8

// buildRepairIndex creates a synced 512-byte-page index at dir holding xmls
// and closes it cleanly, returning the assigned DocIDs.
func buildRepairIndex(t testing.TB, dir string, xmls []string) []DocID {
	t.Helper()
	ix, err := Open(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	ids := insertXML(t, ix, xmls...)
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	return ids
}

// corruptFilePages overwrites bytes in the middle of the given on-disk
// pages, behind any pager's back. Pages past EOF are ignored.
func corruptFilePages(t testing.TB, path string, pages ...int) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		off := int64(p)*repairStride + 19
		if off >= st.Size() {
			continue
		}
		if _, err := f.WriteAt([]byte("xx-bitrot-xx-bitrot-xx"), off); err != nil {
			t.Fatal(err)
		}
	}
}

// filePages reports how many on-disk pages path holds at PageSize 512.
func filePages(t testing.TB, path string) int {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return int(st.Size() / repairStride)
}

// repairDiffExprs are the fixed query shapes the differential oracle runs:
// rooted, descendant, wildcard, and value-predicate paths.
func repairDiffExprs() []string {
	return []string{
		"/r", "/r/a", "/r/a/b", "//b", "/r//c", "//a//b",
		"/r/*", "//*", "//b[text()='x']", "/q/z",
	}
}

// compareRepairedToNaive checks that the repaired index answers every oracle
// query with exactly the naive matcher's result set restricted to documents
// that survived the repair. ids/nIDs are the original parallel ID slices.
func compareRepairedToNaive(t *testing.T, ix *Index, nv *naive.Index, ids []DocID, nIDs []uint64) {
	t.Helper()
	alive := map[int]bool{}
	for i, id := range ids {
		if _, err := ix.Get(id); err == nil {
			alive[i] = true
		}
	}
	for _, expr := range repairDiffExprs() {
		got, err := ix.Query(expr)
		if err != nil {
			t.Fatalf("%s on repaired index: %v", expr, err)
		}
		want, err := nv.Query(expr)
		if err != nil {
			t.Fatalf("%s naive: %v", expr, err)
		}
		gotPos := docPositions(t, got, ids)
		wantPos := []int{}
		for _, p := range docPositionsU(t, want, nIDs) {
			if alive[p] {
				wantPos = append(wantPos, p)
			}
		}
		if !reflect.DeepEqual(gotPos, wantPos) {
			t.Errorf("%s: repaired=%v naive(surviving)=%v", expr, gotPos, wantPos)
		}
	}
}

// naiveOracle inserts xmls into a fresh naive matcher and returns it with
// its assigned IDs (parallel to the core index's).
func naiveOracle(t testing.TB, xmls []string) (*naive.Index, []uint64) {
	t.Helper()
	nv := naive.New(nil)
	nIDs := make([]uint64, len(xmls))
	for i, x := range xmls {
		n, err := xmltree.ParseString(x)
		if err != nil {
			t.Fatal(err)
		}
		nIDs[i] = nv.Insert(n)
	}
	return nv, nIDs
}

// TestRepairDifferential: with the derived trees (nodes, docs) corrupted —
// including their meta pages — but the document store intact, Repair
// rebuilds a fully consistent index whose query results match the naive
// Algorithm 1 matcher exactly, under the original DocIDs.
func TestRepairDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xmls := randomDiffXML(rng, 40)
	dir := filepath.Join(t.TempDir(), "idx")
	ids := buildRepairIndex(t, dir, xmls)
	nv, nIDs := naiveOracle(t, xmls)

	nodes := filepath.Join(dir, "nodes.db")
	np := filePages(t, nodes)
	corruptFilePages(t, nodes, 0, 1, np/3, np/2, np-1)
	corruptFilePages(t, filepath.Join(dir, "docs.db"), 1)

	rep, err := Repair(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if rep.DocsSalvaged != len(xmls) || len(rep.DocsLost) != 0 {
		t.Fatalf("store was intact, yet salvaged=%d lost=%v of %d docs",
			rep.DocsSalvaged, rep.DocsLost, len(xmls))
	}
	if _, err := os.Stat(rep.BackupDir); err != nil {
		t.Fatalf("pre-repair backup missing: %v", err)
	}

	frep, err := Fsck(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatalf("fsck after repair: %v", err)
	}
	if !frep.Ok() {
		t.Fatalf("repaired index fails fsck: corrupt=%v structure=%v unreadable=%v",
			frep.Scrub.Corrupt, frep.Structure.Problems, frep.Unreadable)
	}

	ix, err := Open(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	compareRepairedToNaive(t, ix, nv, ids, nIDs)
}

// TestRepairPreservesDocIDs: documents keep their original IDs across a
// repair — including around deletion gaps — and the next insert continues
// past the highest salvaged ID rather than reusing one.
func TestRepairPreservesDocIDs(t *testing.T) {
	xmls := make([]string, 12)
	for i := range xmls {
		xmls[i] = crashDoc(i)
	}
	dir := filepath.Join(t.TempDir(), "idx")

	ix, err := Open(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	ids := insertXML(t, ix, xmls...)
	for _, j := range []int{3, 7} {
		if err := ix.Delete(ids[j]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Repair(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if rep.DocsSalvaged != 10 {
		t.Fatalf("salvaged %d docs, want the 10 not deleted", rep.DocsSalvaged)
	}

	ix2, err := Open(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	for j, id := range ids {
		_, err := ix2.Get(id)
		if j == 3 || j == 7 {
			if !errors.Is(err, ErrDocNotFound) {
				t.Fatalf("deleted doc %d resurrected by repair: err=%v", id, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("Get(%d) after repair: %v", id, err)
		}
	}
	doc, _ := xmltree.ParseString(crashDoc(100))
	newID, err := ix2.Insert(doc)
	if err != nil {
		t.Fatal(err)
	}
	if newID <= ids[len(ids)-1] {
		t.Fatalf("post-repair insert got ID %d, must exceed salvaged max %d", newID, ids[len(ids)-1])
	}
}

// TestRepairLossyStore: corruption inside the document store itself makes
// the repair lossy, never fatal — surviving documents come back in a
// consistent, fully queryable index, and the damage is reported.
func TestRepairLossyStore(t *testing.T) {
	xmls := make([]string, 40)
	for i := range xmls {
		xmls[i] = crashDoc(i)
	}
	dir := filepath.Join(t.TempDir(), "idx")
	buildRepairIndex(t, dir, xmls)

	// Pages 2..8 of the store: past the meta page, across early leaves.
	corruptFilePages(t, filepath.Join(dir, "store.db"), 2, 3, 4, 5, 6, 7, 8)

	rep, err := Repair(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatalf("lossy repair must still succeed: %v", err)
	}
	if rep.DocsSalvaged >= len(xmls) {
		t.Fatalf("salvaged %d of %d docs despite 7 corrupted store pages", rep.DocsSalvaged, len(xmls))
	}
	if rep.SkippedSubtrees == 0 && len(rep.DocsLost) == 0 {
		t.Fatal("lossy repair reported no skipped subtrees and no lost docs")
	}

	ix, err := Open(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	crep, err := ix.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !crep.Ok() {
		t.Fatalf("repaired index inconsistent: %v", crep.Problems)
	}
	got, err := ix.Query("/purchase/seller")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != rep.DocsSalvaged {
		t.Fatalf("query sees %d docs, repair salvaged %d", len(got), rep.DocsSalvaged)
	}
}

// FuzzRepair corrupts a fuzzer-chosen set of pages across all four tree
// files, runs Repair, and requires (a) no panic, (b) a consistent repaired
// index, and (c) query results equal to the naive matcher on every
// surviving document. The store meta page is spared: its loss is the
// documented total-loss error, not an interesting path.
func FuzzRepair(f *testing.F) {
	f.Add(uint64(1), uint64(0x5555))
	f.Add(uint64(7), uint64(0))
	f.Add(uint64(13), uint64(0xffffffff))
	f.Add(uint64(99), uint64(1)<<63|0xf0f0)
	f.Fuzz(func(t *testing.T, seed, mask uint64) {
		rng := rand.New(rand.NewSource(int64(seed)))
		xmls := randomDiffXML(rng, 12+int(seed%8))
		dir := filepath.Join(t.TempDir(), "idx")
		ids := buildRepairIndex(t, dir, xmls)
		nv, nIDs := naiveOracle(t, xmls)

		bit := uint(0)
		for _, name := range indexFileNames {
			path := filepath.Join(dir, name)
			n := filePages(t, path)
			for p := 0; p < n && bit < 64; p++ {
				if name == "store.db" && p == 0 {
					continue
				}
				if mask>>bit&1 == 1 {
					corruptFilePages(t, path, p)
				}
				bit++
			}
		}

		rep, err := Repair(dir, Options{PageSize: 512})
		if err != nil {
			t.Fatalf("repair must contain damage, not fail: %v", err)
		}
		ix, err := Open(dir, Options{PageSize: 512})
		if err != nil {
			t.Fatalf("repaired index unopenable: %v", err)
		}
		defer ix.Close()
		crep, err := ix.Check()
		if err != nil {
			t.Fatalf("Check on repaired index: %v", err)
		}
		if !crep.Ok() {
			t.Fatalf("repaired index inconsistent (salvaged=%d lost=%v): %v",
				rep.DocsSalvaged, rep.DocsLost, crep.Problems)
		}
		compareRepairedToNaive(t, ix, nv, ids, nIDs)
	})
}
