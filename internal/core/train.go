package core

import (
	"vist/internal/labeling"
	"vist/internal/seq"
	"vist/internal/xmltree"
)

// Training bundles labeling statistics with the dictionary they are keyed
// by. Statistics refer to elements by (symbol, prefix) keys, and symbols
// are dictionary-assigned, so an index built with statistics must start
// from the same dictionary the training pass used. Build one with Train and
// pass it to Options.Training when creating an index.
type Training struct {
	Stats *labeling.Stats
	Dict  *seq.Dict
}

// Train collects follow-set statistics (Section 3.4.1, "Semantic and
// Statistical Clues") from a sample of documents. The samples are
// normalized with the given schema order — pass the same schema to
// Options.Schema. The documents are modified in place (normalized).
func Train(docs []*xmltree.Node, schema []string) *Training {
	var sc *xmltree.Schema
	if len(schema) > 0 {
		sc = xmltree.NewSchema(schema...)
	}
	d := seq.NewDict()
	st := labeling.NewStats()
	for _, doc := range docs {
		xmltree.Normalize(doc, sc)
		st.AddSequence(seq.Encode(doc, d))
	}
	st.Finalize()
	return &Training{Stats: st, Dict: d}
}
