package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"vist/internal/keyenc"
	"vist/internal/seq"
)

// Sentinel errors for bounded query execution. Both are reported wrapped in
// a *QueryError carrying the query text and partial-progress QueryStats;
// test with errors.Is.
var (
	// ErrCanceled reports that a query stopped because its context was
	// canceled or its deadline expired. The underlying context error is
	// also in the wrap chain, so errors.Is(err, context.DeadlineExceeded)
	// distinguishes timeouts from explicit cancellation.
	ErrCanceled = errors.New("core: query canceled")
	// ErrBudgetExceeded reports that a query performed more work than its
	// Budget allows.
	ErrBudgetExceeded = errors.New("core: query budget exceeded")
	// ErrQueryPanic reports that query execution panicked; the panic was
	// contained and converted into an error so one bad page or logic bug
	// degrades a single request instead of the whole process.
	ErrQueryPanic = errors.New("core: query execution panicked")
)

// Budget caps the work a single query execution may perform. The zero value
// imposes no limits; each field <= 0 means "unlimited" for that dimension.
// When the index also carries an Options.DefaultBudget, the effective limit
// per field is the stricter of the two (the smaller positive value), so an
// index-wide budget is a ceiling a per-call budget can tighten but not
// raise.
type Budget struct {
	// MaxPages caps B+Tree pages fetched on the query's behalf (descents
	// and leaf-chain walks in the node and DocId trees). Pages are also
	// where cancellation is polled, so this is the unit of the checkpoint
	// interval.
	MaxPages int
	// MaxRangeScans caps D-Ancestor/S-Ancestor range queries issued — the
	// quantity that explodes on '//'-heavy queries (each '//' step becomes
	// one range scan per candidate prefix length per partial match).
	MaxRangeScans int
	// MaxNodesVisited caps index entries entered as partial-match states.
	MaxNodesVisited int
	// MaxResults caps distinct candidate documents collected.
	MaxResults int
}

// merge returns the field-wise stricter of b and d.
func (b Budget) merge(d Budget) Budget {
	return Budget{
		MaxPages:        stricter(b.MaxPages, d.MaxPages),
		MaxRangeScans:   stricter(b.MaxRangeScans, d.MaxRangeScans),
		MaxNodesVisited: stricter(b.MaxNodesVisited, d.MaxNodesVisited),
		MaxResults:      stricter(b.MaxResults, d.MaxResults),
	}
}

func stricter(a, b int) int {
	switch {
	case a <= 0:
		return b
	case b <= 0:
		return a
	case a < b:
		return a
	default:
		return b
	}
}

// QueryError is the error type for queries stopped early — by cancellation,
// by budget exhaustion, or by a contained panic. It records how far the
// query got, so operators can tell a query that died instantly from one
// that burned its whole budget.
type QueryError struct {
	// Expr is the query text (Query.Raw for pre-parsed queries).
	Expr string
	// Stats is the work performed up to the stop, including any partial
	// candidate count.
	Stats QueryStats
	// Reason is ErrCanceled, ErrBudgetExceeded, or ErrQueryPanic.
	Reason error
	// Cause details the stop: the context error for cancellations, a
	// description of the exhausted dimension for budgets, the recovered
	// value for panics. May be nil.
	Cause error
	// Stack is the goroutine stack captured at recovery for ErrQueryPanic;
	// nil otherwise.
	Stack []byte
}

func (e *QueryError) Error() string {
	msg := e.Reason.Error()
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return fmt.Sprintf("%s (query %q; %s)", msg, e.Expr, e.Stats.String())
}

// Unwrap exposes both the sentinel and the underlying cause to errors.Is.
func (e *QueryError) Unwrap() []error {
	if e.Cause != nil {
		return []error{e.Reason, e.Cause}
	}
	return []error{e.Reason}
}

// qctx carries one query execution's context, effective budget, and running
// counters. It is used by a single goroutine; queries never share one.
type qctx struct {
	ctx   context.Context
	b     Budget
	expr  string
	stats QueryStats
	hook  func() error // onPage callback handed to B+Tree scans
	timed bool         // collect StageTimings (off with DisableMetrics)
	snap  *snapshot    // pinned index version every read resolves against

	// Per-stage samplers for the hot loops (B+Tree seeks, DocId scans).
	probeSmp, scanSmp, collectSmp stageSampler

	// Scratch for decoding fixed-format D-Ancestor keys in scan loops; reused
	// across every key one query visits so the hot sweep allocates nothing
	// per key. prefixBuf is handed to scan callbacks, which copy it if they
	// keep it (documented on scanCandidates).
	symBuf    []uint32
	prefixBuf []seq.Symbol
}

// prefixOf decodes the plen-symbol prefix from a fixed-format D-Ancestor key
// into the query's scratch buffers. The returned slice is valid until the
// next prefixOf call on this qctx.
func (qc *qctx) prefixOf(da []byte, plen int) ([]seq.Symbol, error) {
	if len(da) != 6+4*plen {
		return nil, fmt.Errorf("core: D-Ancestor key has %d bytes, want %d for prefix length %d", len(da), 6+4*plen, plen)
	}
	var err error
	qc.symBuf, _, err = keyenc.AppendSymbolsInto(qc.symBuf[:0], da[6:], plen)
	if err != nil {
		return nil, err
	}
	if cap(qc.prefixBuf) < plen {
		qc.prefixBuf = make([]seq.Symbol, plen)
	}
	p := qc.prefixBuf[:plen]
	for i, s := range qc.symBuf {
		p[i] = seq.Symbol(s)
	}
	return p, nil
}

// Stage-timing sampling parameters: the first sampleExact events of a stage
// are timed individually; after that only one in sampleStride is timed and
// its duration scaled by the stride. Small queries get exact stage times;
// large ones get an estimate whose clock-read cost stays ~1/16th of naive
// per-event timing — two clock reads per event would otherwise double the
// cost of cache-hot seeks (~100ns each, about one clock read).
const (
	sampleExact  = 32
	sampleStride = 16
)

// stageSampler decides which events of one stage to time. Zero value ready;
// used by a single goroutine.
type stageSampler struct {
	n      uint32 // events seen
	timing bool   // current event is being timed
	t0     time.Time
}

// begin marks the start of one event, reading the clock only for sampled
// events.
func (s *stageSampler) begin() {
	n := s.n
	s.n++
	if n < sampleExact || (n-sampleExact)%sampleStride == 0 {
		s.timing = true
		s.t0 = time.Now()
	} else {
		s.timing = false
	}
}

// end accumulates the current event's duration into acc if it was sampled,
// scaling post-warmup samples by the stride.
func (s *stageSampler) end(acc *time.Duration) {
	if !s.timing {
		return
	}
	d := time.Since(s.t0)
	if s.n > sampleExact {
		d *= sampleStride
	}
	*acc += d
}

// newQctx builds the execution state for one query, merging the caller's
// budget with the index default.
func (ix *Index) newQctx(ctx context.Context, expr string, b Budget) *qctx {
	qc := &qctx{ctx: ctx, b: b.merge(ix.opts.DefaultBudget), expr: expr, timed: ix.reg != nil}
	qc.hook = qc.onPage
	return qc
}

// queryContext applies the index's default timeout to contexts that carry no
// deadline of their own. The returned cancel func must be called to release
// the timer.
func (ix *Index) queryContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if ix.opts.DefaultQueryTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			return context.WithTimeout(ctx, ix.opts.DefaultQueryTimeout)
		}
	}
	return ctx, func() {}
}

// fail wraps a stop reason with the query text and partial-progress stats.
func (qc *qctx) fail(reason, cause error) error {
	return &QueryError{Expr: qc.expr, Stats: qc.stats, Reason: reason, Cause: cause}
}

// checkCtx is a cancellation checkpoint.
func (qc *qctx) checkCtx() error {
	if err := qc.ctx.Err(); err != nil {
		return qc.fail(ErrCanceled, err)
	}
	return nil
}

// noteRangeScan accounts one issued D-Ancestor/S-Ancestor range scan against
// the budget and polls cancellation. The scan primitives call it at issue
// time — one count per key-range sweep (fixed format) or per D-Ancestor
// group scan (interned format) — so candidate prefix lengths the synopsis
// proves empty cost no budget: no scan is issued for them.
func (qc *qctx) noteRangeScan() error {
	qc.stats.RangeScans++
	if qc.b.MaxRangeScans > 0 && qc.stats.RangeScans > qc.b.MaxRangeScans {
		return qc.fail(ErrBudgetExceeded, fmt.Errorf("range-scan budget %d exhausted", qc.b.MaxRangeScans))
	}
	return qc.checkCtx()
}

// onPage is invoked by the B+Tree once per page fetched for this query: it
// accounts the page against the budget and polls for cancellation, bounding
// the checkpoint interval by the work of visiting one page.
func (qc *qctx) onPage() error {
	qc.stats.PagesRead++
	if qc.b.MaxPages > 0 && qc.stats.PagesRead > qc.b.MaxPages {
		return qc.fail(ErrBudgetExceeded, fmt.Errorf("page budget %d exhausted", qc.b.MaxPages))
	}
	return qc.checkCtx()
}

// contained runs f, converting a panic into a *QueryError (ErrQueryPanic)
// carrying the query text, partial stats, and the goroutine stack. Deferred
// unlocks in the enclosing frames still run, so a contained panic degrades
// only the one request.
func (qc *qctx) contained(f func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			qe := &QueryError{
				Expr:   qc.expr,
				Stats:  qc.stats,
				Reason: ErrQueryPanic,
				Cause:  fmt.Errorf("panic: %v", p),
				Stack:  debug.Stack(),
			}
			err = qe
		}
	}()
	return f()
}
