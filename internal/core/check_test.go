package core

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCheckHealthyIndex(t *testing.T) {
	ix := mustMem(t, Options{})
	insertXML(t, ix, purchaseBoston, purchaseChicago, purchaseBoston)
	rep, err := ix.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("healthy index failed check: %v", rep.Problems)
	}
	if rep.Docs != 3 || rep.Nodes == 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestCheckAfterChurn(t *testing.T) {
	// Insert/delete churn (including underflow-borrowed chains) must keep
	// every invariant intact.
	ix := mustMem(t, Options{Lambda: 1 << 16, ReserveDen: 4})
	rng := rand.New(rand.NewSource(31))
	var live []DocID
	for op := 0; op < 300; op++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			if err := ix.Delete(live[i]); err != nil {
				t.Fatalf("op %d delete: %v", op, err)
			}
			live = append(live[:i], live[i+1:]...)
			continue
		}
		doc := randomRecords(rng, 1)[0]
		ids := insertXML(t, ix, doc)
		live = append(live, ids[0])
	}
	rep, err := ix.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("index failed check after churn: %v", rep.Problems[:min(5, len(rep.Problems))])
	}
	if rep.Docs != len(live) {
		t.Fatalf("report docs = %d, live = %d", rep.Docs, len(live))
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	ix := mustMem(t, Options{})
	insertXML(t, ix, purchaseBoston)
	// Corrupt one node record: blow up its refcount.
	var key, val []byte
	err := ix.nodes.Scan(nil, nil, func(k, v []byte) (bool, error) {
		key = append([]byte(nil), k...)
		val = append([]byte(nil), v...)
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, n, err := ix.kc.splitNodeKey(key)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ix.kc.decodeRecord(n, val)
	if err != nil {
		t.Fatal(err)
	}
	rec.refcount = 99
	if err := ix.nodes.Put(key, ix.kc.encodeRecord(n, rec)); err != nil {
		t.Fatal(err)
	}
	rep, err := ix.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("corrupted refcount not detected")
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "refcount") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no refcount problem in %v", rep.Problems)
	}
}

func TestCheckDetectsDanglingDoc(t *testing.T) {
	ix := mustMem(t, Options{})
	insertXML(t, ix, purchaseBoston)
	// Add a DocId entry pointing at a nonexistent label.
	if err := ix.docs.Put(docKey(424242, 99), nil); err != nil {
		t.Fatal(err)
	}
	rep, err := ix.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("dangling DocId entry not detected")
	}
}

func TestQueryWithStats(t *testing.T) {
	ix := mustMem(t, Options{})
	ids := insertXML(t, ix, purchaseBoston, purchaseChicago)
	gotIDs, stats, err := ix.QueryWithStats("/purchase/seller/item")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotIDs) != len(ids) {
		t.Fatalf("ids = %v", gotIDs)
	}
	if stats.Sequences != 1 {
		t.Fatalf("Sequences = %d", stats.Sequences)
	}
	if stats.Candidates != 2 || stats.NodesVisited == 0 || stats.RangeScans == 0 || stats.DocScans == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.String() == "" {
		t.Fatal("empty stats string")
	}

	// A '//' query must issue more range scans (one per candidate prefix
	// length) than the equivalent exact path.
	_, exact, err := ix.QueryWithStats("/purchase/seller/item")
	if err != nil {
		t.Fatal(err)
	}
	_, desc, err := ix.QueryWithStats("//item")
	if err != nil {
		t.Fatal(err)
	}
	if desc.RangeScans <= exact.RangeScans {
		t.Fatalf("descendant query issued %d scans, exact %d", desc.RangeScans, exact.RangeScans)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
