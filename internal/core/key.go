// Package core implements the ViST index — the paper's primary
// contribution (Section 3.4): a unified structure+content XML index in
// which structure-encoded sequences are inserted into a *virtual* suffix
// tree whose nodes are labeled dynamically with nested scopes, and queries
// are answered by non-contiguous subsequence matching over two B+Trees:
//
//   - the combined D-Ancestor/S-Ancestor tree, keyed by
//     (symbol, len(prefix), prefix, n) so that a (symbol, prefix) pair
//     identifies an S-Ancestor sub-range and wildcard prefixes become key
//     ranges;
//   - the DocId tree, keyed by (n, docID).
//
// A third tree stores the documents themselves (for retrieval, deletion,
// and the optional verification phase), and a fourth stores auxiliary blobs
// (symbol dictionary, labeling statistics, index metadata).
package core

import (
	"encoding/binary"
	"fmt"

	"vist/internal/keyenc"
	"vist/internal/seq"
)

// DocID identifies a document within an index.
type DocID uint64

// MaxDepth bounds document and query tree depth. It keeps D-Ancestor keys
// comfortably within B+Tree key limits (the paper bounds sequence length by
// splitting large structures into sub-structures; Section 3.4.1).
const MaxDepth = 64

// Key formats for the combined D/S-Ancestor tree. The format is a property
// of the index file, fixed at creation and recorded in the metadata version;
// one index never mixes formats.
const (
	// keyFmtFixed is the paper-literal layout: the prefix is spelled out as
	// fixed-width symbols, ordered (symbol, len(prefix), prefix content), so
	// wildcard prefixes are key-range scans (Section 3.3).
	keyFmtFixed = 1
	// keyFmtInterned compacts the prefix to a PathDict ID:
	//
	//	symbol(4) ‖ uvarint(pathID) ‖ n(8)
	//
	// Distinct prefixes number in the hundreds while keys number in the
	// millions, so interning removes the dominant key cost. Uvarints are
	// prefix-free, so [da, PrefixSuccessor(da)) still bounds exactly one
	// (symbol, prefix) group and the per-group label-range scans
	// (findChild, chainScan, scanGroup) are unchanged; only the wildcard
	// sweep over the key range is replaced by synopsis-driven enumeration
	// of the concrete prefixes that exist (Synopsis.EachHosting).
	keyFmtInterned = 2
)

// keyCodec encodes and decodes node keys and records for one index's key
// format. The zero value is invalid; initIndex builds it after the format
// is known. It is immutable after construction (the PathDict it may hold is
// internally synchronized), so queries use it lock-free.
type keyCodec struct {
	fmtV byte
	pd   *PathDict // non-nil iff fmtV == keyFmtInterned
}

// daKeyW encodes the D-Ancestor part of a key on the write path, interning
// the prefix on first use under the interned format. Callers hold the
// exclusive index lock.
func (kc keyCodec) daKeyW(sym seq.Symbol, prefix []seq.Symbol) []byte {
	if kc.fmtV == keyFmtFixed {
		return daKey(sym, prefix)
	}
	b := make([]byte, 0, 4+binary.MaxVarintLen32+8)
	b = keyenc.AppendUint32(b, uint32(sym))
	return binary.AppendUvarint(b, uint64(kc.pd.Intern(prefix)))
}

// daKeyQ encodes the D-Ancestor part of a key on the query path. ok is
// false when the prefix was never interned — then no index node can carry
// it and the group provably does not exist.
func (kc keyCodec) daKeyQ(sym seq.Symbol, prefix []seq.Symbol) ([]byte, bool) {
	if kc.fmtV == keyFmtFixed {
		return daKey(sym, prefix), true
	}
	id, ok := kc.pd.Lookup(prefix)
	if !ok {
		return nil, false
	}
	b := make([]byte, 0, 4+binary.MaxVarintLen32+8)
	b = keyenc.AppendUint32(b, uint32(sym))
	return binary.AppendUvarint(b, uint64(id)), true
}

// parseDAKey decodes symbol and prefix from a D-Ancestor key part. Under
// the interned format the prefix resolves through the dictionary and the
// returned slice is shared — callers must not modify it.
func (kc keyCodec) parseDAKey(da []byte) (seq.Symbol, []seq.Symbol, error) {
	if kc.fmtV == keyFmtFixed {
		return parseDAKey(da)
	}
	s, rest, err := keyenc.Uint32(da)
	if err != nil {
		return 0, nil, err
	}
	id, n := binary.Uvarint(rest)
	if n <= 0 || n != len(rest) {
		return 0, nil, fmt.Errorf("core: malformed interned D-Ancestor key (%d bytes)", len(da))
	}
	if id > uint64(^uint32(0)) {
		return 0, nil, fmt.Errorf("core: path ID %d out of range", id)
	}
	p, ok := kc.pd.Path(uint32(id))
	if !ok {
		return 0, nil, fmt.Errorf("core: path ID %d not in dictionary (%d entries)", id, kc.pd.Len())
	}
	return seq.Symbol(s), p, nil
}

// splitNodeKey separates a combined key into its D-Ancestor part and label.
func (kc keyCodec) splitNodeKey(key []byte) (da []byte, n uint64, err error) {
	min := 14 // 4+2+8
	if kc.fmtV == keyFmtInterned {
		min = 13 // 4+1+8
	}
	if len(key) < min {
		return nil, 0, fmt.Errorf("core: node key too short (%d bytes)", len(key))
	}
	return key[:len(key)-8], binary.BigEndian.Uint64(key[len(key)-8:]), nil
}

// daKey encodes the fixed-format D-Ancestor part of a node key:
//
//	symbol(4) ‖ len(prefix)(2) ‖ prefix[0](4) ‖ … ‖ prefix[plen-1](4)
//
// The paper prescribes exactly this ordering: "the key of the D-Ancestor
// B+Tree is ordered first by the Symbol, then by the length of the Prefix,
// and lastly by the content of the Prefix", which turns '*' and '//'
// prefixes into range scans.
func daKey(sym seq.Symbol, prefix []seq.Symbol) []byte {
	b := make([]byte, 0, 6+4*len(prefix)+8)
	b = keyenc.AppendUint32(b, uint32(sym))
	b = keyenc.AppendUint16(b, uint16(len(prefix)))
	for _, p := range prefix {
		b = keyenc.AppendUint32(b, uint32(p))
	}
	return b
}

// daPartial encodes the beginning of a D-Ancestor key for a wildcard range:
// the symbol, an exact prefix length, and only the first len(base) known
// prefix symbols. All keys with plen-length prefixes starting with base
// fall in [daPartial, PrefixSuccessor(daPartial)).
func daPartial(sym seq.Symbol, plen int, base []seq.Symbol) []byte {
	b := make([]byte, 0, 6+4*len(base))
	b = keyenc.AppendUint32(b, uint32(sym))
	b = keyenc.AppendUint16(b, uint16(plen))
	for _, p := range base {
		b = keyenc.AppendUint32(b, uint32(p))
	}
	return b
}

// nodeKey is a full combined-tree key: daKey ‖ n.
func nodeKey(da []byte, n uint64) []byte {
	return keyenc.AppendUint64(append([]byte(nil), da...), n)
}

// splitNodeKey separates a combined key into its D-Ancestor part and label.
func splitNodeKey(key []byte) (da []byte, n uint64, err error) {
	if len(key) < 14 { // 4+2+8 minimum
		return nil, 0, fmt.Errorf("core: node key too short (%d bytes)", len(key))
	}
	da = key[:len(key)-8]
	n = binary.BigEndian.Uint64(key[len(key)-8:])
	return da, n, nil
}

// parseDAKey decodes symbol and prefix from a D-Ancestor key part.
func parseDAKey(da []byte) (sym seq.Symbol, prefix []seq.Symbol, err error) {
	s, rest, err := keyenc.Uint32(da)
	if err != nil {
		return 0, nil, err
	}
	plen, rest, err := keyenc.Uint16(rest)
	if err != nil {
		return 0, nil, err
	}
	raw, rest, err := keyenc.Symbols(rest, int(plen))
	if err != nil {
		return 0, nil, err
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("core: %d trailing bytes in D-Ancestor key", len(rest))
	}
	prefix = make([]seq.Symbol, plen)
	for i, v := range raw {
		prefix[i] = seq.Symbol(v)
	}
	return seq.Symbol(s), prefix, nil
}

// docKey encodes a DocId-tree key: n ‖ docID.
func docKey(n uint64, id DocID) []byte {
	b := make([]byte, 0, 16)
	b = keyenc.AppendUint64(b, n)
	b = keyenc.AppendUint64(b, uint64(id))
	return b
}

// parseDocKey decodes a DocId-tree key.
func parseDocKey(key []byte) (n uint64, id DocID, err error) {
	if len(key) != 16 {
		return 0, 0, fmt.Errorf("core: doc key has %d bytes, want 16", len(key))
	}
	return binary.BigEndian.Uint64(key[:8]), DocID(binary.BigEndian.Uint64(key[8:])), nil
}

// storeKey encodes a document-store key: docID ‖ chunk.
func storeKey(id DocID, chunk uint32) []byte {
	b := make([]byte, 0, 12)
	b = keyenc.AppendUint64(b, uint64(id))
	b = keyenc.AppendUint32(b, chunk)
	return b
}
