// Package core implements the ViST index — the paper's primary
// contribution (Section 3.4): a unified structure+content XML index in
// which structure-encoded sequences are inserted into a *virtual* suffix
// tree whose nodes are labeled dynamically with nested scopes, and queries
// are answered by non-contiguous subsequence matching over two B+Trees:
//
//   - the combined D-Ancestor/S-Ancestor tree, keyed by
//     (symbol, len(prefix), prefix, n) so that a (symbol, prefix) pair
//     identifies an S-Ancestor sub-range and wildcard prefixes become key
//     ranges;
//   - the DocId tree, keyed by (n, docID).
//
// A third tree stores the documents themselves (for retrieval, deletion,
// and the optional verification phase), and a fourth stores auxiliary blobs
// (symbol dictionary, labeling statistics, index metadata).
package core

import (
	"encoding/binary"
	"fmt"

	"vist/internal/keyenc"
	"vist/internal/seq"
)

// DocID identifies a document within an index.
type DocID uint64

// MaxDepth bounds document and query tree depth. It keeps D-Ancestor keys
// comfortably within B+Tree key limits (the paper bounds sequence length by
// splitting large structures into sub-structures; Section 3.4.1).
const MaxDepth = 64

// daKey encodes the D-Ancestor part of a node key:
//
//	symbol(4) ‖ len(prefix)(2) ‖ prefix[0](4) ‖ … ‖ prefix[plen-1](4)
//
// The paper prescribes exactly this ordering: "the key of the D-Ancestor
// B+Tree is ordered first by the Symbol, then by the length of the Prefix,
// and lastly by the content of the Prefix", which turns '*' and '//'
// prefixes into range scans.
func daKey(sym seq.Symbol, prefix []seq.Symbol) []byte {
	b := make([]byte, 0, 6+4*len(prefix)+8)
	b = keyenc.AppendUint32(b, uint32(sym))
	b = keyenc.AppendUint16(b, uint16(len(prefix)))
	for _, p := range prefix {
		b = keyenc.AppendUint32(b, uint32(p))
	}
	return b
}

// daPartial encodes the beginning of a D-Ancestor key for a wildcard range:
// the symbol, an exact prefix length, and only the first len(base) known
// prefix symbols. All keys with plen-length prefixes starting with base
// fall in [daPartial, PrefixSuccessor(daPartial)).
func daPartial(sym seq.Symbol, plen int, base []seq.Symbol) []byte {
	b := make([]byte, 0, 6+4*len(base))
	b = keyenc.AppendUint32(b, uint32(sym))
	b = keyenc.AppendUint16(b, uint16(plen))
	for _, p := range base {
		b = keyenc.AppendUint32(b, uint32(p))
	}
	return b
}

// nodeKey is a full combined-tree key: daKey ‖ n.
func nodeKey(da []byte, n uint64) []byte {
	return keyenc.AppendUint64(append([]byte(nil), da...), n)
}

// splitNodeKey separates a combined key into its D-Ancestor part and label.
func splitNodeKey(key []byte) (da []byte, n uint64, err error) {
	if len(key) < 14 { // 4+2+8 minimum
		return nil, 0, fmt.Errorf("core: node key too short (%d bytes)", len(key))
	}
	da = key[:len(key)-8]
	n = binary.BigEndian.Uint64(key[len(key)-8:])
	return da, n, nil
}

// parseDAKey decodes symbol and prefix from a D-Ancestor key part.
func parseDAKey(da []byte) (sym seq.Symbol, prefix []seq.Symbol, err error) {
	s, rest, err := keyenc.Uint32(da)
	if err != nil {
		return 0, nil, err
	}
	plen, rest, err := keyenc.Uint16(rest)
	if err != nil {
		return 0, nil, err
	}
	raw, rest, err := keyenc.Symbols(rest, int(plen))
	if err != nil {
		return 0, nil, err
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("core: %d trailing bytes in D-Ancestor key", len(rest))
	}
	prefix = make([]seq.Symbol, plen)
	for i, v := range raw {
		prefix[i] = seq.Symbol(v)
	}
	return seq.Symbol(s), prefix, nil
}

// docKey encodes a DocId-tree key: n ‖ docID.
func docKey(n uint64, id DocID) []byte {
	b := make([]byte, 0, 16)
	b = keyenc.AppendUint64(b, n)
	b = keyenc.AppendUint64(b, uint64(id))
	return b
}

// parseDocKey decodes a DocId-tree key.
func parseDocKey(key []byte) (n uint64, id DocID, err error) {
	if len(key) != 16 {
		return 0, 0, fmt.Errorf("core: doc key has %d bytes, want 16", len(key))
	}
	return binary.BigEndian.Uint64(key[:8]), DocID(binary.BigEndian.Uint64(key[8:])), nil
}

// storeKey encodes a document-store key: docID ‖ chunk.
func storeKey(id DocID, chunk uint32) []byte {
	b := make([]byte, 0, 12)
	b = keyenc.AppendUint64(b, uint64(id))
	b = keyenc.AppendUint32(b, chunk)
	return b
}
