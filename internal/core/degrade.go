package core

import (
	"errors"
	"fmt"
	"time"

	"vist/internal/btree"
)

// ErrReadOnly reports that the index has flipped into sticky read-only
// degradation: a write-path failure (ENOSPC, EIO, detected corruption, or a
// structural invariant violation) rolled back and froze mutations. Queries
// keep serving the last published snapshot; Insert, Delete, Sync, and the
// Bulk* loaders fail fast wrapping this sentinel until Heal succeeds or the
// index is reopened. Test with errors.Is(err, ErrReadOnly); the root cause
// is reachable through errors.Is/As on the same error.
var ErrReadOnly = errors.New("core: index is read-only (degraded)")

// ErrScopeExhausted reports that an insertion ran out of label space: no
// ancestor reserve could hold the document's remaining elements. It is a
// capacity limit of the labeling scheme, not a storage failure, so it does
// NOT degrade the index — the insert rolls back and the index stays
// writable for smaller documents.
var ErrScopeExhausted = errors.New("core: scope space exhausted")

// ErrInvariantViolation marks a degradation caused by a detected structural
// invariant violation (scrub or Check found the published state
// inconsistent) rather than an I/O failure. Heal refuses to clear such a
// degradation until a full Check passes; vist fsck -repair is the intended
// recovery.
var ErrInvariantViolation = errors.New("core: structural invariant violation")

// DegradedError is the sticky degradation record: the failing operation,
// the root cause, and when it happened. It satisfies
// errors.Is(err, ErrReadOnly) and unwraps to the cause.
type DegradedError struct {
	// Op names the operation that failed ("insert", "delete", "sync",
	// "auto-checkpoint", "scrub").
	Op string
	// Cause is the root failure that triggered degradation.
	Cause error
	// At is when the index degraded.
	At time.Time
}

// Error implements error.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("core: index is read-only (degraded during %s at %s): %v",
		e.Op, e.At.UTC().Format(time.RFC3339), e.Cause)
}

// Is reports ErrReadOnly so callers need only one sentinel test.
func (e *DegradedError) Is(target error) bool { return target == ErrReadOnly }

// Unwrap exposes the root cause to errors.Is/As.
func (e *DegradedError) Unwrap() error { return e.Cause }

// Degraded reports the index's sticky degradation state: nil while healthy,
// otherwise the failure that flipped it read-only. Lock-free; safe from any
// goroutine.
func (ix *Index) Degraded() *DegradedError {
	return ix.degraded.Load()
}

// degrade flips the index read-only. Only the first failure sticks (the
// state is CAS'd from nil), so concurrent failure paths — a writer under
// ix.mu and the lock-free scrubber — record one coherent root cause. The
// rollback that precedes a writer-side degrade already restored the pending
// state to the published version; queries are untouched.
func (ix *Index) degrade(op string, cause error) {
	d := &DegradedError{Op: op, Cause: cause, At: time.Now()}
	if ix.degraded.CompareAndSwap(nil, d) {
		ix.qm.degradations.Inc()
		ix.qm.degradedGauge.Set(1)
	}
}

// failIfDegraded returns the sticky degradation error, if any. Every write
// entry point calls it first so mutations fail fast instead of retrying
// against a broken disk.
func (ix *Index) failIfDegraded() error {
	if d := ix.degraded.Load(); d != nil {
		return d
	}
	return nil
}

// degradeWorthy classifies a write-path error: validation and capacity
// errors that fail before or cleanly around the storage layer leave the
// index healthy; anything else that reached storage (I/O errors, ENOSPC,
// checksum corruption, undecodable records) means the write path can no
// longer be trusted and must degrade.
func degradeWorthy(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, ErrDocNotFound),
		errors.Is(err, ErrScopeExhausted),
		errors.Is(err, ErrReadOnly),
		errors.Is(err, errFrozen):
		return false
	}
	return true
}

// Heal attempts to clear a sticky degradation after the underlying fault is
// fixed (disk space freed, device recovered). It probes the write path with
// a full group commit under the exclusive lock; only a successful probe
// clears the state. A degradation caused by detected corruption or an
// invariant violation additionally requires a clean Check() first — a disk
// that works again does not make a corrupt tree trustworthy (use vist fsck
// -repair for that). Returns nil when the index is healthy afterwards.
func (ix *Index) Heal() error {
	d := ix.degraded.Load()
	if d == nil {
		return nil
	}
	if errors.Is(d.Cause, btree.ErrCorrupt) || errors.Is(d.Cause, ErrInvariantViolation) {
		rep, err := ix.Check()
		if err != nil {
			return fmt.Errorf("core: heal: integrity check failed: %w", err)
		}
		if !rep.Ok() {
			return fmt.Errorf("core: heal refused, index is still inconsistent (%s); rebuild with vist fsck -repair", rep.Problems[0])
		}
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	// Drop write-back errors recorded during the degraded window: the pages
	// they cover are still dirty in the pool (a failed eviction keeps its
	// victim), so the probe below re-flushes them — a fault that persists
	// fails the probe with a fresh error, while a stale record must not.
	for _, p := range ix.pagers {
		_ = p.TakeRecordedError()
	}
	if err := ix.syncLocked(); err != nil {
		return fmt.Errorf("core: heal probe failed, storage still unhealthy: %w", err)
	}
	// Clear exactly the degradation we verified against: if the scrubber
	// degraded the index again concurrently, that newer failure must stick.
	if ix.degraded.CompareAndSwap(d, nil) {
		ix.qm.heals.Inc()
		ix.qm.degradedGauge.Set(0)
	}
	return nil
}
