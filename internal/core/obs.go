package core

import (
	"errors"
	"time"

	"vist/internal/obs"
)

// queryMetrics caches the metric handles the core layer records into. All
// fields are nil when the index was opened with DisableMetrics, and every
// obs metric no-ops on nil, so call sites never branch on "metrics on?".
type queryMetrics struct {
	// Query outcomes. Exactly one of these is bumped per executed query
	// (parse failures count as errors without executing).
	ok, canceled, budget, panics, errors *obs.Counter
	// slow counts queries at or over Options.SlowQueryThreshold.
	slow *obs.Counter

	// latency observes total query wall time; lockWait observes how long
	// queries waited to acquire the shared index lock (contention with
	// writers); the stage histograms mirror QueryStats.Stages.
	latency, lockWait                   *obs.Histogram
	parse, probe, scan, collect, verify *obs.Histogram

	// Plan-cache outcomes: a hit reuses a cached plan whose epoch matches
	// the current write epoch; a miss (re)builds and caches one.
	planHits, planMisses *obs.Counter

	// Mutation-side metrics.
	inserted, deleted *obs.Counter
	insertLatency     *obs.Histogram

	// MVCC state: epochGauge tracks the last published version number;
	// pinnedReaders tracks queries currently pinned to some snapshot.
	epochGauge, pinnedReaders *obs.Gauge

	// Failure containment: degradations counts write-path failures that
	// flipped the index read-only, heals counts successful Heal()s, and
	// degradedGauge is 1 while degraded. autoCheckpoints counts WAL
	// size-triggered group commits (Options.WALMaxBytes).
	degradations, heals, autoCheckpoints *obs.Counter
	degradedGauge                        *obs.Gauge

	// Online scrubber progress and findings (scrub.go).
	scrubPasses, scrubPages, scrubCorrupt, scrubInvariant *obs.Counter
	scrubRunning                                          *obs.Gauge
}

func newQueryMetrics(r *obs.Registry) queryMetrics {
	return queryMetrics{
		ok:            r.Counter("query.ok"),
		canceled:      r.Counter("query.canceled"),
		budget:        r.Counter("query.budget_exceeded"),
		panics:        r.Counter("query.panics"),
		errors:        r.Counter("query.errors"),
		slow:          r.Counter("query.slow"),
		latency:       r.Histogram("query.seconds", obs.DurationBounds),
		lockWait:      r.Histogram("query.lock_wait_seconds", obs.DurationBounds),
		parse:         r.Histogram("query.stage.parse_seconds", obs.DurationBounds),
		probe:         r.Histogram("query.stage.probe_seconds", obs.DurationBounds),
		scan:          r.Histogram("query.stage.scan_seconds", obs.DurationBounds),
		collect:       r.Histogram("query.stage.collect_seconds", obs.DurationBounds),
		verify:        r.Histogram("query.stage.verify_seconds", obs.DurationBounds),
		planHits:      r.Counter("query.plan_cache_hits"),
		planMisses:    r.Counter("query.plan_cache_misses"),
		inserted:      r.Counter("index.docs_inserted"),
		deleted:       r.Counter("index.docs_deleted"),
		insertLatency: r.Histogram("index.insert_seconds", obs.DurationBounds),
		epochGauge:    r.Gauge("index.epoch"),
		pinnedReaders: r.Gauge("index.pinned_readers"),

		degradations:    r.Counter("index.degradations"),
		heals:           r.Counter("index.heals"),
		autoCheckpoints: r.Counter("wal.auto_checkpoints"),
		degradedGauge:   r.Gauge("index.degraded"),

		scrubPasses:    r.Counter("scrub.passes"),
		scrubPages:     r.Counter("scrub.pages_verified"),
		scrubCorrupt:   r.Counter("scrub.corrupt_pages"),
		scrubInvariant: r.Counter("scrub.invariant_violations"),
		scrubRunning:   r.Gauge("scrub.running"),
	}
}

// SlowQuery is the record handed to Options.SlowQueryLog.
type SlowQuery struct {
	// Expr is the query text (Query.Raw for pre-parsed queries).
	Expr string
	// Duration is total wall time: candidate phase plus verification.
	Duration time.Duration
	// Stats is the work performed, including the per-stage breakdown when
	// metrics are enabled.
	Stats QueryStats
	// Err is the query's final error, nil for a slow success.
	Err error
}

// Metrics snapshots the index's metrics registry: cache hit/miss counters
// across the pager and node-cache layers, WAL fsync/checkpoint activity,
// query outcome counters and latency/stage histograms, and insert/delete
// counters. DESIGN.md §9 documents every name. Safe to call from any
// goroutine, concurrently with queries and mutations; the snapshot is
// monitoring-grade, not a serialized cut. Returns an empty snapshot when the
// index was opened with DisableMetrics.
func (ix *Index) Metrics() obs.Snapshot { return ix.reg.Snapshot() }

// MetricsRegistry exposes the live per-index registry (nil when metrics are
// disabled) so callers can publish it — e.g. through expvar — or register
// their own application metrics beside the index's.
func (ix *Index) MetricsRegistry() *obs.Registry { return ix.reg }

// observeQuery finalizes one query execution: it stamps the total wall time
// into the stats, records outcome and latency metrics, and fires the
// slow-query hook. It must run exactly once per executed query, after the
// index locks are released — QueryCtx/QueryParsedCtx call it directly, and
// QueryVerifiedCtx calls it once for both of its phases combined.
func (ix *Index) observeQuery(expr string, start time.Time, stats *QueryStats, err error) {
	total := time.Since(start)
	stats.Stages.Total = total
	switch {
	case err == nil:
		ix.qm.ok.Inc()
	case errors.Is(err, ErrCanceled):
		ix.qm.canceled.Inc()
	case errors.Is(err, ErrBudgetExceeded):
		ix.qm.budget.Inc()
	case errors.Is(err, ErrQueryPanic):
		ix.qm.panics.Inc()
	default:
		ix.qm.errors.Inc()
	}
	ix.qm.latency.ObserveDuration(total)
	observeStage(ix.qm.parse, stats.Stages.Parse)
	observeStage(ix.qm.probe, stats.Stages.Probe)
	observeStage(ix.qm.scan, stats.Stages.Scan)
	observeStage(ix.qm.collect, stats.Stages.Collect)
	observeStage(ix.qm.verify, stats.Stages.Verify)
	if th := ix.opts.SlowQueryThreshold; th > 0 && total >= th {
		ix.qm.slow.Inc()
		if cb := ix.opts.SlowQueryLog; cb != nil {
			cb(SlowQuery{Expr: expr, Duration: total, Stats: *stats, Err: err})
		}
	}
}

// observeStage records a stage duration, skipping stages the query never
// entered so the histograms reflect work done rather than zeros.
func observeStage(h *obs.Histogram, d time.Duration) {
	if d > 0 {
		h.ObserveDuration(d)
	}
}
