package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"vist/internal/naive"
	"vist/internal/query"
	"vist/internal/xmltree"
)

// randomDiffXML generates small documents over a four-name alphabet so that
// random path queries have a real chance of matching, near-missing, and
// straddling multiple prefix lengths (the cases the planner's synopsis
// expansion has to get right).
func randomDiffXML(rng *rand.Rand, n int) []string {
	names := []string{"a", "b", "c", "d"}
	values := []string{"x", "y", "z"}
	var build func(depth int) string
	build = func(depth int) string {
		name := names[rng.Intn(len(names))]
		if depth <= 0 || rng.Intn(3) == 0 {
			return fmt.Sprintf("<%s>%s</%s>", name, values[rng.Intn(len(values))], name)
		}
		s := "<" + name
		if rng.Intn(3) == 0 {
			s += fmt.Sprintf(" %s=%q", names[rng.Intn(len(names))], values[rng.Intn(len(values))])
		}
		s += ">"
		for i := 0; i < 1+rng.Intn(3); i++ {
			s += build(depth - 1)
		}
		return s + "</" + name + ">"
	}
	out := make([]string, n)
	for i := range out {
		out[i] = "<r>" + build(3) + "</r>"
	}
	return out
}

// randomDiffExpr produces a path query mixing the child axis, the descendant
// axis, and * wildcards, optionally ending in a text predicate. The caller
// filters out the occasional combination the parser rejects.
func randomDiffExpr(rng *rand.Rand) string {
	names := []string{"a", "b", "c", "d", "r", "*"}
	var b strings.Builder
	if rng.Intn(2) == 0 {
		b.WriteString("/r")
	}
	for i, steps := 0, 1+rng.Intn(3); i < steps; i++ {
		if rng.Intn(3) == 0 {
			b.WriteString("//")
		} else {
			b.WriteString("/")
		}
		b.WriteString(names[rng.Intn(len(names))])
	}
	if rng.Intn(4) == 0 {
		b.WriteString(fmt.Sprintf("[text()='%s']", []string{"x", "y", "z"}[rng.Intn(3)]))
	}
	return b.String()
}

// docPositions maps result DocIDs back to insertion positions so indexes with
// different ID assignment can be compared.
func docPositions(t testing.TB, got []DocID, ids []DocID) []int {
	t.Helper()
	rev := make(map[DocID]int, len(ids))
	for i, id := range ids {
		rev[id] = i
	}
	out := []int{}
	for _, id := range got {
		p, ok := rev[id]
		if !ok {
			t.Fatalf("result id %d not among inserted ids", id)
		}
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

func docPositionsU(t testing.TB, got []uint64, ids []uint64) []int {
	t.Helper()
	rev := make(map[uint64]int, len(ids))
	for i, id := range ids {
		rev[id] = i
	}
	out := []int{}
	for _, id := range got {
		p, ok := rev[id]
		if !ok {
			t.Fatalf("result id %d not among inserted ids", id)
		}
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// TestPlannerDifferential is the planner's correctness oracle: on random
// documents and random /-//-* queries, the planned execution path must return
// exactly the DocID set of (a) the same engine with the planner disabled and
// (b) the naive Algorithm 1 suffix-tree matcher. After a round of deletions
// the two core engines must still agree, and Check must confirm the
// incrementally-maintained synopsis matches a from-scratch rebuild.
func TestPlannerDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xmls := randomDiffXML(rng, 80)

	planned := mustMem(t, Options{})
	defer planned.Close()
	unplanned := mustMem(t, Options{DisablePlanner: true})
	defer unplanned.Close()
	nv := naive.New(nil)

	pIDs := insertXML(t, planned, xmls...)
	uIDs := insertXML(t, unplanned, xmls...)
	nIDs := make([]uint64, len(xmls))
	for i, x := range xmls {
		n, err := xmltree.ParseString(x)
		if err != nil {
			t.Fatal(err)
		}
		nIDs[i] = nv.Insert(n)
	}

	// Fixed expressions covering each plan mode, plus a random batch.
	exprs := []string{
		"/r", "/r/a", "/r/a/b", "//b", "/r//c", "//a//b",
		"/r/*", "/r/*/c", "//*", "/r//*/b",
		"//b[text()='x']", "/r/a[text()='q']", "/q/z",
	}
	seen := map[string]bool{}
	for _, e := range exprs {
		seen[e] = true
	}
	for len(exprs) < 60 {
		e := randomDiffExpr(rng)
		if seen[e] {
			continue
		}
		if _, err := query.Parse(e); err != nil {
			continue // generator occasionally emits forms the grammar rejects
		}
		seen[e] = true
		exprs = append(exprs, e)
	}

	check := func(compareNaive bool) {
		t.Helper()
		for _, expr := range exprs {
			p, err := planned.Query(expr)
			if err != nil {
				t.Fatalf("%s planned: %v", expr, err)
			}
			u, err := unplanned.Query(expr)
			if err != nil {
				t.Fatalf("%s unplanned: %v", expr, err)
			}
			pPos := docPositions(t, p, pIDs)
			uPos := docPositions(t, u, uIDs)
			if !reflect.DeepEqual(pPos, uPos) {
				t.Errorf("%s: planned=%v unplanned=%v", expr, pPos, uPos)
			}
			if !compareNaive {
				continue
			}
			nn, err := nv.Query(expr)
			if err != nil {
				t.Fatalf("%s naive: %v", expr, err)
			}
			if nPos := docPositionsU(t, nn, nIDs); !reflect.DeepEqual(pPos, nPos) {
				t.Errorf("%s: planned=%v naive=%v", expr, pPos, nPos)
			}
		}
	}
	check(true)

	// Delete a third of the corpus from both core engines (the naive matcher
	// has no Delete) and re-run: deletions bump the write epoch, so every
	// cached plan must be rebuilt against the shrunken synopsis.
	var keepP, keepU []DocID
	for i := range pIDs {
		if i%3 == 0 {
			if err := planned.Delete(pIDs[i]); err != nil {
				t.Fatalf("planned delete %d: %v", pIDs[i], err)
			}
			if err := unplanned.Delete(uIDs[i]); err != nil {
				t.Fatalf("unplanned delete %d: %v", uIDs[i], err)
			}
			continue
		}
		keepP = append(keepP, pIDs[i])
		keepU = append(keepU, uIDs[i])
	}
	// Reuse position mapping over surviving docs only.
	pIDs, uIDs = keepP, keepU
	check(false)

	report, err := planned.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(report.Problems) != 0 {
		t.Fatalf("post-delete consistency problems: %v", report.Problems)
	}
}

// TestPlannerDifferentialConcurrentMutator is the epoch-validation half of
// the differential oracle: query workers hammer a fixed expression set —
// keeping the plan cache hot — while a mutator concurrently inserts and
// deletes documents, advancing the epoch under them. The dangerous stale
// plan is the pruned-empty one: "/q/z" matches nothing at warm-up, so its
// cached plan short-circuits to an empty result; once the mutator inserts
// <q><z> documents, a plan validated against anything but the query's own
// pinned snapshot epoch would keep answering from the dead epoch. The final
// agreement check against a planner-free engine catches that, and any
// mid-flight error or torn read fails the run. Run with -race.
func TestPlannerDifferentialConcurrentMutator(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	xmls := randomDiffXML(rng, 40)

	planned := mustMem(t, Options{})
	defer planned.Close()
	unplanned := mustMem(t, Options{DisablePlanner: true})
	defer unplanned.Close()
	pIDs := insertXML(t, planned, xmls...)

	exprs := []string{
		"/r/a", "//b", "/r//c", "/r/*/c", "//a//b",
		"/q/z", "//z", "/q//z", // empty at warm-up; live after the mutator runs
	}
	// Warm the plan cache at the initial epoch, pruned-empty plans included.
	for _, e := range exprs {
		if _, err := planned.Query(e); err != nil {
			t.Fatalf("warm-up %q: %v", e, err)
		}
	}

	stop := make(chan struct{})
	errCh := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range exprs {
					if _, err := planned.Query(e); err != nil {
						select {
						case errCh <- fmt.Errorf("concurrent Query(%q): %w", e, err):
						default:
						}
						return
					}
				}
			}
		}()
	}

	// Mutate under the readers: new documents (including ones that revive the
	// pruned-empty paths) and deletions of seeded ones. Every mutation is
	// recorded so the planner-free engine can replay it afterwards.
	var newXMLs []string
	var deletedPos []int
	for i := 0; i < 30; i++ {
		x := randomDiffXML(rng, 1)[0]
		if i%5 == 2 {
			x = fmt.Sprintf("<q><z>%s</z><z>w</z></q>", []string{"x", "y", "z"}[i%3])
		}
		newXMLs = append(newXMLs, x)
		insertXML(t, planned, x)
		if i%4 == 0 && i/4 < len(pIDs) {
			pos := i / 4 * 3
			if pos < len(pIDs) {
				if err := planned.Delete(pIDs[pos]); err != nil {
					t.Fatalf("concurrent Delete: %v", err)
				}
				deletedPos = append(deletedPos, pos)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Replay on the planner-free engine, then the two must agree exactly —
	// including non-empty results for the paths that were dead at warm-up.
	uIDs := insertXML(t, unplanned, xmls...)
	insertXML(t, unplanned, newXMLs...)
	for _, pos := range deletedPos {
		if err := unplanned.Delete(uIDs[pos]); err != nil {
			t.Fatalf("replay Delete: %v", err)
		}
	}
	for _, e := range exprs {
		p, err := planned.Query(e)
		if err != nil {
			t.Fatalf("%s planned: %v", e, err)
		}
		u, err := unplanned.Query(e)
		if err != nil {
			t.Fatalf("%s unplanned: %v", e, err)
		}
		if len(p) != len(u) {
			t.Errorf("%s: planned found %d docs, unplanned %d", e, len(p), len(u))
		}
	}
	if got, err := planned.Query("/q/z"); err != nil || len(got) == 0 {
		t.Fatalf("/q/z still empty after mutator inserted matching docs (stale pruned plan): ids=%v err=%v", got, err)
	}
	report, err := planned.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(report.Problems) != 0 {
		t.Fatalf("post-churn consistency problems: %v", report.Problems)
	}
}
