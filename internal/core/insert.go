package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"vist/internal/labeling"
	"vist/internal/seq"
	"vist/internal/xmltree"
)

// Insert indexes a document and returns its assigned DocID. The document is
// normalized (deterministic sibling order) as a side effect, encoded into
// its structure-encoded sequence, and inserted into the virtual suffix tree
// per Algorithm 4 of the paper.
func (ix *Index) Insert(doc *xmltree.Node) (_ DocID, err error) {
	if doc == nil {
		return 0, fmt.Errorf("core: nil document")
	}
	if doc.Depth() > MaxDepth {
		return 0, fmt.Errorf("core: document depth %d exceeds max %d; split the structure into sub-structures", doc.Depth(), MaxDepth)
	}
	if ix.reg != nil {
		start := time.Now()
		defer func() { ix.qm.insertLatency.ObserveDuration(time.Since(start)) }()
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.frozen {
		return 0, errFrozen
	}
	if err := ix.failIfDegraded(); err != nil {
		return 0, err
	}
	if err := ix.maybeAutoCheckpointLocked(); err != nil {
		return 0, err
	}
	// A failed insert must leave no trace: abandon the write window so its
	// partial state can never be published (runs before the mu unlock). A
	// storage-layer failure additionally degrades the index read-only —
	// rollback restored the published state, but the disk can no longer be
	// trusted with the next mutation.
	defer func() {
		if err != nil {
			ix.rollbackLocked()
			if degradeWorthy(err) {
				ix.degrade("insert", err)
			}
		}
	}()

	return ix.insertDocLocked(doc)
}

// insertDocLocked is the body of Insert: normalize, sequence-encode, thread
// the sequence into the virtual suffix tree, register and store the document
// under ix.nextDoc, publish. Callers hold the exclusive lock and own the
// failure protocol (rollback + degradation); the repair path reuses it to
// re-insert salvaged documents under their original IDs.
func (ix *Index) insertDocLocked(doc *xmltree.Node) (_ DocID, err error) {
	xmltree.Normalize(doc, ix.schema)
	s := seq.Encode(doc, ix.dict)
	id := ix.nextDoc

	last, err := ix.insertSequence(s)
	if err != nil {
		return 0, err
	}
	// The node tree changed: keep the synopsis count invariant (path count
	// = refcount sum) in lockstep, even if a later step of this insert
	// fails. The fork (mutableSyn) keeps the published snapshot's synopsis
	// untouched.
	ix.mutableSyn().AddSequence(s)
	ix.noteWrite()
	if err := ix.docs.Put(docKey(last, id), nil); err != nil {
		return 0, err
	}
	if !ix.opts.SkipDocumentStore {
		if err := ix.storeDoc(id, last, doc); err != nil {
			return 0, err
		}
	}
	ix.nextDoc++
	ix.docCount++
	if d := s.MaxLen(); d > ix.maxDepth {
		ix.maxDepth = d
	}
	ix.metaDirty = true
	ix.qm.inserted.Inc()
	// Commit: expose the new version to queries. Failure paths above return
	// without publishing, so queries keep reading the previous version.
	ix.publishLocked()
	return id, nil
}

// pathEntry tracks one step of an insertion path for underflow borrowing
// and refcount rollback.
type pathEntry struct {
	key   []byte // full node key (daKey ‖ n); nil for the root
	rec   nodeRecord
	scope labeling.Scope
}

// insertSequence inserts a structure-encoded sequence into the virtual
// suffix tree, returning the label of the node where insertion ends.
func (ix *Index) insertSequence(s seq.Sequence) (uint64, error) {
	if len(s) == 0 {
		return 0, fmt.Errorf("core: empty sequence")
	}
	path := make([]pathEntry, 1, len(s)+1)
	path[0] = pathEntry{scope: rootScope, rec: nodeRecord{size: rootScope.Size, k: ix.rootK, reserveUsed: ix.rootResvd}}

	prevKey := "" // element key of the current node (root = empty)
	for i := range s {
		cur := &path[len(path)-1]
		da := ix.kc.daKeyW(s[i].Symbol, s[i].Prefix)
		childKey, childRec, found, err := ix.findChild(da, cur.scope)
		if err != nil {
			return 0, err
		}
		if found {
			_, n, err := ix.kc.splitNodeKey(childKey)
			if err != nil {
				return 0, err
			}
			childRec.refcount++
			if err := ix.nodes.Put(childKey, ix.kc.encodeRecord(n, childRec)); err != nil {
				return 0, err
			}
			path = append(path, pathEntry{key: childKey, rec: childRec, scope: labeling.Scope{N: n, Size: childRec.size}})
			prevKey = s[i].Key()
			continue
		}
		sub, usedK, ok := ix.alloc.SubScope(cur.scope, prevKey, int(cur.rec.k), s[i].Key())
		if !ok {
			// Scope underflow: borrow a sequential run from an ancestor's
			// reserve for elements i..len(s)-1 (Section 3.4.1).
			return ix.borrow(path, s, i)
		}
		if usedK {
			cur.rec.k++
			if err := ix.writePathEntry(cur); err != nil {
				return 0, err
			}
		}
		rec := nodeRecord{size: sub.Size, parentN: cur.scope.N, refcount: 1}
		key := nodeKey(da, sub.N)
		if err := ix.nodes.Put(key, ix.kc.encodeRecord(sub.N, rec)); err != nil {
			return 0, err
		}
		path = append(path, pathEntry{key: key, rec: rec, scope: sub})
		prevKey = s[i].Key()
	}
	return path[len(path)-1].scope.N, nil
}

// writePathEntry persists a (possibly root) path entry's record.
func (ix *Index) writePathEntry(e *pathEntry) error {
	if e.key == nil {
		ix.rootK = e.rec.k
		ix.rootResvd = e.rec.reserveUsed
		ix.metaDirty = true
		return nil
	}
	return ix.nodes.Put(e.key, ix.kc.encodeRecord(e.scope.N, e.rec))
}

// findChild locates the shareable (non-sequential) immediate child of the
// node with scope parent carrying D-Ancestor key da.
func (ix *Index) findChild(da []byte, parent labeling.Scope) ([]byte, nodeRecord, bool, error) {
	lo := nodeKey(da, parent.N+1)
	// Scan (parent.N, parent.N+parent.Size]; the upper bound label is
	// inclusive, so extend the bound key by one byte.
	hiEx := append(nodeKey(da, parent.N+parent.Size), 0)
	var (
		foundKey []byte
		foundRec nodeRecord
		found    bool
		scanErr  error
	)
	err := ix.nodes.Scan(lo, hiEx, func(k, v []byte) (bool, error) {
		_, n, err := ix.kc.splitNodeKey(k)
		if err != nil {
			scanErr = err
			return false, err
		}
		rec, err := ix.kc.decodeRecord(n, v)
		if err != nil {
			scanErr = err
			return false, err
		}
		if rec.parentN == parent.N && !rec.sequential() {
			foundKey = append([]byte(nil), k...)
			foundRec = rec
			found = true
			return false, nil
		}
		return true, nil
	})
	if err != nil {
		return nil, nodeRecord{}, false, err
	}
	if scanErr != nil {
		return nil, nodeRecord{}, false, scanErr
	}
	return foundKey, foundRec, found, nil
}

// borrow resolves a scope underflow at sequence position i: walking up the
// insertion path, it finds the nearest ancestor whose reserve can hold one
// label per remaining element, rolls back the refcounts taken below that
// ancestor, and lays the remaining elements out as a sequential chain.
func (ix *Index) borrow(path []pathEntry, s seq.Sequence, i int) (uint64, error) {
	// path[j] is the node reached after matching elements 0..j-1 (path[0]
	// is the root). Borrowing from path[j] lays out a fresh sequential
	// chain for elements j..len(s)-1, duplicating any nodes the descent
	// had already passed below path[j] — sequential nodes are never shared
	// across sequences, so duplication keeps the structure consistent.
	for j := len(path) - 1; j >= 0; j-- {
		need := uint64(len(s) - j)
		lo, hi := ix.alloc.Reserve(path[j].scope)
		avail := uint64(0)
		if hi > lo {
			avail = hi - lo
		}
		if uint64(path[j].rec.reserveUsed) >= avail || avail-uint64(path[j].rec.reserveUsed) < need {
			continue
		}
		start := lo + uint64(path[j].rec.reserveUsed)
		ix.borrows++
		// Roll back refcounts taken on path entries below j during this
		// insertion (they were incremented in insertSequence). An entry
		// whose refcount drops to zero was created by this very insert —
		// no other sequence passes through it — so remove it outright:
		// leaving a dead record would cost every future D-Ancestor scan a
		// visit and break the synopsis count invariant (Check compares
		// refcount sums against maintained path counts).
		for t := j + 1; t < len(path); t++ {
			path[t].rec.refcount--
			if path[t].rec.refcount == 0 {
				if _, err := ix.nodes.Delete(path[t].key); err != nil {
					return 0, err
				}
				continue
			}
			if err := ix.writePathEntry(&path[t]); err != nil {
				return 0, err
			}
		}
		// Lay out the sequential chain.
		scopes := labeling.Sequential(start, need)
		parentN := path[j].scope.N
		for t := 0; t < int(need); t++ {
			el := s[j+t]
			rec := nodeRecord{
				size:     scopes[t].Size,
				parentN:  parentN,
				refcount: 1,
				flags:    flagSequential,
			}
			if err := ix.nodes.Put(nodeKey(ix.kc.daKeyW(el.Symbol, el.Prefix), scopes[t].N), ix.kc.encodeRecord(scopes[t].N, rec)); err != nil {
				return 0, err
			}
			parentN = scopes[t].N
		}
		path[j].rec.reserveUsed += uint32(need)
		if err := ix.writePathEntry(&path[j]); err != nil {
			return 0, err
		}
		return scopes[need-1].N, nil
	}
	return 0, fmt.Errorf("%w: no ancestor reserve can hold %d labels", ErrScopeExhausted, len(s))
}

// --- document store ----------------------------------------------------------

// storeDoc persists the document with its final label for later retrieval
// and deletion. Large documents are chunked across consecutive keys; chunk
// 0 starts with the final label and chunk count.
func (ix *Index) storeDoc(id DocID, last uint64, doc *xmltree.Node) error {
	data := xmltree.Encode(doc)
	max := ix.store.MaxEntrySize() - 64
	header := make([]byte, 12)
	binary.BigEndian.PutUint64(header[0:8], last)
	first := max - len(header)
	var chunks [][]byte
	if len(data) <= first {
		chunks = [][]byte{data}
	} else {
		chunks = [][]byte{data[:first]}
		for off := first; off < len(data); off += max {
			end := off + max
			if end > len(data) {
				end = len(data)
			}
			chunks = append(chunks, data[off:end])
		}
	}
	binary.BigEndian.PutUint32(header[8:12], uint32(len(chunks)))
	if err := ix.store.Put(storeKey(id, 0), append(header, chunks[0]...)); err != nil {
		return err
	}
	for i := 1; i < len(chunks); i++ {
		if err := ix.store.Put(storeKey(id, uint32(i)), chunks[i]); err != nil {
			return err
		}
	}
	return nil
}

// ErrDocNotFound reports that a DocID has no stored document. Callers racing
// against Delete (QueryVerified's refinement phase) test for it with
// errors.Is and treat the document as a non-match.
var ErrDocNotFound = errors.New("document not found")

// storeGetter is the point-lookup capability loadDocFrom needs; both the
// writer-side *btree.BTree (pending state, under ix.mu) and a pinned
// btree.Snapshot satisfy it.
type storeGetter interface {
	Get(key []byte) ([]byte, bool, error)
}

// loadDoc retrieves a stored document and its final label from the pending
// (writer-visible) store; Delete uses it under the exclusive lock so it
// deletes exactly what it read.
func (ix *Index) loadDoc(id DocID) (*xmltree.Node, uint64, error) {
	return loadDocFrom(ix.store, id)
}

// loadDocFrom retrieves a stored document and its final label through st.
func loadDocFrom(st storeGetter, id DocID) (*xmltree.Node, uint64, error) {
	v0, ok, err := st.Get(storeKey(id, 0))
	if err != nil {
		return nil, 0, err
	}
	if !ok {
		return nil, 0, fmt.Errorf("core: document %d: %w", id, ErrDocNotFound)
	}
	if len(v0) < 12 {
		return nil, 0, fmt.Errorf("core: document %d header truncated", id)
	}
	last := binary.BigEndian.Uint64(v0[0:8])
	nchunks := binary.BigEndian.Uint32(v0[8:12])
	data := append([]byte(nil), v0[12:]...)
	for i := uint32(1); i < nchunks; i++ {
		v, ok, err := st.Get(storeKey(id, i))
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			return nil, 0, fmt.Errorf("core: document %d chunk %d missing", id, i)
		}
		data = append(data, v...)
	}
	doc, err := xmltree.Decode(data)
	if err != nil {
		return nil, 0, err
	}
	return doc, last, nil
}

// Get returns the stored document from the last published version (requires
// document storage; lock-free). A missing document reports ErrDocNotFound
// (wrapped).
func (ix *Index) Get(id DocID) (*xmltree.Node, error) {
	snap, err := ix.pin()
	if err != nil {
		return nil, err
	}
	defer ix.unpin(snap)
	doc, _, err := loadDocFrom(snap.store, id)
	return doc, err
}

// Delete removes a document from the index: its DocId entry, its stored
// bytes, and — via refcounts — every virtual-suffix-tree node that no other
// document shares. Requires document storage.
func (ix *Index) Delete(id DocID) (err error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.opts.SkipDocumentStore {
		return fmt.Errorf("core: Delete requires document storage (SkipDocumentStore is set)")
	}
	if err := ix.failIfDegraded(); err != nil {
		return err
	}
	if err := ix.maybeAutoCheckpointLocked(); err != nil {
		return err
	}
	// As with Insert: a failed delete abandons its write window entirely,
	// and a storage-layer failure degrades the index read-only.
	defer func() {
		if err != nil {
			ix.rollbackLocked()
			if degradeWorthy(err) {
				ix.degrade("delete", err)
			}
		}
	}()
	doc, last, err := ix.loadDoc(id)
	if err != nil {
		return err
	}
	s := seq.Encode(doc, ix.dict)
	if _, err := ix.docs.Delete(docKey(last, id)); err != nil {
		return err
	}
	ix.noteWrite()
	// Walk the path bottom-up via parentN links, decrementing refcounts.
	n := last
	for i := len(s) - 1; i >= 0; i-- {
		key := nodeKey(ix.kc.daKeyW(s[i].Symbol, s[i].Prefix), n)
		v, ok, err := ix.nodes.Get(key)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("core: delete %d: path node at element %d (label %d) missing", id, i, n)
		}
		rec, err := ix.kc.decodeRecord(n, v)
		if err != nil {
			return err
		}
		parent := rec.parentN
		if rec.refcount <= 1 {
			if _, err := ix.nodes.Delete(key); err != nil {
				return err
			}
		} else {
			rec.refcount--
			if err := ix.nodes.Put(key, ix.kc.encodeRecord(n, rec)); err != nil {
				return err
			}
		}
		n = parent
	}
	// Refcounts are decremented; mirror the change in the synopsis (on a
	// fork when the head is shared with the published snapshot).
	ix.mutableSyn().RemoveSequence(s)
	// Remove stored chunks.
	var stale [][]byte
	err = ix.store.Scan(storeKey(id, 0), storeKey(id+1, 0), func(k, v []byte) (bool, error) {
		stale = append(stale, append([]byte(nil), k...))
		return true, nil
	})
	if err != nil {
		return err
	}
	for _, k := range stale {
		if _, err := ix.store.Delete(k); err != nil {
			return err
		}
	}
	ix.docCount--
	ix.metaDirty = true
	ix.qm.deleted.Inc()
	// Commit: expose the post-delete version to queries.
	ix.publishLocked()
	return nil
}

// Docs iterates over all stored documents in DocID order, stopping early
// when fn returns false. It reads the last published version lock-free and
// keeps it pinned for the whole iteration, so fn sees one consistent
// committed state regardless of concurrent mutations. Requires document
// storage.
func (ix *Index) Docs(fn func(id DocID, doc *xmltree.Node) (bool, error)) error {
	if ix.opts.SkipDocumentStore {
		return fmt.Errorf("core: Docs requires document storage (SkipDocumentStore is set)")
	}
	snap, err := ix.pin()
	if err != nil {
		return err
	}
	defer ix.unpin(snap)
	var ids []DocID
	err = snap.store.Scan(nil, nil, func(k, v []byte) (bool, error) {
		if len(k) != 12 {
			return false, fmt.Errorf("core: malformed store key (%d bytes)", len(k))
		}
		if binary.BigEndian.Uint32(k[8:12]) == 0 { // chunk 0 marks a document
			ids = append(ids, DocID(binary.BigEndian.Uint64(k[:8])))
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	for _, id := range ids {
		doc, _, err := loadDocFrom(snap.store, id)
		if err != nil {
			return err
		}
		cont, err := fn(id, doc)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

// ExportXML writes every stored document to w as an XML record stream (the
// format vist index and xmltree.ParseAll consume). Requires document
// storage.
func (ix *Index) ExportXML(w io.Writer) error {
	return ix.Docs(func(id DocID, doc *xmltree.Node) (bool, error) {
		if err := xmltree.WriteXML(w, doc); err != nil {
			return false, err
		}
		return true, nil
	})
}
