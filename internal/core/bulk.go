package core

import (
	"fmt"

	"vist/internal/seq"
	"vist/internal/xmltree"
)

// The Bulk* methods load pre-labeled virtual-suffix-tree structure directly
// into the index trees. They exist for RIST (Section 3.3), which assigns
// static preorder labels to a materialized trie and then bulk-loads the
// same B+Tree layout ViST maintains dynamically; both variants then share
// Algorithm 2 for search.

// BulkInsertNode stores one suffix-tree node with an externally computed
// label. The caller owns label consistency (nested scopes, disjoint
// siblings).
func (ix *Index) BulkInsertNode(sym seq.Symbol, prefix []seq.Symbol, n, size, parentN uint64, refcount uint32) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := ix.failIfDegraded(); err != nil {
		return err
	}
	if err := ix.maybeAutoCheckpointLocked(); err != nil {
		return err
	}
	rec := nodeRecord{size: size, parentN: parentN, refcount: refcount}
	if err := ix.nodes.Put(nodeKey(ix.kc.daKeyW(sym, prefix), n), ix.kc.encodeRecord(n, rec)); err != nil {
		ix.rollbackLocked()
		ix.degrade("bulk-insert", err)
		return err
	}
	if !sym.IsValue() {
		path := make([]seq.Symbol, 0, len(prefix)+1)
		path = append(path, prefix...)
		path = append(path, sym)
		ix.mutableSyn().Add(path, synDelta(refcount))
	}
	ix.noteWrite()
	ix.publishLocked()
	return nil
}

// BulkInsertDoc registers a document as ending at label n, stores its bytes
// (unless the index skips document storage), and returns its ID. The
// document must already be normalized and encoded by the caller with this
// index's dictionary and schema.
func (ix *Index) BulkInsertDoc(n uint64, doc *xmltree.Node, depth int) (DocID, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := ix.failIfDegraded(); err != nil {
		return 0, err
	}
	if err := ix.maybeAutoCheckpointLocked(); err != nil {
		return 0, err
	}
	id := ix.nextDoc
	if err := ix.docs.Put(docKey(n, id), nil); err != nil {
		ix.rollbackLocked()
		ix.degrade("bulk-insert", err)
		return 0, err
	}
	if !ix.opts.SkipDocumentStore && doc != nil {
		if err := ix.storeDoc(id, n, doc); err != nil {
			ix.rollbackLocked()
			ix.degrade("bulk-insert", err)
			return 0, err
		}
	}
	ix.nextDoc++
	ix.docCount++
	if depth > ix.maxDepth {
		ix.maxDepth = depth
	}
	ix.metaDirty = true
	ix.publishLocked()
	return id, nil
}

// BulkFreeze marks a bulk-loaded index static: subsequent Insert calls
// fail. RIST's static labels leave no room for dynamic growth (the paper's
// motivation for ViST).
func (ix *Index) BulkFreeze() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.frozen = true
}

var errFrozen = fmt.Errorf("core: index is statically labeled (RIST); rebuild to add documents")
