package core

import (
	"bytes"
	"fmt"
	"sort"

	"vist/internal/plan"
)

// CheckReport summarizes an integrity scan of the index structure.
type CheckReport struct {
	// Nodes is the number of virtual-suffix-tree node records scanned.
	Nodes int
	// Docs is the number of DocId entries scanned.
	Docs int
	// Sequential is the number of underflow-borrowed (sequential) nodes.
	Sequential int
	// MaxDepthSeen is the deepest prefix observed (plus one).
	MaxDepthSeen int
	// Problems lists every invariant violation found (empty when healthy).
	Problems []string
}

// Ok reports whether the scan found no violations.
func (r *CheckReport) Ok() bool { return len(r.Problems) == 0 }

func (r *CheckReport) problemf(format string, args ...interface{}) {
	if len(r.Problems) < 100 { // cap the report; one violation is enough to fail
		r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
	}
}

// scanner is the range-scan capability the invariant checks and the
// synopsis rebuild need; both the writer-side *btree.BTree (under ix.mu)
// and a pinned btree.Snapshot (lock-free) satisfy it.
type scanner interface {
	Scan(lo, hi []byte, fn func(k, v []byte) (bool, error)) error
}

// Check verifies the structural invariants of the index:
//
//   - node labels are unique and parent links resolve;
//   - every child scope nests strictly inside its parent scope, and
//     sibling scopes are pairwise disjoint (Definition 3);
//   - every DocId entry points at an existing node label;
//   - each node's refcount equals the number of stored documents whose
//     insertion path passes through it;
//   - the incrementally maintained path synopsis matches one rebuilt from
//     the node table.
//
// The scan materializes the node table in memory; it is intended for tests
// and offline verification, not hot paths. Check reads the writer-side
// (pending) state under the shared lock; CheckSnapshot runs the same
// structural checks against the published snapshot without taking ix.mu at
// all.
func (ix *Index) Check() (*CheckReport, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	report := &CheckReport{}
	if err := checkStructure(ix.nodes, ix.docs, ix.syn, ix.kc, report); err != nil {
		return nil, err
	}
	// Version bookkeeping: the published and pending roots of every tree
	// must reach only live pages — a reachable page on a free list would be
	// rewritten under a pinned reader that can still see it.
	for _, t := range ix.trees() {
		if err := t.CheckVersions(); err != nil {
			report.problemf("%v", err)
		}
	}
	return report, nil
}

// CheckSnapshot runs the structural invariant checks (everything Check
// verifies except the writer-coupled version bookkeeping) against the last
// published snapshot, pinned for the duration. It never takes ix.mu, so it
// can run concurrently with mutations — the online scrubber uses it to
// verify invariants without stalling writers.
func (ix *Index) CheckSnapshot() (*CheckReport, error) {
	snap, err := ix.pin()
	if err != nil {
		return nil, err
	}
	defer ix.unpin(snap)
	report := &CheckReport{}
	if err := checkStructure(snap.nodes, snap.docs, snap.syn, ix.kc, report); err != nil {
		return nil, err
	}
	return report, nil
}

// checkStructure performs the structural invariant scan over any coherent
// (node table, DocId table, synopsis) triple, appending violations to
// report.
func checkStructure(nodeTree, docTree scanner, syn *plan.Synopsis, kc keyCodec, report *CheckReport) error {
	type nodeInfo struct {
		rec      nodeRecord
		plen     int
		children []uint64
		expected uint32 // recomputed refcount
	}
	nodes := make(map[uint64]*nodeInfo)

	err := nodeTree.Scan(nil, nil, func(k, v []byte) (bool, error) {
		da, n, err := kc.splitNodeKey(k)
		if err != nil {
			report.problemf("unparseable node key: %v", err)
			return true, nil
		}
		rec, err := kc.decodeRecord(n, v)
		if err != nil {
			report.problemf("node %d: unparseable record: %v", n, err)
			return true, nil
		}
		_, prefix, err := kc.parseDAKey(da)
		if err != nil {
			report.problemf("node %d: unparseable D-Ancestor key: %v", n, err)
			return true, nil
		}
		if _, dup := nodes[n]; dup {
			report.problemf("duplicate node label %d", n)
			return true, nil
		}
		nodes[n] = &nodeInfo{rec: rec, plen: len(prefix)}
		report.Nodes++
		if rec.sequential() {
			report.Sequential++
		}
		if d := len(prefix) + 1; d > report.MaxDepthSeen {
			report.MaxDepthSeen = d
		}
		return true, nil
	})
	if err != nil {
		return err
	}

	// Parent resolution and scope nesting.
	rootN := rootScope.N
	for n, info := range nodes {
		p := info.rec.parentN
		if p == rootN {
			if !rootScope.ContainsLabel(n) || n-rootScope.N+info.rec.size > rootScope.Size {
				report.problemf("node %d escapes the root scope", n)
			}
			continue
		}
		parent, ok := nodes[p]
		if !ok {
			report.problemf("node %d: parent label %d does not exist", n, p)
			continue
		}
		parent.children = append(parent.children, n)
		// Child scope must nest strictly: n ∈ (p, p+size_p] and
		// n+size_n <= p+size_p.
		if !(n > p && n-p <= parent.rec.size && n-p+info.rec.size <= parent.rec.size) {
			report.problemf("node %d ⟨%d,%d⟩ not nested in parent %d ⟨%d,%d⟩",
				n, n, info.rec.size, p, p, parent.rec.size)
		}
	}

	// Sibling disjointness (per explicit parent; root's children are
	// checked against each other too).
	rootChildren := []uint64{}
	for n, info := range nodes {
		if info.rec.parentN == rootN {
			rootChildren = append(rootChildren, n)
		}
	}
	checkSiblings := func(parent string, kids []uint64) {
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		for i := 0; i+1 < len(kids); i++ {
			a, b := kids[i], kids[i+1]
			if a+nodes[a].rec.size >= b {
				report.problemf("%s: sibling scopes overlap: ⟨%d,%d⟩ and ⟨%d,%d⟩",
					parent, a, nodes[a].rec.size, b, nodes[b].rec.size)
			}
		}
	}
	checkSiblings("root", rootChildren)
	for n, info := range nodes {
		if len(info.children) > 1 {
			checkSiblings(fmt.Sprintf("node %d", n), info.children)
		}
	}

	// DocId entries must land on real nodes; recompute refcounts by
	// walking parent chains.
	err = docTree.Scan(nil, nil, func(k, v []byte) (bool, error) {
		n, id, err := parseDocKey(k)
		if err != nil {
			report.problemf("unparseable DocId key: %v", err)
			return true, nil
		}
		report.Docs++
		cur := n
		steps := 0
		for cur != rootN {
			info, ok := nodes[cur]
			if !ok {
				report.problemf("doc %d: path label %d does not exist", id, cur)
				break
			}
			info.expected++
			cur = info.rec.parentN
			if steps++; steps > MaxDepth*2 {
				report.problemf("doc %d: parent chain from %d exceeds %d steps (cycle?)", id, n, MaxDepth*2)
				break
			}
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	for n, info := range nodes {
		if info.rec.refcount != info.expected {
			report.problemf("node %d: refcount %d, but %d document paths pass through it",
				n, info.rec.refcount, info.expected)
		}
	}

	// The maintained path synopsis must agree with one rebuilt from the node
	// table — the planner trusts it for empty-result proofs and prefix
	// pruning, so divergence silently drops query results.
	rebuilt, err := rebuildSynopsisFrom(nodeTree, kc)
	if err != nil {
		return err
	}
	if !bytes.Equal(rebuilt.Encode(), syn.Encode()) {
		report.problemf("path synopsis diverges from node table (paths: maintained %d, rebuilt %d)",
			syn.Paths(), rebuilt.Paths())
	}
	return nil
}
