package core

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"vist/internal/btree"
	"vist/internal/keyenc"
	"vist/internal/labeling"
	"vist/internal/obs"
	"vist/internal/plan"
	"vist/internal/seq"
	"vist/internal/xmltree"
)

// Options configures an Index.
type Options struct {
	// PageSize for the underlying B+Trees. Zero selects
	// btree.DefaultPageSize (2 KB, matching the paper's experiments).
	PageSize int
	// CachePages bounds each file pager's buffer pool (file-backed indexes
	// only). Zero selects a default.
	CachePages int
	// NodeCache bounds each B+Tree's decoded-node cache (entries, not
	// bytes). Zero selects the btree default (512). Watch the
	// btree.node_cache_* metrics: a hit rate well under 1 on a read-mostly
	// workload means the working set outgrew this cache and queries are
	// paying constant deserialization and eviction churn.
	NodeCache int
	// Lambda is the expected fan-out for clue-free dynamic labeling
	// (Section 3.4.1). Values below 2 select 2.
	Lambda uint64
	// Training, when non-nil, selects statistics-guided labeling (Eq. 1–4)
	// instead of the uniform strategy. Build it with Train; the statistics
	// and the training dictionary are persisted with the index.
	Training *Training
	// Schema, when non-nil, fixes the sibling order for document
	// normalization and query conversion (DTD order; Section 2). The
	// names are persisted with the index.
	Schema []string
	// ReserveDen sets the underflow-reserve fraction (1/ReserveDen of each
	// scope). Zero selects 16.
	ReserveDen uint64
	// StoreDocuments controls whether full documents are stored. It is
	// required for Get, Delete, and QueryVerified; large benchmark runs
	// can disable it. Default true (zero value is inverted — see
	// SkipDocumentStore).
	SkipDocumentStore bool
	// DisableWAL opens a file-backed index without its write-ahead log:
	// Sync becomes a plain flush+fsync with no crash atomicity, so a
	// process killed mid-write can corrupt the index. Benchmarks use it to
	// measure the WAL's cost; everything else should leave it false.
	DisableWAL bool
	// FS overrides the filesystem under the pagers and WAL (fault
	// injection in crash tests). Nil selects the operating system.
	FS btree.FS
	// DefaultQueryTimeout bounds every query whose context carries no
	// deadline of its own (including the legacy Query/QueryAll wrappers,
	// which run under context.Background). Zero means no default deadline.
	DefaultQueryTimeout time.Duration
	// DefaultBudget caps the work of every query on this index. Per-call
	// budgets (QueryCtx and friends) merge with it field-wise, the stricter
	// positive limit winning, so this acts as an admission-control ceiling
	// a caller can tighten but not raise. The zero value imposes no limits.
	DefaultBudget Budget
	// DisableMetrics turns off the per-index metrics registry AND per-query
	// stage timing: Metrics() returns an empty snapshot, QueryStats.Stages
	// stays zero, and the instrumentation's atomic counters and clock reads
	// are skipped. The default (metrics on) costs a few percent of query
	// latency at most — vistbench -exp obs prices it on your hardware.
	DisableMetrics bool
	// SlowQueryThreshold, when positive, marks any query whose total wall
	// time (candidate phase plus verification, for QueryVerified) reaches it
	// as slow: the "query.slow" counter is bumped and SlowQueryLog (if set)
	// fires. Works even with DisableMetrics set (only the callback then).
	SlowQueryThreshold time.Duration
	// SlowQueryLog is invoked exactly once per slow query, after the query's
	// locks are released, on the goroutine that ran the query. It must be
	// fast and must not call back into the Index from the same goroutine's
	// critical path expectations (a quick log write or channel send is the
	// intended use).
	SlowQueryLog func(SlowQuery)
	// DisablePlanner turns off the query planner: no plan cache, no
	// synopsis-guided pruning — every query runs in the paper's evaluation
	// order (one D-Ancestor range scan per candidate prefix length, one
	// DocId scan per final match). The path synopsis is still maintained,
	// so the flag can differ between openings of the same index. Exists for
	// differential testing and ablation benchmarks.
	DisablePlanner bool
	// PlanCacheSize bounds the plan cache (distinct expression texts).
	// Zero selects plan.DefaultCacheSize.
	PlanCacheSize int
	// CloseDrainTimeout bounds how long Close waits for in-flight queries
	// (pinned snapshot readers) to finish before closing files under them.
	// Zero selects 30 seconds; negative waits forever. A query still running
	// when the timeout fires sees I/O errors from the closed pagers — the
	// same failure mode as not draining at all, just bounded.
	CloseDrainTimeout time.Duration
	// WALMaxBytes bounds write-ahead-log growth between explicit Syncs: when
	// a mutation finds the log larger than this, it group-commits the current
	// state first (checkpointing and truncating the log) before mutating.
	// The "wal.auto_checkpoints" counter tracks how often this fires. Zero
	// means unbounded (only explicit Sync/Close truncate the log).
	WALMaxBytes int64
	// ScrubInterval, when positive, runs the online scrubber continuously in
	// the background: full verification passes over every allocated page
	// (CRC32C trailers, via the pinned published snapshot — writers are
	// never blocked), separated by this much idle time between passes.
	// Corruption degrades the index to read-only (see ErrReadOnly) instead
	// of panicking. Zero disables the background scrubber; Scrub can still
	// be called directly.
	ScrubInterval time.Duration
	// ScrubPagesPerSecond bounds the background scrubber's page-verification
	// rate so a pass costs bounded I/O and mutex time. Zero selects
	// DefaultScrubRate; negative means unthrottled.
	ScrubPagesPerSecond int
	// LegacyFormat makes newly created indexes use the original storage
	// layout: fixed-width D-Ancestor keys (no path interning) and
	// uncompressed v1 B+Tree pages. Existing indexes keep the key format
	// they were created with regardless of this option (it is recorded in
	// the index metadata); the page format of anything written follows this
	// option. Exists for A/B benchmarks and for producing files older
	// binaries can read.
	LegacyFormat bool
	// WALShipper, when non-nil, receives the raw committed WAL frame bytes
	// of every Sync after their durability fsync and before the checkpoint
	// truncates them (see btree.WAL.SetShipper) — the leader-side hook for
	// WAL-shipping replication. A failing shipper fails the Sync, which
	// degrades the index read-only rather than letting the replication
	// stream silently gap: a physical page stream with a hole never
	// reconverges. Duplicate deliveries are possible on retries and after
	// crash recovery; the consumer must treat appends idempotently.
	// Requires the WAL (incompatible with DisableWAL); ignored for NewMem.
	WALShipper func(frames []byte) error
	// CompressColdPages keeps flate-compressed copies of clean pages the
	// buffer pool evicts (file-backed indexes only): a later miss on such a
	// page decompresses from memory instead of reading disk. The
	// "pager.cold_hits"/"pager.cold_stores" counters and StorageStats
	// report how often that pays.
	CompressColdPages bool
}

// RecoveryInfo reports what Open found in the write-ahead log.
type RecoveryInfo struct {
	// Replayed is true when a committed WAL tail was re-applied to the
	// index files (the previous process died between commit and
	// checkpoint).
	Replayed bool
	// PagesReplayed counts the committed page records applied.
	PagesReplayed int
	// FramesDiscarded counts staged-but-uncommitted records dropped (the
	// previous process died before its Sync committed).
	FramesDiscarded int
}

// Index is a ViST index over XML documents. All methods are safe for
// concurrent use by multiple goroutines. Reads (Query, QueryWithStats,
// QueryVerified, QueryAll, their *Ctx variants, Get, Docs, Check and the
// metadata accessors) hold a shared lock and execute in parallel with each
// other; mutations (Insert, Delete, the Bulk* loaders, Sync, Close) hold the
// exclusive lock and serialize against everything else. See DESIGN.md §6
// "Concurrency model" for the full locking story across the index, B+Tree,
// and pager layers, and §8 "Resource governance" for how queries are
// bounded, cancelled, and panic-contained.
type Index struct {
	mu sync.RWMutex

	nodes *btree.BTree // combined D-Ancestor + S-Ancestor tree
	docs  *btree.BTree // DocId tree: (n, docID) → ∅
	store *btree.BTree // document store: (docID, chunk) → bytes
	aux   *btree.BTree // dictionary, statistics, metadata blobs

	// wal, pagers and recovery are set for file-backed indexes (unless
	// DisableWAL): all four trees share one write-ahead log, committed
	// atomically per Sync, so a crash can never persist one tree's state
	// without the others'.
	wal      *btree.WAL
	pagers   []*btree.FilePager
	recovery RecoveryInfo

	dict   *seq.Dict
	schema *xmltree.Schema
	alloc  labeling.Allocator
	stats  *labeling.Stats
	opts   Options

	// kc is the node-key/record codec for this index's key format, fixed at
	// open (the format is recorded in the metadata version). Immutable after
	// initIndex, so queries use it lock-free; the PathDict inside it (interned
	// format only) is internally synchronized and grow-only.
	kc    keyCodec
	pdLen int // interned paths at last persist

	// syn is the live (writer-side) path synopsis head, guarded by mu;
	// queries read the immutable fork captured in their pinned snapshot.
	// synShared marks that syn is that published head, so the next mutation
	// must fork it (mutableSyn) before writing. plans is the bounded plan
	// cache (internally locked — queries populate it lock-free); epoch
	// counts published versions and validates cached plans against each
	// query's pinned epoch.
	syn       *plan.Synopsis
	synShared bool
	plans     *plan.Cache
	epoch     uint64
	synDirty  bool // synopsis changed since last persist

	// snap is the current published version; queries resolve every read
	// against the snapshot they pin, so they never take mu and never
	// observe a mutation in progress. pins counts pinned readers per epoch
	// (pinMu guards pins/closed and orders pinning against publication);
	// closed makes new pins fail once Close has begun.
	snap   atomic.Pointer[snapshot]
	pinMu  sync.Mutex
	pins   map[uint64]int
	closed bool

	// degraded is the sticky read-only state (nil while healthy). Set once
	// via CAS by the first write-path failure or scrub finding; read
	// lock-free by every mutation entry point and by Degraded(). See
	// degrade.go.
	degraded atomic.Pointer[DegradedError]

	// scrubStop/scrubDone manage the background scrubber goroutine started
	// when Options.ScrubInterval is positive; Close signals stop before
	// draining readers so a mid-pass scrub unpins promptly.
	scrubStop chan struct{}
	scrubDone chan struct{}
	scrubOnce sync.Once

	// reg is the per-index metrics registry (nil when DisableMetrics); qm
	// caches the query/insert metric handles resolved from it. Both are
	// fixed at construction, so reads need no lock.
	reg *obs.Registry
	qm  queryMetrics

	// mutable metadata (persisted on Sync/Close)
	nextDoc   DocID
	docCount  uint64
	maxDepth  int
	rootK     uint32
	rootResvd uint32
	metaDirty bool
	dictLen   int // interned names at last persist
	frozen    bool
	borrows   uint64 // reserve-borrowing events (not persisted; diagnostics)
}

// rootScope is the virtual suffix tree root's scope.
var rootScope = labeling.Root()

// NewMem creates an in-memory index, useful for tests and benchmarks.
func NewMem(opts Options) (*Index, error) {
	ps := opts.PageSize
	if ps == 0 {
		ps = btree.DefaultPageSize
	}
	reg := newRegistry(opts)
	tm := obs.NewTreeMetrics(reg)
	open := func() (*btree.BTree, error) {
		return btree.New(btree.NewMemPager(ps), btree.Options{PageSize: ps, NodeCache: opts.NodeCache, Metrics: tm, LegacyPageFormat: opts.LegacyFormat})
	}
	nodes, err := open()
	if err != nil {
		return nil, err
	}
	docs, err := open()
	if err != nil {
		return nil, err
	}
	store, err := open()
	if err != nil {
		return nil, err
	}
	aux, err := open()
	if err != nil {
		return nil, err
	}
	return initIndex(nodes, docs, store, aux, opts, reg)
}

// newRegistry builds the per-index metrics registry, or nil (everything
// no-ops) when the options disable observability.
func newRegistry(opts Options) *obs.Registry {
	if opts.DisableMetrics {
		return nil
	}
	return obs.NewRegistry()
}

// walFileName is the shared write-ahead log inside an index directory.
const walFileName = "wal"

// Open opens (or creates) a file-backed index in dir. Unless
// Options.DisableWAL is set, the four trees share a write-ahead log: any
// committed tail left by a crash is replayed before the trees are read, and
// any uncommitted tail is discarded, so Open always lands on the state of
// the last completed Sync. Recovery() reports whether a replay happened.
func Open(dir string, opts Options) (*Index, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	ps := opts.PageSize
	if ps == 0 {
		ps = btree.DefaultPageSize
	}
	reg := newRegistry(opts)
	walPath := filepath.Join(dir, walFileName)
	var wal *btree.WAL
	if opts.DisableWAL {
		if opts.WALShipper != nil {
			return nil, fmt.Errorf("core: WALShipper requires the write-ahead log (DisableWAL is set)")
		}
		// Refuse to ignore a log that may hold the only durable copy of
		// committed pages: opening past it would silently roll back (or
		// corrupt) the last committed Sync.
		if st, err := os.Stat(walPath); err == nil && st.Size() > 0 {
			return nil, fmt.Errorf("core: %s has a non-empty write-ahead log; open without DisableWAL to recover it", dir)
		}
	} else {
		var err error
		if wal, err = btree.OpenWAL(walPath, opts.FS); err != nil {
			return nil, err
		}
		// Attach metrics before Recover so a crash replay is observed too.
		wal.SetMetrics(obs.NewWALMetrics(reg))
		// And the shipper, so Recover re-ships a committed tail whose
		// shipping the previous crash may have interrupted.
		if opts.WALShipper != nil {
			wal.SetShipper(opts.WALShipper)
		}
	}

	var pagers []*btree.FilePager
	var trees []*btree.BTree
	fail := func(err error) (*Index, error) {
		for _, t := range trees {
			t.Close()
		}
		for _, p := range pagers[len(trees):] {
			p.Close()
		}
		if wal != nil {
			wal.Close()
		}
		return nil, err
	}
	// One shared bundle per layer: the four tree files aggregate into the
	// same pager/btree counters, giving whole-index hit rates.
	pm := obs.NewPagerMetrics(reg)
	tm := obs.NewTreeMetrics(reg)
	for i, name := range []string{"nodes.db", "docs.db", "store.db", "aux.db"} {
		pg, err := btree.OpenFilePagerOpts(filepath.Join(dir, name), ps, btree.PagerOptions{
			CachePages:   opts.CachePages,
			WAL:          wal,
			WALFileID:    uint8(i + 1),
			FS:           opts.FS,
			Metrics:      pm,
			CompressCold: opts.CompressColdPages,
		})
		if err != nil {
			return fail(err)
		}
		pagers = append(pagers, pg)
	}
	var recovery RecoveryInfo
	if wal != nil {
		// Replay must precede btree.New: the meta pages the trees are
		// about to read may exist only as committed WAL records.
		stats, err := wal.Recover()
		if err != nil {
			return fail(fmt.Errorf("core: WAL recovery: %w", err))
		}
		recovery = RecoveryInfo{
			Replayed:        stats.Replayed,
			PagesReplayed:   stats.PagesReplayed,
			FramesDiscarded: stats.FramesDiscarded,
		}
	}
	for _, pg := range pagers {
		t, err := btree.New(pg, btree.Options{PageSize: ps, NodeCache: opts.NodeCache, Metrics: tm, LegacyPageFormat: opts.LegacyFormat})
		if err != nil {
			return fail(err)
		}
		trees = append(trees, t)
	}
	ix, err := initIndex(trees[0], trees[1], trees[2], trees[3], opts, reg)
	if err != nil {
		return fail(err)
	}
	ix.wal = wal
	ix.pagers = pagers
	ix.recovery = recovery
	if opts.ScrubInterval > 0 {
		ix.startScrubber()
	}
	return ix, nil
}

func initIndex(nodes, docs, store, aux *btree.BTree, opts Options, reg *obs.Registry) (*Index, error) {
	ix := &Index{nodes: nodes, docs: docs, store: store, aux: aux, opts: opts,
		reg: reg, qm: newQueryMetrics(reg)}
	existing, err := ix.loadMeta()
	if err != nil {
		return nil, err
	}
	if !existing {
		ix.dict = seq.NewDict()
		ix.nextDoc = 1
		if len(opts.Schema) > 0 {
			ix.schema = xmltree.NewSchema(opts.Schema...)
		}
		if opts.Training != nil {
			ix.dict = opts.Training.Dict
			ix.stats = opts.Training.Stats
		}
		// New indexes default to the interned key format; LegacyFormat
		// selects the original fixed-width layout. Existing indexes had
		// their codec fixed by loadMeta.
		if opts.LegacyFormat {
			ix.kc = keyCodec{fmtV: keyFmtFixed}
		} else {
			ix.kc = keyCodec{fmtV: keyFmtInterned, pd: NewPathDict()}
		}
		ix.metaDirty = true
	}
	cfg := labeling.Config{ReserveDen: opts.ReserveDen}
	if ix.stats != nil {
		ix.alloc = labeling.NewStatsAllocator(ix.stats, cfg)
	} else {
		ix.alloc = labeling.Uniform{Config: cfg, Lambda: opts.Lambda}
	}
	ix.plans = plan.NewCache(opts.PlanCacheSize)
	if err := ix.loadSynopsis(existing); err != nil {
		return nil, err
	}
	// Publish the opening state as version 0. The synopsis head is shared
	// with this snapshot from the start, so the first mutation forks it.
	ix.pins = make(map[uint64]int)
	ix.synShared = true
	ix.snap.Store(&snapshot{
		epoch:     0,
		nodes:     ix.nodes.Snapshot(),
		docs:      ix.docs.Snapshot(),
		store:     ix.store.Snapshot(),
		syn:       ix.syn,
		maxDepth:  ix.maxDepth,
		docCount:  ix.docCount,
		nextDoc:   ix.nextDoc,
		rootK:     ix.rootK,
		rootResvd: ix.rootResvd,
	})
	return ix, nil
}

// Dict exposes the index's symbol dictionary. The pointer is fixed for the
// index's lifetime and the Dict is internally synchronized (inserts intern
// new names concurrently with query-side lookups), so the returned value is
// safe to use from any goroutine.
func (ix *Index) Dict() *seq.Dict { return ix.dict }

// Schema exposes the sibling-ordering schema, if any. Schemas are immutable
// after construction, so the returned value is safe to share.
func (ix *Index) Schema() *xmltree.Schema { return ix.schema }

// DocCount reports the number of indexed documents in the last published
// version (lock-free; a mutation in progress is not counted until it
// commits).
func (ix *Index) DocCount() uint64 {
	return ix.snap.Load().docCount
}

// NodeCount reports the number of virtual-suffix-tree nodes.
func (ix *Index) NodeCount() uint64 { return ix.nodes.Len() }

// BorrowCount reports how many insertions resolved a scope underflow by
// reserve borrowing since the index was opened (diagnostics for labeling
// ablations; not persisted).
func (ix *Index) BorrowCount() uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.borrows
}

// SizeBytes reports the total storage footprint of all trees.
func (ix *Index) SizeBytes() int64 {
	return ix.nodes.SizeBytes() + ix.docs.SizeBytes() + ix.store.SizeBytes() + ix.aux.SizeBytes()
}

// IndexSizeBytes reports the footprint of the index structure alone (the
// combined D/S-Ancestor tree plus the DocId tree), the quantity Figure 11(a)
// of the paper measures.
func (ix *Index) IndexSizeBytes() int64 {
	return ix.nodes.SizeBytes() + ix.docs.SizeBytes()
}

// FileStorage is one tree file's footprint within StorageStats.
type FileStorage struct {
	Name  string
	Bytes int64
}

// StorageStats describes an index's storage footprint: per-file bytes (file
// backed indexes only), the bytes-per-document ratio, the key format in use,
// and — when cold-page compression is on — the cold tier's current state.
type StorageStats struct {
	// Files lists the four tree files and their sizes (nil for in-memory
	// indexes).
	Files []FileStorage
	// TotalBytes sums the tree footprints (page data plus checksum trailers
	// for file-backed indexes; the WAL is excluded — it truncates on Sync).
	TotalBytes int64
	// BytesPerDoc is TotalBytes over the published document count (0 when
	// the index is empty).
	BytesPerDoc float64
	// KeyFormat is "fixed" or "interned".
	KeyFormat string
	// InternedPaths counts distinct root paths in the path dictionary
	// (interned format only).
	InternedPaths int
	// Cold-tier state, summed across the four pagers: resident compressed
	// pages, their compressed footprint, and the uncompressed bytes they
	// stand in for. All zero unless Options.CompressColdPages is set.
	ColdEntries                       int
	ColdCompressedBytes, ColdRawBytes int64
}

// StorageStats reports the index's storage footprint (see the field docs).
func (ix *Index) StorageStats() StorageStats {
	st := StorageStats{KeyFormat: "fixed"}
	if ix.kc.fmtV == keyFmtInterned {
		st.KeyFormat = "interned"
		st.InternedPaths = ix.kc.pd.Len()
	}
	if len(ix.pagers) > 0 {
		for i, p := range ix.pagers {
			b := p.Size()
			st.Files = append(st.Files, FileStorage{Name: indexFileNames[i], Bytes: b})
			st.TotalBytes += b
			entries, comp, raw := p.ColdStats()
			st.ColdEntries += entries
			st.ColdCompressedBytes += comp
			st.ColdRawBytes += raw
		}
	} else {
		st.TotalBytes = ix.SizeBytes()
	}
	if dc := ix.DocCount(); dc > 0 {
		st.BytesPerDoc = float64(st.TotalBytes) / float64(dc)
	}
	return st
}

// Recovered reports whether opening this index replayed a committed WAL
// tail left by a crash.
func (ix *Index) Recovered() bool { return ix.recovery.Replayed }

// Recovery reports what Open found in the write-ahead log.
func (ix *Index) Recovery() RecoveryInfo { return ix.recovery }

func (ix *Index) trees() []*btree.BTree {
	return []*btree.BTree{ix.nodes, ix.docs, ix.store, ix.aux}
}

// Sync persists metadata and flushes all trees. For a WAL-backed index the
// whole Sync is one atomic commit: either every tree's new state (and the
// metadata) survives a crash, or none of it does. A failing Sync degrades
// the index to read-only (ErrReadOnly): the commit that failed may sit
// half-staged in the log, so no later mutation may build on it — queries
// keep serving the last published snapshot, and Heal retries the commit
// once the disk recovers.
func (ix *Index) Sync() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := ix.failIfDegraded(); err != nil {
		return err
	}
	if err := ix.syncLocked(); err != nil {
		ix.degrade("sync", err)
		return err
	}
	return nil
}

// maybeAutoCheckpointLocked bounds WAL growth (Options.WALMaxBytes): when
// the log has outgrown the cap, the current state is group-committed —
// checkpointing every staged page into the main files and truncating the
// log — before the next mutation begins. It runs at the top of a mutation,
// while pending == published, so the commit can never persist half of an
// operation. A failure degrades the index and fails the mutation before it
// touched anything.
func (ix *Index) maybeAutoCheckpointLocked() error {
	max := ix.opts.WALMaxBytes
	if max <= 0 || ix.wal == nil || ix.wal.Size() <= max {
		return nil
	}
	if err := ix.syncLocked(); err != nil {
		ix.degrade("auto-checkpoint", err)
		return err
	}
	ix.qm.autoCheckpoints.Inc()
	return nil
}

func (ix *Index) syncLocked() error {
	// Publish before flushing: Reclaim moves every drained page version to
	// the reusable list, and the flush below then persists those to the
	// durable on-disk freelist (legal exactly because they are drained — no
	// pinned reader can reach them). This is the one place version garbage
	// actually returns to disk; between Syncs it only recycles in memory.
	ix.publishLocked()
	if err := ix.saveMeta(); err != nil {
		// Partial meta/synopsis blobs in the aux tree must not ride into a
		// later publish; drop the window (the data trees just published, so
		// for them this is a no-op).
		ix.rollbackLocked()
		return err
	}
	if ix.wal != nil {
		// Stage every tree's dirty pages into the shared log, then commit
		// them together: the commit record's fsync is the one durability
		// point, after which the pages are checkpointed into the four
		// main files and the log is truncated.
		for _, t := range ix.trees() {
			if err := t.Flush(); err != nil {
				return err
			}
		}
		if err := ix.wal.Commit(); err != nil {
			return err
		}
		// Surface any write-back error an eviction had to swallow; the
		// group commit bypasses the per-pager Sync that normally does.
		for _, p := range ix.pagers {
			if err := p.TakeRecordedError(); err != nil {
				return err
			}
		}
		return nil
	}
	for _, t := range ix.trees() {
		if err := t.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close persists and closes the index. New queries fail with ErrClosed from
// the moment Close begins; queries already running are drained (waited for)
// up to Options.CloseDrainTimeout before the files are closed under them.
func (ix *Index) Close() error {
	ix.stopScrubber()
	ix.pinMu.Lock()
	ix.closed = true
	ix.pinMu.Unlock()
	ix.drainReaders()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var firstErr error
	if ix.wal != nil {
		// The group commit must run before the per-tree closes: a tree's
		// Close syncs its own pager, which for a shared WAL would commit
		// whatever happened to be staged at that moment — including other
		// trees' partial state. After syncLocked everything is clean, so
		// the per-tree closes are no-ops plus file-handle releases.
		if err := ix.syncLocked(); err != nil {
			firstErr = err
		}
		for _, t := range ix.trees() {
			if err := t.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := ix.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		return firstErr
	}
	if err := ix.saveMeta(); err != nil {
		firstErr = err
	}
	for _, t := range ix.trees() {
		if err := t.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- metadata persistence ---------------------------------------------------

// Metadata versions double as the key-format signal: version 1 indexes use
// fixed-width D-Ancestor keys (and are byte-identical to what pre-interning
// binaries wrote), version 2 indexes use interned keys plus the persisted
// path dictionary. Binaries that predate interning fail loudly on version 2
// instead of misreading the keys.
const (
	metaVersion         = 1
	metaVersionInterned = 2
)

// loadMeta restores persisted metadata; existing reports whether the aux
// tree held an index.
func (ix *Index) loadMeta() (existing bool, err error) {
	blob, ok, err := ix.getBlob("meta")
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	if len(blob) < 33 {
		return false, fmt.Errorf("core: meta blob truncated (%d bytes)", len(blob))
	}
	switch v := binary.BigEndian.Uint32(blob[0:4]); v {
	case metaVersion:
		ix.kc = keyCodec{fmtV: keyFmtFixed}
	case metaVersionInterned:
		ix.kc = keyCodec{fmtV: keyFmtInterned} // dictionary attached below
	default:
		return false, fmt.Errorf("core: unsupported index version %d", v)
	}
	ix.nextDoc = DocID(binary.BigEndian.Uint64(blob[4:12]))
	ix.docCount = binary.BigEndian.Uint64(blob[12:20])
	ix.maxDepth = int(binary.BigEndian.Uint32(blob[20:24]))
	ix.rootK = binary.BigEndian.Uint32(blob[24:28])
	ix.rootResvd = binary.BigEndian.Uint32(blob[28:32])
	// Remaining: schema names (uvarint count + strings).
	rest := blob[32:]
	nNames, m := binary.Uvarint(rest)
	if m <= 0 {
		return false, fmt.Errorf("core: meta schema truncated")
	}
	rest = rest[m:]
	var names []string
	for i := uint64(0); i < nNames; i++ {
		l, m := binary.Uvarint(rest)
		if m <= 0 || uint64(len(rest)-m) < l {
			return false, fmt.Errorf("core: meta schema name %d truncated", i)
		}
		rest = rest[m:]
		names = append(names, string(rest[:l]))
		rest = rest[l:]
	}
	if len(names) > 0 {
		ix.schema = xmltree.NewSchema(names...)
		ix.opts.Schema = names
	}

	dictBlob, ok, err := ix.getBlob("dict")
	if err != nil {
		return false, err
	}
	if !ok {
		return false, fmt.Errorf("core: index has meta but no dictionary")
	}
	ix.dict, err = seq.DecodeDict(dictBlob)
	if err != nil {
		return false, err
	}
	ix.dictLen = ix.dict.Len()

	if ix.kc.fmtV == keyFmtInterned {
		pdBlob, ok, err := ix.getBlob(pathDictBlob)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, fmt.Errorf("core: interned-key index has no path dictionary")
		}
		if ix.kc.pd, err = DecodePathDict(pdBlob); err != nil {
			return false, err
		}
		ix.pdLen = ix.kc.pd.Len()
	}

	statsBlob, ok, err := ix.getBlob("stats")
	if err != nil {
		return false, err
	}
	if ok {
		st, err := labeling.DecodeStats(statsBlob)
		if err != nil {
			return false, err
		}
		ix.stats = st
	} else if ix.opts.Training != nil {
		// The caller supplied training but the index was built without it;
		// honouring it would corrupt scope allocation.
		return false, fmt.Errorf("core: index was built without labeling statistics; cannot add them on reopen")
	}
	return true, nil
}

func (ix *Index) saveMeta() error {
	if ix.synDirty {
		if err := ix.putBlob(synopsisBlob, ix.syn.Encode()); err != nil {
			return err
		}
		ix.synDirty = false
	}
	if !ix.metaDirty && ix.dict != nil && ix.dict.Len() == ix.dictLen &&
		(ix.kc.pd == nil || ix.kc.pd.Len() == ix.pdLen) {
		return nil
	}
	ver := uint32(metaVersion)
	if ix.kc.fmtV == keyFmtInterned {
		ver = metaVersionInterned
	}
	blob := make([]byte, 32)
	binary.BigEndian.PutUint32(blob[0:4], ver)
	binary.BigEndian.PutUint64(blob[4:12], uint64(ix.nextDoc))
	binary.BigEndian.PutUint64(blob[12:20], ix.docCount)
	binary.BigEndian.PutUint32(blob[20:24], uint32(ix.maxDepth))
	binary.BigEndian.PutUint32(blob[24:28], ix.rootK)
	binary.BigEndian.PutUint32(blob[28:32], ix.rootResvd)
	blob = binary.AppendUvarint(blob, uint64(len(ix.opts.Schema)))
	for _, n := range ix.opts.Schema {
		blob = binary.AppendUvarint(blob, uint64(len(n)))
		blob = append(blob, n...)
	}
	if err := ix.putBlob("meta", blob); err != nil {
		return err
	}
	if err := ix.putBlob("dict", ix.dict.Encode()); err != nil {
		return err
	}
	if ix.kc.pd != nil {
		// Persisted in the same aux-tree window as everything else, so one
		// WAL commit covers keys and the dictionary they reference.
		if err := ix.putBlob(pathDictBlob, ix.kc.pd.Encode()); err != nil {
			return err
		}
		ix.pdLen = ix.kc.pd.Len()
	}
	if ix.stats != nil {
		if err := ix.putBlob("stats", ix.stats.Encode()); err != nil {
			return err
		}
	}
	ix.metaDirty = false
	ix.dictLen = ix.dict.Len()
	return nil
}

// pathDictBlob is the aux-tree blob name the path dictionary persists under
// (interned key format only).
const pathDictBlob = "pathdict"

// --- blob storage in the aux tree -------------------------------------------

func blobChunkKey(name string, i int) []byte {
	k := append([]byte(name), '/')
	return keyenc.AppendUint32(k, uint32(i))
}

func (ix *Index) putBlob(name string, data []byte) error {
	max := ix.aux.MaxEntrySize() - len(name) - 64
	if max < 64 {
		return fmt.Errorf("core: page size too small for blob storage")
	}
	i := 0
	for off := 0; off < len(data) || i == 0; i++ {
		end := off + max
		if end > len(data) {
			end = len(data)
		}
		if err := ix.aux.Put(blobChunkKey(name, i), data[off:end]); err != nil {
			return err
		}
		off = end
		if off >= len(data) {
			i++
			break
		}
	}
	// Remove stale chunks from a previous, longer blob.
	var stale [][]byte
	err := ix.aux.ScanPrefix(append([]byte(name), '/'), func(k, v []byte) (bool, error) {
		idx := binary.BigEndian.Uint32(k[len(k)-4:])
		if int(idx) >= i {
			stale = append(stale, append([]byte(nil), k...))
		}
		return true, nil
	})
	if err != nil {
		return err
	}
	for _, k := range stale {
		if _, err := ix.aux.Delete(k); err != nil {
			return err
		}
	}
	return nil
}

func (ix *Index) getBlob(name string) ([]byte, bool, error) {
	var out []byte
	found := false
	err := ix.aux.ScanPrefix(append([]byte(name), '/'), func(k, v []byte) (bool, error) {
		found = true
		out = append(out, v...)
		return true, nil
	})
	return out, found, err
}
