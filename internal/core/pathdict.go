package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"vist/internal/seq"
)

// PathDict interns the distinct root-path prefixes of the index's elements
// to compact IDs, so interned-format D-Ancestor keys carry one varuint
// instead of a 4-bytes-per-symbol sequence. The set of distinct prefixes is
// exactly the set of element paths the synopsis tracks — small, regardless
// of document count — which is what makes interning pay: every one of the
// millions of keys sharing a prefix shrinks to the cost of one table entry.
//
// The dictionary is grow-only: IDs are never reassigned or reclaimed, so a
// query pinned at an old snapshot can always resolve the IDs its keys carry,
// and entries orphaned by a rolled-back insert are harmless (at worst one
// table row nothing references). ID 0 is the empty prefix (depth-1 elements).
//
// Reads are lock-free: Lookup and Path run on every query probe and on every
// key decoded by a range scan, so they load an immutable snapshot from an
// atomic pointer instead of sharing an RWMutex cache line across query
// goroutines. Intern copies the (tiny, schema-sized) table on growth.
type PathDict struct {
	mu    sync.Mutex // serializes Intern's copy-and-swap
	state atomic.Pointer[pathDictState]
}

// pathDictState is an immutable snapshot of the dictionary. Never mutated
// after publication; Intern replaces the whole state.
type pathDictState struct {
	ids   map[string]uint32
	paths [][]seq.Symbol
}

// NewPathDict returns a dictionary holding only the empty prefix (ID 0).
func NewPathDict() *PathDict {
	d := &PathDict{}
	d.state.Store(&pathDictState{
		ids:   map[string]uint32{"": 0},
		paths: [][]seq.Symbol{nil},
	})
	return d
}

// appendPathKey appends the map key for a prefix to dst: the raw
// little-endian symbol bytes (only equality matters, not order). Callers
// pass a stack buffer so typical lookups never allocate — indexing a map
// with string(bytes) does not copy.
func appendPathKey(dst []byte, path []seq.Symbol) []byte {
	for _, s := range path {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s))
	}
	return dst
}

// Intern returns the ID for path, assigning the next free one on first use.
// Writer-side only (insert, delete, compact); queries use Lookup.
func (d *PathDict) Intern(path []seq.Symbol) uint32 {
	var kbuf [64]byte
	k := appendPathKey(kbuf[:0], path)
	if id, ok := d.state.Load().ids[string(k)]; ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.state.Load()
	if id, ok := st.ids[string(k)]; ok {
		return id
	}
	next := &pathDictState{
		ids:   make(map[string]uint32, len(st.ids)+1),
		paths: make([][]seq.Symbol, len(st.paths), len(st.paths)+1),
	}
	for pk, id := range st.ids {
		next.ids[pk] = id
	}
	copy(next.paths, st.paths)
	id := uint32(len(next.paths))
	next.ids[string(k)] = id
	next.paths = append(next.paths, append([]seq.Symbol(nil), path...))
	d.state.Store(next)
	return id
}

// Lookup returns the ID for path if it has been interned. A miss means no
// index node can carry the prefix — the group provably does not exist.
func (d *PathDict) Lookup(path []seq.Symbol) (uint32, bool) {
	var kbuf [64]byte
	k := appendPathKey(kbuf[:0], path)
	id, ok := d.state.Load().ids[string(k)]
	return id, ok
}

// Path resolves an ID back to its prefix. The returned slice is shared and
// must not be modified.
func (d *PathDict) Path(id uint32) ([]seq.Symbol, bool) {
	st := d.state.Load()
	if int(id) >= len(st.paths) {
		return nil, false
	}
	return st.paths[id], true
}

// Len reports the number of interned prefixes (including the empty one).
func (d *PathDict) Len() int {
	return len(d.state.Load().paths)
}

const pathDictVersion = 1

// Encode serializes the dictionary for persistence in the aux tree. IDs are
// positional, so the encoding is just the paths in ID order.
func (d *PathDict) Encode() []byte {
	st := d.state.Load()
	out := binary.AppendUvarint(nil, pathDictVersion)
	out = binary.AppendUvarint(out, uint64(len(st.paths)))
	for _, p := range st.paths {
		out = binary.AppendUvarint(out, uint64(len(p)))
		for _, s := range p {
			out = binary.AppendUvarint(out, uint64(s))
		}
	}
	return out
}

// DecodePathDict restores a dictionary produced by Encode.
func DecodePathDict(b []byte) (*PathDict, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 || v != pathDictVersion {
		return nil, fmt.Errorf("core: unsupported path dictionary version")
	}
	b = b[n:]
	count, n := binary.Uvarint(b)
	if n <= 0 || count == 0 || count > 1<<31 {
		return nil, fmt.Errorf("core: path dictionary truncated or oversized")
	}
	b = b[n:]
	st := &pathDictState{
		ids:   make(map[string]uint32, count),
		paths: make([][]seq.Symbol, 0, count),
	}
	for i := uint64(0); i < count; i++ {
		plen, n := binary.Uvarint(b)
		if n <= 0 || plen > MaxDepth {
			return nil, fmt.Errorf("core: path dictionary entry %d truncated", i)
		}
		b = b[n:]
		var p []seq.Symbol
		for j := uint64(0); j < plen; j++ {
			s, n := binary.Uvarint(b)
			if n <= 0 || s > 1<<32-1 {
				return nil, fmt.Errorf("core: path dictionary entry %d symbol %d truncated", i, j)
			}
			b = b[n:]
			p = append(p, seq.Symbol(s))
		}
		k := string(appendPathKey(nil, p))
		if _, dup := st.ids[k]; dup {
			return nil, fmt.Errorf("core: path dictionary entry %d duplicates an earlier path", i)
		}
		st.ids[k] = uint32(i)
		st.paths = append(st.paths, p)
	}
	if st.paths[0] != nil && len(st.paths[0]) != 0 {
		return nil, fmt.Errorf("core: path dictionary ID 0 is not the empty prefix")
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("core: %d trailing path dictionary bytes", len(b))
	}
	d := &PathDict{}
	d.state.Store(st)
	return d, nil
}
