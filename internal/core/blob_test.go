package core

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// blobOfSize builds a deterministic, position-dependent payload so chunk
// reassembly errors (wrong order, stale tail) corrupt the comparison.
func blobOfSize(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*7)
	}
	return b
}

func blobChunks(t *testing.T, ix *Index, name string) []uint32 {
	t.Helper()
	var idxs []uint32
	err := ix.aux.ScanPrefix(append([]byte(name), '/'), func(k, v []byte) (bool, error) {
		idxs = append(idxs, binary.BigEndian.Uint32(k[len(k)-4:]))
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return idxs
}

// TestBlobShrinkAcrossChunkBoundary rewrites a multi-chunk blob with a
// shorter payload whose chunk count drops, and verifies the stale trailing
// chunks are removed: a read-back must return exactly the new bytes, not the
// new bytes plus a leftover tail.
func TestBlobShrinkAcrossChunkBoundary(t *testing.T) {
	ix := mustMem(t, Options{})
	chunk := ix.aux.MaxEntrySize() - len("blob") - 64
	if chunk < 64 {
		t.Fatalf("chunk size %d too small for the test", chunk)
	}

	for _, step := range []struct {
		name string
		size int
	}{
		{"grow to 4 chunks", 3*chunk + chunk/2},
		{"shrink to 2 chunks", chunk + chunk/2}, // crosses two chunk boundaries down
		{"shrink to 1 partial chunk", chunk / 3},
		{"shrink to empty", 0},
		{"regrow to 3 chunks", 2*chunk + 1},
	} {
		want := blobOfSize(step.size, byte(step.size))
		if err := ix.putBlob("blob", want); err != nil {
			t.Fatalf("%s: putBlob: %v", step.name, err)
		}
		got, ok, err := ix.getBlob("blob")
		if err != nil {
			t.Fatalf("%s: getBlob: %v", step.name, err)
		}
		if !ok {
			t.Fatalf("%s: blob vanished", step.name)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: read %d bytes, want %d (stale chunks leaked into the payload?)", step.name, len(got), len(want))
		}
		wantChunks := (step.size + chunk - 1) / chunk
		if wantChunks == 0 {
			wantChunks = 1 // empty blobs still write chunk 0
		}
		idxs := blobChunks(t, ix, "blob")
		if len(idxs) != wantChunks {
			t.Fatalf("%s: %d chunks on disk (%v), want %d", step.name, len(idxs), idxs, wantChunks)
		}
		for i, idx := range idxs {
			if int(idx) != i {
				t.Fatalf("%s: chunk indices %v not dense from 0", step.name, idxs)
			}
		}
	}
}
