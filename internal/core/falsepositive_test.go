package core

import (
	"reflect"
	"testing"

	"vist/internal/query"
	"vist/internal/treematch"
)

// This file catalogs the soundness boundary of ViST's subsequence matching.
// Later literature showed the paper's algorithm can report false positives
// for some branching queries: a non-contiguous subsequence match checks
// D-Ancestorship (prefix paths) and S-Ancestorship (suffix-tree order), but
// neither pins two branch matches to the *same* branching node instance.
// Each case below documents one such pattern, asserting three things:
//
//  1. candidates ⊇ oracle (ViST never loses a true answer),
//  2. the specific doc is (or is not) a false positive, as cataloged,
//  3. QueryVerified == oracle (refinement restores exactness).

type fpCase struct {
	name string
	docs []string
	expr string
	// oraclePos lists the doc positions a correct matcher returns.
	oraclePos []int
	// falsePos lists doc positions ViST candidates additionally contain.
	// Empty means the pattern is NOT a false positive for ViST (also worth
	// pinning down).
	falsePos []int
}

var fpCases = []fpCase{
	{
		// The classic sibling-ambiguity false positive: the query wants ONE
		// b owning both c and d; the document has two sibling b's, one with
		// c and one with d. The document's sequence (a)(b,a)(c,ab)(b,a)(d,ab)
		// contains the query sequence (a)(b,a)(c,ab)(d,ab) as a subsequence
		// — (d,ab) matches under the SECOND b while (c,ab) matched under
		// the first — and every prefix test passes, so sequence matching
		// cannot tell the two b instances apart.
		name:      "split-branch-across-siblings",
		docs:      []string{"<a><b><c/><d/></b></a>", "<a><b><c/></b><b><d/></b></a>"},
		expr:      "/a/b[c][d]",
		oraclePos: []int{0},
		falsePos:  []int{1},
	},
	{
		// Same shape one level deeper, with values.
		name: "split-branch-with-values",
		docs: []string{
			"<r><p><s><l>x</l><n>y</n></s></p></r>",
			"<r><p><s><l>x</l></s><s><n>y</n></s></p></r>",
		},
		expr:      "/r/p/s[l='x'][n='y']",
		oraclePos: []int{0},
		falsePos:  []int{1},
	},
	{
		// NOT a false positive: when the branches hang off the document
		// root, there is only one instance of the branching node, so the
		// subsequence match is exact.
		name:      "root-branch-is-exact",
		docs:      []string{"<a><b/><c/></a>", "<a><b/></a>", "<a><c/></a>"},
		expr:      "/a[b][c]",
		oraclePos: []int{0},
		falsePos:  nil,
	},
	{
		// Wildcard variant of the split branch: '*' instantiates to the
		// same symbol for both branches but different instances.
		name: "split-branch-under-wildcard",
		docs: []string{
			"<a><x><b/><c/></x></a>",
			"<a><x><b/></x><x><c/></x></a>",
		},
		expr:      "/a/*[b]/c",
		oraclePos: []int{0},
		falsePos:  []int{1},
	},
	{
		// NOT a false positive: when the two m instances sit on DIFFERENT
		// root paths ([s,m] vs [s,q,m]), the D-Ancestorship prefix test
		// tells them apart — the second branch's prefix must extend the
		// instantiated path of the first match exactly. Only same-path
		// sibling instances evade sequence matching.
		name: "split-branch-different-paths-is-exact",
		docs: []string{
			"<s><m><u>1</u><v>2</v></m></s>",
			"<s><m><u>1</u></m><q><m><v>2</v></m></q></s>",
		},
		expr:      "//m[u='1'][v='2']",
		oraclePos: []int{0},
		falsePos:  nil,
	},
	{
		// The descendant-axis variant of the same-path split IS a false
		// positive, exactly like the child-axis one.
		name: "split-branch-descendant-same-path",
		docs: []string{
			"<s><m><u>1</u><v>2</v></m></s>",
			"<s><m><u>1</u></m><m><v>2</v></m></s>",
		},
		expr:      "//m[u='1'][v='2']",
		oraclePos: []int{0},
		falsePos:  []int{1},
	},
}

func TestFalsePositiveCatalog(t *testing.T) {
	for _, c := range fpCases {
		t.Run(c.name, func(t *testing.T) {
			ix := mustMem(t, Options{})
			ids := insertXML(t, ix, c.docs...)

			q := query.MustParse(c.expr)
			var oracle []DocID
			for _, p := range c.oraclePos {
				oracle = append(oracle, ids[p])
			}
			wantCandidates := append([]DocID(nil), oracle...)
			for _, p := range c.falsePos {
				wantCandidates = append(wantCandidates, ids[p])
			}
			sortDocIDs(wantCandidates)

			candidates, err := ix.Query(c.expr)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalize(candidates), normalize(wantCandidates)) {
				t.Errorf("candidates = %v, cataloged %v", candidates, wantCandidates)
			}

			// The oracle agrees with the catalog (sanity of the catalog
			// itself).
			for i, p := range c.docs {
				doc, _ := ix.Get(ids[i])
				want := contains(c.oraclePos, i)
				if got := treematch.Matches(q, doc); got != want {
					t.Errorf("oracle(%s doc %d %q) = %v, catalog says %v", c.name, i, p, got, want)
				}
			}

			verified, err := ix.QueryVerified(c.expr)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalize(verified), normalize(oracle)) {
				t.Errorf("verified = %v, oracle %v", verified, oracle)
			}
		})
	}
}

func sortDocIDs(ids []DocID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
