package core

import (
	"encoding/binary"
	"fmt"
)

// nodeRecord is the value stored with each virtual-suffix-tree node in the
// combined D/S-Ancestor tree. Together with the n in the key it forms the
// paper's dynamic scope ⟨n, size, k⟩ (Definition 3), extended with the
// bookkeeping that dynamic insertion and deletion need.
type nodeRecord struct {
	// size completes the node's scope ⟨n, size⟩.
	size uint64
	// parentN is the label of the node's immediate parent in the virtual
	// suffix tree (the root's children carry the root label 0). It makes
	// "is an immediate child of" checks exact during insertion and lets
	// deletion walk a document's path bottom-up.
	parentN uint64
	// k counts the arrival-order child slots consumed under this node
	// (Definition 3's k).
	k uint32
	// reserveUsed counts labels consumed from this node's underflow
	// reserve.
	reserveUsed uint32
	// refcount counts documents whose insertion path passes through this
	// node; the node is removed when it drops to zero.
	refcount uint32
	// flags carries flagSequential for nodes labeled by underflow
	// borrowing.
	flags uint8
}

const (
	// flagSequential marks nodes created by reserve borrowing; the paper:
	// sequentially labeled nodes "can not be shared with other sequences,
	// but they are still properly indexed for matching".
	flagSequential = 1 << 0

	nodeRecordSize = 8 + 8 + 4 + 4 + 4 + 1
)

func (r nodeRecord) sequential() bool { return r.flags&flagSequential != 0 }

func (r nodeRecord) encode() []byte {
	b := make([]byte, nodeRecordSize)
	binary.BigEndian.PutUint64(b[0:8], r.size)
	binary.BigEndian.PutUint64(b[8:16], r.parentN)
	binary.BigEndian.PutUint32(b[16:20], r.k)
	binary.BigEndian.PutUint32(b[20:24], r.reserveUsed)
	binary.BigEndian.PutUint32(b[24:28], r.refcount)
	b[28] = r.flags
	return b
}

func decodeNodeRecord(b []byte) (nodeRecord, error) {
	if len(b) != nodeRecordSize {
		return nodeRecord{}, fmt.Errorf("core: node record has %d bytes, want %d", len(b), nodeRecordSize)
	}
	return nodeRecord{
		size:        binary.BigEndian.Uint64(b[0:8]),
		parentN:     binary.BigEndian.Uint64(b[8:16]),
		k:           binary.BigEndian.Uint32(b[16:20]),
		reserveUsed: binary.BigEndian.Uint32(b[20:24]),
		refcount:    binary.BigEndian.Uint32(b[24:28]),
		flags:       b[28],
	}, nil
}

// encodeRecord serializes a node record for the codec's format. The
// interned format varint-encodes every field and stores the parent label as
// a delta from the node's own label n (a child label always exceeds its
// parent's, so the delta is small; the subtraction wraps mod 2^64 and the
// decode inverts it exactly, so no guard is needed). Typical records shrink
// from the fixed 29 bytes to 6–10.
func (kc keyCodec) encodeRecord(n uint64, r nodeRecord) []byte {
	if kc.fmtV == keyFmtFixed {
		return r.encode()
	}
	b := make([]byte, 1, 24)
	b[0] = r.flags
	b = binary.AppendUvarint(b, r.size)
	b = binary.AppendUvarint(b, n-r.parentN)
	b = binary.AppendUvarint(b, uint64(r.k))
	b = binary.AppendUvarint(b, uint64(r.reserveUsed))
	return binary.AppendUvarint(b, uint64(r.refcount))
}

// decodeRecord parses a node record for the codec's format. n is the node's
// own label from the key; the interned format needs it to undo the parent
// delta.
func (kc keyCodec) decodeRecord(n uint64, b []byte) (nodeRecord, error) {
	if kc.fmtV == keyFmtFixed {
		return decodeNodeRecord(b)
	}
	if len(b) < 6 {
		return nodeRecord{}, fmt.Errorf("core: node record truncated (%d bytes)", len(b))
	}
	r := nodeRecord{flags: b[0]}
	rest := b[1:]
	fields := [5]uint64{}
	for i := range fields {
		v, m := binary.Uvarint(rest)
		if m <= 0 {
			return nodeRecord{}, fmt.Errorf("core: node record field %d truncated", i)
		}
		fields[i] = v
		rest = rest[m:]
	}
	if len(rest) != 0 {
		return nodeRecord{}, fmt.Errorf("core: %d trailing node record bytes", len(rest))
	}
	const max32 = uint64(^uint32(0))
	if fields[2] > max32 || fields[3] > max32 || fields[4] > max32 {
		return nodeRecord{}, fmt.Errorf("core: node record counter overflows uint32")
	}
	r.size = fields[0]
	r.parentN = n - fields[1]
	r.k = uint32(fields[2])
	r.reserveUsed = uint32(fields[3])
	r.refcount = uint32(fields[4])
	return r, nil
}
