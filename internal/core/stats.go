package core

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// QueryStats reports how much work a query's execution performed — the
// quantities the paper's analysis reasons about: how many D-Ancestor range
// queries were issued, how many S-Ancestor entries they touched, and how
// many DocId range queries produced the answers. RIST/ViST's advantage over
// the naive algorithm is visible here: NodesVisited stays close to the
// number of genuine partial matches instead of the size of traversed
// subtrees.
type QueryStats struct {
	// Sequences counts the structure-encoded sequences the query expanded
	// into (branch permutations × name-kind alternatives).
	Sequences int
	// RangeScans counts D-Ancestor/S-Ancestor range queries issued
	// (B+Tree seeks; one per candidate prefix length per partial match).
	RangeScans int
	// NodesVisited counts index entries that matched some query element
	// (partial-match states entered).
	NodesVisited int
	// DocScans counts final DocId-tree range queries.
	DocScans int
	// PagesRead counts B+Tree pages fetched on the query's behalf (descent
	// nodes and leaf-chain pages of the node and DocId trees) — the unit
	// the page budget and the cancellation checkpoint interval are
	// denominated in.
	PagesRead int
	// Candidates is the number of distinct documents returned (or collected
	// so far, when a budget or cancellation stop cut the query short).
	Candidates int
	// Stages is the per-stage wall-time breakdown (zero except Total when
	// the index was opened with DisableMetrics).
	Stages StageTimings
	// Plan describes the execution strategy the planner chose for this
	// query (per-sequence mode, synopsis probes, selectivity order). Empty
	// when the index was opened with DisablePlanner or the query fell back
	// to the disassemble-and-join path.
	Plan string
}

// StageTimings decomposes a query's wall time into the pipeline the paper's
// Algorithm 2 implies: parse the expression, probe the D-Ancestor key space,
// range-scan the S-Ancestor label ranges, collect DocIDs, and (for verified
// queries) refine against stored documents. The stages do not sum to Total:
// lock wait, sequence bookkeeping, and result sorting are deliberately left
// in the remainder, so `Total - sum(stages)` is the index's own overhead.
//
// Probe, Scan, and Collect are sampled on large queries — the first 32
// events of each stage are timed exactly, then one in 16 (scaled by 16) — so
// hot seek loops don't pay two clock reads per iteration. Small queries get
// exact times; large ones a statistical estimate that can deviate a few
// percent (and occasionally overshoot the stage's true share).
type StageTimings struct {
	// Parse covers expression parsing plus expansion into structure-encoded
	// sequence variants (zero for pre-parsed QueryParsedCtx queries, whose
	// parse happened outside the index).
	Parse time.Duration
	// Probe is time in the first B+Tree seek of each D-Ancestor range scan —
	// landing in the (symbol, prefix) key space.
	Probe time.Duration
	// Scan is time in the follow-up seeks of those range scans — walking and
	// label-skipping within S-Ancestor scopes.
	Scan time.Duration
	// Collect is time in DocId-tree range scans gathering document IDs.
	Collect time.Duration
	// Verify is time loading and tree-matching stored documents
	// (QueryVerified only).
	Verify time.Duration
	// Total is the query's wall time from entry to observation, including
	// everything above plus lock wait and fixed overhead.
	Total time.Duration
}

// String renders the nonzero stages compactly.
func (st StageTimings) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%s", st.Total.Round(time.Microsecond))
	for _, s := range []struct {
		name string
		d    time.Duration
	}{{"parse", st.Parse}, {"probe", st.Probe}, {"scan", st.Scan}, {"collect", st.Collect}, {"verify", st.Verify}} {
		if s.d > 0 {
			fmt.Fprintf(&b, " %s=%s", s.name, s.d.Round(time.Microsecond))
		}
	}
	return b.String()
}

// Merge folds another query's stats into s: every work counter and stage
// duration is summed, Total included. A scatter-gather caller therefore gets
// totals that mean "work done across all shards"; it should overwrite
// Stages.Total with its own wall clock afterwards (summed per-shard wall
// times exceed elapsed time when shards run in parallel). Plan strings are
// not merged — the caller composes its own per-shard plan summary.
func (s *QueryStats) Merge(o QueryStats) {
	s.Sequences += o.Sequences
	s.RangeScans += o.RangeScans
	s.NodesVisited += o.NodesVisited
	s.DocScans += o.DocScans
	s.PagesRead += o.PagesRead
	s.Candidates += o.Candidates
	s.Stages.Parse += o.Stages.Parse
	s.Stages.Probe += o.Stages.Probe
	s.Stages.Scan += o.Stages.Scan
	s.Stages.Collect += o.Stages.Collect
	s.Stages.Verify += o.Stages.Verify
	s.Stages.Total += o.Stages.Total
}

// String renders the counters compactly.
func (s QueryStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sequences=%d rangeScans=%d nodesVisited=%d docScans=%d pagesRead=%d candidates=%d",
		s.Sequences, s.RangeScans, s.NodesVisited, s.DocScans, s.PagesRead, s.Candidates)
	if s.Stages.Total > 0 {
		fmt.Fprintf(&b, " %s", s.Stages)
	}
	return b.String()
}

// Explain renders a multi-line report: the per-stage timing breakdown with
// each stage's share of the total, then the work counters. This is what
// `vist query -explain` and vistshell's explain command print.
func (s QueryStats) Explain() string {
	var b strings.Builder
	total := s.Stages.Total
	fmt.Fprintf(&b, "stage timings:\n")
	row := func(name string, d time.Duration) {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(d) / float64(total)
		}
		fmt.Fprintf(&b, "  %-10s %12s  %5.1f%%\n", name, d.Round(time.Microsecond), pct)
	}
	accounted := s.Stages.Parse + s.Stages.Probe + s.Stages.Scan + s.Stages.Collect + s.Stages.Verify
	if accounted == 0 {
		fmt.Fprintf(&b, "  (per-stage timing disabled: index opened with DisableMetrics)\n")
	} else {
		for _, st := range []struct {
			name string
			d    time.Duration
		}{{"parse", s.Stages.Parse}, {"probe", s.Stages.Probe}, {"scan", s.Stages.Scan}, {"collect", s.Stages.Collect}, {"verify", s.Stages.Verify}} {
			if st.d > 0 {
				row(st.name, st.d)
			}
		}
		if rest := total - accounted; rest > 0 {
			row("other", rest)
		}
	}
	if total > 0 {
		fmt.Fprintf(&b, "  %-10s %12s\n", "total", total.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "counters: %d sequences, %d range scans, %d nodes visited, %d doc scans, %d pages read, %d candidates",
		s.Sequences, s.RangeScans, s.NodesVisited, s.DocScans, s.PagesRead, s.Candidates)
	if s.Plan != "" {
		fmt.Fprintf(&b, "\n%s", s.Plan)
	}
	return b.String()
}

// QueryWithStats executes a query and reports execution counters alongside
// the candidate document IDs. It is QueryCtx with a background context and
// no per-call budget (the index defaults still apply).
func (ix *Index) QueryWithStats(expr string) ([]DocID, QueryStats, error) {
	return ix.QueryCtx(context.Background(), expr, Budget{})
}
