package core

import (
	"context"
	"fmt"
	"strings"
)

// QueryStats reports how much work a query's execution performed — the
// quantities the paper's analysis reasons about: how many D-Ancestor range
// queries were issued, how many S-Ancestor entries they touched, and how
// many DocId range queries produced the answers. RIST/ViST's advantage over
// the naive algorithm is visible here: NodesVisited stays close to the
// number of genuine partial matches instead of the size of traversed
// subtrees.
type QueryStats struct {
	// Sequences counts the structure-encoded sequences the query expanded
	// into (branch permutations × name-kind alternatives).
	Sequences int
	// RangeScans counts D-Ancestor/S-Ancestor range queries issued
	// (B+Tree seeks; one per candidate prefix length per partial match).
	RangeScans int
	// NodesVisited counts index entries that matched some query element
	// (partial-match states entered).
	NodesVisited int
	// DocScans counts final DocId-tree range queries.
	DocScans int
	// PagesRead counts B+Tree pages fetched on the query's behalf (descent
	// nodes and leaf-chain pages of the node and DocId trees) — the unit
	// the page budget and the cancellation checkpoint interval are
	// denominated in.
	PagesRead int
	// Candidates is the number of distinct documents returned (or collected
	// so far, when a budget or cancellation stop cut the query short).
	Candidates int
}

// String renders the counters compactly.
func (s QueryStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sequences=%d rangeScans=%d nodesVisited=%d docScans=%d pagesRead=%d candidates=%d",
		s.Sequences, s.RangeScans, s.NodesVisited, s.DocScans, s.PagesRead, s.Candidates)
	return b.String()
}

// QueryWithStats executes a query and reports execution counters alongside
// the candidate document IDs. It is QueryCtx with a background context and
// no per-call budget (the index defaults still apply).
func (ix *Index) QueryWithStats(expr string) ([]DocID, QueryStats, error) {
	return ix.QueryCtx(context.Background(), expr, Budget{})
}
