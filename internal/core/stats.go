package core

import (
	"fmt"
	"strings"

	"vist/internal/query"
)

// QueryStats reports how much work a query's execution performed — the
// quantities the paper's analysis reasons about: how many D-Ancestor range
// queries were issued, how many S-Ancestor entries they touched, and how
// many DocId range queries produced the answers. RIST/ViST's advantage over
// the naive algorithm is visible here: NodesVisited stays close to the
// number of genuine partial matches instead of the size of traversed
// subtrees.
type QueryStats struct {
	// Sequences counts the structure-encoded sequences the query expanded
	// into (branch permutations × name-kind alternatives).
	Sequences int
	// RangeScans counts D-Ancestor/S-Ancestor range queries issued
	// (B+Tree seeks; one per candidate prefix length per partial match).
	RangeScans int
	// NodesVisited counts index entries that matched some query element
	// (partial-match states entered).
	NodesVisited int
	// DocScans counts final DocId-tree range queries.
	DocScans int
	// Candidates is the number of distinct documents returned.
	Candidates int
}

// String renders the counters compactly.
func (s QueryStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sequences=%d rangeScans=%d nodesVisited=%d docScans=%d candidates=%d",
		s.Sequences, s.RangeScans, s.NodesVisited, s.DocScans, s.Candidates)
	return b.String()
}

// QueryWithStats executes a query and reports execution counters alongside
// the candidate document IDs.
func (ix *Index) QueryWithStats(expr string) ([]DocID, QueryStats, error) {
	q, err := query.Parse(expr)
	if err != nil {
		return nil, QueryStats{}, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	seqs, err := q.Sequences(ix.dict, ix.schema)
	if err != nil {
		return nil, QueryStats{}, err
	}
	stats := QueryStats{Sequences: len(seqs)}
	out := make(map[DocID]struct{})
	for _, qs := range seqs {
		if err := ix.matchSeqStats(qs, out, &stats); err != nil {
			return nil, QueryStats{}, err
		}
	}
	ids := sortedIDs(out)
	stats.Candidates = len(ids)
	return ids, stats, nil
}
