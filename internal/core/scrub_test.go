package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vist/internal/btree"
	"vist/internal/xmltree"
)

// scrubIndex builds a small synced file-backed index for scrubbing tests.
func scrubIndex(t *testing.T, dir string, opts Options, docs int) *Index {
	t.Helper()
	if opts.PageSize == 0 {
		opts.PageSize = 512
	}
	ix, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < docs; i++ {
		n, perr := xmltree.ParseString(crashDoc(i))
		if perr != nil {
			t.Fatal(perr)
		}
		if _, err := ix.Insert(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Sync(); err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestScrubCleanPass: a healthy synced index scrubs clean, covering every
// flushed page and the structural invariants, and records its progress in
// the scrub.* metrics.
func TestScrubCleanPass(t *testing.T) {
	ix := scrubIndex(t, t.TempDir(), Options{}, 25)
	defer ix.Close()
	rep, err := ix.Scrub(context.Background(), ScrubOptions{PagesPerSecond: -1, CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("clean index scrub found: corrupt=%v invariants=%v", rep.Corrupt, rep.InvariantProblems)
	}
	if rep.PagesChecked == 0 {
		t.Fatal("scrub verified no pages on a synced index")
	}
	m := ix.Metrics()
	if m.Counters["scrub.passes"] != 1 {
		t.Fatalf("scrub.passes = %d, want 1", m.Counters["scrub.passes"])
	}
	if int(m.Counters["scrub.pages_verified"]) != rep.PagesChecked {
		t.Fatalf("scrub.pages_verified = %d, report says %d", m.Counters["scrub.pages_verified"], rep.PagesChecked)
	}
	if m.Counters["scrub.corrupt_pages"] != 0 || ix.Degraded() != nil {
		t.Fatal("clean pass degraded the index")
	}
}

// TestScrubDetectsCorruptionAndDegrades: a byte flip on disk behind the
// index's back is found by the next scrub pass, which degrades the index
// read-only (never panics) while queries keep serving the pinned snapshot.
func TestScrubDetectsCorruptionAndDegrades(t *testing.T) {
	dir := t.TempDir()
	ix := scrubIndex(t, dir, Options{}, 25)
	defer ix.Close()

	// Flip bytes in nodes.db page 1, bypassing the pager.
	const diskPage = 512 + 8
	raw, err := os.OpenFile(filepath.Join(dir, "nodes.db"), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.WriteAt([]byte("bitrot!"), diskPage+77); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	rep, err := ix.Scrub(context.Background(), ScrubOptions{PagesPerSecond: -1})
	if err != nil {
		t.Fatalf("scrub must contain corruption, not fail: %v", err)
	}
	if len(rep.Corrupt) == 0 {
		t.Fatal("scrub missed the flipped page")
	}
	d := ix.Degraded()
	if d == nil {
		t.Fatal("corruption finding did not degrade the index")
	}
	if d.Op != "scrub" || !errors.Is(d, ErrReadOnly) || !errors.Is(d, btree.ErrCorrupt) {
		t.Fatalf("DegradedError = %v (op %q), want scrub ErrCorrupt wrapped in ErrReadOnly", d, d.Op)
	}
	if m := ix.Metrics(); m.Counters["scrub.corrupt_pages"] == 0 {
		t.Fatal("scrub.corrupt_pages not bumped")
	}

	// Writes fail fast; Heal refuses while the tree is corrupt on disk.
	doc, _ := xmltree.ParseString(crashDoc(999))
	if _, err := ix.Insert(doc); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Insert after scrub degradation = %v, want ErrReadOnly", err)
	}
}

// TestScrubRateBound: the pages-per-second throttle actually paces a pass,
// and the unthrottled mode does not.
func TestScrubRateBound(t *testing.T) {
	ix := scrubIndex(t, t.TempDir(), Options{}, 60)
	defer ix.Close()
	fast, err := ix.Scrub(context.Background(), ScrubOptions{PagesPerSecond: -1})
	if err != nil {
		t.Fatal(err)
	}
	if fast.PagesChecked < 64 {
		t.Skipf("index too small to pace (%d pages)", fast.PagesChecked)
	}
	// At 320 pages/sec, a pass over >=64 pages must take >= ~(checked-32)/320
	// seconds (pacing is checked every 32 pages).
	slow, err := ix.Scrub(context.Background(), ScrubOptions{PagesPerSecond: 320})
	if err != nil {
		t.Fatal(err)
	}
	min := time.Duration(slow.PagesChecked-32) * time.Second / 320
	if slow.Duration < min/2 {
		t.Fatalf("throttled pass over %d pages took %v, want >= %v", slow.PagesChecked, slow.Duration, min/2)
	}
	if fast.Duration > slow.Duration {
		t.Fatalf("unthrottled pass (%v) slower than throttled (%v)", fast.Duration, slow.Duration)
	}
}

// TestBackgroundScrubber: Options.ScrubInterval runs passes continuously in
// the background — visible through the metrics — concurrently with queries
// and mutations, and Close stops the loop promptly.
func TestBackgroundScrubber(t *testing.T) {
	dir := t.TempDir()
	ix := scrubIndex(t, dir, Options{ScrubInterval: 5 * time.Millisecond}, 25)

	deadline := time.After(5 * time.Second)
	for {
		if ix.Metrics().Counters["scrub.passes"] >= 2 {
			break
		}
		// The index stays fully usable while scrubbing.
		if _, err := ix.Query("/purchase/seller"); err != nil {
			t.Fatal(err)
		}
		select {
		case <-deadline:
			t.Fatal("background scrubber completed no passes in 5s")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if ix.Degraded() != nil {
		t.Fatalf("background scrub degraded a healthy index: %v", ix.Degraded())
	}
	start := time.Now()
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("Close with a live scrubber took %v", d)
	}
}
