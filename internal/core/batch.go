package core

import (
	"context"
	"runtime"
	"sync"
)

// BatchResult is the outcome of one expression of a QueryAll batch. Err is
// per-query: a malformed, over-budget, or cancelled expression fails its own
// slot without aborting the rest of the batch.
type BatchResult struct {
	Expr  string
	IDs   []DocID
	Stats QueryStats
	Err   error
}

// QueryAll executes a batch of path expressions concurrently on a worker
// pool and returns one result per expression, in input order. It is
// QueryAllCtx with a background context and no per-call budget; the index's
// default timeout and budget still bound each query.
func (ix *Index) QueryAll(exprs []string, workers int) []BatchResult {
	return ix.QueryAllCtx(context.Background(), exprs, workers, Budget{})
}

// QueryAllCtx executes a batch of path expressions concurrently on a worker
// pool and returns one result per expression, in input order. workers <= 0
// is clamped to runtime.GOMAXPROCS(0), and workers above len(exprs) is
// clamped down to len(exprs), so any value is safe. Each query runs exactly
// as QueryCtx would (candidate semantics, shared read lock, per-query budget
// b), so the batch proceeds in parallel with other readers and serializes
// only against writers.
//
// The context covers the whole batch: once it is cancelled, in-flight
// queries stop at their next checkpoint and expressions not yet dispatched
// are marked with ErrCanceled without running. QueryAllCtx always waits for
// its workers to exit before returning — it never leaks goroutines.
func (ix *Index) QueryAllCtx(ctx context.Context, exprs []string, workers int, b Budget) []BatchResult {
	results := make([]BatchResult, len(exprs))
	if len(exprs) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exprs) {
		workers = len(exprs)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				ids, stats, err := ix.QueryCtx(ctx, exprs[i], b)
				results[i] = BatchResult{Expr: exprs[i], IDs: ids, Stats: stats, Err: err}
			}
		}()
	}
	next := 0
dispatch:
	for ; next < len(exprs); next++ {
		select {
		case work <- next:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	// Slots never dispatched fail with the cancellation, so callers see a
	// uniform per-slot verdict instead of zero-valued results.
	for i := next; i < len(exprs); i++ {
		results[i] = BatchResult{Expr: exprs[i], Err: &QueryError{
			Expr:   exprs[i],
			Reason: ErrCanceled,
			Cause:  context.Cause(ctx),
		}}
	}
	return results
}
