package core

import (
	"runtime"
	"sync"
)

// BatchResult is the outcome of one expression of a QueryAll batch. Err is
// per-query: a malformed expression fails its own slot without aborting the
// rest of the batch.
type BatchResult struct {
	Expr string
	IDs  []DocID
	Err  error
}

// QueryAll executes a batch of path expressions concurrently on a worker
// pool and returns one result per expression, in input order. workers <= 0
// selects GOMAXPROCS. Each query runs exactly as Query would (candidate
// semantics, shared read lock), so the batch proceeds in parallel with other
// readers and serializes only against writers.
func (ix *Index) QueryAll(exprs []string, workers int) []BatchResult {
	results := make([]BatchResult, len(exprs))
	if len(exprs) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exprs) {
		workers = len(exprs)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				ids, err := ix.Query(exprs[i])
				results[i] = BatchResult{Expr: exprs[i], IDs: ids, Err: err}
			}
		}()
	}
	for i := range exprs {
		work <- i
	}
	close(work)
	wg.Wait()
	return results
}
