package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"vist/internal/keyenc"
	"vist/internal/labeling"
	"vist/internal/query"
	"vist/internal/seq"
	"vist/internal/treematch"
)

// Query parses and executes a path expression, returning the IDs of
// candidate documents in ascending order (Algorithm 2 of the paper).
//
// Faithful to the paper, the result is computed purely by non-contiguous
// subsequence matching over the index; for some branching queries this can
// include false positives (documents containing all query elements in a
// compatible sequence order without an actual subtree embedding). Use
// QueryVerified for exact results.
//
// Query is QueryCtx with a background context and no per-call budget; the
// index's Options.DefaultQueryTimeout and Options.DefaultBudget still
// apply, so even legacy callers are protected by default.
func (ix *Index) Query(expr string) ([]DocID, error) {
	ids, _, err := ix.QueryCtx(context.Background(), expr, Budget{})
	return ids, err
}

// QueryCtx executes a path expression under a context and a work budget.
// The context is checked at bounded intervals (every B+Tree page fetched and
// every range scan issued), so cancellation and deadlines take effect
// promptly even mid-scan. A zero Budget means "index default only".
//
// On ErrCanceled or ErrBudgetExceeded (test with errors.Is) the returned IDs
// and QueryStats reflect the partial progress made before the stop; the
// error is a *QueryError carrying the same stats and the query text. Panics
// during execution are contained and surface as ErrQueryPanic.
func (ix *Index) QueryCtx(ctx context.Context, expr string, b Budget) ([]DocID, QueryStats, error) {
	start := time.Now()
	q, err := query.Parse(expr)
	if err != nil {
		// Parse failures never execute; count them without firing the
		// per-query observer (there is no work or latency to report).
		ix.qm.errors.Inc()
		return nil, QueryStats{}, err
	}
	return ix.queryObserved(ctx, q, b, start, time.Since(start))
}

// QueryParsed executes an already-parsed query. Queries whose
// identical-sibling permutations exceed the variant cap fall back to the
// paper's disassemble-and-join strategy: each root-to-leaf query path runs
// as its own sequence match and the DocID sets are intersected.
func (ix *Index) QueryParsed(q *query.Query) ([]DocID, error) {
	ids, _, err := ix.QueryParsedCtx(context.Background(), q, Budget{})
	return ids, err
}

// QueryParsedCtx is QueryCtx for an already-parsed query. Its Stages.Parse
// covers only sequence expansion — the expression was parsed by the caller.
func (ix *Index) QueryParsedCtx(ctx context.Context, q *query.Query, b Budget) ([]DocID, QueryStats, error) {
	return ix.queryObserved(ctx, q, b, time.Now(), 0)
}

// queryObserved runs the candidate phase and fires the per-query observer
// (outcome metrics, latency histograms, slow-query log) exactly once, after
// the index lock is released. Every public single-query entry point funnels
// through here or through QueryVerifiedCtx's own single observation.
func (ix *Index) queryObserved(ctx context.Context, q *query.Query, b Budget, start time.Time, parseD time.Duration) ([]DocID, QueryStats, error) {
	ids, stats, err := ix.queryParsedInner(ctx, q, b, parseD)
	ix.observeQuery(q.Raw, start, &stats, err)
	return ids, stats, err
}

// queryParsedInner is the unobserved candidate phase: QueryVerifiedCtx uses
// it directly so a verified query observes once for both phases combined.
func (ix *Index) queryParsedInner(ctx context.Context, q *query.Query, b Budget, parseD time.Duration) ([]DocID, QueryStats, error) {
	ctx, cancel := ix.queryContext(ctx)
	defer cancel()
	qc := ix.newQctx(ctx, q.Raw, b)
	if qc.timed {
		qc.stats.Stages.Parse = parseD
	}
	// Fail fast on an already-dead context, before pinning: even a query
	// that would do no scan work (and so hit no checkpoint) must report
	// cancellation deterministically.
	if err := qc.checkCtx(); err != nil {
		return nil, qc.stats, err
	}
	// Pin the current published version. This replaces the shared index
	// lock: a concurrent Insert/Delete/Sync builds the next version without
	// blocking this query or changing anything it can see. The histogram
	// keeps its pre-MVCC name so dashboards show the contention collapsing;
	// pin acquisition is a mutex-protected map increment, never a wait for
	// a writer.
	var lockStart time.Time
	if qc.timed {
		lockStart = time.Now()
	}
	snap, err := ix.pin()
	if qc.timed {
		ix.qm.lockWait.ObserveDuration(time.Since(lockStart))
	}
	if err != nil {
		return nil, qc.stats, err
	}
	defer ix.unpin(snap)
	qc.snap = snap
	var ids []DocID
	err = qc.contained(func() error {
		var err error
		ids, err = ix.queryPinned(qc, q)
		return err
	})
	return ids, qc.stats, err
}

// queryPinned runs a query against its pinned snapshot, reporting the IDs
// collected so far even when a budget or cancellation error cuts the run
// short. Execution follows the cached plan when the planner is enabled:
// sequences run most-selective first, each under its planned strategy.
func (ix *Index) queryPinned(qc *qctx, q *query.Query) ([]DocID, error) {
	var t0 time.Time
	if qc.timed {
		t0 = time.Now()
	}
	ent, err := ix.planFor(qc.snap, q)
	if qc.timed {
		// Planning — variant expansion plus synopsis probes — is accounted
		// with Parse, like the expansion it replaces.
		qc.stats.Stages.Parse += time.Since(t0)
	}
	if err != nil {
		return nil, err
	}
	if ent.VariantCap {
		return ix.queryDisassembled(qc, q)
	}
	qc.stats.Sequences += len(ent.Seqs)
	if ent.Desc != "" && qc.stats.Plan == "" {
		qc.stats.Plan = ent.Desc
	}
	out := make(map[DocID]struct{})
	if ent.Plan == nil {
		for _, qs := range ent.Seqs {
			if err := ix.matchSeq(qc, qs, out); err != nil {
				return sortedIDs(out), err
			}
		}
	} else {
		for _, si := range ent.Plan.Order {
			if err := ix.execSeqPlan(qc, ent.Seqs[si], &ent.Plan.SeqPlans[si], out); err != nil {
				return sortedIDs(out), err
			}
		}
	}
	ids := sortedIDs(out)
	qc.stats.Candidates = len(ids)
	return ids, nil
}

// queryDisassembled joins the results of the query's single-path splits
// (Section 2's fallback; each split has exactly one sequence variant). The
// budget spans all splits: work is accounted against the same qctx.
//
// Splits run most-selective first (by planner estimate) and the join exits
// as soon as the running intersection empties — a split the synopsis proves
// empty makes the whole join free. When a split stops on a budget or
// cancellation error, the IDs intersected so far are still returned with
// the error, matching the partial-progress contract of QueryCtx.
func (ix *Index) queryDisassembled(qc *qctx, q *query.Query) ([]DocID, error) {
	parts := query.Disassemble(q)
	type partPlan struct {
		q   *query.Query
		est uint64
	}
	plans := make([]partPlan, 0, len(parts))
	for _, part := range parts {
		ent, err := ix.planFor(qc.snap, part)
		if err != nil {
			return nil, err
		}
		plans = append(plans, partPlan{part, ent.Estimate()})
	}
	sort.SliceStable(plans, func(i, j int) bool { return plans[i].est < plans[j].est })
	if !ix.opts.DisablePlanner && qc.stats.Plan == "" {
		qc.stats.Plan = fmt.Sprintf("plan: disassembled into %d single-path joins", len(parts))
	}
	var result map[DocID]struct{}
	for _, pp := range plans {
		ids, perr := ix.queryPinned(qc, pp.q)
		set := make(map[DocID]struct{}, len(ids))
		for _, id := range ids {
			set[id] = struct{}{}
		}
		if result == nil {
			result = set
		} else {
			for id := range result {
				if _, ok := set[id]; !ok {
					delete(result, id)
				}
			}
		}
		if perr != nil {
			ids := sortedIDs(result)
			qc.stats.Candidates = len(ids)
			return ids, perr
		}
		if len(result) == 0 {
			break
		}
	}
	ids := sortedIDs(result)
	qc.stats.Candidates = len(ids)
	return ids, nil
}

func sortedIDs(out map[DocID]struct{}) []DocID {
	ids := make([]DocID, 0, len(out))
	for id := range out {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// QueryVerified executes a query and refines the candidate set against the
// stored documents, removing both the structural false positives inherent
// to sequence matching and value-hash collisions. Requires document
// storage; that precondition is checked before any matching work runs.
//
// A candidate that disappears between the candidate phase and verification
// (a concurrent Delete can win the race for the exclusive lock in between)
// is treated as a non-match rather than an error.
func (ix *Index) QueryVerified(expr string) ([]DocID, error) {
	ids, _, err := ix.QueryVerifiedCtx(context.Background(), expr, Budget{})
	return ids, err
}

// QueryVerifiedCtx is QueryVerified under a context and work budget. The
// candidate phase is bounded exactly as in QueryCtx; the verification phase
// checks for cancellation before each candidate document it loads (its I/O
// is not page-accounted, but it is bounded by the candidate count, which
// MaxResults caps).
func (ix *Index) QueryVerifiedCtx(ctx context.Context, expr string, b Budget) ([]DocID, QueryStats, error) {
	if ix.opts.SkipDocumentStore {
		return nil, QueryStats{}, fmt.Errorf("core: QueryVerified requires document storage (SkipDocumentStore is set)")
	}
	start := time.Now()
	q, err := query.Parse(expr)
	if err != nil {
		ix.qm.errors.Inc()
		return nil, QueryStats{}, err
	}
	parseD := time.Since(start)
	// The default timeout is applied here so it spans both phases; the
	// nested candidate phase sees a context that already has a deadline and
	// leaves it alone. The per-query observer fires exactly once, covering
	// both phases, after all locks are released.
	ctx, cancel := ix.queryContext(ctx)
	defer cancel()
	candidates, stats, err := ix.queryParsedInner(ctx, q, b, parseD)
	if err != nil {
		ix.observeQuery(q.Raw, start, &stats, err)
		return nil, stats, err
	}
	qc := ix.newQctx(ctx, q.Raw, b)
	qc.stats = stats
	out, err := ix.verifyCandidates(qc, q, candidates)
	ix.observeQuery(q.Raw, start, &qc.stats, err)
	return out, qc.stats, err
}

// verifyCandidates is the refinement phase: it pins its own (possibly newer)
// snapshot and keeps only candidates that are true tree-embedding matches
// there. Verify stage time covers the whole phase (document loads plus tree
// matching). A candidate whose document is gone from the verification
// snapshot (deleted and published between the phases) is a non-match, the
// same tolerance the lock-based implementation needed for deletes racing in
// between its two lock acquisitions.
func (ix *Index) verifyCandidates(qc *qctx, q *query.Query, candidates []DocID) ([]DocID, error) {
	var lockStart time.Time
	if qc.timed {
		lockStart = time.Now()
	}
	snap, err := ix.pin()
	if qc.timed {
		ix.qm.lockWait.ObserveDuration(time.Since(lockStart))
	}
	if err != nil {
		return nil, err
	}
	defer ix.unpin(snap)
	if qc.timed {
		t0 := time.Now()
		defer func() { qc.stats.Stages.Verify += time.Since(t0) }()
	}
	out := candidates[:0]
	err = qc.contained(func() error {
		for _, id := range candidates {
			if err := qc.checkCtx(); err != nil {
				return err
			}
			doc, _, err := loadDocFrom(snap.store, id)
			if err != nil {
				if errors.Is(err, ErrDocNotFound) {
					continue
				}
				return err
			}
			if treematch.Matches(q, doc) {
				out = append(out, id)
			}
		}
		return nil
	})
	return out, err
}

// match records a matched query element: the suffix-tree node's scope and
// the concrete document-tree path of the matched element (prefix + symbol),
// which instantiates wildcards for its descendants.
type match struct {
	scope labeling.Scope
	path  []seq.Symbol
}

// matchSeq finds all documents containing qs as a non-contiguous subsequence
// with consistent D-Ancestorship and S-Ancestorship, adding their IDs to
// out. Work is accounted against qc's budget; cancellation is polled at
// every range scan and every page the scans fetch.
func (ix *Index) matchSeq(qc *qctx, qs query.Seq, out map[DocID]struct{}) error {
	if len(qs) == 0 {
		return nil
	}
	matches := make([]match, len(qs))
	var rec func(i int, prev labeling.Scope) error
	rec = func(i int, prev labeling.Scope) error {
		if i == len(qs) {
			qc.stats.DocScans++
			return ix.collectDocs(qc, prev, out)
		}
		qe := qs[i]
		var base []seq.Symbol
		if qe.Anchor >= 0 {
			base = matches[qe.Anchor].path
		}
		minPlen := len(base) + qe.Stars
		maxPlen := minPlen
		if qe.Desc {
			maxPlen = qc.snap.maxDepth - 1
		}
		if maxPlen >= MaxDepth {
			maxPlen = MaxDepth - 1
		}
		// The paper's wildcard handling: one D-Ancestor range query per
		// candidate prefix length (Section 3.3, "Handling Wild Cards").
		// Budget accounting happens inside the scan primitives, at issue
		// time.
		for plen := minPlen; plen <= maxPlen; plen++ {
			err := ix.scanCandidates(qc, qe.Symbol, plen, base, prev, func(prefix []seq.Symbol, scope labeling.Scope) error {
				qc.stats.NodesVisited++
				if qc.b.MaxNodesVisited > 0 && qc.stats.NodesVisited > qc.b.MaxNodesVisited {
					return qc.fail(ErrBudgetExceeded, fmt.Errorf("node-visit budget %d exhausted", qc.b.MaxNodesVisited))
				}
				path := make([]seq.Symbol, 0, len(prefix)+1)
				path = append(path, prefix...)
				path = append(path, qe.Symbol)
				matches[i] = match{scope: scope, path: path}
				return rec(i+1, scope)
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, rootScope)
}

// scanCandidates visits every index node whose element has the given
// symbol, a prefix of exactly plen symbols starting with base, and a label
// inside (prev.N, prev.N+prev.Size] — the S-Ancestorship range query. The
// prefix slice handed to fn is valid only for the duration of the call;
// callers that keep it must copy (both recursion sites copy it into the
// match path immediately).
//
// Under the fixed key format this is the paper's key-range sweep: all
// matching D-Ancestor keys are contiguous, and the scan jumps between each
// key's label range. Under the interned format prefix content no longer
// orders the key space, so the concrete prefixes that exist are enumerated
// from the pinned snapshot's synopsis (maintained in lockstep with the node
// tree, so the enumeration is exact for this snapshot) and each group gets
// one label-range scan.
func (ix *Index) scanCandidates(qc *qctx, sym seq.Symbol, plen int, base []seq.Symbol, prev labeling.Scope, fn func(prefix []seq.Symbol, scope labeling.Scope) error) error {
	if ix.kc.fmtV == keyFmtFixed {
		return ix.scanCandidatesSweep(qc, sym, plen, base, prev, fn)
	}
	if plen < len(base) {
		return nil
	}
	return qc.snap.syn.EachHosting(base, plen-len(base), sym, func(prefix []seq.Symbol) error {
		da, ok := ix.kc.daKeyQ(sym, prefix)
		if !ok {
			return nil // prefix never interned ⇒ no node can carry it
		}
		return ix.scanGroup(qc, da, prefix, prev, fn)
	})
}

// scanGroup runs the S-Ancestorship label-range scan within one exact
// D-Ancestor group: every key in [da‖nLo, da‖nHi] belongs to the group
// (interned D-Ancestor encodings are prefix-free) and every one of them is
// a match, so this is a single contiguous range scan with no skipping.
func (ix *Index) scanGroup(qc *qctx, da []byte, prefix []seq.Symbol, prev labeling.Scope, fn func(prefix []seq.Symbol, scope labeling.Scope) error) error {
	if err := qc.noteRangeScan(); err != nil {
		return err
	}
	nLo, nHi := prev.N+1, prev.N+prev.Size // inclusive label range
	lo := nodeKey(da, nLo)
	hiEx := append(nodeKey(da, nHi), 0)
	// One landing in the D-Ancestor key space plus a leaf walk — probe time,
	// like chainScan's whole-group scans.
	if qc.timed {
		qc.probeSmp.begin()
		defer qc.probeSmp.end(&qc.stats.Stages.Probe)
	}
	return qc.snap.nodes.ScanWith(lo, hiEx, qc.hook, func(k, v []byte) (bool, error) {
		_, n, err := ix.kc.splitNodeKey(k)
		if err != nil {
			return false, err
		}
		recd, err := ix.kc.decodeRecord(n, v)
		if err != nil {
			return false, err
		}
		return true, fn(prefix, labeling.Scope{N: n, Size: recd.size})
	})
}

// scanCandidatesSweep is the fixed-format key-range sweep (Section 3.3 of
// the paper): one seek lands in the (symbol, plen, base…) key range, then
// the scan alternates between jumping into a D-Ancestor key's label range
// and jumping past it to the next key.
func (ix *Index) scanCandidatesSweep(qc *qctx, sym seq.Symbol, plen int, base []seq.Symbol, prev labeling.Scope, fn func(prefix []seq.Symbol, scope labeling.Scope) error) error {
	if err := qc.noteRangeScan(); err != nil {
		return err
	}
	loPrefix := daPartial(sym, plen, base)
	hiPrefix := keyenc.PrefixSuccessor(loPrefix)
	nLo, nHi := prev.N+1, prev.N+prev.Size // inclusive label range

	cur := append([]byte(nil), loPrefix...)
	first := true
	for {
		if qc.timed {
			// The first seek of a range scan lands in the D-Ancestor key
			// space (probe); follow-up seeks walk S-Ancestor label ranges.
			if first {
				qc.probeSmp.begin()
			} else {
				qc.scanSmp.begin()
			}
		}
		k, v, ok, err := qc.snap.nodes.SeekFirstWith(cur, hiPrefix, qc.hook)
		if qc.timed {
			if first {
				qc.probeSmp.end(&qc.stats.Stages.Probe)
			} else {
				qc.scanSmp.end(&qc.stats.Stages.Scan)
			}
		}
		first = false
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		da, n, err := ix.kc.splitNodeKey(k)
		if err != nil {
			return err
		}
		switch {
		case n < nLo:
			// Jump into this D-Ancestor key's label range.
			cur = nodeKey(da, nLo)
		case n > nHi:
			// Done with this D-Ancestor key; jump to the next one.
			next := keyenc.PrefixSuccessor(da)
			if next == nil {
				return nil
			}
			cur = next
		default:
			recd, err := decodeNodeRecord(v)
			if err != nil {
				return err
			}
			prefix, err := qc.prefixOf(da, plen)
			if err != nil {
				return err
			}
			if err := fn(prefix, labeling.Scope{N: n, Size: recd.size}); err != nil {
				return err
			}
			cur = append(append([]byte(nil), k...), 0)
		}
	}
}

// collectDocs performs the final range query [n, n+size] on the DocId tree
// and adds every document ID found to out. The running candidate count is
// checked against the budget's MaxResults as entries arrive, so a scope
// covering millions of documents stops as soon as the cap is crossed.
func (ix *Index) collectDocs(qc *qctx, scope labeling.Scope, out map[DocID]struct{}) error {
	lo := docKey(scope.N, 0)
	var hi []byte
	if end := scope.N + scope.Size; end < math.MaxUint64 {
		hi = docKey(end+1, 0)
	}
	if qc.timed {
		qc.collectSmp.begin()
	}
	err := qc.snap.docs.ScanWith(lo, hi, qc.hook, func(k, v []byte) (bool, error) {
		_, id, err := parseDocKey(k)
		if err != nil {
			return false, err
		}
		out[id] = struct{}{}
		qc.stats.Candidates = len(out)
		if qc.b.MaxResults > 0 && len(out) > qc.b.MaxResults {
			return false, qc.fail(ErrBudgetExceeded, fmt.Errorf("result cap %d exhausted", qc.b.MaxResults))
		}
		return true, nil
	})
	if qc.timed {
		qc.collectSmp.end(&qc.stats.Stages.Collect)
	}
	return err
}

// MaxTreeDepth reports the deepest indexed sequence (prefix length + 1) in
// the last published version (lock-free).
func (ix *Index) MaxTreeDepth() int {
	return ix.snap.Load().maxDepth
}
