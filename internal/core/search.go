package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"vist/internal/keyenc"
	"vist/internal/labeling"
	"vist/internal/query"
	"vist/internal/seq"
	"vist/internal/treematch"
)

// Query parses and executes a path expression, returning the IDs of
// candidate documents in ascending order (Algorithm 2 of the paper).
//
// Faithful to the paper, the result is computed purely by non-contiguous
// subsequence matching over the index; for some branching queries this can
// include false positives (documents containing all query elements in a
// compatible sequence order without an actual subtree embedding). Use
// QueryVerified for exact results.
func (ix *Index) Query(expr string) ([]DocID, error) {
	q, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	return ix.QueryParsed(q)
}

// QueryParsed executes an already-parsed query. Queries whose
// identical-sibling permutations exceed the variant cap fall back to the
// paper's disassemble-and-join strategy: each root-to-leaf query path runs
// as its own sequence match and the DocID sets are intersected.
func (ix *Index) QueryParsed(q *query.Query) ([]DocID, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.queryLocked(q)
}

func (ix *Index) queryLocked(q *query.Query) ([]DocID, error) {
	seqs, err := q.Sequences(ix.dict, ix.schema)
	if query.IsVariantCapError(err) {
		return ix.queryDisassembled(q)
	}
	if err != nil {
		return nil, err
	}
	out := make(map[DocID]struct{})
	for _, qs := range seqs {
		if err := ix.matchSeqStats(qs, out, nil); err != nil {
			return nil, err
		}
	}
	return sortedIDs(out), nil
}

// queryDisassembled joins the results of the query's single-path splits
// (Section 2's fallback; each split has exactly one sequence variant).
func (ix *Index) queryDisassembled(q *query.Query) ([]DocID, error) {
	var result map[DocID]struct{}
	for _, part := range query.Disassemble(q) {
		ids, err := ix.queryLocked(part)
		if err != nil {
			return nil, err
		}
		set := make(map[DocID]struct{}, len(ids))
		for _, id := range ids {
			set[id] = struct{}{}
		}
		if result == nil {
			result = set
			continue
		}
		for id := range result {
			if _, ok := set[id]; !ok {
				delete(result, id)
			}
		}
	}
	return sortedIDs(result), nil
}

func sortedIDs(out map[DocID]struct{}) []DocID {
	ids := make([]DocID, 0, len(out))
	for id := range out {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// QueryVerified executes a query and refines the candidate set against the
// stored documents, removing both the structural false positives inherent
// to sequence matching and value-hash collisions. Requires document
// storage; that precondition is checked before any matching work runs.
//
// A candidate that disappears between the candidate phase and verification
// (a concurrent Delete can win the race for the exclusive lock in between)
// is treated as a non-match rather than an error.
func (ix *Index) QueryVerified(expr string) ([]DocID, error) {
	if ix.opts.SkipDocumentStore {
		return nil, fmt.Errorf("core: QueryVerified requires document storage (SkipDocumentStore is set)")
	}
	q, err := query.Parse(expr)
	if err != nil {
		return nil, err
	}
	candidates, err := ix.QueryParsed(q)
	if err != nil {
		return nil, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := candidates[:0]
	for _, id := range candidates {
		doc, _, err := ix.loadDoc(id)
		if err != nil {
			if errors.Is(err, ErrDocNotFound) {
				continue
			}
			return nil, err
		}
		if treematch.Matches(q, doc) {
			out = append(out, id)
		}
	}
	return out, nil
}

// match records a matched query element: the suffix-tree node's scope and
// the concrete document-tree path of the matched element (prefix + symbol),
// which instantiates wildcards for its descendants.
type match struct {
	scope labeling.Scope
	path  []seq.Symbol
}

// matchSeqStats finds all documents containing qs as a non-contiguous
// subsequence with consistent D-Ancestorship and S-Ancestorship, adding
// their IDs to out. stats may be nil.
func (ix *Index) matchSeqStats(qs query.Seq, out map[DocID]struct{}, stats *QueryStats) error {
	if len(qs) == 0 {
		return nil
	}
	matches := make([]match, len(qs))
	var rec func(i int, prev labeling.Scope) error
	rec = func(i int, prev labeling.Scope) error {
		if i == len(qs) {
			if stats != nil {
				stats.DocScans++
			}
			return ix.collectDocs(prev, out)
		}
		qe := qs[i]
		var base []seq.Symbol
		if qe.Anchor >= 0 {
			base = matches[qe.Anchor].path
		}
		minPlen := len(base) + qe.Stars
		maxPlen := minPlen
		if qe.Desc {
			maxPlen = ix.maxDepth - 1
		}
		if maxPlen >= MaxDepth {
			maxPlen = MaxDepth - 1
		}
		// The paper's wildcard handling: one D-Ancestor range query per
		// candidate prefix length (Section 3.3, "Handling Wild Cards").
		for plen := minPlen; plen <= maxPlen; plen++ {
			if stats != nil {
				stats.RangeScans++
			}
			err := ix.scanCandidates(qe.Symbol, plen, base, prev, func(prefix []seq.Symbol, scope labeling.Scope) error {
				if stats != nil {
					stats.NodesVisited++
				}
				path := make([]seq.Symbol, 0, len(prefix)+1)
				path = append(path, prefix...)
				path = append(path, qe.Symbol)
				matches[i] = match{scope: scope, path: path}
				return rec(i+1, scope)
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, rootScope)
}

// scanCandidates visits every index node whose element has the given
// symbol, a prefix of exactly plen symbols starting with base, and a label
// inside (prev.N, prev.N+prev.Size] — the S-Ancestorship range query. For
// each distinct D-Ancestor key the scan jumps directly to the label range,
// mirroring the paper's per-S-Ancestor-tree range queries.
func (ix *Index) scanCandidates(sym seq.Symbol, plen int, base []seq.Symbol, prev labeling.Scope, fn func(prefix []seq.Symbol, scope labeling.Scope) error) error {
	loPrefix := daPartial(sym, plen, base)
	hiPrefix := keyenc.PrefixSuccessor(loPrefix)
	nLo, nHi := prev.N+1, prev.N+prev.Size // inclusive label range

	cur := append([]byte(nil), loPrefix...)
	for {
		k, v, ok, err := ix.nodes.SeekFirst(cur, hiPrefix)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		da, n, err := splitNodeKey(k)
		if err != nil {
			return err
		}
		switch {
		case n < nLo:
			// Jump into this D-Ancestor key's label range.
			cur = nodeKey(da, nLo)
		case n > nHi:
			// Done with this D-Ancestor key; jump to the next one.
			next := keyenc.PrefixSuccessor(da)
			if next == nil {
				return nil
			}
			cur = next
		default:
			recd, err := decodeNodeRecord(v)
			if err != nil {
				return err
			}
			_, prefix, err := parseDAKey(da)
			if err != nil {
				return err
			}
			if err := fn(prefix, labeling.Scope{N: n, Size: recd.size}); err != nil {
				return err
			}
			cur = append(append([]byte(nil), k...), 0)
		}
	}
}

// collectDocs performs the final range query [n, n+size] on the DocId tree
// and adds every document ID found to out.
func (ix *Index) collectDocs(scope labeling.Scope, out map[DocID]struct{}) error {
	lo := docKey(scope.N, 0)
	var hi []byte
	if end := scope.N + scope.Size; end < math.MaxUint64 {
		hi = docKey(end+1, 0)
	}
	return ix.docs.Scan(lo, hi, func(k, v []byte) (bool, error) {
		_, id, err := parseDocKey(k)
		if err != nil {
			return false, err
		}
		out[id] = struct{}{}
		return true, nil
	})
}

// MaxTreeDepth reports the deepest indexed sequence (prefix length + 1).
func (ix *Index) MaxTreeDepth() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.maxDepth
}
