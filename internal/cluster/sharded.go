package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"vist/internal/core"
	"vist/internal/obs"
	"vist/internal/xmltree"
)

// ShardedIndex partitions documents across N core indexes by docID hash.
// Each shard is a complete index — its own directory, WAL, and pagers — so
// shards fail, degrade, and recover independently. DocIDs are allocated from
// one global counter in insertion order (1, 2, 3, …), exactly as a single
// index would assign them, which keeps sharded results byte-identical to a
// single-node index or the naive oracle fed the same documents in the same
// order. The owner shard of a document is hash(id) mod N, so lookups route
// without any directory state.
//
// Queries scatter to every shard and gather: per-shard work budgets are the
// caller's budget split N ways (stricter is safer — see splitBudget), the
// first shard error cancels the rest through the shared context, and the
// merged result keeps the core contract: on a stop error the returned IDs
// are everything collected before the stop, and the merged QueryStats sum
// the per-shard work counters.
//
// Rebalance caveat: the hash is over the docID, so changing N reassigns
// ownership of almost every document. OpenSharded therefore persists the
// shard count and refuses to reopen with a different one; resharding means
// rebuilding (export, reopen with new N, re-ingest).
type ShardedIndex struct {
	shards []*core.Index
	opts   core.Options

	// mu serializes writers: the global docID allocation and the per-shard
	// InsertAs must be atomic so IDs arrive at each shard in ascending
	// order, which the shard enforces.
	mu      sync.Mutex
	nextDoc core.DocID
}

var _ core.Shard = (*ShardedIndex)(nil)

// shardConfig is persisted as cluster.json in the sharded directory.
type shardConfig struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

const shardConfigName = "cluster.json"

// hashDoc maps a docID to its owner shard via a splitmix64 finalizer —
// cheap, stateless, and uniform even over the sequential IDs the allocator
// hands out. The Router uses the same function, so in-process sharding and
// HTTP fan-out agree on placement.
func hashDoc(id core.DocID) uint64 {
	x := uint64(id) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardFor returns the owner shard of id among n shards.
func shardFor(id core.DocID, n int) int { return int(hashDoc(id) % uint64(n)) }

// OpenSharded opens (or creates) a sharded index under dir with n shards,
// each in its own subdirectory dir/shard-NNN. The shard count is recorded in
// dir/cluster.json on first open; later opens must pass the same n (or 0 to
// adopt the recorded count) — see the rebalance caveat on ShardedIndex.
func OpenSharded(dir string, n int, opts core.Options) (*ShardedIndex, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cfgPath := filepath.Join(dir, shardConfigName)
	if raw, err := os.ReadFile(cfgPath); err == nil {
		var cfg shardConfig
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, fmt.Errorf("cluster: %s: %w", cfgPath, err)
		}
		if cfg.Shards < 1 {
			return nil, fmt.Errorf("cluster: %s records %d shards", cfgPath, cfg.Shards)
		}
		if n != 0 && n != cfg.Shards {
			return nil, fmt.Errorf("cluster: %s was created with %d shards; reopening with %d would reassign document ownership (docID-hash placement) — rebuild to reshard", dir, cfg.Shards, n)
		}
		n = cfg.Shards
	} else if !os.IsNotExist(err) {
		return nil, err
	} else {
		if n < 1 {
			return nil, fmt.Errorf("cluster: shard count %d (want >= 1)", n)
		}
		raw, err := json.Marshal(shardConfig{Version: 1, Shards: n})
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(cfgPath, append(raw, '\n'), 0o644); err != nil {
			return nil, err
		}
	}
	s := &ShardedIndex{opts: opts}
	for i := 0; i < n; i++ {
		ix, err := core.Open(filepath.Join(dir, fmt.Sprintf("shard-%03d", i)), opts)
		if err != nil {
			for _, prev := range s.shards {
				prev.Close()
			}
			return nil, fmt.Errorf("cluster: open shard %d: %w", i, err)
		}
		s.shards = append(s.shards, ix)
	}
	s.seedNextDoc()
	return s, nil
}

// NewMemSharded builds an in-memory sharded index (tests and benchmarks).
func NewMemSharded(n int, opts core.Options) (*ShardedIndex, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: shard count %d (want >= 1)", n)
	}
	s := &ShardedIndex{opts: opts}
	for i := 0; i < n; i++ {
		ix, err := core.NewMem(opts)
		if err != nil {
			for _, prev := range s.shards {
				prev.Close()
			}
			return nil, err
		}
		s.shards = append(s.shards, ix)
	}
	s.seedNextDoc()
	return s, nil
}

// seedNextDoc initializes the global allocator past every ID any shard has
// assigned. Global IDs are handed out in ascending order, so the max across
// shards is exactly where a previous incarnation stopped.
func (s *ShardedIndex) seedNextDoc() {
	s.nextDoc = 1
	for _, sh := range s.shards {
		if nd := sh.NextDocID(); nd > s.nextDoc {
			s.nextDoc = nd
		}
	}
}

// NumShards reports the shard count.
func (s *ShardedIndex) NumShards() int { return len(s.shards) }

// Insert allocates the next global docID and places the document on its
// owner shard. IDs are assigned in call order (serialized), so a corpus
// inserted sequentially gets the same IDs a single index would assign.
func (s *ShardedIndex) Insert(doc *xmltree.Node) (core.DocID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextDoc
	if err := s.shards[shardFor(id, len(s.shards))].InsertAs(id, doc); err != nil {
		return 0, err
	}
	s.nextDoc = id + 1
	return id, nil
}

// InsertAs places a document under a caller-chosen ID on its owner shard.
// Like core.Index.InsertAs, IDs must arrive in ascending order.
func (s *ShardedIndex) InsertAs(id core.DocID, doc *xmltree.Node) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < s.nextDoc {
		return fmt.Errorf("cluster: InsertAs %d: IDs must be ascending (next is %d)", id, s.nextDoc)
	}
	if err := s.shards[shardFor(id, len(s.shards))].InsertAs(id, doc); err != nil {
		return err
	}
	s.nextDoc = id + 1
	return nil
}

// Delete removes a document from its owner shard.
func (s *ShardedIndex) Delete(id core.DocID) error {
	return s.shards[shardFor(id, len(s.shards))].Delete(id)
}

// Get loads a document from its owner shard.
func (s *ShardedIndex) Get(id core.DocID) (*xmltree.Node, error) {
	return s.shards[shardFor(id, len(s.shards))].Get(id)
}

// QueryCtx scatter-gathers a candidate query across every shard.
func (s *ShardedIndex) QueryCtx(ctx context.Context, expr string, b core.Budget) ([]core.DocID, core.QueryStats, error) {
	return s.scatter(ctx, expr, b, false)
}

// QueryVerifiedCtx scatter-gathers a verified query across every shard.
func (s *ShardedIndex) QueryVerifiedCtx(ctx context.Context, expr string, b core.Budget) ([]core.DocID, core.QueryStats, error) {
	return s.scatter(ctx, expr, b, true)
}

// splitBudget divides the per-query work limits across n shards (ceiling
// division, so small budgets never round to zero = unlimited). MaxResults is
// deliberately left whole: result counts don't partition predictably across
// shards, so each shard may collect up to the full cap and the merge
// enforces it globally. The split makes N shards do at most ~the work one
// index would — a query that would exceed its budget unsharded still fails
// sharded, rather than N-times the work sneaking under N separate caps.
func splitBudget(b core.Budget, n int) core.Budget {
	div := func(v int) int {
		if v <= 0 {
			return v
		}
		return (v + n - 1) / n
	}
	return core.Budget{
		MaxPages:        div(b.MaxPages),
		MaxRangeScans:   div(b.MaxRangeScans),
		MaxNodesVisited: div(b.MaxNodesVisited),
		MaxResults:      b.MaxResults,
	}
}

// scatter fans the query out, one goroutine per shard, and merges. The first
// shard error cancels the shared context; the other shards stop at their
// next budget checkpoint and report what they had, so the merged IDs on
// error are the cross-shard partial results the core contract promises.
func (s *ShardedIndex) scatter(ctx context.Context, expr string, b core.Budget, verified bool) ([]core.DocID, core.QueryStats, error) {
	// Single-shard fast path: with one shard there is nothing to split,
	// cancel, or merge — the goroutine handoff and stats merge would be pure
	// overhead on every query (the benchgate -within gate holds this
	// configuration within 10% of a bare index). The shard enforces budgets
	// and caps itself; only the plan line notes the cluster layer.
	if len(s.shards) == 1 {
		var (
			ids   []core.DocID
			stats core.QueryStats
			err   error
		)
		if verified {
			ids, stats, err = s.shards[0].QueryVerifiedCtx(ctx, expr, b)
		} else {
			ids, stats, err = s.shards[0].QueryCtx(ctx, expr, b)
		}
		stats.Plan = joinLines([]string{"plan: scatter-gather over 1 shards (direct)", stats.Plan})
		if qe, ok := err.(*core.QueryError); ok {
			return ids, stats, &core.QueryError{Expr: qe.Expr, Stats: stats, Reason: qe.Reason, Cause: qe.Cause, Stack: qe.Stack}
		}
		return ids, stats, err
	}
	start := time.Now()
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sb := splitBudget(b, len(s.shards))

	type shardResult struct {
		ids   []core.DocID
		stats core.QueryStats
		err   error
	}
	results := make([]shardResult, len(s.shards))
	var (
		errMu    sync.Mutex
		firstErr error // first non-cancel error, or first cancel if nothing else
	)
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := &results[i]
			if verified {
				r.ids, r.stats, r.err = s.shards[i].QueryVerifiedCtx(sctx, expr, sb)
			} else {
				r.ids, r.stats, r.err = s.shards[i].QueryCtx(sctx, expr, sb)
			}
			if r.err != nil {
				errMu.Lock()
				// Prefer the root cause: once one shard fails we cancel the
				// rest, and their induced ErrCanceled must not mask the
				// error that triggered it.
				if firstErr == nil || (errorIsCancel(firstErr) && !errorIsCancel(r.err)) {
					firstErr = r.err
				}
				errMu.Unlock()
				cancel()
			}
		}(i)
	}
	wg.Wait()

	var (
		ids   []core.DocID
		stats core.QueryStats
		plan  []string
	)
	plan = append(plan, fmt.Sprintf("plan: scatter-gather over %d shards", len(s.shards)))
	for i := range results {
		// Shards own disjoint docID partitions, so concatenation is a union.
		ids = append(ids, results[i].ids...)
		stats.Merge(results[i].stats)
		plan = append(plan, fmt.Sprintf("  shard %d: %s", i, results[i].stats.String()))
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	stats.Stages.Total = time.Since(start)
	stats.Plan = joinLines(plan)

	// Each shard respects MaxResults individually, but the union can exceed
	// it — including on the error path, where one shard stopped at the cap
	// and its siblings still contributed a few IDs before the cancel.
	// Enforce the cap globally, keeping the core contract (never more than
	// MaxResults IDs, plus a budget stop error).
	capped := false
	if max := effectiveMaxResults(b, s.opts.DefaultBudget); max > 0 && len(ids) > max {
		ids = ids[:max]
		stats.Candidates = len(ids)
		capped = true
	}
	if firstErr == nil {
		if capped {
			return ids, stats, &core.QueryError{
				Expr:   expr,
				Stats:  stats,
				Reason: core.ErrBudgetExceeded,
				Cause:  fmt.Errorf("result budget %d exhausted across %d shards", len(ids), len(s.shards)),
			}
		}
		return ids, stats, nil
	}
	if qe, ok := firstErr.(*core.QueryError); ok {
		// Re-wrap with the merged stats so the error's view matches the
		// cross-shard partial results actually returned.
		return ids, stats, &core.QueryError{Expr: expr, Stats: stats, Reason: qe.Reason, Cause: qe.Cause, Stack: qe.Stack}
	}
	return ids, stats, firstErr
}

func errorIsCancel(err error) bool {
	qe, ok := err.(*core.QueryError)
	return ok && qe.Reason == core.ErrCanceled
}

// effectiveMaxResults mirrors the stricter-wins merge of the per-call and
// index-default result caps.
func effectiveMaxResults(b, def core.Budget) int {
	switch {
	case b.MaxResults <= 0:
		return def.MaxResults
	case def.MaxResults <= 0:
		return b.MaxResults
	case def.MaxResults < b.MaxResults:
		return def.MaxResults
	default:
		return b.MaxResults
	}
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n"
		}
		out += l
	}
	return out
}

// Sync commits every shard (first error wins, but every shard is attempted).
func (s *ShardedIndex) Sync() error {
	var firstErr error
	for i, sh := range s.shards {
		if err := sh.Sync(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: sync shard %d: %w", i, err)
		}
	}
	return firstErr
}

// Close closes every shard (first error wins, but every shard is closed).
func (s *ShardedIndex) Close() error {
	var firstErr error
	for i, sh := range s.shards {
		if err := sh.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: close shard %d: %w", i, err)
		}
	}
	return firstErr
}

// DocCount sums the live document counts across shards.
func (s *ShardedIndex) DocCount() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.DocCount()
	}
	return n
}

// NextDocID reports the next globally allocated docID.
func (s *ShardedIndex) NextDocID() core.DocID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextDoc
}

// Degraded reports the first degraded shard's state, nil when all healthy.
// ShardStates gives the full per-shard picture.
func (s *ShardedIndex) Degraded() *core.DegradedError {
	for _, sh := range s.shards {
		if d := sh.Degraded(); d != nil {
			return d
		}
	}
	return nil
}

// ShardState is one shard's health, as reported by /readyz.
type ShardState struct {
	ID     int    `json:"id"`
	Docs   uint64 `json:"docs"`
	Status string `json:"status"` // "ok" or "degraded"
	Op     string `json:"op,omitempty"`
	Reason string `json:"reason,omitempty"`
	Since  string `json:"since,omitempty"`
}

// ShardStates reports per-shard health for readiness endpoints.
func (s *ShardedIndex) ShardStates() []ShardState {
	states := make([]ShardState, len(s.shards))
	for i, sh := range s.shards {
		st := ShardState{ID: i, Docs: sh.DocCount(), Status: "ok"}
		if d := sh.Degraded(); d != nil {
			st.Status = "degraded"
			st.Op = d.Op
			st.Reason = d.Cause.Error()
			st.Since = d.At.UTC().Format(time.RFC3339)
		}
		states[i] = st
	}
	return states
}

// Metrics merges the per-shard registries into one snapshot: counters and
// gauges sum, histograms with identical bounds merge bucket-wise — so
// cluster dashboards read the same metric names as single-node ones.
func (s *ShardedIndex) Metrics() obs.Snapshot {
	merged := obs.Snapshot{}
	for _, sh := range s.shards {
		mergeSnapshot(&merged, sh.Metrics())
	}
	return merged
}

// mergeSnapshot folds src into dst (see Metrics).
func mergeSnapshot(dst *obs.Snapshot, src obs.Snapshot) {
	if len(src.Counters) > 0 && dst.Counters == nil {
		dst.Counters = make(map[string]uint64)
	}
	for k, v := range src.Counters {
		dst.Counters[k] += v
	}
	if len(src.Gauges) > 0 && dst.Gauges == nil {
		dst.Gauges = make(map[string]int64)
	}
	for k, v := range src.Gauges {
		dst.Gauges[k] += v
	}
	if len(src.Histograms) > 0 && dst.Histograms == nil {
		dst.Histograms = make(map[string]obs.HistogramSnapshot)
	}
	for k, h := range src.Histograms {
		cur, ok := dst.Histograms[k]
		if !ok {
			dst.Histograms[k] = h
			continue
		}
		cur.Count += h.Count
		cur.Sum += h.Sum
		if len(cur.Buckets) == len(h.Buckets) {
			buckets := append([]uint64(nil), cur.Buckets...)
			for i, b := range h.Buckets {
				buckets[i] += b
			}
			cur.Buckets = buckets
		}
		dst.Histograms[k] = cur
	}
}
