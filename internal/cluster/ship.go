// Package cluster composes core indexes into a serving topology: a
// ShardedIndex that partitions documents across N shards by docID hash and
// scatter-gathers queries, a Router that fans HTTP requests out over shard
// servers with hedged reads, and a Replica that follows a leader by WAL
// shipping and serves read-only snapshot queries. Everything is written
// against the core.Shard interface, so the vist serve HTTP layer runs
// unchanged over a single index, a sharded group, or a follower.
package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// The ship log is the leader-side durable buffer of the replication stream:
// every WAL commit's frame bytes are appended as one batch, and followers
// read batches by byte offset over HTTP (see ShipHandler and Replica). It is
// append-only for its whole life — the concatenation of all batch payloads
// since creation is the leader's complete committed physical history, which
// is what lets a follower bootstrap from an empty directory by replaying
// from offset zero.
//
// Layout: an 8-byte magic header, then batches of
//
//	length uint32 | crc32c(payload) uint32 | payload
//
// where each payload is a run of WAL frames ending in a commit record,
// exactly as the leader's log framed them. A torn tail (crash mid-append) is
// truncated at open; because the WAL re-ships the committed region on
// recovery, the truncated batch is appended again by the leader's next open.
const (
	shipMagic      = "VISTSHP1"
	shipHeaderSize = 8
	shipBatchHdr   = 8
	// maxShipBatch bounds a parsed batch length so a corrupt length field
	// cannot provoke a huge allocation. Batches are one WAL commit each;
	// WALMaxBytes keeps real ones far below this.
	maxShipBatch = 1 << 28
)

var shipCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrShipRange reports a read offset outside the log — a follower asking for
// bytes the leader does not have (or not at a batch boundary), which means
// follower and leader disagree about history and resync is needed.
var ErrShipRange = fmt.Errorf("cluster: ship offset out of range")

// ShipLog is the append-only batch log. Append and Read are safe for
// concurrent use (the HTTP handler reads while commits append).
type ShipLog struct {
	mu   sync.Mutex
	f    *os.File
	size int64 // end of the last valid batch
}

// OpenShipLog opens or creates the log at path, scanning existing batches
// and truncating any torn tail so the log always ends at a batch boundary.
func OpenShipLog(path string) (*ShipLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &ShipLog{f: f}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < shipHeaderSize {
		// New log, or a crash tore the header write: start fresh.
		if err := l.reset(); err != nil {
			f.Close()
			return nil, err
		}
		return l, nil
	}
	hdr := make([]byte, shipHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	if string(hdr) != shipMagic {
		f.Close()
		return nil, fmt.Errorf("cluster: %s is not a ship log (magic %q)", path, hdr)
	}
	end, err := l.scan(st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	if end < st.Size() {
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, err
		}
	}
	l.size = end
	return l, nil
}

func (l *ShipLog) reset() error {
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.WriteAt([]byte(shipMagic), 0); err != nil {
		return err
	}
	l.size = shipHeaderSize
	return nil
}

// scan walks batches from the header and returns the offset just past the
// last intact one.
func (l *ShipLog) scan(size int64) (int64, error) {
	pos := int64(shipHeaderSize)
	hdr := make([]byte, shipBatchHdr)
	for pos+shipBatchHdr <= size {
		if _, err := l.f.ReadAt(hdr, pos); err != nil {
			return 0, err
		}
		n := int64(binary.BigEndian.Uint32(hdr[:4]))
		if n == 0 || n > maxShipBatch || pos+shipBatchHdr+n > size {
			break // torn or corrupt tail
		}
		payload := make([]byte, n)
		if _, err := l.f.ReadAt(payload, pos+shipBatchHdr); err != nil {
			return 0, err
		}
		if crc32.Checksum(payload, shipCRC) != binary.BigEndian.Uint32(hdr[4:8]) {
			break
		}
		pos += shipBatchHdr + n
	}
	return pos, nil
}

// Append writes one batch (the raw frame bytes of one WAL commit) and
// fsyncs. The batch becomes visible to Read only after the fsync, so a
// follower can never fetch bytes a leader crash would take back.
func (l *ShipLog) Append(payload []byte) error {
	if len(payload) == 0 {
		return nil
	}
	if len(payload) > maxShipBatch {
		return fmt.Errorf("cluster: ship batch of %d bytes exceeds limit %d", len(payload), maxShipBatch)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	buf := make([]byte, shipBatchHdr+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, shipCRC))
	copy(buf[shipBatchHdr:], payload)
	if _, err := l.f.WriteAt(buf, l.size); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size += int64(len(buf))
	return nil
}

// Read returns the concatenated payloads of complete batches starting at
// offset from (0 and shipHeaderSize both mean "the beginning"), at least one
// batch and at most ~maxBytes of payload, plus the offset of the next unread
// batch. An empty result with next == from means the follower is caught up.
// from must sit on a batch boundary within the log; anything else returns
// ErrShipRange.
func (l *ShipLog) Read(from int64, maxBytes int) (data []byte, next int64, err error) {
	l.mu.Lock()
	size := l.size
	l.mu.Unlock()
	if from == 0 {
		from = shipHeaderSize
	}
	if from < shipHeaderSize || from > size {
		return nil, 0, fmt.Errorf("%w: from=%d log=[%d,%d]", ErrShipRange, from, shipHeaderSize, size)
	}
	if maxBytes <= 0 {
		maxBytes = 4 << 20
	}
	pos := from
	hdr := make([]byte, shipBatchHdr)
	for pos < size && (len(data) == 0 || len(data) < maxBytes) {
		if pos+shipBatchHdr > size {
			return nil, 0, fmt.Errorf("%w: offset %d splits a batch", ErrShipRange, pos)
		}
		if _, err := l.f.ReadAt(hdr, pos); err != nil {
			return nil, 0, err
		}
		n := int64(binary.BigEndian.Uint32(hdr[:4]))
		if n == 0 || n > maxShipBatch || pos+shipBatchHdr+n > size {
			return nil, 0, fmt.Errorf("%w: offset %d is not a batch boundary", ErrShipRange, from)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(io.NewSectionReader(l.f, pos+shipBatchHdr, n), payload); err != nil {
			return nil, 0, err
		}
		if crc32.Checksum(payload, shipCRC) != binary.BigEndian.Uint32(hdr[4:8]) {
			return nil, 0, fmt.Errorf("cluster: ship batch at %d fails CRC", pos)
		}
		data = append(data, payload...)
		pos += shipBatchHdr + n
	}
	return data, pos, nil
}

// Size reports the end offset of the last durable batch — the "leader size"
// a follower diffs against its own offset to compute replication lag.
func (l *ShipLog) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close releases the file.
func (l *ShipLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
