package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"vist/internal/btree"
	"vist/internal/core"
	"vist/internal/xmltree"
)

func mustParse(t *testing.T, xml string) *xmltree.Node {
	t.Helper()
	n, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// leaderHarness is a -ship leader: an index whose commits append to a ship
// log, served (ship endpoint included) over HTTP.
type leaderHarness struct {
	dir string
	log *ShipLog
	ix  *core.Index
	srv *httptest.Server
}

func newLeader(t *testing.T, dir string, fs btree.FS) (*leaderHarness, error) {
	t.Helper()
	log, err := OpenShipLog(filepath.Join(dir, "shiplog"))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Open(dir, core.Options{FS: fs, WALShipper: log.Append})
	if err != nil {
		log.Close()
		return nil, err
	}
	h := &leaderHarness{dir: dir, log: log, ix: ix}
	h.srv = httptest.NewServer(QueryMux(ix, MuxConfig{Ship: log}))
	t.Cleanup(func() { h.srv.Close(); h.log.Close() })
	return h, nil
}

// drain polls until the replica reports itself caught up.
func drain(t *testing.T, rep *Replica) {
	t.Helper()
	ctx := context.Background()
	for i := 0; ; i++ {
		n, err := rep.Poll(ctx)
		if err != nil {
			t.Fatal("poll:", err)
		}
		if n == 0 {
			return
		}
		if i > 1000 {
			t.Fatal("replica never catches up")
		}
	}
}

func docIDs(t *testing.T, s core.Shard, expr string) []core.DocID {
	t.Helper()
	ids, _, err := s.QueryCtx(context.Background(), expr, core.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestReplicaFollowsLeader is the happy-path replication story: a follower
// bootstraps from an empty directory by replaying the leader's ship log,
// serves the same query results, tracks later inserts and deletes, rejects
// writes, and resumes from its persisted offset after a restart.
func TestReplicaFollowsLeader(t *testing.T) {
	h, err := newLeader(t, t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer h.ix.Close()
	for i := 0; i < 5; i++ {
		if _, err := h.ix.Insert(mustParse(t, fmt.Sprintf("<r><a>v%d</a></r>", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.ix.Sync(); err != nil {
		t.Fatal(err)
	}

	rdir := t.TempDir()
	rep, err := OpenReplica(rdir, h.srv.URL, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, rep)
	if got, want := docIDs(t, rep, "/r"), docIDs(t, h.ix, "/r"); !sameIDs(got, want) {
		t.Fatalf("replica serves %v, leader %v", got, want)
	}
	if rep.DocCount() != 5 {
		t.Fatalf("replica DocCount = %d, want 5", rep.DocCount())
	}
	if doc, err := rep.Get(3); err != nil || doc == nil {
		t.Fatalf("replica Get(3): %v", err)
	}
	if st := rep.Status(); st.LagBytes != 0 || st.Applied == 0 {
		t.Fatalf("caught-up status = %+v", st)
	}

	// Followers never accept writes.
	if _, err := rep.Insert(mustParse(t, "<r/>")); !errors.Is(err, ErrReplicaReadOnly) {
		t.Fatalf("Insert on replica: %v", err)
	}
	if err := rep.Delete(1); !errors.Is(err, ErrReplicaReadOnly) {
		t.Fatalf("Delete on replica: %v", err)
	}
	if err := rep.InsertAs(9, mustParse(t, "<r/>")); !errors.Is(err, ErrReplicaReadOnly) {
		t.Fatalf("InsertAs on replica: %v", err)
	}

	// Deletes and later inserts ship too.
	if err := h.ix.Delete(2); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ix.Insert(mustParse(t, "<r><a>late</a></r>")); err != nil {
		t.Fatal(err)
	}
	if err := h.ix.Sync(); err != nil {
		t.Fatal(err)
	}
	drain(t, rep)
	if got, want := docIDs(t, rep, "/r"), docIDs(t, h.ix, "/r"); !sameIDs(got, want) {
		t.Fatalf("after delete+insert: replica %v, leader %v", got, want)
	}
	if _, err := rep.Get(2); !errors.Is(err, core.ErrDocNotFound) {
		t.Fatalf("replica Get(deleted): %v", err)
	}
	snap := rep.Metrics()
	if snap.Counters["replica.batches_applied"] == 0 || snap.Counters["replica.polls"] == 0 {
		t.Fatalf("replication metrics missing: %v", snap.Counters)
	}

	// Restart: the offset file makes the reopened follower resume, not
	// re-bootstrap, and it serves its local state before any poll.
	off := rep.Status().Offset
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	rep2, err := OpenReplica(rdir, h.srv.URL, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()
	if rep2.Status().Offset != off {
		t.Fatalf("reopened offset = %d, want %d", rep2.Status().Offset, off)
	}
	if got, want := docIDs(t, rep2, "/r"), docIDs(t, h.ix, "/r"); !sameIDs(got, want) {
		t.Fatalf("reopened replica serves %v, leader %v", got, want)
	}
	if n, err := rep2.Poll(context.Background()); err != nil || n != 0 {
		t.Fatalf("reopened replica not caught up: (%d, %v)", n, err)
	}
}

// TestReplicaLeaderCrash kills the leader at byte-granular fault points
// spanning its whole write history (FaultFS byte budget, unsynced writes
// dropped) and checks the replication consistency guarantee: after draining
// the surviving ship log, the follower's state equals the leader's recovered
// committed state — every acknowledged commit present, no uncommitted
// document ever served — and after the leader heals, ships duplicates of its
// recovered tail, and commits fresh writes, the follower converges again.
func TestReplicaLeaderCrash(t *testing.T) {
	const rounds = 3
	workload := func(h *leaderHarness) (acked int) {
		for i := 1; i <= rounds; i++ {
			if _, err := h.ix.Insert(mustParse(t, fmt.Sprintf("<r><a>d%d</a></r>", i))); err != nil {
				return acked
			}
			if err := h.ix.Sync(); err != nil {
				return acked
			}
			acked = i
		}
		return acked
	}

	// Recording run: no faults, just the write-op byte boundaries.
	recPlan := &btree.FaultPlan{}
	recLeader, err := newLeader(t, t.TempDir(), btree.FaultFS{Plan: recPlan})
	if err != nil {
		t.Fatal(err)
	}
	if got := workload(recLeader); got != rounds {
		t.Fatalf("recording run acked %d of %d", got, rounds)
	}
	recLeader.ix.Close()
	bounds := recPlan.WriteBoundaries()
	if len(bounds) < 6 {
		t.Fatalf("only %d write ops recorded", len(bounds))
	}
	var points []int64
	for i := 0; i < 6; i++ {
		points = append(points, bounds[i*len(bounds)/6])
	}

	for _, kill := range points {
		t.Run(fmt.Sprintf("kill=%d", kill), func(t *testing.T) {
			ldir := t.TempDir()
			plan := &btree.FaultPlan{KillAfter: kill}
			acked := 0
			h, err := newLeader(t, ldir, btree.FaultFS{Plan: plan})
			if err == nil {
				acked = workload(h)
				h.srv.Close()
			}
			// Simulate the process dying: unsynced index writes are lost.
			// The ship log lives outside FaultFS — its Append fsyncs before
			// exposing a batch, so it only ever holds commit-fsynced frames.
			if err := plan.Crash(false); err != nil {
				t.Fatal(err)
			}

			// Leader recovers on the real filesystem; its doc set is the
			// committed prefix the crash story guarantees.
			log2, err := OpenShipLog(filepath.Join(ldir, "shiplog"))
			if err != nil {
				t.Fatal(err)
			}
			defer log2.Close()
			lix, err := core.Open(ldir, core.Options{WALShipper: log2.Append})
			if err != nil {
				t.Fatalf("leader recovery: %v", err)
			}
			defer lix.Close()
			committed := docIDs(t, lix, "/r")
			if len(committed) < acked {
				t.Fatalf("leader recovered %v, older than acknowledged commit %d", committed, acked)
			}

			mux := http.NewServeMux()
			mux.Handle("/wal/ship", ShipHandler(log2))
			srv := httptest.NewServer(mux)
			defer srv.Close()
			rep, err := OpenReplica(t.TempDir(), srv.URL, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer rep.Close()
			drain(t, rep)
			if got := docIDs(t, rep, "/r"); !sameIDs(got, committed) {
				t.Fatalf("replica serves %v, committed leader state is %v (acked %d)", got, committed, acked)
			}

			// Heal-and-continue: a fresh commit on the recovered leader
			// (whose recovery may have re-shipped its committed tail —
			// duplicate batches the follower must absorb idempotently).
			if _, err := lix.Insert(mustParse(t, "<r><a>post-crash</a></r>")); err != nil {
				t.Fatal(err)
			}
			if err := lix.Sync(); err != nil {
				t.Fatal(err)
			}
			drain(t, rep)
			if got, want := docIDs(t, rep, "/r"), docIDs(t, lix, "/r"); !sameIDs(got, want) {
				t.Fatalf("after heal: replica %v, leader %v", got, want)
			}
		})
	}
}
