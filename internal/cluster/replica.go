package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"vist/internal/core"
	"vist/internal/obs"
	"vist/internal/xmltree"
)

// ErrReplicaReadOnly is returned by every mutation on a Replica: followers
// apply the leader's WAL stream and never accept writes of their own.
var ErrReplicaReadOnly = errors.New("cluster: replica is read-only (WAL-shipped follower)")

// errReplicaUnavailable is returned while the index is swapped out (a failed
// apply left no open index) or after Close.
var errReplicaUnavailable = errors.New("cluster: replica index unavailable")

// Replica is a read-only follower of a WAL-shipping leader. It polls the
// leader's /wal/ship endpoint for committed WAL frame batches, appends them
// to its local write-ahead log, and reopens the index so the PR-2 recovery
// path replays them into the page files — physical replication built
// entirely from machinery the crash story already proves out.
//
// Consistency guarantee: the leader ships bytes only after its commit fsync,
// and the ship log exposes only complete, CRC-checked batches, so every
// state the replica ever serves is a committed prefix of the leader's
// history. The replica can lag (poll interval + apply time) but can never
// show an uncommitted or torn write. Duplicate batch delivery (leader crash
// between fsync and ship, or a retried poll) is harmless because physical
// page redo is idempotent.
//
// Bootstrap: the ship log is append-only since the leader index's creation,
// so a follower starts from an empty directory and offset zero and replays
// the full history; its files converge on the leader's because both started
// from the same deterministic empty-index layout (the options — page size
// above all — must match the leader's).
type Replica struct {
	dir    string
	leader string // base URL of the leader's query/ship server
	opts   core.Options
	client *http.Client

	// mu orders queries (read lock, held for the query's duration) against
	// apply (write lock: close index, append WAL, reopen, swap).
	mu sync.RWMutex
	ix *core.Index

	offset     int64 // next ship-log offset to fetch
	leaderSize int64 // leader ship-log size at last poll

	reg           *obs.Registry
	lagBytes      *obs.Gauge
	applied       *obs.Counter
	bytesApplied  *obs.Counter
	polls         *obs.Counter
	pollErrs      *obs.Counter
	lastApplyUnix *obs.Gauge
}

var _ core.Shard = (*Replica)(nil)

// replicaOffsetName persists the next ship-log offset to fetch. It is
// written after an apply completes; a crash between apply and offset write
// just refetches and reapplies the same batches (idempotent).
const replicaOffsetName = "replica.offset"

// OpenReplica opens (or bootstraps) a follower in dir tracking the leader at
// leaderURL (e.g. "http://10.0.0.1:8080"). opts must match the leader's page
// size; WAL-dependent options are forced sane (the WAL is the whole point).
func OpenReplica(dir, leaderURL string, opts core.Options) (*Replica, error) {
	if opts.DisableWAL {
		return nil, fmt.Errorf("cluster: a replica needs the write-ahead log (DisableWAL is set)")
	}
	opts.WALShipper = nil // followers never re-ship
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	r := &Replica{
		dir:    dir,
		leader: strings.TrimRight(leaderURL, "/"),
		opts:   opts,
		client: &http.Client{Timeout: 30 * time.Second},
		reg:    obs.NewRegistry(),
	}
	r.lagBytes = r.reg.Gauge("replica.lag_bytes")
	r.applied = r.reg.Counter("replica.batches_applied")
	r.bytesApplied = r.reg.Counter("replica.bytes_applied")
	r.polls = r.reg.Counter("replica.polls")
	r.pollErrs = r.reg.Counter("replica.poll_errors")
	r.lastApplyUnix = r.reg.Gauge("replica.last_apply_unix")

	if raw, err := os.ReadFile(filepath.Join(dir, replicaOffsetName)); err == nil {
		off, perr := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64)
		if perr != nil {
			return nil, fmt.Errorf("cluster: %s: %w", replicaOffsetName, perr)
		}
		r.offset = off
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	ix, err := core.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	r.ix = ix
	return r, nil
}

// Poll fetches and applies one batch run from the leader. It returns the
// number of payload bytes applied (0 when caught up) and updates the lag
// metrics either way.
func (r *Replica) Poll(ctx context.Context) (int, error) {
	r.polls.Inc()
	n, err := r.pollOnce(ctx)
	if err != nil {
		r.pollErrs.Inc()
	}
	return n, err
}

func (r *Replica) pollOnce(ctx context.Context) (int, error) {
	r.mu.RLock()
	from := r.offset
	r.mu.RUnlock()
	url := fmt.Sprintf("%s/wal/ship?from=%d", r.leader, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("cluster: leader %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	next, err := strconv.ParseInt(resp.Header.Get("X-Ship-Next"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("cluster: leader sent bad X-Ship-Next: %w", err)
	}
	if size, err := strconv.ParseInt(resp.Header.Get("X-Ship-Size"), 10, 64); err == nil {
		r.mu.Lock()
		r.leaderSize = size
		r.lagBytes.Set(size - next)
		r.mu.Unlock()
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if len(payload) == 0 {
		return 0, nil
	}
	if err := r.apply(payload, next); err != nil {
		return 0, err
	}
	return len(payload), nil
}

// apply appends the shipped frames to the local WAL and reopens the index,
// letting the standard committed-tail recovery replay them. The write lock
// excludes queries for the swap; queries in flight finish first (they hold
// the read lock for their duration).
func (r *Replica) apply(frames []byte, next int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.ix.Close(); err != nil {
		return fmt.Errorf("cluster: close before apply: %w", err)
	}
	r.ix = nil
	if err := appendWAL(filepath.Join(r.dir, "wal"), frames); err != nil {
		return fmt.Errorf("cluster: append shipped frames: %w", err)
	}
	ix, err := core.Open(r.dir, r.opts)
	if err != nil {
		return fmt.Errorf("cluster: reopen after apply: %w", err)
	}
	r.ix = ix
	r.offset = next
	r.applied.Inc()
	r.bytesApplied.Add(uint64(len(frames)))
	r.lastApplyUnix.Set(time.Now().Unix())
	r.lagBytes.Set(r.leaderSize - next)
	// Persist the offset last: a crash before this line refetches from the
	// old offset and reapplies the same frames, which is idempotent.
	tmp := filepath.Join(r.dir, replicaOffsetName+".tmp")
	if err := os.WriteFile(tmp, []byte(strconv.FormatInt(next, 10)+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(r.dir, replicaOffsetName))
}

// appendWAL appends raw committed frames to the WAL file at path, creating
// it (with the standard header) if needed, and fsyncs. The next core.Open
// replays them exactly as it would a crash-left committed tail.
func appendWAL(path string, frames []byte) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	off := st.Size()
	if off < 16 {
		// Fresh (or header-torn) log: write the 16-byte WAL header the
		// recovery parser expects — magic "VISTWAL1", version 1, reserved.
		hdr := make([]byte, 16)
		copy(hdr, "VISTWAL1")
		hdr[11] = 1 // version uint32 big-endian
		if _, err := f.WriteAt(hdr, 0); err != nil {
			return err
		}
		off = 16
	}
	if _, err := f.WriteAt(frames, off); err != nil {
		return err
	}
	return f.Sync()
}

// Run polls in a loop until ctx is done, sleeping interval between polls
// (with an immediate first poll). Poll errors are reported through the
// replica.poll_errors counter and the returned channel is not used for them;
// the loop keeps retrying, because a leader restart is a normal event.
func (r *Replica) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		// Drain everything available before sleeping, so catch-up after a
		// long partition is bounded by bandwidth, not poll cadence.
		for {
			n, err := r.Poll(ctx)
			if err != nil || n == 0 {
				break
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// ReplicaStatus is the JSON shape of the follower's /status extension.
type ReplicaStatus struct {
	Leader     string `json:"leader"`
	Offset     int64  `json:"offset"`
	LeaderSize int64  `json:"leader_size"`
	LagBytes   int64  `json:"lag_bytes"`
	Applied    uint64 `json:"batches_applied"`
}

// Status reports the replication position and lag.
func (r *Replica) Status() ReplicaStatus {
	r.mu.RLock()
	defer r.mu.RUnlock()
	lag := r.leaderSize - r.offset
	if lag < 0 {
		lag = 0
	}
	return ReplicaStatus{
		Leader:     r.leader,
		Offset:     r.offset,
		LeaderSize: r.leaderSize,
		LagBytes:   lag,
		Applied:    r.applied.Load(),
	}
}

// QueryCtx serves a read against the last applied committed state.
func (r *Replica) QueryCtx(ctx context.Context, expr string, b core.Budget) ([]core.DocID, core.QueryStats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.ix == nil {
		return nil, core.QueryStats{}, errReplicaUnavailable
	}
	return r.ix.QueryCtx(ctx, expr, b)
}

// QueryVerifiedCtx serves a verified read against the last applied state.
func (r *Replica) QueryVerifiedCtx(ctx context.Context, expr string, b core.Budget) ([]core.DocID, core.QueryStats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.ix == nil {
		return nil, core.QueryStats{}, errReplicaUnavailable
	}
	return r.ix.QueryVerifiedCtx(ctx, expr, b)
}

// Get loads a document from the last applied state.
func (r *Replica) Get(id core.DocID) (*xmltree.Node, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.ix == nil {
		return nil, errReplicaUnavailable
	}
	return r.ix.Get(id)
}

// Insert fails: replicas are read-only.
func (r *Replica) Insert(*xmltree.Node) (core.DocID, error) { return 0, ErrReplicaReadOnly }

// InsertAs fails: replicas are read-only.
func (r *Replica) InsertAs(core.DocID, *xmltree.Node) error { return ErrReplicaReadOnly }

// Delete fails: replicas are read-only.
func (r *Replica) Delete(core.DocID) error { return ErrReplicaReadOnly }

// Sync is a no-op: a replica holds no local mutations to commit.
func (r *Replica) Sync() error { return nil }

// Close stops serving and closes the underlying index.
func (r *Replica) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ix == nil {
		return nil
	}
	err := r.ix.Close()
	r.ix = nil
	return err
}

// DocCount reports the last applied state's live document count.
func (r *Replica) DocCount() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.ix == nil {
		return 0
	}
	return r.ix.DocCount()
}

// NextDocID reports the last applied state's next docID.
func (r *Replica) NextDocID() core.DocID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.ix == nil {
		return 0
	}
	return r.ix.NextDocID()
}

// Degraded reports the underlying index's degradation state.
func (r *Replica) Degraded() *core.DegradedError {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.ix == nil {
		return nil
	}
	return r.ix.Degraded()
}

// Metrics merges the replication metrics with the underlying index's.
func (r *Replica) Metrics() obs.Snapshot {
	merged := r.reg.Snapshot()
	r.mu.RLock()
	ix := r.ix
	r.mu.RUnlock()
	if ix != nil {
		mergeSnapshot(&merged, ix.Metrics())
	}
	return merged
}
