package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"vist/internal/core"
	"vist/internal/gen"
	"vist/internal/naive"
)

func mustMemSharded(t *testing.T, n int, opts core.Options) *ShardedIndex {
	t.Helper()
	s, err := NewMemSharded(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustMem(t *testing.T, opts core.Options) *core.Index {
	t.Helper()
	ix, err := core.NewMem(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func sameIDs(a, b []core.DocID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dblpQueries covers each plan mode over the DBLP corpus: rooted, //, value
// predicates, wildcards, and a miss.
var dblpQueries = []string{
	"//inproceedings/author",
	"//author",
	"/article/year",
	"//title",
	"/inproceedings/booktitle",
	fmt.Sprintf("//author[text()='%s']", gen.DBLPDavid),
	"/book/*",
	"//*/year",
	"/phdthesis//author",
	"/nosuch/path",
}

// TestShardedDifferential is the tentpole's correctness oracle: a corpus
// inserted through ShardedIndex (N = 1, 2, 4) must assign exactly the docIDs
// a single index assigns, and every query — candidate and verified — must
// return the identical ID list the single index and the naive Algorithm 1
// matcher return, before and after a round of deletions. Candidate
// membership is decided per document (matched nodes lie on the document's
// own trie path), so partitioning by docID must never change a result set.
func TestShardedDifferential(t *testing.T) {
	docs := gen.DBLP(gen.DBLPConfig{Records: 250, Seed: 7})

	single := mustMem(t, core.Options{})
	nv := naive.New(nil)
	singleIDs := make([]core.DocID, len(docs))
	for i, d := range docs {
		id, err := single.Insert(d)
		if err != nil {
			t.Fatal(err)
		}
		singleIDs[i] = id
		if nid := nv.Insert(d); nid != uint64(id) {
			t.Fatalf("doc %d: naive id %d, core id %d", i, nid, id)
		}
	}

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			s := mustMemSharded(t, n, core.Options{})
			for i, d := range docs {
				id, err := s.Insert(d)
				if err != nil {
					t.Fatal(err)
				}
				if id != singleIDs[i] {
					t.Fatalf("doc %d: sharded id %d, single id %d", i, id, singleIDs[i])
				}
			}
			if s.DocCount() != single.DocCount() {
				t.Fatalf("DocCount %d, want %d", s.DocCount(), single.DocCount())
			}
			if s.NextDocID() != single.NextDocID() {
				t.Fatalf("NextDocID %d, want %d", s.NextDocID(), single.NextDocID())
			}

			ctx := context.Background()
			for _, q := range dblpQueries {
				want, _, err := single.QueryCtx(ctx, q, core.Budget{})
				if err != nil {
					t.Fatalf("%s: single: %v", q, err)
				}
				nWant, err := nv.Query(q)
				if err != nil {
					t.Fatalf("%s: naive: %v", q, err)
				}
				if len(nWant) != len(want) {
					t.Fatalf("%s: naive %d results, single %d", q, len(nWant), len(want))
				}
				got, stats, err := s.QueryCtx(ctx, q, core.Budget{})
				if err != nil {
					t.Fatalf("%s: sharded: %v", q, err)
				}
				if !sameIDs(got, want) {
					t.Fatalf("%s: sharded %v, single %v", q, got, want)
				}
				if !strings.Contains(stats.Plan, fmt.Sprintf("scatter-gather over %d shards", n)) {
					t.Fatalf("%s: plan missing scatter line:\n%s", q, stats.Plan)
				}
				vGot, _, err := s.QueryVerifiedCtx(ctx, q, core.Budget{})
				if err != nil {
					t.Fatalf("%s: sharded verified: %v", q, err)
				}
				vWant, _, err := single.QueryVerifiedCtx(ctx, q, core.Budget{})
				if err != nil {
					t.Fatalf("%s: single verified: %v", q, err)
				}
				if !sameIDs(vGot, vWant) {
					t.Fatalf("%s: verified sharded %v, single %v", q, vGot, vWant)
				}
			}

			// Delete every third document from both engines; Get must route to
			// the owner shard and the query sets must still agree.
			for i := 0; i < len(singleIDs); i += 3 {
				if err := s.Delete(singleIDs[i]); err != nil {
					t.Fatalf("sharded delete %d: %v", singleIDs[i], err)
				}
				if _, err := s.Get(singleIDs[i]); !errors.Is(err, core.ErrDocNotFound) {
					t.Fatalf("Get after delete: %v", err)
				}
			}
			for _, q := range dblpQueries {
				want, _, err := single.QueryCtx(ctx, q, core.Budget{})
				if err != nil {
					t.Fatal(err)
				}
				// The single-index oracle still has the deleted docs; filter.
				want = filterIDs(want, func(id core.DocID) bool {
					for i := 0; i < len(singleIDs); i += 3 {
						if singleIDs[i] == id {
							return false
						}
					}
					return true
				})
				got, _, err := s.QueryCtx(ctx, q, core.Budget{})
				if err != nil {
					t.Fatal(err)
				}
				if !sameIDs(got, want) {
					t.Fatalf("%s after deletes: sharded %v, want %v", q, got, want)
				}
			}
		})
	}
}

func filterIDs(ids []core.DocID, keep func(core.DocID) bool) []core.DocID {
	out := ids[:0:0]
	for _, id := range ids {
		if keep(id) {
			out = append(out, id)
		}
	}
	return out
}

// TestShardedPersistence reopens a file-backed sharded index: the recorded
// shard count is adopted (n = 0) and enforced (wrong n refused), the docID
// allocator resumes past every assigned ID, and the data survives.
func TestShardedPersistence(t *testing.T) {
	dir := t.TempDir()
	docs := gen.DBLP(gen.DBLPConfig{Records: 40, Seed: 3})

	s, err := OpenSharded(dir, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		if _, err := s.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	want, _, err := s.QueryCtx(context.Background(), "//author", core.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenSharded(dir, 2, core.Options{}); err == nil ||
		!strings.Contains(err.Error(), "rebuild to reshard") {
		t.Fatalf("reopen with wrong shard count: %v", err)
	}

	s2, err := OpenSharded(dir, 0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumShards() != 3 {
		t.Fatalf("NumShards %d, want 3 (adopted from cluster.json)", s2.NumShards())
	}
	if s2.NextDocID() != core.DocID(len(docs)+1) {
		t.Fatalf("NextDocID %d after reopen, want %d", s2.NextDocID(), len(docs)+1)
	}
	got, _, err := s2.QueryCtx(context.Background(), "//author", core.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, want) {
		t.Fatalf("reopen lost results: %v, want %v", got, want)
	}
	if id, err := s2.Insert(docs[0]); err != nil || id != core.DocID(len(docs)+1) {
		t.Fatalf("insert after reopen: id %d err %v", id, err)
	}
}

// TestShardedBudgetAndCancel pins the cross-shard stop-error semantics: a
// result cap is enforced globally after the merge, a canceled context
// surfaces as ErrCanceled, and a tiny work budget stops with
// ErrBudgetExceeded while still returning the partial IDs collected.
func TestShardedBudgetAndCancel(t *testing.T) {
	docs := gen.DBLP(gen.DBLPConfig{Records: 120, Seed: 5})
	s := mustMemSharded(t, 3, core.Options{})
	for _, d := range docs {
		if _, err := s.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()

	all, _, err := s.QueryCtx(ctx, "//author", core.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 20 {
		t.Fatalf("want a selective-enough corpus, got %d results", len(all))
	}

	ids, stats, err := s.QueryCtx(ctx, "//author", core.Budget{MaxResults: 7})
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("MaxResults: err %v, want ErrBudgetExceeded", err)
	}
	if len(ids) != 7 {
		t.Fatalf("MaxResults: %d ids, want 7", len(ids))
	}
	if stats.Candidates != 7 {
		t.Fatalf("MaxResults: stats.Candidates %d, want 7", stats.Candidates)
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := s.QueryCtx(canceled, "//author", core.Budget{}); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("canceled ctx: err %v, want ErrCanceled", err)
	}

	// A one-page budget split across shards cannot finish; the root cause
	// must be the budget stop, not the induced cancellation of sibling
	// shards.
	_, _, err = s.QueryCtx(ctx, "//author", core.Budget{MaxPages: 1})
	if !errors.Is(err, core.ErrBudgetExceeded) {
		t.Fatalf("MaxPages: err %v, want ErrBudgetExceeded", err)
	}
}

func TestSplitBudget(t *testing.T) {
	b := splitBudget(core.Budget{MaxPages: 5, MaxRangeScans: 4, MaxNodesVisited: 1, MaxResults: 9}, 2)
	want := core.Budget{MaxPages: 3, MaxRangeScans: 2, MaxNodesVisited: 1, MaxResults: 9}
	if b != want {
		t.Fatalf("splitBudget = %+v, want %+v", b, want)
	}
	// Zero means unlimited and must stay zero, never round to "unlimited by
	// accident" from a small positive value (ceiling division guarantees ≥1).
	if z := splitBudget(core.Budget{}, 4); z != (core.Budget{}) {
		t.Fatalf("splitBudget zero = %+v", z)
	}
}

// TestShardForPlacement pins that placement is deterministic and reasonably
// uniform — every shard owns a fair share of sequential IDs (the allocator
// hands out 1, 2, 3, …).
func TestShardForPlacement(t *testing.T) {
	const n, ids = 4, 4000
	counts := make([]int, n)
	for id := core.DocID(1); id <= ids; id++ {
		sh := shardFor(id, n)
		if sh != shardFor(id, n) {
			t.Fatal("shardFor is not deterministic")
		}
		counts[sh]++
	}
	for i, c := range counts {
		if c < ids/n/2 || c > ids/n*2 {
			t.Fatalf("shard %d owns %d of %d sequential IDs; hash is skewed: %v", i, c, ids, counts)
		}
	}
}

// TestShardedMetricsMerge checks the dashboard contract: per-shard counters
// sum under the same names a single node exports.
func TestShardedMetricsMerge(t *testing.T) {
	s := mustMemSharded(t, 2, core.Options{})
	docs := gen.DBLP(gen.DBLPConfig{Records: 20, Seed: 1})
	for _, d := range docs {
		if _, err := s.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.QueryCtx(context.Background(), "//author", core.Budget{}); err != nil {
		t.Fatal(err)
	}
	snap := s.Metrics()
	if snap.Counters["index.docs_inserted"] != uint64(len(docs)) {
		t.Fatalf("merged insert counter = %d, want %d (counters: %v)", snap.Counters["index.docs_inserted"], len(docs), snap.Counters)
	}
	if snap.Counters["query.ok"] == 0 {
		t.Fatalf("merged query counter missing: %v", snap.Counters)
	}
}
