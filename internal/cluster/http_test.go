package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"vist/internal/btree"
	"vist/internal/core"
)

func muxGet(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// TestMuxMutations exercises the write endpoints over a single index:
// insert (allocated and coordinator-assigned IDs), get, delete, and the
// /status coordination surface.
func TestMuxMutations(t *testing.T) {
	ix := mustMem(t, core.Options{})
	srv := httptest.NewServer(QueryMux(ix, MuxConfig{}))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/insert", "application/xml", strings.NewReader("<r><a>one</a></r>"))
	if err != nil {
		t.Fatal(err)
	}
	var ir InsertResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ir.ID != 1 {
		t.Fatalf("insert: %d id=%d", resp.StatusCode, ir.ID)
	}

	// Coordinator-assigned ID (what the router sends).
	resp, err = http.Post(srv.URL+"/insert?id=5", "application/xml", strings.NewReader("<r><a>five</a></r>"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert?id=5: %d", resp.StatusCode)
	}
	var st StatusResponse
	if status, body := muxGet(t, srv, "/status"); status != http.StatusOK || json.Unmarshal(body, &st) != nil {
		t.Fatalf("status: %d %s", status, body)
	}
	if st.Docs != 2 || st.NextDoc != 6 || st.Degraded {
		t.Fatalf("status = %+v", st)
	}

	// Regressing the ID ordering is a client error, not a crash.
	resp, err = http.Post(srv.URL+"/insert?id=2", "application/xml", strings.NewReader("<r/>"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("out-of-order InsertAs accepted")
	}

	if status, body := muxGet(t, srv, "/get?id=1"); status != http.StatusOK || !strings.Contains(string(body), "one") {
		t.Fatalf("get: %d %q", status, body)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/delete?id=1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	if status, _ := muxGet(t, srv, "/get?id=1"); status != http.StatusNotFound {
		t.Fatalf("get after delete: %d", status)
	}
	if status, _ := muxGet(t, srv, "/get?id=0"); status != http.StatusBadRequest {
		t.Fatalf("get id=0: %d", status)
	}
	resp, err = http.Post(srv.URL+"/insert", "application/xml", strings.NewReader("not xml at all"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad document: %d", resp.StatusCode)
	}
	if resp, err := http.Get(srv.URL + "/insert"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /insert: %d", resp.StatusCode)
		}
	}
}

// TestMuxReadyzPerShard is the readiness fix from the issue: when one shard
// of a sharded group degrades to read-only, /readyz flips to 503 and the
// JSON body names the degraded shard while still listing the healthy ones.
func TestMuxReadyzPerShard(t *testing.T) {
	dir := t.TempDir()
	plan := &btree.FaultPlan{NoSpaceAfter: 256 * 1024}
	s, err := OpenSharded(dir, 2, core.Options{FS: btree.FaultFS{Plan: plan}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var ready atomic.Bool
	srv := httptest.NewServer(QueryMux(s, MuxConfig{Ready: &ready}))
	defer srv.Close()

	// Before startup completes, /readyz gates traffic.
	if status, _ := muxGet(t, srv, "/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("pre-ready: %d", status)
	}
	ready.Store(true)
	var rr ReadyResponse
	if status, body := muxGet(t, srv, "/readyz"); status != http.StatusOK || json.Unmarshal(body, &rr) != nil {
		t.Fatalf("ready: %d %s", status, body)
	}
	if rr.Status != "ready" || len(rr.Shards) != 2 {
		t.Fatalf("ready response = %+v", rr)
	}

	// Fill the disk until a write path degrades one shard.
	for i := 0; s.Degraded() == nil; i++ {
		if i > 100000 {
			t.Fatal("no shard ever degraded")
		}
		doc := mustParse(t, fmt.Sprintf("<r><a>padding-%06d-%s</a></r>", i, strings.Repeat("x", 256)))
		if _, err := s.Insert(doc); err != nil {
			if err := s.Sync(); err == nil {
				t.Fatal("insert failed but nothing degraded")
			}
			break
		}
		if i%50 == 0 {
			s.Sync()
		}
	}
	plan.AddSpace(1 << 30) // the probe itself must not hit ENOSPC

	status, body := muxGet(t, srv, "/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("degraded readyz: %d %s", status, body)
	}
	rr = ReadyResponse{}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "degraded" || !strings.Contains(rr.Reason, "read-only") {
		t.Fatalf("degraded response = %+v", rr)
	}
	if len(rr.Shards) != 2 {
		t.Fatalf("per-shard breakdown missing: %+v", rr)
	}
	found := false
	for _, sh := range rr.Shards {
		if sh.Status == "degraded" {
			if sh.Reason == "" || sh.Op == "" {
				t.Fatalf("degraded shard missing cause: %+v", sh)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("503 without any degraded shard: %+v", rr)
	}
	// /healthz agrees, with the same cause.
	if status, _ := muxGet(t, srv, "/healthz"); status != http.StatusServiceUnavailable {
		t.Fatalf("healthz while degraded: %d", status)
	}
	// A degraded shard rejects writes with 503 so the router retries later.
	resp, err := http.Post(srv.URL+"/insert", "application/xml",
		strings.NewReader("<r><a>rejected</a></r>"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusOK {
		t.Fatalf("insert while degraded: %d", resp.StatusCode)
	}
}

// TestMuxReadyzSingleIndex: a single index reports itself as pseudo-shard 0
// so probes parse one shape everywhere.
func TestMuxReadyzSingleIndex(t *testing.T) {
	ix := mustMem(t, core.Options{})
	srv := httptest.NewServer(QueryMux(ix, MuxConfig{}))
	defer srv.Close()
	var rr ReadyResponse
	if status, body := muxGet(t, srv, "/readyz"); status != http.StatusOK || json.Unmarshal(body, &rr) != nil {
		t.Fatalf("readyz: %d %s", status, body)
	}
	if len(rr.Shards) != 1 || rr.Shards[0].ID != 0 || rr.Shards[0].Status != "ok" {
		t.Fatalf("single-index readyz = %+v", rr)
	}
}
