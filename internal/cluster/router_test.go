package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vist/internal/core"
	"vist/internal/gen"
	"vist/internal/xmltree"
)

// routerHarness is a router in front of N single-index backend servers —
// the process topology `vist serve -router` builds, shrunk into one test.
type routerHarness struct {
	backends []*core.Index
	servers  []*httptest.Server
	rt       *Router
	srv      *httptest.Server
}

func newRouterHarness(t *testing.T, n int, hedge time.Duration) *routerHarness {
	t.Helper()
	h := &routerHarness{}
	var urls []string
	for i := 0; i < n; i++ {
		ix := mustMem(t, core.Options{})
		srv := httptest.NewServer(QueryMux(ix, MuxConfig{}))
		t.Cleanup(srv.Close)
		h.backends = append(h.backends, ix)
		h.servers = append(h.servers, srv)
		urls = append(urls, srv.URL)
	}
	h.rt = NewRouter(urls, hedge)
	if err := h.rt.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	h.srv = httptest.NewServer(h.rt.Handler())
	t.Cleanup(h.srv.Close)
	return h
}

func (h *routerHarness) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(h.srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func (h *routerHarness) post(t *testing.T, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(h.srv.URL+path, "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

// TestRouterScatterGather drives the full HTTP path — insert through the
// router, query through the router — and diffs every result against a
// single-node index fed the same documents: the router over N backends must
// be indistinguishable from one index.
func TestRouterScatterGather(t *testing.T) {
	h := newRouterHarness(t, 3, 0)
	oracle := mustMem(t, core.Options{})
	docs := gen.DBLP(gen.DBLPConfig{Records: 60, Seed: 9})

	for i, d := range docs {
		var buf strings.Builder
		if err := xmltree.WriteXML(&buf, d); err != nil {
			t.Fatal(err)
		}
		status, body := h.post(t, "/insert", buf.String())
		if status != http.StatusOK {
			t.Fatalf("insert %d: status %d: %s", i, status, body)
		}
		var ir InsertResponse
		if err := json.Unmarshal(body, &ir); err != nil {
			t.Fatal(err)
		}
		oid, err := oracle.Insert(d)
		if err != nil {
			t.Fatal(err)
		}
		if ir.ID != oid {
			t.Fatalf("insert %d: router id %d, oracle id %d", i, ir.ID, oid)
		}
	}

	// Placement: each backend holds exactly the IDs shardFor assigns it, so
	// in-process sharding and HTTP fan-out agree on ownership.
	var total uint64
	for i, ix := range h.backends {
		want := uint64(0)
		for id := core.DocID(1); id <= core.DocID(len(docs)); id++ {
			if shardFor(id, len(h.backends)) == i {
				want++
			}
		}
		if got := ix.DocCount(); got != want {
			t.Fatalf("backend %d holds %d docs, want %d", i, got, want)
		}
		total += ix.DocCount()
	}
	if total != uint64(len(docs)) {
		t.Fatalf("backends hold %d docs, want %d", total, len(docs))
	}

	for _, q := range dblpQueries {
		status, body := h.get(t, "/query?q="+urlQueryEscape(q))
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", q, status, body)
		}
		var qr QueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		want, _, err := oracle.QueryCtx(context.Background(), q, core.Budget{})
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if !sameIDs(qr.IDs, want) {
			t.Fatalf("%s: router %v, oracle %v", q, qr.IDs, want)
		}
	}

	// Routed single-document operations.
	if status, body := h.get(t, "/get?id=1"); status != http.StatusOK || !strings.Contains(string(body), "<") {
		t.Fatalf("get: %d %q", status, body)
	}
	if status, _ := h.get(t, "/get?id=99999"); status != http.StatusNotFound {
		t.Fatalf("get missing doc: status %d", status)
	}
	req, _ := http.NewRequest(http.MethodDelete, h.srv.URL+"/delete?id=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if err := oracle.Delete(1); err != nil {
		t.Fatal(err)
	}
	status, body := h.get(t, "/query?q="+urlQueryEscape(dblpQueries[0]))
	var qr QueryResponse
	if status != http.StatusOK || json.Unmarshal(body, &qr) != nil {
		t.Fatalf("query after delete: %d %s", status, body)
	}
	want, _, err := oracle.QueryCtx(context.Background(), dblpQueries[0], core.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	if !sameIDs(qr.IDs, want) {
		t.Fatalf("after delete: router %v, oracle %v", qr.IDs, want)
	}

	// Aggregated status and probes.
	var st StatusResponse
	if status, body := h.get(t, "/status"); status != http.StatusOK || json.Unmarshal(body, &st) != nil {
		t.Fatalf("status: %d %s", status, body)
	}
	if st.Docs != uint64(len(docs)-1) || st.NextDoc != core.DocID(len(docs)+1) || st.Shards != 3 {
		t.Fatalf("status = %+v", st)
	}
	if status, _ := h.get(t, "/healthz"); status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}
	if status, _ := h.get(t, "/readyz"); status != http.StatusOK {
		t.Fatalf("readyz: %d", status)
	}
	if status, _ := h.get(t, "/query?q="+urlQueryEscape("///bad[[")); status != http.StatusBadRequest {
		t.Fatalf("bad query: %d", status)
	}

	// A dead backend turns queries into 502 and probes into 503.
	h.servers[1].Close()
	if status, _ := h.get(t, "/query?q="+urlQueryEscape("//author")); status != http.StatusBadGateway {
		t.Fatalf("query with dead backend: %d", status)
	}
	if status, _ := h.get(t, "/healthz"); status != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead backend: %d", status)
	}
}

func urlQueryEscape(q string) string {
	r := strings.NewReplacer("/", "%2F", "[", "%5B", "]", "%5D", "'", "%27", "*", "%2A", " ", "%20")
	return r.Replace(q)
}

// TestRouterHedgedRequests pins the hedging policy: a backend whose first
// response stalls past the hedge delay gets a duplicate request, the fast
// duplicate wins, and the router's counters attribute the win. The stall is
// deterministic: the backend sleeps only on the first /query it sees.
func TestRouterHedgedRequests(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/status":
			json.NewEncoder(w).Encode(StatusResponse{NextDoc: 1})
		case "/query":
			if calls.Add(1) == 1 {
				// First attempt stalls until the test ends; only the hedge
				// can complete the request.
				<-release
			}
			json.NewEncoder(w).Encode(QueryResponse{IDs: []core.DocID{7}})
		default:
			http.NotFound(w, r)
		}
	}))
	defer backend.Close()
	defer close(release)

	rt := NewRouter([]string{backend.URL}, 5*time.Millisecond)
	if err := rt.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	done := make(chan struct{})
	var status int
	var body []byte
	go func() {
		defer close(done)
		resp, err := http.Get(srv.URL + "/query?q=%2Fr")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		status = resp.StatusCode
		body, _ = io.ReadAll(resp.Body)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hedged query never completed; hedge did not fire")
	}
	if status != http.StatusOK {
		t.Fatalf("hedged query: status %d: %s", status, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil || len(qr.IDs) != 1 || qr.IDs[0] != 7 {
		t.Fatalf("hedged query body: %s (%v)", body, err)
	}
	snap := rt.Metrics()
	if snap.Counters["router.hedges_fired"] == 0 {
		t.Fatalf("no hedge fired: %v", snap.Counters)
	}
	if snap.Counters["router.hedge_wins"] == 0 {
		t.Fatalf("hedge fired but win not attributed: %v", snap.Counters)
	}
}

// TestRouterHedgeDisabled: with hedge <= 0 a stalled backend means the
// request waits — no duplicate is ever sent (the counter stays zero).
func TestRouterHedgeDisabled(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/status":
			json.NewEncoder(w).Encode(StatusResponse{NextDoc: 1})
		default:
			calls.Add(1)
			json.NewEncoder(w).Encode(QueryResponse{IDs: []core.DocID{}})
		}
	}))
	defer backend.Close()
	rt := NewRouter([]string{backend.URL}, 0)
	if err := rt.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?q=%2Fr")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := rt.Metrics().Counters["router.hedges_fired"]; got != 0 {
		t.Fatalf("hedges fired with hedging disabled: %d", got)
	}
	if calls.Load() != 1 {
		t.Fatalf("backend saw %d query calls, want 1", calls.Load())
	}
}

// TestRouterInsertUninitialized: a router that never ran Init refuses writes
// rather than allocating IDs from zero.
func TestRouterInsertUninitialized(t *testing.T) {
	rt := NewRouter([]string{"http://127.0.0.1:0"}, 0)
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/insert", "application/xml", strings.NewReader("<r/>"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("uninitialized insert: status %d", resp.StatusCode)
	}
}

// TestRouterPartialMerge: one backend cut off by its budget makes the merged
// response partial with 429, and the partial IDs from every backend survive
// the merge.
func TestRouterPartialMerge(t *testing.T) {
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/status" {
			json.NewEncoder(w).Encode(StatusResponse{NextDoc: 1})
			return
		}
		json.NewEncoder(w).Encode(QueryResponse{IDs: []core.DocID{2, 4}})
	}))
	defer fast.Close()
	capped := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/status" {
			json.NewEncoder(w).Encode(StatusResponse{NextDoc: 1})
			return
		}
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(QueryResponse{IDs: []core.DocID{1}, Partial: true, Error: "budget exhausted"})
	}))
	defer capped.Close()

	rt := NewRouter([]string{fast.URL, capped.URL}, 0)
	if err := rt.Init(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?q=%2Fr")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("merged status = %d, want 429", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Partial || !sameIDs(qr.IDs, []core.DocID{1, 2, 4}) || qr.Error == "" {
		t.Fatalf("merged partial response = %+v", qr)
	}
}
