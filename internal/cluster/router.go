package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vist/internal/core"
	"vist/internal/obs"
)

// Router fans HTTP requests out over N backend shard servers (each a `vist
// serve` process owning one docID partition). Queries scatter to every
// backend — with a hedged duplicate request per backend after HedgeDelay,
// first response wins — and gather into one merged QueryResponse. Writes
// route: the router allocates globally increasing docIDs (seeded from the
// backends' next_doc at Init) and places each document on hash(id) mod N,
// the same placement function ShardedIndex uses in process.
//
// Hedging policy: only idempotent reads are hedged (queries and health
// probes), never writes — a duplicated insert would double-apply. The hedge
// re-issues to the same backend on the assumption that tail latency is
// transient (GC pause, request queue, page-cache miss), which is the common
// case for a single-replica shard; the router.hedges_fired and
// router.hedge_wins counters tell you whether the delay is set usefully.
type Router struct {
	backends []string
	client   *http.Client
	hedge    time.Duration

	mu      sync.Mutex
	nextDoc core.DocID

	reg        *obs.Registry
	queries    *obs.Counter
	inserts    *obs.Counter
	hedges     *obs.Counter
	hedgeWins  *obs.Counter
	backendErr *obs.Counter
}

// NewRouter builds a router over backend base URLs (e.g.
// "http://127.0.0.1:8081"). hedge <= 0 disables hedging.
func NewRouter(backends []string, hedge time.Duration) *Router {
	cleaned := make([]string, len(backends))
	for i, b := range backends {
		cleaned[i] = strings.TrimRight(b, "/")
	}
	rt := &Router{
		backends: cleaned,
		client:   &http.Client{},
		hedge:    hedge,
		reg:      obs.NewRegistry(),
	}
	rt.queries = rt.reg.Counter("router.queries")
	rt.inserts = rt.reg.Counter("router.inserts")
	rt.hedges = rt.reg.Counter("router.hedges_fired")
	rt.hedgeWins = rt.reg.Counter("router.hedge_wins")
	rt.backendErr = rt.reg.Counter("router.backend_errors")
	return rt
}

// Init seeds the docID allocator from the backends: the next global ID is
// the max next_doc any backend reports. Must run before serving writes.
func (rt *Router) Init(ctx context.Context) error {
	next := core.DocID(1)
	for _, b := range rt.backends {
		res, err := rt.fetch(ctx, b+"/status")
		if err != nil {
			return fmt.Errorf("cluster: router init: backend %s: %w", b, err)
		}
		if res.status != http.StatusOK {
			return fmt.Errorf("cluster: router init: backend %s: %s", b, strings.TrimSpace(string(res.body)))
		}
		var st StatusResponse
		if err := json.Unmarshal(res.body, &st); err != nil {
			return fmt.Errorf("cluster: router init: backend %s: %w", b, err)
		}
		if st.NextDoc > next {
			next = st.NextDoc
		}
	}
	rt.mu.Lock()
	rt.nextDoc = next
	rt.mu.Unlock()
	return nil
}

// Metrics exposes the router's own counters.
func (rt *Router) Metrics() obs.Snapshot { return rt.reg.Snapshot() }

// fetchResult is one backend reply, body fully read (hedging requires the
// body to be consumed before the losing request is canceled).
type fetchResult struct {
	status int
	header http.Header
	body   []byte
}

// fetch GETs a URL without hedging.
func (rt *Router) fetch(ctx context.Context, url string) (*fetchResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &fetchResult{status: resp.StatusCode, header: resp.Header, body: body}, nil
}

// hedgedFetch GETs a URL, issuing one duplicate request if the first has not
// completed within the hedge delay; the first completed response wins and
// the loser is canceled. Failures do not trigger hedges (hedging is for
// slowness); the first attempt's error is returned only once no attempt can
// succeed.
func (rt *Router) hedgedFetch(ctx context.Context, url string) (*fetchResult, error) {
	if rt.hedge <= 0 {
		return rt.fetch(ctx, url)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // aborts the losing in-flight request once we return
	type outcome struct {
		res    *fetchResult
		err    error
		hedged bool
	}
	ch := make(chan outcome, 2)
	attempt := func(hedged bool) {
		res, err := rt.fetch(hctx, url)
		ch <- outcome{res: res, err: err, hedged: hedged}
	}
	go attempt(false)
	timer := time.NewTimer(rt.hedge)
	defer timer.Stop()
	outstanding := 1
	timerC := timer.C
	var firstErr error
	for {
		select {
		case o := <-ch:
			if o.err == nil {
				if o.hedged {
					rt.hedgeWins.Inc()
				}
				return o.res, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			outstanding--
			if outstanding == 0 {
				// No attempt left in flight: fail fast rather than hedge —
				// a duplicate of a failing request fails the same way.
				return nil, firstErr
			}
		case <-timerC:
			timerC = nil
			outstanding++
			rt.hedges.Inc()
			go attempt(true)
		}
	}
}

// Handler returns the router's HTTP API — the same endpoint shapes as a
// shard server, so clients cannot tell a router from a single node.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", rt.handleQuery)
	mux.HandleFunc("/insert", rt.handleInsert)
	mux.HandleFunc("/delete", rt.handleDelete)
	mux.HandleFunc("/get", rt.handleGet)
	mux.HandleFunc("/status", rt.handleStatus)
	mux.HandleFunc("/healthz", rt.handleProbe("/healthz"))
	mux.HandleFunc("/readyz", rt.handleProbe("/readyz"))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rt.reg.Snapshot().WriteText(w)
	})
	return mux
}

// handleQuery scatters the query (raw query string and all) to every
// backend with hedging, and merges: IDs concatenate (backends own disjoint
// docID partitions) and sort, stats sum, Partial if any backend was partial.
// Status is the worst backend status: any transport failure → 502, else any
// 504 (timeout) → 504, else any 429 (budget) → 429.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	rt.queries.Inc()
	type backendReply struct {
		res *fetchResult
		err error
	}
	replies := make([]backendReply, len(rt.backends))
	var wg sync.WaitGroup
	for i, b := range rt.backends {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			res, err := rt.hedgedFetch(r.Context(), b+"/query?"+r.URL.RawQuery)
			replies[i] = backendReply{res: res, err: err}
		}(i, b)
	}
	wg.Wait()

	merged := QueryResponse{IDs: []core.DocID{}}
	status := http.StatusOK
	for i, rep := range replies {
		if rep.err != nil {
			rt.backendErr.Inc()
			http.Error(w, fmt.Sprintf("backend %s: %v", rt.backends[i], rep.err), http.StatusBadGateway)
			return
		}
		switch rep.res.status {
		case http.StatusOK, http.StatusGatewayTimeout, http.StatusTooManyRequests:
			var qr QueryResponse
			if err := json.Unmarshal(rep.res.body, &qr); err != nil {
				rt.backendErr.Inc()
				http.Error(w, fmt.Sprintf("backend %s: bad response: %v", rt.backends[i], err), http.StatusBadGateway)
				return
			}
			merged.IDs = append(merged.IDs, qr.IDs...)
			merged.Stats.Merge(qr.Stats)
			if qr.Partial {
				merged.Partial = true
			}
			if merged.Error == "" && qr.Error != "" {
				merged.Error = fmt.Sprintf("backend %d: %s", i, qr.Error)
			}
			// 504 outranks 429: a timeout means the merged result may be
			// missing arbitrarily much, a budget stop is at least bounded.
			if rep.res.status == http.StatusGatewayTimeout ||
				(rep.res.status == http.StatusTooManyRequests && status == http.StatusOK) {
				status = rep.res.status
			}
		case http.StatusBadRequest:
			// The expression is equally malformed everywhere; relay one.
			w.WriteHeader(http.StatusBadRequest)
			w.Write(rep.res.body)
			return
		default:
			rt.backendErr.Inc()
			http.Error(w, fmt.Sprintf("backend %s: status %d: %s",
				rt.backends[i], rep.res.status, strings.TrimSpace(string(rep.res.body))), http.StatusBadGateway)
			return
		}
	}
	sort.Slice(merged.IDs, func(a, b int) bool { return merged.IDs[a] < merged.IDs[b] })
	merged.Stats.Candidates = len(merged.IDs)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(merged)
}

// handleInsert allocates the next global docID and forwards the document to
// its owner backend as /insert?id=N. The allocator advances only on success,
// so a failed insert leaves no gap.
func (rt *Router) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an XML document", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.nextDoc == 0 {
		http.Error(w, "router not initialized", http.StatusServiceUnavailable)
		return
	}
	id := rt.nextDoc
	backend := rt.backends[shardFor(id, len(rt.backends))]
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		fmt.Sprintf("%s/insert?id=%d", backend, id), bytes.NewReader(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.backendErr.Inc()
		http.Error(w, fmt.Sprintf("backend %s: %v", backend, err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		rt.nextDoc = id + 1
		rt.inserts.Inc()
	}
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	w.Write(out)
}

// routeByID forwards a single-document request to the owner backend.
func (rt *Router) routeByID(w http.ResponseWriter, r *http.Request, path string) {
	n, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
	if err != nil || n == 0 {
		http.Error(w, "bad id", http.StatusBadRequest)
		return
	}
	backend := rt.backends[shardFor(core.DocID(n), len(rt.backends))]
	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		backend+path+"?"+r.URL.RawQuery, nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.backendErr.Inc()
		http.Error(w, fmt.Sprintf("backend %s: %v", backend, err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost && r.Method != http.MethodDelete {
		http.Error(w, "POST or DELETE with ?id=", http.StatusMethodNotAllowed)
		return
	}
	rt.routeByID(w, r, "/delete")
}

func (rt *Router) handleGet(w http.ResponseWriter, r *http.Request) {
	rt.routeByID(w, r, "/get")
}

// handleStatus aggregates backend /status into one view.
func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	agg := StatusResponse{Shards: len(rt.backends)}
	for _, b := range rt.backends {
		res, err := rt.fetch(r.Context(), b+"/status")
		if err != nil || res.status != http.StatusOK {
			agg.Degraded = true
			continue
		}
		var st StatusResponse
		if json.Unmarshal(res.body, &st) == nil {
			agg.Docs += st.Docs
			if st.NextDoc > agg.NextDoc {
				agg.NextDoc = st.NextDoc
			}
			agg.Degraded = agg.Degraded || st.Degraded
		}
	}
	rt.mu.Lock()
	if rt.nextDoc > agg.NextDoc {
		agg.NextDoc = rt.nextDoc
	}
	rt.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(agg)
}

// handleProbe fans a health probe out to every backend (hedged — probes are
// idempotent); the router is healthy only if every backend is.
func (rt *Router) handleProbe(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		type probe struct {
			Backend string          `json:"backend"`
			Status  int             `json:"status"`
			Body    json.RawMessage `json:"body,omitempty"`
			Error   string          `json:"error,omitempty"`
		}
		probes := make([]probe, len(rt.backends))
		var wg sync.WaitGroup
		ok := true
		var okMu sync.Mutex
		for i, b := range rt.backends {
			wg.Add(1)
			go func(i int, b string) {
				defer wg.Done()
				p := probe{Backend: b}
				res, err := rt.hedgedFetch(r.Context(), b+path)
				if err != nil {
					p.Error = err.Error()
				} else {
					p.Status = res.status
					if json.Valid(res.body) {
						p.Body = res.body
					}
				}
				probes[i] = p
				if err != nil || res.status != http.StatusOK {
					okMu.Lock()
					ok = false
					okMu.Unlock()
				}
			}(i, b)
		}
		wg.Wait()
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(map[string]any{"ok": ok, "backends": probes})
	}
}
