package cluster

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestShipLogAppendRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shiplog")
	l, err := OpenShipLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	batches := [][]byte{[]byte("alpha"), []byte("bravo-bravo"), []byte("c")}
	var all []byte
	for _, b := range batches {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	if err := l.Append(nil); err != nil {
		t.Fatal("empty append must be a no-op:", err)
	}

	data, next, err := l.Read(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, all) {
		t.Fatalf("Read = %q, want %q", data, all)
	}
	if next != l.Size() {
		t.Fatalf("next = %d, size = %d", next, l.Size())
	}

	// Caught up: empty result, same offset.
	data, next2, err := l.Read(next, 0)
	if err != nil || len(data) != 0 || next2 != next {
		t.Fatalf("caught-up Read = (%q, %d, %v)", data, next2, err)
	}

	// maxBytes=1 still returns at least one whole batch, and walking batch
	// by batch reassembles the stream.
	var walked []byte
	for pos := int64(0); ; {
		data, n, err := l.Read(pos, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			break
		}
		walked = append(walked, data...)
		pos = n
	}
	if !bytes.Equal(walked, all) {
		t.Fatalf("batch walk = %q, want %q", walked, all)
	}

	// Off-boundary and out-of-range offsets are a protocol error.
	if _, _, err := l.Read(shipHeaderSize+1, 0); !errors.Is(err, ErrShipRange) {
		t.Fatalf("mid-batch offset: %v", err)
	}
	if _, _, err := l.Read(l.Size()+100, 0); !errors.Is(err, ErrShipRange) {
		t.Fatalf("past-end offset: %v", err)
	}
}

func TestShipLogReopenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shiplog")
	l, err := OpenShipLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("good-batch")); err != nil {
		t.Fatal(err)
	}
	goodEnd := l.Size()
	if err := l.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the second batch: chop bytes off its payload, as a crash
	// mid-append would.
	if err := os.Truncate(path, goodEnd+shipBatchHdr+2); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenShipLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Size() != goodEnd {
		t.Fatalf("reopen size = %d, want torn tail truncated to %d", l2.Size(), goodEnd)
	}
	data, _, err := l2.Read(0, 0)
	if err != nil || string(data) != "good-batch" {
		t.Fatalf("after truncation Read = (%q, %v)", data, err)
	}
	// The log must still accept appends at the boundary.
	if err := l2.Append([]byte("replacement")); err != nil {
		t.Fatal(err)
	}
	data, _, err = l2.Read(goodEnd, 0)
	if err != nil || string(data) != "replacement" {
		t.Fatalf("post-truncation append Read = (%q, %v)", data, err)
	}
}

func TestShipLogRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notalog")
	if err := os.WriteFile(path, []byte("definitely not a ship log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShipLog(path); err == nil {
		t.Fatal("OpenShipLog accepted a foreign file")
	}
}

func TestShipLogCorruptCRCStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shiplog")
	l, err := OpenShipLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	firstEnd := l.Size()
	if err := l.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Flip a payload byte in the second batch; reopen must cut the log back
	// to the first.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{'X'}, firstEnd+shipBatchHdr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l2, err := OpenShipLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Size() != firstEnd {
		t.Fatalf("reopen size = %d, want %d (corrupt batch dropped)", l2.Size(), firstEnd)
	}
}
