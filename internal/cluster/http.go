package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"vist/internal/core"
	"vist/internal/query"
	"vist/internal/xmltree"
)

// QueryResponse is the JSON body of every /query reply that ran (or
// partially ran) a query. On a budget or deadline cut-off the handler still
// returns it — with Partial set and the IDs/stats reflecting the progress
// made before the stop — so clients can distinguish "no matches" from "gave
// up early".
type QueryResponse struct {
	IDs     []core.DocID    `json:"ids"`
	Stats   core.QueryStats `json:"stats"`
	Partial bool            `json:"partial,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// HealthResponse is the JSON body of /healthz. While the index is degraded
// (read-only after a write-path failure) the endpoint serves 503 with the
// cause, so load balancers stop routing writes while dashboards still see
// why.
type HealthResponse struct {
	Status string `json:"status"` // "ok" or "degraded"
	Op     string `json:"op,omitempty"`
	Reason string `json:"reason,omitempty"`
	Since  string `json:"since,omitempty"`
}

// ReadyResponse is the JSON body of /readyz: overall status plus the
// per-shard breakdown when the Shard behind the mux is sharded. Any degraded
// shard makes the whole endpoint 503, with the first cause in Reason, so a
// load balancer backs off a partially read-only server while the body still
// names the exact shard.
type ReadyResponse struct {
	Status string       `json:"status"` // "ready", "starting", or "degraded"
	Reason string       `json:"reason,omitempty"`
	Shards []ShardState `json:"shards,omitempty"`
}

// InsertResponse is the JSON body of a successful /insert.
type InsertResponse struct {
	ID core.DocID `json:"id"`
}

// StatusResponse is the JSON body of /status — the coordination surface a
// Router (docID allocation) or an operator reads.
type StatusResponse struct {
	Docs     uint64         `json:"docs"`
	NextDoc  core.DocID     `json:"next_doc"`
	Degraded bool           `json:"degraded"`
	Shards   int            `json:"shards,omitempty"`
	Replica  *ReplicaStatus `json:"replica,omitempty"`
}

// shardStater is the optional interface ShardedIndex implements; the mux
// upgrades to it for per-shard /readyz reporting.
type shardStater interface{ ShardStates() []ShardState }

// MuxConfig configures QueryMux.
type MuxConfig struct {
	// Ready gates /readyz: it flips true once startup (including WAL
	// recovery, which Open performs before returning the index) has
	// finished; nil means always ready.
	Ready *atomic.Bool
	// Ship, when non-nil, serves the replication stream on /wal/ship.
	Ship *ShipLog
	// Replica, when non-nil, adds replication lag to /status.
	Replica *Replica
	// MaxInsertBytes bounds a /insert request body. Zero selects 16 MB.
	MaxInsertBytes int64
}

// QueryMux builds the HTTP API over any core.Shard — one index, a sharded
// group, or a replica. Endpoints: /query, /insert, /delete, /get, /status,
// /healthz, /readyz, and (leaders only) /wal/ship.
//
// Budgeting note: /query passes a zero per-call Budget, which QueryCtx
// merges with the index's Options.DefaultBudget, and QueryCtx itself applies
// Options.DefaultQueryTimeout when the request context carries no deadline —
// so the index-level limits configured at Open time bound every HTTP query
// without any handler-side plumbing. The ?timeout= parameter tightens (or,
// absent index defaults, introduces) the deadline for one request.
func QueryMux(s core.Shard, cfg MuxConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		expr := r.URL.Query().Get("q")
		if expr == "" {
			http.Error(w, "missing q parameter", http.StatusBadRequest)
			return
		}
		// Classify malformed expressions up front: a request the parser
		// rejects is the client's fault, never a server error.
		if _, err := query.Parse(expr); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ctx := r.Context()
		if t := r.URL.Query().Get("timeout"); t != "" {
			d, err := time.ParseDuration(t)
			if err != nil || d <= 0 {
				http.Error(w, "bad timeout: "+t, http.StatusBadRequest)
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		var (
			ids   []core.DocID
			stats core.QueryStats
			err   error
		)
		if r.URL.Query().Get("verify") != "" {
			ids, stats, err = s.QueryVerifiedCtx(ctx, expr, core.Budget{})
		} else {
			ids, stats, err = s.QueryCtx(ctx, expr, core.Budget{})
		}
		resp := QueryResponse{IDs: ids, Stats: stats}
		if ids == nil {
			resp.IDs = []core.DocID{} // JSON [] — absent results are partial, not null
		}
		status := http.StatusOK
		if err != nil {
			resp.Error = err.Error()
			switch {
			case errors.Is(err, core.ErrCanceled):
				// Deadline or client disconnect: the work done so far is
				// still reported alongside the distinct status.
				status = http.StatusGatewayTimeout
				resp.Partial = true
			case errors.Is(err, core.ErrBudgetExceeded):
				status = http.StatusTooManyRequests
				resp.Partial = true
			default:
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/insert", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST an XML document", http.StatusMethodNotAllowed)
			return
		}
		limit := cfg.MaxInsertBytes
		if limit <= 0 {
			limit = 16 << 20
		}
		doc, err := xmltree.Parse(io.LimitReader(r.Body, limit))
		if err != nil {
			http.Error(w, "bad document: "+err.Error(), http.StatusBadRequest)
			return
		}
		var id core.DocID
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			// Coordinator-assigned ID (the Router allocates globally and
			// routes here): place the document under exactly that ID.
			n, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil || n == 0 {
				http.Error(w, "bad id: "+idStr, http.StatusBadRequest)
				return
			}
			id = core.DocID(n)
			err = s.InsertAs(id, doc)
			if err != nil {
				writeMutationError(w, err)
				return
			}
		} else {
			id, err = s.Insert(doc)
			if err != nil {
				writeMutationError(w, err)
				return
			}
		}
		// Durability point: an acknowledged insert has been committed to the
		// WAL (and, on a -ship leader, handed to the ship log) before the
		// reply — a replica can never miss a write the client saw succeed.
		if err := s.Sync(); err != nil {
			writeMutationError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(InsertResponse{ID: id})
	})
	mux.HandleFunc("/delete", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost && r.Method != http.MethodDelete {
			http.Error(w, "POST or DELETE with ?id=", http.StatusMethodNotAllowed)
			return
		}
		n, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
		if err != nil || n == 0 {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		if err := s.Delete(core.DocID(n)); err != nil {
			writeMutationError(w, err)
			return
		}
		if err := s.Sync(); err != nil {
			writeMutationError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/get", func(w http.ResponseWriter, r *http.Request) {
		n, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
		if err != nil || n == 0 {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		doc, err := s.Get(core.DocID(n))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		_ = xmltree.WriteXML(w, doc)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		resp := StatusResponse{
			Docs:     s.DocCount(),
			NextDoc:  s.NextDocID(),
			Degraded: s.Degraded() != nil,
		}
		if ss, ok := s.(shardStater); ok {
			resp.Shards = len(ss.ShardStates())
		}
		if cfg.Replica != nil {
			st := cfg.Replica.Status()
			resp.Replica = &st
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if d := s.Degraded(); d != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(HealthResponse{
				Status: "degraded",
				Op:     d.Op,
				Reason: d.Cause.Error(),
				Since:  d.At.UTC().Format(time.RFC3339),
			})
			return
		}
		json.NewEncoder(w).Encode(HealthResponse{Status: "ok"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if cfg.Ready != nil && !cfg.Ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ReadyResponse{Status: "starting", Reason: "startup in progress"})
			return
		}
		resp := ReadyResponse{Status: "ready"}
		if ss, ok := s.(shardStater); ok {
			resp.Shards = ss.ShardStates()
		} else {
			// Single index (or replica): present it as shard 0 so clients
			// parse one shape everywhere.
			st := ShardState{ID: 0, Docs: s.DocCount(), Status: "ok"}
			if d := s.Degraded(); d != nil {
				st.Status = "degraded"
				st.Op = d.Op
				st.Reason = d.Cause.Error()
				st.Since = d.At.UTC().Format(time.RFC3339)
			}
			resp.Shards = []ShardState{st}
		}
		for _, st := range resp.Shards {
			if st.Status == "degraded" {
				resp.Status = "degraded"
				resp.Reason = fmt.Sprintf("shard %d read-only: %s", st.ID, st.Reason)
				w.WriteHeader(http.StatusServiceUnavailable)
				break
			}
		}
		json.NewEncoder(w).Encode(resp)
	})
	if cfg.Ship != nil {
		mux.Handle("/wal/ship", ShipHandler(cfg.Ship))
	}
	return mux
}

// writeMutationError maps a failed write to an HTTP status: read-only states
// (degraded index, replica) are 503 — retry elsewhere or after a heal — and
// everything else is the client's or server's fault as usual.
func writeMutationError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrReadOnly) || errors.Is(err, ErrReplicaReadOnly):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, core.ErrDocNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ShipHandler serves the replication stream: GET /wal/ship?from=OFFSET
// returns the concatenated payloads of complete batches starting there, with
// X-Ship-Next (offset to fetch next) and X-Ship-Size (current log end, for
// lag computation) headers. An empty 200 body means caught up. Offsets off a
// batch boundary return 416 — the follower must resync from scratch.
func ShipHandler(l *ShipLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var from int64
		if f := r.URL.Query().Get("from"); f != "" {
			n, err := strconv.ParseInt(f, 10, 64)
			if err != nil || n < 0 {
				http.Error(w, "bad from offset", http.StatusBadRequest)
				return
			}
			from = n
		}
		maxBytes := 0
		if m := r.URL.Query().Get("max"); m != "" {
			n, err := strconv.Atoi(m)
			if err != nil || n < 0 {
				http.Error(w, "bad max", http.StatusBadRequest)
				return
			}
			maxBytes = n
		}
		data, next, err := l.Read(from, maxBytes)
		if err != nil {
			if errors.Is(err, ErrShipRange) {
				http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
				return
			}
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Ship-Next", strconv.FormatInt(next, 10))
		w.Header().Set("X-Ship-Size", strconv.FormatInt(l.Size(), 10))
		w.Write(data)
	})
}
