package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"vist/internal/core"
	"vist/internal/gen"
)

// ConcurrencyPoint is one worker count in the batch-query sweep.
type ConcurrencyPoint struct {
	Workers int
	Elapsed time.Duration
	PerSec  float64
	Speedup float64 // vs the 1-worker run
}

// ConcurrencyResult measures Index.QueryAll on a file-backed index as the
// worker count grows. With the shared read lock through the B+Tree and a
// thread-safe pager, throughput scales with workers up to the core count;
// the old whole-index mutex kept it flat regardless of hardware.
type ConcurrencyResult struct {
	Records int
	Queries int
	Cores   int
	Points  []ConcurrencyPoint
}

// RunConcurrency builds a file-backed DBLP-like index and replays the same
// query batch through QueryAll at increasing worker counts.
func RunConcurrency(cfg Config) (*ConcurrencyResult, error) {
	dir, err := os.MkdirTemp("", "vistbench-conc")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	records := cfg.scale(5000)
	docs := gen.DBLP(gen.DBLPConfig{Records: records, Seed: cfg.Seed})
	ix, err := core.Open(filepath.Join(dir, "ix"), core.Options{
		Schema: gen.DBLPSchema(), SkipDocumentStore: true, Lambda: 4,
	})
	if err != nil {
		return nil, err
	}
	defer ix.Close()
	if err := insertAll(ix, docs); err != nil {
		return nil, err
	}
	if err := ix.Sync(); err != nil {
		return nil, err
	}

	base := []string{
		"/book/author[text()='" + gen.DBLPDavid + "']",
		"//author[text()='" + gen.DBLPDavid + "']",
		"/book/title",
		"//year",
	}
	batch := make([]string, 0, cfg.scale(200))
	for len(batch) < cap(batch) {
		batch = append(batch, base[len(batch)%len(base)])
	}

	res := &ConcurrencyResult{Records: records, Queries: len(batch), Cores: runtime.NumCPU()}
	for _, workers := range []int{1, 2, 4, 8} {
		// One untimed pass warms the page and node caches so every worker
		// count sees the same cache state.
		for _, r := range ix.QueryAll(batch, workers) {
			if r.Err != nil {
				return nil, r.Err
			}
		}
		start := time.Now()
		for _, r := range ix.QueryAll(batch, workers) {
			if r.Err != nil {
				return nil, r.Err
			}
		}
		elapsed := time.Since(start)
		p := ConcurrencyPoint{
			Workers: workers,
			Elapsed: elapsed,
			PerSec:  float64(len(batch)) / elapsed.Seconds(),
		}
		if len(res.Points) > 0 {
			p.Speedup = float64(res.Points[0].Elapsed) / float64(elapsed)
		} else {
			p.Speedup = 1
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Fprint renders the worker sweep.
func (r *ConcurrencyResult) Fprint(w io.Writer) {
	fprintHeader(w, "Concurrent batch queries — QueryAll worker sweep",
		"File-backed index, fixed query batch. Speedup is vs the 1-worker run.")
	fmt.Fprintf(w, "%d records, %d queries per batch, %d CPU core(s) available\n", r.Records, r.Queries, r.Cores)
	fmt.Fprintf(w, "  %-8s %14s %14s %10s\n", "workers", "elapsed", "queries/s", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-8d %14s %14.0f %10s\n",
			p.Workers, p.Elapsed.Round(time.Microsecond), p.PerSec, fmt.Sprintf("×%.2f", p.Speedup))
	}
	if r.Cores == 1 {
		fmt.Fprintln(w, "note: single-core host — speedup beyond ×1.0 is not physically possible here")
	}
	fmt.Fprintln(w)
}
