package bench

import (
	"fmt"
	"io"
	"time"

	"vist/internal/core"
	"vist/internal/gen"
)

// Fig10aPoint is one point of Figure 10(a): average query time at a query
// length.
type Fig10aPoint struct {
	QueryLength int
	AvgTime     time.Duration
	Queries     int
}

// Fig10aResult aggregates the query-length sweep.
type Fig10aResult struct {
	Sequences int
	SeqLength int
	Points    []Fig10aPoint
}

// RunFig10a reproduces Figure 10(a): synthetic data (k=10, j=8, L=30,
// N=1,000,000 scaled), random queries of lengths 2–12, ViST query time per
// length.
func RunFig10a(cfg Config) (*Fig10aResult, error) {
	scfg := gen.SyntheticConfig{K: 10, J: 8, L: 30, N: cfg.scale(20000), Seed: cfg.Seed}
	res := &Fig10aResult{Sequences: scfg.N, SeqLength: scfg.L}

	ix, err := core.NewMem(core.Options{SkipDocumentStore: true, Lambda: 8})
	if err != nil {
		return nil, err
	}
	if err := insertAll(ix, gen.Synthetic(scfg)); err != nil {
		return nil, err
	}
	e := vistEngine(ix)

	const perLength = 10
	for _, l := range []int{2, 4, 6, 8, 10, 12} {
		queries := gen.SyntheticQueries(scfg, perLength, l, cfg.Seed+int64(l))
		var total time.Duration
		for _, expr := range queries {
			d, _, err := timeQuery(e, expr, cfg.minTime()/perLength)
			if err != nil {
				return nil, err
			}
			total += d
		}
		res.Points = append(res.Points, Fig10aPoint{
			QueryLength: l,
			AvgTime:     total / time.Duration(len(queries)),
			Queries:     len(queries),
		})
	}
	return res, nil
}

// Fprint renders the Figure 10(a) series.
func (r *Fig10aResult) Fprint(w io.Writer) {
	fprintHeader(w, "Figure 10(a) — query time vs query length",
		fmt.Sprintf("Synthetic: N=%d sequences of length %d (k=10, j=8). Paper shape: time grows with query length.", r.Sequences, r.SeqLength))
	fmt.Fprintf(w, "%-14s %14s %10s\n", "query length", "avg time", "queries")
	labels := make([]string, len(r.Points))
	values := make([]time.Duration, len(r.Points))
	for i, p := range r.Points {
		fmt.Fprintf(w, "%-14d %14s %10d\n", p.QueryLength, p.AvgTime.Round(time.Microsecond), p.Queries)
		labels[i] = fmt.Sprintf("len=%d", p.QueryLength)
		values[i] = p.AvgTime
	}
	fmt.Fprintln(w)
	asciiPlot(w, "query time by query length:", labels, values)
}

// Fig10bPoint is one point of Figure 10(b): query time at a data size.
type Fig10bPoint struct {
	Sequences int
	Elements  int
	AvgTime   time.Duration
}

// Fig10bResult aggregates the data-size sweep.
type Fig10bResult struct {
	SeqLength   int
	QueryLength int
	Points      []Fig10bPoint
}

// RunFig10b reproduces Figure 10(b): synthetic datasets of increasing size
// (L = 60), fixed query length 6; query time must scale sub-linearly.
func RunFig10b(cfg Config) (*Fig10bResult, error) {
	res := &Fig10bResult{SeqLength: 60, QueryLength: 6}
	base := cfg.scale(2000)
	for _, mult := range []int{1, 2, 3, 4, 5} {
		scfg := gen.SyntheticConfig{K: 10, J: 8, L: 60, N: base * mult, Seed: cfg.Seed}
		ix, err := core.NewMem(core.Options{SkipDocumentStore: true, Lambda: 8})
		if err != nil {
			return nil, err
		}
		if err := insertAll(ix, gen.Synthetic(scfg)); err != nil {
			return nil, err
		}
		e := vistEngine(ix)
		queries := gen.SyntheticQueries(scfg, 10, res.QueryLength, cfg.Seed+7)
		var total time.Duration
		for _, expr := range queries {
			d, _, err := timeQuery(e, expr, cfg.minTime()/10)
			if err != nil {
				return nil, err
			}
			total += d
		}
		res.Points = append(res.Points, Fig10bPoint{
			Sequences: scfg.N,
			Elements:  scfg.N * scfg.L,
			AvgTime:   total / time.Duration(len(queries)),
		})
	}
	return res, nil
}

// Fprint renders the Figure 10(b) series.
func (r *Fig10bResult) Fprint(w io.Writer) {
	fprintHeader(w, "Figure 10(b) — query time vs data size",
		fmt.Sprintf("Synthetic: sequences of length %d, queries of length %d. Paper shape: sub-linear scaling with data size.", r.SeqLength, r.QueryLength))
	fmt.Fprintf(w, "%-12s %-12s %14s\n", "sequences", "elements", "avg time")
	labels := make([]string, len(r.Points))
	values := make([]time.Duration, len(r.Points))
	for i, p := range r.Points {
		fmt.Fprintf(w, "%-12d %-12d %14s\n", p.Sequences, p.Elements, p.AvgTime.Round(time.Microsecond))
		labels[i] = fmt.Sprintf("%dk elems", p.Elements/1000)
		values[i] = p.AvgTime
	}
	fmt.Fprintln(w)
	asciiPlot(w, "query time by data size (sub-linear shape expected):", labels, values)
}
