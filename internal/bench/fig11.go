package bench

import (
	"fmt"
	"io"
	"time"

	"vist/internal/core"
	"vist/internal/gen"
	"vist/internal/rist"
	"vist/internal/xmltree"
)

// Fig11aRow reports index sizes for one dataset.
type Fig11aRow struct {
	Dataset   string
	Records   int
	Elements  int
	ViSTBytes int64
	RISTBytes int64
}

// Fig11aResult aggregates the index-size experiment.
type Fig11aResult struct {
	Rows []Fig11aRow
}

// RunFig11a reproduces Figure 11(a): index sizes for the DBLP-like and
// XMARK-like datasets, ViST vs RIST. RIST's footprint includes the
// materialized suffix trie ViST avoids.
func RunFig11a(cfg Config) (*Fig11aResult, error) {
	res := &Fig11aResult{}
	build := func(name string, docs []*xmltree.Node, schema []string) error {
		elements := 0
		for _, d := range docs {
			elements += d.Count()
		}
		vist, err := core.NewMem(core.Options{Schema: schema, SkipDocumentStore: true, Lambda: 4})
		if err != nil {
			return err
		}
		vdocs := make([]*xmltree.Node, len(docs))
		for i, d := range docs {
			vdocs[i] = d.Clone()
		}
		if err := insertAll(vist, vdocs); err != nil {
			return err
		}
		r, err := rist.Build(docs, core.Options{Schema: schema, SkipDocumentStore: true})
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, Fig11aRow{
			Dataset:   name,
			Records:   len(docs),
			Elements:  elements,
			ViSTBytes: vist.IndexSizeBytes(),
			RISTBytes: r.IndexSizeBytes(),
		})
		return r.Close()
	}
	if err := build("DBLP-like",
		gen.DBLP(gen.DBLPConfig{Records: cfg.scale(20000), Seed: cfg.Seed}),
		gen.DBLPSchema()); err != nil {
		return nil, err
	}
	n := cfg.scale(2500)
	if err := build("XMARK-like",
		gen.XMark(gen.XMarkConfig{Items: n, Persons: n, OpenAuctions: n, ClosedAuctions: n, Seed: cfg.Seed + 1}),
		gen.XMarkSchema()); err != nil {
		return nil, err
	}
	return res, nil
}

// Fprint renders the Figure 11(a) table.
func (r *Fig11aResult) Fprint(w io.Writer) {
	fprintHeader(w, "Figure 11(a) — index size",
		"Paper shape: RIST larger than ViST (it keeps the materialized suffix tree).")
	fmt.Fprintf(w, "%-12s %10s %10s %14s %14s\n", "dataset", "records", "elements", "ViST bytes", "RIST bytes")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %10d %10d %14d %14d\n", row.Dataset, row.Records, row.Elements, row.ViSTBytes, row.RISTBytes)
	}
}

// Fig11bPoint is one point of Figure 11(b): construction time at a dataset
// size.
type Fig11bPoint struct {
	Sequences int
	Elements  int
	BuildTime time.Duration
}

// Fig11bResult aggregates the construction-time sweep.
type Fig11bResult struct {
	Points []Fig11bPoint
}

// RunFig11b reproduces Figure 11(b): ViST index construction time on
// synthetic data (k=10, j=8, L=32) as the element count grows; the curve
// must be (near-)linear.
func RunFig11b(cfg Config) (*Fig11bResult, error) {
	res := &Fig11bResult{}
	base := cfg.scale(2500)
	for _, mult := range []int{1, 2, 3, 4} {
		scfg := gen.SyntheticConfig{K: 10, J: 8, L: 32, N: base * mult, Seed: cfg.Seed}
		docs := gen.Synthetic(scfg)
		ix, err := core.NewMem(core.Options{SkipDocumentStore: true, Lambda: 8})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := insertAll(ix, docs); err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig11bPoint{
			Sequences: scfg.N,
			Elements:  scfg.N * scfg.L,
			BuildTime: time.Since(start),
		})
	}
	return res, nil
}

// Fprint renders the Figure 11(b) series.
func (r *Fig11bResult) Fprint(w io.Writer) {
	fprintHeader(w, "Figure 11(b) — index construction time",
		"Synthetic: k=10, j=8, L=32. Paper shape: construction time linear in element count.")
	fmt.Fprintf(w, "%-12s %-12s %14s\n", "sequences", "elements", "build time")
	labels := make([]string, len(r.Points))
	values := make([]time.Duration, len(r.Points))
	for i, p := range r.Points {
		fmt.Fprintf(w, "%-12d %-12d %14s\n", p.Sequences, p.Elements, p.BuildTime.Round(time.Millisecond))
		labels[i] = fmt.Sprintf("%dk elems", p.Elements/1000)
		values[i] = p.BuildTime
	}
	fmt.Fprintln(w)
	asciiPlot(w, "construction time by element count (linear shape expected):", labels, values)
}
