package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"vist/internal/core"
	"vist/internal/gen"
)

// ObsResult prices the observability layer: the same workload runs on two
// otherwise-identical indexes — metrics on (the default) and DisableMetrics —
// and the per-query median latencies are compared. The acceptance target is
// a median overhead under 5%.
type ObsResult struct {
	Records int
	Rows    []ObsRow
	// MetricsSummary is a headline extract of the instrumented run's final
	// snapshot (query counters, cache hit rate, stage medians).
	MetricsSummary string
}

// ObsRow is one query's metrics-on vs metrics-off comparison.
type ObsRow struct {
	Expr        string
	On, Off     time.Duration // median per-query latency
	OverheadPct float64       // (On-Off)/Off * 100
}

// sampleLatency measures one batch: expr runs for at least per (and at least
// 3 iterations), reporting the mean per-iteration latency of the batch.
func sampleLatency(ix *core.Index, expr string, per time.Duration) (time.Duration, error) {
	var iters int
	start := time.Now()
	for iters = 0; iters < 3 || time.Since(start) < per; iters++ {
		if iters >= 1000 {
			break
		}
		if _, err := ix.Query(expr); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), nil
}

// pairedMedian interleaves measurement batches between the two indexes —
// alternating which side goes first — so slow machine-wide drift (thermal,
// heap growth) cancels out of the comparison instead of masquerading as
// instrumentation overhead. It reports the median batch latency per side.
func pairedMedian(on, off *core.Index, expr string, minTime time.Duration) (time.Duration, time.Duration, error) {
	const samples = 7
	for _, ix := range []*core.Index{on, off} { // warm-up
		if _, err := ix.Query(expr); err != nil {
			return 0, 0, err
		}
	}
	per := minTime / samples
	if per <= 0 {
		per = time.Millisecond
	}
	onMeds := make([]time.Duration, 0, samples)
	offMeds := make([]time.Duration, 0, samples)
	for s := 0; s < samples; s++ {
		order := []*core.Index{on, off}
		if s%2 == 1 {
			order[0], order[1] = order[1], order[0]
		}
		for _, ix := range order {
			d, err := sampleLatency(ix, expr, per)
			if err != nil {
				return 0, 0, err
			}
			if ix == on {
				onMeds = append(onMeds, d)
			} else {
				offMeds = append(offMeds, d)
			}
		}
	}
	sort.Slice(onMeds, func(i, j int) bool { return onMeds[i] < onMeds[j] })
	sort.Slice(offMeds, func(i, j int) bool { return offMeds[i] < offMeds[j] })
	return onMeds[samples/2], offMeds[samples/2], nil
}

// RunObs measures the latency cost of the metrics registry and stage tracing
// on the DBLP-like corpus.
func RunObs(cfg Config) (*ObsResult, error) {
	res := &ObsResult{Records: cfg.scale(5000)}
	docs := gen.DBLP(gen.DBLPConfig{Records: res.Records, Seed: cfg.Seed})

	mk := func(disable bool) (*core.Index, error) {
		return core.NewMem(core.Options{
			Schema:            gen.DBLPSchema(),
			SkipDocumentStore: true,
			DisableMetrics:    disable,
			// A node cache big enough for the working set: with the default
			// (512 nodes) this corpus thrashes the clock cache, and thrash
			// dynamics are bistable enough to drown the few-percent effect
			// this experiment prices.
			NodeCache: 1 << 16,
		})
	}
	on, err := mk(false)
	if err != nil {
		return nil, err
	}
	off, err := mk(true)
	if err != nil {
		return nil, err
	}
	// Insert document-by-document into both indexes alternately: two indexes
	// built back-to-back land in differently-fragmented heap regions and can
	// differ 3x on scan-heavy queries from locality alone, which would drown
	// the effect being measured. Interleaved building gives both the same
	// allocation pattern.
	for _, d := range docs {
		if _, err := on.Insert(d.Clone()); err != nil {
			return nil, err
		}
		if _, err := off.Insert(d.Clone()); err != nil {
			return nil, err
		}
	}

	exprs := []string{
		"/inproceedings/title",
		"//author[text()='" + gen.DBLPDavid + "']",
		"/book[@key='" + gen.DBLPKey + "']/author",
		"//inproceedings/author",
	}
	for _, expr := range exprs {
		dOn, dOff, err := pairedMedian(on, off, expr, cfg.minTime())
		if err != nil {
			return nil, err
		}
		pct := 0.0
		if dOff > 0 {
			pct = 100 * (float64(dOn) - float64(dOff)) / float64(dOff)
		}
		res.Rows = append(res.Rows, ObsRow{Expr: expr, On: dOn, Off: dOff, OverheadPct: pct})
	}

	snap := on.Metrics()
	lat := snap.Histograms["query.seconds"]
	p50 := time.Duration(lat.Quantile(0.50) * float64(time.Second)).Round(time.Microsecond)
	p99 := time.Duration(lat.Quantile(0.99) * float64(time.Second)).Round(time.Microsecond)
	res.MetricsSummary = fmt.Sprintf(
		"queries ok=%d slow=%d; docs inserted=%d; node-cache hit rate=%.3f; query p50=%s p99=%s",
		snap.Counter("query.ok"), snap.Counter("query.slow"), snap.Counter("index.docs_inserted"),
		snap.Ratio("btree.node_cache_hits", "btree.node_cache_misses"), p50, p99)
	return res, nil
}

// Fprint renders the observability overhead experiment.
func (r *ObsResult) Fprint(w io.Writer) {
	fprintHeader(w, "Observability overhead — metrics on vs DisableMetrics",
		fmt.Sprintf("DBLP-like, %d records, in-memory; median per-query latency over interleaved samples. Target: <5%% median overhead.", r.Records))
	fmt.Fprintf(w, "%-52s %12s %12s %10s\n", "query", "metrics on", "metrics off", "overhead")
	var pcts []float64
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-52s %12s %12s %9.1f%%\n",
			row.Expr, row.On.Round(time.Microsecond), row.Off.Round(time.Microsecond), row.OverheadPct)
		pcts = append(pcts, row.OverheadPct)
	}
	sort.Float64s(pcts)
	if len(pcts) > 0 {
		fmt.Fprintf(w, "%-52s %12s %12s %9.1f%%\n", "median", "", "", pcts[len(pcts)/2])
	}
	fmt.Fprintf(w, "\ninstrumented run: %s\n", r.MetricsSummary)
}
