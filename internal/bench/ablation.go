package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"vist/internal/core"
	"vist/internal/gen"
	"vist/internal/pathindex"
	"vist/internal/xmltree"
)

// AblationLabelingRow reports one labeling strategy.
type AblationLabelingRow struct {
	Strategy  string
	BuildTime time.Duration
	QueryTime time.Duration
	Nodes     uint64
	Borrows   uint64
	Bytes     int64
}

// AblationLabelingResult compares dynamic-labeling strategies: uniform λ
// values against statistics-guided allocation (Section 3.4.1). Fewer
// reserve borrows mean the strategy's scope estimates fit the data better.
type AblationLabelingResult struct {
	Sequences int
	Rows      []AblationLabelingRow
}

// RunAblationLabeling builds the same synthetic corpus under each labeling
// strategy and measures build time, query time, node count, and underflow
// borrows.
func RunAblationLabeling(cfg Config) (*AblationLabelingResult, error) {
	scfg := gen.SyntheticConfig{K: 10, J: 8, L: 30, N: cfg.scale(5000), Seed: cfg.Seed}
	res := &AblationLabelingResult{Sequences: scfg.N}
	queries := gen.SyntheticQueries(scfg, 10, 6, cfg.Seed+11)

	run := func(name string, opts core.Options) error {
		docs := gen.Synthetic(scfg)
		ix, err := core.NewMem(opts)
		if err != nil {
			return err
		}
		start := time.Now()
		if err := insertAll(ix, docs); err != nil {
			return err
		}
		buildTime := time.Since(start)
		e := vistEngine(ix)
		var qt time.Duration
		for _, expr := range queries {
			d, _, err := timeQuery(e, expr, cfg.minTime()/10)
			if err != nil {
				return err
			}
			qt += d
		}
		res.Rows = append(res.Rows, AblationLabelingRow{
			Strategy:  name,
			BuildTime: buildTime,
			QueryTime: qt / time.Duration(len(queries)),
			Nodes:     ix.NodeCount(),
			Borrows:   ix.BorrowCount(),
			Bytes:     ix.IndexSizeBytes(),
		})
		return nil
	}

	for _, lam := range []uint64{2, 8, 32} {
		if err := run(fmt.Sprintf("uniform λ=%d", lam), core.Options{SkipDocumentStore: true, Lambda: lam}); err != nil {
			return nil, err
		}
	}
	training := core.Train(gen.Synthetic(gen.SyntheticConfig{K: 10, J: 8, L: 30, N: 500, Seed: cfg.Seed + 99}), nil)
	if err := run("stats-guided", core.Options{SkipDocumentStore: true, Training: training}); err != nil {
		return nil, err
	}
	return res, nil
}

// Fprint renders the labeling ablation.
func (r *AblationLabelingResult) Fprint(w io.Writer) {
	fprintHeader(w, "Ablation — dynamic labeling strategy",
		fmt.Sprintf("Synthetic, %d sequences. Borrows count scope underflows resolved from reserves.", r.Sequences))
	fmt.Fprintf(w, "%-16s %12s %12s %10s %10s %14s\n", "strategy", "build", "query", "nodes", "borrows", "index bytes")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %12s %12s %10d %10d %14d\n",
			row.Strategy, row.BuildTime.Round(time.Millisecond), row.QueryTime.Round(time.Microsecond),
			row.Nodes, row.Borrows, row.Bytes)
	}
}

// AblationVerifyResult compares raw candidate queries against verified
// (refined) queries — the cost of exactness on top of the paper's
// algorithm.
type AblationVerifyResult struct {
	Records int
	Rows    []AblationVerifyRow
}

// AblationVerifyRow is one query's raw-vs-verified comparison.
type AblationVerifyRow struct {
	Expr       string
	Raw        time.Duration
	Verified   time.Duration
	Candidates int
	Exact      int
}

// RunAblationVerify measures Query vs QueryVerified on the DBLP-like
// corpus (document storage enabled).
func RunAblationVerify(cfg Config) (*AblationVerifyResult, error) {
	res := &AblationVerifyResult{Records: cfg.scale(5000)}
	ix, err := core.NewMem(core.Options{Schema: gen.DBLPSchema()})
	if err != nil {
		return nil, err
	}
	if err := insertAll(ix, gen.DBLP(gen.DBLPConfig{Records: res.Records, Seed: cfg.Seed})); err != nil {
		return nil, err
	}
	exprs := []string{
		"/inproceedings/title",
		"/book/author[text()='" + gen.DBLPDavid + "']",
		"//author[text()='" + gen.DBLPDavid + "']",
		"/book[@key='" + gen.DBLPKey + "']/author",
	}
	for _, expr := range exprs {
		raw, nraw, err := timeQuery(vistEngine(ix), expr, cfg.minTime())
		if err != nil {
			return nil, err
		}
		verifiedEngine := engine{name: "verified", query: func(e string) (int, error) {
			ids, err := ix.QueryVerified(e)
			return len(ids), err
		}}
		ver, nver, err := timeQuery(verifiedEngine, expr, cfg.minTime())
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationVerifyRow{
			Expr: expr, Raw: raw, Verified: ver, Candidates: nraw, Exact: nver,
		})
	}
	return res, nil
}

// Fprint renders the verification ablation.
func (r *AblationVerifyResult) Fprint(w io.Writer) {
	fprintHeader(w, "Ablation — candidate vs verified queries",
		fmt.Sprintf("DBLP-like, %d records. Verified answers filter sequence-matching false positives and hash collisions.", r.Records))
	fmt.Fprintf(w, "%-52s %12s %12s %10s %8s\n", "query", "raw", "verified", "candidates", "exact")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-52s %12s %12s %10d %8d\n",
			row.Expr, row.Raw.Round(time.Microsecond), row.Verified.Round(time.Microsecond), row.Candidates, row.Exact)
	}
}

// AblationPagerResult compares memory-backed and file-backed indexes.
type AblationPagerResult struct {
	Records   int
	MemBuild  time.Duration
	FileBuild time.Duration
	MemQuery  time.Duration
	FileQuery time.Duration
}

// RunAblationPager measures build and query times for the same corpus on a
// MemPager and on a FilePager with an LRU buffer pool.
func RunAblationPager(cfg Config) (*AblationPagerResult, error) {
	res := &AblationPagerResult{Records: cfg.scale(5000)}
	expr := "//author[text()='" + gen.DBLPDavid + "']"

	mem, err := core.NewMem(core.Options{Schema: gen.DBLPSchema(), SkipDocumentStore: true})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := insertAll(mem, gen.DBLP(gen.DBLPConfig{Records: res.Records, Seed: cfg.Seed})); err != nil {
		return nil, err
	}
	res.MemBuild = time.Since(start)
	res.MemQuery, _, err = timeQuery(vistEngine(mem), expr, cfg.minTime())
	if err != nil {
		return nil, err
	}

	dir, err := os.MkdirTemp("", "vist-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	file, err := core.Open(filepath.Join(dir, "ix"), core.Options{Schema: gen.DBLPSchema(), SkipDocumentStore: true})
	if err != nil {
		return nil, err
	}
	defer file.Close()
	start = time.Now()
	if err := insertAll(file, gen.DBLP(gen.DBLPConfig{Records: res.Records, Seed: cfg.Seed})); err != nil {
		return nil, err
	}
	if err := file.Sync(); err != nil {
		return nil, err
	}
	res.FileBuild = time.Since(start)
	res.FileQuery, _, err = timeQuery(vistEngine(file), expr, cfg.minTime())
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Fprint renders the pager ablation.
func (r *AblationPagerResult) Fprint(w io.Writer) {
	fprintHeader(w, "Ablation — memory vs file pager",
		fmt.Sprintf("DBLP-like, %d records; file pager uses a write-back LRU buffer pool.", r.Records))
	fmt.Fprintf(w, "%-8s %14s %14s\n", "pager", "build", "query")
	fmt.Fprintf(w, "%-8s %14s %14s\n", "memory", r.MemBuild.Round(time.Millisecond), r.MemQuery.Round(time.Microsecond))
	fmt.Fprintf(w, "%-8s %14s %14s\n", "file", r.FileBuild.Round(time.Millisecond), r.FileQuery.Round(time.Microsecond))
}

// AblationRefinedResult measures Index Fabric's refined-path extension
// (which the paper's Table 4 configuration deliberately excluded): query
// speedup for registered patterns vs the per-insert maintenance cost every
// refined path adds.
type AblationRefinedResult struct {
	Records      int
	RefinedPaths int
	BuildRaw     time.Duration
	BuildRefined time.Duration
	Rows         []AblationRefinedRow
}

// AblationRefinedRow is one query's raw-vs-refined comparison.
type AblationRefinedRow struct {
	Expr    string
	Raw     time.Duration
	Refined time.Duration
}

// RunAblationRefined builds the XMARK-like corpus twice — once as raw
// paths, once with Q6–Q8 registered as refined paths — and compares both
// build and query times.
func RunAblationRefined(cfg Config) (*AblationRefinedResult, error) {
	n := cfg.scale(1250)
	res := &AblationRefinedResult{Records: n * 4}
	schema := xmltreeSchema()
	exprs := []string{
		"/site//item[location='" + gen.XMarkUS + "']/mail/date[text()='" + gen.XMarkDate + "']",
		"/site//person/*/city[text()='" + gen.XMarkCity + "']",
		"//closed_auction[*[person='" + gen.XMarkPerson + "']]/date[text()='" + gen.XMarkDate + "']",
	}
	res.RefinedPaths = len(exprs)

	build := func(register bool) (*pathindex.Index, time.Duration, error) {
		ix, err := pathindex.New(schema, 0)
		if err != nil {
			return nil, 0, err
		}
		if register {
			for _, e := range exprs {
				if err := ix.RegisterRefinedPath(e); err != nil {
					return nil, 0, err
				}
			}
		}
		docs := gen.XMark(gen.XMarkConfig{Items: n, Persons: n, OpenAuctions: n, ClosedAuctions: n, Seed: cfg.Seed})
		start := time.Now()
		for _, d := range docs {
			if _, err := ix.Insert(d); err != nil {
				return nil, 0, err
			}
		}
		return ix, time.Since(start), nil
	}

	raw, rawBuild, err := build(false)
	if err != nil {
		return nil, err
	}
	refined, refBuild, err := build(true)
	if err != nil {
		return nil, err
	}
	res.BuildRaw, res.BuildRefined = rawBuild, refBuild

	for _, expr := range exprs {
		rawT, _, err := timeQuery(pathEngine(raw), expr, cfg.minTime())
		if err != nil {
			return nil, err
		}
		refT, _, err := timeQuery(pathEngine(refined), expr, cfg.minTime())
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRefinedRow{Expr: expr, Raw: rawT, Refined: refT})
	}
	return res, nil
}

func xmltreeSchema() *xmltree.Schema {
	return xmltree.NewSchema(gen.XMarkSchema()...)
}

// Fprint renders the refined-paths ablation.
func (r *AblationRefinedResult) Fprint(w io.Writer) {
	fprintHeader(w, "Ablation — Index Fabric refined paths",
		fmt.Sprintf("XMARK-like, %d records, %d registered patterns. The paper's critique: each refined path taxes every insertion; only registered queries benefit.", r.Records, r.RefinedPaths))
	fmt.Fprintf(w, "build (raw paths):     %s\n", r.BuildRaw.Round(time.Millisecond))
	fmt.Fprintf(w, "build (+refined):      %s\n\n", r.BuildRefined.Round(time.Millisecond))
	fmt.Fprintf(w, "%-70s %12s %12s\n", "query", "raw", "refined")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-70s %12s %12s\n", row.Expr, row.Raw.Round(time.Microsecond), row.Refined.Round(time.Microsecond))
	}
}
