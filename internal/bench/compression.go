package bench

import (
	"fmt"
	"io"
	"os"
	"time"

	"vist/internal/core"
	"vist/internal/gen"
	"vist/internal/xmltree"
)

// CompressionRow reports one storage-format variant's footprint and read
// cost over the same DBLP-like corpus.
type CompressionRow struct {
	Variant     string
	TotalBytes  int64
	BytesPerDoc float64
	QueryTime   time.Duration // average over the Table 3 DBLP queries
	ColdEntries int
	ColdRatio   float64 // raw/compressed for the cold tier (0 = no cold tier)
}

// CompressionResult aggregates the storage-compression experiment.
type CompressionResult struct {
	Docs int
	Rows []CompressionRow
}

// RunCompression measures what the storage-compression work buys: the same
// documents are indexed on disk under (1) the original fixed-width key and
// page layout, (2) the interned-key front-coded format, and (3) the interned
// format with cold-page compression over a deliberately tiny buffer pool.
// Each variant reports its on-disk footprint and its average latency over the
// paper's DBLP queries, so the size/speed trade is visible in one table.
func RunCompression(cfg Config) (*CompressionResult, error) {
	docs := gen.DBLP(gen.DBLPConfig{Records: cfg.scale(5000), Seed: cfg.Seed})
	res := &CompressionResult{Docs: len(docs)}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"fixed-width (legacy)", core.Options{Schema: gen.DBLPSchema(), SkipDocumentStore: true, LegacyFormat: true}},
		{"interned+front-coded", core.Options{Schema: gen.DBLPSchema(), SkipDocumentStore: true}},
		{"interned+cold-compressed", core.Options{
			Schema: gen.DBLPSchema(), SkipDocumentStore: true, CompressColdPages: true,
			CachePages: 32, NodeCache: 64,
		}},
	}
	for _, v := range variants {
		dir, err := os.MkdirTemp("", "vist-compression-*")
		if err != nil {
			return nil, err
		}
		row, err := runCompressionVariant(dir, v.name, v.opts, docs, cfg)
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func runCompressionVariant(dir, name string, opts core.Options, docs []*xmltree.Node, cfg Config) (*CompressionRow, error) {
	ix, err := core.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	defer ix.Close()
	clones := make([]*xmltree.Node, len(docs))
	for i, d := range docs {
		clones[i] = d.Clone()
	}
	if err := insertAll(ix, clones); err != nil {
		return nil, err
	}
	if err := ix.Sync(); err != nil {
		return nil, err
	}
	row := &CompressionRow{Variant: name}
	var total time.Duration
	queries := 0
	for _, q := range Table3Queries {
		if q.Dataset != "dblp" {
			continue
		}
		d, _, err := timeQuery(vistEngine(ix), q.Expr, cfg.minTime())
		if err != nil {
			return nil, err
		}
		total += d
		queries++
	}
	if queries > 0 {
		row.QueryTime = total / time.Duration(queries)
	}
	st := ix.StorageStats()
	row.TotalBytes = st.TotalBytes
	row.BytesPerDoc = st.BytesPerDoc
	row.ColdEntries = st.ColdEntries
	if st.ColdCompressedBytes > 0 {
		row.ColdRatio = float64(st.ColdRawBytes) / float64(st.ColdCompressedBytes)
	}
	return row, nil
}

// Fprint renders the compression table.
func (r *CompressionResult) Fprint(w io.Writer) {
	fprintHeader(w, "Storage compression — format variants",
		fmt.Sprintf("%d DBLP-like records on disk, index structure only (document store skipped, as in Figure 11a). Expected shape: interned+front-coded several times smaller than fixed-width at comparable query time; the cold tier trades query time for a bounded compressed page cache.", r.Docs))
	fmt.Fprintf(w, "%-26s %14s %12s %12s %8s %10s\n",
		"variant", "total bytes", "bytes/doc", "avg query", "cold", "cold ratio")
	for _, row := range r.Rows {
		cold, ratio := "—", "—"
		if row.ColdEntries > 0 {
			cold = fmt.Sprintf("%d", row.ColdEntries)
			ratio = fmt.Sprintf("%.2fx", row.ColdRatio)
		}
		fmt.Fprintf(w, "%-26s %14d %12.1f %12s %8s %10s\n",
			row.Variant, row.TotalBytes, row.BytesPerDoc,
			row.QueryTime.Round(time.Microsecond), cold, ratio)
	}
}
