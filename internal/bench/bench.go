// Package bench regenerates every table and figure of the ViST paper's
// evaluation (Section 4) against the generated workloads:
//
//	Table 4     — Q1–Q8 query times: RIST/ViST vs raw-path index vs node index
//	Figure 10a  — query time vs query length (synthetic)
//	Figure 10b  — query time vs data size (synthetic, sub-linear)
//	Figure 11a  — index size (DBLP-like, XMARK-like; ViST vs RIST)
//	Figure 11b  — index construction time vs element count (linear)
//
// plus ablations for the design choices DESIGN.md calls out. Absolute times
// differ from the paper's 2003 hardware; the comparisons reproduce the
// *shape*: who wins, by roughly what factor, and how curves scale.
// Experiments accept a Scale factor so they run anywhere from laptop smoke
// tests to full-size runs.
package bench

import (
	"fmt"
	"io"
	"time"

	"vist/internal/core"
	"vist/internal/nodeindex"
	"vist/internal/pathindex"
	"vist/internal/rist"
	"vist/internal/xmltree"
)

// Config controls experiment sizing.
type Config struct {
	// Scale multiplies the default dataset sizes (1.0 ≈ a laptop-scale
	// run; the paper's full sizes need Scale ≈ 15–50 and correspondingly
	// more time).
	Scale float64
	// Seed makes workloads deterministic.
	Seed int64
	// MinTime is the minimum measurement window per timed query (default
	// 100ms).
	MinTime time.Duration
}

func (c Config) scale(n int) int {
	if c.Scale <= 0 {
		return n
	}
	v := int(float64(n) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

func (c Config) minTime() time.Duration {
	if c.MinTime <= 0 {
		return 100 * time.Millisecond
	}
	return c.MinTime
}

// engine abstracts the three query processors under comparison.
type engine struct {
	name  string
	query func(expr string) (int, error)
}

func vistEngine(ix *core.Index) engine {
	return engine{name: "RIST/ViST", query: func(expr string) (int, error) {
		ids, err := ix.Query(expr)
		return len(ids), err
	}}
}

func ristEngine(r *rist.Index) engine {
	return engine{name: "RIST/ViST", query: func(expr string) (int, error) {
		ids, err := r.Query(expr)
		return len(ids), err
	}}
}

func pathEngine(ix *pathindex.Index) engine {
	return engine{name: "raw path (Index Fabric)", query: func(expr string) (int, error) {
		ids, err := ix.Query(expr)
		return len(ids), err
	}}
}

func nodeEngine(ix *nodeindex.Index) engine {
	return engine{name: "node index (XISS)", query: func(expr string) (int, error) {
		ids, err := ix.Query(expr)
		return len(ids), err
	}}
}

// timeQuery measures the average latency of one query on one engine,
// running at least three iterations and at least minTime of wall clock.
func timeQuery(e engine, expr string, minTime time.Duration) (time.Duration, int, error) {
	// Warm-up & sanity run.
	n, err := e.query(expr)
	if err != nil {
		return 0, 0, fmt.Errorf("%s: %q: %w", e.name, expr, err)
	}
	var iters int
	start := time.Now()
	for iters = 0; iters < 3 || time.Since(start) < minTime; iters++ {
		if iters >= 1000 {
			break
		}
		if _, err := e.query(expr); err != nil {
			return 0, 0, err
		}
	}
	return time.Since(start) / time.Duration(iters), n, nil
}

// insertAll indexes documents into a ViST index.
func insertAll(ix *core.Index, docs []*xmltree.Node) error {
	for _, d := range docs {
		if _, err := ix.Insert(d); err != nil {
			return err
		}
	}
	return nil
}

// fprintHeader writes a section banner.
func fprintHeader(w io.Writer, title, caption string) {
	fmt.Fprintf(w, "\n=== %s ===\n%s\n\n", title, caption)
}
