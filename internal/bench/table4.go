package bench

import (
	"fmt"
	"io"
	"time"

	"vist/internal/core"
	"vist/internal/gen"
	"vist/internal/nodeindex"
	"vist/internal/pathindex"
	"vist/internal/xmltree"
)

// Table3Queries are the eight queries of the paper's Table 3, with the
// generator's planted literals substituted for the paper's.
var Table3Queries = []struct {
	ID      string
	Expr    string
	Dataset string // "dblp" or "xmark"
}{
	{"Q1", "/inproceedings/title", "dblp"},
	{"Q2", "/book/author[text()='" + gen.DBLPDavid + "']", "dblp"},
	{"Q3", "/*/author[text()='" + gen.DBLPDavid + "']", "dblp"},
	{"Q4", "//author[text()='" + gen.DBLPDavid + "']", "dblp"},
	{"Q5", "/book[@key='" + gen.DBLPKey + "']/author", "dblp"},
	{"Q6", "/site//item[location='" + gen.XMarkUS + "']/mail/date[text()='" + gen.XMarkDate + "']", "xmark"},
	{"Q7", "/site//person/*/city[text()='" + gen.XMarkCity + "']", "xmark"},
	{"Q8", "//closed_auction[*[person='" + gen.XMarkPerson + "']]/date[text()='" + gen.XMarkDate + "']", "xmark"},
}

// Table4Row is one measured row of Table 4.
type Table4Row struct {
	ID, Expr, Dataset string
	ViST              time.Duration
	RawPath           time.Duration
	NodeIdx           time.Duration
	Results           int
}

// Table4Result aggregates the experiment.
type Table4Result struct {
	DBLPRecords, XMarkRecords int
	Rows                      []Table4Row
}

// RunTable4 builds DBLP-like and XMARK-like datasets, indexes each with the
// three engines, and times the eight queries of Table 3.
func RunTable4(cfg Config) (*Table4Result, error) {
	res := &Table4Result{
		DBLPRecords:  cfg.scale(20000),
		XMarkRecords: cfg.scale(2500) * 4,
	}

	type corpus struct {
		engines []engine
	}
	corpora := map[string]*corpus{}

	// DBLP-like.
	dblpEngines, err := buildEngines(
		gen.DBLP(gen.DBLPConfig{Records: res.DBLPRecords, Seed: cfg.Seed}),
		gen.DBLPSchema(),
	)
	if err != nil {
		return nil, err
	}
	corpora["dblp"] = &corpus{engines: dblpEngines}

	// XMARK-like.
	n := cfg.scale(2500)
	xmarkEngines, err := buildEngines(
		gen.XMark(gen.XMarkConfig{Items: n, Persons: n, OpenAuctions: n, ClosedAuctions: n, Seed: cfg.Seed + 1}),
		gen.XMarkSchema(),
	)
	if err != nil {
		return nil, err
	}
	corpora["xmark"] = &corpus{engines: xmarkEngines}

	for _, q := range Table3Queries {
		c := corpora[q.Dataset]
		row := Table4Row{ID: q.ID, Expr: q.Expr, Dataset: q.Dataset}
		for i, e := range c.engines {
			d, nres, err := timeQuery(e, q.Expr, cfg.minTime())
			if err != nil {
				return nil, err
			}
			switch i {
			case 0:
				row.ViST = d
				row.Results = nres
			case 1:
				row.RawPath = d
			case 2:
				row.NodeIdx = d
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// buildEngines indexes the documents with ViST, the raw-path index, and the
// node index. Documents are cloned per engine because indexing normalizes
// in place and the engines must not share trees.
func buildEngines(docs []*xmltree.Node, schema []string) ([]engine, error) {
	clone := func() []*xmltree.Node {
		out := make([]*xmltree.Node, len(docs))
		for i, d := range docs {
			out[i] = d.Clone()
		}
		return out
	}
	sc := xmltree.NewSchema(schema...)

	vist, err := core.NewMem(core.Options{Schema: schema, SkipDocumentStore: true, Lambda: 4})
	if err != nil {
		return nil, err
	}
	if err := insertAll(vist, clone()); err != nil {
		return nil, err
	}

	pidx, err := pathindex.New(sc, 0)
	if err != nil {
		return nil, err
	}
	for _, d := range clone() {
		if _, err := pidx.Insert(d); err != nil {
			return nil, err
		}
	}

	nidx, err := nodeindex.New(sc, 0)
	if err != nil {
		return nil, err
	}
	for _, d := range clone() {
		if _, err := nidx.Insert(d); err != nil {
			return nil, err
		}
	}
	return []engine{vistEngine(vist), pathEngine(pidx), nodeEngine(nidx)}, nil
}

// Fprint renders the result in the paper's Table 4 layout.
func (r *Table4Result) Fprint(w io.Writer) {
	fprintHeader(w, "Table 4 — query processing time",
		fmt.Sprintf("DBLP-like: %d records; XMARK-like: %d records. Paper shape: RIST/ViST wins Q2–Q8; raw paths competitive only on Q1; node index slow throughout.", r.DBLPRecords, r.XMarkRecords))
	fmt.Fprintf(w, "%-4s %-62s %-7s %12s %12s %12s %8s\n", "", "query", "dataset", "RIST/ViST", "raw-path", "node-idx", "results")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-4s %-62s %-7s %12s %12s %12s %8d\n",
			row.ID, row.Expr, row.Dataset,
			row.ViST.Round(time.Microsecond),
			row.RawPath.Round(time.Microsecond),
			row.NodeIdx.Round(time.Microsecond),
			row.Results)
	}
}
