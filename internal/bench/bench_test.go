package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tiny returns a configuration small enough for CI smoke tests.
func tiny() Config {
	return Config{Scale: 0.02, Seed: 1, MinTime: time.Millisecond}
}

func TestRunTable4Smoke(t *testing.T) {
	res, err := RunTable4(tiny())
	if err != nil {
		t.Fatalf("RunTable4: %v", err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ViST <= 0 || row.RawPath <= 0 || row.NodeIdx <= 0 {
			t.Fatalf("%s: non-positive timing: %+v", row.ID, row)
		}
	}
	// The planted literals must produce hits for the value queries.
	for _, id := range []int{1, 3, 4} { // Q2, Q4, Q5
		if res.Rows[id].Results == 0 {
			t.Errorf("%s returned no results; planted values missing", res.Rows[id].ID)
		}
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty Table 4 rendering")
	}
}

func TestRunFig10aSmoke(t *testing.T) {
	res, err := RunFig10a(tiny())
	if err != nil {
		t.Fatalf("RunFig10a: %v", err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("got %d points", len(res.Points))
	}
	for _, p := range res.Points {
		if p.AvgTime <= 0 {
			t.Fatalf("non-positive time at length %d", p.QueryLength)
		}
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty rendering")
	}
}

func TestRunFig10bSmoke(t *testing.T) {
	res, err := RunFig10b(tiny())
	if err != nil {
		t.Fatalf("RunFig10b: %v", err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("got %d points", len(res.Points))
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Elements <= res.Points[i-1].Elements {
			t.Fatal("element counts must increase")
		}
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
}

func TestRunFig11aSmoke(t *testing.T) {
	res, err := RunFig11a(tiny())
	if err != nil {
		t.Fatalf("RunFig11a: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ViSTBytes <= 0 || row.RISTBytes <= 0 {
			t.Fatalf("%s: non-positive sizes: %+v", row.Dataset, row)
		}
		// The paper's shape: RIST carries the materialized trie on top.
		if row.RISTBytes <= row.ViSTBytes/4 {
			t.Errorf("%s: RIST unexpectedly tiny: %d vs ViST %d", row.Dataset, row.RISTBytes, row.ViSTBytes)
		}
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
}

func TestRunFig11bSmoke(t *testing.T) {
	res, err := RunFig11b(tiny())
	if err != nil {
		t.Fatalf("RunFig11b: %v", err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("got %d points", len(res.Points))
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
}

func TestRunAblationLabelingSmoke(t *testing.T) {
	res, err := RunAblationLabeling(tiny())
	if err != nil {
		t.Fatalf("RunAblationLabeling: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
}

func TestRunAblationVerifySmoke(t *testing.T) {
	res, err := RunAblationVerify(tiny())
	if err != nil {
		t.Fatalf("RunAblationVerify: %v", err)
	}
	for _, row := range res.Rows {
		if row.Exact > row.Candidates {
			t.Fatalf("%s: verified %d > candidates %d", row.Expr, row.Exact, row.Candidates)
		}
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
}

func TestRunAblationPagerSmoke(t *testing.T) {
	res, err := RunAblationPager(tiny())
	if err != nil {
		t.Fatalf("RunAblationPager: %v", err)
	}
	if res.MemBuild <= 0 || res.FileBuild <= 0 {
		t.Fatalf("non-positive build times: %+v", res)
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
}

func TestRunAblationRefinedSmoke(t *testing.T) {
	res, err := RunAblationRefined(tiny())
	if err != nil {
		t.Fatalf("RunAblationRefined: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Refined > row.Raw {
			t.Logf("note: refined slower than raw at tiny scale for %s", row.Expr)
		}
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty rendering")
	}
}

func TestAsciiPlot(t *testing.T) {
	var buf bytes.Buffer
	asciiPlot(&buf, "title", []string{"a", "bb"}, []time.Duration{time.Millisecond, 2 * time.Millisecond})
	out := buf.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "█") {
		t.Fatalf("plot output: %q", out)
	}
	// Degenerate inputs must not panic or emit garbage.
	buf.Reset()
	asciiPlot(&buf, "t", nil, nil)
	asciiPlot(&buf, "t", []string{"x"}, []time.Duration{0})
	if buf.Len() != 0 {
		t.Fatalf("degenerate plots emitted %q", buf.String())
	}
}

func TestRunScalingSmoke(t *testing.T) {
	res, err := RunScaling(tiny())
	if err != nil {
		t.Fatalf("RunScaling: %v", err)
	}
	if len(res.Rows) != 2 || len(res.Sizes) != 4 {
		t.Fatalf("rows=%d sizes=%d", len(res.Rows), len(res.Sizes))
	}
	for _, row := range res.Rows {
		if len(row.Points) != len(res.Sizes) {
			t.Fatalf("%s has %d points", row.ID, len(row.Points))
		}
		for _, p := range row.Points {
			if p.ViST <= 0 || p.RawPath <= 0 {
				t.Fatalf("%s: non-positive timing %+v", row.ID, p)
			}
		}
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	if !strings.Contains(buf.String(), "growth") {
		t.Fatalf("rendering: %q", buf.String())
	}
}

func TestRunDurabilitySmoke(t *testing.T) {
	res, err := RunDurability(tiny())
	if err != nil {
		t.Fatalf("RunDurability: %v", err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Syncs <= 0 || p.Elapsed <= 0 || p.DocsPerS <= 0 {
			t.Fatalf("%s: degenerate measurement %+v", p.Name, p)
		}
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	if !strings.Contains(buf.String(), "wal (atomic commit)") {
		t.Fatalf("rendering: %q", buf.String())
	}
}

func TestRunObsSmoke(t *testing.T) {
	res, err := RunObs(tiny())
	if err != nil {
		t.Fatalf("RunObs: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.On <= 0 || row.Off <= 0 {
			t.Fatalf("non-positive timing: %+v", row)
		}
	}
	if res.MetricsSummary == "" || !strings.Contains(res.MetricsSummary, "queries ok=") {
		t.Fatalf("bad metrics summary: %q", res.MetricsSummary)
	}
	var buf bytes.Buffer
	res.Fprint(&buf)
	if !strings.Contains(buf.String(), "overhead") {
		t.Fatalf("rendering missing overhead column:\n%s", buf.String())
	}
}
