package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// asciiPlot renders a simple bar chart of a series so figure shapes are
// visible directly in terminal output, next to the numeric tables.
func asciiPlot(w io.Writer, title string, labels []string, values []time.Duration) {
	if len(labels) == 0 || len(labels) != len(values) {
		return
	}
	var max time.Duration
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		return
	}
	const width = 48
	fmt.Fprintf(w, "%s\n", title)
	labelWidth := 0
	for _, l := range labels {
		if len(l) > labelWidth {
			labelWidth = len(l)
		}
	}
	for i, v := range values {
		bar := int(int64(v) * width / int64(max))
		if bar == 0 && v > 0 {
			bar = 1
		}
		fmt.Fprintf(w, "  %-*s %s %s\n", labelWidth, labels[i], strings.Repeat("█", bar), v.Round(time.Microsecond))
	}
}
