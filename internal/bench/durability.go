package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"vist/internal/core"
	"vist/internal/gen"
)

// DurabilityPoint is one configuration in the Sync-cost sweep.
type DurabilityPoint struct {
	Name      string
	Records   int
	Syncs     int
	Elapsed   time.Duration
	DocsPerS  float64
	SyncsPerS float64
	Overhead  float64 // elapsed vs the no-WAL run, ×
}

// DurabilityResult compares insert+Sync throughput of the crash-safe
// WAL-backed pager against the raw flush+fsync path (DisableWAL). The WAL
// writes every dirty page twice (log, then checkpoint) but makes each Sync
// an atomic commit; this experiment prices that guarantee.
type DurabilityResult struct {
	Records   int
	SyncEvery int
	Points    []DurabilityPoint
}

// RunDurability builds two file-backed DBLP indexes — one WAL-backed, one
// with DisableWAL — inserting the same documents and calling Sync every
// SyncEvery docs, and reports the throughput of each.
func RunDurability(cfg Config) (*DurabilityResult, error) {
	records := cfg.scale(2000)
	syncEvery := 50
	if records < syncEvery*4 {
		syncEvery = records/4 + 1
	}
	docs := gen.DBLP(gen.DBLPConfig{Records: records, Seed: cfg.Seed})

	res := &DurabilityResult{Records: records, SyncEvery: syncEvery}
	for _, mode := range []struct {
		name       string
		disableWAL bool
	}{
		{"no-wal (fsync only)", true},
		{"wal (atomic commit)", false},
	} {
		dir, err := os.MkdirTemp("", "vistbench-dur")
		if err != nil {
			return nil, err
		}
		ix, err := core.Open(filepath.Join(dir, "ix"), core.Options{
			Schema: gen.DBLPSchema(), SkipDocumentStore: true, Lambda: 4,
			DisableWAL: mode.disableWAL,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		syncs := 0
		start := time.Now()
		for i, d := range docs {
			if _, err := ix.Insert(d); err != nil {
				ix.Close()
				os.RemoveAll(dir)
				return nil, err
			}
			if (i+1)%syncEvery == 0 {
				if err := ix.Sync(); err != nil {
					ix.Close()
					os.RemoveAll(dir)
					return nil, err
				}
				syncs++
			}
		}
		if err := ix.Sync(); err != nil {
			ix.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		syncs++
		elapsed := time.Since(start)
		if err := ix.Close(); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		os.RemoveAll(dir)
		p := DurabilityPoint{
			Name:      mode.name,
			Records:   records,
			Syncs:     syncs,
			Elapsed:   elapsed,
			DocsPerS:  float64(records) / elapsed.Seconds(),
			SyncsPerS: float64(syncs) / elapsed.Seconds(),
			Overhead:  1,
		}
		if len(res.Points) > 0 {
			p.Overhead = float64(elapsed) / float64(res.Points[0].Elapsed)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Fprint renders the durability sweep.
func (r *DurabilityResult) Fprint(w io.Writer) {
	fprintHeader(w, "Durability — Sync cost with and without the WAL",
		"Same DBLP insert workload, Sync every "+fmt.Sprint(r.SyncEvery)+" docs. The WAL buys atomic,\n"+
			"torn-write-proof commits at the price of writing each dirty page twice.")
	fmt.Fprintf(w, "%d records, Sync every %d docs\n", r.Records, r.SyncEvery)
	fmt.Fprintf(w, "  %-22s %12s %10s %12s %12s %10s\n", "mode", "elapsed", "syncs", "docs/s", "syncs/s", "overhead")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-22s %12s %10d %12.0f %12.1f %10s\n",
			p.Name, p.Elapsed.Round(time.Millisecond), p.Syncs, p.DocsPerS, p.SyncsPerS,
			fmt.Sprintf("×%.2f", p.Overhead))
	}
	fmt.Fprintln(w)
}
