package bench

import (
	"fmt"
	"io"
	"time"

	"vist/internal/core"
	"vist/internal/gen"
	"vist/internal/pathindex"
	"vist/internal/xmltree"
)

// ScalingPoint is one corpus size in the engine-scaling sweep.
type ScalingPoint struct {
	Records int
	ViST    time.Duration
	RawPath time.Duration
}

// ScalingRow is one query's sweep.
type ScalingRow struct {
	ID     string
	Expr   string
	Points []ScalingPoint
}

// ScalingResult addresses the Table 4 deviation EXPERIMENTS.md documents:
// at small scale our raw-path baseline wins value-selective path queries
// (its value filter is an inline memcmp), while the paper had ViST ahead.
// This experiment sweeps the corpus size and records both engines' growth
// slopes, showing how the gap behaves as data grows — the quantity that
// determines who wins at the paper's full dataset sizes.
type ScalingResult struct {
	Sizes []int
	Rows  []ScalingRow
}

// RunScaling measures ViST and the raw-path index on one path-shaped and
// one wildcard-shaped DBLP query across growing corpus sizes.
func RunScaling(cfg Config) (*ScalingResult, error) {
	base := cfg.scale(2500)
	res := &ScalingResult{Sizes: []int{base, base * 2, base * 4, base * 8}}
	queries := []struct{ id, expr string }{
		{"Q2", "/book/author[text()='" + gen.DBLPDavid + "']"},
		{"Q4", "//author[text()='" + gen.DBLPDavid + "']"},
	}
	res.Rows = make([]ScalingRow, len(queries))
	for i, q := range queries {
		res.Rows[i] = ScalingRow{ID: q.id, Expr: q.expr}
	}

	for _, n := range res.Sizes {
		docs := gen.DBLP(gen.DBLPConfig{Records: n, Seed: cfg.Seed})
		clone := func() []*xmltree.Node {
			out := make([]*xmltree.Node, len(docs))
			for i, d := range docs {
				out[i] = d.Clone()
			}
			return out
		}
		vist, err := core.NewMem(core.Options{Schema: gen.DBLPSchema(), SkipDocumentStore: true, Lambda: 4})
		if err != nil {
			return nil, err
		}
		if err := insertAll(vist, clone()); err != nil {
			return nil, err
		}
		pidx, err := pathindex.New(xmltree.NewSchema(gen.DBLPSchema()...), 0)
		if err != nil {
			return nil, err
		}
		for _, d := range clone() {
			if _, err := pidx.Insert(d); err != nil {
				return nil, err
			}
		}
		for i, q := range queries {
			v, _, err := timeQuery(vistEngine(vist), q.expr, cfg.minTime())
			if err != nil {
				return nil, err
			}
			r, _, err := timeQuery(pathEngine(pidx), q.expr, cfg.minTime())
			if err != nil {
				return nil, err
			}
			res.Rows[i].Points = append(res.Rows[i].Points, ScalingPoint{Records: n, ViST: v, RawPath: r})
		}
	}
	return res, nil
}

// Fprint renders the scaling sweep with growth factors.
func (r *ScalingResult) Fprint(w io.Writer) {
	fprintHeader(w, "Scaling sweep — ViST vs raw paths on value queries",
		"DBLP-like corpus doubling in size. Growth slopes determine who wins at the paper's full scale.")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s %s\n", row.ID, row.Expr)
		fmt.Fprintf(w, "  %-10s %14s %10s %14s %10s\n", "records", "ViST", "growth", "raw-path", "growth")
		for i, p := range row.Points {
			vg, rg := "—", "—"
			if i > 0 {
				prev := row.Points[i-1]
				vg = fmt.Sprintf("×%.2f", float64(p.ViST)/float64(prev.ViST))
				rg = fmt.Sprintf("×%.2f", float64(p.RawPath)/float64(prev.RawPath))
			}
			fmt.Fprintf(w, "  %-10d %14s %10s %14s %10s\n",
				p.Records, p.ViST.Round(time.Microsecond), vg, p.RawPath.Round(time.Microsecond), rg)
		}
		fmt.Fprintln(w)
	}
}
