package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"vist/internal/core"
	"vist/internal/gen"
)

// ScrubPoint is one query's latency with the background scrubber off and on.
type ScrubPoint struct {
	Query    string
	Baseline time.Duration
	Scrubbed time.Duration
	Overhead float64 // scrubbed vs baseline, ×
}

// ScrubBenchResult prices the online scrubber: the same query workload on
// the same on-disk index, first with no scrubber, then with a continuous
// background scrub pass at the default page rate. The acceptance target is
// ≤5% added query latency.
type ScrubBenchResult struct {
	Records int
	Rate    int
	Passes  uint64
	Pages   uint64
	Points  []ScrubPoint
}

// RunScrub builds a file-backed DBLP index once, then times the query set
// against two reopenings of it: scrubber disabled, and scrubber running
// back-to-back passes (a 1ms interval keeps one in flight essentially
// always) at DefaultScrubRate.
func RunScrub(cfg Config) (*ScrubBenchResult, error) {
	records := cfg.scale(5000)
	docs := gen.DBLP(gen.DBLPConfig{Records: records, Seed: cfg.Seed})
	queries := []string{
		"//author[text()='" + gen.DBLPDavid + "']",
		"//year",
		"/inproceedings/title",
	}

	dir, err := os.MkdirTemp("", "vistbench-scrub")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ix")
	base := core.Options{Schema: gen.DBLPSchema(), Lambda: 4}

	ix, err := core.Open(path, base)
	if err != nil {
		return nil, err
	}
	if err := insertAll(ix, docs); err != nil {
		ix.Close()
		return nil, err
	}
	if err := ix.Close(); err != nil {
		return nil, err
	}

	res := &ScrubBenchResult{Records: records, Rate: core.DefaultScrubRate}
	for mode := 0; mode < 2; mode++ {
		opts := base
		if mode == 1 {
			opts.ScrubInterval = time.Millisecond
			opts.ScrubPagesPerSecond = core.DefaultScrubRate
		}
		ix, err := core.Open(path, opts)
		if err != nil {
			return nil, err
		}
		e := vistEngine(ix)
		for qi, q := range queries {
			d, _, err := timeQuery(e, q, cfg.minTime())
			if err != nil {
				ix.Close()
				return nil, err
			}
			if mode == 0 {
				res.Points = append(res.Points, ScrubPoint{Query: q, Baseline: d})
			} else {
				p := &res.Points[qi]
				p.Scrubbed = d
				p.Overhead = float64(d) / float64(p.Baseline)
			}
		}
		if mode == 1 {
			m := ix.Metrics()
			res.Passes = m.Counters["scrub.passes"]
			res.Pages = m.Counters["scrub.pages_verified"]
		}
		if err := ix.Close(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Fprint renders the scrub ablation.
func (r *ScrubBenchResult) Fprint(w io.Writer) {
	fprintHeader(w, "Ablation — online scrub cost on the query path",
		fmt.Sprintf("Same %d-record DBLP index, queried with the scrubber off and with continuous\n"+
			"passes at the default %d pages/s. Target: ≤5%% added latency.", r.Records, r.Rate))
	fmt.Fprintf(w, "  %-44s %12s %12s %10s\n", "query", "baseline", "scrubbed", "overhead")
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-44s %12s %12s %10s\n",
			p.Query, p.Baseline.Round(time.Microsecond), p.Scrubbed.Round(time.Microsecond),
			fmt.Sprintf("×%.3f", p.Overhead))
	}
	fmt.Fprintf(w, "  (%d scrub passes completed, %d pages verified during the scrubbed run)\n\n", r.Passes, r.Pages)
}
