// Package seqmatch implements the brute-force non-contiguous subsequence
// matcher the paper describes as the baseline semantics: "After both XML
// data and XML queries are converted to structure-encoded sequences, it is
// straightforward to devise a brute force algorithm to perform
// (non-contiguous) sequence matching" (Section 2).
//
// Within a single document's sequence, the virtual suffix tree is a chain,
// so S-Ancestorship reduces to position ordering; D-Ancestorship is the
// prefix-compatibility test. A document is a ViST *candidate* answer if
// and only if MatchesDoc holds for some of the query's sequences — making
// this package the executable specification the index implementations
// (core, rist, naive) are property-tested against.
package seqmatch

import (
	"vist/internal/query"
	"vist/internal/seq"
)

// MatchesDoc reports whether the document sequence s contains the query
// sequence qs as a non-contiguous subsequence with consistent
// D-Ancestorship (prefix compatibility, wildcards included).
func MatchesDoc(qs query.Seq, s seq.Sequence) bool {
	if len(qs) == 0 {
		return false
	}
	// matched[i] is the data position chosen for query element i.
	matched := make([]int, len(qs))
	var rec func(qi, from int) bool
	rec = func(qi, from int) bool {
		if qi == len(qs) {
			return true
		}
		qe := qs[qi]
		var base []seq.Symbol
		if qe.Anchor >= 0 {
			p := matched[qe.Anchor]
			base = append(append([]seq.Symbol(nil), s[p].Prefix...), s[p].Symbol)
		}
		for pos := from; pos < len(s); pos++ {
			if !elementMatches(s[pos], qe, base) {
				continue
			}
			matched[qi] = pos
			if rec(qi+1, pos+1) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}

// elementMatches is the D-Ancestorship test: the element's symbol equals
// the query symbol and its prefix extends base by exactly Stars symbols
// (plus any number when Desc).
func elementMatches(e seq.Elem, qe query.QElem, base []seq.Symbol) bool {
	if e.Symbol != qe.Symbol {
		return false
	}
	min := len(base) + qe.Stars
	if qe.Desc {
		if len(e.Prefix) < min {
			return false
		}
	} else if len(e.Prefix) != min {
		return false
	}
	for i, b := range base {
		if e.Prefix[i] != b {
			return false
		}
	}
	return true
}

// MatchesAny reports whether any of the query's sequence variants matches
// the document sequence — the candidate-set membership test.
func MatchesAny(variants []query.Seq, s seq.Sequence) bool {
	for _, qs := range variants {
		if MatchesDoc(qs, s) {
			return true
		}
	}
	return false
}
