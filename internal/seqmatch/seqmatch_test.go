package seqmatch

import (
	"testing"

	"vist/internal/query"
	"vist/internal/seq"
	"vist/internal/xmltree"
)

func encode(t *testing.T, d *seq.Dict, xml string) seq.Sequence {
	t.Helper()
	n, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	xmltree.Normalize(n, nil)
	return seq.Encode(n, d)
}

func variants(t *testing.T, d *seq.Dict, expr string) []query.Seq {
	t.Helper()
	qs, err := query.MustParse(expr).Sequences(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

func TestMatchesDocBasics(t *testing.T) {
	d := seq.NewDict()
	s := encode(t, d, `<purchase><seller ID="dell"><location>boston</location></seller><buyer><location>newyork</location></buyer></purchase>`)

	cases := []struct {
		expr string
		want bool
	}{
		{"/purchase", true},
		{"/purchase/seller", true},
		{"/purchase/seller/location", true},
		{"/purchase/location", false},
		{"//location", true},
		{"/purchase/*[location='boston']", true},
		{"/purchase/*[location='austin']", false},
		{"/purchase[buyer[location='newyork']]/seller", true},
		{"/purchase/seller[@ID='dell']", true},
		{"/purchase/seller[@ID='hp']", false},
	}
	for _, c := range cases {
		got := MatchesAny(variants(t, d, c.expr), s)
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestMatchesDocOrderSensitivity(t *testing.T) {
	// The subsequence semantics require query elements in document order;
	// a branch whose elements appear reversed in the data must NOT match
	// for a single fixed sequence — that is exactly why the conversion
	// layer emits sibling permutations.
	d := seq.NewDict()
	s := encode(t, d, "<a><c/><b/></a>") // normalized order: b, c
	// Hand-build the reversed query sequence (c before b).
	b, _ := d.Lookup("b")
	c, _ := d.Lookup("c")
	a, _ := d.Lookup("a")
	reversed := query.Seq{
		{Symbol: a, Anchor: -1},
		{Symbol: c, Anchor: 0},
		{Symbol: b, Anchor: 0},
	}
	if MatchesDoc(reversed, s) {
		t.Fatal("reversed-order sequence matched")
	}
	inOrder := query.Seq{
		{Symbol: a, Anchor: -1},
		{Symbol: b, Anchor: 0},
		{Symbol: c, Anchor: 0},
	}
	if !MatchesDoc(inOrder, s) {
		t.Fatal("in-order sequence did not match")
	}
}

func TestMatchesDocKnownFalsePositive(t *testing.T) {
	// The executable spec must exhibit the algorithm's documented false
	// positive: /a/b[c][d] "matches" a document whose c and d live under
	// two different sibling b's.
	d := seq.NewDict()
	split := encode(t, d, "<a><b><c/></b><b><d/></b></a>")
	if !MatchesAny(variants(t, d, "/a/b[c][d]"), split) {
		t.Fatal("spec does not reproduce the sibling-split false positive")
	}
	neither := encode(t, d, "<a><b><c/></b></a>")
	if MatchesAny(variants(t, d, "/a/b[c][d]"), neither) {
		t.Fatal("spec matched a document missing the d branch")
	}
}

func TestMatchesDocEmptyQuery(t *testing.T) {
	d := seq.NewDict()
	s := encode(t, d, "<a/>")
	if MatchesDoc(query.Seq{}, s) {
		t.Fatal("empty query sequence matched")
	}
}
