package gen

import (
	"fmt"
	"math/rand"

	"vist/internal/xmltree"
)

// XMarkConfig parameterizes the XMARK-like sub-structure generator. The
// paper splits the single huge XMARK record "into a set of sub structures,
// including item (objects for sale), person (buyers and sellers), open
// auction, closed auction, etc" and indexes each instance as a record; we
// generate those records directly, each rooted at site so Table 3's
// /site//… queries run verbatim.
type XMarkConfig struct {
	Items          int
	Persons        int
	OpenAuctions   int
	ClosedAuctions int
	Seed           int64
}

// Planted values referenced by Table 3's queries.
const (
	// XMarkUS: item location used by Q6.
	XMarkUS = "US"
	// XMarkDate: the date literal of Q6 and Q8.
	XMarkDate = "12/15/1999"
	// XMarkCity: the city literal of Q7.
	XMarkCity = "Pocatello"
	// XMarkPerson: the person reference of Q8.
	XMarkPerson = "person1"
)

var (
	xmarkLocations = []string{XMarkUS, "Germany", "Japan", "Korea", "France", "Brazil"}
	xmarkCities    = []string{XMarkCity, "Boise", "Seattle", "Austin", "Madison", "Ithaca"}
	xmarkWords     = []string{"vintage", "rare", "mint", "boxed", "signed", "antique", "modern", "classic"}
	xmarkRegions   = []string{"namerica", "europe", "asia", "africa", "australia", "samerica"}
)

// XMarkSchema returns the DTD-order schema for the generated records.
func XMarkSchema() []string {
	return []string{
		"site", "regions", "namerica", "europe", "asia", "africa",
		"australia", "samerica", "people", "open_auctions",
		"closed_auctions", "item", "person", "open_auction",
		"closed_auction", "@id", "@person", "@item", "location", "quantity",
		"name", "payment", "mail", "from", "to", "date", "emailaddress",
		"phone", "address", "street", "city", "country", "zipcode",
		"profile", "interest", "education", "gender", "age", "seller",
		"buyer", "itemref", "price", "type", "annotation", "author",
		"description", "happiness", "initial", "current", "reserve",
		"bidder", "increase", "time",
	}
}

// XMark generates the configured record mix, interleaved deterministically.
func XMark(cfg XMarkConfig) []*xmltree.Node {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []*xmltree.Node
	for i := 0; i < cfg.Items; i++ {
		out = append(out, xmarkItem(rng, i))
	}
	for i := 0; i < cfg.Persons; i++ {
		out = append(out, xmarkPerson(rng, i))
	}
	for i := 0; i < cfg.OpenAuctions; i++ {
		out = append(out, xmarkOpenAuction(rng, i))
	}
	for i := 0; i < cfg.ClosedAuctions; i++ {
		out = append(out, xmarkClosedAuction(rng, i))
	}
	return out
}

func xmarkDate(rng *rand.Rand) string {
	if rng.Intn(50) == 0 {
		return XMarkDate
	}
	return fmt.Sprintf("%02d/%02d/%d", 1+rng.Intn(12), 1+rng.Intn(28), 1998+rng.Intn(4))
}

func xmarkName(rng *rand.Rand) string {
	return xmarkWords[rng.Intn(len(xmarkWords))] + " " + xmarkWords[rng.Intn(len(xmarkWords))]
}

func personRef(rng *rand.Rand) string {
	if rng.Intn(40) == 0 {
		return XMarkPerson
	}
	return fmt.Sprintf("person%d", rng.Intn(5000))
}

// site wraps a record payload under the path the queries expect.
func site(payload *xmltree.Node, section string) *xmltree.Node {
	return xmltree.NewElement("site", xmltree.NewElement(section, payload))
}

// xmarkItem: /site/regions/<region>/item with a mail thread directly under
// the item (the shape Q6 = /site//item[location='US']/mail/date queries).
func xmarkItem(rng *rand.Rand, i int) *xmltree.Node {
	location := xmarkLocations[rng.Intn(len(xmarkLocations))]
	if i%40 == 0 {
		location = XMarkUS // Q6's hot records: US location + target mail date
	}
	item := xmltree.NewElement("item",
		xmltree.NewAttr("id", fmt.Sprintf("item%d", i)),
		xmltree.NewElementText("location", location),
		xmltree.NewElementText("quantity", fmt.Sprint(1+rng.Intn(5))),
		xmltree.NewElementText("name", xmarkName(rng)),
		xmltree.NewElementText("payment", "Creditcard"),
		xmltree.NewElement("description",
			xmltree.NewElementText("text", xmarkName(rng)),
		),
	)
	for m := 0; m < 1+rng.Intn(2); m++ {
		date := xmarkDate(rng)
		if m == 0 && i%40 == 0 {
			date = XMarkDate
		}
		item.Children = append(item.Children, xmltree.NewElement("mail",
			xmltree.NewElementText("from", personRef(rng)),
			xmltree.NewElementText("to", personRef(rng)),
			xmltree.NewElementText("date", date),
		))
	}
	region := xmltree.NewElement(xmarkRegions[rng.Intn(len(xmarkRegions))], item)
	return xmltree.NewElement("site", xmltree.NewElement("regions", region))
}

// xmarkPerson: /site/people/person with an address containing a city (the
// shape Q7 = /site//person/*/city[text()='Pocatello'] queries; '*' matches
// the address element).
func xmarkPerson(rng *rand.Rand, i int) *xmltree.Node {
	p := xmltree.NewElement("person",
		xmltree.NewAttr("id", fmt.Sprintf("person%d", i)),
		xmltree.NewElementText("name", xmarkName(rng)),
		xmltree.NewElementText("emailaddress", fmt.Sprintf("p%d@example.com", i)),
		xmltree.NewElement("address",
			xmltree.NewElementText("street", fmt.Sprintf("%d Main St", 1+rng.Intn(999))),
			xmltree.NewElementText("city", xmarkCities[rng.Intn(len(xmarkCities))]),
			xmltree.NewElementText("country", xmarkLocations[rng.Intn(len(xmarkLocations))]),
			xmltree.NewElementText("zipcode", fmt.Sprint(10000+rng.Intn(89999))),
		),
	)
	if rng.Intn(2) == 0 {
		p.Children = append(p.Children, xmltree.NewElement("profile",
			xmltree.NewElementText("interest", xmarkWords[rng.Intn(len(xmarkWords))]),
			xmltree.NewElementText("education", "Graduate School"),
			xmltree.NewElementText("gender", []string{"male", "female"}[rng.Intn(2)]),
			xmltree.NewElementText("age", fmt.Sprint(18+rng.Intn(60))),
		))
	}
	return site(p, "people")
}

// xmarkOpenAuction: /site/open_auctions/open_auction with bidders.
func xmarkOpenAuction(rng *rand.Rand, i int) *xmltree.Node {
	a := xmltree.NewElement("open_auction",
		xmltree.NewAttr("id", fmt.Sprintf("open%d", i)),
		xmltree.NewElement("itemref", xmltree.NewAttr("item", fmt.Sprintf("item%d", rng.Intn(5000)))),
		xmltree.NewElement("seller", xmltree.NewAttr("person", personRef(rng))),
		xmltree.NewElementText("initial", fmt.Sprintf("%d.%02d", 1+rng.Intn(200), rng.Intn(100))),
		xmltree.NewElementText("current", fmt.Sprintf("%d.%02d", 1+rng.Intn(400), rng.Intn(100))),
		xmltree.NewElementText("quantity", fmt.Sprint(1+rng.Intn(4))),
		xmltree.NewElementText("type", "Regular"),
	)
	for b := 0; b < rng.Intn(3); b++ {
		a.Children = append(a.Children, xmltree.NewElement("bidder",
			xmltree.NewElementText("time", fmt.Sprintf("%02d:%02d:%02d", rng.Intn(24), rng.Intn(60), rng.Intn(60))),
			xmltree.NewElementText("increase", fmt.Sprintf("%d.00", 1+rng.Intn(30))),
		))
	}
	return site(a, "open_auctions")
}

// xmarkClosedAuction: /site/closed_auctions/closed_auction with
// seller/buyer person references (Q8 = //closed_auction[*[person='…']]/
// date[text()='…']; '*' matches seller or buyer via their person
// attribute).
func xmarkClosedAuction(rng *rand.Rand, i int) *xmltree.Node {
	buyer := personRef(rng)
	date := xmarkDate(rng)
	if i%50 == 0 {
		// Q8's hot records: the target buyer and the target date together.
		buyer = XMarkPerson
		date = XMarkDate
	}
	a := xmltree.NewElement("closed_auction",
		xmltree.NewElement("seller", xmltree.NewAttr("person", personRef(rng))),
		xmltree.NewElement("buyer", xmltree.NewAttr("person", buyer)),
		xmltree.NewElement("itemref", xmltree.NewAttr("item", fmt.Sprintf("item%d", rng.Intn(5000)))),
		xmltree.NewElementText("price", fmt.Sprintf("%d.%02d", 1+rng.Intn(500), rng.Intn(100))),
		xmltree.NewElementText("date", date),
		xmltree.NewElementText("quantity", fmt.Sprint(1+rng.Intn(4))),
		xmltree.NewElementText("type", "Regular"),
		xmltree.NewElement("annotation",
			xmltree.NewElement("author", xmltree.NewAttr("person", personRef(rng))),
			xmltree.NewElementText("description", xmarkName(rng)),
			xmltree.NewElementText("happiness", fmt.Sprint(1+rng.Intn(10))),
		),
	)
	return site(a, "closed_auctions")
}
