package gen

import (
	"testing"

	"vist/internal/query"
	"vist/internal/seq"
	"vist/internal/treematch"
	"vist/internal/xmltree"
)

func TestSyntheticShape(t *testing.T) {
	cfg := SyntheticConfig{K: 10, J: 8, L: 30, N: 50, Seed: 1}
	docs := Synthetic(cfg)
	if len(docs) != 50 {
		t.Fatalf("got %d docs", len(docs))
	}
	for i, d := range docs {
		if d.Count() != 30 {
			t.Fatalf("doc %d has %d nodes, want 30", i, d.Count())
		}
		if d.Depth() > 10 {
			t.Fatalf("doc %d depth %d exceeds k", i, d.Depth())
		}
		if d.Name != "root" {
			t.Fatalf("doc %d root = %q", i, d.Name)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	cfg := SyntheticConfig{K: 6, J: 4, L: 12, N: 5, Seed: 42}
	a := Synthetic(cfg)
	b := Synthetic(cfg)
	for i := range a {
		xmltree.Normalize(a[i], nil)
		xmltree.Normalize(b[i], nil)
		if !xmltree.Equal(a[i], b[i]) {
			t.Fatalf("doc %d differs across runs", i)
		}
	}
}

func TestSyntheticSequenceLength(t *testing.T) {
	cfg := SyntheticConfig{K: 10, J: 8, L: 30, N: 20, Seed: 2}
	d := seq.NewDict()
	for _, doc := range Synthetic(cfg) {
		xmltree.Normalize(doc, nil)
		if got := len(seq.Encode(doc, d)); got != 30 {
			t.Fatalf("sequence length %d, want 30", got)
		}
	}
}

func TestSyntheticQueriesParse(t *testing.T) {
	cfg := SyntheticConfig{K: 10, J: 8, L: 30, N: 0, Seed: 3}
	for _, l := range []int{2, 4, 6, 8, 10, 12} {
		for _, expr := range SyntheticQueries(cfg, 10, l, 99) {
			q, err := query.Parse(expr)
			if err != nil {
				t.Fatalf("length %d: %q: %v", l, expr, err)
			}
			if n := countQueryNodes(q.Root) - 1; n != l {
				t.Fatalf("query %q has %d nodes, want %d", expr, n, l)
			}
		}
	}
}

func countQueryNodes(n *query.Node) int {
	c := 1
	for _, ch := range n.Children {
		c += countQueryNodes(ch)
	}
	return c
}

func TestSyntheticQueriesSometimesMatch(t *testing.T) {
	cfg := SyntheticConfig{K: 10, J: 8, L: 30, N: 200, Seed: 4}
	docs := Synthetic(cfg)
	queries := SyntheticQueries(cfg, 20, 4, 5)
	hits := 0
	for _, expr := range queries {
		q := query.MustParse(expr)
		for _, d := range docs {
			if treematch.Matches(q, d) {
				hits++
				break
			}
		}
	}
	if hits == 0 {
		t.Fatal("no generated query matched any generated document")
	}
}

func TestDBLPShape(t *testing.T) {
	docs := DBLP(DBLPConfig{Records: 500, Seed: 7})
	if len(docs) != 500 {
		t.Fatalf("got %d records", len(docs))
	}
	d := seq.NewDict()
	totalLen, maxDepth := 0, 0
	sawDavid, sawKey := false, false
	for _, doc := range docs {
		xmltree.Normalize(doc, xmltree.NewSchema(DBLPSchema()...))
		s := seq.Encode(doc, d)
		totalLen += len(s)
		if doc.Depth() > maxDepth {
			maxDepth = doc.Depth()
		}
		if treematch.Matches(query.MustParse("//author[text()='"+DBLPDavid+"']"), doc) {
			sawDavid = true
		}
		if treematch.Matches(query.MustParse("/book[@key='"+DBLPKey+"']"), doc) {
			sawKey = true
		}
	}
	avg := totalLen / len(docs)
	// The paper reports ≈31 for DBLP; accept a broad band.
	if avg < 15 || avg > 45 {
		t.Fatalf("average sequence length %d outside [15,45]", avg)
	}
	if maxDepth > 6 {
		t.Fatalf("record depth %d exceeds DBLP's 6", maxDepth)
	}
	if !sawDavid {
		t.Fatal("planted author never generated (Q2-Q4 would be empty)")
	}
	if !sawKey {
		t.Fatal("planted book key never generated (Q5 would be empty)")
	}
}

func TestXMarkShapeAndPlantedValues(t *testing.T) {
	docs := XMark(XMarkConfig{Items: 300, Persons: 300, OpenAuctions: 150, ClosedAuctions: 300, Seed: 9})
	if len(docs) != 1050 {
		t.Fatalf("got %d records", len(docs))
	}
	schema := xmltree.NewSchema(XMarkSchema()...)
	q6 := query.MustParse("/site//item[location='" + XMarkUS + "']/mail/date[text()='" + XMarkDate + "']")
	q7 := query.MustParse("/site//person/*/city[text()='" + XMarkCity + "']")
	q8 := query.MustParse("//closed_auction[*[person='" + XMarkPerson + "']]/date[text()='" + XMarkDate + "']")
	var hit6, hit7, hit8 int
	for _, doc := range docs {
		xmltree.Normalize(doc, schema)
		if doc.Name != "site" {
			t.Fatalf("record root = %q", doc.Name)
		}
		if treematch.Matches(q6, doc) {
			hit6++
		}
		if treematch.Matches(q7, doc) {
			hit7++
		}
		if treematch.Matches(q8, doc) {
			hit8++
		}
	}
	if hit6 == 0 || hit7 == 0 || hit8 == 0 {
		t.Fatalf("planted query hits: Q6=%d Q7=%d Q8=%d (all must be > 0)", hit6, hit7, hit8)
	}
}

func TestIMDBShapeAndPlantedValues(t *testing.T) {
	docs := IMDB(IMDBConfig{Movies: 400, Seed: 13})
	if len(docs) != 400 {
		t.Fatalf("got %d movies", len(docs))
	}
	schema := xmltree.NewSchema(IMDBSchema()...)
	qDirector := query.MustParse("/movie/director/name[text()='" + IMDBDirector + "']")
	qActor := query.MustParse("//actor/name[text()='" + IMDBActor + "']")
	var hitD, hitA int
	for _, doc := range docs {
		xmltree.Normalize(doc, schema)
		if doc.Name != "movie" {
			t.Fatalf("record root = %q", doc.Name)
		}
		if doc.Depth() > 6 {
			t.Fatalf("movie depth %d", doc.Depth())
		}
		if treematch.Matches(qDirector, doc) {
			hitD++
		}
		if treematch.Matches(qActor, doc) {
			hitA++
		}
	}
	if hitD == 0 || hitA == 0 {
		t.Fatalf("planted values missing: director=%d actor=%d", hitD, hitA)
	}
}

func TestIMDBDeterministic(t *testing.T) {
	a := IMDB(IMDBConfig{Movies: 20, Seed: 5})
	b := IMDB(IMDBConfig{Movies: 20, Seed: 5})
	for i := range a {
		xmltree.Normalize(a[i], nil)
		xmltree.Normalize(b[i], nil)
		if !xmltree.Equal(a[i], b[i]) {
			t.Fatalf("movie %d differs across runs", i)
		}
	}
}
