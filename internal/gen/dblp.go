package gen

import (
	"fmt"
	"math/rand"

	"vist/internal/xmltree"
)

// DBLPConfig parameterizes the DBLP-like record generator.
type DBLPConfig struct {
	// Records is the number of publication records.
	Records int
	// Seed makes generation deterministic.
	Seed int64
}

// Well-known values the Table 3/4 queries reference. The generator plants
// them with realistic selectivities.
const (
	// DBLPDavid appears as an author in ~1% of records (Q2–Q4).
	DBLPDavid = "David Maier"
	// DBLPKey is the exact key of one specific book (Q5).
	DBLPKey = "books/bc/MaierW88"
)

var (
	dblpTypes      = []string{"inproceedings", "article", "book", "phdthesis", "incollection"}
	dblpTypeWeight = []int{45, 35, 10, 5, 5}

	dblpFirst = []string{"David", "Mary", "John", "Wei", "Haixun", "Sanghyun", "Philip", "Grace", "Rakesh", "Jennifer", "Michael", "Laura"}
	dblpLast  = []string{"Maier", "Smith", "Wang", "Park", "Yu", "Fan", "Chen", "Widom", "Agrawal", "Stone", "Garcia", "Ullman"}

	dblpTitleWords = []string{"Indexing", "XML", "Semistructured", "Data", "Query", "Processing", "Efficient", "Dynamic", "Structures", "Trees", "Sequences", "Matching", "Databases", "Optimization", "Adaptive", "Paths"}

	dblpVenues = []string{"SIGMOD", "VLDB", "ICDE", "PODS", "TODS", "TKDE", "WebDB", "EDBT"}
)

// DBLP generates publication records shaped like the DBLP bibliography:
// one shallow record per publication (depth ≤ 6), with a key attribute,
// 1–3 authors, title, year, venue, pages, and assorted optional fields so
// the average structure-encoded sequence length lands near the paper's
// reported ≈31.
func DBLP(cfg DBLPConfig) []*xmltree.Node {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*xmltree.Node, cfg.Records)
	for i := range out {
		out[i] = dblpRecord(rng, i)
	}
	return out
}

// DBLPSchema returns the DTD-order schema for DBLP-like records.
func DBLPSchema() []string {
	return []string{
		"inproceedings", "article", "book", "phdthesis", "incollection",
		"@key", "author", "title", "year", "booktitle", "journal",
		"publisher", "school", "pages", "volume", "number", "month", "ee",
		"url", "crossref", "cite",
	}
}

func dblpRecord(rng *rand.Rand, i int) *xmltree.Node {
	typ := weighted(rng, dblpTypes, dblpTypeWeight)

	// Every 250th record is the specific book Q5 targets, giving the key
	// lookup a deterministic ≈0.4% selectivity.
	if i%250 == 0 {
		typ = "book"
	}
	key := fmt.Sprintf("%s/%s/rec%06d", typChar(typ), dblpLast[rng.Intn(len(dblpLast))], i)
	if i%250 == 0 {
		key = DBLPKey
	}
	rec := xmltree.NewElement(typ)
	rec.Children = append(rec.Children, xmltree.NewAttr("key", key))

	nAuthors := 1 + rng.Intn(3)
	for a := 0; a < nAuthors; a++ {
		name := dblpFirst[rng.Intn(len(dblpFirst))] + " " + dblpLast[rng.Intn(len(dblpLast))]
		if rng.Intn(100) == 0 {
			name = DBLPDavid
		}
		rec.Children = append(rec.Children, xmltree.NewElementText("author", name))
	}

	title := ""
	for w := 0; w < 3+rng.Intn(4); w++ {
		if w > 0 {
			title += " "
		}
		title += dblpTitleWords[rng.Intn(len(dblpTitleWords))]
	}
	rec.Children = append(rec.Children, xmltree.NewElementText("title", title))
	rec.Children = append(rec.Children, xmltree.NewElementText("year", fmt.Sprint(1970+rng.Intn(34))))

	switch typ {
	case "inproceedings", "incollection":
		rec.Children = append(rec.Children, xmltree.NewElementText("booktitle", dblpVenues[rng.Intn(len(dblpVenues))]))
		rec.Children = append(rec.Children, xmltree.NewElementText("crossref", fmt.Sprintf("conf/%s/%d", dblpVenues[rng.Intn(len(dblpVenues))], 1970+rng.Intn(34))))
	case "article":
		rec.Children = append(rec.Children, xmltree.NewElementText("journal", dblpVenues[rng.Intn(len(dblpVenues))]))
		rec.Children = append(rec.Children, xmltree.NewElementText("volume", fmt.Sprint(1+rng.Intn(40))))
		rec.Children = append(rec.Children, xmltree.NewElementText("number", fmt.Sprint(1+rng.Intn(12))))
	case "book":
		rec.Children = append(rec.Children, xmltree.NewElementText("publisher", "ACM Press"))
	case "phdthesis":
		rec.Children = append(rec.Children, xmltree.NewElementText("school", "POSTECH"))
	}

	lo := 1 + rng.Intn(400)
	rec.Children = append(rec.Children, xmltree.NewElementText("pages", fmt.Sprintf("%d-%d", lo, lo+9+rng.Intn(20))))
	if rng.Intn(2) == 0 {
		rec.Children = append(rec.Children, xmltree.NewElementText("ee", fmt.Sprintf("db/%s.html#rec%06d", typ, i)))
	}
	if rng.Intn(2) == 0 {
		rec.Children = append(rec.Children, xmltree.NewElementText("url", fmt.Sprintf("http://dblp.example/rec%06d", i)))
	}
	for c := 0; c < rng.Intn(3); c++ {
		rec.Children = append(rec.Children, xmltree.NewElementText("cite", fmt.Sprintf("ref%05d", rng.Intn(99999))))
	}
	return rec
}

func typChar(typ string) string {
	switch typ {
	case "book":
		return "books/bc"
	case "article":
		return "journals"
	default:
		return "conf"
	}
}

func weighted(rng *rand.Rand, items []string, weights []int) string {
	total := 0
	for _, w := range weights {
		total += w
	}
	r := rng.Intn(total)
	for i, w := range weights {
		if r < w {
			return items[i]
		}
		r -= w
	}
	return items[len(items)-1]
}
