package gen

import (
	"fmt"
	"math/rand"

	"vist/internal/xmltree"
)

// IMDBConfig parameterizes the IMDB-like record generator. The paper names
// the Internet Movie Database alongside DBLP as an XML database that
// "contains a large set of records of the same structure"; this generator
// produces movie records in that spirit: a movie with title, year, genres,
// a director, a cast of actors with roles, and ratings.
type IMDBConfig struct {
	// Movies is the number of movie records.
	Movies int
	// Seed makes generation deterministic.
	Seed int64
}

// Planted values for selective queries over the IMDB-like corpus.
const (
	// IMDBDirector directs ~1% of movies.
	IMDBDirector = "Chantal Akerman"
	// IMDBActor appears in ~2% of casts.
	IMDBActor = "Delphine Seyrig"
	// IMDBGenre tags roughly a sixth of the movies.
	IMDBGenre = "Documentary"
)

var (
	imdbFirst  = []string{"Delphine", "Chantal", "Akira", "Agnès", "Orson", "Greta", "Satyajit", "Maya", "Jean", "Lucrecia"}
	imdbLast   = []string{"Seyrig", "Akerman", "Kurosawa", "Varda", "Welles", "Gerwig", "Ray", "Deren", "Renoir", "Martel"}
	imdbWords  = []string{"Night", "River", "Mirror", "City", "Garden", "Winter", "Voyage", "Letter", "Island", "Shadow"}
	imdbGenres = []string{IMDBGenre, "Drama", "Comedy", "Thriller", "Musical", "Western"}
	imdbRoles  = []string{"lead", "support", "cameo"}
)

// IMDBSchema returns the DTD-order schema for movie records.
func IMDBSchema() []string {
	return []string{
		"movie", "@id", "@year", "title", "genre", "director", "name",
		"cast", "actor", "@role", "rating", "@source", "runtime", "country",
	}
}

// IMDB generates movie records.
func IMDB(cfg IMDBConfig) []*xmltree.Node {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*xmltree.Node, cfg.Movies)
	for i := range out {
		out[i] = imdbMovie(rng, i)
	}
	return out
}

func imdbName(rng *rand.Rand) string {
	return imdbFirst[rng.Intn(len(imdbFirst))] + " " + imdbLast[rng.Intn(len(imdbLast))]
}

func imdbMovie(rng *rand.Rand, i int) *xmltree.Node {
	title := imdbWords[rng.Intn(len(imdbWords))] + " of the " + imdbWords[rng.Intn(len(imdbWords))]
	m := xmltree.NewElement("movie",
		xmltree.NewAttr("id", fmt.Sprintf("tt%07d", i)),
		xmltree.NewAttr("year", fmt.Sprint(1920+rng.Intn(85))),
		xmltree.NewElementText("title", title),
	)
	for g := 0; g < 1+rng.Intn(2); g++ {
		m.Children = append(m.Children, xmltree.NewElementText("genre", imdbGenres[rng.Intn(len(imdbGenres))]))
	}
	director := imdbName(rng)
	if i%100 == 0 {
		director = IMDBDirector
	}
	m.Children = append(m.Children, xmltree.NewElement("director",
		xmltree.NewElementText("name", director)))
	cast := xmltree.NewElement("cast")
	for a := 0; a < 2+rng.Intn(4); a++ {
		name := imdbName(rng)
		if a == 0 && i%50 == 0 {
			name = IMDBActor
		}
		cast.Children = append(cast.Children, xmltree.NewElement("actor",
			xmltree.NewAttr("role", imdbRoles[rng.Intn(len(imdbRoles))]),
			xmltree.NewElementText("name", name),
		))
	}
	m.Children = append(m.Children, cast)
	m.Children = append(m.Children,
		xmltree.NewElement("rating",
			xmltree.NewAttr("source", "critics"),
			xmltree.NewText(fmt.Sprintf("%d.%d", 4+rng.Intn(6), rng.Intn(10))),
		),
		xmltree.NewElementText("runtime", fmt.Sprint(60+rng.Intn(140))),
		xmltree.NewElementText("country", []string{"BE", "FR", "JP", "US", "IN", "AR"}[rng.Intn(6)]),
	)
	return m
}
