// Package query implements the XPath subset the ViST paper evaluates
// (Table 3): child steps (/), descendant steps (//), element wildcards (*),
// attribute tests (@name), branching predicates ([...]), and value
// predicates ([name='v'], [@a='v'], [text()='v']).
//
// A parsed query is a tree (Figure 2 of the paper). Sequences converts the
// tree into one or more structure-encoded query sequences (Table 2),
// applying the paper's conversion rules: preorder order, wildcard nodes
// discarded but recorded in their descendants' prefixes, and the
// identical-sibling permutation rule for branches like /A[B/C]/B/D.
package query

import (
	"errors"
	"fmt"
	"strings"
)

// Parser limits for hostile input: a path expression is operator-supplied
// text in a server setting, so its size and the work it implies are bounded
// up front. Both violations are typed; test with errors.Is.
var (
	// ErrExprTooLong reports an expression longer than MaxExprLen bytes.
	ErrExprTooLong = errors.New("query: expression too long")
	// ErrTooManySteps reports an expression with more than MaxSteps steps
	// (every name/star/value test counts, including those inside
	// predicates).
	ErrTooManySteps = errors.New("query: too many steps")
)

const (
	// MaxExprLen caps expression length in bytes. Real queries in the
	// paper's workloads are under 100 bytes; 64 KiB is beyond any sane use.
	MaxExprLen = 64 << 10
	// MaxSteps caps the number of parsed steps. Each step can cost range
	// scans downstream, so this also bounds the work a parsed query can
	// request.
	MaxSteps = 1024
)

// Axis is the edge type between a query node and its parent.
type Axis uint8

const (
	// Child is the XPath '/' axis: the node is a direct child.
	Child Axis = iota
	// Descendant is the XPath '//' axis: the node is any descendant.
	Descendant
)

func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// Kind distinguishes query node flavours.
type Kind uint8

const (
	// Name tests an element or attribute name.
	Name Kind = iota
	// Star matches exactly one element of any name.
	Star
	// Value tests text content (an attribute value or element text).
	Value
)

// Node is one node of a query tree.
type Node struct {
	Kind     Kind
	Name     string // element name, or attribute name for IsAttr nodes
	IsAttr   bool   // explicit @name test
	AnyKind  bool   // bare name in a value predicate: element or attribute
	Text     string // for Value nodes
	Axis     Axis   // edge from parent
	Children []*Node
}

// Query is a parsed path expression.
type Query struct {
	Root *Node  // synthetic root context; its children are the first steps
	Raw  string // original expression text
}

// String reconstructs a normalized path-expression form (for diagnostics).
func (q *Query) String() string { return q.Raw }

// Parse parses a path expression. Expressions longer than MaxExprLen or
// with more than MaxSteps steps are rejected with typed errors before (or
// while) building the tree, bounding parser work on hostile input.
func Parse(expr string) (*Query, error) {
	if len(expr) > MaxExprLen {
		return nil, fmt.Errorf("query: expression is %d bytes (limit %d): %w", len(expr), MaxExprLen, ErrExprTooLong)
	}
	p := &parser{in: expr}
	root := &Node{Kind: Name, Name: "<root>"}
	if _, err := p.parsePath(root, true); err != nil {
		return nil, fmt.Errorf("query: %w", err)
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("query: trailing input at offset %d: %q", p.pos, p.in[p.pos:])
	}
	return &Query{Root: root, Raw: expr}, nil
}

// MustParse is Parse for tests and examples with known-good expressions.
func MustParse(expr string) *Query {
	q, err := Parse(expr)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	in    string
	pos   int
	steps int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.in) {
		return p.in[p.pos]
	}
	return 0
}

func (p *parser) eat(c byte) bool {
	if p.peek() == c {
		p.pos++
		return true
	}
	return false
}

// parsePath parses (axis step)+ attaching the chain under owner and
// returning the final step. When absolute is true a leading axis is
// required; otherwise a missing leading axis means Child (relative paths
// inside predicates).
func (p *parser) parsePath(owner *Node, absolute bool) (*Node, error) {
	p.skipSpace()
	axis := Child
	switch {
	case strings.HasPrefix(p.in[p.pos:], "//"):
		p.pos += 2
		axis = Descendant
	case p.eat('/'):
		axis = Child
	default:
		if absolute {
			return nil, fmt.Errorf("expected '/' or '//' at offset %d", p.pos)
		}
	}
	cur := owner
	for {
		step, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		cur.Children = append(cur.Children, step)
		cur = step
		p.skipSpace()
		switch {
		case strings.HasPrefix(p.in[p.pos:], "//"):
			p.pos += 2
			axis = Descendant
		case p.eat('/'):
			axis = Child
		default:
			return cur, nil
		}
	}
}

// parseStep parses one name test plus its predicates.
func (p *parser) parseStep(axis Axis) (*Node, error) {
	p.steps++
	if p.steps > MaxSteps {
		return nil, fmt.Errorf("more than %d steps: %w", MaxSteps, ErrTooManySteps)
	}
	p.skipSpace()
	var n *Node
	switch {
	case p.eat('*'):
		n = &Node{Kind: Star, Axis: axis}
	case p.eat('@'):
		name, err := p.parseName()
		if err != nil {
			return nil, err
		}
		n = &Node{Kind: Name, Name: name, IsAttr: true, Axis: axis}
	default:
		name, err := p.parseName()
		if err != nil {
			return nil, err
		}
		if name == "text()" {
			return nil, fmt.Errorf("text() step outside a predicate at offset %d", p.pos)
		}
		n = &Node{Kind: Name, Name: name, Axis: axis}
	}
	for {
		p.skipSpace()
		if !p.eat('[') {
			return n, nil
		}
		if err := p.parsePredicate(n); err != nil {
			return nil, err
		}
		p.skipSpace()
		if !p.eat(']') {
			return nil, fmt.Errorf("missing ']' at offset %d", p.pos)
		}
	}
}

// parsePredicate parses the expression inside [...] and attaches it to
// owner as branch children.
func (p *parser) parsePredicate(owner *Node) error {
	p.skipSpace()
	// text() = 'literal' attaches a value directly to the owner.
	if strings.HasPrefix(p.in[p.pos:], "text()") {
		p.pos += len("text()")
		p.skipSpace()
		if !p.eat('=') {
			return fmt.Errorf("expected '=' after text() at offset %d", p.pos)
		}
		lit, err := p.parseLiteral()
		if err != nil {
			return err
		}
		owner.Children = append(owner.Children, &Node{Kind: Value, Text: lit, Axis: Child})
		return nil
	}
	// Shorthand: [text='v'] is accepted as a synonym for [text()='v'] when
	// followed directly by '='.
	if strings.HasPrefix(p.in[p.pos:], "text") {
		save := p.pos
		p.pos += len("text")
		p.skipSpace()
		if p.eat('=') {
			lit, err := p.parseLiteral()
			if err != nil {
				return err
			}
			owner.Children = append(owner.Children, &Node{Kind: Value, Text: lit, Axis: Child})
			return nil
		}
		p.pos = save
	}
	// Otherwise: a relative path, optionally compared to a literal.
	branch := &Node{Kind: Name, Name: "<pred>"}
	tip, err := p.parsePath(branch, false)
	if err != nil {
		return err
	}
	p.skipSpace()
	if p.eat('=') {
		lit, err := p.parseLiteral()
		if err != nil {
			return err
		}
		// Bare names in value predicates may denote either an element or an
		// attribute; symbol resolution decides (or tries both).
		if tip.Kind == Name && !tip.IsAttr {
			tip.AnyKind = true
		}
		tip.Children = append(tip.Children, &Node{Kind: Value, Text: lit, Axis: Child})
	}
	owner.Children = append(owner.Children, branch.Children...)
	return nil
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.' || c == ':' || c == '#'
}

func (p *parser) parseName() (string, error) {
	start := p.pos
	for p.pos < len(p.in) && isNameByte(p.in[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("expected a name at offset %d", start)
	}
	name := p.in[start:p.pos]
	// Swallow the () of text().
	if name == "text" && strings.HasPrefix(p.in[p.pos:], "()") {
		p.pos += 2
		return "text()", nil
	}
	return name, nil
}

func (p *parser) parseLiteral() (string, error) {
	p.skipSpace()
	q := p.peek()
	if q != '\'' && q != '"' {
		return "", fmt.Errorf("expected a quoted literal at offset %d", p.pos)
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] != q {
		p.pos++
	}
	if p.pos == len(p.in) {
		return "", fmt.Errorf("unterminated literal starting at offset %d", start-1)
	}
	lit := p.in[start:p.pos]
	p.pos++
	return lit, nil
}
