package query

import (
	"errors"
	"fmt"
	"sort"

	"vist/internal/seq"
	"vist/internal/xmltree"
)

// QElem is one element of a structure-encoded query sequence (Table 2 of
// the paper). Instead of materializing '*' and '//' placeholders inside a
// textual prefix, each element records how its prefix relates to the prefix
// of its nearest retained ancestor: the concrete base path is the ancestor's
// matched path, extended by exactly Stars unknown symbols, plus any number
// of further unknown symbols when Desc is set.
type QElem struct {
	// Symbol to match (element/attribute name symbol or hashed value).
	Symbol seq.Symbol
	// Anchor is the index (within the same Seq) of the nearest retained
	// ancestor element, or -1 when anchored at the document root.
	Anchor int
	// Stars counts '*' wildcard nodes between the anchor and this element.
	Stars int
	// Desc reports whether a '//' axis occurs between the anchor and this
	// element, allowing extra path symbols beyond Stars.
	Desc bool
}

// Seq is a structure-encoded query sequence, in preorder.
type Seq []QElem

// IsChain reports whether every element anchors on its immediate
// predecessor — i.e. the sequence describes one linear root path with no
// branching. Chains admit a direct evaluation strategy: the final
// element's prefix transitively encodes every ancestor constraint, so a
// planner can answer the whole sequence from the final element's
// D-Ancestor entries alone.
func (s Seq) IsChain() bool {
	for i, qe := range s {
		if qe.Anchor != i-1 {
			return false
		}
	}
	return true
}

// ErrTooManyVariants is wrapped by conversion errors when a query expands
// past the variant cap; callers can fall back to Disassemble (errors.Is).
var ErrTooManyVariants = errors.New("too many sequence variants")

// DefaultMaxVariants bounds the number of sequences a single query may
// expand into (identical-sibling permutations × element/attribute name
// ambiguity). The paper notes that queries with many identical branch
// children can be disassembled and joined instead; we surface an error so
// the caller can choose.
const DefaultMaxVariants = 64

// Sequences converts the query into its structure-encoded sequences,
// resolving names against d and ordering branches with the same comparator
// used to normalize documents (schema order, else lexicographic). The
// result is empty (with a nil error) when some query name does not occur in
// the dictionary at all — no document can match.
func (q *Query) Sequences(d *seq.Dict, schema *xmltree.Schema) ([]Seq, error) {
	return q.SequencesMax(d, schema, DefaultMaxVariants)
}

// SequencesMax is Sequences with an explicit variant cap.
func (q *Query) SequencesMax(d *seq.Dict, schema *xmltree.Schema, maxVariants int) ([]Seq, error) {
	// Resolve name ambiguity (bare names in value predicates may be
	// elements or attributes) into concrete trees.
	variants, ok := resolve(q.Root, d)
	if !ok {
		return nil, nil
	}
	var out []Seq
	for _, v := range variants {
		seqs, err := emitAll(v, schema, maxVariants)
		if err != nil {
			return nil, err
		}
		out = append(out, seqs...)
		if len(out) > maxVariants {
			return nil, fmt.Errorf("query: %q expands to more than %d sequences; disassemble the branch and join instead: %w", q.Raw, maxVariants, ErrTooManyVariants)
		}
	}
	return out, nil
}

// rnode is a resolved query node: names replaced by symbols.
type rnode struct {
	kind     Kind
	sym      seq.Symbol // for Name nodes: resolved symbol; for Value: hash
	name     string     // retained for ordering
	desc     bool       // axis from parent is Descendant
	children []*rnode
}

// resolve expands AnyKind names into element/attribute alternatives and
// maps every name to a symbol. ok is false when some name cannot resolve at
// all.
func resolve(n *Node, d *seq.Dict) ([]*rnode, bool) {
	var alts []*rnode
	switch n.Kind {
	case Star:
		alts = []*rnode{{kind: Star, desc: n.Axis == Descendant}}
	case Value:
		alts = []*rnode{{kind: Value, sym: seq.ValueSymbol(n.Text), desc: false}}
	default:
		if n.Name == "<root>" {
			alts = []*rnode{{kind: Name, name: n.Name}}
			break
		}
		var names []string
		if n.IsAttr {
			names = []string{seq.AttrName(n.Name)}
		} else if n.AnyKind {
			names = []string{n.Name, seq.AttrName(n.Name)}
		} else {
			names = []string{n.Name}
		}
		for _, name := range names {
			if sym, found := d.Lookup(name); found {
				alts = append(alts, &rnode{kind: Name, sym: sym, name: name, desc: n.Axis == Descendant})
			}
		}
		if len(alts) == 0 {
			return nil, false
		}
	}
	// Resolve children; take the cartesian product over alternatives.
	results := alts
	for _, ch := range n.Children {
		childAlts, ok := resolve(ch, d)
		if !ok {
			return nil, false
		}
		var next []*rnode
		for _, r := range results {
			for _, ca := range childAlts {
				nr := cloneR(r)
				nr.children = append(nr.children, ca)
				next = append(next, nr)
			}
		}
		results = next
	}
	return results, true
}

func cloneR(r *rnode) *rnode {
	out := &rnode{kind: r.kind, sym: r.sym, name: r.name, desc: r.desc}
	out.children = append([]*rnode(nil), r.children...)
	return out
}

// sortKey orders siblings the way document normalization does: value leaves
// first, then names ordered by schema rank when available and
// lexicographically otherwise (schema-known names before unknown ones,
// mirroring xmltree.Normalize); wildcard and descendant-axis branches sort
// last, since their match position among siblings is not determined by a
// name.
func (r *rnode) sortKey(schema *xmltree.Schema) string {
	switch {
	case r.kind == Value:
		return "\x00"
	case r.kind == Star || r.desc:
		return "\xff" + r.name
	default:
		if rank, ok := schema.Rank(r.name); ok {
			return fmt.Sprintf("\x01%08d", rank)
		}
		return "\x02" + r.name
	}
}

// emitAll produces every preorder sequence of the resolved tree, one per
// combination of permutations of identical-key sibling groups (the paper's
// Q5 = /A[B/C]/B/D rule).
func emitAll(root *rnode, schema *xmltree.Schema, maxVariants int) ([]Seq, error) {
	trees, err := orderings(root, schema, maxVariants)
	if err != nil {
		return nil, err
	}
	out := make([]Seq, 0, len(trees))
	for _, tr := range trees {
		var s Seq
		var walk func(n *rnode, anchor, stars int, desc bool)
		walk = func(n *rnode, anchor, stars int, desc bool) {
			if n.desc {
				desc = true
			}
			if n.kind == Star {
				for _, ch := range n.children {
					walk(ch, anchor, stars+1, desc)
				}
				return
			}
			idx := len(s)
			s = append(s, QElem{Symbol: n.sym, Anchor: anchor, Stars: stars, Desc: desc})
			for _, ch := range n.children {
				walk(ch, idx, 0, false)
			}
		}
		for _, ch := range tr.children {
			walk(ch, -1, 0, false)
		}
		out = append(out, s)
	}
	return out, nil
}

// orderings sorts every sibling list and expands permutations of groups of
// identical-key siblings, returning the distinct ordered trees.
func orderings(root *rnode, schema *xmltree.Schema, maxVariants int) ([]*rnode, error) {
	trees := []*rnode{root}
	// Expand node by node, breadth-first over a work list of (tree, path)
	// would be complex; instead recursively build alternatives bottom-up.
	var build func(n *rnode) ([]*rnode, error)
	build = func(n *rnode) ([]*rnode, error) {
		// Alternatives for each child subtree.
		childAlts := make([][]*rnode, len(n.children))
		for i, ch := range n.children {
			alts, err := build(ch)
			if err != nil {
				return nil, err
			}
			childAlts[i] = alts
		}
		// Cartesian product of child alternatives.
		combos := [][]*rnode{nil}
		for _, alts := range childAlts {
			var next [][]*rnode
			for _, c := range combos {
				for _, a := range alts {
					nc := append(append([]*rnode(nil), c...), a)
					next = append(next, nc)
					if len(next) > maxVariants {
						return nil, fmt.Errorf("query: more than %d branch variants: %w", maxVariants, ErrTooManyVariants)
					}
				}
			}
			combos = next
		}
		var out []*rnode
		for _, combo := range combos {
			perms, err := siblingOrders(combo, schema, maxVariants)
			if err != nil {
				return nil, err
			}
			for _, p := range perms {
				nr := &rnode{kind: n.kind, sym: n.sym, name: n.name, desc: n.desc, children: p}
				out = append(out, nr)
				if len(out) > maxVariants {
					return nil, fmt.Errorf("query: more than %d branch variants: %w", maxVariants, ErrTooManyVariants)
				}
			}
		}
		return out, nil
	}
	var out []*rnode
	for _, tr := range trees {
		alts, err := build(tr)
		if err != nil {
			return nil, err
		}
		out = append(out, alts...)
	}
	return out, nil
}

// siblingOrders sorts children by key and returns every permutation of each
// group of identical keys (only groups of size > 1 multiply the output).
func siblingOrders(children []*rnode, schema *xmltree.Schema, maxVariants int) ([][]*rnode, error) {
	sorted := append([]*rnode(nil), children...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].sortKey(schema) < sorted[j].sortKey(schema) })
	// Identify identical-key groups.
	type group struct{ start, end int }
	var groups []group
	for i := 0; i < len(sorted); {
		j := i + 1
		for j < len(sorted) && sorted[j].sortKey(schema) == sorted[i].sortKey(schema) {
			j++
		}
		if j-i > 1 {
			groups = append(groups, group{i, j})
		}
		i = j
	}
	results := [][]*rnode{sorted}
	for _, g := range groups {
		var next [][]*rnode
		for _, base := range results {
			perms := permutations(base[g.start:g.end])
			for _, p := range perms {
				nb := append([]*rnode(nil), base...)
				copy(nb[g.start:g.end], p)
				next = append(next, nb)
				if len(next) > maxVariants {
					return nil, fmt.Errorf("query: more than %d sibling permutations: %w", maxVariants, ErrTooManyVariants)
				}
			}
		}
		results = next
	}
	return results, nil
}

// permutations returns all orderings of items (Heap's algorithm).
func permutations(items []*rnode) [][]*rnode {
	n := len(items)
	work := append([]*rnode(nil), items...)
	var out [][]*rnode
	var heap func(k int)
	heap = func(k int) {
		if k == 1 {
			out = append(out, append([]*rnode(nil), work...))
			return
		}
		for i := 0; i < k; i++ {
			heap(k - 1)
			if k%2 == 0 {
				work[i], work[k-1] = work[k-1], work[i]
			} else {
				work[0], work[k-1] = work[k-1], work[0]
			}
		}
	}
	heap(n)
	return out
}
