package query

import (
	"errors"
	"strings"
	"testing"
)

func TestParseExprTooLong(t *testing.T) {
	expr := "/" + strings.Repeat("a", MaxExprLen)
	if _, err := Parse(expr); !errors.Is(err, ErrExprTooLong) {
		t.Fatalf("Parse(%d bytes) = %v, want ErrExprTooLong", len(expr), err)
	}
	// At the boundary the length check passes (the expression is valid).
	ok := "/" + strings.Repeat("a", MaxExprLen-1)
	if _, err := Parse(ok); err != nil {
		t.Fatalf("Parse(%d bytes): %v", len(ok), err)
	}
}

func TestParseTooManySteps(t *testing.T) {
	if _, err := Parse(strings.Repeat("/a", MaxSteps+1)); !errors.Is(err, ErrTooManySteps) {
		t.Fatalf("Parse(%d steps) = %v, want ErrTooManySteps", MaxSteps+1, err)
	}
	if _, err := Parse(strings.Repeat("/a", MaxSteps)); err != nil {
		t.Fatalf("Parse(%d steps): %v", MaxSteps, err)
	}
	// Predicate steps count toward the same limit.
	deepPred := "/a" + strings.Repeat("[b]", MaxSteps)
	if _, err := Parse(deepPred); !errors.Is(err, ErrTooManySteps) {
		t.Fatalf("Parse(predicate-heavy) = %v, want ErrTooManySteps", err)
	}
}

// FuzzQueryParse hammers the expression parser with arbitrary input: it must
// return a tree or an error, never panic or run unbounded. Accepted
// expressions must round-trip through the step-count invariant.
func FuzzQueryParse(f *testing.F) {
	for _, seed := range []string{
		"/a/b/c",
		"//a//*[@b='c']",
		"/a[b/c][text()='x']//d",
		"/purchase//item[@manufacturer='intel']",
		"/a[" + strings.Repeat("b[", 40) + strings.Repeat("]", 40) + "]",
		strings.Repeat("//*", 60),
		"/a[text='v']",
		"////",
		"/@a/@b",
		"/a['unterminated",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		q, err := Parse(expr)
		if err != nil {
			return
		}
		// Accepted queries satisfy the structural bounds.
		if len(expr) > MaxExprLen {
			t.Fatalf("accepted %d-byte expression past MaxExprLen", len(expr))
		}
		steps := 0
		var count func(n *Node)
		count = func(n *Node) {
			for _, ch := range n.Children {
				if ch.Kind != Value {
					steps++
				}
				count(ch)
			}
		}
		count(q.Root)
		if steps > MaxSteps {
			t.Fatalf("accepted query with %d steps past MaxSteps %d", steps, MaxSteps)
		}
	})
}
