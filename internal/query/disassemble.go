package query

import (
	"errors"
	"fmt"
)

// Disassemble splits a query tree into one single-path query per
// root-to-leaf path. The paper prescribes this as the fallback for branch
// queries whose identical-sibling permutations would explode: "we can
// choose to disassemble the tree at the branch into multiple trees, and
// use join operations to combine their results" (Section 2; its footnote
// notes that for Q5 each split tree is a single path). Intersecting the
// per-path document sets yields a candidate superset of the whole-tree
// match, consistent with ViST's candidate semantics.
func Disassemble(q *Query) []*Query {
	var out []*Query
	var walk func(n *Node, acc []*Node)
	walk = func(n *Node, acc []*Node) {
		flat := &Node{
			Kind:    n.Kind,
			Name:    n.Name,
			IsAttr:  n.IsAttr,
			AnyKind: n.AnyKind,
			Text:    n.Text,
			Axis:    n.Axis,
		}
		acc = append(acc, flat)
		if len(n.Children) == 0 {
			// Chain the accumulated nodes into a fresh single-path tree.
			root := &Node{Kind: Name, Name: "<root>"}
			cur := root
			for _, link := range acc {
				c := *link // copy; a node may appear on several paths
				c.Children = nil
				cur.Children = []*Node{&c}
				cur = cur.Children[0]
			}
			// Number the paths so each part has a distinct Raw: caches
			// keyed by query text must not conflate sibling splits.
			out = append(out, &Query{Root: root,
				Raw: fmt.Sprintf("%s (disassembled path %d)", q.Raw, len(out)+1)})
			return
		}
		for _, ch := range n.Children {
			walk(ch, acc)
		}
	}
	for _, step := range q.Root.Children {
		walk(step, nil)
	}
	return out
}

// IsVariantCapError reports whether err came from the sequence-variant cap
// (the condition under which Disassemble applies).
func IsVariantCapError(err error) bool {
	return errors.Is(err, ErrTooManyVariants)
}
