package query

import (
	"math/rand"
	"testing"

	"vist/internal/seq"
)

func TestParseSimplePath(t *testing.T) {
	q := MustParse("/inproceedings/title")
	steps := q.Root.Children
	if len(steps) != 1 {
		t.Fatalf("root has %d steps", len(steps))
	}
	a := steps[0]
	if a.Name != "inproceedings" || a.Axis != Child || a.Kind != Name {
		t.Fatalf("first step = %+v", a)
	}
	if len(a.Children) != 1 || a.Children[0].Name != "title" {
		t.Fatalf("second step = %+v", a.Children)
	}
}

func TestParseTextPredicate(t *testing.T) {
	for _, expr := range []string{
		"/book/author[text()='David']",
		"/book/author[text='David']",
	} {
		q := MustParse(expr)
		author := q.Root.Children[0].Children[0]
		if author.Name != "author" {
			t.Fatalf("%s: step = %+v", expr, author)
		}
		if len(author.Children) != 1 || author.Children[0].Kind != Value || author.Children[0].Text != "David" {
			t.Fatalf("%s: predicate = %+v", expr, author.Children)
		}
	}
}

func TestParseStarStep(t *testing.T) {
	q := MustParse("/*/author[text()='David']")
	star := q.Root.Children[0]
	if star.Kind != Star || star.Axis != Child {
		t.Fatalf("star step = %+v", star)
	}
	if star.Children[0].Name != "author" {
		t.Fatalf("author under star = %+v", star.Children[0])
	}
}

func TestParseDescendantAxis(t *testing.T) {
	q := MustParse("//author[text()='David']")
	author := q.Root.Children[0]
	if author.Axis != Descendant || author.Name != "author" {
		t.Fatalf("author = %+v", author)
	}
	q2 := MustParse("/site//item")
	item := q2.Root.Children[0].Children[0]
	if item.Axis != Descendant || item.Name != "item" {
		t.Fatalf("item = %+v", item)
	}
}

func TestParseAttributePredicate(t *testing.T) {
	q := MustParse("/book[@key='books/bc/MaierW88']/author")
	book := q.Root.Children[0]
	if len(book.Children) != 2 {
		t.Fatalf("book children = %+v", book.Children)
	}
	key := book.Children[0]
	if !key.IsAttr || key.Name != "key" {
		t.Fatalf("key predicate = %+v", key)
	}
	if len(key.Children) != 1 || key.Children[0].Text != "books/bc/MaierW88" {
		t.Fatalf("key value = %+v", key.Children)
	}
	if book.Children[1].Name != "author" {
		t.Fatalf("author = %+v", book.Children[1])
	}
}

func TestParseBareNameValuePredicateIsAnyKind(t *testing.T) {
	q := MustParse("/book[key='k1']/author")
	key := q.Root.Children[0].Children[0]
	if !key.AnyKind || key.IsAttr {
		t.Fatalf("bare-name predicate = %+v", key)
	}
}

func TestParseNestedPredicates(t *testing.T) {
	// Q2 of Figure 2: /Purchase[Seller[Loc='boston']]/Buyer[Loc='newyork']
	q := MustParse("/purchase[seller[loc='boston']]/buyer[loc='newyork']")
	purchase := q.Root.Children[0]
	if len(purchase.Children) != 2 {
		t.Fatalf("purchase children = %d", len(purchase.Children))
	}
	seller, buyer := purchase.Children[0], purchase.Children[1]
	if seller.Name != "seller" || buyer.Name != "buyer" {
		t.Fatalf("children = %q, %q", seller.Name, buyer.Name)
	}
	loc := seller.Children[0]
	if loc.Name != "loc" || loc.Children[0].Text != "boston" {
		t.Fatalf("seller loc = %+v", loc)
	}
}

func TestParseXmarkQ8(t *testing.T) {
	q := MustParse("//closed_auction[*[person='person1']]/date[text()='12/15/1999']")
	ca := q.Root.Children[0]
	if ca.Axis != Descendant || ca.Name != "closed_auction" {
		t.Fatalf("closed_auction = %+v", ca)
	}
	if len(ca.Children) != 2 {
		t.Fatalf("closed_auction children = %d", len(ca.Children))
	}
	star := ca.Children[0]
	if star.Kind != Star || star.Children[0].Name != "person" {
		t.Fatalf("star branch = %+v", star)
	}
	date := ca.Children[1]
	if date.Name != "date" || date.Children[0].Text != "12/15/1999" {
		t.Fatalf("date = %+v", date)
	}
}

func TestParsePathInsidePredicate(t *testing.T) {
	q := MustParse("/a[b/c='v']/d")
	a := q.Root.Children[0]
	b := a.Children[0]
	if b.Name != "b" || b.Children[0].Name != "c" {
		t.Fatalf("predicate path = %+v", b)
	}
	c := b.Children[0]
	if len(c.Children) != 1 || c.Children[0].Text != "v" {
		t.Fatalf("value attaches to c: %+v", c.Children)
	}
}

func TestParsePredicateWithInnerPredicateAndValue(t *testing.T) {
	// The value must attach to the tip of the chain (c), not to its
	// predicate (d).
	q := MustParse("/a[b[d]/c='v']")
	b := q.Root.Children[0].Children[0]
	if b.Name != "b" || len(b.Children) != 2 {
		t.Fatalf("b = %+v", b)
	}
	d, c := b.Children[0], b.Children[1]
	if d.Name != "d" || len(d.Children) != 0 {
		t.Fatalf("d = %+v", d)
	}
	if c.Name != "c" || len(c.Children) != 1 || c.Children[0].Text != "v" {
		t.Fatalf("c = %+v", c)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"a/b",             // missing leading axis
		"/a[",             // unterminated predicate
		"/a[b='v]",        // unterminated literal
		"/a/b[text()]",    // text() without comparison
		"/a]/b",           // stray bracket
		"/a/text()",       // text() as a step
		"/a[@='v']",       // attribute without a name
		"/a//",            // trailing axis
		"/a[b='v'] extra", // trailing input
	}
	for _, expr := range bad {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) succeeded", expr)
		}
	}
}

func TestParseWhitespaceTolerant(t *testing.T) {
	q, err := Parse("/a[ b = 'v' ] / c")
	if err != nil {
		t.Fatalf("Parse with spaces: %v", err)
	}
	a := q.Root.Children[0]
	if a.Children[0].Name != "b" || a.Children[1].Name != "c" {
		t.Fatalf("parsed = %+v", a.Children)
	}
}

// --- sequence conversion ---------------------------------------------------

// dictWith interns the given names.
func dictWith(names ...string) *seq.Dict {
	d := seq.NewDict()
	for _, n := range names {
		d.Intern(n)
	}
	return d
}

func TestSequencesSimplePath(t *testing.T) {
	d := dictWith("purchase", "seller", "item", "manufacturer")
	q := MustParse("/purchase/seller/item/manufacturer")
	seqs, err := q.Sequences(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 {
		t.Fatalf("got %d sequences", len(seqs))
	}
	s := seqs[0]
	if len(s) != 4 {
		t.Fatalf("sequence length %d", len(s))
	}
	for i, e := range s {
		if e.Anchor != i-1 || e.Stars != 0 || e.Desc {
			t.Fatalf("element %d = %+v", i, e)
		}
	}
	P, _ := d.Lookup("purchase")
	if s[0].Symbol != P {
		t.Fatalf("first symbol = %v", s[0].Symbol)
	}
}

func TestSequencesUnknownNameMeansEmpty(t *testing.T) {
	d := dictWith("purchase")
	q := MustParse("/purchase/unknownelement")
	seqs, err := q.Sequences(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 0 {
		t.Fatalf("expected no sequences, got %d", len(seqs))
	}
}

func TestSequencesStar(t *testing.T) {
	// Q3: /purchase/*[loc='v'] → (P,)(L,P*)(v,P*L)
	d := dictWith("purchase", "loc")
	q := MustParse("/purchase/*[loc='boston']")
	seqs, err := q.Sequences(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 {
		t.Fatalf("got %d sequences", len(seqs))
	}
	s := seqs[0]
	if len(s) != 3 {
		t.Fatalf("sequence = %+v", s)
	}
	// loc is anchored at purchase with one star.
	if s[1].Anchor != 0 || s[1].Stars != 1 || s[1].Desc {
		t.Fatalf("loc elem = %+v", s[1])
	}
	// the value is anchored at loc with no wildcards.
	if s[2].Anchor != 1 || s[2].Stars != 0 || s[2].Desc {
		t.Fatalf("value elem = %+v", s[2])
	}
	if s[2].Symbol != seq.ValueSymbol("boston") {
		t.Fatalf("value symbol = %v", s[2].Symbol)
	}
}

func TestSequencesDescendant(t *testing.T) {
	// Q4: /purchase//item[manufacturer='v']
	d := dictWith("purchase", "item", "manufacturer")
	q := MustParse("/purchase//item[manufacturer='intel']")
	seqs, err := q.Sequences(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := seqs[0]
	if len(s) != 4 {
		t.Fatalf("sequence = %+v", s)
	}
	if s[1].Anchor != 0 || !s[1].Desc || s[1].Stars != 0 {
		t.Fatalf("item elem = %+v", s[1])
	}
	if s[2].Desc || s[2].Anchor != 1 {
		t.Fatalf("manufacturer elem = %+v", s[2])
	}
}

func TestSequencesLeadingDescendant(t *testing.T) {
	d := dictWith("author")
	q := MustParse("//author[text()='David']")
	seqs, err := q.Sequences(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := seqs[0]
	if s[0].Anchor != -1 || !s[0].Desc {
		t.Fatalf("leading // elem = %+v", s[0])
	}
}

func TestSequencesStarAfterDescendant(t *testing.T) {
	// Q7: /site//person/*/city[text()='Pocatello']
	d := dictWith("site", "person", "city")
	q := MustParse("/site//person/*/city[text()='Pocatello']")
	seqs, err := q.Sequences(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := seqs[0]
	if len(s) != 4 {
		t.Fatalf("sequence = %+v", s)
	}
	// city: anchored at person with exactly one star, no desc.
	if s[2].Anchor != 1 || s[2].Stars != 1 || s[2].Desc {
		t.Fatalf("city elem = %+v", s[2])
	}
}

func TestSequencesBranchOrdering(t *testing.T) {
	// Children must come out in normalized (lexicographic) order: buyer
	// before seller without a schema.
	d := dictWith("purchase", "seller", "buyer", "loc")
	q := MustParse("/purchase[seller[loc='b']]/buyer[loc='n']")
	seqs, err := q.Sequences(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 {
		t.Fatalf("got %d sequences", len(seqs))
	}
	s := seqs[0]
	B, _ := d.Lookup("buyer")
	if s[1].Symbol != B {
		t.Fatalf("lexicographic order puts buyer first; got %+v", s[1])
	}
	// Both loc elements anchor at their respective parents.
	if s[2].Anchor != 1 || s[5].Anchor != 4 {
		t.Fatalf("loc anchors = %d, %d", s[2].Anchor, s[5].Anchor)
	}
}

func TestSequencesIdenticalSiblingPermutations(t *testing.T) {
	// The paper's Q5 = /A[B/C]/B/D must expand to 2 sequences.
	d := dictWith("a", "b", "c", "dd")
	q := MustParse("/a[b/c]/b/dd")
	seqs, err := q.Sequences(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d sequences, want 2", len(seqs))
	}
	C, _ := d.Lookup("c")
	D, _ := d.Lookup("dd")
	// One variant has c before dd, the other dd before c.
	firstHasC := seqs[0][2].Symbol == C
	secondHasD := seqs[1][2].Symbol == D
	if firstHasC != secondHasD {
		t.Fatalf("permutations wrong: %+v / %+v", seqs[0], seqs[1])
	}
}

func TestSequencesPermutationCap(t *testing.T) {
	d := dictWith("a", "b")
	// 6 identical children → 720 permutations > 64.
	q := MustParse("/a[b][b][b][b][b][b]/b")
	_, err := q.Sequences(d, nil)
	if err == nil {
		t.Fatal("expected a variant-cap error")
	}
}

func TestSequencesAnyKindExpansion(t *testing.T) {
	// "key" exists both as an element and as an attribute: bare-name value
	// predicates must try both.
	d := dictWith("book", "key", seq.AttrName("key"))
	q := MustParse("/book[key='k']")
	seqs, err := q.Sequences(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("got %d sequences, want 2 (element + attribute)", len(seqs))
	}
	e, _ := d.Lookup("key")
	a, _ := d.Lookup(seq.AttrName("key"))
	got := map[seq.Symbol]bool{seqs[0][1].Symbol: true, seqs[1][1].Symbol: true}
	if !got[e] || !got[a] {
		t.Fatalf("expansion symbols = %v, want {%v, %v}", got, e, a)
	}
}

func TestSequencesAnchorAlwaysEarlier(t *testing.T) {
	d := dictWith("a", "b", "c", "d", "e")
	for _, expr := range []string{
		"/a/b/c", "/a[b]/c", "//a[b[c]]/d[e]", "/a/*[b]//c",
	} {
		q := MustParse(expr)
		seqs, err := q.Sequences(d, nil)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		for _, s := range seqs {
			for i, e := range s {
				if e.Anchor >= i {
					t.Fatalf("%s: element %d anchored at %d", expr, i, e.Anchor)
				}
			}
		}
	}
}

func TestDisassemble(t *testing.T) {
	q := MustParse("/a[b/c]/b/dd")
	parts := Disassemble(q)
	if len(parts) != 2 {
		t.Fatalf("got %d parts, want 2", len(parts))
	}
	// Part 1: /a/b/c; part 2: /a/b/dd — each a pure chain.
	for i, p := range parts {
		n := p.Root
		depth := 0
		for len(n.Children) > 0 {
			if len(n.Children) != 1 {
				t.Fatalf("part %d is not a single path", i)
			}
			n = n.Children[0]
			depth++
		}
		if depth != 3 {
			t.Fatalf("part %d has depth %d", i, depth)
		}
	}
	// A disassembled part must produce exactly one sequence.
	d := dictWith("a", "b", "c", "dd")
	for i, p := range parts {
		seqs, err := p.Sequences(d, nil)
		if err != nil {
			t.Fatalf("part %d: %v", i, err)
		}
		if len(seqs) != 1 {
			t.Fatalf("part %d expands to %d sequences", i, len(seqs))
		}
	}
}

func TestDisassemblePreservesAxesAndValues(t *testing.T) {
	q := MustParse("//a[@k='v']/*/b")
	parts := Disassemble(q)
	if len(parts) != 2 {
		t.Fatalf("got %d parts", len(parts))
	}
	// First part: //a/@k/'v'.
	a := parts[0].Root.Children[0]
	if a.Axis != Descendant || a.Name != "a" {
		t.Fatalf("part 0 root step = %+v", a)
	}
	k := a.Children[0]
	if !k.IsAttr || k.Children[0].Kind != Value || k.Children[0].Text != "v" {
		t.Fatalf("part 0 attr chain = %+v", k)
	}
	// Second part: //a/*/b.
	star := parts[1].Root.Children[0].Children[0]
	if star.Kind != Star {
		t.Fatalf("part 1 star = %+v", star)
	}
}

func TestIsVariantCapError(t *testing.T) {
	d := dictWith("a", "b")
	_, err := MustParse("/a[b][b][b][b][b][b]/b").Sequences(d, nil)
	if !IsVariantCapError(err) {
		t.Fatalf("cap error not recognized: %v", err)
	}
	if IsVariantCapError(nil) {
		t.Fatal("nil recognized as cap error")
	}
}

// TestPropertySequenceInvariants checks structural invariants of the
// conversion over randomly generated query trees: every variant has one
// element per non-wildcard query node, anchors always point backwards, and
// Stars/Desc are non-negative and consistent.
func TestPropertySequenceInvariants(t *testing.T) {
	d := dictWith("a", "b", "c", "d", "e")
	rng := rand.New(rand.NewSource(99))
	names := []string{"a", "b", "c", "d", "e"}
	var build func(depth int) string
	build = func(depth int) string {
		if depth <= 0 {
			return names[rng.Intn(len(names))]
		}
		s := names[rng.Intn(len(names))]
		switch rng.Intn(4) {
		case 0:
			s = "*"
		case 1:
			s += "[" + build(depth-1) + "]"
		}
		if rng.Intn(2) == 0 {
			sep := "/"
			if rng.Intn(4) == 0 {
				sep = "//"
			}
			s += sep + build(depth-1)
		}
		return s
	}
	for trial := 0; trial < 300; trial++ {
		expr := "/" + build(3)
		q, err := Parse(expr)
		if err != nil {
			t.Fatalf("generated query %q failed to parse: %v", expr, err)
		}
		nonStar := countNonStar(q.Root) - 1 // exclude synthetic root
		seqs, err := q.Sequences(d, nil)
		if err != nil {
			if IsVariantCapError(err) {
				continue
			}
			t.Fatalf("%q: %v", expr, err)
		}
		for _, s := range seqs {
			if len(s) != nonStar {
				t.Fatalf("%q: sequence has %d elements, query has %d non-star nodes", expr, len(s), nonStar)
			}
			for i, e := range s {
				if e.Anchor >= i || e.Anchor < -1 {
					t.Fatalf("%q: element %d anchor %d", expr, i, e.Anchor)
				}
				if e.Stars < 0 {
					t.Fatalf("%q: element %d negative stars", expr, i)
				}
			}
		}
	}
}

func countNonStar(n *Node) int {
	c := 0
	if n.Kind != Star {
		c = 1
	}
	for _, ch := range n.Children {
		c += countNonStar(ch)
	}
	return c
}
