package rist

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"vist/internal/core"
	"vist/internal/naive"
	"vist/internal/treematch"

	"vist/internal/query"
	"vist/internal/xmltree"
)

func parseAll(t testing.TB, xmls []string) []*xmltree.Node {
	t.Helper()
	out := make([]*xmltree.Node, len(xmls))
	for i, x := range xmls {
		n, err := xmltree.ParseString(x)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = n
	}
	return out
}

var corpus = []string{
	`<purchase><seller ID="dell"><item name="p1" manufacturer="ibm"><item name="p2" manufacturer="intel"/></item><location>boston</location></seller><buyer ID="ibm"><location>newyork</location></buyer></purchase>`,
	`<purchase><seller ID="hp"><item name="printer" manufacturer="canon"/><location>chicago</location></seller><buyer ID="dell"><location>boston</location></buyer></purchase>`,
	`<purchase><seller ID="acme"><location>boston</location></seller></purchase>`,
}

var exprs = []string{
	"/purchase/seller/item",
	"/purchase/seller/item/item",
	"/purchase[seller[location='boston']]/buyer[location='newyork']",
	"/purchase/*[location='boston']",
	"/purchase//item[@manufacturer='intel']",
	"//location[text()='newyork']",
	"//item",
	"/purchase/seller[@ID='acme']",
}

func TestBuildAndQuery(t *testing.T) {
	docs := parseAll(t, corpus)
	r, err := Build(docs, core.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer r.Close()
	ids := r.DocIDs()
	if len(ids) != 3 {
		t.Fatalf("DocIDs = %v", ids)
	}
	got, err := r.Query("/purchase//item[@manufacturer='intel']")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []core.DocID{ids[0]}) {
		t.Fatalf("intel query: %v", got)
	}
	got, err = r.Query("/purchase/*[location='boston']")
	if err != nil {
		t.Fatal(err)
	}
	// Bulk load assigns DocIDs in trie preorder, so compare as positions.
	if pos := positions(t, got, ids); !reflect.DeepEqual(pos, []int{0, 1, 2}) {
		t.Fatalf("boston query positions: %v", pos)
	}
}

func TestFrozenAfterBuild(t *testing.T) {
	docs := parseAll(t, corpus)
	r, err := Build(docs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	extra := parseAll(t, []string{"<purchase/>"})
	if _, err := r.Core().Insert(extra[0]); err == nil {
		t.Fatal("insert into static RIST index succeeded")
	}
}

func TestRistSizeExceedsCore(t *testing.T) {
	docs := parseAll(t, corpus)
	r, err := Build(docs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.IndexSizeBytes() <= r.Core().IndexSizeBytes() {
		t.Fatal("RIST footprint must include the materialized trie")
	}
}

func randomXML(rng *rand.Rand, n int) []string {
	names := []string{"a", "b", "c", "d"}
	values := []string{"x", "y", "z"}
	var build func(depth int) string
	build = func(depth int) string {
		name := names[rng.Intn(len(names))]
		if depth <= 0 || rng.Intn(3) == 0 {
			return fmt.Sprintf("<%s>%s</%s>", name, values[rng.Intn(len(values))], name)
		}
		s := "<" + name
		if rng.Intn(3) == 0 {
			s += fmt.Sprintf(" %s=%q", names[rng.Intn(len(names))], values[rng.Intn(len(values))])
		}
		s += ">"
		for i := 0; i < 1+rng.Intn(3); i++ {
			s += build(depth - 1)
		}
		return s + "</" + name + ">"
	}
	out := make([]string, n)
	for i := range out {
		out[i] = "<r>" + build(3) + "</r>"
	}
	return out
}

// TestThreeEnginesAgree checks that ViST, RIST, and the naive suffix-tree
// matcher return identical candidate sets on random data (they implement
// the same matching semantics with different machinery), and that all three
// cover the ground-truth oracle.
func TestThreeEnginesAgree(t *testing.T) {
	xmls := randomXML(rand.New(rand.NewSource(5)), 100)

	vist, err := core.NewMem(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vistIDs := make([]core.DocID, 0, len(xmls))
	vistDocs := make([]*xmltree.Node, 0, len(xmls))
	for _, x := range xmls {
		n, err := xmltree.ParseString(x)
		if err != nil {
			t.Fatal(err)
		}
		id, err := vist.Insert(n)
		if err != nil {
			t.Fatal(err)
		}
		vistIDs = append(vistIDs, id)
		vistDocs = append(vistDocs, n)
	}

	ristDocs := parseAll(t, xmls)
	r, err := Build(ristDocs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	nv := naive.New(nil)
	nvIDs := make([]uint64, len(xmls))
	for i, x := range xmls {
		n, err := xmltree.ParseString(x)
		if err != nil {
			t.Fatal(err)
		}
		nvIDs[i] = nv.Insert(n)
	}

	testExprs := []string{
		"/r", "/r/a", "/r//c", "//d", "/r/*[a]", "/r[a][b]", "/r/a[b]/c",
		"//b[text()='x']", "/r//c[text()='y']", "//a//b", "/r[@a='x']",
	}
	for _, expr := range testExprs {
		v, err := vist.Query(expr)
		if err != nil {
			t.Fatalf("%s vist: %v", expr, err)
		}
		rr, err := r.Query(expr)
		if err != nil {
			t.Fatalf("%s rist: %v", expr, err)
		}
		nn, err := nv.Query(expr)
		if err != nil {
			t.Fatalf("%s naive: %v", expr, err)
		}
		// Translate to input positions for comparison.
		vPos := positions(t, v, vistIDs)
		rPos := positions(t, rr, r.DocIDs())
		nPos := positionsU(t, nn, nvIDs)
		if !reflect.DeepEqual(vPos, rPos) || !reflect.DeepEqual(vPos, nPos) {
			t.Errorf("%s: vist=%v rist=%v naive=%v", expr, vPos, rPos, nPos)
		}
		// Superset of the oracle.
		q := query.MustParse(expr)
		inV := map[int]bool{}
		for _, p := range vPos {
			inV[p] = true
		}
		for i, d := range vistDocs {
			if treematch.Matches(q, d) && !inV[i] {
				t.Errorf("%s: false negative at doc %d", expr, i)
			}
		}
	}
}

func positions(t testing.TB, got []core.DocID, ids []core.DocID) []int {
	t.Helper()
	rev := make(map[core.DocID]int, len(ids))
	for i, id := range ids {
		rev[id] = i
	}
	out := make([]int, 0, len(got))
	for _, g := range got {
		p, ok := rev[g]
		if !ok {
			t.Fatalf("unknown doc id %d", g)
		}
		out = append(out, p)
	}
	sortInts(out)
	return out
}

func positionsU(t testing.TB, got []uint64, ids []uint64) []int {
	t.Helper()
	rev := make(map[uint64]int, len(ids))
	for i, id := range ids {
		rev[id] = i
	}
	out := make([]int, 0, len(got))
	for _, g := range got {
		p, ok := rev[g]
		if !ok {
			t.Fatalf("unknown doc id %d", g)
		}
		out = append(out, p)
	}
	sortInts(out)
	return out
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

func TestBuildAtPersists(t *testing.T) {
	dir := t.TempDir()
	docs := parseAll(t, corpus)
	r, err := BuildAt(dir, docs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := r.DocIDs()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen through core: search still works (static labels persist).
	ix, err := core.Open(dir, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	got, err := ix.Query("/purchase//item[@manufacturer='intel']")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []core.DocID{ids[0]}) {
		t.Fatalf("reopened RIST query: %v", got)
	}
}
