// Package rist implements RIST (Relationships Indexed Suffix Tree,
// Section 3.3 of the ViST paper): a materialized sequence trie is built
// from the whole corpus, labeled statically by preorder traversal, and the
// labels are bulk-loaded into the same D-Ancestor/S-Ancestor and DocId
// B+Tree layout ViST maintains dynamically. Search is therefore shared with
// ViST (Algorithm 2); the differences RIST pays for are the materialized
// trie (extra space, Figure 11(a)) and static labels (no dynamic insertion,
// the paper's motivation for ViST).
package rist

import (
	"fmt"

	"vist/internal/core"
	"vist/internal/seq"
	"vist/internal/suffixtree"
	"vist/internal/xmltree"
)

// Index is a statically labeled ViST-compatible index.
type Index struct {
	ix   *core.Index
	tree *suffixtree.Tree
	ids  []core.DocID
}

// Build indexes the documents in one pass. The documents are normalized in
// place. opts.Training and opts.Lambda are ignored (labels are static).
func Build(docs []*xmltree.Node, opts core.Options) (*Index, error) {
	ix, err := core.NewMem(opts)
	if err != nil {
		return nil, err
	}
	return build(ix, docs)
}

// BuildAt is Build with file-backed storage in dir.
func BuildAt(dir string, docs []*xmltree.Node, opts core.Options) (*Index, error) {
	ix, err := core.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	if ix.DocCount() != 0 {
		ix.Close()
		return nil, fmt.Errorf("rist: directory already holds an index; RIST builds are one-shot")
	}
	return build(ix, docs)
}

func build(ix *core.Index, docs []*xmltree.Node) (*Index, error) {
	r := &Index{ix: ix, tree: suffixtree.New()}
	dict := ix.Dict()
	schema := ix.Schema()

	// Phase 1: trie of all sequences (doc slot i carries a placeholder ID
	// equal to i; real IDs are assigned during bulk load).
	seqs := make([]seq.Sequence, len(docs))
	maxDepth := 0
	for i, doc := range docs {
		xmltree.Normalize(doc, schema)
		s := seq.Encode(doc, dict)
		seqs[i] = s
		if d := s.MaxLen(); d > maxDepth {
			maxDepth = d
		}
		if d := s.MaxLen(); d > core.MaxDepth {
			return nil, fmt.Errorf("rist: document %d depth %d exceeds max %d", i, d, core.MaxDepth)
		}
		r.tree.Insert(s, uint64(i))
	}

	// Phase 2: static preorder labels.
	r.tree.Label()

	// Phase 3: bulk-load node records and document entries.
	var loadErr error
	r.tree.Walk(func(n, parent *suffixtree.Node) {
		if loadErr != nil {
			return
		}
		loadErr = ix.BulkInsertNode(n.Elem.Symbol, n.Elem.Prefix, n.N, n.Size, parent.N, uint32(len(n.Docs)))
	})
	if loadErr != nil {
		ix.Close()
		return nil, loadErr
	}
	r.ids = make([]core.DocID, len(docs))
	assigned := make(map[uint64]bool, len(docs))
	r.tree.Walk(func(n, _ *suffixtree.Node) {
		if loadErr != nil {
			return
		}
		for _, slot := range n.Docs {
			if assigned[slot] {
				loadErr = fmt.Errorf("rist: doc slot %d assigned twice", slot)
				return
			}
			assigned[slot] = true
			id, err := ix.BulkInsertDoc(n.N, docs[slot], seqs[slot].MaxLen())
			if err != nil {
				loadErr = err
				return
			}
			r.ids[slot] = id
		}
	})
	if loadErr != nil {
		ix.Close()
		return nil, loadErr
	}
	ix.BulkFreeze()
	return r, nil
}

// DocIDs maps input positions to assigned document IDs.
func (r *Index) DocIDs() []core.DocID { return r.ids }

// Query runs a path expression (Algorithm 2, shared with ViST).
func (r *Index) Query(expr string) ([]core.DocID, error) { return r.ix.Query(expr) }

// QueryVerified refines candidates against stored documents.
func (r *Index) QueryVerified(expr string) ([]core.DocID, error) { return r.ix.QueryVerified(expr) }

// Core exposes the underlying index (read-only use).
func (r *Index) Core() *core.Index { return r.ix }

// Tree exposes the materialized suffix tree.
func (r *Index) Tree() *suffixtree.Tree { return r.tree }

// IndexSizeBytes reports B+Tree bytes plus the materialized trie estimate —
// RIST's total footprint (Section 4: "RIST takes more space than ViST,
// since it maintains a suffix tree").
func (r *Index) IndexSizeBytes() int64 {
	return r.ix.IndexSizeBytes() + r.tree.MemoryEstimate()
}

// Close releases the underlying index.
func (r *Index) Close() error { return r.ix.Close() }
