// Package plan implements the query planner layered over the ViST index:
// a DataGuide-style path synopsis (Goldman & Widom; see PAPERS.md) that
// records every distinct root path present in the index, selectivity
// estimates derived from the synopsis and from labeling statistics, and a
// bounded plan cache keyed by expression text.
//
// The planner exists because the paper's evaluation order (Section 3.3,
// "Handling Wild Cards") turns every '//' or '*' step into one D-Ancestor
// range scan per candidate prefix length per partial match — correct, but
// quadratic in practice. The synopsis answers "which root paths actually
// occur?" exactly, so wildcard steps expand to the handful of existing
// prefixes instead of sweeping key ranges that are mostly empty.
package plan

import (
	"encoding/binary"
	"fmt"
	"sort"

	"vist/internal/seq"
)

// MaxPathLen bounds synopsis path depth; it mirrors core.MaxDepth, which
// rejects deeper documents at insert time.
const MaxPathLen = 64

// Synopsis is a trie over the distinct root paths of the indexed documents
// (structural DataGuide). Each node carries the number of element
// occurrences whose root path ends there — exactly the sum of refcounts of
// the index nodes sharing that D-Ancestor key, which is what makes the
// synopsis rebuildable from the node tree of a pre-synopsis index.
//
// Only element/attribute structure is recorded: hashed value symbols are
// leaves of the document tree, never appear inside prefixes, and would
// bloat the trie with one path per distinct text. Patterns ending in a
// value symbol expand to the value's possible parent paths instead; the
// final exact-key probe against the index decides existence.
//
// A Synopsis is not internally synchronized, but it supports persistent
// (copy-on-write) forking: Fork returns a new head sharing the whole trie,
// and mutations through either head path-copy any node belonging to an
// older generation before touching it. The core index mutates only the
// newest head under its exclusive lock; queries read the head captured in
// their pinned snapshot lock-free.
type Synopsis struct {
	root  *snode
	paths int // trie nodes with count > 0 (distinct live paths)
	gen   uint64

	// structGen advances exactly when the *path set* changes — a path's
	// count crossing zero in either direction — and is untouched by pure
	// count updates. Two synopses on the same fork lineage with equal
	// structGen therefore hold identical path sets (counts may differ),
	// which is the validity condition for cached query plans: Expand
	// targets and FeasibleLens pruning depend only on which paths exist,
	// while counts merely order the work.
	structGen uint64
}

type snode struct {
	children map[seq.Symbol]*snode
	count    uint64

	// gen is the Synopsis generation that created this node. A mutator owns
	// a node (may write it in place) only when gens match; otherwise the
	// node is shared with an older fork and must be copied first.
	gen uint64
}

// NewSynopsis returns an empty synopsis.
func NewSynopsis() *Synopsis {
	return &Synopsis{root: &snode{}}
}

// Fork returns a new synopsis head that shares the entire trie with sy.
// Mutations through the fork copy shared nodes along the touched path, so
// sy's view stays frozen — the persistent-data-structure analogue of the
// B+Tree's shadow pages. The caller must stop mutating sy itself (reads
// remain safe forever).
func (sy *Synopsis) Fork() *Synopsis {
	return &Synopsis{root: sy.root, paths: sy.paths, gen: sy.gen + 1, structGen: sy.structGen}
}

// mutable returns a node the current generation owns: n itself when gens
// match, otherwise a copy (children map and count) stamped with sy.gen.
func (sy *Synopsis) mutable(n *snode) *snode {
	if n.gen == sy.gen {
		return n
	}
	c := &snode{count: n.count, gen: sy.gen}
	if len(n.children) > 0 {
		c.children = make(map[seq.Symbol]*snode, len(n.children))
		for k, v := range n.children {
			c.children[k] = v
		}
	}
	return c
}

// Paths reports the number of distinct root paths with a live occurrence
// count.
func (sy *Synopsis) Paths() int { return sy.paths }

// StructGen identifies the synopsis's path set: it changes exactly when a
// path appears or disappears. Along one fork lineage, equal StructGen means
// an identical path set.
func (sy *Synopsis) StructGen() uint64 { return sy.structGen }

// Add adjusts the occurrence count of one root path by delta, creating trie
// nodes as needed and pruning empty ones on the way back up. Underflow
// clamps at zero (a defensive bound; consistent maintenance never
// underflows). Paths containing value symbols are ignored — values are not
// part of the structural synopsis.
func (sy *Synopsis) Add(path []seq.Symbol, delta int64) {
	if len(path) == 0 || len(path) > MaxPathLen {
		return
	}
	for _, s := range path {
		if s.IsValue() {
			return
		}
	}
	// Walk down copy-on-write, remembering the chain for pruning. Every
	// node on the chain is owned by the current generation once visited, so
	// the count update and bottom-up pruning below may mutate freely without
	// disturbing older forks. Copies made before an early "nothing to
	// decrement" return are harmless: they are exact replicas.
	sy.root = sy.mutable(sy.root)
	chain := make([]*snode, 0, len(path)+1)
	chain = append(chain, sy.root)
	n := sy.root
	for _, s := range path {
		child := n.children[s]
		if child == nil {
			if delta <= 0 {
				return // nothing to decrement
			}
			child = &snode{gen: sy.gen}
			if n.children == nil {
				n.children = make(map[seq.Symbol]*snode)
			}
			n.children[s] = child
		} else if child.gen != sy.gen {
			child = sy.mutable(child)
			n.children[s] = child
		}
		chain = append(chain, child)
		n = child
	}
	before := n.count
	if delta >= 0 {
		n.count += uint64(delta)
	} else if dec := uint64(-delta); dec >= n.count {
		n.count = 0
	} else {
		n.count -= dec
	}
	switch {
	case before == 0 && n.count > 0:
		sy.paths++
		sy.structGen++
	case before > 0 && n.count == 0:
		sy.paths--
		sy.structGen++
	}
	// Prune empty leaves bottom-up (count 0 and no children).
	for i := len(chain) - 1; i >= 1; i-- {
		nd := chain[i]
		if nd.count != 0 || len(nd.children) != 0 {
			break
		}
		delete(chain[i-1].children, path[i-1])
	}
}

// AddSequence folds one inserted document's structure-encoded sequence into
// the synopsis: every non-value element contributes +1 to its root path
// (prefix plus own symbol).
func (sy *Synopsis) AddSequence(s seq.Sequence) { sy.addSequence(s, 1) }

// RemoveSequence reverses AddSequence for a deleted document.
func (sy *Synopsis) RemoveSequence(s seq.Sequence) { sy.addSequence(s, -1) }

func (sy *Synopsis) addSequence(s seq.Sequence, delta int64) {
	path := make([]seq.Symbol, 0, MaxPathLen)
	for _, e := range s {
		if e.Symbol.IsValue() {
			continue
		}
		path = append(path[:0], e.Prefix...)
		path = append(path, e.Symbol)
		sy.Add(path, delta)
	}
}

// Count returns the occurrence count of an exact root path (zero when the
// path does not occur).
func (sy *Synopsis) Count(path []seq.Symbol) uint64 {
	n := sy.lookup(path)
	if n == nil {
		return 0
	}
	return n.count
}

func (sy *Synopsis) lookup(path []seq.Symbol) *snode {
	n := sy.root
	for _, s := range path {
		if s.IsValue() {
			return nil
		}
		n = n.children[s]
		if n == nil {
			return nil
		}
	}
	return n
}

// --- pattern expansion -------------------------------------------------------

// PatOp is the kind of one pattern item.
type PatOp uint8

const (
	// OpSym matches exactly one path symbol equal to Sym.
	OpSym PatOp = iota
	// OpAny matches exactly one path symbol of any name ('*').
	OpAny
	// OpGap matches zero or more path symbols ('//').
	OpGap
)

// PatItem is one item of a path pattern.
type PatItem struct {
	Op  PatOp
	Sym seq.Symbol
}

// Pattern is a root-anchored path pattern built from a linear query chain.
type Pattern []PatItem

// Path is one concrete expansion of a pattern: an existing root path and
// its synopsis occurrence count. For paths ending in a value symbol the
// count is the parent element's count — an upper bound, since the synopsis
// does not record values.
type Path struct {
	Syms  []seq.Symbol
	Count uint64
}

// Expand enumerates the concrete root paths matching the pattern, up to
// limit. ok is false when the expansion would exceed limit — the caller
// must fall back to range scanning; a true ok with zero paths is a proof
// that no document can match.
//
// A trailing OpSym item with a value symbol is matched against the value's
// possible parent paths (see the Synopsis doc comment); a value symbol
// anywhere else can never match an index prefix and yields zero paths.
func (sy *Synopsis) Expand(p Pattern, limit int) (paths []Path, ok bool) {
	if limit <= 0 {
		limit = 1
	}
	valueTail := false
	if n := len(p); n > 0 && p[n-1].Op == OpSym && p[n-1].Sym.IsValue() {
		valueTail = true
		p = p[:n-1]
	}
	for _, it := range p {
		if it.Op == OpSym && it.Sym.IsValue() {
			return nil, true // value symbols never occur inside prefixes
		}
	}
	overflow := false
	cur := make([]seq.Symbol, 0, MaxPathLen)
	var walk func(n *snode, i int)
	walk = func(n *snode, i int) {
		if overflow {
			return
		}
		if i == len(p) {
			// For a value tail, any existing node can parent a value leaf;
			// otherwise the path itself must have live occurrences.
			count := n.count
			if !valueTail && count == 0 {
				return
			}
			if valueTail && count == 0 && len(n.children) == 0 {
				return
			}
			if len(paths) == limit {
				overflow = true
				return
			}
			paths = append(paths, Path{Syms: append([]seq.Symbol(nil), cur...), Count: count})
			return
		}
		if len(cur) >= MaxPathLen {
			return
		}
		switch it := p[i]; it.Op {
		case OpSym:
			if child := n.children[it.Sym]; child != nil {
				cur = append(cur, it.Sym)
				walk(child, i+1)
				cur = cur[:len(cur)-1]
			}
		case OpAny:
			for s, child := range n.children {
				cur = append(cur, s)
				walk(child, i+1)
				cur = cur[:len(cur)-1]
			}
		case OpGap:
			// Zero or more symbols: match here, then descend one level and
			// retry the same item.
			walk(n, i+1)
			for s, child := range n.children {
				cur = append(cur, s)
				walk(child, i)
				cur = cur[:len(cur)-1]
			}
		}
	}
	walk(sy.root, 0)
	if overflow {
		return nil, false
	}
	// Map iteration makes discovery order nondeterministic; sort for stable
	// plans (and stable scan order). Patterns with adjacent gaps can reach
	// the same path along different item splits — drop the duplicates.
	sort.Slice(paths, func(a, b int) bool { return symsLess(paths[a].Syms, paths[b].Syms) })
	uniq := paths[:0]
	for _, pt := range paths {
		if len(uniq) == 0 || symsLess(uniq[len(uniq)-1].Syms, pt.Syms) {
			uniq = append(uniq, pt)
		}
	}
	return uniq, true
}

func symsLess(a, b []seq.Symbol) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// EachHosting enumerates, in sorted symbol order, every existing root path
// of exactly len(base)+extra symbols that extends base and can host an
// element with the given symbol: for element symbols the path must have a
// child with that symbol in the synopsis (the synopsis count invariant makes
// this exact — a child path exists iff at least one index node carries its
// D-Ancestor key); for value symbols any existing path of the right depth
// qualifies, since values are not recorded structurally and only the index
// probe can decide. fn receives a shared buffer valid only for the duration
// of the call; callers that retain the path must copy it.
//
// This is the interned-key replacement for the paper's D-Ancestor key-range
// sweep: with prefixes compacted to dictionary IDs the key space no longer
// orders by prefix content, so wildcard steps enumerate the concrete
// prefixes that exist instead of range-scanning the ones that might.
func (sy *Synopsis) EachHosting(base []seq.Symbol, extra int, sym seq.Symbol, fn func(path []seq.Symbol) error) error {
	start := sy.lookup(base)
	if start == nil {
		return nil
	}
	path := make([]seq.Symbol, len(base), len(base)+extra)
	copy(path, base)
	hosts := func(n *snode) bool {
		if sym.IsValue() {
			return true
		}
		child := n.children[sym]
		return child != nil && (child.count > 0 || len(child.children) > 0)
	}
	var walk func(n *snode, depth int) error
	walk = func(n *snode, depth int) error {
		if depth == len(base)+extra {
			if !hosts(n) {
				return nil
			}
			return fn(path)
		}
		if depth >= MaxPathLen {
			return nil
		}
		syms := make([]seq.Symbol, 0, len(n.children))
		for s := range n.children {
			syms = append(syms, s)
		}
		sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
		for _, s := range syms {
			path = append(path, s)
			err := walk(n.children[s], depth+1)
			path = path[:len(path)-1]
			if err != nil {
				return err
			}
		}
		return nil
	}
	return walk(start, len(base))
}

// FeasibleLens reports which prefix lengths can possibly produce a
// D-Ancestor match for one query element: the concrete base path (the
// anchor's matched path) extended by at least stars unknown symbols — and
// arbitrarily many more when desc is set — such that an element with the
// given symbol exists at that depth in the synopsis. The result is a
// sorted subset of [len(base)+stars, maxPlen]; lengths it omits are
// provably empty scans. For value symbols any existing path of the right
// depth qualifies (the synopsis does not record values).
func (sy *Synopsis) FeasibleLens(base []seq.Symbol, stars int, desc bool, sym seq.Symbol, maxPlen int) []int {
	start := sy.lookup(base)
	if start == nil {
		return nil
	}
	minPlen := len(base) + stars
	if !desc {
		if minPlen > maxPlen || !sy.feasibleAt(start, len(base), minPlen, sym) {
			return nil
		}
		return []int{minPlen}
	}
	var lens []int
	for plen := minPlen; plen <= maxPlen; plen++ {
		if sy.feasibleAt(start, len(base), plen, sym) {
			lens = append(lens, plen)
		}
	}
	return lens
}

// feasibleAt reports whether some descendant of n at depth plen (n itself
// sits at depth) can host an element with the given symbol.
func (sy *Synopsis) feasibleAt(n *snode, depth, plen int, sym seq.Symbol) bool {
	if plen >= MaxPathLen {
		return false
	}
	if depth == plen {
		if sym.IsValue() {
			return true // any node of the right depth may parent a value leaf
		}
		child := n.children[sym]
		return child != nil && (child.count > 0 || len(child.children) > 0)
	}
	for _, child := range n.children {
		if sy.feasibleAt(child, depth+1, plen, sym) {
			return true
		}
	}
	return false
}

// --- persistence -------------------------------------------------------------

const synopsisVersion = 1

// Encode serializes the synopsis deterministically (preorder, children in
// symbol order) for persistence alongside the index metadata.
func (sy *Synopsis) Encode() []byte {
	out := binary.AppendUvarint(nil, synopsisVersion)
	var enc func(n *snode)
	enc = func(n *snode) {
		out = binary.AppendUvarint(out, n.count)
		out = binary.AppendUvarint(out, uint64(len(n.children)))
		syms := make([]seq.Symbol, 0, len(n.children))
		for s := range n.children {
			syms = append(syms, s)
		}
		sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
		for _, s := range syms {
			out = binary.AppendUvarint(out, uint64(s))
			enc(n.children[s])
		}
	}
	enc(sy.root)
	return out
}

// DecodeSynopsis restores a synopsis produced by Encode.
func DecodeSynopsis(b []byte) (*Synopsis, error) {
	v, b, err := readUvarint(b, "version")
	if err != nil {
		return nil, err
	}
	if v != synopsisVersion {
		return nil, fmt.Errorf("plan: unsupported synopsis version %d", v)
	}
	sy := NewSynopsis()
	var dec func(n *snode, depth int) error
	dec = func(n *snode, depth int) error {
		if depth > MaxPathLen {
			return fmt.Errorf("plan: synopsis deeper than %d", MaxPathLen)
		}
		n.count, b, err = readUvarint(b, "count")
		if err != nil {
			return err
		}
		if n.count > 0 {
			sy.paths++
		}
		var nc uint64
		nc, b, err = readUvarint(b, "child count")
		if err != nil {
			return err
		}
		for i := uint64(0); i < nc; i++ {
			var s uint64
			s, b, err = readUvarint(b, "symbol")
			if err != nil {
				return err
			}
			child := &snode{}
			if n.children == nil {
				n.children = make(map[seq.Symbol]*snode)
			}
			n.children[seq.Symbol(s)] = child
			if err := dec(child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dec(sy.root, 0); err != nil {
		return nil, err
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("plan: %d trailing synopsis bytes", len(b))
	}
	return sy, nil
}

func readUvarint(b []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("plan: truncated synopsis %s", what)
	}
	return v, b[n:], nil
}
