package plan

import (
	"fmt"
	"strings"

	"vist/internal/query"
	"vist/internal/seq"
)

// Mode is the execution strategy chosen for one query sequence.
type Mode uint8

const (
	// ModeRecursive is the paper's evaluation order (Algorithm 2 recursion),
	// with the synopsis pruning each element's candidate prefix lengths.
	// Chosen for branching sequences and for chains whose expansion
	// overflowed the limit.
	ModeRecursive Mode = iota
	// ModeChain answers a linear (single-path) sequence with one exact
	// D-Ancestor scan per existing concrete path of its final element. The
	// final element's prefix transitively encodes every ancestor
	// constraint, so the intermediate S-Ancestor checks are redundant for
	// chains — this is where the synopsis collapses '//' sweeps into a few
	// exact probes.
	ModeChain
	// ModeEmpty is a plan-time proof that the sequence matches nothing: some
	// required path pattern has no expansion in the synopsis.
	ModeEmpty
)

func (m Mode) String() string {
	switch m {
	case ModeChain:
		return "chain"
	case ModeEmpty:
		return "empty"
	default:
		return "recursive"
	}
}

// EstUnknown marks a sequence whose cardinality the synopsis could not
// bound (pattern expansion overflowed).
const EstUnknown = ^uint64(0)

// DefaultExpandLimit bounds how many concrete paths a single pattern may
// expand into before the planner falls back to range scanning. Past a few
// hundred exact probes, the paper's partial-prefix range scans win again.
const DefaultExpandLimit = 256

// Target is one exact D-Ancestor probe of a chain plan: scan the index
// entries whose element has this symbol and exactly this prefix.
type Target struct {
	Sym    seq.Symbol
	Prefix []seq.Symbol
	Count  uint64 // synopsis occurrence estimate (upper bound for value leaves)
}

// SeqPlan is the chosen strategy for one query sequence.
type SeqPlan struct {
	Mode    Mode
	Targets []Target // ModeChain: the exact probes, in key order
	Est     uint64   // estimated matching element occurrences; EstUnknown when unbounded
	Why     string   // one-phrase rationale for Explain output
}

// Plan is a full query plan: one SeqPlan per sequence variant, plus the
// execution order (most selective sequence first, so budgeted runs spend
// their pages where matches are likely and empty proofs cost nothing).
type Plan struct {
	SeqPlans []SeqPlan
	Order    []int // indices into SeqPlans/the seqs slice, by ascending Est
}

// Estimator supplies a fallback cardinality signal when the synopsis
// cannot bound a pattern: the trained occurrence count of a symbol from
// the labeling statistics (zero, false when untrained or unknown).
type Estimator interface {
	SymbolCount(sym seq.Symbol) (uint64, bool)
}

// Build plans the given sequence variants against the synopsis. est may be
// nil. The synopsis must not be mutated while Build runs (the core index
// guarantees this by planning under its lock).
func Build(seqs []query.Seq, sy *Synopsis, est Estimator) *Plan {
	p := &Plan{SeqPlans: make([]SeqPlan, len(seqs)), Order: make([]int, len(seqs))}
	for i, qs := range seqs {
		p.SeqPlans[i] = buildSeq(qs, sy, est)
		p.Order[i] = i
	}
	// Stable selectivity order: ModeEmpty (Est 0) first, unknowns last.
	ord := p.Order
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0 && p.SeqPlans[ord[j]].Est < p.SeqPlans[ord[j-1]].Est; j-- {
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
	return p
}

func buildSeq(qs query.Seq, sy *Synopsis, est Estimator) SeqPlan {
	if len(qs) == 0 {
		return SeqPlan{Mode: ModeEmpty, Est: 0, Why: "empty sequence"}
	}
	if qs.IsChain() {
		pat := chainPattern(qs, len(qs))
		paths, ok := sy.Expand(pat, DefaultExpandLimit)
		if !ok {
			return SeqPlan{Mode: ModeRecursive, Est: fallbackEst(qs, est), Why: "chain expansion overflow"}
		}
		if len(paths) == 0 {
			return SeqPlan{Mode: ModeEmpty, Est: 0, Why: "no synopsis path matches"}
		}
		sp := SeqPlan{Mode: ModeChain, Why: fmt.Sprintf("%d synopsis path(s)", len(paths))}
		for _, pt := range paths {
			sym := qs[len(qs)-1].Symbol
			syms := pt.Syms
			if !sym.IsValue() {
				// The expansion's last symbol is the final element itself;
				// the probe key wants (symbol, parent prefix).
				syms = syms[:len(syms)-1]
			}
			sp.Targets = append(sp.Targets, Target{Sym: sym, Prefix: syms, Count: pt.Count})
			sp.Est = satAdd(sp.Est, pt.Count)
		}
		return sp
	}
	// Branching sequence: the recursion must run, but a leaf chain with no
	// synopsis expansion proves the whole sequence empty (every full match
	// embeds each root-to-leaf chain). Est is the tightest leaf-chain bound.
	sp := SeqPlan{Mode: ModeRecursive, Est: EstUnknown, Why: "branching query"}
	for _, leaf := range leaves(qs) {
		pat := anchorChainPattern(qs, leaf)
		paths, ok := sy.Expand(pat, DefaultExpandLimit)
		if !ok {
			continue
		}
		if len(paths) == 0 {
			return SeqPlan{Mode: ModeEmpty, Est: 0, Why: "a branch has no synopsis path"}
		}
		var sum uint64
		for _, pt := range paths {
			sum = satAdd(sum, pt.Count)
		}
		if sum < sp.Est {
			sp.Est = sum
		}
	}
	if sp.Est == EstUnknown {
		sp.Est = fallbackEst(qs, est)
	}
	return sp
}

// satAdd adds estimates saturating just below EstUnknown, so sums of known
// estimates never collide with the unknown sentinel.
func satAdd(a, b uint64) uint64 {
	if s := a + b; s >= a && s != EstUnknown {
		return s
	}
	return EstUnknown - 1
}

// fallbackEst estimates a sequence's cardinality from labeling statistics
// when the synopsis could not bound it: the trained occurrence count of the
// rarest element symbol. The absolute scale is irrelevant — Build only
// compares estimates against each other to order execution.
func fallbackEst(qs query.Seq, est Estimator) uint64 {
	if est == nil {
		return EstUnknown
	}
	min := EstUnknown
	for _, qe := range qs {
		if c, ok := est.SymbolCount(qe.Symbol); ok && c < min {
			min = c
		}
	}
	if min == EstUnknown {
		return EstUnknown
	}
	// Keep statistics-derived estimates above exact synopsis counts of the
	// same magnitude ordering but below "no idea at all".
	return min
}

// chainPattern builds the root path pattern of elements 0..n-1 of a linear
// chain: per element, a gap for '//', one any-item per '*', then the
// symbol. Unknown symbols from '*' and '//' are interchangeable within a
// prefix, so item order within an element does not matter.
func chainPattern(qs query.Seq, n int) Pattern {
	var pat Pattern
	for i := 0; i < n; i++ {
		pat = appendElemPattern(pat, qs[i])
	}
	return pat
}

// anchorChainPattern builds the pattern of the root-to-leaf chain ending at
// element leaf, following Anchor links upward.
func anchorChainPattern(qs query.Seq, leaf int) Pattern {
	var idxs []int
	for i := leaf; i >= 0; i = qs[i].Anchor {
		idxs = append(idxs, i)
	}
	var pat Pattern
	for i := len(idxs) - 1; i >= 0; i-- {
		pat = appendElemPattern(pat, qs[idxs[i]])
	}
	return pat
}

func appendElemPattern(pat Pattern, qe query.QElem) Pattern {
	if qe.Desc {
		pat = append(pat, PatItem{Op: OpGap})
	}
	for s := 0; s < qe.Stars; s++ {
		pat = append(pat, PatItem{Op: OpAny})
	}
	return append(pat, PatItem{Op: OpSym, Sym: qe.Symbol})
}

// leaves returns the indices of sequence elements no other element anchors
// on — the query tree's leaves.
func leaves(qs query.Seq) []int {
	anchored := make([]bool, len(qs))
	for _, qe := range qs {
		if qe.Anchor >= 0 {
			anchored[qe.Anchor] = true
		}
	}
	var out []int
	for i := range qs {
		if !anchored[i] {
			out = append(out, i)
		}
	}
	return out
}

// Describe renders the plan for Explain output, resolving symbols through
// d. One line per sequence, in execution order.
func (p *Plan) Describe(d *seq.Dict) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %d sequence(s)", len(p.SeqPlans))
	for _, i := range p.Order {
		sp := &p.SeqPlans[i]
		fmt.Fprintf(&b, "\n  seq %d: %s (%s", i, sp.Mode, sp.Why)
		if sp.Est != EstUnknown {
			fmt.Fprintf(&b, ", est %d", sp.Est)
		}
		b.WriteString(")")
		for t := range sp.Targets {
			tg := &sp.Targets[t]
			fmt.Fprintf(&b, "\n    probe %s", pathString(tg.Prefix, tg.Sym, d))
			if tg.Count > 0 {
				fmt.Fprintf(&b, " (count %d)", tg.Count)
			}
		}
	}
	return b.String()
}

func pathString(prefix []seq.Symbol, sym seq.Symbol, d *seq.Dict) string {
	var b strings.Builder
	for _, s := range prefix {
		b.WriteByte('/')
		b.WriteString(symName(s, d))
	}
	b.WriteByte('/')
	b.WriteString(symName(sym, d))
	return b.String()
}

func symName(s seq.Symbol, d *seq.Dict) string {
	if s.IsValue() {
		return fmt.Sprintf("v%08x", uint32(s))
	}
	if name, ok := d.Name(s); ok {
		return name
	}
	return fmt.Sprintf("#%d", uint32(s))
}
