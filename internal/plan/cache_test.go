package plan

import (
	"fmt"
	"testing"

	"vist/internal/query"
)

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	e1, e2, e3 := &Entry{SynGen: 1}, &Entry{SynGen: 2}, &Entry{SynGen: 3}
	c.Put("q1", e1)
	c.Put("q2", e2)
	if _, ok := c.Get("q1"); !ok { // q1 now most recent
		t.Fatal("q1 missing")
	}
	c.Put("q3", e3) // evicts q2, the least recently used
	if _, ok := c.Get("q2"); ok {
		t.Fatal("q2 should have been evicted")
	}
	if got, ok := c.Get("q1"); !ok || got != e1 {
		t.Fatal("q1 lost")
	}
	if got, ok := c.Get("q3"); !ok || got != e3 {
		t.Fatal("q3 lost")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}

	// Replacing in place must not evict.
	c.Put("q1", e2)
	if got, _ := c.Get("q1"); got != e2 {
		t.Fatal("q1 not replaced")
	}
	if c.Len() != 2 {
		t.Fatalf("Len after replace = %d, want 2", c.Len())
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < DefaultCacheSize+10; i++ {
		c.Put(fmt.Sprintf("q%d", i), &Entry{})
	}
	if c.Len() != DefaultCacheSize {
		t.Fatalf("Len = %d, want %d", c.Len(), DefaultCacheSize)
	}
}

func TestEntryEstimate(t *testing.T) {
	// Proven-empty entry (unknown query name): estimate 0.
	if got := (&Entry{}).Estimate(); got != 0 {
		t.Fatalf("empty entry Estimate = %d, want 0", got)
	}
	// Variant-capped or unplanned entries are unknown.
	if got := (&Entry{VariantCap: true}).Estimate(); got != EstUnknown {
		t.Fatalf("variant-cap Estimate = %d, want EstUnknown", got)
	}
	if got := (&Entry{Seqs: []query.Seq{nil}}).Estimate(); got != EstUnknown {
		t.Fatalf("planless Estimate = %d, want EstUnknown", got)
	}
	// Known sequences sum; any unknown sequence poisons the total.
	e := &Entry{Plan: &Plan{SeqPlans: []SeqPlan{{Est: 3}, {Est: 4}}}}
	if got := e.Estimate(); got != 7 {
		t.Fatalf("Estimate = %d, want 7", got)
	}
	e.Plan.SeqPlans = append(e.Plan.SeqPlans, SeqPlan{Est: EstUnknown})
	if got := e.Estimate(); got != EstUnknown {
		t.Fatalf("Estimate with unknown seq = %d, want EstUnknown", got)
	}
}
