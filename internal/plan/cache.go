package plan

import (
	"container/list"
	"sync"

	"vist/internal/query"
)

// DefaultCacheSize is the default plan cache capacity (distinct expression
// texts).
const DefaultCacheSize = 128

// Entry is one cached planning result, keyed by expression text. The
// parsed query and its sequence expansion depend only on the expression
// and the dictionary, which never shrinks — so Seqs stays reusable across
// epochs for expressions whose names were already interned; the Plan (and
// the empty-result proof encoded in nil Seqs) is valid only while SynGen
// matches the structure generation of the synopsis the query reads: the
// plan's synopsis-derived parts (chain targets, pruning, the empty proof)
// depend only on which paths exist, so pure count churn — the steady state
// of an update-heavy workload — never invalidates it.
type Entry struct {
	Query *query.Query
	// Seqs is the sequence expansion (nil when some query name was unknown
	// at plan time — an empty result at that epoch).
	Seqs []query.Seq
	// VariantCap records that sequence expansion overflowed the variant cap
	// and the query takes the disassemble-and-join route.
	VariantCap bool
	Plan       *Plan
	// Desc is the pre-rendered Describe output (built once per plan, so
	// per-query Explain costs nothing).
	Desc string
	// SynGen is the StructGen of the synopsis the plan was built against.
	SynGen uint64
}

// Estimate is the planner's result-size signal for the whole entry: the
// saturating sum of its sequences' estimates (the variants' union at query
// time). It is 0 for a proven-empty entry (unknown query name), and
// EstUnknown when no plan was built or any sequence is unbounded — callers
// ordering by Estimate run provably-empty work first and unknowns last.
func (e *Entry) Estimate() uint64 {
	if e.Plan == nil {
		if e.Seqs == nil && !e.VariantCap {
			return 0
		}
		return EstUnknown
	}
	var sum uint64
	for i := range e.Plan.SeqPlans {
		est := e.Plan.SeqPlans[i].Est
		if est == EstUnknown {
			return EstUnknown
		}
		sum = satAdd(sum, est)
	}
	return sum
}

// Cache is a bounded LRU map from expression text to planning results. It
// has its own lock because queries consult it concurrently under the
// index's shared lock.
type Cache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // front = most recent
}

type cacheItem struct {
	key string
	e   *Entry
}

// NewCache returns a cache bounded to capacity entries (DefaultCacheSize
// when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{cap: capacity, m: make(map[string]*list.Element), lru: list.New()}
}

// Get returns the cached entry for key, if any, marking it recently used.
// The caller must validate Entry.SynGen before trusting the plan.
func (c *Cache) Get(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheItem).e, true
}

// Put stores (or replaces) the entry for key, evicting the least recently
// used entry when full.
func (c *Cache) Put(key string, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*cacheItem).e = e
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= c.cap {
		if back := c.lru.Back(); back != nil {
			c.lru.Remove(back)
			delete(c.m, back.Value.(*cacheItem).key)
		}
	}
	c.m[key] = c.lru.PushFront(&cacheItem{key: key, e: e})
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
