package plan

import (
	"strings"
	"testing"

	"vist/internal/query"
	"vist/internal/seq"
)

// chainSeq builds a linear query sequence: each element anchors on its
// predecessor.
func chainSeq(elems ...query.QElem) query.Seq {
	s := make(query.Seq, len(elems))
	for i, e := range elems {
		e.Anchor = i - 1
		s[i] = e
	}
	return s
}

func TestBuildChainMode(t *testing.T) {
	sy := expandFixture()
	qs := chainSeq(query.QElem{Symbol: symA}, query.QElem{Symbol: symB})
	pl := Build([]query.Seq{qs}, sy, nil)
	sp := pl.SeqPlans[0]
	if sp.Mode != ModeChain {
		t.Fatalf("mode = %v, want chain", sp.Mode)
	}
	if len(sp.Targets) != 1 || sp.Targets[0].Sym != symB || len(sp.Targets[0].Prefix) != 1 {
		t.Fatalf("targets = %+v", sp.Targets)
	}
	if sp.Est != 2 {
		t.Fatalf("Est = %d, want 2", sp.Est)
	}
}

func TestBuildChainDescendant(t *testing.T) {
	sy := expandFixture()
	// //c: two concrete paths.
	qs := chainSeq(query.QElem{Symbol: symC, Desc: true})
	pl := Build([]query.Seq{qs}, sy, nil)
	sp := pl.SeqPlans[0]
	if sp.Mode != ModeChain || len(sp.Targets) != 2 {
		t.Fatalf("plan = %+v, want chain with 2 targets", sp)
	}
}

func TestBuildEmptyProof(t *testing.T) {
	sy := expandFixture()
	// /b does not exist at the root.
	qs := chainSeq(query.QElem{Symbol: symB})
	pl := Build([]query.Seq{qs}, sy, nil)
	if pl.SeqPlans[0].Mode != ModeEmpty {
		t.Fatalf("mode = %v, want empty", pl.SeqPlans[0].Mode)
	}
	if len(qsEmpty()) != 0 {
		t.Fatal("sanity")
	}
	pl = Build([]query.Seq{qsEmpty()}, sy, nil)
	if pl.SeqPlans[0].Mode != ModeEmpty {
		t.Fatalf("empty sequence mode = %v, want empty", pl.SeqPlans[0].Mode)
	}
}

func qsEmpty() query.Seq { return nil }

func TestBuildBranching(t *testing.T) {
	sy := expandFixture()
	// a with two children b and c: branching, stays recursive, bounded by
	// the tighter leaf chain (/a/c count 1).
	qs := query.Seq{
		{Symbol: symA, Anchor: -1},
		{Symbol: symB, Anchor: 0},
		{Symbol: symC, Anchor: 0},
	}
	pl := Build([]query.Seq{qs}, sy, nil)
	sp := pl.SeqPlans[0]
	if sp.Mode != ModeRecursive {
		t.Fatalf("mode = %v, want recursive", sp.Mode)
	}
	if sp.Est != 1 {
		t.Fatalf("Est = %d, want 1 (tightest leaf chain)", sp.Est)
	}

	// A branch with no synopsis expansion proves the sequence empty.
	qs2 := query.Seq{
		{Symbol: symA, Anchor: -1},
		{Symbol: symD, Anchor: 0},
	}
	pl = Build([]query.Seq{qs2}, sy, nil)
	if pl.SeqPlans[0].Mode != ModeEmpty {
		t.Fatalf("dead-branch mode = %v, want empty", pl.SeqPlans[0].Mode)
	}
}

func TestBuildOverflowFallsBack(t *testing.T) {
	sy := expandFixture()
	qs := chainSeq(query.QElem{Symbol: symC, Desc: true})
	pl := Build([]query.Seq{qs}, sy, fakeEst{symC: 7})
	// Re-plan with a limit the expansion cannot satisfy by constructing the
	// pattern directly.
	paths, ok := sy.Expand(chainPattern(qs, len(qs)), 1)
	if ok {
		t.Fatalf("expected overflow, got %v", paths)
	}
	// Build uses DefaultExpandLimit, so the chain still plans; the fallback
	// estimator path is exercised through buildSeq on a branching query.
	if pl.SeqPlans[0].Mode != ModeChain {
		t.Fatalf("mode = %v, want chain", pl.SeqPlans[0].Mode)
	}
}

type fakeEst map[seq.Symbol]uint64

func (f fakeEst) SymbolCount(s seq.Symbol) (uint64, bool) {
	c, ok := f[s]
	return c, ok
}

func TestBuildOrderBySelectivity(t *testing.T) {
	sy := expandFixture()
	seqs := []query.Seq{
		chainSeq(query.QElem{Symbol: symA}, query.QElem{Symbol: symB}), // est 2
		chainSeq(query.QElem{Symbol: symB}),                            // empty, est 0
		chainSeq(query.QElem{Symbol: symA}, query.QElem{Symbol: symC}), // est 1
	}
	pl := Build(seqs, sy, nil)
	want := []int{1, 2, 0}
	for i, idx := range pl.Order {
		if idx != want[i] {
			t.Fatalf("Order = %v, want %v", pl.Order, want)
		}
	}
}

func TestFallbackEstimator(t *testing.T) {
	// Branching query over an empty synopsis with adjacent gaps that
	// overflow nothing: both leaf chains expand to zero paths → empty.
	sy := NewSynopsis()
	qs := query.Seq{
		{Symbol: symA, Anchor: -1},
		{Symbol: symB, Anchor: 0},
		{Symbol: symC, Anchor: 0},
	}
	pl := Build([]query.Seq{qs}, sy, fakeEst{symA: 5, symB: 3, symC: 9})
	if pl.SeqPlans[0].Mode != ModeEmpty {
		t.Fatalf("mode = %v, want empty over empty synopsis", pl.SeqPlans[0].Mode)
	}
	// fallbackEst picks the rarest trained symbol.
	if got := fallbackEst(qs, fakeEst{symA: 5, symB: 3, symC: 9}); got != 3 {
		t.Fatalf("fallbackEst = %d, want 3", got)
	}
	if got := fallbackEst(qs, nil); got != EstUnknown {
		t.Fatalf("fallbackEst(nil) = %d, want EstUnknown", got)
	}
}

func TestSatAdd(t *testing.T) {
	if got := satAdd(2, 3); got != 5 {
		t.Fatalf("satAdd(2,3) = %d", got)
	}
	if got := satAdd(EstUnknown-1, 10); got != EstUnknown-1 {
		t.Fatalf("satAdd saturates to %d, want EstUnknown-1", got)
	}
	if got := satAdd(EstUnknown-1, 1); got != EstUnknown-1 {
		t.Fatalf("satAdd must not collide with EstUnknown, got %d", got)
	}
}

func TestDescribe(t *testing.T) {
	sy := expandFixture()
	d := seq.NewDict()
	a, b := d.Intern("a"), d.Intern("b")
	sy2 := NewSynopsis()
	sy2.Add(p(a, b), 4)
	_ = sy // fixture symbols don't match the dict; use sy2
	qs := chainSeq(query.QElem{Symbol: a}, query.QElem{Symbol: b})
	pl := Build([]query.Seq{qs}, sy2, nil)
	out := pl.Describe(d)
	for _, want := range []string{"plan: 1 sequence(s)", "chain", "probe /a/b", "count 4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Describe missing %q:\n%s", want, out)
		}
	}
}
