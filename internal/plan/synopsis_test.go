package plan

import (
	"bytes"
	"testing"

	"vist/internal/seq"
)

// Symbols for tests: plain uint32 name symbols (top bit clear).
const (
	symA seq.Symbol = 1
	symB seq.Symbol = 2
	symC seq.Symbol = 3
	symD seq.Symbol = 4
)

func p(syms ...seq.Symbol) []seq.Symbol { return syms }

func TestSynopsisAddRemove(t *testing.T) {
	sy := NewSynopsis()
	sy.Add(p(symA), 2)
	sy.Add(p(symA, symB), 1)
	sy.Add(p(symA, symB, symC), 3)

	if got := sy.Paths(); got != 3 {
		t.Fatalf("Paths = %d, want 3", got)
	}
	if got := sy.Count(p(symA, symB, symC)); got != 3 {
		t.Fatalf("Count(a/b/c) = %d, want 3", got)
	}
	if got := sy.Count(p(symA, symC)); got != 0 {
		t.Fatalf("Count(a/c) = %d, want 0", got)
	}

	// Removing the leaf path prunes its trie node but keeps live ancestors.
	sy.Add(p(symA, symB, symC), -3)
	if got := sy.Paths(); got != 2 {
		t.Fatalf("after removal Paths = %d, want 2", got)
	}
	if got := sy.Count(p(symA, symB)); got != 1 {
		t.Fatalf("Count(a/b) = %d, want 1", got)
	}

	// Underflow clamps at zero instead of wrapping.
	sy.Add(p(symA), -100)
	if got := sy.Count(p(symA)); got != 0 {
		t.Fatalf("after underflow Count(a) = %d, want 0", got)
	}
	// a's node must survive (b beneath it is live) even with count 0.
	if got := sy.Count(p(symA, symB)); got != 1 {
		t.Fatalf("Count(a/b) after parent underflow = %d, want 1", got)
	}

	// Decrementing a path that never existed is a no-op, not a trie mutation.
	sy.Add(p(symD, symD), -1)
	if got := sy.Count(p(symD, symD)); got != 0 {
		t.Fatalf("Count(d/d) = %d, want 0", got)
	}
}

func TestSynopsisIgnoresValuePathsAndBadLengths(t *testing.T) {
	sy := NewSynopsis()
	v := seq.ValueSymbol("x")
	sy.Add(p(symA, v), 1)
	sy.Add(nil, 1)
	long := make([]seq.Symbol, MaxPathLen+1)
	for i := range long {
		long[i] = symA
	}
	sy.Add(long, 1)
	if sy.Paths() != 0 {
		t.Fatalf("Paths = %d, want 0 (value/empty/overlong paths ignored)", sy.Paths())
	}
}

func TestSynopsisSequenceFold(t *testing.T) {
	sy := NewSynopsis()
	s := seq.Sequence{
		{Symbol: symA, Prefix: nil},
		{Symbol: symB, Prefix: p(symA)},
		{Symbol: seq.ValueSymbol("v"), Prefix: p(symA, symB)},
		{Symbol: symB, Prefix: p(symA)},
	}
	sy.AddSequence(s)
	if got := sy.Count(p(symA, symB)); got != 2 {
		t.Fatalf("Count(a/b) = %d, want 2 (two b occurrences)", got)
	}
	if got := sy.Paths(); got != 2 {
		t.Fatalf("Paths = %d, want 2 (value leaf not recorded)", got)
	}
	sy.RemoveSequence(s)
	if got := sy.Paths(); got != 0 {
		t.Fatalf("Paths after RemoveSequence = %d, want 0", got)
	}
}

// fixture: /a, /a/b(2), /a/b/c, /a/c, /d/b
func expandFixture() *Synopsis {
	sy := NewSynopsis()
	sy.Add(p(symA), 1)
	sy.Add(p(symA, symB), 2)
	sy.Add(p(symA, symB, symC), 1)
	sy.Add(p(symA, symC), 1)
	sy.Add(p(symD, symB), 1)
	return sy
}

func pat(items ...PatItem) Pattern { return items }
func sym(s seq.Symbol) PatItem     { return PatItem{Op: OpSym, Sym: s} }
func any() PatItem                 { return PatItem{Op: OpAny} }
func gap() PatItem                 { return PatItem{Op: OpGap} }

func TestExpandExact(t *testing.T) {
	sy := expandFixture()
	paths, ok := sy.Expand(pat(sym(symA), sym(symB)), 10)
	if !ok || len(paths) != 1 || paths[0].Count != 2 {
		t.Fatalf("Expand(/a/b) = %v, %v", paths, ok)
	}
	paths, ok = sy.Expand(pat(sym(symB)), 10)
	if !ok || len(paths) != 0 {
		t.Fatalf("Expand(/b) = %v, %v; want empty proof", paths, ok)
	}
}

func TestExpandWildcards(t *testing.T) {
	sy := expandFixture()
	// '*' step: /*/b matches /a/b and /d/b.
	paths, ok := sy.Expand(pat(any(), sym(symB)), 10)
	if !ok || len(paths) != 2 {
		t.Fatalf("Expand(/*/b) = %v, %v; want 2 paths", paths, ok)
	}
	// Sorted output.
	if !symsLess(paths[0].Syms, paths[1].Syms) {
		t.Fatalf("expansions not sorted: %v", paths)
	}
	// '//' gap: //c matches /a/b/c and /a/c.
	paths, ok = sy.Expand(pat(gap(), sym(symC)), 10)
	if !ok || len(paths) != 2 {
		t.Fatalf("Expand(//c) = %v, %v; want 2 paths", paths, ok)
	}
	// Adjacent gaps reach the same paths once (dedup).
	paths2, ok := sy.Expand(pat(gap(), gap(), sym(symC)), 10)
	if !ok || len(paths2) != len(paths) {
		t.Fatalf("Expand(////c) = %v, want same as //c", paths2)
	}
}

func TestExpandOverflow(t *testing.T) {
	sy := expandFixture()
	if paths, ok := sy.Expand(pat(gap(), sym(symB)), 1); ok {
		t.Fatalf("Expand with limit 1 over 2 matches: got ok with %v", paths)
	}
}

func TestExpandValueSymbols(t *testing.T) {
	sy := expandFixture()
	v := seq.ValueSymbol("x")
	// Trailing value expands to its parent element paths (counts are the
	// parents').
	paths, ok := sy.Expand(pat(sym(symA), sym(symB), sym(v)), 10)
	if !ok || len(paths) != 1 || len(paths[0].Syms) != 2 {
		t.Fatalf("Expand(/a/b/'x') = %v, %v; want the /a/b parent", paths, ok)
	}
	// A value symbol mid-pattern can never occur inside a prefix.
	paths, ok = sy.Expand(pat(sym(v), sym(symB)), 10)
	if !ok || len(paths) != 0 {
		t.Fatalf("Expand('x'/b) = %v, %v; want empty proof", paths, ok)
	}
}

func TestFeasibleLens(t *testing.T) {
	sy := expandFixture()
	// //c from the root: c exists at prefix lengths 1 (/a/c) and 2 (/a/b/c).
	lens := sy.FeasibleLens(nil, 0, true, symC, 10)
	if len(lens) != 2 || lens[0] != 1 || lens[1] != 2 {
		t.Fatalf("FeasibleLens(//c) = %v, want [1 2]", lens)
	}
	// Non-desc: /a/b exists exactly at plen 1.
	if lens := sy.FeasibleLens(p(symA), 0, false, symB, 10); len(lens) != 1 || lens[0] != 1 {
		t.Fatalf("FeasibleLens(/a/b) = %v, want [1]", lens)
	}
	// Infeasible exact step.
	if lens := sy.FeasibleLens(p(symD), 0, false, symC, 10); lens != nil {
		t.Fatalf("FeasibleLens(/d/c) = %v, want nil", lens)
	}
	// Unknown base path.
	if lens := sy.FeasibleLens(p(symC), 0, true, symB, 10); lens != nil {
		t.Fatalf("FeasibleLens from dead base = %v, want nil", lens)
	}
	// Value symbols are feasible under any path of the right depth.
	v := seq.ValueSymbol("x")
	lens = sy.FeasibleLens(p(symA), 0, true, v, 10)
	if len(lens) != 3 { // under /a, /a/b|/a/c, /a/b/c
		t.Fatalf("FeasibleLens(/a//'x') = %v, want 3 lengths", lens)
	}
	// maxPlen caps the sweep.
	if lens := sy.FeasibleLens(nil, 0, true, symC, 1); len(lens) != 1 || lens[0] != 1 {
		t.Fatalf("FeasibleLens capped = %v, want [1]", lens)
	}
}

func TestSynopsisEncodeDecode(t *testing.T) {
	sy := expandFixture()
	enc := sy.Encode()
	got, err := DecodeSynopsis(enc)
	if err != nil {
		t.Fatalf("DecodeSynopsis: %v", err)
	}
	if got.Paths() != sy.Paths() {
		t.Fatalf("Paths after decode = %d, want %d", got.Paths(), sy.Paths())
	}
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatalf("re-encode differs from original")
	}

	if _, err := DecodeSynopsis(enc[:len(enc)-1]); err == nil {
		t.Fatalf("truncated synopsis decoded without error")
	}
	if _, err := DecodeSynopsis(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatalf("trailing bytes decoded without error")
	}
	if _, err := DecodeSynopsis([]byte{99}); err == nil {
		t.Fatalf("unknown version decoded without error")
	}
	if _, err := DecodeSynopsis(nil); err == nil {
		t.Fatalf("empty input decoded without error")
	}
}

func TestSynopsisForkIsolation(t *testing.T) {
	sy := NewSynopsis()
	sy.Add(p(symA), 2)
	sy.Add(p(symA, symB), 1)
	sy.Add(p(symA, symB, symC), 3)
	frozen := sy.Encode()

	// Mutate a chain of forks: add under an existing branch, grow a new
	// branch, remove a path, underflow-clamp another. The original head must
	// keep the exact pre-fork trie.
	f := sy.Fork()
	f.Add(p(symA, symB, symC), 5)
	f.Add(p(symD), 1)
	f = f.Fork()
	f.Add(p(symA, symB), -1)
	f.Add(p(symA), -100)

	if got := sy.Count(p(symA, symB, symC)); got != 3 {
		t.Fatalf("original Count(a/b/c) = %d, want 3", got)
	}
	if got := sy.Count(p(symA)); got != 2 {
		t.Fatalf("original Count(a) = %d, want 2", got)
	}
	if got := sy.Count(p(symD)); got != 0 {
		t.Fatalf("original sees forked insert d: count %d", got)
	}
	if got := sy.Paths(); got != 3 {
		t.Fatalf("original Paths = %d, want 3", got)
	}
	after := sy.Encode()
	if !bytes.Equal(frozen, after) {
		t.Fatal("original synopsis bytes changed across fork mutations")
	}

	if got := f.Count(p(symA, symB, symC)); got != 8 {
		t.Fatalf("fork Count(a/b/c) = %d, want 8", got)
	}
	if got := f.Count(p(symA, symB)); got != 0 {
		t.Fatalf("fork Count(a/b) = %d, want 0", got)
	}
	if got := f.Count(p(symD)); got != 1 {
		t.Fatalf("fork Count(d) = %d, want 1", got)
	}
}
