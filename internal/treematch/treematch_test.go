package treematch

import (
	"testing"

	"vist/internal/query"
	"vist/internal/xmltree"
)

func purchase() *xmltree.Node {
	doc, err := xmltree.ParseString(`
<purchase>
  <seller ID="dell">
    <item ID="ibm" name="part#1">
      <item name="part#2" manufacturer="intel"/>
    </item>
    <location>boston</location>
  </seller>
  <buyer ID="ibm">
    <location>newyork</location>
  </buyer>
</purchase>`)
	if err != nil {
		panic(err)
	}
	xmltree.Normalize(doc, nil)
	return doc
}

func TestMatchesTable(t *testing.T) {
	doc := purchase()
	cases := []struct {
		expr string
		want bool
	}{
		{"/purchase", true},
		{"/purchase/seller", true},
		{"/purchase/seller/item", true},
		{"/purchase/seller/item/item", true},
		{"/purchase/buyer/item", false},
		{"/seller", false},     // seller is not the root
		{"//seller", true},     // but it is somewhere
		{"//item/item", true},  // nested items
		{"//item//item", true}, // descendant axis too
		{"/purchase//item[@manufacturer='intel']", true},
		{"/purchase//item[@manufacturer='amd']", false},
		{"/purchase/*[location='boston']", true},
		{"/purchase/*[location='chicago']", false},
		{"/purchase[seller[location='boston']]/buyer[location='newyork']", true},
		{"/purchase[seller[location='newyork']]/buyer[location='boston']", false},
		{"/purchase/seller/location[text()='boston']", true},
		{"/purchase/seller/location[text()='austin']", false},
		{"/purchase/seller[@ID='dell']", true},
		{"/purchase/seller[@ID='ibm']", false},
		{"/purchase/buyer[@ID='ibm']", true},
		// Bare name in a value predicate matches the attribute too.
		{"/purchase/seller[ID='dell']", true},
		// Star matches attributes as well as elements.
		{"/purchase/seller/item/*[text()='part#1']", true},
		{"//location[text()='newyork']", true},
		{"/purchase[buyer][seller]", true},
		{"/purchase[buyer[location='boston']]", false},
	}
	for _, c := range cases {
		q := query.MustParse(c.expr)
		if got := Matches(q, doc); got != c.want {
			t.Errorf("Matches(%q) = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestMatchesDescendantIsStrict(t *testing.T) {
	// /a//a must require a nested a, not match the same node.
	doc, _ := xmltree.ParseString("<a><b/></a>")
	if Matches(query.MustParse("/a//a"), doc) {
		t.Fatal("/a//a matched a document with a single a")
	}
	doc2, _ := xmltree.ParseString("<a><a/></a>")
	if !Matches(query.MustParse("/a//a"), doc2) {
		t.Fatal("/a//a did not match nested a")
	}
}

func TestMatchesIndependentPredicates(t *testing.T) {
	// XPath semantics: two [b] predicates can be satisfied by the same b.
	doc, _ := xmltree.ParseString("<a><b/></a>")
	if !Matches(query.MustParse("/a[b][b]"), doc) {
		t.Fatal("independent predicates must reuse the same child")
	}
}

func TestFilter(t *testing.T) {
	d1, _ := xmltree.ParseString("<a><b>x</b></a>")
	d2, _ := xmltree.ParseString("<a><b>y</b></a>")
	d3, _ := xmltree.ParseString("<c/>")
	q := query.MustParse("/a/b[text()='x']")
	got := Filter(q, []*xmltree.Node{d1, d2, d3})
	if len(got) != 1 || got[0] != d1 {
		t.Fatalf("Filter returned %d docs", len(got))
	}
}
