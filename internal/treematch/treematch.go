// Package treematch evaluates parsed queries directly against XML document
// trees — the semantics ViST's sequence matching approximates. It serves
// two roles:
//
//   - test oracle: ViST's candidate sets are compared against it (the
//     paper's approach can produce false positives on some branching
//     queries; candidates must always be a superset);
//   - refinement filter: vist.Index.QueryVerified post-filters candidate
//     documents through this matcher, also eliminating value-hash
//     collisions, since matching here compares exact text.
package treematch

import (
	"vist/internal/query"
	"vist/internal/xmltree"
)

// Matches reports whether doc satisfies q.
func Matches(q *query.Query, doc *xmltree.Node) bool {
	for _, step := range q.Root.Children {
		if !matchTop(step, doc) {
			return false
		}
	}
	return true
}

// matchTop handles a top-level step: a leading '/' anchors at the document
// root; a leading '//' may match anywhere in the tree.
func matchTop(qn *query.Node, root *xmltree.Node) bool {
	if qn.Axis == query.Child {
		return matchSubtree(qn, root)
	}
	return anyNode(root, func(n *xmltree.Node) bool { return matchSubtree(qn, n) })
}

// matchSubtree reports whether dn itself satisfies the name test of qn and
// all of qn's branch conditions.
func matchSubtree(qn *query.Node, dn *xmltree.Node) bool {
	if !nameMatches(qn, dn) {
		return false
	}
	for _, qc := range qn.Children {
		if !matchChild(qc, dn) {
			return false
		}
	}
	return true
}

func matchChild(qc *query.Node, dn *xmltree.Node) bool {
	if qc.Kind == query.Value {
		for _, dc := range dn.Children {
			if dc.Kind == xmltree.Value && dc.Text == qc.Text {
				return true
			}
		}
		return false
	}
	if qc.Axis == query.Child {
		for _, dc := range dn.Children {
			if matchSubtree(qc, dc) {
				return true
			}
		}
		return false
	}
	// Descendant axis: any strict descendant of dn.
	for _, dc := range dn.Children {
		if anyNode(dc, func(n *xmltree.Node) bool { return matchSubtree(qc, n) }) {
			return true
		}
	}
	return false
}

func nameMatches(qn *query.Node, dn *xmltree.Node) bool {
	switch qn.Kind {
	case query.Star:
		return dn.Kind == xmltree.Element || dn.Kind == xmltree.Attribute
	case query.Name:
		switch {
		case qn.IsAttr:
			return dn.Kind == xmltree.Attribute && dn.Name == qn.Name
		case qn.AnyKind:
			return (dn.Kind == xmltree.Element || dn.Kind == xmltree.Attribute) && dn.Name == qn.Name
		default:
			return dn.Kind == xmltree.Element && dn.Name == qn.Name
		}
	default:
		return false
	}
}

// anyNode applies f to n and all its descendants until f reports true.
func anyNode(n *xmltree.Node, f func(*xmltree.Node) bool) bool {
	if f(n) {
		return true
	}
	for _, ch := range n.Children {
		if anyNode(ch, f) {
			return true
		}
	}
	return false
}

// Filter returns the documents among docs that satisfy q, preserving order.
func Filter(q *query.Query, docs []*xmltree.Node) []*xmltree.Node {
	var out []*xmltree.Node
	for _, d := range docs {
		if Matches(q, d) {
			out = append(out, d)
		}
	}
	return out
}
