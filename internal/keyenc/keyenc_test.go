package keyenc

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestUintRoundTrips(t *testing.T) {
	for _, v := range []uint64{0, 1, 255, 1 << 32, math.MaxUint64} {
		b := AppendUint64(nil, v)
		got, rest, err := Uint64(b)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("Uint64(%d) = %d, %v, %v", v, got, rest, err)
		}
	}
	b := AppendUint32(AppendUint16(nil, 7), 9)
	v16, rest, err := Uint16(b)
	if err != nil || v16 != 7 {
		t.Fatalf("Uint16 = %d, %v", v16, err)
	}
	v32, rest, err := Uint32(rest)
	if err != nil || v32 != 9 || len(rest) != 0 {
		t.Fatalf("Uint32 = %d, %v", v32, err)
	}
}

func TestTruncatedDecodes(t *testing.T) {
	if _, _, err := Uint64([]byte{1, 2}); err == nil {
		t.Fatal("short Uint64 accepted")
	}
	if _, _, err := Uint32([]byte{1}); err == nil {
		t.Fatal("short Uint32 accepted")
	}
	if _, _, err := Uint16(nil); err == nil {
		t.Fatal("short Uint16 accepted")
	}
	if _, _, err := Symbols([]byte{1, 2, 3}, 1); err == nil {
		t.Fatal("short Symbols accepted")
	}
}

func TestSymbolsRoundTrip(t *testing.T) {
	in := []uint32{1, 0, math.MaxUint32, 42}
	b := AppendSymbols(nil, in)
	out, rest, err := Symbols(b, len(in))
	if err != nil || len(rest) != 0 {
		t.Fatalf("Symbols: %v, %d rest", err, len(rest))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("symbol %d: %d != %d", i, out[i], in[i])
		}
	}
}

func TestAppendSymbolsInto(t *testing.T) {
	in := []uint32{7, 0, math.MaxUint32}
	b := AppendSymbols(nil, in)
	scratch := make([]uint32, 0, 8)
	out, rest, err := AppendSymbolsInto(scratch, b, len(in))
	if err != nil || len(rest) != 0 {
		t.Fatalf("AppendSymbolsInto: %v, %d rest", err, len(rest))
	}
	if &out[0] != &scratch[:1][0] {
		t.Fatal("AppendSymbolsInto did not reuse the caller's buffer")
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("symbol %d: %d != %d", i, out[i], in[i])
		}
	}
	// Appending preserves existing elements.
	out2, _, err := AppendSymbolsInto(out, b, len(in))
	if err != nil || len(out2) != 2*len(in) || out2[0] != 7 || out2[len(in)] != 7 {
		t.Fatalf("second append: %v %v", out2, err)
	}
	if _, _, err := AppendSymbolsInto(nil, []byte{1, 2, 3}, 1); err == nil {
		t.Fatal("short AppendSymbolsInto accepted")
	}
}

func TestPropertyUint64OrderPreserving(t *testing.T) {
	f := func(a, b uint64) bool {
		ka := AppendUint64(nil, a)
		kb := AppendUint64(nil, b)
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSuccessor(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte{1, 2, 3}, []byte{1, 2, 4}},
		{[]byte{1, 0xFF}, []byte{2}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{0}, []byte{1}},
	}
	for _, c := range cases {
		got := PrefixSuccessor(c.in)
		if !bytes.Equal(got, c.want) {
			t.Fatalf("PrefixSuccessor(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPropertyPrefixSuccessorBounds(t *testing.T) {
	// For any p and any extension e, p‖e < PrefixSuccessor(p) (when it
	// exists), and p <= p‖e.
	f := func(p, e []byte) bool {
		succ := PrefixSuccessor(p)
		if succ == nil {
			return true
		}
		key := append(append([]byte(nil), p...), e...)
		return bytes.Compare(key, succ) < 0 && bytes.Compare(p, key) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSuccessorDoesNotMutate(t *testing.T) {
	p := []byte{1, 0xFF}
	_ = PrefixSuccessor(p)
	if p[0] != 1 || p[1] != 0xFF {
		t.Fatalf("input mutated: %v", p)
	}
}

func TestPrefixSuccessorTightAllocation(t *testing.T) {
	// When trailing 0xFF bytes truncate the successor, the returned slice
	// is allocated at exactly the truncated length.
	got := PrefixSuccessor([]byte{5, 0xFF, 0xFF, 0xFF})
	if !bytes.Equal(got, []byte{6}) {
		t.Fatalf("successor = %v, want [6]", got)
	}
	if cap(got) != 1 {
		t.Fatalf("successor cap = %d, want 1 (no over-allocation for truncated bytes)", cap(got))
	}
	if PrefixSuccessor(nil) != nil {
		t.Fatal("PrefixSuccessor(nil) must be nil (every key extends the empty prefix)")
	}
}
