// Package keyenc provides order-preserving binary encodings for the
// composite keys used by the B+Tree-backed indexes in this repository.
//
// All encodings guarantee that bytes.Compare on the encoded form equals the
// natural ordering of the decoded tuples, which is what makes wildcard
// prefixes expressible as B+Tree range queries (Section 3.3 of the ViST
// paper: the D-Ancestor key is ordered first by the symbol, then by the
// length of the prefix, and lastly by the content of the prefix).
package keyenc

import (
	"encoding/binary"
	"fmt"
)

// AppendUint64 appends the big-endian encoding of v, which sorts like v.
func AppendUint64(dst []byte, v uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return append(dst, buf[:]...)
}

// AppendUint32 appends the big-endian encoding of v, which sorts like v.
func AppendUint32(dst []byte, v uint32) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	return append(dst, buf[:]...)
}

// AppendUint16 appends the big-endian encoding of v, which sorts like v.
func AppendUint16(dst []byte, v uint16) []byte {
	var buf [2]byte
	binary.BigEndian.PutUint16(buf[:], v)
	return append(dst, buf[:]...)
}

// Uint64 decodes a big-endian uint64 from the front of b and returns the
// remaining bytes.
func Uint64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("keyenc: need 8 bytes for uint64, have %d", len(b))
	}
	return binary.BigEndian.Uint64(b), b[8:], nil
}

// Uint32 decodes a big-endian uint32 from the front of b and returns the
// remaining bytes.
func Uint32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("keyenc: need 4 bytes for uint32, have %d", len(b))
	}
	return binary.BigEndian.Uint32(b), b[4:], nil
}

// Uint16 decodes a big-endian uint16 from the front of b and returns the
// remaining bytes.
func Uint16(b []byte) (uint16, []byte, error) {
	if len(b) < 2 {
		return 0, nil, fmt.Errorf("keyenc: need 2 bytes for uint16, have %d", len(b))
	}
	return binary.BigEndian.Uint16(b), b[2:], nil
}

// AppendSymbols appends a fixed-width encoding of a symbol-ID sequence.
// Because each symbol occupies exactly 4 bytes, sequences of equal length
// sort lexicographically by content; callers that need shorter-before-longer
// ordering must prepend the length (see the D-Ancestor key layout in
// internal/core).
func AppendSymbols(dst []byte, syms []uint32) []byte {
	for _, s := range syms {
		dst = AppendUint32(dst, s)
	}
	return dst
}

// Symbols decodes n fixed-width symbol IDs from the front of b.
func Symbols(b []byte, n int) ([]uint32, []byte, error) {
	out, rest, err := AppendSymbolsInto(nil, b, n)
	if err != nil {
		return nil, nil, err
	}
	return out, rest, nil
}

// AppendSymbolsInto decodes n fixed-width symbol IDs from the front of b,
// appending them to dst. Hot scan loops pass a reused buffer (dst[:0]) to
// avoid the per-key allocation Symbols pays.
func AppendSymbolsInto(dst []uint32, b []byte, n int) ([]uint32, []byte, error) {
	if len(b) < 4*n {
		return dst, nil, fmt.Errorf("keyenc: need %d bytes for %d symbols, have %d", 4*n, n, len(b))
	}
	for i := 0; i < n; i++ {
		dst = append(dst, binary.BigEndian.Uint32(b[4*i:]))
	}
	return dst, b[4*n:], nil
}

// PrefixSuccessor returns the smallest key that is strictly greater than
// every key having p as a prefix, or nil if no such key exists (p is all
// 0xFF). It is the canonical upper bound for a prefix range scan. The
// result is freshly allocated at exactly the length it needs: trailing
// 0xFF bytes of p never appear in the successor, so they are not copied.
func PrefixSuccessor(p []byte) []byte {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0xFF {
			out := make([]byte, i+1)
			copy(out, p[:i+1])
			out[i]++
			return out
		}
	}
	return nil
}
