// Package seq implements structure-encoded sequences (Definition 1 of the
// ViST paper): the preorder sequence of (symbol, prefix) pairs derived from
// an XML document tree, where the prefix is the symbol path from the root to
// the node's parent.
//
// Element and attribute names are interned into a Dict; attribute values and
// element text are mapped into a disjoint symbol range by a hash function
// h() (the paper: "we use a hash function, h(), to encode attribute values
// into integers").
package seq

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"

	"vist/internal/xmltree"
)

// Symbol is a compact node identifier. Name symbols occupy [1, 2^31);
// value symbols have the top bit set. 0 is invalid.
type Symbol uint32

// valueBit marks hashed value symbols.
const valueBit Symbol = 1 << 31

// IsValue reports whether s encodes a hashed text value rather than an
// element/attribute name.
func (s Symbol) IsValue() bool { return s&valueBit != 0 }

// ValueSymbol hashes text content into the value symbol range, mirroring the
// paper's h(). Collisions are possible by design; exact-match applications
// use the refinement phase to weed them out.
func ValueSymbol(text string) Symbol {
	h := fnv.New32a()
	h.Write([]byte(text))
	return Symbol(h.Sum32())&^valueBit | valueBit
}

// AttrName is the dictionary spelling of an attribute, keeping attribute and
// element namespaces distinct ("ID" the attribute vs a hypothetical <ID>).
func AttrName(name string) string { return "@" + name }

// Dict interns element/attribute names to symbols. It is safe for
// concurrent use and serializable for persistence alongside an index.
type Dict struct {
	mu    sync.RWMutex
	ids   map[string]Symbol
	names []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]Symbol)}
}

// Intern returns the symbol for name, assigning the next free one on first
// sight.
func (d *Dict) Intern(name string) Symbol {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.ids[name]; ok {
		return s
	}
	s := Symbol(len(d.names) + 1)
	if s >= valueBit {
		panic("seq: dictionary exhausted (2^31 names)")
	}
	d.ids[name] = s
	d.names = append(d.names, name)
	return s
}

// Lookup returns the symbol for name without assigning one.
func (d *Dict) Lookup(name string) (Symbol, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.ids[name]
	return s, ok
}

// Name returns the spelling of a name symbol.
func (d *Dict) Name(s Symbol) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if s == 0 || s.IsValue() || int(s) > len(d.names) {
		return "", false
	}
	return d.names[s-1], true
}

// Len reports how many names are interned.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.names)
}

// Encode serializes the dictionary (names in symbol order).
func (d *Dict) Encode() []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := binary.AppendUvarint(nil, uint64(len(d.names)))
	for _, n := range d.names {
		out = binary.AppendUvarint(out, uint64(len(n)))
		out = append(out, n...)
	}
	return out
}

// DecodeDict restores a dictionary produced by Encode.
func DecodeDict(b []byte) (*Dict, error) {
	n, m := binary.Uvarint(b)
	if m <= 0 {
		return nil, fmt.Errorf("seq: truncated dictionary header")
	}
	b = b[m:]
	d := NewDict()
	for i := uint64(0); i < n; i++ {
		l, m := binary.Uvarint(b)
		if m <= 0 || uint64(len(b)-m) < l {
			return nil, fmt.Errorf("seq: truncated dictionary entry %d", i)
		}
		b = b[m:]
		d.Intern(string(b[:l]))
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("seq: %d trailing dictionary bytes", len(b))
	}
	return d, nil
}

// Elem is one (symbol, prefix) pair of a structure-encoded sequence. The
// prefix holds the symbols on the path from the root to the node's parent,
// root first.
type Elem struct {
	Symbol Symbol
	Prefix []Symbol
}

// Sequence is a structure-encoded sequence: the preorder walk of a document
// tree as (symbol, prefix) pairs.
type Sequence []Elem

// Encode converts a normalized document tree into its structure-encoded
// sequence, interning names into d.
func Encode(root *xmltree.Node, d *Dict) Sequence {
	out := make(Sequence, 0, root.Count())
	var walk func(n *xmltree.Node, prefix []Symbol)
	walk = func(n *xmltree.Node, prefix []Symbol) {
		sym := SymbolOf(n, d)
		// Copy the prefix: the walk mutates its backing array.
		p := make([]Symbol, len(prefix))
		copy(p, prefix)
		out = append(out, Elem{Symbol: sym, Prefix: p})
		if len(n.Children) == 0 {
			return
		}
		child := append(prefix, sym)
		for _, ch := range n.Children {
			walk(ch, child)
		}
	}
	walk(root, nil)
	return out
}

// SymbolOf maps a node to its symbol: hashed text for value leaves,
// interned (possibly @-prefixed) name otherwise.
func SymbolOf(n *xmltree.Node, d *Dict) Symbol {
	switch n.Kind {
	case xmltree.Value:
		return ValueSymbol(n.Text)
	case xmltree.Attribute:
		return d.Intern(AttrName(n.Name))
	default:
		return d.Intern(n.Name)
	}
}

// String renders the sequence in the paper's (a, p) notation using d for
// name spellings; value symbols render as v<hex>.
func (s Sequence) String(d *Dict) string {
	var b strings.Builder
	for i, e := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('(')
		b.WriteString(symString(e.Symbol, d))
		b.WriteByte(',')
		for _, p := range e.Prefix {
			b.WriteString(symString(p, d))
			b.WriteByte('/')
		}
		b.WriteByte(')')
	}
	return b.String()
}

func symString(s Symbol, d *Dict) string {
	if s.IsValue() {
		return fmt.Sprintf("v%08x", uint32(s))
	}
	if name, ok := d.Name(s); ok {
		return name
	}
	return fmt.Sprintf("#%d", uint32(s))
}

// MaxLen reports the longest prefix length in the sequence plus one — the
// tree depth the sequence encodes.
func (s Sequence) MaxLen() int {
	max := 0
	for _, e := range s {
		if l := len(e.Prefix) + 1; l > max {
			max = l
		}
	}
	return max
}

// Key returns a canonical, comparable identity for the element: the symbol
// followed by the prefix symbols, 4 bytes each, big-endian. It is used as a
// map key by the statistics collector and the dynamic labeler.
func (e Elem) Key() string {
	b := make([]byte, 0, 4*(len(e.Prefix)+1))
	b = appendSym(b, e.Symbol)
	for _, p := range e.Prefix {
		b = appendSym(b, p)
	}
	return string(b)
}

func appendSym(b []byte, s Symbol) []byte {
	return append(b, byte(s>>24), byte(s>>16), byte(s>>8), byte(s))
}

// Reconstruct rebuilds a document tree from a structure-encoded sequence
// (the second dimension of the sequence — the prefixes — carries exactly
// the "extra information needed to reconstruct trees from preorder
// sequences" the paper describes). Name symbols resolve through d;
// value symbols cannot be inverted (h() is a hash), so value leaves come
// back as placeholder text "v<hex>". Reconstruct(Encode(doc)) is therefore
// structurally identical to doc with hashed leaf texts.
func Reconstruct(s Sequence, d *Dict) (*xmltree.Node, error) {
	if len(s) == 0 {
		return nil, fmt.Errorf("seq: empty sequence")
	}
	if len(s[0].Prefix) != 0 {
		return nil, fmt.Errorf("seq: first element has non-empty prefix")
	}
	nodeFor := func(e Elem) (*xmltree.Node, error) {
		if e.Symbol.IsValue() {
			return xmltree.NewText(fmt.Sprintf("v%08x", uint32(e.Symbol))), nil
		}
		name, ok := d.Name(e.Symbol)
		if !ok {
			return nil, fmt.Errorf("seq: unknown symbol %d", e.Symbol)
		}
		if len(name) > 0 && name[0] == '@' {
			return &xmltree.Node{Kind: xmltree.Attribute, Name: name[1:]}, nil
		}
		return xmltree.NewElement(name), nil
	}
	root, err := nodeFor(s[0])
	if err != nil {
		return nil, err
	}
	type frame struct {
		node *xmltree.Node
		sym  Symbol
	}
	stack := []frame{{root, s[0].Symbol}}
	for i := 1; i < len(s); i++ {
		e := s[i]
		// The element's depth equals its prefix length; pop to its parent.
		if len(e.Prefix) == 0 || len(e.Prefix) > len(stack) {
			return nil, fmt.Errorf("seq: element %d has inconsistent prefix depth %d", i, len(e.Prefix))
		}
		stack = stack[:len(e.Prefix)]
		parent := stack[len(stack)-1]
		if e.Prefix[len(e.Prefix)-1] != parent.sym {
			return nil, fmt.Errorf("seq: element %d prefix does not end with its parent's symbol", i)
		}
		n, err := nodeFor(e)
		if err != nil {
			return nil, err
		}
		parent.node.Children = append(parent.node.Children, n)
		stack = append(stack, frame{n, e.Symbol})
	}
	return root, nil
}
