package seq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vist/internal/xmltree"
)

func TestValueSymbolProperties(t *testing.T) {
	a := ValueSymbol("dell")
	b := ValueSymbol("ibm")
	if !a.IsValue() || !b.IsValue() {
		t.Fatal("value symbols must have the value bit set")
	}
	if a == b {
		t.Fatal("distinct strings hashed identically (astronomically unlikely)")
	}
	if ValueSymbol("dell") != a {
		t.Fatal("ValueSymbol not deterministic")
	}
}

func TestDictIntern(t *testing.T) {
	d := NewDict()
	p := d.Intern("purchase")
	s := d.Intern("seller")
	if p == s {
		t.Fatal("distinct names share a symbol")
	}
	if d.Intern("purchase") != p {
		t.Fatal("re-intern changed the symbol")
	}
	if p.IsValue() || s.IsValue() {
		t.Fatal("name symbols must not carry the value bit")
	}
	if name, ok := d.Name(p); !ok || name != "purchase" {
		t.Fatalf("Name(%d) = %q, %v", p, name, ok)
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Fatal("Lookup of missing name succeeded")
	}
	if _, ok := d.Name(ValueSymbol("x")); ok {
		t.Fatal("Name of a value symbol succeeded")
	}
}

func TestDictEncodeDecode(t *testing.T) {
	d := NewDict()
	for _, n := range []string{"purchase", "seller", "@ID", "item", "location"} {
		d.Intern(n)
	}
	d2, err := DecodeDict(d.Encode())
	if err != nil {
		t.Fatalf("DecodeDict: %v", err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("lengths differ: %d vs %d", d2.Len(), d.Len())
	}
	for _, n := range []string{"purchase", "seller", "@ID", "item", "location"} {
		a, _ := d.Lookup(n)
		b, ok := d2.Lookup(n)
		if !ok || a != b {
			t.Fatalf("symbol for %q: %d vs %d (ok=%v)", n, a, b, ok)
		}
	}
	if _, err := DecodeDict([]byte{200}); err == nil {
		t.Fatal("DecodeDict accepted garbage")
	}
	if _, err := DecodeDict(append(d.Encode(), 0)); err == nil {
		t.Fatal("DecodeDict accepted trailing bytes")
	}
}

// paperDoc builds the Figure 3 purchase record.
func paperDoc() *xmltree.Node {
	doc := xmltree.NewElement("purchase",
		xmltree.NewElement("seller",
			xmltree.NewAttr("ID", "dell"),
			xmltree.NewElement("item",
				xmltree.NewAttr("ID", "ibm"),
				xmltree.NewAttr("name", "part#1"),
				xmltree.NewElement("item",
					xmltree.NewAttr("name", "part#2"),
					xmltree.NewAttr("manufacturer", "intel"),
				),
			),
			xmltree.NewElement("item", xmltree.NewAttr("name", "panasia")),
			xmltree.NewElementText("location", "boston"),
		),
		xmltree.NewElement("buyer",
			xmltree.NewAttr("ID", "ibm"),
			xmltree.NewElementText("location", "newyork"),
		),
	)
	schema := xmltree.NewSchema(
		"purchase", "seller", "buyer",
		AttrName("ID"), AttrName("location"), AttrName("name"),
		"item", AttrName("manufacturer"), "location", "name",
	)
	xmltree.Normalize(doc, schema)
	return doc
}

func TestEncodePaperExample(t *testing.T) {
	d := NewDict()
	doc := paperDoc()
	s := Encode(doc, d)
	if len(s) != doc.Count() {
		t.Fatalf("sequence length %d != node count %d", len(s), doc.Count())
	}
	// First element is the root with an empty prefix.
	P, _ := d.Lookup("purchase")
	if s[0].Symbol != P || len(s[0].Prefix) != 0 {
		t.Fatalf("first element = %+v", s[0])
	}
	// Second element is seller with prefix [P] (schema puts seller first).
	S, _ := d.Lookup("seller")
	if s[1].Symbol != S || len(s[1].Prefix) != 1 || s[1].Prefix[0] != P {
		t.Fatalf("second element = %+v", s[1])
	}
	// The deepest prefix is purchase/seller/item/item/@manufacturer = 5,
	// so MaxLen (depth) is 6.
	if s.MaxLen() != 6 {
		t.Fatalf("MaxLen = %d, want 6", s.MaxLen())
	}
	// "boston" must appear with prefix purchase/seller/location.
	L, _ := d.Lookup("location")
	want := []Symbol{P, S, L}
	found := false
	for _, e := range s {
		if e.Symbol == ValueSymbol("boston") {
			if len(e.Prefix) != 3 {
				t.Fatalf("boston prefix = %v", e.Prefix)
			}
			for i := range want {
				if e.Prefix[i] != want[i] {
					t.Fatalf("boston prefix = %v, want %v", e.Prefix, want)
				}
			}
			found = true
		}
	}
	if !found {
		t.Fatal("value 'boston' missing from sequence")
	}
}

func TestEncodePrefixInvariant(t *testing.T) {
	// Every element's prefix must equal its parent's prefix plus the
	// parent's symbol; verify via an independent stack walk.
	d := NewDict()
	doc := paperDoc()
	s := Encode(doc, d)
	type frame struct {
		sym  Symbol
		plen int
	}
	var stack []frame
	for i, e := range s {
		for len(stack) > 0 && stack[len(stack)-1].plen+1 > len(e.Prefix) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			if top.plen+1 != len(e.Prefix) || e.Prefix[len(e.Prefix)-1] != top.sym {
				t.Fatalf("element %d prefix %v inconsistent with parent %+v", i, e.Prefix, top)
			}
		} else if len(e.Prefix) != 0 {
			t.Fatalf("element %d has prefix %v with empty stack", i, e.Prefix)
		}
		stack = append(stack, frame{e.Symbol, len(e.Prefix)})
	}
}

func TestEncodePrefixAliasing(t *testing.T) {
	// Prefixes must be independent copies, not views of a shared buffer.
	d := NewDict()
	doc := xmltree.NewElement("a",
		xmltree.NewElement("b", xmltree.NewElement("c")),
		xmltree.NewElement("d", xmltree.NewElement("e")),
	)
	s := Encode(doc, d)
	// c has prefix [a b]; e has prefix [a d]. If the walk aliased buffers,
	// c's prefix would have been overwritten by d.
	b, _ := d.Lookup("b")
	if s[2].Prefix[1] != b {
		t.Fatalf("prefix aliasing: c's prefix = %v", s[2].Prefix)
	}
}

func TestSequenceString(t *testing.T) {
	d := NewDict()
	doc := xmltree.NewElement("a", xmltree.NewElementText("b", "x"))
	s := Encode(doc, d)
	str := s.String(d)
	if str == "" {
		t.Fatal("String returned empty")
	}
	for _, want := range []string{"(a,)", "(b,a/)"} {
		if !contains(str, want) {
			t.Fatalf("String = %q, missing %q", str, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func randomDoc(rng *rand.Rand, depth int) *xmltree.Node {
	names := []string{"a", "b", "c", "d"}
	n := xmltree.NewElement(names[rng.Intn(len(names))])
	if depth > 0 {
		for i := 0; i < rng.Intn(4); i++ {
			switch rng.Intn(3) {
			case 0:
				n.Children = append(n.Children, xmltree.NewAttr(names[rng.Intn(len(names))], names[rng.Intn(len(names))]))
			case 1:
				n.Children = append(n.Children, xmltree.NewText(names[rng.Intn(len(names))]))
			default:
				n.Children = append(n.Children, randomDoc(rng, depth-1))
			}
		}
	}
	return n
}

func TestPropertySequenceLengthEqualsNodeCount(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 4)
		xmltree.Normalize(doc, nil)
		d := NewDict()
		return len(Encode(doc, d)) == doc.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPrefixDepthBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 4)
		xmltree.Normalize(doc, nil)
		d := NewDict()
		s := Encode(doc, d)
		return s.MaxLen() == doc.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructRoundTrip(t *testing.T) {
	d := NewDict()
	doc := paperDoc()
	s := Encode(doc, d)
	back, err := Reconstruct(s, d)
	if err != nil {
		t.Fatalf("Reconstruct: %v", err)
	}
	// Structure must be identical; value leaves come back as hash
	// placeholders, so compare shape: kinds, names, child counts.
	var sameShape func(a, b *xmltree.Node) bool
	sameShape = func(a, b *xmltree.Node) bool {
		if a.Kind != b.Kind || a.Name != b.Name || len(a.Children) != len(b.Children) {
			return false
		}
		for i := range a.Children {
			if !sameShape(a.Children[i], b.Children[i]) {
				return false
			}
		}
		return true
	}
	if !sameShape(doc, back) {
		t.Fatalf("shapes differ:\n%v\n%v", doc, back)
	}
}

func TestReconstructErrors(t *testing.T) {
	d := NewDict()
	a := d.Intern("a")
	b := d.Intern("b")
	cases := []Sequence{
		{},                                 // empty
		{{Symbol: a, Prefix: []Symbol{b}}}, // root with prefix
		{{Symbol: a}, {Symbol: b, Prefix: []Symbol{b}}},           // prefix not ending with parent
		{{Symbol: a}, {Symbol: b, Prefix: []Symbol{a, a}}},        // too-deep jump
		{{Symbol: a}, {Symbol: Symbol(999), Prefix: []Symbol{a}}}, // unknown symbol
	}
	for i, s := range cases {
		if _, err := Reconstruct(s, d); err == nil {
			t.Errorf("case %d: Reconstruct accepted invalid sequence", i)
		}
	}
}

func TestPropertyReconstructShape(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 4)
		xmltree.Normalize(doc, nil)
		d := NewDict()
		s := Encode(doc, d)
		back, err := Reconstruct(s, d)
		if err != nil {
			return false
		}
		return back.Count() == doc.Count() && back.Depth() == doc.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
