package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every operation on nil metrics and a nil registry must be a no-op, not
	// a panic: this is the "metrics disabled" fast path.
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", DurationBounds)
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(-2)
	h.Observe(0.5)
	h.ObserveDuration(time.Second)
	if c.Load() != 0 || g.Load() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	// Bundles built from a nil registry must be non-nil with nil members.
	pm := NewPagerMetrics(nil)
	pm.CacheHits.Inc()
	wm := NewWALMetrics(nil)
	wm.CheckpointSeconds.ObserveDuration(time.Millisecond)
	tm := NewTreeMetrics(nil)
	tm.NodeCacheHits.Inc()
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(5)
	c.Inc()
	if got := c.Load(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	if r.Counter("a") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("b")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	s := r.Snapshot()
	if s.Counter("a") != 6 || s.Gauges["b"] != 7 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if want := 0.5 + 1.5 + 1.5 + 3 + 3 + 3 + 100; math.Abs(s.Sum-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	wantBuckets := []uint64{1, 2, 3, 0, 1}
	for i, w := range wantBuckets {
		if s.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, s.Buckets[i], w, s.Buckets)
		}
	}
	// Median lands in the (2,4] bucket.
	if q := s.Quantile(0.5); q <= 2 || q > 4 {
		t.Fatalf("p50 = %v, want within (2,4]", q)
	}
	// The overflow observation pins the max quantile to the top bound.
	if q := s.Quantile(1.0); q != 8 {
		t.Fatalf("p100 = %v, want top bound 8", q)
	}
	if m := s.Mean(); math.Abs(m-s.Sum/7) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var s HistogramSnapshot
	if s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot must report zeros")
	}
}

func TestRatio(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	r.Counter("misses").Add(1)
	s := r.Snapshot()
	if got := s.Ratio("hits", "misses"); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("ratio = %v, want 0.75", got)
	}
	if got := s.Ratio("nope", "nada"); got != 0 {
		t.Fatalf("empty ratio = %v, want 0", got)
	}
}

func TestSnapshotWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.count").Add(2)
	r.Gauge("a.gauge").Set(-1)
	r.Histogram("lat", DurationBounds).Observe(0.001)
	text := r.Snapshot().String()
	for _, want := range []string{"z.count 2", "a.gauge -1", "lat count=1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text rendering missing %q:\n%s", want, text)
		}
	}
}

// TestConcurrentMetrics hammers one registry from many goroutines under the
// race detector: registration races, counter adds, histogram observations,
// and snapshots must all be safe together.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", DurationBounds).Observe(float64(i%10) * 1e-4)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter("c"); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := s.Histograms["h"].Count; got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	var cum uint64
	for _, b := range s.Histograms["h"].Buckets {
		cum += b
	}
	if cum != workers*iters {
		t.Fatalf("bucket total = %d, want %d", cum, workers*iters)
	}
}
