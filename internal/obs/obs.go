// Package obs is a dependency-free observability layer: an atomic metrics
// registry of counters, gauges, and bounded histograms, plus the per-subsystem
// metric bundles the storage and query layers are instrumented with.
//
// Design constraints, in order:
//
//  1. Hot-path cost. A counter increment is one atomic add; a histogram
//     observation is a binary search over a fixed bounds slice plus two atomic
//     adds and a CAS loop for the sum. No locks, no allocation, no map lookups
//     after registration.
//  2. Safe to disable. Every metric type no-ops on a nil receiver, and every
//     constructor accepts a nil *Registry (returning a bundle of nil metrics),
//     so instrumented code never branches on "metrics enabled?" — it just
//     calls through.
//  3. Safe to share. All mutation is atomic; one bundle may be shared by
//     several components (core shares one PagerMetrics across an index's four
//     tree files) and by any number of goroutines.
//
// Metric names are flat dotted strings ("pager.cache_hits"); DESIGN.md §9
// documents the full set exported by an Index.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter no-ops.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 for a nil counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use; a
// nil *Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bound bucketed histogram. Bucket i counts observations
// v <= bounds[i]; one overflow bucket counts the rest. Bounds are immutable
// after construction, so Observe never allocates or locks. The zero value is
// unusable — build histograms with NewHistogram or Registry.Histogram. A nil
// *Histogram no-ops.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// DurationBounds are the default latency bounds (seconds): exponential-ish
// steps from 1µs to 10s, chosen so sub-millisecond index operations land in
// distinct buckets while pathological multi-second queries stay visible.
var DurationBounds = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose bound holds v; len(bounds) is the overflow bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Snapshot returns a consistent-enough copy for reporting. Buckets are read
// one atomic load at a time, so a snapshot taken during heavy traffic can be
// off by in-flight observations — fine for monitoring, not an audit log.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sum.Load()),
		Bounds:  h.bounds,
		Buckets: make([]uint64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the containing bucket. Values in the overflow bucket report the top
// bound. Returns 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Buckets {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Registry is a named collection of metrics. Registration (the first lookup
// of each name) takes a mutex; the returned metric is then cached by the
// caller and all subsequent operations are lock-free. A nil *Registry returns
// nil metrics from every constructor, which in turn no-op — disabling
// observability is just "don't build a registry".
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on first
// use (later calls ignore bounds and return the existing histogram).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot copies every registered metric's current value. Safe to call
// concurrently with metric traffic.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a registry's metrics. The zero value
// (from a nil registry) has nil maps and renders as empty.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns a counter's value (0 when absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Ratio returns num/(num+den) for two counters — e.g. cache hits over
// hits+misses. Returns 0 when both are zero.
func (s Snapshot) Ratio(num, den string) float64 {
	n, d := s.Counters[num], s.Counters[den]
	if n+d == 0 {
		return 0
	}
	return float64(n) / float64(n+d)
}

// WriteText renders the snapshot as sorted "name value" lines; histograms
// render count, mean, and the p50/p95/p99 estimates. The format is for humans
// and the vist serve /metrics endpoint, not a wire protocol.
func (s Snapshot) WriteText(w io.Writer) {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Fprintf(w, "%s count=%d mean=%.3g p50=%.3g p95=%.3g p99=%.3g\n",
			n, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	}
}

// String renders WriteText into a string.
func (s Snapshot) String() string {
	var b strings.Builder
	s.WriteText(&b)
	return b.String()
}
