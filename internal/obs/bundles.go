package obs

// Per-subsystem metric bundles. Each bundle is a struct of metric pointers
// resolved once from a Registry, so instrumented hot paths pay a field load
// plus one atomic operation — never a name lookup. Constructors accept a nil
// registry and then return a bundle whose metrics are all nil (and so no-op);
// callers may also share one bundle across several components, because every
// metric is independently atomic.

// PagerMetrics instruments a FilePager's buffer pool and file I/O. core
// shares one bundle across all four tree files of an index, so the counters
// aggregate the index's total page traffic.
type PagerMetrics struct {
	// CacheHits / CacheMisses count buffer-pool lookups.
	CacheHits, CacheMisses *Counter
	// Evictions counts pages dropped from the pool to stay within capacity.
	Evictions *Counter
	// PageReads counts physical main-file page reads (pool misses that went
	// to disk; reads satisfied from the WAL's staged frames count as misses
	// but not as PageReads).
	PageReads *Counter
	// PageWrites counts physical page write-backs — into the WAL when one is
	// attached, directly into the file otherwise — plus checkpoint copies.
	PageWrites *Counter
	// ColdStores counts clean evicted pages compressed into the cold tier;
	// ColdHits counts pool misses satisfied by decompressing a cold page
	// instead of reading disk. Both stay zero unless cold-page compression is
	// enabled.
	ColdStores, ColdHits *Counter
}

// NewPagerMetrics resolves the pager bundle under "pager.*".
func NewPagerMetrics(r *Registry) *PagerMetrics {
	return &PagerMetrics{
		CacheHits:   r.Counter("pager.cache_hits"),
		CacheMisses: r.Counter("pager.cache_misses"),
		Evictions:   r.Counter("pager.evictions"),
		PageReads:   r.Counter("pager.page_reads"),
		PageWrites:  r.Counter("pager.page_writes"),
		ColdStores:  r.Counter("pager.cold_stores"),
		ColdHits:    r.Counter("pager.cold_hits"),
	}
}

// TreeMetrics instruments the B+Tree's decoded-node cache (one layer above
// the pager's page cache). core shares one bundle across an index's four
// trees.
type TreeMetrics struct {
	NodeCacheHits, NodeCacheMisses *Counter
	NodeCacheEvictions             *Counter
}

// NewTreeMetrics resolves the tree bundle under "btree.*".
func NewTreeMetrics(r *Registry) *TreeMetrics {
	return &TreeMetrics{
		NodeCacheHits:      r.Counter("btree.node_cache_hits"),
		NodeCacheMisses:    r.Counter("btree.node_cache_misses"),
		NodeCacheEvictions: r.Counter("btree.node_cache_evictions"),
	}
}

// WALMetrics instruments the write-ahead log.
type WALMetrics struct {
	// Fsyncs counts log-file fsyncs (the commit-record durability point and
	// the post-truncate sync).
	Fsyncs *Counter
	// Commits counts commit records written; Checkpoints counts checkpoint
	// passes that copied staged pages into main files.
	Commits, Checkpoints *Counter
	// BytesLogged counts bytes appended to the log (frames and commits).
	BytesLogged *Counter
	// PagesStaged counts page frames staged into the log.
	PagesStaged *Counter
	// Recoveries counts Recover calls that replayed a committed tail;
	// PagesReplayed counts the page frames those replays applied.
	Recoveries, PagesReplayed *Counter
	// CheckpointSeconds observes the duration of each checkpoint pass
	// (staged-page copy + main-file fsyncs + log truncate).
	CheckpointSeconds *Histogram
}

// NewWALMetrics resolves the WAL bundle under "wal.*".
func NewWALMetrics(r *Registry) *WALMetrics {
	return &WALMetrics{
		Fsyncs:            r.Counter("wal.fsyncs"),
		Commits:           r.Counter("wal.commits"),
		Checkpoints:       r.Counter("wal.checkpoints"),
		BytesLogged:       r.Counter("wal.bytes_logged"),
		PagesStaged:       r.Counter("wal.pages_staged"),
		Recoveries:        r.Counter("wal.recoveries"),
		PagesReplayed:     r.Counter("wal.pages_replayed"),
		CheckpointSeconds: r.Histogram("wal.checkpoint_seconds", DurationBounds),
	}
}
