// Package suffixtree implements the materialized sequence trie that the
// paper's Naive algorithm (Section 3.2) searches directly and that RIST
// (Section 3.3) labels statically before bulk-loading B+Trees.
//
// Structure-encoded sequences are inserted from the root ("the insertion
// process is much like that of inserting a sequence into a suffix tree — we
// follow the branches, and when there is no branch to follow, we create
// one"); each node carries the document IDs of the sequences that end at
// it. Label assigns the static ⟨n, size⟩ labels by preorder traversal.
package suffixtree

import (
	"sort"

	"vist/internal/seq"
)

// Node is one trie node. After Label, N is its preorder number and Size the
// count of its descendants, so a node y is a descendant of x iff
// y.N ∈ (x.N, x.N+x.Size].
type Node struct {
	// Elem is the structure-encoded element this node represents (zero for
	// the root).
	Elem seq.Elem
	// Docs lists the IDs of documents whose sequences end at this node.
	Docs []uint64
	// N and Size form the static ⟨n, size⟩ label.
	N, Size uint64

	children map[string]*Node
	ordered  []*Node // deterministic child order for traversal/labeling
}

// Children returns the node's children in deterministic (insertion-sorted)
// order.
func (n *Node) Children() []*Node { return n.ordered }

// Tree is a sequence trie.
type Tree struct {
	root    *Node
	nodes   int
	labeled bool
}

// New returns an empty trie.
func New() *Tree {
	return &Tree{root: &Node{children: make(map[string]*Node)}}
}

// Root returns the root node (which represents no element).
func (t *Tree) Root() *Node { return t.root }

// NodeCount reports the number of nodes excluding the root.
func (t *Tree) NodeCount() int { return t.nodes }

// Labeled reports whether Label has run since the last insertion.
func (t *Tree) Labeled() bool { return t.labeled }

// Insert adds a structure-encoded sequence, attaching docID to the node
// where it ends. Inserting invalidates existing labels.
func (t *Tree) Insert(s seq.Sequence, docID uint64) {
	t.labeled = false
	cur := t.root
	for _, e := range s {
		key := e.Key()
		next, ok := cur.children[key]
		if !ok {
			next = &Node{Elem: e, children: make(map[string]*Node)}
			cur.children[key] = next
			cur.ordered = insertOrdered(cur.ordered, next, key)
			t.nodes++
		}
		cur = next
	}
	cur.Docs = append(cur.Docs, docID)
}

// insertOrdered keeps children sorted by element key for deterministic
// preorder labeling.
func insertOrdered(list []*Node, n *Node, key string) []*Node {
	i := sort.Search(len(list), func(i int) bool { return list[i].Elem.Key() >= key })
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = n
	return list
}

// Label assigns static ⟨n, size⟩ labels by a depth-first traversal
// (Section 3.3: "labeling can be accomplished by making a depth-first
// traversal of the suffix tree"). The root receives n = 0 and a size
// covering the whole tree.
func (t *Tree) Label() {
	var next uint64
	var walk func(n *Node) uint64 // returns the number of descendants
	walk = func(n *Node) uint64 {
		n.N = next
		next++
		var desc uint64
		for _, c := range n.ordered {
			desc += 1 + walk(c)
		}
		n.Size = desc
		return desc
	}
	walk(t.root)
	t.labeled = true
}

// Walk visits every node except the root in preorder, passing its parent.
func (t *Tree) Walk(fn func(n, parent *Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		for _, c := range n.ordered {
			fn(c, n)
			rec(c)
		}
	}
	rec(t.root)
}

// MemoryEstimate roughly accounts the trie's in-memory footprint in bytes —
// the extra cost RIST pays over ViST for keeping the suffix tree
// materialized (Figure 11(a)).
func (t *Tree) MemoryEstimate() int64 {
	var total int64
	t.Walk(func(n, _ *Node) {
		// struct + map/slice headers + element prefix + doc IDs.
		total += 96 + int64(4*(len(n.Elem.Prefix)+1)) + int64(8*len(n.Docs))
	})
	return total
}
