package suffixtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vist/internal/seq"
	"vist/internal/xmltree"
)

func encode(t *testing.T, d *seq.Dict, xml string) seq.Sequence {
	t.Helper()
	n, err := xmltree.ParseString(xml)
	if err != nil {
		t.Fatal(err)
	}
	xmltree.Normalize(n, nil)
	return seq.Encode(n, d)
}

func TestInsertSharesPrefixes(t *testing.T) {
	d := seq.NewDict()
	tr := New()
	s1 := encode(t, d, "<p><s><n>dell</n></s></p>")
	s2 := encode(t, d, "<p><s><n>ibm</n></s></p>")
	tr.Insert(s1, 1)
	tr.Insert(s2, 2)
	// p, s, n are shared; the two values differ: 3 + 2 = 5 nodes.
	if tr.NodeCount() != 5 {
		t.Fatalf("NodeCount = %d, want 5", tr.NodeCount())
	}
	// Same sequence again adds nothing.
	tr.Insert(encode(t, d, "<p><s><n>dell</n></s></p>"), 3)
	if tr.NodeCount() != 5 {
		t.Fatalf("NodeCount after duplicate = %d", tr.NodeCount())
	}
}

func TestDocIDsAttachToEndNode(t *testing.T) {
	d := seq.NewDict()
	tr := New()
	s := encode(t, d, "<a><b/></a>")
	tr.Insert(s, 7)
	tr.Insert(s, 8)
	// Find the deepest node.
	var end *Node
	tr.Walk(func(n, _ *Node) {
		if len(n.Children()) == 0 {
			end = n
		}
	})
	if end == nil || len(end.Docs) != 2 || end.Docs[0] != 7 || end.Docs[1] != 8 {
		t.Fatalf("end node docs = %+v", end)
	}
}

func TestLabelInvariants(t *testing.T) {
	d := seq.NewDict()
	tr := New()
	for i, x := range []string{
		"<p><s><n>dell</n></s></p>",
		"<p><s><n>ibm</n><l>ny</l></s></p>",
		"<p><b><l>boston</l></b></p>",
	} {
		tr.Insert(encode(t, d, x), uint64(i+1))
	}
	tr.Label()
	if !tr.Labeled() {
		t.Fatal("Labeled() false after Label")
	}
	if tr.Root().N != 0 || tr.Root().Size != uint64(tr.NodeCount()) {
		t.Fatalf("root label = ⟨%d,%d⟩, nodes = %d", tr.Root().N, tr.Root().Size, tr.NodeCount())
	}
	// Every child's label range nests strictly inside its parent's, and
	// sibling ranges are disjoint.
	seen := map[uint64]bool{}
	tr.Walk(func(n, parent *Node) {
		if seen[n.N] {
			t.Fatalf("duplicate label %d", n.N)
		}
		seen[n.N] = true
		if !(n.N > parent.N && n.N+n.Size <= parent.N+parent.Size) {
			t.Fatalf("child ⟨%d,%d⟩ not inside parent ⟨%d,%d⟩", n.N, n.Size, parent.N, parent.Size)
		}
		kids := n.Children()
		for i := 0; i < len(kids); i++ {
			for j := i + 1; j < len(kids); j++ {
				a, b := kids[i], kids[j]
				if !(a.N+a.Size < b.N || b.N+b.Size < a.N) {
					t.Fatalf("sibling ranges overlap: ⟨%d,%d⟩ ⟨%d,%d⟩", a.N, a.Size, b.N, b.Size)
				}
			}
		}
	})
	if len(seen) != tr.NodeCount() {
		t.Fatalf("labeled %d nodes, trie has %d", len(seen), tr.NodeCount())
	}
}

func TestInsertInvalidatesLabels(t *testing.T) {
	d := seq.NewDict()
	tr := New()
	tr.Insert(encode(t, d, "<a/>"), 1)
	tr.Label()
	tr.Insert(encode(t, d, "<b/>"), 2)
	if tr.Labeled() {
		t.Fatal("labels must be invalidated by insertion")
	}
}

func TestPropertyLabelSizeEqualsDescendants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := seq.NewDict()
		tr := New()
		names := []string{"a", "b", "c"}
		for i := 0; i < 20; i++ {
			// Random short sequences built from random documents.
			var build func(depth int) *xmltree.Node
			build = func(depth int) *xmltree.Node {
				n := xmltree.NewElement(names[rng.Intn(len(names))])
				if depth > 0 {
					for j := 0; j < rng.Intn(3); j++ {
						n.Children = append(n.Children, build(depth-1))
					}
				}
				return n
			}
			doc := build(3)
			xmltree.Normalize(doc, nil)
			tr.Insert(seq.Encode(doc, d), uint64(i))
		}
		tr.Label()
		ok := true
		var count func(n *Node) uint64
		count = func(n *Node) uint64 {
			var c uint64
			for _, ch := range n.Children() {
				c += 1 + count(ch)
			}
			if n.Size != c {
				ok = false
			}
			return c
		}
		count(tr.Root())
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryEstimatePositive(t *testing.T) {
	d := seq.NewDict()
	tr := New()
	tr.Insert(encode(t, d, "<a><b>x</b></a>"), 1)
	if tr.MemoryEstimate() <= 0 {
		t.Fatal("MemoryEstimate must be positive for a non-empty trie")
	}
}
