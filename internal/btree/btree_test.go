package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

func newMemTree(t *testing.T, pageSize int) *BTree {
	t.Helper()
	tr, err := New(NewMemPager(pageSize), Options{PageSize: pageSize})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tr
}

func TestEmptyTree(t *testing.T) {
	tr := newMemTree(t, 512)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	_, ok, err := tr.Get([]byte("missing"))
	if err != nil || ok {
		t.Fatalf("Get on empty tree: ok=%v err=%v", ok, err)
	}
	deleted, err := tr.Delete([]byte("missing"))
	if err != nil || deleted {
		t.Fatalf("Delete on empty tree: deleted=%v err=%v", deleted, err)
	}
	if _, _, ok, _ := tr.First(); ok {
		t.Fatal("First on empty tree reported an entry")
	}
}

func TestPutGetSingle(t *testing.T) {
	tr := newMemTree(t, 512)
	if err := tr.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok, err := tr.Get([]byte("k"))
	if err != nil || !ok || string(got) != "v" {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestPutReplace(t *testing.T) {
	tr := newMemTree(t, 512)
	for i := 0; i < 3; i++ {
		if err := tr.Put([]byte("k"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	got, ok, _ := tr.Get([]byte("k"))
	if !ok || string(got) != "v2" {
		t.Fatalf("Get = %q, want v2", got)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replaces, want 1", tr.Len())
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	tr := newMemTree(t, 512)
	if err := tr.Put(nil, []byte("v")); err == nil {
		t.Fatal("Put with empty key succeeded")
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	tr := newMemTree(t, 512)
	big := make([]byte, 600)
	if err := tr.Put([]byte("k"), big); err == nil {
		t.Fatal("oversized value accepted")
	}
	bigKey := make([]byte, 400)
	for i := range bigKey {
		bigKey[i] = 'x'
	}
	if err := tr.Put(bigKey, nil); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val-%d", i)) }

func TestManyInsertsAscending(t *testing.T) {
	tr := newMemTree(t, 512)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, ok, err := tr.Get(key(i))
		if err != nil || !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("Get %d = %q, %v, %v", i, got, ok, err)
		}
	}
}

func TestManyInsertsRandomOrder(t *testing.T) {
	tr := newMemTree(t, 512)
	const n = 5000
	perm := rand.New(rand.NewSource(42)).Perm(n)
	for _, i := range perm {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		got, ok, _ := tr.Get(key(i))
		if !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("Get %d = %q %v", i, got, ok)
		}
	}
}

func TestScanFullOrdered(t *testing.T) {
	tr := newMemTree(t, 512)
	const n = 2000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var seen []string
	var prev []byte
	err := tr.Scan(nil, nil, func(k, v []byte) (bool, error) {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		seen = append(seen, string(k))
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("scan saw %d entries, want %d", len(seen), n)
	}
}

func TestScanRange(t *testing.T) {
	tr := newMemTree(t, 512)
	for i := 0; i < 100; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := tr.Scan(key(10), key(20), func(k, v []byte) (bool, error) {
		got = append(got, string(k))
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != string(key(10)) || got[9] != string(key(19)) {
		t.Fatalf("range scan got %v", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tr := newMemTree(t, 512)
	for i := 0; i < 100; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	err := tr.Scan(nil, nil, func(k, v []byte) (bool, error) {
		count++
		return count < 5, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early stop after %d entries, want 5", count)
	}
}

func TestScanPrefix(t *testing.T) {
	tr := newMemTree(t, 512)
	for _, k := range []string{"a/1", "a/2", "ab", "b/1", "a", "c"} {
		if err := tr.Put([]byte(k), nil); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := tr.ScanPrefix([]byte("a/"), func(k, v []byte) (bool, error) {
		got = append(got, string(k))
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a/1", "a/2"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("prefix scan got %v, want %v", got, want)
	}
}

func TestDeleteAll(t *testing.T) {
	tr := newMemTree(t, 512)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range perm {
		deleted, err := tr.Delete(key(i))
		if err != nil || !deleted {
			t.Fatalf("Delete %d: deleted=%v err=%v", i, deleted, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all, want 0", tr.Len())
	}
	for i := 0; i < n; i++ {
		if _, ok, _ := tr.Get(key(i)); ok {
			t.Fatalf("key %d still present after delete", i)
		}
	}
}

func TestDeleteHalfThenScan(t *testing.T) {
	tr := newMemTree(t, 512)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		if deleted, err := tr.Delete(key(i)); err != nil || !deleted {
			t.Fatalf("Delete %d: %v %v", i, deleted, err)
		}
	}
	count := 0
	err := tr.Scan(nil, nil, func(k, v []byte) (bool, error) {
		count++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n/2 {
		t.Fatalf("scan after deletes saw %d, want %d", count, n/2)
	}
}

// TestFrontCodedDeleteGrowth: removing a cell from a front-coded page shifts
// every following cell's index, which moves restart points onto different
// cells — cells that then store their keys in full, so a delete can GROW the
// encoded page and force a split on the delete path. Long-shared-prefix keys
// on small pages with heavy interleaved churn drive exactly that geometry;
// the tree must stay consistent (no overflow error, exact membership, sorted
// scans) throughout.
func TestFrontCodedDeleteGrowth(t *testing.T) {
	tr := newMemTree(t, 512)
	prefix := bytes.Repeat([]byte("p"), 100) // near maxKeySize keys, tiny suffix deltas
	key := func(i int) []byte {
		return append(append([]byte(nil), prefix...), []byte(fmt.Sprintf("%06d", i))...)
	}
	live := map[int]bool{}
	for i := 0; i < 400; i++ {
		if err := tr.Put(key(i), []byte{byte(i)}); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
		live[i] = true
	}
	rng := rand.New(rand.NewSource(61))
	for round := 0; round < 6; round++ {
		// Delete a random third, including long ascending runs (removing a
		// page's first cells repeatedly is the restart-shifting case).
		for i := 0; i < 400; i++ {
			if live[i] && (i%3 == round%3 || rng.Intn(4) == 0) {
				deleted, err := tr.Delete(key(i))
				if err != nil {
					t.Fatalf("round %d Delete(%d): %v", round, i, err)
				}
				if !deleted {
					t.Fatalf("round %d Delete(%d): key missing", round, i)
				}
				delete(live, i)
			}
		}
		for i := 0; i < 400; i++ {
			if !live[i] {
				if err := tr.Put(key(i), []byte{byte(i)}); err != nil {
					t.Fatalf("round %d re-Put(%d): %v", round, i, err)
				}
				live[i] = true
			}
		}
	}
	if got := int(tr.Len()); got != len(live) {
		t.Fatalf("Len = %d, want %d", got, len(live))
	}
	var prev []byte
	n := 0
	err := tr.Scan(nil, nil, func(k, v []byte) (bool, error) {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			return false, fmt.Errorf("scan out of order at %q", k)
		}
		prev = append(prev[:0], k...)
		n++
		return true, nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != len(live) {
		t.Fatalf("scan visited %d keys, want %d", n, len(live))
	}
}

// TestDeleteGrowsPageAndSplits pins the delete-split mechanism with a
// crafted page: cell 17 is a long key that front-codes against its restart
// predecessor (cell 16). Removing cell 0 shifts every index, making old cell
// 17 the new restart at index 16 — stored in full, growing the encoding past
// the page. The delete path must split the leaf instead of erroring at
// serialize time. The padding search keeps the construction valid if codec
// constants drift: setup fails loudly rather than silently not exercising
// the branch.
func TestDeleteGrowsPageAndSplits(t *testing.T) {
	const page = 512
	long := bytes.Repeat([]byte("x"), 90)
	build := func(pad int) (keys, vals [][]byte) {
		add := func(k []byte, v int) {
			keys = append(keys, k)
			vals = append(vals, bytes.Repeat([]byte{7}, v))
		}
		add([]byte("a0"), 0)
		for i := 1; i <= 15; i++ {
			add([]byte(fmt.Sprintf("b%02d", i)), 0)
		}
		add(append(append([]byte("c"), long...), '0'), 0) // index 16: restart
		add(append(append([]byte("c"), long...), '1'), 0) // index 17: shares 92 bytes
		for i := 18; i < 34; i++ {
			add([]byte(fmt.Sprintf("d%03d", i)), pad)
		}
		return keys, vals
	}
	var keys, vals [][]byte
	found := false
	for pad := 0; pad <= 120 && !found; pad++ {
		keys, vals = build(pad)
		if encodedLeafSize(keys, vals) <= page && encodedLeafSize(keys[1:], vals[1:]) > page {
			found = true
		}
	}
	if !found {
		t.Fatal("setup: no padding makes the page grow past the page size on first-cell removal")
	}

	tr := newMemTree(t, page)
	for i, k := range keys {
		if err := tr.Put(k, vals[i]); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	root, err := tr.load(tr.root)
	if err != nil {
		t.Fatal(err)
	}
	if !root.leaf {
		t.Fatal("setup: tree split during sorted inserts; page no longer crafted")
	}

	deleted, err := tr.Delete(keys[0])
	if err != nil {
		t.Fatalf("Delete of first cell: %v", err)
	}
	if !deleted {
		t.Fatal("Delete reported the key missing")
	}
	root, err = tr.load(tr.root)
	if err != nil {
		t.Fatal(err)
	}
	if root.leaf {
		t.Fatal("delete left an overflowing leaf unsplit")
	}
	if got := int(tr.Len()); got != len(keys)-1 {
		t.Fatalf("Len = %d, want %d", got, len(keys)-1)
	}
	for i := 1; i < len(keys); i++ {
		v, ok, err := tr.Get(keys[i])
		if err != nil || !ok || !bytes.Equal(v, vals[i]) {
			t.Fatalf("Get(%d) after delete-split = %v, %v, %v", i, v, ok, err)
		}
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := newMemTree(t, 512)
	if err := tr.Put([]byte("a"), nil); err != nil {
		t.Fatal(err)
	}
	deleted, err := tr.Delete([]byte("b"))
	if err != nil || deleted {
		t.Fatalf("Delete missing: deleted=%v err=%v", deleted, err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestFreelistReuse(t *testing.T) {
	tr := newMemTree(t, 512)
	const n = 2000
	// Publish/Reclaim the way core does after every committed batch: with no
	// pinned readers, pages freed by a publish become reusable immediately.
	// Publishing frequently forces heavy copy-on-write shadowing, so this
	// also proves shadowed-out pages are actually recycled.
	epoch := uint64(0)
	publish := func() {
		epoch++
		tr.Publish(epoch)
		tr.Reclaim(epoch)
		if err := tr.CheckVersions(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			publish()
		}
	}
	publish()
	grown := tr.PageCount()
	for i := 0; i < n; i++ {
		if _, err := tr.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			publish()
		}
	}
	publish()
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			publish()
		}
	}
	publish()
	// Re-inserting the same data must not grow storage unboundedly: freed
	// pages must be recycled. Allow some slack for different tree shape.
	if got := tr.PageCount(); got > grown*2 {
		t.Fatalf("pages grew from %d to %d; freelist not reused", grown, got)
	}
}

func TestUserMetaRoundTrip(t *testing.T) {
	tr := newMemTree(t, 512)
	meta := []byte("hello metadata")
	if err := tr.SetUserMeta(meta); err != nil {
		t.Fatal(err)
	}
	if got := tr.UserMeta(); !bytes.Equal(got, meta) {
		t.Fatalf("UserMeta = %q, want %q", got, meta)
	}
	if err := tr.SetUserMeta(make([]byte, 1024)); err == nil {
		t.Fatal("oversized user meta accepted")
	}
}

func TestFilePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.db")
	pg, err := OpenFilePager(path, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(pg, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1500
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.SetUserMeta([]byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	pg2, err := OpenFilePager(path, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := New(pg2, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", tr2.Len(), n)
	}
	if got := tr2.UserMeta(); string(got) != "persisted" {
		t.Fatalf("reopened UserMeta = %q", got)
	}
	for i := 0; i < n; i += 97 {
		got, ok, err := tr2.Get(key(i))
		if err != nil || !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("reopened Get %d = %q %v %v", i, got, ok, err)
		}
	}
}

func TestFilePagerPageSizeMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tree.db")
	pg, err := OpenFilePager(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(pg, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Put([]byte("a"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	pg2, err := OpenFilePager(path, 1024, 16)
	if err == nil {
		// File size 3*512 is not a multiple of 1024, so OpenFilePager should
		// have failed; if it didn't, New must catch the meta mismatch.
		if _, err := New(pg2, Options{PageSize: 1024}); err == nil {
			t.Fatal("page size mismatch undetected")
		}
		pg2.Close()
	}
}

func TestSmallPagesStressSplits(t *testing.T) {
	// A 512-byte page with 12-byte keys forces frequent splits at every
	// level, exercising internal-node splitting deeply.
	tr := newMemTree(t, 512)
	const n = 20000
	rng := rand.New(rand.NewSource(99))
	perm := rng.Perm(n)
	for _, i := range perm {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Verify order and completeness.
	i := 0
	err := tr.Scan(nil, nil, func(k, v []byte) (bool, error) {
		if !bytes.Equal(k, key(i)) {
			t.Fatalf("position %d: got %q want %q", i, k, key(i))
		}
		i++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("scan saw %d entries, want %d", i, n)
	}
}

// TestModelRandomOps drives the tree with a random op sequence and compares
// against a map+sorted-slice model after every batch.
func TestModelRandomOps(t *testing.T) {
	for _, pageSize := range []int{512, 2048} {
		t.Run(fmt.Sprintf("page%d", pageSize), func(t *testing.T) {
			tr := newMemTree(t, pageSize)
			model := map[string]string{}
			rng := rand.New(rand.NewSource(2024))
			const ops = 30000
			for op := 0; op < ops; op++ {
				k := fmt.Sprintf("k%04d", rng.Intn(2500))
				switch rng.Intn(3) {
				case 0, 1: // put
					v := fmt.Sprintf("v%d", rng.Intn(1000000))
					if err := tr.Put([]byte(k), []byte(v)); err != nil {
						t.Fatalf("op %d Put: %v", op, err)
					}
					model[k] = v
				case 2: // delete
					deleted, err := tr.Delete([]byte(k))
					if err != nil {
						t.Fatalf("op %d Delete: %v", op, err)
					}
					_, inModel := model[k]
					if deleted != inModel {
						t.Fatalf("op %d Delete %q: got %v, model %v", op, k, deleted, inModel)
					}
					delete(model, k)
				}
				if op%5000 == 4999 {
					verifyAgainstModel(t, tr, model)
				}
			}
			verifyAgainstModel(t, tr, model)
		})
	}
}

func verifyAgainstModel(t *testing.T, tr *BTree, model map[string]string) {
	t.Helper()
	if int(tr.Len()) != len(model) {
		t.Fatalf("Len = %d, model has %d", tr.Len(), len(model))
	}
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	err := tr.Scan(nil, nil, func(k, v []byte) (bool, error) {
		if i >= len(keys) {
			t.Fatalf("scan produced extra key %q", k)
		}
		if string(k) != keys[i] || string(v) != model[keys[i]] {
			t.Fatalf("scan position %d: got (%q,%q) want (%q,%q)", i, k, v, keys[i], model[keys[i]])
		}
		i++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(keys) {
		t.Fatalf("scan saw %d keys, model has %d", i, len(keys))
	}
}

func TestSeekFirst(t *testing.T) {
	tr := newMemTree(t, 512)
	for i := 0; i < 50; i++ {
		if err := tr.Put(key(i*2), val(i*2)); err != nil {
			t.Fatal(err)
		}
	}
	k, _, ok, err := tr.SeekFirst(key(11), nil)
	if err != nil || !ok || !bytes.Equal(k, key(12)) {
		t.Fatalf("SeekFirst(11) = %q %v %v, want key 12", k, ok, err)
	}
	_, _, ok, err = tr.SeekFirst(key(99), key(99))
	if err != nil || ok {
		t.Fatalf("SeekFirst with empty range: ok=%v err=%v", ok, err)
	}
}

func TestValuelessEntries(t *testing.T) {
	tr := newMemTree(t, 512)
	if err := tr.Put([]byte("only-key"), nil); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tr.Get([]byte("only-key"))
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
}

func TestFilePagerEviction(t *testing.T) {
	dir := t.TempDir()
	pg, err := OpenFilePager(filepath.Join(dir, "t.db"), 512, 4) // tiny pool
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(pg, Options{PageSize: 512, NodeCache: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 31 {
		got, ok, err := tr.Get(key(i))
		if err != nil || !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("Get %d under tiny caches = %q %v %v", i, got, ok, err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPutSequential(b *testing.B) {
	tr, _ := New(NewMemPager(2048), Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetRandom(b *testing.B) {
	tr, _ := New(NewMemPager(2048), Options{})
	const n = 100000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := tr.Get(key(rng.Intn(n))); err != nil || !ok {
			b.Fatal(err)
		}
	}
}

func TestFilePagerCacheStats(t *testing.T) {
	dir := t.TempDir()
	pg, err := OpenFilePager(filepath.Join(dir, "c.db"), 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	// A tiny decoded-node cache forces the tree back to the pager, and the
	// tiny pool forces the pager back to disk.
	tr, err := New(pg, Options{PageSize: 512, NodeCache: 4})
	if err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(5)).Perm(1000)
	for _, i := range perm {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range perm[:200] {
		if _, ok, err := tr.Get(key(i)); err != nil || !ok {
			t.Fatalf("Get %d: %v %v", i, ok, err)
		}
	}
	hits, misses := pg.CacheStats()
	if hits == 0 {
		t.Fatal("no buffer-pool hits recorded")
	}
	// With only 8 resident pages and a tree larger than that, misses must
	// occur too.
	if misses == 0 {
		t.Fatal("no buffer-pool misses recorded despite tiny pool")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBinaryKeys drives the tree with arbitrary binary keys and
// values (not just printable strings) against a map model.
func TestPropertyBinaryKeys(t *testing.T) {
	tr := newMemTree(t, 512)
	model := map[string][]byte{}
	rng := rand.New(rand.NewSource(77))
	randBytes := func(maxLen int) []byte {
		b := make([]byte, 1+rng.Intn(maxLen))
		rng.Read(b)
		return b
	}
	for op := 0; op < 8000; op++ {
		k := randBytes(24)
		switch rng.Intn(4) {
		case 0, 1:
			v := randBytes(40)
			if err := tr.Put(k, v); err != nil {
				t.Fatalf("op %d Put(%x): %v", op, k, err)
			}
			model[string(k)] = v
		case 2:
			got, ok, err := tr.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			want, inModel := model[string(k)]
			if ok != inModel || (ok && !bytes.Equal(got, want)) {
				t.Fatalf("op %d Get(%x) = %x,%v want %x,%v", op, k, got, ok, want, inModel)
			}
		case 3:
			deleted, err := tr.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			_, inModel := model[string(k)]
			if deleted != inModel {
				t.Fatalf("op %d Delete(%x) = %v, model %v", op, k, deleted, inModel)
			}
			delete(model, string(k))
		}
	}
	verifyAgainstModel(t, tr, toStringModel(model))
}

func toStringModel(m map[string][]byte) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = string(v)
	}
	return out
}

func TestZeroByteKeys(t *testing.T) {
	// Keys containing 0x00 and 0xFF must order and round-trip correctly.
	tr := newMemTree(t, 512)
	keys := [][]byte{{0}, {0, 0}, {0, 1}, {0xFF}, {0xFF, 0}, {1, 0xFF}}
	for i, k := range keys {
		if err := tr.Put(k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got [][]byte
	if err := tr.Scan(nil, nil, func(k, v []byte) (bool, error) {
		got = append(got, append([]byte(nil), k...))
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1], got[i]) >= 0 {
			t.Fatalf("binary keys out of order: %x then %x", got[i-1], got[i])
		}
	}
	if len(got) != len(keys) {
		t.Fatalf("scan saw %d keys, want %d", len(got), len(keys))
	}
}
