package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// buildLeaf makes a sorted leaf node from a deterministic key generator.
func buildLeaf(nkeys int, rng *rand.Rand) *node {
	keys := make([][]byte, 0, nkeys)
	seen := map[string]bool{}
	for len(keys) < nkeys {
		// Keys with long shared prefixes, mimicking D-Ancestor layouts.
		k := make([]byte, 4+rng.Intn(40))
		binary.BigEndian.PutUint32(k, uint32(rng.Intn(4)))
		for i := 4; i < len(k); i++ {
			k[i] = byte(rng.Intn(3))
		}
		if seen[string(k)] {
			continue
		}
		seen[string(k)] = true
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	vals := make([][]byte, nkeys)
	for i := range vals {
		vals[i] = make([]byte, rng.Intn(12))
		rng.Read(vals[i])
	}
	return &node{id: 7, leaf: true, keys: keys, vals: vals}
}

func nodesEqual(a, b *node) error {
	if a.leaf != b.leaf || len(a.keys) != len(b.keys) {
		return fmt.Errorf("shape mismatch: leaf %v/%v, %d/%d keys", a.leaf, b.leaf, len(a.keys), len(b.keys))
	}
	for i := range a.keys {
		if !bytes.Equal(a.keys[i], b.keys[i]) {
			return fmt.Errorf("key %d: %x != %x", i, a.keys[i], b.keys[i])
		}
	}
	if a.leaf {
		for i := range a.vals {
			if !bytes.Equal(a.vals[i], b.vals[i]) {
				return fmt.Errorf("val %d: %x != %x", i, a.vals[i], b.vals[i])
			}
		}
		return nil
	}
	if len(a.kids) != len(b.kids) {
		return fmt.Errorf("kids: %d != %d", len(a.kids), len(b.kids))
	}
	for i := range a.kids {
		if a.kids[i] != b.kids[i] {
			return fmt.Errorf("kid %d: %d != %d", i, a.kids[i], b.kids[i])
		}
	}
	return nil
}

// TestNodeCodecRoundTrip proves serialize/deserializeNode round-trips both
// formats and that serializedSize is exact (byte-for-byte: re-serializing
// the decoded node reproduces the page image).
func TestNodeCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := buildLeaf(1+rng.Intn(60), rng)
		if rng.Intn(3) == 0 {
			// Convert to an internal node: same keys as separators.
			n.leaf = false
			n.vals = nil
			n.kids = make([]PageID, len(n.keys)+1)
			for i := range n.kids {
				n.kids[i] = PageID(rng.Intn(1 << 20))
			}
		}
		for _, legacy := range []bool{false, true} {
			size := n.serializedSize(legacy)
			buf := make([]byte, 4096)
			if err := n.serialize(buf, legacy); err != nil {
				t.Fatalf("trial %d legacy=%v: serialize: %v", trial, legacy, err)
			}
			got, err := deserializeNode(n.id, buf)
			if err != nil {
				t.Fatalf("trial %d legacy=%v: deserialize: %v", trial, legacy, err)
			}
			if err := nodesEqual(n, got); err != nil {
				t.Fatalf("trial %d legacy=%v: %v", trial, legacy, err)
			}
			buf2 := make([]byte, 4096)
			if err := got.serialize(buf2, legacy); err != nil {
				t.Fatalf("trial %d legacy=%v: re-serialize: %v", trial, legacy, err)
			}
			if !bytes.Equal(buf[:size], buf2[:size]) || !bytes.Equal(buf, buf2) {
				t.Fatalf("trial %d legacy=%v: round-trip not byte-for-byte", trial, legacy)
			}
			// serializedSize must be exact: all bytes past it are zero.
			for i := size; i < len(buf); i++ {
				if buf[i] != 0 {
					t.Fatalf("trial %d legacy=%v: nonzero byte %d past serializedSize %d", trial, legacy, i, size)
				}
			}
		}
	}
}

// TestFrontCodedOrdering is the page-ordering property: front coding is an
// encoding detail only — the decoded key sequence of any serialized page
// equals the original, and its order under bytes.Compare is preserved.
func TestFrontCodedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := buildLeaf(2+rng.Intn(80), rng)
		buf := make([]byte, 8192)
		if err := n.serialize(buf, false); err != nil {
			t.Fatal(err)
		}
		got, err := deserializeNode(n.id, buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(got.keys); i++ {
			if bytes.Compare(got.keys[i-1], got.keys[i]) >= 0 {
				t.Fatalf("trial %d: decoded keys out of order at %d: %x >= %x",
					trial, i, got.keys[i-1], got.keys[i])
			}
			if bytes.Compare(got.keys[i-1], got.keys[i]) != bytes.Compare(n.keys[i-1], n.keys[i]) {
				t.Fatalf("trial %d: ordering changed by codec at %d", trial, i)
			}
		}
	}
}

// TestEncodedSizeHelpersMatchSerialize pins the size helpers used by
// split/borrow/merge decisions to the serializer.
func TestEncodedSizeHelpersMatchSerialize(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 100; trial++ {
		n := buildLeaf(1+rng.Intn(40), rng)
		if encodedLeafSize(n.keys, n.vals) != n.serializedSize(false) {
			t.Fatal("encodedLeafSize != serializedSize")
		}
		n.leaf = false
		n.vals = nil
		n.kids = make([]PageID, len(n.keys)+1)
		for i := range n.kids {
			n.kids[i] = PageID(rng.Intn(1 << 30))
		}
		if encodedInternalSize(n.keys, n.kids) != n.serializedSize(false) {
			t.Fatal("encodedInternalSize != serializedSize")
		}
	}
}

// FuzzNodeCodec feeds arbitrary page images to deserializeNode (must never
// panic) and, when the image parses, re-serializes and re-parses the result
// to prove decode→encode→decode is a fixed point.
func FuzzNodeCodec(f *testing.F) {
	// Seed with valid images of both formats plus corruptions.
	rng := rand.New(rand.NewSource(5))
	for _, nkeys := range []int{0, 1, 17, 40} {
		n := buildLeaf(nkeys+1, rng)
		buf := make([]byte, 512)
		if err := n.serialize(buf, false); err == nil {
			f.Add(append([]byte(nil), buf...))
		}
		if err := n.serialize(buf, true); err == nil {
			f.Add(append([]byte(nil), buf...))
		}
		n.leaf = false
		n.vals = nil
		n.kids = make([]PageID, len(n.keys)+1)
		if err := n.serialize(buf, false); err == nil {
			buf[9] ^= 0x40 // bit flip in the cell area
			f.Add(append([]byte(nil), buf...))
		}
	}
	f.Add([]byte{pageLeafV2, 0xFF, 0xFF})
	f.Add([]byte{pageInternalV2, 0, 3, 0x80, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := deserializeNode(3, data)
		if err != nil {
			return
		}
		if !n.leaf && len(n.kids) != len(n.keys)+1 {
			t.Fatalf("parsed internal node with %d keys, %d kids", len(n.keys), len(n.kids))
		}
		// A parsed node re-serializes into a buffer of its exact size and
		// parses back equal.
		buf := make([]byte, n.serializedSize(false))
		if len(buf) < len(data) {
			buf = make([]byte, len(data))
		}
		if err := n.serialize(buf, false); err != nil {
			// The input may decode to a node bigger than any legal page
			// (e.g. legacy cells re-encoded); serialize only errors on
			// overflow, which cannot happen into an exact-size buffer.
			t.Fatalf("re-serialize of parsed node failed: %v", err)
		}
		n2, err := deserializeNode(3, buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if err := nodesEqual(n, n2); err != nil {
			t.Fatalf("decode→encode→decode not a fixed point: %v", err)
		}
	})
}
