package btree

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"vist/internal/obs"
)

// The write-ahead log makes page-file mutation crash-atomic. Sync stages
// every dirty page as a physical redo record in the log, appends a commit
// record, and fsyncs the log — that fsync is the durability point. Only then
// are the pages checkpointed into their main files, the main files fsynced,
// and the log truncated. A crash at any byte offset therefore leaves either
// (a) a log without a trailing commit record — the uncommitted tail is
// discarded and the main files still hold the previous committed state — or
// (b) a committed log — replay on the next open re-applies every page,
// healing any torn checkpoint writes. Pages never reach a main file before
// their log record is durable, because eviction-driven write-back also goes
// through stagePage.
//
// Log layout:
//
//	header (16 bytes): magic "VISTWAL1", version uint32, reserved uint32
//	frame:  kind uint8 ('P' page, 'C' commit), fileID uint8,
//	        flags uint16, pageID uint32, dataLen uint32,
//	        data [dataLen]byte, crc32c uint32 (over header+data)
//
// A commit record commits every frame that precedes it. One WAL may serve
// several FilePagers (distinguished by fileID), which is how core commits all
// four of an index's trees atomically.
const (
	walMagic           = "VISTWAL1"
	walVersion         = 1
	walHeaderSize      = 16
	walFrameHeaderSize = 12
	walFrameCRCSize    = 4

	walKindPage   = byte('P')
	walKindCommit = byte('C')

	// maxWALFrameData bounds dataLen during parsing so a corrupt length
	// field cannot provoke a huge allocation.
	maxWALFrameData = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

type walKey struct {
	fileID uint8
	page   PageID
}

// walFrameRef locates a staged page's payload inside the log file.
type walFrameRef struct {
	off int64 // offset of the data section
	n   int   // payload length
	crc uint32
}

// RecoveryStats reports what OpenWAL and Recover found.
type RecoveryStats struct {
	// Replayed is true when committed frames were re-applied to main files.
	Replayed bool
	// PagesReplayed counts the committed page frames applied.
	PagesReplayed int
	// FramesDiscarded counts page frames that were staged but never
	// committed (dropped), including any torn trailing frame.
	FramesDiscarded int
	// TornTail is true when the log ended in a torn or corrupt frame.
	TornTail bool
}

// WAL is a physical redo log shared by one or more FilePagers. All methods
// are safe for concurrent use; pagers call into the WAL while holding their
// own mutex (lock order: FilePager.mu → WAL.mu → WAL.idxMu, never reversed).
//
// Locking is split so that readers never wait on a commit: w.mu serializes
// the writer side (staging, commit, checkpoint, recovery — already mutually
// exclusive at the index layer, which holds Index.mu for all of them), while
// idxMu guards only the staged-frame index and the log-file bytes it points
// into. readStaged takes idxMu alone, so a query faulting a page proceeds
// concurrently with Commit's fsync and checkpoint — the multi-millisecond
// operations that used to stall every cache-miss read under one big mutex —
// and is excluded only for the brief index swap when the log resets.
type WAL struct {
	mu      sync.Mutex
	f       File
	path    string
	members map[uint8]*FilePager

	size      int64 // append offset
	pending   int   // frames appended since the last commit record
	commitSeq uint32

	// idxMu guards index and keeps the frame bytes it references stable:
	// the log is append-only between resets, and resetLocked empties the
	// index under the write lock before truncating, so a reader holding the
	// read lock can pread its frame without racing the truncate.
	idxMu sync.RWMutex
	index map[walKey]walFrameRef // latest staged frame per page

	// replay holds committed frames parsed at open, in log order, until
	// Recover applies them.
	replay    []replayFrame
	stats     RecoveryStats
	recovered bool

	// m is never nil (a bundle of nil metrics when observability is off);
	// replace it with SetMetrics before Recover to observe recovery too.
	m *obs.WALMetrics

	// ship, when set, receives the raw bytes of every committed frame run
	// (page frames + their commit record) after the commit fsync and before
	// the checkpoint truncates them — the hook WAL shipping replication
	// hangs off. committedEnd tracks where the committed region parsed at
	// open ends, so Recover can re-ship a tail whose shipping the crash may
	// have interrupted.
	ship         func(frames []byte) error
	committedEnd int64
}

type replayFrame struct {
	fileID uint8
	page   PageID
	ref    walFrameRef
}

// OpenWAL opens (or creates) the log at path and parses any existing tail:
// committed frames are retained for Recover, an uncommitted or torn tail is
// noted for discard. fs == nil selects the OS filesystem. Attach pagers with
// OpenFilePagerOpts, then call Recover before reading through them.
func OpenWAL(path string, fs FS) (*WAL, error) {
	if fs == nil {
		fs = OSFS{}
	}
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, err
	}
	w := &WAL{
		f:       f,
		path:    path,
		members: make(map[uint8]*FilePager),
		index:   make(map[walKey]walFrameRef),
		m:       &obs.WALMetrics{},
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	if size < walHeaderSize {
		// New log, or a crash tore the initial header write: start fresh.
		if err := w.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return w, nil
	}
	hdr := make([]byte, walHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, err
	}
	if string(hdr[:8]) != walMagic {
		f.Close()
		return nil, fmt.Errorf("btree: %s is not a WAL (magic %q)", path, hdr[:8])
	}
	if v := binary.BigEndian.Uint32(hdr[8:12]); v != walVersion {
		f.Close()
		return nil, fmt.Errorf("btree: unsupported WAL version %d", v)
	}
	if err := w.parse(size); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

func (w *WAL) writeHeader() error {
	hdr := make([]byte, walHeaderSize)
	copy(hdr, walMagic)
	binary.BigEndian.PutUint32(hdr[8:12], walVersion)
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		return err
	}
	w.size = walHeaderSize
	return nil
}

// parse scans frames from the header to the first commit-less or corrupt
// tail, filling w.replay with committed frames in order.
func (w *WAL) parse(size int64) error {
	var pending []replayFrame
	pos := int64(walHeaderSize)
	hdr := make([]byte, walFrameHeaderSize)
	for {
		fr, next, ok := w.parseFrameAt(pos, size, hdr)
		if !ok {
			w.stats.TornTail = pos < size
			break
		}
		switch fr.kind {
		case walKindPage:
			pending = append(pending, replayFrame{fileID: fr.fileID, page: fr.page, ref: fr.ref})
		case walKindCommit:
			w.replay = append(w.replay, pending...)
			pending = pending[:0]
			w.committedEnd = next
		}
		pos = next
	}
	w.stats.FramesDiscarded = len(pending)
	w.stats.PagesReplayed = len(w.replay)
	w.size = size // appends would go here, but Recover truncates first
	return nil
}

type parsedFrame struct {
	kind   byte
	fileID uint8
	page   PageID
	ref    walFrameRef
}

// parseFrameAt decodes the frame at pos; ok is false on any torn, truncated,
// corrupt, or unknown frame (recovery treats all of those as end-of-log).
func (w *WAL) parseFrameAt(pos, size int64, hdr []byte) (fr parsedFrame, next int64, ok bool) {
	if pos+walFrameHeaderSize+walFrameCRCSize > size {
		return fr, 0, false
	}
	if _, err := w.f.ReadAt(hdr, pos); err != nil {
		return fr, 0, false
	}
	fr.kind = hdr[0]
	fr.fileID = hdr[1]
	fr.page = PageID(binary.BigEndian.Uint32(hdr[4:8]))
	dataLen := int64(binary.BigEndian.Uint32(hdr[8:12]))
	if fr.kind != walKindPage && fr.kind != walKindCommit {
		return fr, 0, false
	}
	if dataLen > maxWALFrameData || pos+walFrameHeaderSize+dataLen+walFrameCRCSize > size {
		return fr, 0, false
	}
	body := make([]byte, dataLen+walFrameCRCSize)
	if _, err := w.f.ReadAt(body, pos+walFrameHeaderSize); err != nil {
		return fr, 0, false
	}
	crc := crc32.Update(crc32.Checksum(hdr, castagnoli), castagnoli, body[:dataLen])
	if crc != binary.BigEndian.Uint32(body[dataLen:]) {
		return fr, 0, false
	}
	fr.ref = walFrameRef{off: pos + walFrameHeaderSize, n: int(dataLen), crc: crc}
	return fr, pos + walFrameHeaderSize + dataLen + walFrameCRCSize, true
}

// attach registers a member pager under fileID.
func (w *WAL) attach(fileID uint8, p *FilePager) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.members[fileID]; dup {
		return fmt.Errorf("btree: WAL file ID %d attached twice", fileID)
	}
	w.members[fileID] = p
	return nil
}

// Recover applies the committed tail parsed at open to the attached pagers'
// main files, fsyncs them, and truncates the log. It must run after every
// member pager is attached and before any page is read through them; a
// B+Tree opened over an attached pager before Recover would see pre-crash
// state. Recover acquires member pager mutexes while holding w.mu — the
// reverse of the runtime order — which is safe only because recovery runs
// single-threaded at open, before the pagers serve any traffic.
func (w *WAL) Recover() (RecoveryStats, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.recovered {
		return w.stats, nil
	}
	touched := make(map[uint8]*FilePager)
	for _, fr := range w.replay {
		p, ok := w.members[fr.fileID]
		if !ok {
			return w.stats, fmt.Errorf("btree: WAL frame for unattached file ID %d", fr.fileID)
		}
		data := make([]byte, fr.ref.n)
		if _, err := w.f.ReadAt(data, fr.ref.off); err != nil {
			return w.stats, fmt.Errorf("btree: WAL replay read: %w", err)
		}
		if err := p.applyRecovered(fr.page, data); err != nil {
			return w.stats, err
		}
		touched[fr.fileID] = p
	}
	for _, p := range touched {
		if err := p.fileSync(); err != nil {
			return w.stats, err
		}
	}
	// Drop any torn trailing partial page the crash left in member files.
	for _, p := range w.members {
		if err := p.truncateTornTail(); err != nil {
			return w.stats, err
		}
	}
	// Re-ship the committed tail before it is truncated: the crash may have
	// hit between the commit fsync and the ship, and the downstream apply is
	// idempotent, so shipping it again is always safe.
	if err := w.shipLocked(w.committedEnd); err != nil {
		return w.stats, err
	}
	if err := w.resetLocked(); err != nil {
		return w.stats, err
	}
	w.stats.Replayed = len(w.replay) > 0
	if w.stats.Replayed {
		w.m.Recoveries.Inc()
		w.m.PagesReplayed.Add(uint64(len(w.replay)))
	}
	w.replay = nil
	w.recovered = true
	return w.stats, nil
}

// SetShipper attaches a replication hook: fn is called with the raw bytes of
// the committed log region — page frames followed by their commit record,
// exactly as framed on disk — after each commit fsync and before the
// checkpoint truncates the log. A failing fn fails the Commit (before the
// checkpoint, so the frames survive in the log); the retry after a heal
// re-ships the same region, so fn must tolerate duplicate byte runs. Physical
// page redo is idempotent, which is what makes that safe to apply downstream.
//
// Call it after OpenWAL and before Recover: a committed tail found at open is
// re-shipped during Recover, healing a crash that landed between the commit
// fsync and the ship.
func (w *WAL) SetShipper(fn func(frames []byte) error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ship = fn
}

// shipLocked sends the log bytes in [walHeaderSize, end) to the shipper.
func (w *WAL) shipLocked(end int64) error {
	if w.ship == nil || end <= walHeaderSize {
		return nil
	}
	frames := make([]byte, end-walHeaderSize)
	if _, err := w.f.ReadAt(frames, walHeaderSize); err != nil {
		return fmt.Errorf("btree: WAL ship read: %w", err)
	}
	if err := w.ship(frames); err != nil {
		return fmt.Errorf("btree: WAL ship: %w", err)
	}
	return nil
}

// SetMetrics attaches an observability bundle (nil restores the no-op
// default). Call it right after OpenWAL, before Recover, so recovery and all
// commits are observed; swapping bundles mid-traffic is not supported.
func (w *WAL) SetMetrics(m *obs.WALMetrics) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if m == nil {
		m = &obs.WALMetrics{}
	}
	w.m = m
}

// Stats returns the recovery statistics gathered at open/Recover.
func (w *WAL) Stats() RecoveryStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// stagePage appends a redo record for one page. The record is not durable
// (and will be discarded by recovery) until the next Commit.
func (w *WAL) stagePage(fileID uint8, page PageID, data []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	frame := encodeWALFrame(nil, walKindPage, fileID, page, data)
	if _, err := w.f.WriteAt(frame, w.size); err != nil {
		return err
	}
	// The frame bytes land beyond every offset the index references before
	// readers can see them, so only the map insert needs reader exclusion.
	w.idxMu.Lock()
	w.index[walKey{fileID, page}] = walFrameRef{
		off: w.size + walFrameHeaderSize,
		n:   len(data),
		crc: binary.BigEndian.Uint32(frame[len(frame)-walFrameCRCSize:]),
	}
	w.idxMu.Unlock()
	w.size += int64(len(frame))
	w.pending++
	w.m.PagesStaged.Inc()
	w.m.BytesLogged.Add(uint64(len(frame)))
	return nil
}

// readStaged fills buf with the latest staged version of the page, if the
// log holds one newer than the main file. The frame CRC is re-verified so a
// failing disk cannot feed back a torn record.
//
// This is the read-path entry point, so it deliberately takes only idxMu:
// holding the read lock across the pread keeps the referenced bytes from
// being truncated (resetLocked excludes readers), while a Commit running
// under w.mu — fsync, checkpoint copies — proceeds in parallel.
func (w *WAL) readStaged(fileID uint8, page PageID, buf []byte) (bool, error) {
	w.idxMu.RLock()
	defer w.idxMu.RUnlock()
	ref, ok := w.index[walKey{fileID, page}]
	if !ok {
		return false, nil
	}
	if ref.n > len(buf) {
		return false, fmt.Errorf("btree: WAL frame for page %d holds %d bytes, want %d", page, ref.n, len(buf))
	}
	if _, err := w.f.ReadAt(buf[:ref.n], ref.off); err != nil {
		return false, err
	}
	hdr := [walFrameHeaderSize]byte{walKindPage, fileID}
	binary.BigEndian.PutUint32(hdr[4:8], uint32(page))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(ref.n))
	if crc := crc32.Update(crc32.Checksum(hdr[:], castagnoli), castagnoli, buf[:ref.n]); crc != ref.crc {
		return false, fmt.Errorf("btree: %w: WAL frame for page %d fails CRC", ErrCorrupt, page)
	}
	return true, nil
}

// Commit makes every staged record durable (commit record + fsync — the
// durability point), then checkpoints the staged pages into their main
// files, fsyncs those, and truncates the log. A WAL with nothing staged is a
// no-op.
func (w *WAL) Commit() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.size == walHeaderSize && w.pending == 0 {
		return nil
	}
	if w.pending > 0 {
		w.commitSeq++
		frame := encodeWALFrame(nil, walKindCommit, 0, PageID(w.commitSeq), nil)
		if _, err := w.f.WriteAt(frame, w.size); err != nil {
			return err
		}
		w.size += int64(len(frame))
		w.pending = 0
		w.m.Commits.Inc()
		w.m.BytesLogged.Add(uint64(len(frame)))
		if err := w.f.Sync(); err != nil {
			return err
		}
		w.m.Fsyncs.Inc()
	}
	// Everything in the log is now committed and durable; ship it before the
	// checkpoint truncates it. This also runs on the retry path (pending == 0
	// after a failed ship or checkpoint), re-shipping the same region, which
	// the downstream apply tolerates.
	if err := w.shipLocked(w.size); err != nil {
		return err
	}
	return w.checkpointLocked()
}

// checkpointLocked copies every staged page into its main file and resets
// the log. All staged frames are committed when this runs (Commit just
// fsynced the commit record), so applying them cannot expose partial state.
func (w *WAL) checkpointLocked() error {
	start := time.Now()
	defer func() {
		w.m.Checkpoints.Inc()
		w.m.CheckpointSeconds.ObserveDuration(time.Since(start))
	}()
	touched := make(map[uint8]*FilePager)
	var data, scratch []byte
	for key, ref := range w.index {
		p, ok := w.members[key.fileID]
		if !ok {
			return fmt.Errorf("btree: WAL frame for unattached file ID %d", key.fileID)
		}
		if cap(data) < ref.n {
			data = make([]byte, ref.n)
		}
		data = data[:ref.n]
		if _, err := w.f.ReadAt(data, ref.off); err != nil {
			return fmt.Errorf("btree: WAL checkpoint read: %w", err)
		}
		if len(scratch) < ref.n+pageTrailerSize {
			scratch = make([]byte, ref.n+pageTrailerSize)
		}
		if err := p.writeRaw(key.page, data, scratch); err != nil {
			return fmt.Errorf("btree: WAL checkpoint page %d: %w", key.page, err)
		}
		touched[key.fileID] = p
	}
	for _, p := range touched {
		if err := p.fileSync(); err != nil {
			return err
		}
	}
	return w.resetLocked()
}

// resetLocked truncates the log back to its header and clears the staged
// index. Called only when every staged frame has been applied (or is being
// deliberately discarded at recovery).
//
// The index is emptied under idxMu *before* the truncate: acquiring the
// write lock drains any reader mid-pread, and once the map is empty no new
// reader can reach log offsets, so the truncate runs without blocking the
// read path. Readers that miss in the empty index fall through to the main
// files, which the checkpoint has already written and fsynced.
func (w *WAL) resetLocked() error {
	w.idxMu.Lock()
	w.index = make(map[walKey]walFrameRef)
	w.idxMu.Unlock()
	if err := w.f.Truncate(walHeaderSize); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.m.Fsyncs.Inc()
	w.size = walHeaderSize
	w.pending = 0
	w.committedEnd = 0
	return nil
}

// Size reports the current log size in bytes (diagnostics).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Close releases the log file. Staged-but-uncommitted records are left to be
// discarded by the next open, exactly as a crash would.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// encodeWALFrame appends one frame to dst and returns the extended slice.
// data must be nil for commit frames.
func encodeWALFrame(dst []byte, kind byte, fileID uint8, page PageID, data []byte) []byte {
	start := len(dst)
	var hdr [walFrameHeaderSize]byte
	hdr[0] = kind
	hdr[1] = fileID
	binary.BigEndian.PutUint32(hdr[4:8], uint32(page))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(data)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, data...)
	crc := crc32.Checksum(dst[start:], castagnoli)
	return binary.BigEndian.AppendUint32(dst, crc)
}

// decodeWALFrame parses one frame from b, returning the bytes consumed. It
// is the pure-codec counterpart of parseFrameAt, shared with the fuzz
// target; recovery uses parseFrameAt to avoid holding the log in memory.
func decodeWALFrame(b []byte) (kind byte, fileID uint8, page PageID, data []byte, consumed int, err error) {
	if len(b) < walFrameHeaderSize+walFrameCRCSize {
		return 0, 0, 0, nil, 0, fmt.Errorf("btree: WAL frame truncated (%d bytes)", len(b))
	}
	kind = b[0]
	fileID = b[1]
	if kind != walKindPage && kind != walKindCommit {
		return 0, 0, 0, nil, 0, fmt.Errorf("btree: unknown WAL frame kind %d", kind)
	}
	page = PageID(binary.BigEndian.Uint32(b[4:8]))
	dataLen := int(binary.BigEndian.Uint32(b[8:12]))
	if dataLen > maxWALFrameData {
		return 0, 0, 0, nil, 0, fmt.Errorf("btree: WAL frame length %d exceeds limit", dataLen)
	}
	total := walFrameHeaderSize + dataLen + walFrameCRCSize
	if len(b) < total {
		return 0, 0, 0, nil, 0, fmt.Errorf("btree: WAL frame truncated (%d of %d bytes)", len(b), total)
	}
	payload := b[walFrameHeaderSize : walFrameHeaderSize+dataLen]
	want := binary.BigEndian.Uint32(b[total-walFrameCRCSize : total])
	if crc := crc32.Checksum(b[:total-walFrameCRCSize], castagnoli); crc != want {
		return 0, 0, 0, nil, 0, fmt.Errorf("btree: %w: WAL frame CRC mismatch", ErrCorrupt)
	}
	return kind, fileID, page, payload, total, nil
}
