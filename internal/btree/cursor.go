package btree

import (
	"bytes"
	"sort"
)

// Scan visits all entries with lo <= key < hi in ascending key order. A nil
// lo starts at the smallest key; a nil hi runs to the end. fn returns false
// to stop early. It holds the shared lock, so concurrent Scans and Gets
// proceed in parallel. fn must not call back into the tree (a nested
// acquisition can deadlock against a queued writer); collect keys first if
// mutation is needed.
func (t *BTree) Scan(lo, hi []byte, fn func(key, val []byte) (bool, error)) error {
	return t.ScanWith(lo, hi, nil, fn)
}

// ScanWith is Scan with a per-page hook: onPage (when non-nil) is invoked
// once for every tree page fetched on behalf of the scan — each node of the
// root-to-leaf descent and each leaf visited in order. Returning a non-nil
// error aborts the scan and surfaces that error unchanged, which makes the
// hook a natural place for per-query page accounting and cancellation
// checkpoints: the interval between two hook calls is bounded by the work of
// visiting one page. Like fn, onPage must not call back into the tree.
func (t *BTree) ScanWith(lo, hi []byte, onPage func() error, fn func(key, val []byte) (bool, error)) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.scanFrom(t.root, lo, hi, onPage, fn)
}

// scanFrame is one level of scanFrom's ancestor stack: an internal node and
// the index of the child currently being visited.
type scanFrame struct {
	n   *node
	idx int
}

// scanFrom walks the subtree rooted at root in ascending key order without
// relying on leaf sibling links (which copy-on-write made vestigial: a
// shadowed leaf's left neighbor still links to the replaced page). Instead it
// keeps an explicit stack of ancestors and advances to the next leaf by
// popping exhausted frames, which visits exactly the pages of one version.
// Shared by the locked entry points (pending root, under t.mu) and by
// Snapshot methods (published root, no lock).
func (t *BTree) scanFrom(root PageID, lo, hi []byte, onPage func() error, fn func(key, val []byte) (bool, error)) error {
	visit := func(id PageID) (*node, error) {
		n, err := t.load(id)
		if err != nil {
			return nil, err
		}
		if onPage != nil {
			if err := onPage(); err != nil {
				return nil, err
			}
		}
		return n, nil
	}
	// Descend to the leaf containing lo, recording the path.
	var stack []scanFrame
	id := root
	var leaf *node
	for {
		n, err := visit(id)
		if err != nil {
			return err
		}
		if n.leaf {
			leaf = n
			break
		}
		idx := 0
		if lo != nil {
			idx = t.childIndex(n, lo)
		}
		stack = append(stack, scanFrame{n: n, idx: idx})
		id = n.kids[idx]
	}
	start := 0
	if lo != nil {
		start = sort.Search(len(leaf.keys), func(i int) bool { return bytes.Compare(leaf.keys[i], lo) >= 0 })
	}
	for {
		for i := start; i < len(leaf.keys); i++ {
			if hi != nil && bytes.Compare(leaf.keys[i], hi) >= 0 {
				return nil
			}
			cont, err := fn(leaf.keys[i], leaf.vals[i])
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
		// Advance to the next leaf: pop exhausted ancestors, step one child
		// right, then descend leftmost.
		for len(stack) > 0 && stack[len(stack)-1].idx == len(stack[len(stack)-1].n.kids)-1 {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return nil
		}
		stack[len(stack)-1].idx++
		id = stack[len(stack)-1].n.kids[stack[len(stack)-1].idx]
		for {
			n, err := visit(id)
			if err != nil {
				return err
			}
			if n.leaf {
				leaf = n
				break
			}
			stack = append(stack, scanFrame{n: n, idx: 0})
			id = n.kids[0]
		}
		start = 0
	}
}

// ScanPrefix visits all entries whose key begins with prefix.
func (t *BTree) ScanPrefix(prefix []byte, fn func(key, val []byte) (bool, error)) error {
	return t.Scan(prefix, prefixSuccessor(prefix), fn)
}

// prefixSuccessor mirrors keyenc.PrefixSuccessor locally to avoid an import
// cycle; the btree package must stay dependency-free.
func prefixSuccessor(p []byte) []byte {
	out := make([]byte, len(p))
	copy(out, p)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// First returns the smallest entry, or ok=false when the tree is empty.
func (t *BTree) First() (key, val []byte, ok bool, err error) {
	err = t.Scan(nil, nil, func(k, v []byte) (bool, error) {
		key = append([]byte(nil), k...)
		val = append([]byte(nil), v...)
		ok = true
		return false, nil
	})
	return key, val, ok, err
}

// SeekFirst returns the smallest entry with key >= lo and key < hi.
func (t *BTree) SeekFirst(lo, hi []byte) (key, val []byte, ok bool, err error) {
	return t.SeekFirstWith(lo, hi, nil)
}

// SeekFirstWith is SeekFirst with ScanWith's per-page hook.
func (t *BTree) SeekFirstWith(lo, hi []byte, onPage func() error) (key, val []byte, ok bool, err error) {
	err = t.ScanWith(lo, hi, onPage, func(k, v []byte) (bool, error) {
		key = append([]byte(nil), k...)
		val = append([]byte(nil), v...)
		ok = true
		return false, nil
	})
	return key, val, ok, err
}
