package btree

import (
	"bytes"
	"sort"
)

// Scan visits all entries with lo <= key < hi in ascending key order. A nil
// lo starts at the smallest key; a nil hi runs to the end. fn returns false
// to stop early. It holds the shared lock, so concurrent Scans and Gets
// proceed in parallel. fn must not call back into the tree (a nested
// acquisition can deadlock against a queued writer); collect keys first if
// mutation is needed.
func (t *BTree) Scan(lo, hi []byte, fn func(key, val []byte) (bool, error)) error {
	return t.ScanWith(lo, hi, nil, fn)
}

// ScanWith is Scan with a per-page hook: onPage (when non-nil) is invoked
// once for every tree page fetched on behalf of the scan — each node of the
// root-to-leaf descent and each leaf of the sibling chain. Returning a
// non-nil error aborts the scan and surfaces that error unchanged, which
// makes the hook a natural place for per-query page accounting and
// cancellation checkpoints: the interval between two hook calls is bounded
// by the work of visiting one page. Like fn, onPage must not call back into
// the tree.
func (t *BTree) ScanWith(lo, hi []byte, onPage func() error, fn func(key, val []byte) (bool, error)) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id := t.root
	for {
		n, err := t.load(id)
		if err != nil {
			return err
		}
		if onPage != nil {
			if err := onPage(); err != nil {
				return err
			}
		}
		if n.leaf {
			return t.scanLeaves(n, lo, hi, onPage, fn)
		}
		if lo == nil {
			id = n.kids[0]
		} else {
			id = n.kids[t.childIndex(n, lo)]
		}
	}
}

func (t *BTree) scanLeaves(n *node, lo, hi []byte, onPage func() error, fn func(key, val []byte) (bool, error)) error {
	start := 0
	if lo != nil {
		start = sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], lo) >= 0 })
	}
	for {
		for i := start; i < len(n.keys); i++ {
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				return nil
			}
			cont, err := fn(n.keys[i], n.vals[i])
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
		if n.next == 0 {
			return nil
		}
		next, err := t.load(n.next)
		if err != nil {
			return err
		}
		if onPage != nil {
			if err := onPage(); err != nil {
				return err
			}
		}
		n = next
		start = 0
	}
}

// ScanPrefix visits all entries whose key begins with prefix.
func (t *BTree) ScanPrefix(prefix []byte, fn func(key, val []byte) (bool, error)) error {
	return t.Scan(prefix, prefixSuccessor(prefix), fn)
}

// prefixSuccessor mirrors keyenc.PrefixSuccessor locally to avoid an import
// cycle; the btree package must stay dependency-free.
func prefixSuccessor(p []byte) []byte {
	out := make([]byte, len(p))
	copy(out, p)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// First returns the smallest entry, or ok=false when the tree is empty.
func (t *BTree) First() (key, val []byte, ok bool, err error) {
	err = t.Scan(nil, nil, func(k, v []byte) (bool, error) {
		key = append([]byte(nil), k...)
		val = append([]byte(nil), v...)
		ok = true
		return false, nil
	})
	return key, val, ok, err
}

// SeekFirst returns the smallest entry with key >= lo and key < hi.
func (t *BTree) SeekFirst(lo, hi []byte) (key, val []byte, ok bool, err error) {
	return t.SeekFirstWith(lo, hi, nil)
}

// SeekFirstWith is SeekFirst with ScanWith's per-page hook.
func (t *BTree) SeekFirstWith(lo, hi []byte, onPage func() error) (key, val []byte, ok bool, err error) {
	err = t.ScanWith(lo, hi, onPage, func(k, v []byte) (bool, error) {
		key = append([]byte(nil), k...)
		val = append([]byte(nil), v...)
		ok = true
		return false, nil
	})
	return key, val, ok, err
}
