package btree

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
	"time"
)

// ErrInjectedFault is returned by FaultFS file operations once the plan's
// write budget is exhausted — the moment the simulated crash happens.
var ErrInjectedFault = errors.New("btree: injected fault (simulated crash)")

// ErrNoSpace is returned by FaultFS writes once the plan's space budget is
// exhausted. Unlike ErrInjectedFault it models a live, recoverable failure:
// the process is still running, reads and syncs keep working, and raising
// the budget with AddSpace (freeing disk) lets later writes succeed. It
// wraps syscall.ENOSPC so errors.Is(err, syscall.ENOSPC) holds, matching
// what a real full disk reports.
var ErrNoSpace = fmt.Errorf("btree: injected fault: %w", syscall.ENOSPC)

// FaultOp identifies the kind of file operation a FaultPlan is charging,
// for FailOp error schedules.
type FaultOp uint8

// The operation kinds a FailOp schedule can distinguish.
const (
	FaultWrite FaultOp = iota
	FaultSync
	FaultTruncate
)

// FaultPlan coordinates crash injection across every file a FaultFS opens.
//
// Writes are buffered in a per-file mirror and reach the real file only on
// Sync (or Close), so "what is on disk" exactly models "what was fsynced".
// A budget in bytes (KillAfter) tears the run mid-operation: the write that
// crosses the budget persists only its prefix into the mirror, and every
// later write, sync, and truncate fails with ErrInjectedFault — as if the
// process had died at that byte.
//
// After the workload errors out, Crash finalizes the on-disk state:
//
//	Crash(false) — strict discs: only fsynced data survives (the mirrors
//	               are discarded). Models a kernel that wrote nothing it
//	               was not forced to.
//	Crash(true)  — eager discs: every completed buffered write survives,
//	               including the torn prefix of the killed one. Models a
//	               kernel that happened to flush everything, exposing torn
//	               pages and unsynced WAL tails.
//
// Correct recovery must cope with both extremes (and therefore with any
// write-granular state in between). A run with KillAfter == 0 never kills;
// use it to record WriteBoundaries, the byte offsets at which each
// operation completed, from which a crash matrix derives its injection
// points. Setting DropSyncs makes Sync report success without flushing the
// mirror (a lying disk): durability of those syncs is forfeit, but reopen
// must still find a consistent index.
type FaultPlan struct {
	// KillAfter is the total byte budget across all files (writes consume
	// their length, syncs and truncates consume 1). Zero means never kill.
	KillAfter int64
	// DropSyncs makes Sync a successful no-op that flushes nothing.
	DropSyncs bool
	// NoSpaceAfter is the disk-space budget in bytes (writes only). The
	// write that crosses it is torn — its prefix lands in the mirror — and
	// fails with ErrNoSpace, as does every later write until AddSpace
	// raises the budget. Unlike KillAfter the plan is not killed: the
	// process lives on, and reads, syncs and truncates keep succeeding
	// (whatever landed before the budget ran out can still be made
	// durable, exactly like a real full disk). Zero means unlimited.
	NoSpaceAfter int64
	// OpDelay, when positive, sleeps before every write, sync, and
	// truncate — per-op latency injection for timeout and slow-disk tests.
	OpDelay time.Duration
	// FailOp, when non-nil, is consulted before each operation with the
	// 1-based operation sequence number and kind. A non-nil return fails
	// that operation cleanly — no bytes are consumed and nothing is torn —
	// which models transient (fail op 7 only) or persistent (fail every op
	// past 7) error schedules without tearing state.
	FailOp func(op int64, kind FaultOp) error

	mu         sync.Mutex
	written    int64
	spaceUsed  int64
	ops        int64
	killed     bool
	boundaries []int64
	files      []*FaultFile
}

// op charges one operation of the given kind (writes carry their byte
// length; syncs and truncates charge 1 unit against the kill budget only).
// It returns how many bytes are granted and the injected error, if any:
// ErrInjectedFault once the kill budget is crossed (torn prefix granted,
// plan dead), ErrNoSpace once the space budget is crossed (torn prefix
// granted, plan still live), or a FailOp-scheduled error (nothing granted,
// nothing charged).
func (pl *FaultPlan) op(kind FaultOp, n int) (allowed int, err error) {
	pl.mu.Lock()
	delay := pl.OpDelay
	pl.ops++
	seq := pl.ops
	failOp := pl.FailOp
	pl.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if failOp != nil {
		if err := failOp(seq, kind); err != nil {
			return 0, err
		}
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.killed {
		return 0, ErrInjectedFault
	}
	allowed = n
	if pl.KillAfter > 0 && pl.written+int64(n) > pl.KillAfter {
		allowed = int(pl.KillAfter - pl.written)
		if allowed < 0 {
			allowed = 0
		}
		pl.killed = true
		pl.written += int64(allowed)
		return allowed, ErrInjectedFault
	}
	if kind == FaultWrite && pl.NoSpaceAfter > 0 && pl.spaceUsed+int64(n) > pl.NoSpaceAfter {
		allowed = int(pl.NoSpaceAfter - pl.spaceUsed)
		if allowed < 0 {
			allowed = 0
		}
		pl.spaceUsed += int64(allowed)
		pl.written += int64(allowed)
		return allowed, ErrNoSpace
	}
	if kind == FaultWrite {
		pl.spaceUsed += int64(n)
	}
	pl.written += int64(n)
	pl.boundaries = append(pl.boundaries, pl.written)
	return n, nil
}

// AddSpace raises the space budget by n bytes — the injected disk gained
// room (files were deleted elsewhere). Later writes may succeed again.
func (pl *FaultPlan) AddSpace(n int64) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.NoSpaceAfter += n
}

// SpaceUsed reports the bytes charged against the space budget so far.
func (pl *FaultPlan) SpaceUsed() int64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.spaceUsed
}

// Ops reports how many file operations the plan has seen (the sequence
// numbers FailOp schedules key on).
func (pl *FaultPlan) Ops() int64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.ops
}

// Killed reports whether the injected crash has happened.
func (pl *FaultPlan) Killed() bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.killed
}

// BytesWritten reports the total units consumed so far.
func (pl *FaultPlan) BytesWritten() int64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.written
}

// WriteBoundaries returns the cumulative budget offsets at which each
// operation completed during this run (recording runs only).
func (pl *FaultPlan) WriteBoundaries() []int64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return append([]int64(nil), pl.boundaries...)
}

// Crash finalizes the simulated crash: with keepUnsynced, each file's mirror
// (everything the process wrote, synced or not, including the torn prefix of
// the killed write) is flushed to the real file; without it, only fsynced
// state survives. All real handles are closed; the faulted objects must be
// abandoned, and the paths reopened with a fresh FS to observe recovery.
func (pl *FaultPlan) Crash(keepUnsynced bool) error {
	pl.mu.Lock()
	pl.killed = true // no further writes, even if the budget never tripped
	files := append([]*FaultFile(nil), pl.files...)
	pl.mu.Unlock()
	var firstErr error
	for _, f := range files {
		if err := f.crash(keepUnsynced); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// FaultFS is an FS whose files answer to a shared FaultPlan.
type FaultFS struct{ Plan *FaultPlan }

// OpenFile implements FS.
func (fs FaultFS) OpenFile(path string) (File, error) {
	if fs.Plan == nil {
		return nil, fmt.Errorf("btree: FaultFS with nil plan")
	}
	real, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	mem, err := io.ReadAll(io.NewSectionReader(real, 0, 1<<40))
	if err != nil {
		real.Close()
		return nil, err
	}
	f := &FaultFile{plan: fs.Plan, real: real, mem: mem}
	fs.Plan.mu.Lock()
	fs.Plan.files = append(fs.Plan.files, f)
	fs.Plan.mu.Unlock()
	return f, nil
}

// FaultFile buffers all writes in memory and flushes them to the real file
// only on Sync/Close, under the control of a FaultPlan.
type FaultFile struct {
	plan *FaultPlan
	mu   sync.Mutex
	real *os.File
	mem  []byte
}

// ReadAt implements io.ReaderAt over the in-process view (the mirror).
func (f *FaultFile) ReadAt(b []byte, off int64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off < 0 || off >= int64(len(f.mem)) {
		return 0, io.EOF
	}
	n := copy(b, f.mem[off:])
	if n < len(b) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt; the write that crosses the kill or space
// budget is torn (only its prefix lands in the mirror) and returns the
// injected error.
func (f *FaultFile) WriteAt(b []byte, off int64) (int, error) {
	allowed, ferr := f.plan.op(FaultWrite, len(b))
	if allowed > 0 {
		f.mu.Lock()
		end := off + int64(allowed)
		if end > int64(len(f.mem)) {
			f.mem = append(f.mem, make([]byte, end-int64(len(f.mem)))...)
		}
		copy(f.mem[off:end], b[:allowed])
		f.mu.Unlock()
	}
	if ferr != nil {
		return allowed, ferr
	}
	return allowed, nil
}

// Truncate resizes the mirror.
func (f *FaultFile) Truncate(size int64) error {
	if _, err := f.plan.op(FaultTruncate, 1); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if size <= int64(len(f.mem)) {
		f.mem = f.mem[:size]
	} else {
		f.mem = append(f.mem, make([]byte, size-int64(len(f.mem)))...)
	}
	return nil
}

// Sync flushes the mirror to the real file and fsyncs it — unless the plan
// drops syncs (lying disk) or has already killed the run.
func (f *FaultFile) Sync() error {
	if _, err := f.plan.op(FaultSync, 1); err != nil {
		return err
	}
	if f.plan.DropSyncs {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.flushRealLocked(); err != nil {
		return err
	}
	return f.real.Sync()
}

// flushRealLocked makes the real file byte-identical to the mirror.
func (f *FaultFile) flushRealLocked() error {
	if err := f.real.Truncate(int64(len(f.mem))); err != nil {
		return err
	}
	if len(f.mem) > 0 {
		if _, err := f.real.WriteAt(f.mem, 0); err != nil {
			return err
		}
	}
	return nil
}

// Size reports the mirror size.
func (f *FaultFile) Size() (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.mem)), nil
}

// Close releases the real handle. A live (un-killed) close flushes first,
// like a clean shutdown; after the injected crash nothing further is
// written.
func (f *FaultFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.real == nil {
		return nil
	}
	if !f.plan.Killed() && !f.plan.DropSyncs {
		if err := f.flushRealLocked(); err != nil {
			f.real.Close()
			f.real = nil
			return err
		}
	}
	err := f.real.Close()
	f.real = nil
	return err
}

// crash finalizes the file per the plan's Crash mode.
func (f *FaultFile) crash(keepUnsynced bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.real == nil {
		return nil
	}
	var firstErr error
	if keepUnsynced {
		firstErr = f.flushRealLocked()
	}
	if err := f.real.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	f.real = nil
	return firstErr
}
