package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// openWALTree opens (or reopens) a WAL-backed file pager and tree in dir.
func openWALTree(t *testing.T, dir string, fs FS) (*WAL, *FilePager, *BTree) {
	t.Helper()
	w, err := OpenWAL(filepath.Join(dir, "wal"), fs)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	pg, err := OpenFilePagerOpts(filepath.Join(dir, "t.db"), 512, PagerOptions{
		CachePages: 8, WAL: w, WALFileID: 1, FS: fs,
	})
	if err != nil {
		t.Fatalf("OpenFilePagerOpts: %v", err)
	}
	if _, err := w.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	tr, err := New(pg, Options{PageSize: 512, NodeCache: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return w, pg, tr
}

// TestWALRoundTrip checks the basic write → Sync → reopen path with a WAL
// attached: Sync commits and checkpoints, so a clean reopen replays nothing.
func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, _, tr := openWALTree(t, dir, nil)
	const n = 500
	for _, i := range rand.New(rand.NewSource(1)).Perm(n) {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.Size(); got != walHeaderSize {
		t.Fatalf("WAL size after Sync = %d, want %d (checkpoint must truncate)", got, walHeaderSize)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, _, tr2 := openWALTree(t, dir, nil)
	defer w2.Close()
	defer tr2.Close()
	if w2.Stats().Replayed {
		t.Fatal("clean shutdown must not need replay")
	}
	for i := 0; i < n; i += 13 {
		v, ok, err := tr2.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) after reopen = %q %v %v", i, v, ok, err)
		}
	}
}

// TestWALReplayCommittedTail simulates a crash between the WAL commit and
// the checkpoint: the log holds committed frames, the main file does not.
// Reopening must replay them.
func TestWALReplayCommittedTail(t *testing.T) {
	dir := t.TempDir()
	pagePath := filepath.Join(dir, "t.db")

	// Build the WAL file by hand: a full page frame plus a commit record,
	// exactly what a crash after Commit's fsync leaves behind.
	page := fillPage(0, 512)
	var log []byte
	log = append(log, walMagicHeader()...)
	log = encodeWALFrame(log, walKindPage, 1, 0, page)
	log = encodeWALFrame(log, walKindCommit, 0, 1, nil)
	if err := os.WriteFile(filepath.Join(dir, "wal"), log, 0o644); err != nil {
		t.Fatal(err)
	}

	w, pg, err := openRawWALPager(dir, pagePath)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	stats, err := w.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !stats.Replayed || stats.PagesReplayed != 1 {
		t.Fatalf("stats = %+v, want replay of 1 page", stats)
	}
	buf := make([]byte, 512)
	if err := pg.Read(0, buf); err != nil {
		t.Fatalf("Read after replay: %v", err)
	}
	if !bytes.Equal(buf, page) {
		t.Fatal("replayed page content mismatch")
	}
	if w.Size() != walHeaderSize {
		t.Fatal("recovery must truncate the log")
	}
	pg.Close()
}

// TestWALDiscardsUncommittedTail: frames with no trailing commit record are
// crash debris from an unfinished Sync and must be dropped, leaving the main
// file untouched.
func TestWALDiscardsUncommittedTail(t *testing.T) {
	dir := t.TempDir()
	var log []byte
	log = append(log, walMagicHeader()...)
	log = encodeWALFrame(log, walKindPage, 1, 0, fillPage(0, 512))
	log = encodeWALFrame(log, walKindPage, 1, 1, fillPage(1, 512))
	if err := os.WriteFile(filepath.Join(dir, "wal"), log, 0o644); err != nil {
		t.Fatal(err)
	}
	w, pg, err := openRawWALPager(dir, filepath.Join(dir, "t.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	stats, err := w.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed || stats.FramesDiscarded != 2 {
		t.Fatalf("stats = %+v, want 2 discarded frames and no replay", stats)
	}
	if pg.NumPages() != 0 {
		t.Fatalf("main file gained %d pages from uncommitted frames", pg.NumPages())
	}
	pg.Close()
}

// TestWALDiscardsTornTail: a frame cut mid-byte (torn log append) must stop
// parsing without error; a commit record before the tear still replays.
func TestWALDiscardsTornTail(t *testing.T) {
	dir := t.TempDir()
	var log []byte
	log = append(log, walMagicHeader()...)
	log = encodeWALFrame(log, walKindPage, 1, 0, fillPage(0, 512))
	log = encodeWALFrame(log, walKindCommit, 0, 1, nil)
	whole := len(log)
	log = encodeWALFrame(log, walKindPage, 1, 1, fillPage(1, 512))
	log = log[:whole+100] // tear the second page frame mid-payload
	if err := os.WriteFile(filepath.Join(dir, "wal"), log, 0o644); err != nil {
		t.Fatal(err)
	}
	w, pg, err := openRawWALPager(dir, filepath.Join(dir, "t.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	stats, err := w.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Replayed || stats.PagesReplayed != 1 || !stats.TornTail {
		t.Fatalf("stats = %+v, want 1 replayed page and a torn tail", stats)
	}
	if pg.NumPages() != 1 {
		t.Fatalf("NumPages = %d, want 1", pg.NumPages())
	}
	pg.Close()
}

// TestWALCorruptFrameStopsReplay: a bit flip inside a frame body invalidates
// its CRC; that frame and everything after it (commit record included) must
// be discarded.
func TestWALCorruptFrameStopsReplay(t *testing.T) {
	dir := t.TempDir()
	var log []byte
	log = append(log, walMagicHeader()...)
	frameStart := len(log)
	log = encodeWALFrame(log, walKindPage, 1, 0, fillPage(0, 512))
	log = encodeWALFrame(log, walKindCommit, 0, 1, nil)
	log[frameStart+walFrameHeaderSize+40] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, "wal"), log, 0o644); err != nil {
		t.Fatal(err)
	}
	w, pg, err := openRawWALPager(dir, filepath.Join(dir, "t.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	stats, err := w.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed || pg.NumPages() != 0 {
		t.Fatalf("corrupt frame replayed: stats=%+v pages=%d", stats, pg.NumPages())
	}
	pg.Close()
}

func walMagicHeader() []byte {
	hdr := make([]byte, walHeaderSize)
	copy(hdr, walMagic)
	hdr[11] = walVersion
	return hdr
}

func openRawWALPager(dir, pagePath string) (*WAL, *FilePager, error) {
	w, err := OpenWAL(filepath.Join(dir, "wal"), nil)
	if err != nil {
		return nil, nil, err
	}
	pg, err := OpenFilePagerOpts(pagePath, 512, PagerOptions{CachePages: 8, WAL: w, WALFileID: 1})
	if err != nil {
		w.Close()
		return nil, nil, err
	}
	return w, pg, nil
}

// TestPageChecksumDetectsCorruption flips a byte inside a synced page on
// disk; the next cache-miss read must fail with ErrCorrupt, never hand back
// the corrupted (or a zeroed) page.
func TestPageChecksumDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.db")
	pg, err := OpenFilePager(path, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := pg.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := pg.Write(PageID(i), fillPage(PageID(i), 512)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diskPage := 512 + pageTrailerSize
	raw[diskPage+100] ^= 0x01 // flip one data bit in page 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	pg2, err := OpenFilePager(path, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.f.Close()
	buf := make([]byte, 512)
	if err := pg2.Read(0, buf); err != nil {
		t.Fatalf("intact page 0 unreadable: %v", err)
	}
	err = pg2.Read(1, buf)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted page read = %v, want ErrCorrupt", err)
	}
}

// TestPageChecksumDetectsMisdirectedWrite swaps two whole disk frames; the
// id embedded in each trailer must expose the misdirection even though both
// frames carry valid CRCs.
func TestPageChecksumDetectsMisdirectedWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.db")
	pg, err := OpenFilePager(path, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := pg.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := pg.Write(PageID(i), fillPage(PageID(i), 512)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	dp := 512 + pageTrailerSize
	swapped := append(append([]byte(nil), raw[dp:2*dp]...), raw[:dp]...)
	if err := os.WriteFile(path, swapped, 0o644); err != nil {
		t.Fatal(err)
	}
	pg2, err := OpenFilePager(path, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.f.Close()
	buf := make([]byte, 512)
	if err := pg2.Read(0, buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("misdirected page read = %v, want ErrCorrupt", err)
	}
}

// TestFilePagerToleratesTornTrailingPage: a file ending mid-page (torn
// append) must open with the partial tail logically truncated, not fail and
// not surface garbage.
func TestFilePagerToleratesTornTrailingPage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.db")
	pg, err := OpenFilePager(path, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := pg.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := pg.Write(PageID(i), fillPage(PageID(i), 512)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 123)); err != nil { // torn third page
		t.Fatal(err)
	}
	f.Close()

	pg2, err := OpenFilePager(path, 512, 4)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer pg2.Close()
	if pg2.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2 (partial tail ignored)", pg2.NumPages())
	}
	if !pg2.TornTailAtOpen() {
		t.Fatal("torn tail not reported")
	}
	buf := make([]byte, 512)
	if err := pg2.Read(1, buf); err != nil || !bytes.Equal(buf, fillPage(1, 512)) {
		t.Fatalf("page 1 unreadable after tail truncation: %v", err)
	}
}

// TestFilePagerShortReadIsError is the regression test for the load() bug
// that treated io.EOF from ReadAt as success and returned a zero-padded
// page: a read that cannot fill a whole disk frame must fail.
func TestFilePagerShortReadIsError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.db")
	pg, err := OpenFilePager(path, 512, 1) // pool of 1: nothing stays cached
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := pg.Allocate(); err != nil {
			t.Fatal(err)
		}
		if err := pg.Write(PageID(i), fillPage(PageID(i), 512)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pg.Sync(); err != nil {
		t.Fatal(err)
	}
	// Shrink the file under the pager: page 3 now ends mid-frame and page 2
	// is intact. (External truncation, e.g. a torn copy or filesystem bug.)
	dp := int64(512 + pageTrailerSize)
	if err := os.Truncate(path, 3*dp+half(dp)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := pg.Read(2, buf); err != nil || !bytes.Equal(buf, fillPage(2, 512)) {
		t.Fatalf("intact page 2: %v", err)
	}
	err = pg.Read(3, buf)
	if err == nil {
		t.Fatal("short read returned a page (old zero-padding bug)")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short read error = %v, want ErrCorrupt", err)
	}
	pg.f.Close()
}

func half(n int64) int64 { return n / 2 }

// TestMemPagerConcurrentAccess exercises MemPager's own locking directly
// (readers, writers, and allocation racing); run under -race this guards the
// documented "all methods are safe for concurrent use" contract.
func TestMemPagerConcurrentAccess(t *testing.T) {
	m := NewMemPager(512)
	for i := 0; i < 8; i++ {
		if _, err := m.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, 512)
			for i := 0; i < 500; i++ {
				id := PageID(rng.Intn(8))
				switch rng.Intn(3) {
				case 0:
					if err := m.Read(id, buf); err != nil {
						errs <- err
						return
					}
				case 1:
					if err := m.Write(id, fillPage(id, 512)); err != nil {
						errs <- err
						return
					}
				default:
					_ = m.NumPages()
					_ = m.Size()
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// --- crash matrix ----------------------------------------------------------

// walWorkload drives a deterministic insert/delete/Sync workload against a
// WAL-backed tree under the given FS. It returns every state a Sync
// *attempted* to commit and the index of the last attempt whose Sync
// returned nil. A crash may land on a later attempted state than the
// acknowledged one — the commit record can reach disk even though Sync
// itself then fails mid-checkpoint — but never on an earlier one.
func walWorkload(t *testing.T, dir string, fs FS) (attempts []map[int][]byte, committedIdx int) {
	t.Helper()
	attempts = append(attempts, map[int][]byte{}) // the state before any Sync
	w, err := OpenWAL(filepath.Join(dir, "wal"), fs)
	if err != nil {
		return attempts, 0 // crashed during open: nothing was ever committed
	}
	defer w.Close()
	pg, err := OpenFilePagerOpts(filepath.Join(dir, "t.db"), 512, PagerOptions{
		CachePages: 4, WAL: w, WALFileID: 1, FS: fs, // tiny pool: evictions stage mid-mutation
	})
	if err != nil {
		return attempts, 0
	}
	if _, err := w.Recover(); err != nil {
		return attempts, 0
	}
	tr, err := New(pg, Options{PageSize: 512, NodeCache: 4})
	if err != nil {
		return attempts, 0
	}

	model := map[int][]byte{}
	snapshot := func() map[int][]byte {
		s := make(map[int][]byte, len(model))
		for k, v := range model {
			s[k] = v
		}
		return s
	}
	for i := 0; i < 120; i++ {
		if err := tr.Put(key(i), val(i)); err == nil {
			model[i] = val(i)
		}
		if i%7 == 3 && i > 10 {
			if _, err := tr.Delete(key(i - 10)); err == nil {
				delete(model, i-10)
			}
		}
		if i%15 == 14 {
			attempts = append(attempts, snapshot())
			if err := tr.Sync(); err == nil {
				committedIdx = len(attempts) - 1
			}
		}
	}
	return attempts, committedIdx
}

// TestWALCrashMatrix kills the workload at injection points spread over
// every byte the run writes — clean operation boundaries and torn
// mid-operation points alike — under both crash models (only-fsynced
// survives / everything-buffered survives). Every reopened tree must (a)
// recover without error and (b) exactly equal some state a Sync attempted
// to commit, no older than the last Sync that returned nil — i.e. crashes
// can lose the unacknowledged tail, never an acknowledged commit, and never
// tear a commit in half.
func TestWALCrashMatrix(t *testing.T) {
	// Recording run: no kill, collect operation boundaries.
	recPlan := &FaultPlan{}
	_, recIdx := walWorkload(t, t.TempDir(), FaultFS{Plan: recPlan})
	if recIdx == 0 {
		t.Fatal("recording run committed nothing; workload broken")
	}
	bounds := recPlan.WriteBoundaries()
	if len(bounds) < 20 {
		t.Fatalf("only %d write operations recorded", len(bounds))
	}
	points := samplePoints(bounds, 40)

	for _, kill := range points {
		for _, keep := range []bool{false, true} {
			kill, keep := kill, keep
			t.Run(fmt.Sprintf("kill=%d/keep=%v", kill, keep), func(t *testing.T) {
				dir := t.TempDir()
				plan := &FaultPlan{KillAfter: kill}
				attempts, committedIdx := walWorkload(t, dir, FaultFS{Plan: plan})
				if err := plan.Crash(keep); err != nil {
					t.Fatalf("Crash: %v", err)
				}
				w, _, tr := openWALTree(t, dir, nil)
				defer w.Close()
				defer tr.Close()
				got := map[int][]byte{}
				err := tr.Scan(nil, nil, func(k, v []byte) (bool, error) {
					got[keyInt(k)] = append([]byte(nil), v...)
					return true, nil
				})
				if err != nil {
					t.Fatalf("Scan after recovery: %v", err)
				}
				if j := matchState(got, attempts); j < 0 {
					t.Fatalf("recovered state (%d keys) matches no attempted commit", len(got))
				} else if j < committedIdx {
					t.Fatalf("recovered state is attempt %d, older than acknowledged commit %d: durability lost", j, committedIdx)
				}
			})
		}
	}
}

// samplePoints picks up to n injection points: operation boundaries plus
// torn mid-operation offsets.
func samplePoints(bounds []int64, n int) []int64 {
	var cand []int64
	prev := int64(0)
	for _, b := range bounds {
		if b-prev > 1 {
			cand = append(cand, prev+(b-prev)/2) // torn mid-operation
		}
		cand = append(cand, b)
		prev = b
	}
	if len(cand) <= n {
		return cand
	}
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, cand[i*len(cand)/n])
	}
	return out
}

// matchState returns the index of the attempted state got equals, or -1.
// Later attempts win ties so the ordering assertion is not spuriously strict
// when consecutive snapshots happen to be identical.
func matchState(got map[int][]byte, states []map[int][]byte) int {
	for j := len(states) - 1; j >= 0; j-- {
		s := states[j]
		if len(s) != len(got) {
			continue
		}
		ok := true
		for k, v := range s {
			if !bytes.Equal(got[k], v) {
				ok = false
				break
			}
		}
		if ok {
			return j
		}
	}
	return -1
}

// TestWALDroppedFsyncsStayConsistent: a lying disk that acknowledges Sync
// without persisting anything forfeits durability but must never yield a
// corrupt index — recovery lands on the last state that truly reached disk
// (here: the empty tree).
func TestWALDroppedFsyncsStayConsistent(t *testing.T) {
	dir := t.TempDir()
	plan := &FaultPlan{DropSyncs: true}
	_, committedIdx := walWorkload(t, dir, FaultFS{Plan: plan})
	if committedIdx == 0 {
		t.Fatal("workload committed nothing")
	}
	if err := plan.Crash(false); err != nil {
		t.Fatal(err)
	}
	w, _, tr := openWALTree(t, dir, nil)
	defer w.Close()
	defer tr.Close()
	count := 0
	err := tr.Scan(nil, nil, func(k, v []byte) (bool, error) { count++; return true, nil })
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if count != 0 {
		t.Fatalf("lying fsync persisted %d entries without any real flush", count)
	}
}

// keyInt inverts the key() helper from btree_test.go.
func keyInt(k []byte) int {
	n := 0
	for _, c := range k {
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
		}
	}
	return n
}

// FuzzWALRecord fuzzes the WAL frame codec: every encodable frame must
// round-trip exactly, and arbitrary bytes must decode without panicking —
// either cleanly rejected or re-encodable to the same bytes.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte("hello"), uint8(1), uint32(7), true)
	f.Add([]byte{}, uint8(0), uint32(0), false)
	f.Add(bytes.Repeat([]byte{0xAB}, 512), uint8(4), uint32(1<<31), true)
	f.Fuzz(func(t *testing.T, data []byte, fileID uint8, page uint32, isPage bool) {
		kind := walKindCommit
		if isPage {
			kind = walKindPage
			if len(data) > maxWALFrameData {
				data = data[:maxWALFrameData]
			}
		} else {
			data = nil
		}
		frame := encodeWALFrame(nil, kind, fileID, PageID(page), data)
		gotKind, gotFile, gotPage, gotData, n, err := decodeWALFrame(frame)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if n != len(frame) || gotKind != kind || gotFile != fileID || gotPage != PageID(page) || !bytes.Equal(gotData, data) {
			t.Fatalf("round-trip mismatch: kind=%d file=%d page=%d len=%d", gotKind, gotFile, gotPage, len(gotData))
		}
		// Arbitrary bytes must decode without panicking: either rejected
		// with an error or parsed as a shorter valid frame.
		if k2, f2, p2, d2, n2, err := decodeWALFrame(data); err == nil {
			if n2 <= 0 || n2 > len(data) {
				t.Fatalf("decode consumed %d of %d bytes", n2, len(data))
			}
			// A frame the decoder accepts must survive a re-encode/decode
			// cycle with identical logical content.
			re := encodeWALFrame(nil, k2, f2, p2, d2)
			k3, f3, p3, d3, _, err := decodeWALFrame(re)
			if err != nil || k3 != k2 || f3 != f2 || p3 != p2 || !bytes.Equal(d3, d2) {
				t.Fatalf("accepted frame did not round-trip: %v", err)
			}
		}
	})
}
