package btree

import (
	"io"
	"os"
)

// File is the subset of *os.File the pager and WAL need. Abstracting it lets
// tests interpose a fault-injecting filesystem (see FaultFS) that tears
// writes and drops fsyncs to simulate crashes at arbitrary byte offsets.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Truncate changes the file size.
	Truncate(size int64) error
	// Sync forces buffered writes to stable storage.
	Sync() error
	// Close releases the handle without implying a flush to stable storage.
	Close() error
	// Size reports the current file size in bytes.
	Size() (int64, error)
}

// FS opens files for the pager and WAL. The zero-value OSFS is the real
// filesystem; FaultFS injects crashes.
type FS interface {
	// OpenFile opens (or creates) the file at path for read/write.
	OpenFile(path string) (File, error)
}

// OSFS is the passthrough FS backed by the operating system.
type OSFS struct{}

// OpenFile implements FS.
func (OSFS) OpenFile(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// osFile adapts *os.File to the File interface (Size via Stat).
type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
