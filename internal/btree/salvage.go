package btree

// SalvageScan walks the tree from its current root, visiting every readable
// leaf cell in key order and skipping any subtree whose pages cannot be read
// or parsed — corrupt frames, dangling child pointers, cycles, over-deep
// chains. It exists for offline repair: a normal Scan aborts on the first
// corrupt page, abandoning everything behind healthy pages, while a salvage
// scan recovers every entry still reachable through intact interior nodes.
//
// skipped counts the subtrees abandoned (0 means the walk saw the whole
// tree and the recovered entry set is complete). The returned error is only
// ever the callback's own error; page-level failures are absorbed into
// skipped.
func (t *BTree) SalvageScan(fn func(k, v []byte) (bool, error)) (skipped int, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[PageID]struct{})
	var stop bool
	var cbErr error
	var walk func(id PageID, depth int)
	walk = func(id PageID, depth int) {
		if stop || cbErr != nil {
			return
		}
		// A corrupt child pointer can lead anywhere, including back into
		// pages already visited; the seen set and depth bound turn would-be
		// infinite descents into skipped subtrees.
		if depth > 64 {
			skipped++
			return
		}
		if _, dup := seen[id]; dup {
			skipped++
			return
		}
		seen[id] = struct{}{}
		n, err := t.load(id)
		if err != nil {
			skipped++
			return
		}
		if n.leaf {
			for i, k := range n.keys {
				cont, err := fn(k, n.vals[i])
				if err != nil {
					cbErr = err
					return
				}
				if !cont {
					stop = true
					return
				}
			}
			return
		}
		for _, kid := range n.kids {
			walk(kid, depth+1)
		}
	}
	walk(t.root, 0)
	return skipped, cbErr
}
