package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fillPage builds a full page whose content identifies id.
func fillPage(id PageID, size int) []byte {
	data := make([]byte, size)
	copy(data, []byte(fmt.Sprintf("page-%d|", id)))
	for i := 16; i < size; i++ {
		data[i] = byte(id) ^ byte(i)
	}
	return data
}

// TestFilePagerConcurrentReaders thrashes a buffer pool much smaller than
// the working set from several goroutines at once. Before the pager grew its
// own mutex, the LRU list, cache map, and hit counters raced under the
// B+Tree's shared read lock; the race detector catches any regression here.
func TestFilePagerConcurrentReaders(t *testing.T) {
	const (
		pageSize = 512
		nPages   = 64
		cache    = 8 // far smaller than the working set
		readers  = 4
		reads    = 2000
	)
	pg, err := OpenFilePager(filepath.Join(t.TempDir(), "p.db"), pageSize, cache)
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	want := make([][]byte, nPages)
	for i := 0; i < nPages; i++ {
		id, err := pg.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = fillPage(id, pageSize)
		if err := pg.Write(id, want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := pg.Sync(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, pageSize)
			for i := 0; i < reads; i++ {
				id := PageID(rng.Intn(nPages))
				if err := pg.Read(id, buf); err != nil {
					errs <- fmt.Errorf("read %d: %w", id, err)
					return
				}
				if !bytes.Equal(buf, want[id]) {
					errs <- fmt.Errorf("page %d content corrupted under concurrency", id)
					return
				}
			}
		}(int64(r + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses := pg.CacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("expected both hits and misses with a thrashing pool; got hits=%d misses=%d", hits, misses)
	}
}

// TestBTreeConcurrentReadersFileBacked drives the same scenario through the
// full B+Tree read path: a file-backed tree with tiny node and page caches,
// read by several goroutines in parallel (Get + Scan mixed).
func TestBTreeConcurrentReadersFileBacked(t *testing.T) {
	pg, err := OpenFilePager(filepath.Join(t.TempDir(), "t.db"), 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(pg, Options{PageSize: 512, NodeCache: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for _, i := range rand.New(rand.NewSource(7)).Perm(n) {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Sync(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				k := rng.Intn(n)
				v, ok, err := tr.Get(key(k))
				if err != nil || !ok || !bytes.Equal(v, val(k)) {
					errs <- fmt.Errorf("Get(%d) = %q ok=%v err=%v", k, v, ok, err)
					return
				}
				if i%50 == 0 {
					count := 0
					err := tr.Scan(key(k), nil, func(_, _ []byte) (bool, error) {
						count++
						return count < 10, nil
					})
					if err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(r + 100))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// overlapPager wraps a MemPager and records how many readers are inside Read
// simultaneously. The sleep widens the window so that on any schedule —
// including a single-CPU host — a reader descheduled mid-Read gives another
// goroutine the chance to enter, if the tree's locking allows it to.
type overlapPager struct {
	*MemPager
	inflight atomic.Int32
	peak     atomic.Int32
}

func (p *overlapPager) Read(id PageID, buf []byte) error {
	cur := p.inflight.Add(1)
	for {
		peak := p.peak.Load()
		if cur <= peak || p.peak.CompareAndSwap(peak, cur) {
			break
		}
	}
	time.Sleep(100 * time.Microsecond)
	err := p.MemPager.Read(id, buf)
	p.inflight.Add(-1)
	return err
}

// TestConcurrentGetsOverlapInPager is the direct witness that the read path
// is no longer serialized: with a node cache of one, parallel Gets must be
// observed *inside* Pager.Read at the same time. Under the old design every
// Get held the tree's exclusive mutex across its page reads, so the peak
// in-flight count could never exceed one — on any number of CPUs. This
// property, unlike wall-clock scaling, is checkable on a single-core host.
func TestConcurrentGetsOverlapInPager(t *testing.T) {
	pg := &overlapPager{MemPager: NewMemPager(512)}
	tr, err := New(pg, Options{PageSize: 512, NodeCache: 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for _, i := range rand.New(rand.NewSource(3)).Perm(n) {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				k := rng.Intn(n)
				v, ok, err := tr.Get(key(k))
				if err != nil || !ok || !bytes.Equal(v, val(k)) {
					errs <- fmt.Errorf("Get(%d) = %q ok=%v err=%v", k, v, ok, err)
					return
				}
			}
		}(int64(r + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if peak := pg.peak.Load(); peak < 2 {
		t.Fatalf("peak concurrent Pager.Reads = %d; reads are still serialized", peak)
	}
}

// TestFilePagerEvictionWriteFailure arranges a dirty page at the LRU tail
// and makes write-back fail. The pager must (1) keep the dirty page resident
// rather than lose its data, (2) fall back to evicting a clean victim so the
// pool does not grow past capacity, and (3) surface the recorded error on
// the next Sync instead of swallowing it.
func TestFilePagerEvictionWriteFailure(t *testing.T) {
	const (
		pageSize = 512
		cap      = 4
	)
	pg, err := OpenFilePager(filepath.Join(t.TempDir(), "e.db"), pageSize, cap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cap; i++ {
		if _, err := pg.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := pg.Sync(); err != nil {
		t.Fatal(err)
	}
	// Dirty page 0, then touch the clean pages so page 0 sinks to the LRU
	// tail as the first eviction victim.
	if err := pg.Write(0, fillPage(0, pageSize)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, pageSize)
	for i := 1; i < cap; i++ {
		if err := pg.Read(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	// Break the backing file so write-back fails.
	pg.f.Close()

	// Allocation must still bound the pool: the dirty tail fails to write
	// back, so a clean victim is evicted instead.
	if _, err := pg.Allocate(); err != nil {
		t.Fatal(err)
	}
	pg.mu.Lock()
	poolSize := len(pg.cache)
	_, dirtyResident := pg.cache[0]
	recorded := pg.evictErr
	pg.mu.Unlock()
	if poolSize != cap {
		t.Fatalf("pool size = %d after failed write-back, want %d (clean-victim fallback)", poolSize, cap)
	}
	if !dirtyResident {
		t.Fatal("dirty page 0 was evicted despite its write-back failing; data lost")
	}
	if recorded == nil {
		t.Fatal("write-back failure was swallowed; want it recorded for the next Sync")
	}
	if err := pg.Sync(); err == nil {
		t.Fatal("Sync succeeded despite a recorded eviction write-back failure")
	}
}

// TestFilePagerWriteNotOrphanedByEviction pins the pool bug behind a
// freelist-corruption hang the crash matrix exposed: Write faults the target
// page into the pool clean, and insert's eviction scan — finding every other
// page dirty and unwritable on a failing disk — would walk to the front and
// evict the just-faulted page itself. Write then mutated an object the pool
// no longer tracked, and the next fault re-read stale storage: a silently
// lost write. The page being inserted must never be the eviction victim.
func TestFilePagerWriteNotOrphanedByEviction(t *testing.T) {
	const (
		pageSize = 512
		cap      = 4
	)
	plan := &FaultPlan{}
	pg, err := OpenFilePagerOpts(filepath.Join(t.TempDir(), "o.db"), pageSize,
		PagerOptions{CachePages: cap, FS: FaultFS{Plan: plan}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := pg.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := pg.Sync(); err != nil {
		t.Fatal(err)
	}
	// Fill the pool with dirty pages 0..3; page 5 falls out of the pool.
	for i := 0; i < cap; i++ {
		if err := pg.Write(PageID(i), fillPage(PageID(i), pageSize)); err != nil {
			t.Fatal(err)
		}
	}
	pg.mu.Lock()
	_, pooled := pg.cache[5]
	pg.mu.Unlock()
	if pooled {
		t.Fatal("page 5 still pooled; the test needs it to fault in during Write")
	}
	// Simulate the disk dying: every later write-back fails, reads succeed.
	plan.mu.Lock()
	plan.killed = true
	plan.mu.Unlock()

	want := fillPage(5, pageSize)
	if err := pg.Write(5, want); err != nil {
		t.Fatalf("Write into a pool of unwritable dirty pages: %v", err)
	}
	got := make([]byte, pageSize)
	if err := pg.Read(5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("write lost: Read returned stale content (page orphaned by its own insert's eviction)")
	}
	pg.mu.Lock()
	fp, resident := pg.cache[5]
	pg.mu.Unlock()
	if !resident || !fp.dirty {
		t.Fatalf("page 5 resident=%v dirty=%v after Write; want resident and dirty", resident, resident && fp.dirty)
	}
}

// TestFilePagerSyncClearsRecordedError checks the error is reported once: a
// Sync that manages a full flush reports the recorded error, and the Sync
// after that is clean.
func TestFilePagerSyncClearsRecordedError(t *testing.T) {
	pg, err := OpenFilePager(filepath.Join(t.TempDir(), "r.db"), 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.Allocate(); err != nil {
		t.Fatal(err)
	}
	pg.mu.Lock()
	pg.evictErr = fmt.Errorf("injected transient write-back failure")
	pg.mu.Unlock()
	if err := pg.Sync(); err == nil {
		t.Fatal("first Sync after a recorded eviction error must fail")
	}
	if err := pg.Sync(); err != nil {
		t.Fatalf("second Sync should be clean once the error was surfaced: %v", err)
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}
}
