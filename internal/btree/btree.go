// Package btree implements a disk-paged B+Tree with variable-length keys
// and values, range cursors, and delete rebalancing.
//
// It is the storage substrate the ViST paper assumes: the paper's
// experiments run on Berkeley DB B+Trees with 2 KB pages; this package
// provides the same point/range API on top of a Pager abstraction that can
// be file-backed (with an LRU buffer pool) or memory-backed.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"vist/internal/obs"
)

const (
	magic = "VISTBT01"

	pageFree = byte(3)

	// DefaultPageSize matches the paper's experimental setup ("we use disk
	// pages of size 2K for Berkeley DB B+Trees").
	DefaultPageSize = 2048

	defaultNodeCache = 512

	metaHeaderSize = 8 + 4 + 4 + 4 + 8 + 2 // magic, pageSize, root, freeHead, count, userMetaLen
)

// Options configures a B+Tree.
type Options struct {
	// PageSize is used when creating a new tree; opening an existing tree
	// validates against the stored size. Zero selects DefaultPageSize.
	PageSize int
	// NodeCache bounds the decoded-node cache. Zero selects a default.
	NodeCache int
	// Metrics, when non-nil, receives decoded-node-cache counters. The same
	// bundle may be shared across trees (its metrics are atomic).
	Metrics *obs.TreeMetrics
	// LegacyPageFormat writes the v1 fixed-width page format instead of the
	// front-coded v2 format. Reads always accept both. The knob exists for
	// A/B measurement (vistbench -exp compression) and format-migration
	// tests; new trees should leave it off.
	LegacyPageFormat bool
}

// BTree is a B+Tree over a Pager. All methods are safe for concurrent use:
// readers (Get, Scan, SeekFirst, ...) hold a shared lock and run in parallel
// with each other, while writers (Put, Delete, Sync, ...) hold the exclusive
// lock. The decoded-node cache has its own small mutex so parallel readers
// can fault pages in and maintain the LRU without serializing on the tree
// lock.
//
// Structural mutations are copy-on-write: a writer never rewrites a page
// reachable from the last published version (Publish), so a Snapshot reads
// a frozen tree without taking any tree lock at all. Pages replaced or
// discarded by writers queue on a per-publish free list and become
// allocatable again only after Reclaim declares their version unreferenced
// — the layer above tracks reader pins and drives the Publish → Reclaim
// lifecycle (see core's epoch protocol, DESIGN.md §11).
type BTree struct {
	mu       sync.RWMutex
	pg       Pager
	pageSize int
	cacheCap int
	legacy   bool // write v1 pages (Options.LegacyPageFormat)

	// Tree state below is written only under mu (exclusive) and read under
	// mu or mu.RLock.
	root      PageID
	freeHead  PageID
	count     uint64
	userMeta  []byte
	metaDirty bool

	// Copy-on-write version state. window identifies the in-progress write
	// window: nodes born in it are mutated in place, everything older is
	// shadowed. published is the version snapshot readers resolve against —
	// an atomic pointer so Snapshot() never takes the tree lock. The free
	// lists stage replaced pages through their reader-visibility lifecycle:
	// windowFree (freed by the current window, still reachable from the
	// published root) → aged (published away, possibly pinned by old-epoch
	// readers) → reusable (drained; allocPage may hand them out again).
	window      uint64
	published   atomic.Pointer[treeSnap]
	windowFree  []PageID
	windowAlloc []PageID // pages allocated by the current window (for Rollback)
	aged        []agedFree
	reusable    []PageID

	// The decoded-node cache is a lock-free-on-hit clock cache: cache maps
	// PageID → *node, cacheN tracks its size, and each node carries a ref
	// bit that hits set and eviction sweeps clear (second chance). A
	// mutex+LRU design serialized every reader on the hot path; here cache
	// hits are a single sync.Map load. Node *contents* are immutable while
	// any reader holds mu.RLock: only writers mutate nodes, and they hold
	// mu exclusively.
	cache   sync.Map // PageID → *node
	cacheN  atomic.Int64
	sweepMu sync.Mutex // at most one reader sweeps at a time

	buf     []byte    // scratch page buffer; exclusive-lock holders only
	bufPool sync.Pool // page buffers for the shared-lock read path

	// m counts node-cache traffic; never nil (a bundle of nil metrics when
	// observability is off).
	m *obs.TreeMetrics
}

// New opens the tree stored in pg, creating an empty tree when the pager has
// no pages yet.
func New(pg Pager, opts Options) (*BTree, error) {
	ps := opts.PageSize
	if ps == 0 {
		ps = DefaultPageSize
	}
	if pg.PageSize() != ps && opts.PageSize != 0 {
		return nil, fmt.Errorf("btree: pager page size %d != requested %d", pg.PageSize(), ps)
	}
	ps = pg.PageSize()
	nc := opts.NodeCache
	if nc <= 0 {
		nc = defaultNodeCache
	}
	m := opts.Metrics
	if m == nil {
		m = &obs.TreeMetrics{}
	}
	t := &BTree{
		pg:       pg,
		pageSize: ps,
		cacheCap: nc,
		legacy:   opts.LegacyPageFormat,
		buf:      make([]byte, ps),
		m:        m,
	}
	t.bufPool.New = func() any { return make([]byte, ps) }
	t.window = 1
	if pg.NumPages() == 0 {
		if err := t.create(); err != nil {
			return nil, err
		}
	} else if err := t.readMeta(); err != nil {
		return nil, err
	}
	// The freshly opened state is version zero: snapshots taken before the
	// first Publish read it.
	t.published.Store(&treeSnap{root: t.root, count: t.count})
	return t, nil
}

func (t *BTree) create() error {
	metaID, err := t.pg.Allocate()
	if err != nil {
		return err
	}
	if metaID != 0 {
		return fmt.Errorf("btree: meta page allocated as %d, want 0", metaID)
	}
	rootID, err := t.pg.Allocate()
	if err != nil {
		return err
	}
	root := &node{id: rootID, leaf: true}
	if err := t.flushNode(root); err != nil {
		return err
	}
	t.root = rootID
	t.metaDirty = true
	return t.writeMeta()
}

func (t *BTree) readMeta() error {
	if err := t.pg.Read(0, t.buf); err != nil {
		return err
	}
	if string(t.buf[:8]) != magic {
		return fmt.Errorf("btree: bad magic %q", t.buf[:8])
	}
	storedPS := int(binary.BigEndian.Uint32(t.buf[8:12]))
	if storedPS != t.pageSize {
		return fmt.Errorf("btree: stored page size %d != pager page size %d", storedPS, t.pageSize)
	}
	t.root = PageID(binary.BigEndian.Uint32(t.buf[12:16]))
	t.freeHead = PageID(binary.BigEndian.Uint32(t.buf[16:20]))
	t.count = binary.BigEndian.Uint64(t.buf[20:28])
	umLen := int(binary.BigEndian.Uint16(t.buf[28:30]))
	if metaHeaderSize+umLen > t.pageSize {
		return fmt.Errorf("btree: user meta length %d overflows page", umLen)
	}
	t.userMeta = append([]byte(nil), t.buf[metaHeaderSize:metaHeaderSize+umLen]...)
	return nil
}

func (t *BTree) writeMeta() error {
	for i := range t.buf {
		t.buf[i] = 0
	}
	copy(t.buf[:8], magic)
	binary.BigEndian.PutUint32(t.buf[8:12], uint32(t.pageSize))
	binary.BigEndian.PutUint32(t.buf[12:16], uint32(t.root))
	binary.BigEndian.PutUint32(t.buf[16:20], uint32(t.freeHead))
	binary.BigEndian.PutUint64(t.buf[20:28], t.count)
	if metaHeaderSize+len(t.userMeta) > t.pageSize {
		return fmt.Errorf("btree: user meta of %d bytes overflows page", len(t.userMeta))
	}
	binary.BigEndian.PutUint16(t.buf[28:30], uint16(len(t.userMeta)))
	copy(t.buf[metaHeaderSize:], t.userMeta)
	if err := t.pg.Write(0, t.buf); err != nil {
		return err
	}
	t.metaDirty = false
	return nil
}

// MaxEntrySize reports the largest key+value payload a single Put accepts.
// It is sized so that every leaf can hold at least two cells.
func (t *BTree) MaxEntrySize() int { return (t.pageSize - leafHeaderSize) / 2 }

// maxKeySize keeps internal nodes able to hold at least three separators.
func (t *BTree) maxKeySize() int { return (t.pageSize - internalHeaderSize) / 3 }

func (t *BTree) minFill() int { return t.pageSize / 4 }

// nodeSize is the exact on-page size of n in the tree's write format. All
// fill decisions (split, underflow, borrow, merge) measure the encoded
// size: pages are fixed-size, so front coding shrinks the file only if
// splits are deferred until the compressed image overflows.
func (t *BTree) nodeSize(n *node) int { return n.serializedSize(t.legacy) }

// leafSize returns the exact encoded size of a hypothetical leaf holding
// the given cells; internalSize is its internal-node counterpart
// (len(kids) == len(keys)+1). Borrow and merge feasibility checks feed
// candidate cell lists through these before mutating anything.
func (t *BTree) leafSize(keys, vals [][]byte) int {
	if t.legacy {
		sz := leafHeaderSize
		for i, k := range keys {
			sz += leafCellSize(k, vals[i])
		}
		return sz
	}
	return encodedLeafSize(keys, vals)
}

func (t *BTree) internalSize(keys [][]byte, kids []PageID) int {
	if t.legacy {
		sz := internalHeaderSize
		for _, k := range keys {
			sz += internalCellSize(k)
		}
		return sz
	}
	return encodedInternalSize(keys, kids)
}

// mergedSize returns the exact page size of folding right into left. For
// internal nodes the parent separator joins the merged cell list — the v1
// additive estimate omitted it, which could overflow a page when both
// halves were near the merge threshold with a long separator.
func (t *BTree) mergedSize(left, right *node, sep []byte) int {
	if left.leaf {
		ks := append(left.keys[:len(left.keys):len(left.keys)], right.keys...)
		vs := append(left.vals[:len(left.vals):len(left.vals)], right.vals...)
		return t.leafSize(ks, vs)
	}
	ks := append(left.keys[:len(left.keys):len(left.keys)], sep)
	ks = append(ks, right.keys...)
	kids := append(left.kids[:len(left.kids):len(left.kids)], right.kids...)
	return t.internalSize(ks, kids)
}

// --- node cache -----------------------------------------------------------
//
// The cache uses the clock (second-chance) policy instead of strict LRU so
// that a cache hit performs no shared-state mutation beyond one atomic
// ref-bit store: recency lives on the node itself, and eviction sweeps the
// map clearing ref bits, reclaiming only nodes that went un-referenced for a
// full sweep. Hot upper-level nodes are re-referenced constantly and survive.

// evict bounds the cache, flushing dirty victims. Only exclusive-lock
// holders may call it (flushing uses t.buf and writes to the pager).
func (t *BTree) evict() error {
	var err error
	for t.cacheN.Load() > int64(t.cacheCap) {
		evicted := false
		t.cache.Range(func(k, v any) bool {
			if t.cacheN.Load() <= int64(t.cacheCap) {
				return false
			}
			n := v.(*node)
			if n.ref.Load() != 0 {
				n.ref.Store(0) // second chance
				return true
			}
			if n.dirty {
				if err = t.flushNode(n); err != nil {
					return false
				}
			}
			if t.cache.CompareAndDelete(k, v) {
				t.cacheN.Add(-1)
				t.m.NodeCacheEvictions.Inc()
				evicted = true
			}
			return true
		})
		if err != nil || !evicted {
			// Nothing reclaimable this round (all nodes re-referenced);
			// their ref bits are now cleared, so the next call makes
			// progress. Leaving the cache briefly over cap is safe.
			break
		}
	}
	return err
}

// evictClean bounds the cache from the shared-lock read path: it may only
// drop clean nodes (a reader has no scratch buffer and must not write), so
// dirty nodes — which exist only between a writer's mutation and its evict
// or Sync — are skipped and left for the next writer to flush. At most one
// reader sweeps at a time; the rest skip.
func (t *BTree) evictClean() {
	if !t.sweepMu.TryLock() {
		return
	}
	defer t.sweepMu.Unlock()
	for t.cacheN.Load() > int64(t.cacheCap) {
		evicted := false
		t.cache.Range(func(k, v any) bool {
			if t.cacheN.Load() <= int64(t.cacheCap) {
				return false
			}
			n := v.(*node)
			if n.dirty {
				return true
			}
			if n.ref.Load() != 0 {
				n.ref.Store(0)
				return true
			}
			if t.cache.CompareAndDelete(k, v) {
				t.cacheN.Add(-1)
				t.m.NodeCacheEvictions.Inc()
				evicted = true
			}
			return true
		})
		if !evicted {
			break
		}
	}
}

// load returns the decoded node for id, faulting it in on a miss. It is safe
// under either the shared or the exclusive tree lock: hits are a lock-free
// map load plus a ref-bit store, and misses read the page image into a
// pooled buffer, so parallel readers never share scratch state. When two
// readers miss on the same page at once, the loser adopts the winner's node.
func (t *BTree) load(id PageID) (*node, error) {
	if v, ok := t.cache.Load(id); ok {
		n := v.(*node)
		if n.ref.Load() == 0 {
			n.ref.Store(1)
		}
		t.m.NodeCacheHits.Inc()
		return n, nil
	}
	t.m.NodeCacheMisses.Inc()

	buf := t.bufPool.Get().([]byte)
	err := t.pg.Read(id, buf)
	if err != nil {
		t.bufPool.Put(buf)
		return nil, err
	}
	n, err := deserializeNode(id, buf)
	t.bufPool.Put(buf) // deserializeNode copies; the buffer is reusable
	if err != nil {
		return nil, err
	}
	n.ref.Store(1)

	if existing, loaded := t.cache.LoadOrStore(id, n); loaded {
		return existing.(*node), nil
	}
	if t.cacheN.Add(1) > int64(t.cacheCap) {
		t.evictClean()
	}
	return n, nil
}

// markDirty registers n in the cache as modified. Exclusive-lock holders
// only (it mutates node state readers would otherwise observe). The store
// is unconditional: if an earlier eviction dropped n while this operation
// still held its pointer, n — carrying the operation's mutations — must
// displace any freshly deserialized copy.
func (t *BTree) markDirty(n *node) {
	n.dirty = true
	n.ref.Store(1)
	if _, loaded := t.cache.Swap(n.id, n); !loaded {
		t.cacheN.Add(1)
	}
}

// flushNode serializes n through the scratch buffer. Exclusive-lock holders
// only.
func (t *BTree) flushNode(n *node) error {
	if err := n.serialize(t.buf, t.legacy); err != nil {
		return err
	}
	if err := t.pg.Write(n.id, t.buf); err != nil {
		return err
	}
	n.dirty = false
	return nil
}

func (t *BTree) dropFromCache(id PageID) {
	if _, loaded := t.cache.LoadAndDelete(id); loaded {
		t.cacheN.Add(-1)
	}
}

// --- versions (copy-on-write) ---------------------------------------------

// treeSnap is one published tree version: a root whose entire reachable page
// set is frozen (writers shadow instead of rewriting) plus the entry count
// at publish time.
type treeSnap struct {
	root  PageID
	count uint64
}

// agedFree records the pages one Publish made unreachable: they belong to
// versions strictly older than epoch and may be reused once no reader is
// pinned below it.
type agedFree struct {
	epoch uint64
	ids   []PageID
}

// shadow returns a node the current write window owns: n itself when this
// window already created or copied it, otherwise a copy under a fresh page
// ID, with the original queued for reclamation after the version it belongs
// to drains. Committed pages are thereby never rewritten, which is what lets
// Snapshot readers run without locks and lets a crash before the next
// commit leave every published version intact.
func (t *BTree) shadow(n *node) (*node, error) {
	if n.born == t.window {
		return n, nil
	}
	id, err := t.allocPage()
	if err != nil {
		return nil, err
	}
	c := &node{
		id:   id,
		leaf: n.leaf,
		keys: append([][]byte(nil), n.keys...),
		vals: append([][]byte(nil), n.vals...),
		kids: append([]PageID(nil), n.kids...),
		born: t.window,
	}
	t.pendingFree(n.id)
	t.markDirty(c)
	return c, nil
}

// pendingFree queues a page replaced or discarded by the current window.
// The page is NOT touched on disk — old-epoch readers may still resolve it —
// and only becomes allocatable again via Publish → Reclaim.
func (t *BTree) pendingFree(id PageID) {
	t.windowFree = append(t.windowFree, id)
}

// Publish freezes the pending tree state as the version lock-free Snapshot
// readers resolve against, stamps the pages the window freed with the
// published epoch, and opens the next write window. The caller (core) holds
// its exclusive lock across the mutation and the Publish, and assigns
// monotonically increasing epochs.
func (t *BTree) Publish(epoch uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.published.Store(&treeSnap{root: t.root, count: t.count})
	if len(t.windowFree) > 0 {
		t.aged = append(t.aged, agedFree{epoch: epoch, ids: t.windowFree})
		t.windowFree = nil
	}
	t.windowAlloc = nil
	t.window = epoch + 1
}

// Rollback discards the current write window: the pending root reverts to the
// last published version, pages the window allocated become immediately
// reusable (no reader ever saw them — they were reachable only from the
// now-abandoned pending root), and pages the window had queued for freeing
// return to live duty (the published version still references them). Core
// calls this when a mutation fails partway, so no later publish can carry the
// partial writes — in particular, a half-shadowed subtree whose replaced
// pages would otherwise hit the free lists while still reachable.
func (t *BTree) Rollback() {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.published.Load()
	t.root = s.root
	t.count = s.count
	t.metaDirty = true
	for _, id := range t.windowAlloc {
		// Drop first: the cached node carries the abandoned contents (and
		// possibly a dirty bit that would flush them over a reused page).
		t.dropFromCache(id)
		t.reusable = append(t.reusable, id)
	}
	t.windowAlloc = nil
	t.windowFree = nil
}

// Reclaim makes the pages freed by publishes at or below minEpoch
// allocatable again. minEpoch must be the minimum epoch any reader is still
// pinned to (or the latest published epoch when no reader is pinned): pages
// stamped with epoch E are referenced only by versions older than E, so they
// are safe exactly when every pin is at E or beyond. Only the writer side
// calls Reclaim — reader release never mutates free lists.
func (t *BTree) Reclaim(minEpoch uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i := 0
	for ; i < len(t.aged) && t.aged[i].epoch <= minEpoch; i++ {
		t.reusable = append(t.reusable, t.aged[i].ids...)
	}
	if i > 0 {
		t.aged = append(t.aged[:0:0], t.aged[i:]...)
	}
}

// Snapshot returns the last published version. Its methods take no tree
// lock and never block on writers; the caller must keep the version pinned
// (core's reader refcounts) for as long as it uses the snapshot, or a
// Reclaim may hand its pages to a new write window.
func (t *BTree) Snapshot() Snapshot {
	s := t.published.Load()
	return Snapshot{t: t, root: s.root, count: s.count}
}

// Snapshot is an immutable, lock-free read-only view of one published tree
// version. See BTree.Snapshot.
type Snapshot struct {
	t     *BTree
	root  PageID
	count uint64
}

// Len reports the number of entries in the snapshot's version.
func (s Snapshot) Len() uint64 { return s.count }

// Get returns the value stored under key in the snapshot's version.
func (s Snapshot) Get(key []byte) ([]byte, bool, error) {
	return s.t.getFrom(s.root, key)
}

// Scan visits all snapshot entries with lo <= key < hi in ascending order.
func (s Snapshot) Scan(lo, hi []byte, fn func(key, val []byte) (bool, error)) error {
	return s.t.scanFrom(s.root, lo, hi, nil, fn)
}

// ScanWith is Scan with a per-page hook (see BTree.ScanWith).
func (s Snapshot) ScanWith(lo, hi []byte, onPage func() error, fn func(key, val []byte) (bool, error)) error {
	return s.t.scanFrom(s.root, lo, hi, onPage, fn)
}

// SeekFirstWith returns the smallest snapshot entry with lo <= key < hi.
func (s Snapshot) SeekFirstWith(lo, hi []byte, onPage func() error) (key, val []byte, ok bool, err error) {
	err = s.t.scanFrom(s.root, lo, hi, onPage, func(k, v []byte) (bool, error) {
		key = append([]byte(nil), k...)
		val = append([]byte(nil), v...)
		ok = true
		return false, nil
	})
	return key, val, ok, err
}

// CheckVersions verifies the copy-on-write bookkeeping of the live
// versions: the page sets reachable from the published root and from the
// pending root must be duplicate-free and acyclic, and no reachable page
// may sit on a free list (window, aged, or reusable) — a page that is both
// reachable and queued for reuse would eventually be rewritten under a
// reader that can still see it.
func (t *BTree) CheckVersions() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	// Pages freed by past publishes (aged) or drained (reusable) must be
	// unreachable from every live version. Pages freed by the current,
	// still-unpublished window (windowFree) are different: the published
	// version still references the originals that this window shadowed, so
	// they are illegal only from the pending root.
	shared := make(map[PageID]string)
	for _, e := range t.aged {
		for _, id := range e.ids {
			shared[id] = "aged"
		}
	}
	for _, id := range t.reusable {
		shared[id] = "reusable"
	}
	pendingOnly := make(map[PageID]string, len(shared)+len(t.windowFree))
	for id, list := range shared {
		pendingOnly[id] = list
	}
	for _, id := range t.windowFree {
		pendingOnly[id] = "window"
	}
	check := func(root PageID, what string, free map[PageID]string) error {
		seen := make(map[PageID]struct{})
		var walk func(id PageID, depth int) error
		walk = func(id PageID, depth int) error {
			if depth > 64 {
				return fmt.Errorf("btree: %s version deeper than 64 levels (cycle?)", what)
			}
			if _, dup := seen[id]; dup {
				return fmt.Errorf("btree: page %d reachable twice from the %s root", id, what)
			}
			seen[id] = struct{}{}
			if list, bad := free[id]; bad {
				return fmt.Errorf("btree: page %d reachable from the %s root but on the %s free list", id, what, list)
			}
			n, err := t.load(id)
			if err != nil {
				return err
			}
			if n.leaf {
				return nil
			}
			for _, kid := range n.kids {
				if err := walk(kid, depth+1); err != nil {
					return err
				}
			}
			return nil
		}
		return walk(root, 0)
	}
	if err := check(t.published.Load().root, "published", shared); err != nil {
		return err
	}
	return check(t.root, "pending", pendingOnly)
}

// --- page allocation ------------------------------------------------------

// allocPage hands the current write window a page no published version can
// reach, preferring drained version pages (no I/O), then the durable on-disk
// freelist chain, then file growth. Every allocation is recorded in
// windowAlloc so a Rollback can recycle the window's pages.
func (t *BTree) allocPage() (PageID, error) {
	if n := len(t.reusable); n > 0 {
		// Drained version pages are preferred: reusing one needs no disk
		// read (unlike the durable freelist chain) and no file growth. The
		// stale cached node under this ID (from the version that freed it)
		// must not shadow the new contents.
		id := t.reusable[n-1]
		t.reusable = t.reusable[:n-1]
		t.dropFromCache(id)
		t.windowAlloc = append(t.windowAlloc, id)
		return id, nil
	}
	if t.freeHead != 0 {
		id := t.freeHead
		if err := t.pg.Read(id, t.buf); err != nil {
			return 0, err
		}
		if t.buf[0] != pageFree {
			return 0, fmt.Errorf("btree: freelist page %d is not free (type %d)", id, t.buf[0])
		}
		t.freeHead = PageID(binary.BigEndian.Uint32(t.buf[1:5]))
		t.metaDirty = true
		t.windowAlloc = append(t.windowAlloc, id)
		return id, nil
	}
	id, err := t.pg.Allocate()
	if err != nil {
		return 0, err
	}
	t.windowAlloc = append(t.windowAlloc, id)
	return id, nil
}

// freePage pushes id onto the durable on-disk freelist chain, writing the
// chain link into the page itself. Under copy-on-write this is only legal
// for pages no reader can reach anymore, so the only caller besides create
// is flushLocked persisting drained (reusable) pages; live frees go through
// pendingFree instead.
func (t *BTree) freePage(id PageID) error {
	t.dropFromCache(id)
	for i := range t.buf {
		t.buf[i] = 0
	}
	t.buf[0] = pageFree
	binary.BigEndian.PutUint32(t.buf[1:5], uint32(t.freeHead))
	if err := t.pg.Write(id, t.buf); err != nil {
		return err
	}
	t.freeHead = id
	t.metaDirty = true
	return nil
}

// --- public API -----------------------------------------------------------

// Len reports the number of stored entries.
func (t *BTree) Len() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// UserMeta returns the caller-owned metadata blob stored in the meta page.
func (t *BTree) UserMeta() []byte {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]byte(nil), t.userMeta...)
}

// SetUserMeta replaces the caller-owned metadata blob. It must fit in the
// meta page alongside the header.
func (t *BTree) SetUserMeta(m []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if metaHeaderSize+len(m) > t.pageSize {
		return fmt.Errorf("btree: user meta of %d bytes exceeds page size %d", len(m), t.pageSize)
	}
	t.userMeta = append(t.userMeta[:0], m...)
	t.metaDirty = true
	return nil
}

// Get returns the value stored under key in the pending (writer-visible)
// tree. It holds the shared lock, so concurrent Gets and Scans proceed in
// parallel; use Snapshot().Get for lock-free reads of the published version.
func (t *BTree) Get(key []byte) ([]byte, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.getFrom(t.root, key)
}

// getFrom is the root-parameterized point lookup shared by BTree.Get (under
// the shared lock, pending root) and Snapshot.Get (no lock, published root).
func (t *BTree) getFrom(root PageID, key []byte) ([]byte, bool, error) {
	id := root
	for {
		n, err := t.load(id)
		if err != nil {
			return nil, false, err
		}
		if n.leaf {
			i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
			if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
				return append([]byte(nil), n.vals[i]...), true, nil
			}
			return nil, false, nil
		}
		id = n.kids[t.childIndex(n, key)]
	}
}

// childIndex returns the child slot to descend into for key.
func (t *BTree) childIndex(n *node, key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(key, n.keys[i]) < 0 })
}

type splitResult struct {
	sep   []byte
	right PageID
}

// Put inserts or replaces the value stored under key.
func (t *BTree) Put(key, val []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("btree: empty key")
	}
	if len(key) > t.maxKeySize() {
		return fmt.Errorf("btree: key of %d bytes exceeds max %d", len(key), t.maxKeySize())
	}
	if leafCellSize(key, val) > t.MaxEntrySize() {
		return fmt.Errorf("btree: entry of %d bytes exceeds max %d", leafCellSize(key, val), t.MaxEntrySize())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	newRoot, split, err := t.put(t.root, key, val)
	if err != nil {
		return err
	}
	if newRoot != t.root {
		t.root = newRoot
		t.metaDirty = true
	}
	if split != nil {
		newRootID, err := t.allocPage()
		if err != nil {
			return err
		}
		root := &node{
			id:   newRootID,
			keys: [][]byte{split.sep},
			kids: []PageID{t.root, split.right},
			born: t.window,
		}
		t.markDirty(root)
		t.root = newRootID
		t.metaDirty = true
	}
	// markDirty does not evict (it has no error path); bound the cache
	// once per operation instead.
	return t.evict()
}

// put inserts key/val under the subtree rooted at id, copy-on-write: every
// node along the descent is shadowed into the current window, so the
// returned page ID (the subtree's new root) differs from id unless the
// window already owned it. The published version keeps resolving through
// the old pages untouched.
func (t *BTree) put(id PageID, key, val []byte) (PageID, *splitResult, error) {
	n, err := t.load(id)
	if err != nil {
		return id, nil, err
	}
	if n.leaf {
		if n, err = t.shadow(n); err != nil {
			return id, nil, err
		}
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			n.vals[i] = append([]byte(nil), val...)
		} else {
			n.insertLeafCell(i, append([]byte(nil), key...), append([]byte(nil), val...))
			t.count++
			t.metaDirty = true
		}
		t.markDirty(n)
		if t.nodeSize(n) <= t.pageSize {
			return n.id, nil, nil
		}
		split, err := t.splitLeaf(n)
		return n.id, split, err
	}
	idx := t.childIndex(n, key)
	newChild, split, err := t.put(n.kids[idx], key, val)
	if err != nil {
		return id, nil, err
	}
	if n, err = t.shadow(n); err != nil {
		return id, nil, err
	}
	n.kids[idx] = newChild
	t.markDirty(n)
	if split == nil {
		return n.id, nil, nil
	}
	n.insertInternalCell(idx, split.sep, split.right)
	if t.nodeSize(n) <= t.pageSize {
		return n.id, nil, nil
	}
	sp, err := t.splitInternal(n)
	return n.id, sp, err
}

// findSplit searches for a split index m in [lo, hi] such that both halves
// fit a page, starting from the balance point start and widening outward.
// Under front coding half sizes are not monotone in m (the right half's
// first cell becomes a full restart key, and restart positions shift), so
// the balance point alone cannot be trusted to fit — each candidate is
// verified against the exact encoded sizes.
func (t *BTree) findSplit(lo, hi, start int, halves func(m int) (left, right int)) (int, error) {
	if start < lo {
		start = lo
	}
	if start > hi {
		start = hi
	}
	for d := 0; ; d++ {
		m1, m2 := start+d, start-d
		if m1 > hi && m2 < lo {
			return 0, fmt.Errorf("btree: no split point fits a page")
		}
		if m1 <= hi {
			if l, r := halves(m1); l <= t.pageSize && r <= t.pageSize {
				return m1, nil
			}
		}
		if m2 >= lo && m2 != m1 {
			if l, r := halves(m2); l <= t.pageSize && r <= t.pageSize {
				return m2, nil
			}
		}
	}
}

// splitLeaf moves the upper half of n's cells into a fresh right sibling.
// n must be owned by the current window (shadowed by the caller).
func (t *BTree) splitLeaf(n *node) (*splitResult, error) {
	// Balance point: where the accumulated per-cell payload first reaches
	// half the total (fixed-width accounting is fine for a starting guess;
	// findSplit verifies candidates with exact encoded sizes).
	total, acc, start := 0, 0, len(n.keys)/2
	for i := range n.keys {
		total += leafCellSize(n.keys[i], n.vals[i])
	}
	for i := range n.keys {
		acc += leafCellSize(n.keys[i], n.vals[i])
		if acc >= total/2 {
			start = i + 1
			break
		}
	}
	mid, err := t.findSplit(1, len(n.keys)-1, start, func(m int) (int, int) {
		return t.leafSize(n.keys[:m], n.vals[:m]), t.leafSize(n.keys[m:], n.vals[m:])
	})
	if err != nil {
		return nil, err
	}
	rightID, err := t.allocPage()
	if err != nil {
		return nil, err
	}
	right := &node{
		id:   rightID,
		leaf: true,
		keys: append([][]byte(nil), n.keys[mid:]...),
		vals: append([][]byte(nil), n.vals[mid:]...),
		born: t.window,
	}
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	t.markDirty(n)
	t.markDirty(right)
	sep := append([]byte(nil), right.keys[0]...)
	return &splitResult{sep: sep, right: rightID}, nil
}

// splitInternal promotes separator mid of n, which must be owned by the
// current window: left keeps keys[:mid]/kids[:mid+1], the new right sibling
// takes keys[mid+1:]/kids[mid+1:].
func (t *BTree) splitInternal(n *node) (*splitResult, error) {
	mid, err := t.findSplit(0, len(n.keys)-1, len(n.keys)/2, func(m int) (int, int) {
		return t.internalSize(n.keys[:m], n.kids[:m+1]), t.internalSize(n.keys[m+1:], n.kids[m+1:])
	})
	if err != nil {
		return nil, err
	}
	rightID, err := t.allocPage()
	if err != nil {
		return nil, err
	}
	sep := n.keys[mid]
	right := &node{
		id:   rightID,
		keys: append([][]byte(nil), n.keys[mid+1:]...),
		kids: append([]PageID(nil), n.kids[mid+1:]...),
		born: t.window,
	}
	n.keys = n.keys[:mid]
	n.kids = n.kids[:mid+1]
	t.markDirty(n)
	t.markDirty(right)
	return &splitResult{sep: sep, right: rightID}, nil
}

// Delete removes key, reporting whether it was present.
func (t *BTree) Delete(key []byte) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	newRoot, deleted, _, split, err := t.del(t.root, key)
	if err != nil || !deleted {
		return deleted, err
	}
	if newRoot != t.root {
		t.root = newRoot
		t.metaDirty = true
	}
	if split != nil {
		// Front coding can grow a page on removal (restart points shift to
		// different cells, which then store their keys in full), so even a
		// delete can split the root.
		newRootID, err := t.allocPage()
		if err != nil {
			return true, err
		}
		root := &node{
			id:   newRootID,
			keys: [][]byte{split.sep},
			kids: []PageID{t.root, split.right},
			born: t.window,
		}
		t.markDirty(root)
		t.root = newRootID
		t.metaDirty = true
		return true, t.evict()
	}
	root, err := t.load(t.root)
	if err != nil {
		return true, err
	}
	if !root.leaf && len(root.keys) == 0 {
		old := t.root
		t.root = root.kids[0]
		t.metaDirty = true
		t.pendingFree(old)
		if root.born == t.window {
			// Never part of a published version; no reader can load it.
			t.dropFromCache(old)
		}
	}
	return true, t.evict()
}

// del removes key from the subtree rooted at id, copy-on-write like put:
// the returned page ID is the subtree's new root (id itself when the key
// was absent or the window already owned the whole path).
//
// Under front coding a removal can grow the encoded page: cell indices
// shift, restart points land on different cells, and a formerly-compressed
// cell at a new restart stores its key in full. Likewise rebalance can grow
// this node (borrow replaces the parent separator; merge removes a cell).
// When that overflows the page, del splits it and hands the separator up
// exactly like put — so the split return is part of the delete path too.
func (t *BTree) del(id PageID, key []byte) (newID PageID, deleted, underflow bool, split *splitResult, err error) {
	n, err := t.load(id)
	if err != nil {
		return id, false, false, nil, err
	}
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
		if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
			return id, false, false, nil, nil
		}
		if n, err = t.shadow(n); err != nil {
			return id, false, false, nil, err
		}
		n.removeLeafCell(i)
		t.count--
		t.metaDirty = true
		t.markDirty(n)
		if t.nodeSize(n) > t.pageSize {
			sp, err := t.splitLeaf(n)
			return n.id, true, false, sp, err
		}
		return n.id, true, t.nodeSize(n) < t.minFill(), nil, nil
	}
	idx := t.childIndex(n, key)
	newChild, deleted, childUnder, childSplit, err := t.del(n.kids[idx], key)
	if err != nil || !deleted {
		return id, deleted, false, nil, err
	}
	if n, err = t.shadow(n); err != nil {
		return id, true, false, nil, err
	}
	n.kids[idx] = newChild
	t.markDirty(n)
	if childSplit != nil {
		n.insertInternalCell(idx, childSplit.sep, childSplit.right)
	}
	if childUnder {
		if err := t.rebalance(n, idx); err != nil {
			return n.id, true, false, nil, err
		}
	}
	if t.nodeSize(n) > t.pageSize {
		sp, err := t.splitInternal(n)
		return n.id, true, false, sp, err
	}
	return n.id, true, t.nodeSize(n) < t.minFill(), nil, nil
}

// rebalance restores the fill of parent.kids[idx] by borrowing from a
// sibling or merging with one; if neither is possible the underfull child
// is tolerated. parent and the child are already owned by the current
// window (shadowed by del); siblings are shadowed here only when they will
// actually donate cells or receive a merge, so a tolerated underflow costs
// no page churn.
func (t *BTree) rebalance(parent *node, idx int) error {
	child, err := t.load(parent.kids[idx])
	if err != nil {
		return err
	}
	if t.nodeSize(child) >= t.minFill() {
		return nil
	}
	// Try borrowing from the left sibling. A borrow mutates the donor, so
	// the sibling is shadowed first; a merge into it mutates it too.
	if idx > 0 {
		left, err := t.load(parent.kids[idx-1])
		if err != nil {
			return err
		}
		mayBorrow := t.nodeSize(left) > t.minFill() && len(left.keys) > 1
		mayMerge := t.mergedSize(left, child, parent.keys[idx-1]) <= t.pageSize
		if mayBorrow || mayMerge {
			if left, err = t.shadow(left); err != nil {
				return err
			}
			parent.kids[idx-1] = left.id
			t.markDirty(parent)
			if t.borrow(parent, idx-1, left, child, true) {
				return nil
			}
			if t.mergedSize(left, child, parent.keys[idx-1]) <= t.pageSize {
				return t.merge(parent, idx-1, left, child)
			}
		}
	}
	// Try borrowing from the right sibling. Merging right into the child
	// only reads the right sibling, so it needs no shadow in that case.
	if idx < len(parent.kids)-1 {
		right, err := t.load(parent.kids[idx+1])
		if err != nil {
			return err
		}
		if t.nodeSize(right) > t.minFill() && len(right.keys) > 1 {
			if right, err = t.shadow(right); err != nil {
				return err
			}
			parent.kids[idx+1] = right.id
			t.markDirty(parent)
			if t.borrow(parent, idx, child, right, false) {
				return nil
			}
		}
		if t.mergedSize(child, right, parent.keys[idx]) <= t.pageSize {
			return t.merge(parent, idx, child, right)
		}
	}
	return nil
}

// borrow moves cells from the donor side toward the receiver until the
// receiver is adequately filled. left and right are adjacent children with
// separator parent.keys[sepIdx]; fromLeft selects the donor.
func (t *BTree) borrow(parent *node, sepIdx int, left, right *node, fromLeft bool) bool {
	moved := false
	for {
		var donor, recv *node
		if fromLeft {
			donor, recv = left, right
		} else {
			donor, recv = right, left
		}
		if t.nodeSize(recv) >= t.minFill() {
			break
		}
		if t.nodeSize(donor) <= t.minFill() || len(donor.keys) <= 1 {
			break
		}
		if donor.leaf {
			if fromLeft {
				k, v := donor.keys[len(donor.keys)-1], donor.vals[len(donor.vals)-1]
				ks := append([][]byte{k}, recv.keys...)
				vs := append([][]byte{v}, recv.vals...)
				if t.leafSize(ks, vs) > t.pageSize {
					break
				}
				donor.removeLeafCell(len(donor.keys) - 1)
				recv.insertLeafCell(0, k, v)
				parent.keys[sepIdx] = append([]byte(nil), recv.keys[0]...)
			} else {
				k, v := donor.keys[0], donor.vals[0]
				ks := append(recv.keys[:len(recv.keys):len(recv.keys)], k)
				vs := append(recv.vals[:len(recv.vals):len(recv.vals)], v)
				if t.leafSize(ks, vs) > t.pageSize {
					break
				}
				// Dropping the donor's first cell shifts every index, which
				// can move restart points and grow its encoding.
				if t.leafSize(donor.keys[1:], donor.vals[1:]) > t.pageSize {
					break
				}
				donor.removeLeafCell(0)
				recv.keys = append(recv.keys, k)
				recv.vals = append(recv.vals, v)
				parent.keys[sepIdx] = append([]byte(nil), donor.keys[0]...)
			}
		} else {
			sep := parent.keys[sepIdx]
			if fromLeft {
				k := donor.keys[len(donor.keys)-1]
				c := donor.kids[len(donor.kids)-1]
				ks := append([][]byte{sep}, recv.keys...)
				kids := append([]PageID{c}, recv.kids...)
				if t.internalSize(ks, kids) > t.pageSize {
					break
				}
				donor.keys = donor.keys[:len(donor.keys)-1]
				donor.kids = donor.kids[:len(donor.kids)-1]
				recv.keys = append([][]byte{append([]byte(nil), sep...)}, recv.keys...)
				recv.kids = append([]PageID{c}, recv.kids...)
				parent.keys[sepIdx] = append([]byte(nil), k...)
			} else {
				k := donor.keys[0]
				c := donor.kids[0]
				ks := append(recv.keys[:len(recv.keys):len(recv.keys)], sep)
				kids := append(recv.kids[:len(recv.kids):len(recv.kids)], c)
				if t.internalSize(ks, kids) > t.pageSize {
					break
				}
				// Dropping the donor's first cell shifts every index, which
				// can move restart points and grow its encoding.
				if t.internalSize(donor.keys[1:], donor.kids[1:]) > t.pageSize {
					break
				}
				donor.keys = donor.keys[1:]
				donor.kids = donor.kids[1:]
				recv.keys = append(recv.keys, append([]byte(nil), sep...))
				recv.kids = append(recv.kids, c)
				parent.keys[sepIdx] = append([]byte(nil), k...)
			}
		}
		t.markDirty(donor)
		t.markDirty(recv)
		t.markDirty(parent)
		moved = true
	}
	if !moved {
		return false
	}
	// The receiver must have reached adequate fill for the borrow to count.
	var recv *node
	if fromLeft {
		recv = right
	} else {
		recv = left
	}
	return t.nodeSize(recv) >= t.minFill()
}

// merge folds right into left and removes separator sepIdx from the parent.
// left and parent must be owned by the current window; right is only read
// and then retired, so a committed right stays cached for pinned readers.
func (t *BTree) merge(parent *node, sepIdx int, left, right *node) error {
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
	} else {
		left.keys = append(left.keys, append([]byte(nil), parent.keys[sepIdx]...))
		left.keys = append(left.keys, right.keys...)
		left.kids = append(left.kids, right.kids...)
	}
	parent.removeInternalCell(sepIdx)
	t.markDirty(left)
	t.markDirty(parent)
	t.pendingFree(right.id)
	if right.born == t.window {
		t.dropFromCache(right.id)
	}
	return nil
}

// Sync flushes all dirty state to the pager and the pager to stable storage.
func (t *BTree) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syncLocked()
}

// Flush writes all dirty nodes and the meta page through to the pager and
// stages them one layer down (Pager.Flush) without forcing stable storage.
// core uses it to stage every tree of an index into a shared WAL before one
// atomic commit; a standalone tree should call Sync instead.
func (t *BTree) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *BTree) flushLocked() error {
	// Persist drained page versions to the durable freelist chain. Only
	// reusable pages qualify: their epoch has no pinned readers left, so
	// overwriting them with freelist links can't disturb a live snapshot.
	for len(t.reusable) > 0 {
		id := t.reusable[len(t.reusable)-1]
		t.reusable = t.reusable[:len(t.reusable)-1]
		if err := t.freePage(id); err != nil {
			return err
		}
	}
	var flushErr error
	t.cache.Range(func(_, v any) bool {
		n := v.(*node)
		if n.dirty {
			if err := t.flushNode(n); err != nil {
				flushErr = fmt.Errorf("btree: flush page %d: %w", n.id, err)
				return false
			}
		}
		return true
	})
	if flushErr != nil {
		return flushErr
	}
	if t.metaDirty {
		if err := t.writeMeta(); err != nil {
			return err
		}
	}
	return t.pg.Flush()
}

func (t *BTree) syncLocked() error {
	if err := t.flushLocked(); err != nil {
		return err
	}
	return t.pg.Sync()
}

// Close flushes and closes the underlying pager.
func (t *BTree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.syncLocked(); err != nil {
		t.pg.Close()
		return err
	}
	return t.pg.Close()
}

// PageCount reports the number of pages, a proxy for index size.
func (t *BTree) PageCount() uint32 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.pg.NumPages()
}

// SizeBytes reports the storage footprint in bytes.
func (t *BTree) SizeBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int64(t.pg.NumPages()) * int64(t.pageSize)
}
