// Package btree implements a disk-paged B+Tree with variable-length keys
// and values, range cursors, and delete rebalancing.
//
// It is the storage substrate the ViST paper assumes: the paper's
// experiments run on Berkeley DB B+Trees with 2 KB pages; this package
// provides the same point/range API on top of a Pager abstraction that can
// be file-backed (with an LRU buffer pool) or memory-backed.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"vist/internal/obs"
)

const (
	magic = "VISTBT01"

	pageFree = byte(3)

	// DefaultPageSize matches the paper's experimental setup ("we use disk
	// pages of size 2K for Berkeley DB B+Trees").
	DefaultPageSize = 2048

	defaultNodeCache = 512

	metaHeaderSize = 8 + 4 + 4 + 4 + 8 + 2 // magic, pageSize, root, freeHead, count, userMetaLen
)

// Options configures a B+Tree.
type Options struct {
	// PageSize is used when creating a new tree; opening an existing tree
	// validates against the stored size. Zero selects DefaultPageSize.
	PageSize int
	// NodeCache bounds the decoded-node cache. Zero selects a default.
	NodeCache int
	// Metrics, when non-nil, receives decoded-node-cache counters. The same
	// bundle may be shared across trees (its metrics are atomic).
	Metrics *obs.TreeMetrics
}

// BTree is a B+Tree over a Pager. All methods are safe for concurrent use:
// readers (Get, Scan, SeekFirst, ...) hold a shared lock and run in parallel
// with each other, while writers (Put, Delete, Sync, ...) hold the exclusive
// lock. The decoded-node cache has its own small mutex so parallel readers
// can fault pages in and maintain the LRU without serializing on the tree
// lock.
type BTree struct {
	mu       sync.RWMutex
	pg       Pager
	pageSize int
	cacheCap int

	// Tree state below is written only under mu (exclusive) and read under
	// mu or mu.RLock.
	root      PageID
	freeHead  PageID
	count     uint64
	userMeta  []byte
	metaDirty bool

	// The decoded-node cache is a lock-free-on-hit clock cache: cache maps
	// PageID → *node, cacheN tracks its size, and each node carries a ref
	// bit that hits set and eviction sweeps clear (second chance). A
	// mutex+LRU design serialized every reader on the hot path; here cache
	// hits are a single sync.Map load. Node *contents* are immutable while
	// any reader holds mu.RLock: only writers mutate nodes, and they hold
	// mu exclusively.
	cache   sync.Map // PageID → *node
	cacheN  atomic.Int64
	sweepMu sync.Mutex // at most one reader sweeps at a time

	buf     []byte    // scratch page buffer; exclusive-lock holders only
	bufPool sync.Pool // page buffers for the shared-lock read path

	// m counts node-cache traffic; never nil (a bundle of nil metrics when
	// observability is off).
	m *obs.TreeMetrics
}

// New opens the tree stored in pg, creating an empty tree when the pager has
// no pages yet.
func New(pg Pager, opts Options) (*BTree, error) {
	ps := opts.PageSize
	if ps == 0 {
		ps = DefaultPageSize
	}
	if pg.PageSize() != ps && opts.PageSize != 0 {
		return nil, fmt.Errorf("btree: pager page size %d != requested %d", pg.PageSize(), ps)
	}
	ps = pg.PageSize()
	nc := opts.NodeCache
	if nc <= 0 {
		nc = defaultNodeCache
	}
	m := opts.Metrics
	if m == nil {
		m = &obs.TreeMetrics{}
	}
	t := &BTree{
		pg:       pg,
		pageSize: ps,
		cacheCap: nc,
		buf:      make([]byte, ps),
		m:        m,
	}
	t.bufPool.New = func() any { return make([]byte, ps) }
	if pg.NumPages() == 0 {
		if err := t.create(); err != nil {
			return nil, err
		}
		return t, nil
	}
	if err := t.readMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *BTree) create() error {
	metaID, err := t.pg.Allocate()
	if err != nil {
		return err
	}
	if metaID != 0 {
		return fmt.Errorf("btree: meta page allocated as %d, want 0", metaID)
	}
	rootID, err := t.pg.Allocate()
	if err != nil {
		return err
	}
	root := &node{id: rootID, leaf: true}
	if err := t.flushNode(root); err != nil {
		return err
	}
	t.root = rootID
	t.metaDirty = true
	return t.writeMeta()
}

func (t *BTree) readMeta() error {
	if err := t.pg.Read(0, t.buf); err != nil {
		return err
	}
	if string(t.buf[:8]) != magic {
		return fmt.Errorf("btree: bad magic %q", t.buf[:8])
	}
	storedPS := int(binary.BigEndian.Uint32(t.buf[8:12]))
	if storedPS != t.pageSize {
		return fmt.Errorf("btree: stored page size %d != pager page size %d", storedPS, t.pageSize)
	}
	t.root = PageID(binary.BigEndian.Uint32(t.buf[12:16]))
	t.freeHead = PageID(binary.BigEndian.Uint32(t.buf[16:20]))
	t.count = binary.BigEndian.Uint64(t.buf[20:28])
	umLen := int(binary.BigEndian.Uint16(t.buf[28:30]))
	if metaHeaderSize+umLen > t.pageSize {
		return fmt.Errorf("btree: user meta length %d overflows page", umLen)
	}
	t.userMeta = append([]byte(nil), t.buf[metaHeaderSize:metaHeaderSize+umLen]...)
	return nil
}

func (t *BTree) writeMeta() error {
	for i := range t.buf {
		t.buf[i] = 0
	}
	copy(t.buf[:8], magic)
	binary.BigEndian.PutUint32(t.buf[8:12], uint32(t.pageSize))
	binary.BigEndian.PutUint32(t.buf[12:16], uint32(t.root))
	binary.BigEndian.PutUint32(t.buf[16:20], uint32(t.freeHead))
	binary.BigEndian.PutUint64(t.buf[20:28], t.count)
	if metaHeaderSize+len(t.userMeta) > t.pageSize {
		return fmt.Errorf("btree: user meta of %d bytes overflows page", len(t.userMeta))
	}
	binary.BigEndian.PutUint16(t.buf[28:30], uint16(len(t.userMeta)))
	copy(t.buf[metaHeaderSize:], t.userMeta)
	if err := t.pg.Write(0, t.buf); err != nil {
		return err
	}
	t.metaDirty = false
	return nil
}

// MaxEntrySize reports the largest key+value payload a single Put accepts.
// It is sized so that every leaf can hold at least two cells.
func (t *BTree) MaxEntrySize() int { return (t.pageSize - leafHeaderSize) / 2 }

// maxKeySize keeps internal nodes able to hold at least three separators.
func (t *BTree) maxKeySize() int { return (t.pageSize - internalHeaderSize) / 3 }

func (t *BTree) minFill() int { return t.pageSize / 4 }

// --- node cache -----------------------------------------------------------
//
// The cache uses the clock (second-chance) policy instead of strict LRU so
// that a cache hit performs no shared-state mutation beyond one atomic
// ref-bit store: recency lives on the node itself, and eviction sweeps the
// map clearing ref bits, reclaiming only nodes that went un-referenced for a
// full sweep. Hot upper-level nodes are re-referenced constantly and survive.

// evict bounds the cache, flushing dirty victims. Only exclusive-lock
// holders may call it (flushing uses t.buf and writes to the pager).
func (t *BTree) evict() error {
	var err error
	for t.cacheN.Load() > int64(t.cacheCap) {
		evicted := false
		t.cache.Range(func(k, v any) bool {
			if t.cacheN.Load() <= int64(t.cacheCap) {
				return false
			}
			n := v.(*node)
			if n.ref.Load() != 0 {
				n.ref.Store(0) // second chance
				return true
			}
			if n.dirty {
				if err = t.flushNode(n); err != nil {
					return false
				}
			}
			if t.cache.CompareAndDelete(k, v) {
				t.cacheN.Add(-1)
				t.m.NodeCacheEvictions.Inc()
				evicted = true
			}
			return true
		})
		if err != nil || !evicted {
			// Nothing reclaimable this round (all nodes re-referenced);
			// their ref bits are now cleared, so the next call makes
			// progress. Leaving the cache briefly over cap is safe.
			break
		}
	}
	return err
}

// evictClean bounds the cache from the shared-lock read path: it may only
// drop clean nodes (a reader has no scratch buffer and must not write), so
// dirty nodes — which exist only between a writer's mutation and its evict
// or Sync — are skipped and left for the next writer to flush. At most one
// reader sweeps at a time; the rest skip.
func (t *BTree) evictClean() {
	if !t.sweepMu.TryLock() {
		return
	}
	defer t.sweepMu.Unlock()
	for t.cacheN.Load() > int64(t.cacheCap) {
		evicted := false
		t.cache.Range(func(k, v any) bool {
			if t.cacheN.Load() <= int64(t.cacheCap) {
				return false
			}
			n := v.(*node)
			if n.dirty {
				return true
			}
			if n.ref.Load() != 0 {
				n.ref.Store(0)
				return true
			}
			if t.cache.CompareAndDelete(k, v) {
				t.cacheN.Add(-1)
				t.m.NodeCacheEvictions.Inc()
				evicted = true
			}
			return true
		})
		if !evicted {
			break
		}
	}
}

// load returns the decoded node for id, faulting it in on a miss. It is safe
// under either the shared or the exclusive tree lock: hits are a lock-free
// map load plus a ref-bit store, and misses read the page image into a
// pooled buffer, so parallel readers never share scratch state. When two
// readers miss on the same page at once, the loser adopts the winner's node.
func (t *BTree) load(id PageID) (*node, error) {
	if v, ok := t.cache.Load(id); ok {
		n := v.(*node)
		if n.ref.Load() == 0 {
			n.ref.Store(1)
		}
		t.m.NodeCacheHits.Inc()
		return n, nil
	}
	t.m.NodeCacheMisses.Inc()

	buf := t.bufPool.Get().([]byte)
	err := t.pg.Read(id, buf)
	if err != nil {
		t.bufPool.Put(buf)
		return nil, err
	}
	n, err := deserializeNode(id, buf)
	t.bufPool.Put(buf) // deserializeNode copies; the buffer is reusable
	if err != nil {
		return nil, err
	}
	n.ref.Store(1)

	if existing, loaded := t.cache.LoadOrStore(id, n); loaded {
		return existing.(*node), nil
	}
	if t.cacheN.Add(1) > int64(t.cacheCap) {
		t.evictClean()
	}
	return n, nil
}

// markDirty registers n in the cache as modified. Exclusive-lock holders
// only (it mutates node state readers would otherwise observe). The store
// is unconditional: if an earlier eviction dropped n while this operation
// still held its pointer, n — carrying the operation's mutations — must
// displace any freshly deserialized copy.
func (t *BTree) markDirty(n *node) {
	n.dirty = true
	n.ref.Store(1)
	if _, loaded := t.cache.Swap(n.id, n); !loaded {
		t.cacheN.Add(1)
	}
}

// flushNode serializes n through the scratch buffer. Exclusive-lock holders
// only.
func (t *BTree) flushNode(n *node) error {
	if err := n.serialize(t.buf); err != nil {
		return err
	}
	if err := t.pg.Write(n.id, t.buf); err != nil {
		return err
	}
	n.dirty = false
	return nil
}

func (t *BTree) dropFromCache(id PageID) {
	if _, loaded := t.cache.LoadAndDelete(id); loaded {
		t.cacheN.Add(-1)
	}
}

// --- page allocation ------------------------------------------------------

func (t *BTree) allocPage() (PageID, error) {
	if t.freeHead != 0 {
		id := t.freeHead
		if err := t.pg.Read(id, t.buf); err != nil {
			return 0, err
		}
		if t.buf[0] != pageFree {
			return 0, fmt.Errorf("btree: freelist page %d is not free (type %d)", id, t.buf[0])
		}
		t.freeHead = PageID(binary.BigEndian.Uint32(t.buf[1:5]))
		t.metaDirty = true
		return id, nil
	}
	return t.pg.Allocate()
}

func (t *BTree) freePage(id PageID) error {
	t.dropFromCache(id)
	for i := range t.buf {
		t.buf[i] = 0
	}
	t.buf[0] = pageFree
	binary.BigEndian.PutUint32(t.buf[1:5], uint32(t.freeHead))
	if err := t.pg.Write(id, t.buf); err != nil {
		return err
	}
	t.freeHead = id
	t.metaDirty = true
	return nil
}

// --- public API -----------------------------------------------------------

// Len reports the number of stored entries.
func (t *BTree) Len() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// UserMeta returns the caller-owned metadata blob stored in the meta page.
func (t *BTree) UserMeta() []byte {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]byte(nil), t.userMeta...)
}

// SetUserMeta replaces the caller-owned metadata blob. It must fit in the
// meta page alongside the header.
func (t *BTree) SetUserMeta(m []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if metaHeaderSize+len(m) > t.pageSize {
		return fmt.Errorf("btree: user meta of %d bytes exceeds page size %d", len(m), t.pageSize)
	}
	t.userMeta = append(t.userMeta[:0], m...)
	t.metaDirty = true
	return nil
}

// Get returns the value stored under key. It holds the shared lock, so
// concurrent Gets and Scans proceed in parallel.
func (t *BTree) Get(key []byte) ([]byte, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id := t.root
	for {
		n, err := t.load(id)
		if err != nil {
			return nil, false, err
		}
		if n.leaf {
			i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
			if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
				return append([]byte(nil), n.vals[i]...), true, nil
			}
			return nil, false, nil
		}
		id = n.kids[t.childIndex(n, key)]
	}
}

// childIndex returns the child slot to descend into for key.
func (t *BTree) childIndex(n *node, key []byte) int {
	return sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(key, n.keys[i]) < 0 })
}

type splitResult struct {
	sep   []byte
	right PageID
}

// Put inserts or replaces the value stored under key.
func (t *BTree) Put(key, val []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("btree: empty key")
	}
	if len(key) > t.maxKeySize() {
		return fmt.Errorf("btree: key of %d bytes exceeds max %d", len(key), t.maxKeySize())
	}
	if leafCellSize(key, val) > t.MaxEntrySize() {
		return fmt.Errorf("btree: entry of %d bytes exceeds max %d", leafCellSize(key, val), t.MaxEntrySize())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	split, err := t.put(t.root, key, val)
	if err != nil {
		return err
	}
	if split != nil {
		newRootID, err := t.allocPage()
		if err != nil {
			return err
		}
		newRoot := &node{
			id:   newRootID,
			keys: [][]byte{split.sep},
			kids: []PageID{t.root, split.right},
		}
		t.markDirty(newRoot)
		t.root = newRootID
		t.metaDirty = true
	}
	// markDirty does not evict (it has no error path); bound the cache
	// once per operation instead.
	return t.evict()
}

func (t *BTree) put(id PageID, key, val []byte) (*splitResult, error) {
	n, err := t.load(id)
	if err != nil {
		return nil, err
	}
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			n.vals[i] = append([]byte(nil), val...)
		} else {
			n.insertLeafCell(i, append([]byte(nil), key...), append([]byte(nil), val...))
			t.count++
			t.metaDirty = true
		}
		t.markDirty(n)
		if n.serializedSize() <= t.pageSize {
			return nil, nil
		}
		return t.splitLeaf(n)
	}
	idx := t.childIndex(n, key)
	split, err := t.put(n.kids[idx], key, val)
	if err != nil {
		return nil, err
	}
	if split == nil {
		return nil, nil
	}
	n.insertInternalCell(idx, split.sep, split.right)
	t.markDirty(n)
	if n.serializedSize() <= t.pageSize {
		return nil, nil
	}
	return t.splitInternal(n)
}

// splitLeaf moves the upper half of n's cells into a fresh right sibling.
func (t *BTree) splitLeaf(n *node) (*splitResult, error) {
	rightID, err := t.allocPage()
	if err != nil {
		return nil, err
	}
	// Find the split point where the left half first reaches half the
	// serialized payload.
	total := n.serializedSize() - leafHeaderSize
	acc, mid := 0, 0
	for i := range n.keys {
		acc += leafCellSize(n.keys[i], n.vals[i])
		if acc >= total/2 {
			mid = i + 1
			break
		}
	}
	if mid == 0 || mid >= len(n.keys) {
		mid = len(n.keys) / 2
	}
	right := &node{
		id:   rightID,
		leaf: true,
		keys: append([][]byte(nil), n.keys[mid:]...),
		vals: append([][]byte(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.next = rightID
	t.markDirty(n)
	t.markDirty(right)
	sep := append([]byte(nil), right.keys[0]...)
	return &splitResult{sep: sep, right: rightID}, nil
}

// splitInternal promotes the middle separator of n.
func (t *BTree) splitInternal(n *node) (*splitResult, error) {
	rightID, err := t.allocPage()
	if err != nil {
		return nil, err
	}
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	right := &node{
		id:   rightID,
		keys: append([][]byte(nil), n.keys[mid+1:]...),
		kids: append([]PageID(nil), n.kids[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.kids = n.kids[:mid+1]
	t.markDirty(n)
	t.markDirty(right)
	return &splitResult{sep: sep, right: rightID}, nil
}

// Delete removes key, reporting whether it was present.
func (t *BTree) Delete(key []byte) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	deleted, _, err := t.del(t.root, key)
	if err != nil || !deleted {
		return deleted, err
	}
	root, err := t.load(t.root)
	if err != nil {
		return true, err
	}
	if !root.leaf && len(root.keys) == 0 {
		old := t.root
		t.root = root.kids[0]
		t.metaDirty = true
		if err := t.freePage(old); err != nil {
			return true, err
		}
	}
	return true, t.evict()
}

func (t *BTree) del(id PageID, key []byte) (deleted, underflow bool, err error) {
	n, err := t.load(id)
	if err != nil {
		return false, false, err
	}
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
		if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
			return false, false, nil
		}
		n.removeLeafCell(i)
		t.count--
		t.metaDirty = true
		t.markDirty(n)
		return true, n.serializedSize() < t.minFill(), nil
	}
	idx := t.childIndex(n, key)
	deleted, childUnder, err := t.del(n.kids[idx], key)
	if err != nil || !deleted {
		return deleted, false, err
	}
	if childUnder {
		if err := t.rebalance(n, idx); err != nil {
			return true, false, err
		}
	}
	return true, n.serializedSize() < t.minFill(), nil
}

// rebalance restores the fill of n.kids[idx] by borrowing from a sibling or
// merging with one. If neither is possible the underfull child is tolerated.
func (t *BTree) rebalance(parent *node, idx int) error {
	child, err := t.load(parent.kids[idx])
	if err != nil {
		return err
	}
	if child.serializedSize() >= t.minFill() {
		return nil
	}
	// Try borrowing from the left sibling.
	if idx > 0 {
		left, err := t.load(parent.kids[idx-1])
		if err != nil {
			return err
		}
		if t.borrow(parent, idx-1, left, child, true) {
			return nil
		}
		if left.serializedSize()+child.serializedSize()-t.headerSize(child) <= t.pageSize {
			return t.merge(parent, idx-1, left, child)
		}
	}
	// Try borrowing from the right sibling.
	if idx < len(parent.kids)-1 {
		right, err := t.load(parent.kids[idx+1])
		if err != nil {
			return err
		}
		if t.borrow(parent, idx, child, right, false) {
			return nil
		}
		if child.serializedSize()+right.serializedSize()-t.headerSize(right) <= t.pageSize {
			return t.merge(parent, idx, child, right)
		}
	}
	return nil
}

func (t *BTree) headerSize(n *node) int {
	if n.leaf {
		return leafHeaderSize
	}
	return internalHeaderSize
}

// borrow moves cells from the donor side toward the receiver until the
// receiver is adequately filled. left and right are adjacent children with
// separator parent.keys[sepIdx]; fromLeft selects the donor.
func (t *BTree) borrow(parent *node, sepIdx int, left, right *node, fromLeft bool) bool {
	moved := false
	for {
		var donor, recv *node
		if fromLeft {
			donor, recv = left, right
		} else {
			donor, recv = right, left
		}
		if recv.serializedSize() >= t.minFill() {
			break
		}
		if donor.serializedSize() <= t.minFill() || len(donor.keys) <= 1 {
			break
		}
		if donor.leaf {
			if fromLeft {
				k, v := donor.keys[len(donor.keys)-1], donor.vals[len(donor.vals)-1]
				if recv.serializedSize()+leafCellSize(k, v) > t.pageSize {
					break
				}
				donor.removeLeafCell(len(donor.keys) - 1)
				recv.insertLeafCell(0, k, v)
				parent.keys[sepIdx] = append([]byte(nil), recv.keys[0]...)
			} else {
				k, v := donor.keys[0], donor.vals[0]
				if recv.serializedSize()+leafCellSize(k, v) > t.pageSize {
					break
				}
				donor.removeLeafCell(0)
				recv.keys = append(recv.keys, k)
				recv.vals = append(recv.vals, v)
				parent.keys[sepIdx] = append([]byte(nil), donor.keys[0]...)
			}
		} else {
			sep := parent.keys[sepIdx]
			if fromLeft {
				k := donor.keys[len(donor.keys)-1]
				if recv.serializedSize()+internalCellSize(sep) > t.pageSize {
					break
				}
				c := donor.kids[len(donor.kids)-1]
				donor.keys = donor.keys[:len(donor.keys)-1]
				donor.kids = donor.kids[:len(donor.kids)-1]
				recv.keys = append([][]byte{append([]byte(nil), sep...)}, recv.keys...)
				recv.kids = append([]PageID{c}, recv.kids...)
				parent.keys[sepIdx] = append([]byte(nil), k...)
			} else {
				k := donor.keys[0]
				if recv.serializedSize()+internalCellSize(sep) > t.pageSize {
					break
				}
				c := donor.kids[0]
				donor.keys = donor.keys[1:]
				donor.kids = donor.kids[1:]
				recv.keys = append(recv.keys, append([]byte(nil), sep...))
				recv.kids = append(recv.kids, c)
				parent.keys[sepIdx] = append([]byte(nil), k...)
			}
		}
		t.markDirty(donor)
		t.markDirty(recv)
		t.markDirty(parent)
		moved = true
	}
	if !moved {
		return false
	}
	// The receiver must have reached adequate fill for the borrow to count.
	var recv *node
	if fromLeft {
		recv = right
	} else {
		recv = left
	}
	return recv.serializedSize() >= t.minFill()
}

// merge folds right into left and removes separator sepIdx from the parent.
func (t *BTree) merge(parent *node, sepIdx int, left, right *node) error {
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, append([]byte(nil), parent.keys[sepIdx]...))
		left.keys = append(left.keys, right.keys...)
		left.kids = append(left.kids, right.kids...)
	}
	parent.removeInternalCell(sepIdx)
	t.markDirty(left)
	t.markDirty(parent)
	return t.freePage(right.id)
}

// Sync flushes all dirty state to the pager and the pager to stable storage.
func (t *BTree) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syncLocked()
}

// Flush writes all dirty nodes and the meta page through to the pager and
// stages them one layer down (Pager.Flush) without forcing stable storage.
// core uses it to stage every tree of an index into a shared WAL before one
// atomic commit; a standalone tree should call Sync instead.
func (t *BTree) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *BTree) flushLocked() error {
	var flushErr error
	t.cache.Range(func(_, v any) bool {
		n := v.(*node)
		if n.dirty {
			if err := t.flushNode(n); err != nil {
				flushErr = fmt.Errorf("btree: flush page %d: %w", n.id, err)
				return false
			}
		}
		return true
	})
	if flushErr != nil {
		return flushErr
	}
	if t.metaDirty {
		if err := t.writeMeta(); err != nil {
			return err
		}
	}
	return t.pg.Flush()
}

func (t *BTree) syncLocked() error {
	if err := t.flushLocked(); err != nil {
		return err
	}
	return t.pg.Sync()
}

// Close flushes and closes the underlying pager.
func (t *BTree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.syncLocked(); err != nil {
		t.pg.Close()
		return err
	}
	return t.pg.Close()
}

// PageCount reports the number of pages, a proxy for index size.
func (t *BTree) PageCount() uint32 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.pg.NumPages()
}

// SizeBytes reports the storage footprint in bytes.
func (t *BTree) SizeBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int64(t.pg.NumPages()) * int64(t.pageSize)
}
