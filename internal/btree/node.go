package btree

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

const (
	pageLeaf     = byte(1)
	pageInternal = byte(2)

	// leaf page layout:
	//   [0]      type
	//   [1:3]    cell count (uint16)
	//   [3:7]    next leaf PageID (uint32, 0 = none)
	//   cells... each: klen uint16, vlen uint16, key, val
	leafHeaderSize = 7

	// internal page layout:
	//   [0]      type
	//   [1:3]    cell count (uint16)
	//   [3:7]    child[0] PageID
	//   cells... each: klen uint16, key, child PageID (uint32)
	internalHeaderSize = 7
)

// node is the in-memory form of a B+Tree page. Leaves carry keys/vals;
// internal nodes carry keys as separators with len(keys)+1 children, where
// kids[i] holds keys < keys[i] and kids[len] holds keys >= keys[len-1].
//
// The on-page next-leaf link is vestigial under copy-on-write: shadowing a
// leaf would leave its left sibling's link pointing at the replaced page, so
// range scans walk an ancestor stack instead (scanFrom) and the field is
// written as zero on new pages and ignored on read.
type node struct {
	id    PageID
	leaf  bool
	keys  [][]byte
	vals  [][]byte // leaves only
	kids  []PageID // internal only; len(kids) == len(keys)+1
	next  PageID   // vestigial on-page sibling link; never read
	dirty bool

	// born is the write window that created this in-memory node. Writers
	// mutate a node in place only when born matches the tree's current
	// window; anything older is part of a published version and must be
	// shadowed (copied under a fresh page ID) first.
	born uint64

	// ref is the clock cache's second-chance bit: set on every cache hit,
	// cleared by eviction sweeps. Atomic because parallel readers touch it.
	ref atomic.Uint32
}

func leafCellSize(k, v []byte) int  { return 4 + len(k) + len(v) }
func internalCellSize(k []byte) int { return 6 + len(k) }
func (n *node) serializedSize() int {
	if n.leaf {
		sz := leafHeaderSize
		for i, k := range n.keys {
			sz += leafCellSize(k, n.vals[i])
		}
		return sz
	}
	sz := internalHeaderSize
	for _, k := range n.keys {
		sz += internalCellSize(k)
	}
	return sz
}

// serialize writes the node into buf, which must be a full page.
func (n *node) serialize(buf []byte) error {
	need := n.serializedSize()
	if need > len(buf) {
		return fmt.Errorf("btree: node %d overflows page: %d > %d", n.id, need, len(buf))
	}
	for i := range buf {
		buf[i] = 0
	}
	if n.leaf {
		buf[0] = pageLeaf
		binary.BigEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
		binary.BigEndian.PutUint32(buf[3:7], uint32(n.next))
		off := leafHeaderSize
		for i, k := range n.keys {
			v := n.vals[i]
			binary.BigEndian.PutUint16(buf[off:], uint16(len(k)))
			binary.BigEndian.PutUint16(buf[off+2:], uint16(len(v)))
			off += 4
			off += copy(buf[off:], k)
			off += copy(buf[off:], v)
		}
		return nil
	}
	buf[0] = pageInternal
	binary.BigEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
	binary.BigEndian.PutUint32(buf[3:7], uint32(n.kids[0]))
	off := internalHeaderSize
	for i, k := range n.keys {
		binary.BigEndian.PutUint16(buf[off:], uint16(len(k)))
		off += 2
		off += copy(buf[off:], k)
		binary.BigEndian.PutUint32(buf[off:], uint32(n.kids[i+1]))
		off += 4
	}
	return nil
}

// deserializeNode parses a page image into a node. Key and value slices are
// copied out of buf so the caller may reuse the buffer.
func deserializeNode(id PageID, buf []byte) (*node, error) {
	if len(buf) < leafHeaderSize {
		return nil, fmt.Errorf("btree: page %d too short (%d bytes)", id, len(buf))
	}
	count := int(binary.BigEndian.Uint16(buf[1:3]))
	switch buf[0] {
	case pageLeaf:
		n := &node{
			id:   id,
			leaf: true,
			keys: make([][]byte, 0, count),
			vals: make([][]byte, 0, count),
			next: PageID(binary.BigEndian.Uint32(buf[3:7])),
		}
		off := leafHeaderSize
		for i := 0; i < count; i++ {
			if off+4 > len(buf) {
				return nil, fmt.Errorf("btree: leaf %d truncated at cell %d", id, i)
			}
			klen := int(binary.BigEndian.Uint16(buf[off:]))
			vlen := int(binary.BigEndian.Uint16(buf[off+2:]))
			off += 4
			if off+klen+vlen > len(buf) {
				return nil, fmt.Errorf("btree: leaf %d cell %d out of bounds", id, i)
			}
			k := make([]byte, klen)
			copy(k, buf[off:off+klen])
			off += klen
			v := make([]byte, vlen)
			copy(v, buf[off:off+vlen])
			off += vlen
			n.keys = append(n.keys, k)
			n.vals = append(n.vals, v)
		}
		return n, nil
	case pageInternal:
		n := &node{
			id:   id,
			keys: make([][]byte, 0, count),
			kids: make([]PageID, 0, count+1),
		}
		n.kids = append(n.kids, PageID(binary.BigEndian.Uint32(buf[3:7])))
		off := internalHeaderSize
		for i := 0; i < count; i++ {
			if off+2 > len(buf) {
				return nil, fmt.Errorf("btree: internal %d truncated at cell %d", id, i)
			}
			klen := int(binary.BigEndian.Uint16(buf[off:]))
			off += 2
			if off+klen+4 > len(buf) {
				return nil, fmt.Errorf("btree: internal %d cell %d out of bounds", id, i)
			}
			k := make([]byte, klen)
			copy(k, buf[off:off+klen])
			off += klen
			n.keys = append(n.keys, k)
			n.kids = append(n.kids, PageID(binary.BigEndian.Uint32(buf[off:])))
			off += 4
		}
		return n, nil
	default:
		return nil, fmt.Errorf("btree: page %d has unknown type %d", id, buf[0])
	}
}

// insertLeafCell inserts key/val at index i.
func (n *node) insertLeafCell(i int, key, val []byte) {
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	n.vals = append(n.vals, nil)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = val
}

// removeLeafCell deletes the cell at index i.
func (n *node) removeLeafCell(i int) {
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
}

// insertInternalCell inserts separator key at index i with the new child to
// its right (child index i+1).
func (n *node) insertInternalCell(i int, key []byte, child PageID) {
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	n.kids = append(n.kids, 0)
	copy(n.kids[i+2:], n.kids[i+1:])
	n.kids[i+1] = child
}

// removeInternalCell deletes separator i and the child to its right.
func (n *node) removeInternalCell(i int) {
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.kids = append(n.kids[:i+1], n.kids[i+2:]...)
}
