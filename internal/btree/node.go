package btree

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

const (
	// v1 page types: fixed-width cells, keys stored verbatim.
	pageLeaf     = byte(1)
	pageInternal = byte(2)
	// pageFree (3) is declared in btree.go: freelist chain links.

	// v2 page types: front-coded cells (see below). New pages are written
	// in v2 unless Options.LegacyPageFormat is set; v1 pages from existing
	// index files stay readable and are rewritten in v2 whenever
	// copy-on-write shadows them.
	pageLeafV2     = byte(4)
	pageInternalV2 = byte(5)

	// v1 leaf page layout:
	//   [0]      type
	//   [1:3]    cell count (uint16)
	//   [3:7]    next leaf PageID (uint32, 0 = none; vestigial, see node)
	//   cells... each: klen uint16, vlen uint16, key, val
	leafHeaderSize = 7

	// v1 internal page layout:
	//   [0]      type
	//   [1:3]    cell count (uint16)
	//   [3:7]    child[0] PageID
	//   cells... each: klen uint16, key, child PageID (uint32)
	internalHeaderSize = 7

	// v2 leaf page layout:
	//   [0]      type
	//   [1:3]    cell count (uint16)
	//   cells... each: uvarint shared, uvarint suffixLen, uvarint vlen,
	//                  suffix, val
	// where key[i] = key[i-1][:shared] + suffix. Every restartInterval-th
	// cell is a restart point: shared is forced to zero and the key is
	// stored in full, so decoding can resynchronize (and binary-search
	// within a page) without unwinding the whole prefix chain.
	leafHeaderSizeV2 = 3

	// v2 internal page layout:
	//   [0]      type
	//   [1:3]    cell count (uint16)
	//   [3:7]    child[0] PageID (uint32)
	//   cells... each: uvarint shared, uvarint suffixLen, suffix,
	//                  child PageID (uint32)
	// Child pointers stay fixed-width on purpose: copy-on-write rewrites a
	// child pointer in place on every descent (put/del shadow the child and
	// store its new ID), and those rewrites carry no overflow check — a
	// varint pointer that grew with the page ID could silently overflow a
	// full page. Fixed width makes an internal node's size a function of its
	// keys alone, which every key-mutating path does check.
	internalHeaderSizeV2 = 3

	// restartInterval is the distance between v2 restart points. Small
	// enough that a corrupt shared-length can poison at most 15 trailing
	// cells of one page, large enough that full keys stay rare.
	restartInterval = 16
)

// node is the in-memory form of a B+Tree page. Leaves carry keys/vals;
// internal nodes carry keys as separators with len(keys)+1 children, where
// kids[i] holds keys < keys[i] and kids[len] holds keys >= keys[len-1].
//
// The on-page next-leaf link is vestigial under copy-on-write: shadowing a
// leaf would leave its left sibling's link pointing at the replaced page, so
// range scans walk an ancestor stack instead (scanFrom) and the field is
// written as zero on new pages and ignored on read.
type node struct {
	id    PageID
	leaf  bool
	keys  [][]byte
	vals  [][]byte // leaves only
	kids  []PageID // internal only; len(kids) == len(keys)+1
	next  PageID   // vestigial on-page sibling link; never read
	dirty bool

	// born is the write window that created this in-memory node. Writers
	// mutate a node in place only when born matches the tree's current
	// window; anything older is part of a published version and must be
	// shadowed (copied under a fresh page ID) first.
	born uint64

	// ref is the clock cache's second-chance bit: set on every cache hit,
	// cleared by eviction sweeps. Atomic because parallel readers touch it.
	ref atomic.Uint32
}

func leafCellSize(k, v []byte) int  { return 4 + len(k) + len(v) }
func internalCellSize(k []byte) int { return 6 + len(k) }

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// sharedLen returns the length of the longest common prefix of a and b.
func sharedLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// cellShared returns the front-coded shared-prefix length of cell i given
// its predecessor: zero at restart points, the common prefix otherwise.
func cellShared(keys [][]byte, i int) int {
	if i%restartInterval == 0 {
		return 0
	}
	return sharedLen(keys[i-1], keys[i])
}

// encodedLeafSize returns the exact on-page size of the v2 encoding of the
// given leaf cells. Split, borrow, and merge decisions feed candidate cell
// lists through it: because pages are fixed-size, the on-disk win of
// front coding is realized only if fill decisions use the compressed size.
func encodedLeafSize(keys, vals [][]byte) int {
	sz := leafHeaderSizeV2
	for i, k := range keys {
		shared := cellShared(keys, i)
		sz += uvarintLen(uint64(shared)) + uvarintLen(uint64(len(k)-shared)) +
			uvarintLen(uint64(len(vals[i]))) + len(k) - shared + len(vals[i])
	}
	return sz
}

// encodedInternalSize is encodedLeafSize for internal cells: len(kids) must
// be len(keys)+1. Child pointers are fixed-width (see the layout comment),
// so the result depends only on the keys.
func encodedInternalSize(keys [][]byte, kids []PageID) int {
	_ = kids
	sz := internalHeaderSizeV2 + 4
	for i, k := range keys {
		shared := cellShared(keys, i)
		sz += uvarintLen(uint64(shared)) + uvarintLen(uint64(len(k)-shared)) +
			len(k) - shared + 4
	}
	return sz
}

// serializedSize returns the exact on-page byte size of the node in the
// requested format.
func (n *node) serializedSize(legacy bool) int {
	if legacy {
		if n.leaf {
			sz := leafHeaderSize
			for i, k := range n.keys {
				sz += leafCellSize(k, n.vals[i])
			}
			return sz
		}
		sz := internalHeaderSize
		for _, k := range n.keys {
			sz += internalCellSize(k)
		}
		return sz
	}
	if n.leaf {
		return encodedLeafSize(n.keys, n.vals)
	}
	return encodedInternalSize(n.keys, n.kids)
}

// serialize writes the node into buf, which must be a full page.
func (n *node) serialize(buf []byte, legacy bool) error {
	need := n.serializedSize(legacy)
	if need > len(buf) {
		return fmt.Errorf("btree: node %d overflows page: %d > %d", n.id, need, len(buf))
	}
	for i := range buf {
		buf[i] = 0
	}
	if legacy {
		n.serializeV1(buf)
		return nil
	}
	if n.leaf {
		buf[0] = pageLeafV2
		binary.BigEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
		off := leafHeaderSizeV2
		for i, k := range n.keys {
			shared := cellShared(n.keys, i)
			off += binary.PutUvarint(buf[off:], uint64(shared))
			off += binary.PutUvarint(buf[off:], uint64(len(k)-shared))
			off += binary.PutUvarint(buf[off:], uint64(len(n.vals[i])))
			off += copy(buf[off:], k[shared:])
			off += copy(buf[off:], n.vals[i])
		}
		return nil
	}
	buf[0] = pageInternalV2
	binary.BigEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
	off := internalHeaderSizeV2
	binary.BigEndian.PutUint32(buf[off:], uint32(n.kids[0]))
	off += 4
	for i, k := range n.keys {
		shared := cellShared(n.keys, i)
		off += binary.PutUvarint(buf[off:], uint64(shared))
		off += binary.PutUvarint(buf[off:], uint64(len(k)-shared))
		off += copy(buf[off:], k[shared:])
		binary.BigEndian.PutUint32(buf[off:], uint32(n.kids[i+1]))
		off += 4
	}
	return nil
}

// serializeV1 writes the legacy fixed-width format; buf is pre-zeroed and
// pre-sized by serialize.
func (n *node) serializeV1(buf []byte) {
	if n.leaf {
		buf[0] = pageLeaf
		binary.BigEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
		binary.BigEndian.PutUint32(buf[3:7], uint32(n.next))
		off := leafHeaderSize
		for i, k := range n.keys {
			v := n.vals[i]
			binary.BigEndian.PutUint16(buf[off:], uint16(len(k)))
			binary.BigEndian.PutUint16(buf[off+2:], uint16(len(v)))
			off += 4
			off += copy(buf[off:], k)
			off += copy(buf[off:], v)
		}
		return
	}
	buf[0] = pageInternal
	binary.BigEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
	binary.BigEndian.PutUint32(buf[3:7], uint32(n.kids[0]))
	off := internalHeaderSize
	for i, k := range n.keys {
		binary.BigEndian.PutUint16(buf[off:], uint16(len(k)))
		off += 2
		off += copy(buf[off:], k)
		binary.BigEndian.PutUint32(buf[off:], uint32(n.kids[i+1]))
		off += 4
	}
}

// pageUvarint reads one uvarint at off, bounds-checked against the page.
func pageUvarint(id PageID, buf []byte, off int, what string) (uint64, int, error) {
	v, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("btree: page %d: truncated %s at offset %d", id, what, off)
	}
	return v, off + n, nil
}

// deserializeNode parses a page image into a node, accepting both the v1
// and v2 formats. Key and value slices are copied out of buf so the caller
// may reuse the buffer. Corrupt input of either format yields an error,
// never a panic (FuzzNodeCodec).
func deserializeNode(id PageID, buf []byte) (*node, error) {
	if len(buf) < leafHeaderSizeV2 {
		return nil, fmt.Errorf("btree: page %d too short (%d bytes)", id, len(buf))
	}
	count := int(binary.BigEndian.Uint16(buf[1:3]))
	switch buf[0] {
	case pageLeaf:
		if len(buf) < leafHeaderSize {
			return nil, fmt.Errorf("btree: page %d too short (%d bytes)", id, len(buf))
		}
		n := &node{
			id:   id,
			leaf: true,
			keys: make([][]byte, 0, count),
			vals: make([][]byte, 0, count),
			next: PageID(binary.BigEndian.Uint32(buf[3:7])),
		}
		off := leafHeaderSize
		for i := 0; i < count; i++ {
			if off+4 > len(buf) {
				return nil, fmt.Errorf("btree: leaf %d truncated at cell %d", id, i)
			}
			klen := int(binary.BigEndian.Uint16(buf[off:]))
			vlen := int(binary.BigEndian.Uint16(buf[off+2:]))
			off += 4
			if off+klen+vlen > len(buf) {
				return nil, fmt.Errorf("btree: leaf %d cell %d out of bounds", id, i)
			}
			k := make([]byte, klen)
			copy(k, buf[off:off+klen])
			off += klen
			v := make([]byte, vlen)
			copy(v, buf[off:off+vlen])
			off += vlen
			n.keys = append(n.keys, k)
			n.vals = append(n.vals, v)
		}
		return n, nil
	case pageInternal:
		if len(buf) < internalHeaderSize {
			return nil, fmt.Errorf("btree: page %d too short (%d bytes)", id, len(buf))
		}
		n := &node{
			id:   id,
			keys: make([][]byte, 0, count),
			kids: make([]PageID, 0, count+1),
		}
		n.kids = append(n.kids, PageID(binary.BigEndian.Uint32(buf[3:7])))
		off := internalHeaderSize
		for i := 0; i < count; i++ {
			if off+2 > len(buf) {
				return nil, fmt.Errorf("btree: internal %d truncated at cell %d", id, i)
			}
			klen := int(binary.BigEndian.Uint16(buf[off:]))
			off += 2
			if off+klen+4 > len(buf) {
				return nil, fmt.Errorf("btree: internal %d cell %d out of bounds", id, i)
			}
			k := make([]byte, klen)
			copy(k, buf[off:off+klen])
			off += klen
			n.keys = append(n.keys, k)
			n.kids = append(n.kids, PageID(binary.BigEndian.Uint32(buf[off:])))
			off += 4
		}
		return n, nil
	case pageLeafV2:
		n := &node{
			id:   id,
			leaf: true,
			keys: make([][]byte, 0, count),
			vals: make([][]byte, 0, count),
		}
		off := leafHeaderSizeV2
		var prev []byte
		for i := 0; i < count; i++ {
			shared, suffLen, off2, err := readCellPrefix(id, buf, off, i, prev)
			if err != nil {
				return nil, err
			}
			off = off2
			vlen64, off3, err := pageUvarint(id, buf, off, "value length")
			if err != nil {
				return nil, err
			}
			off = off3
			vlen := int(vlen64)
			if vlen < 0 || off+suffLen+vlen > len(buf) {
				return nil, fmt.Errorf("btree: leaf %d cell %d out of bounds", id, i)
			}
			k := make([]byte, shared+suffLen)
			copy(k, prev[:shared])
			copy(k[shared:], buf[off:off+suffLen])
			off += suffLen
			v := make([]byte, vlen)
			copy(v, buf[off:off+vlen])
			off += vlen
			n.keys = append(n.keys, k)
			n.vals = append(n.vals, v)
			prev = k
		}
		return n, nil
	case pageInternalV2:
		if len(buf) < internalHeaderSizeV2+4 {
			return nil, fmt.Errorf("btree: page %d too short (%d bytes)", id, len(buf))
		}
		n := &node{
			id:   id,
			keys: make([][]byte, 0, count),
			kids: make([]PageID, 0, count+1),
		}
		n.kids = append(n.kids, PageID(binary.BigEndian.Uint32(buf[internalHeaderSizeV2:])))
		off := internalHeaderSizeV2 + 4
		var prev []byte
		for i := 0; i < count; i++ {
			shared, suffLen, off2, err := readCellPrefix(id, buf, off, i, prev)
			if err != nil {
				return nil, err
			}
			off = off2
			if off+suffLen+4 > len(buf) {
				return nil, fmt.Errorf("btree: internal %d cell %d out of bounds", id, i)
			}
			k := make([]byte, shared+suffLen)
			copy(k, prev[:shared])
			copy(k[shared:], buf[off:off+suffLen])
			off += suffLen
			n.keys = append(n.keys, k)
			n.kids = append(n.kids, PageID(binary.BigEndian.Uint32(buf[off:])))
			off += 4
			prev = k
		}
		return n, nil
	default:
		return nil, fmt.Errorf("btree: page %d has unknown type %d", id, buf[0])
	}
}

// readCellPrefix decodes the shared/suffix length pair of v2 cell i,
// validating the restart discipline and the shared bound against prev.
func readCellPrefix(id PageID, buf []byte, off, i int, prev []byte) (shared, suffLen, newOff int, err error) {
	s64, off, err := pageUvarint(id, buf, off, "shared length")
	if err != nil {
		return 0, 0, 0, err
	}
	l64, off, err := pageUvarint(id, buf, off, "suffix length")
	if err != nil {
		return 0, 0, 0, err
	}
	if s64 > uint64(len(prev)) {
		return 0, 0, 0, fmt.Errorf("btree: page %d cell %d shares %d bytes of a %d-byte predecessor", id, i, s64, len(prev))
	}
	if i%restartInterval == 0 && s64 != 0 {
		return 0, 0, 0, fmt.Errorf("btree: page %d cell %d is a restart point with shared %d", id, i, s64)
	}
	if l64 > uint64(len(buf)) {
		return 0, 0, 0, fmt.Errorf("btree: page %d cell %d suffix of %d bytes overflows page", id, i, l64)
	}
	return int(s64), int(l64), off, nil
}

// insertLeafCell inserts key/val at index i.
func (n *node) insertLeafCell(i int, key, val []byte) {
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	n.vals = append(n.vals, nil)
	copy(n.vals[i+1:], n.vals[i:])
	n.vals[i] = val
}

// removeLeafCell deletes the cell at index i.
func (n *node) removeLeafCell(i int) {
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
}

// insertInternalCell inserts separator key at index i with the new child to
// its right (child index i+1).
func (n *node) insertInternalCell(i int, key []byte, child PageID) {
	n.keys = append(n.keys, nil)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = key
	n.kids = append(n.kids, 0)
	copy(n.kids[i+2:], n.kids[i+1:])
	n.kids[i+1] = child
}

// removeInternalCell deletes separator i and the child to its right.
func (n *node) removeInternalCell(i int) {
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.kids = append(n.kids[:i+1], n.kids[i+2:]...)
}
